"""Figure 9: thread-parallel strong scaling (LULESH top, miniBUDE bottom).

LULESH: C++ OpenMP, C++ OpenMP+OpenMPOpt, RAJA (the paper notes
CoDiPack cannot differentiate OpenMP LULESH and LULESH.jl is not
threaded).  miniBUDE: C++ OpenMP, C++ OpenMP+OpenMPOpt, Julia tasks.
Problem sizes are fixed while the thread count sweeps one node.
"""

from __future__ import annotations

import pytest

from repro.ad import ADConfig
from repro.apps.lulesh import LuleshApp
from repro.apps.minibude import MinibudeApp, make_deck

from conftest import save_and_print

THREADS = (1, 2, 4, 8, 16, 32, 48, 64)
LULESH_NX = 12          # paper block 96, scaled 8x down
LULESH_STEPS = 3
BUDE_DECK = dict(nprotein=24, nligand=8, nposes=256)


def _sweep_app(run_fwd, run_grad, label):
    rows = []
    base = None
    for nt in THREADS:
        f = run_fwd(nt)
        g = run_grad(nt)
        if base is None:
            base = f
        rows.append({"impl": label, "threads": nt, "forward_s": f,
                     "gradient_s": g, "fwd_speedup": base / f,
                     "overhead": g / f})
    return rows


def test_fig9_lulesh_threads(bench_once):
    def experiment():
        rows = []
        configs = [
            ("C++ OpenMP", "openmp", ADConfig()),
            ("C++ OpenMPOpt", "openmp", ADConfig(openmp_opt=True,
                                                 prefix="diffe_opt_")),
            ("RAJA", "raja", ADConfig()),
        ]
        for label, flavor, cfg in configs:
            app = LuleshApp(flavor, nx=LULESH_NX, ad_config=cfg)

            def fwd(nt, app=app):
                return app.run_forward(app.make_domains(), LULESH_STEPS,
                                       nt).time

            def grad(nt, app=app):
                return app.run_gradient(app.make_domains(), LULESH_STEPS,
                                        nt).time

            rows += _sweep_app(fwd, grad, label)
        return rows

    rows = bench_once(experiment)
    save_and_print("fig9_top_lulesh", "Fig 9 (top): LULESH thread strong "
                   f"scaling, {LULESH_NX}^3 elems", rows)

    by = {(r["impl"], r["threads"]): r for r in rows}
    # gradient scales like the primal (§VIII)
    for impl in ("C++ OpenMP", "C++ OpenMPOpt", "RAJA"):
        f_sp = by[(impl, 1)]["forward_s"] / by[(impl, 32)]["forward_s"]
        g_sp = by[(impl, 1)]["gradient_s"] / by[(impl, 32)]["gradient_s"]
        assert g_sp > 0.5 * f_sp, impl
    # OpenMPOpt lowers the gradient overhead (§VIII: "the overhead drops
    # when OpenMPOpt is enabled")
    assert by[("C++ OpenMPOpt", 32)]["overhead"] < \
        by[("C++ OpenMP", 32)]["overhead"]
    # RAJA behaves like OpenMP (it lowers onto it, §V-D)
    assert by[("RAJA", 32)]["overhead"] == pytest.approx(
        by[("C++ OpenMP", 32)]["overhead"], rel=0.5)


def test_fig9_minibude_threads(bench_once):
    def experiment():
        rows = []
        deck = make_deck(**BUDE_DECK)
        configs = [
            ("C++ OpenMP", "openmp", ADConfig()),
            ("C++ OpenMPOpt", "openmp", ADConfig(openmp_opt=True,
                                                 prefix="diffe_opt_")),
            ("Julia Tasks", "julia", ADConfig()),
        ]
        for label, variant, cfg in configs:
            app = MinibudeApp(variant, deck, ad_config=cfg, ntasks=64)

            def fwd(nt, app=app):
                return app.run_forward(num_threads=nt).time

            def grad(nt, app=app):
                return app.run_gradient(num_threads=nt)[1].time

            rows += _sweep_app(fwd, grad, label)
        return rows

    rows = bench_once(experiment)
    save_and_print("fig9_bot_minibude", "Fig 9 (bottom): miniBUDE thread "
                   "strong scaling", rows)

    by = {(r["impl"], r["threads"]): r for r in rows}
    # §VIII: "With regular OpenMP, the gradient overhead worsens as
    # threads increase but does not grow with OpenMPOpt."
    noopt_growth = by[("C++ OpenMP", 64)]["overhead"] / \
        by[("C++ OpenMP", 1)]["overhead"]
    opt_growth = by[("C++ OpenMPOpt", 64)]["overhead"] / \
        by[("C++ OpenMPOpt", 1)]["overhead"]
    assert noopt_growth > 1.15
    assert opt_growth < 1.05
    # "miniBUDE.jl's overhead is higher, but again scales well."
    assert by[("Julia Tasks", 32)]["overhead"] > \
        by[("C++ OpenMPOpt", 32)]["overhead"]
    jl_sp = by[("Julia Tasks", 1)]["forward_s"] / \
        by[("Julia Tasks", 16)]["forward_s"]
    assert jl_sp > 4.0
