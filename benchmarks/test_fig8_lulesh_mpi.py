"""Figure 8: LULESH MPI runtime, strong scaling, and weak scaling.

Implementations (top row of the paper's figure): Enzyme C++ MPI,
Enzyme Julia MPI (MPI.jl), Enzyme RAJA MPI, CoDiPack C++ MPI.  Rank
counts follow the paper's perfect-cube requirement: 1, 8, 27, 64.
Problem sizes are scaled down from the paper's 192/96/64/48 blocks to
interpreter scale, preserving the fixed-total (strong) / fixed-per-rank
(weak) structure.
"""

from __future__ import annotations

import math

import pytest

from repro.apps.lulesh import LuleshApp

from conftest import save_and_print

STEPS = 4
#: (ranks, per-rank nx) for strong scaling: total 12^3 elements, the
#: paper's 1:192 8:96 27:64 64:48 pattern scaled by 16.
STRONG = [(1, 12), (8, 6), (27, 4), (64, 3)]
#: weak scaling: fixed per-rank block (paper bottom row, block 48).
WEAK_NX = 3
WEAK = [(1, WEAK_NX), (8, WEAK_NX), (27, WEAK_NX), (64, WEAK_NX)]

IMPLS = [
    ("Enzyme C++ MPI", "mpi"),
    ("Enzyme Julia MPI", "julia_mpi"),
    ("Enzyme RAJA MPI", "raja_mpi"),
    ("CoDiPack C++ MPI", "codipack"),
]


def _run_impl(impl: str, nx: int, pr: int) -> tuple[float, float]:
    """Returns (forward seconds, gradient seconds) in simulated time."""
    flavor = "mpi" if impl == "codipack" else impl
    app = LuleshApp(flavor, nx=nx, pr=pr)
    if impl == "codipack":
        # CoDiPack's "forward" records the tape (the application is
        # rewritten to AD types); its gradient adds the tape reversal.
        doms = app.make_domains()
        fwd, _ = app.run_codipack_forward(doms, STEPS)
        doms = app.make_domains()
        grad, _ = app.run_codipack_gradient(doms, STEPS)
        return fwd.time, grad.time
    doms = app.make_domains()
    fwd = app.run_forward(doms, STEPS)
    doms = app.make_domains()
    grad = app.run_gradient(doms, STEPS)
    return fwd.time, grad.time


def _sweep(cases) -> list[dict]:
    rows = []
    for ranks, nx in cases:
        pr = round(ranks ** (1 / 3))
        assert pr ** 3 == ranks
        for label, impl in IMPLS:
            f, g = _run_impl(impl, nx, pr)
            rows.append({"impl": label, "ranks": ranks, "nx": nx,
                         "forward_s": f, "gradient_s": g,
                         "overhead": g / f})
    return rows


def _series(rows, label, key):
    return {r["ranks"]: r[key] for r in rows if r["impl"] == label}


def test_fig8_runtime_and_strong_scaling(bench_once):
    rows = bench_once(lambda: _sweep(STRONG))
    save_and_print("fig8_top_runtime", "Fig 8 (top): LULESH MPI runtime, "
                   f"{STEPS} steps, fixed total size", rows)

    speed = []
    for label, _ in IMPLS:
        f = _series(rows, label, "forward_s")
        g = _series(rows, label, "gradient_s")
        for ranks in sorted(f):
            speed.append({"impl": label, "ranks": ranks,
                          "fwd_speedup": f[1] / f[ranks],
                          "grad_speedup": g[1] / g[ranks]})
    save_and_print("fig8_mid_strong", "Fig 8 (middle): strong scaling "
                   "speedup T1/Tn", speed)

    # --- the paper's shape claims -------------------------------------
    enz_f = _series(rows, "Enzyme C++ MPI", "forward_s")
    enz_g = _series(rows, "Enzyme C++ MPI", "gradient_s")
    codi_g = _series(rows, "CoDiPack C++ MPI", "gradient_s")

    # 1. CoDiPack's 1-rank gradient is by far the slowest (§VIII: large
    #    serial overhead).
    assert codi_g[1] > 3.0 * enz_g[1]

    # 2. The Enzyme gradient scales like the primal: similar speedups.
    fwd_sp = enz_f[1] / enz_f[27]
    grad_sp = enz_g[1] / enz_g[27]
    assert grad_sp > 0.5 * fwd_sp

    # 3. Speedup degrades beyond 27 ranks (NUMA, §VIII): parallel
    #    efficiency at 64 clearly below efficiency at 27.
    eff27 = (enz_f[1] / enz_f[27]) / 27
    eff64 = (enz_f[1] / enz_f[64]) / 64
    assert eff64 < eff27

    # 4. CoDiPack's apparently better scaling is an artifact of its
    #    serial overhead (§VIII): its gradient *speedup* may exceed
    #    Enzyme's, yet its absolute gradient time stays worse everywhere.
    for ranks in (1, 8, 27, 64):
        assert codi_g[ranks] > enz_g[ranks]


def test_fig8_weak_scaling(bench_once):
    rows = bench_once(lambda: _sweep(WEAK))
    save_and_print("fig8_bot_weak", "Fig 8 (bottom): LULESH MPI weak "
                   f"scaling, block {WEAK_NX}/rank", rows)
    enz_f = _series(rows, "Enzyme C++ MPI", "forward_s")
    enz_g = _series(rows, "Enzyme C++ MPI", "gradient_s")
    # Weak scaling: gradient efficiency tracks the primal's.
    f_eff = enz_f[1] / enz_f[64]
    g_eff = enz_g[1] / enz_g[64]
    assert g_eff > 0.5 * f_eff
    # The Julia variant is slower in absolute terms (MPICH constants +
    # indirection), as the paper attributes (§VIII).
    jl_f = _series(rows, "Enzyme Julia MPI", "forward_s")
    assert jl_f[64] > enz_f[64]
