"""Design-choice ablations called out in DESIGN.md.

* min-cut cache planning vs cache-everything (§IV-C),
* thread-locality analysis vs all-atomic shadow accumulation (§VI-A1),
* OpenMPOpt parallel load hoisting on/off (§V-E / §VIII),
* pre-AD optimization on/off (§V-E: "running optimizations prior to
  differentiation provides a significant speedup").
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ad import ADConfig
from repro.apps.lulesh import LuleshApp
from repro.apps.minibude import MinibudeApp, make_deck

from conftest import save_and_print

STEPS = 3


def test_ablation_mincut_cache(bench_once):
    def experiment():
        rows = []
        for label, cfg in (("min-cut", ADConfig()),
                           ("cache-all", ADConfig(cache_all=True))):
            app = LuleshApp("serial", nx=6, ad_config=cfg)
            g = app.run_gradient(app.make_domains(), STEPS)
            rows.append({"plan": label, "gradient_s": g.time,
                         "cache_stream_bytes": g.cost.stream_bytes})
        return rows

    rows = bench_once(experiment)
    save_and_print("ablation_mincut",
                   "Ablation SIV-C: min-cut cache planning vs "
                   "cache-everything", rows)
    by = {r["plan"]: r for r in rows}
    assert by["min-cut"]["cache_stream_bytes"] < \
        0.8 * by["cache-all"]["cache_stream_bytes"]
    assert by["min-cut"]["gradient_s"] <= \
        1.05 * by["cache-all"]["gradient_s"]


def test_ablation_tls_atomics(bench_once):
    def experiment():
        rows = []
        for label, cfg in (
                ("tls-analysis", ADConfig()),
                ("all-atomic", ADConfig(atomic_everywhere=True))):
            app = LuleshApp("openmp", nx=6, ad_config=cfg)
            g = app.run_gradient(app.make_domains(), STEPS, num_threads=16)
            rows.append({"mode": label, "gradient_s": g.time,
                         "atomic_ops": g.cost.atomic_ops})
        return rows

    rows = bench_once(experiment)
    save_and_print("ablation_tls",
                   "Ablation SVI-A1: thread-locality analysis vs "
                   "all-atomic accumulation", rows)
    by = {r["mode"]: r for r in rows}
    # "It is legal to fall back and mark every location as shared ...
    # but doing so may not be desirable for performance."  (LULESH's
    # connectivity gathers are atomic either way — the analysis saves
    # the affine/thread-local share.)
    assert by["all-atomic"]["atomic_ops"] > \
        1.2 * by["tls-analysis"]["atomic_ops"]
    assert by["all-atomic"]["gradient_s"] > by["tls-analysis"]["gradient_s"]


def test_ablation_openmp_opt(bench_once):
    def experiment():
        deck = make_deck(nprotein=24, nligand=8, nposes=256)
        rows = []
        for label, cfg in (("no-openmp-opt", ADConfig()),
                           ("openmp-opt", ADConfig(openmp_opt=True))):
            app = MinibudeApp("openmp", deck, ad_config=cfg)
            for nt in (1, 64):
                f = app.run_forward(num_threads=nt)
                _sh, g = app.run_gradient(num_threads=nt)
                rows.append({"pipeline": label, "threads": nt,
                             "overhead": g.time / f.time,
                             "cache_stream_bytes": g.cost.stream_bytes})
        return rows

    rows = bench_once(experiment)
    save_and_print("ablation_openmp_opt",
                   "Ablation SV-E: OpenMPOpt load hoisting "
                   "(miniBUDE)", rows)
    by = {(r["pipeline"], r["threads"]): r for r in rows}
    assert by[("openmp-opt", 1)]["cache_stream_bytes"] < \
        0.25 * by[("no-openmp-opt", 1)]["cache_stream_bytes"]
    growth_noopt = by[("no-openmp-opt", 64)]["overhead"] / \
        by[("no-openmp-opt", 1)]["overhead"]
    growth_opt = by[("openmp-opt", 64)]["overhead"] / \
        by[("openmp-opt", 1)]["overhead"]
    assert growth_noopt > growth_opt


def test_ablation_pre_ad_optimization(bench_once):
    def experiment():
        rows = []
        for label, cfg in (("optimized", ADConfig()),
                           ("no-pre-opt", ADConfig(opt_level="none"))):
            app = LuleshApp("serial", nx=5, ad_config=cfg)
            g = app.run_gradient(app.make_domains(), STEPS)
            grad_fn = app.module.functions[app.grad_fn()]
            rows.append({"pipeline": label, "gradient_s": g.time,
                         "grad_ops": grad_fn.num_ops()})
        return rows

    rows = bench_once(experiment)
    save_and_print("ablation_pre_opt",
                   "Ablation SV-E: optimization before differentiation",
                   rows)
    by = {r["pipeline"]: r for r in rows}
    assert by["optimized"]["gradient_s"] <= \
        1.1 * by["no-pre-opt"]["gradient_s"]
