"""§VII gradient verification table: reverse projection vs finite
differences for every application variant (the paper's correctness
methodology, run as part of the benchmark suite)."""

from __future__ import annotations

import pytest

from repro.apps.lulesh import LuleshApp
from repro.apps.minibude import MinibudeApp, make_deck

from conftest import save_and_print

LULESH_CASES = [
    ("LULESH serial", "serial", 1, 1),
    ("LULESH OpenMP", "openmp", 1, 4),
    ("LULESH RAJA", "raja", 1, 4),
    ("LULESH Julia", "julia", 1, 1),
    ("LULESH MPI x8", "mpi", 2, 1),
    ("LULESH hybrid x8x2", "hybrid", 2, 2),
    ("LULESH Julia MPI x8", "julia_mpi", 2, 1),
]

BUDE_CASES = [
    ("miniBUDE serial", "serial", 1),
    ("miniBUDE OpenMP", "openmp", 4),
    ("miniBUDE Julia tasks", "julia", 4),
]


def test_gradient_verification_table(bench_once):
    def experiment():
        rows = []
        for label, flavor, pr, nt in LULESH_CASES:
            app = LuleshApp(flavor, nx=2, pr=pr)
            rev, fd = app.projection_check(steps=3, num_threads=nt)
            rows.append({"variant": label, "reverse": rev, "fd": fd,
                         "rel_err": abs(rev - fd) / max(1.0, abs(fd))})
        deck = make_deck(nprotein=12, nligand=6, nposes=16)
        for label, variant, nt in BUDE_CASES:
            app = MinibudeApp(variant, deck)
            rev, fd = app.projection_check(num_threads=nt)
            rows.append({"variant": label, "reverse": rev, "fd": fd,
                         "rel_err": abs(rev - fd) / max(1.0, abs(fd))})
        return rows

    rows = bench_once(experiment)
    save_and_print("gradient_verification",
                   "SVII verification: reverse projection vs central "
                   "finite differences", rows)
    for r in rows:
        assert r["rel_err"] < 5e-4, r
