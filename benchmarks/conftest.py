"""Shared benchmark utilities.

Every benchmark regenerates one table/figure of the paper's evaluation
(§VII-VIII): it runs the relevant configurations on the simulated
machine, prints the same rows/series the paper plots, saves them under
``benchmarks/results/``, and asserts the paper's *shape* claims (who
wins, where scaling bends, how overheads trend).  Absolute numbers are
simulated seconds from the calibrated machine model, not wall time.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_and_print(name: str, title: str, rows: list[dict]) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / f"{name}.json"
    with open(out, "w") as f:
        json.dump({"title": title, "rows": rows}, f, indent=2)
    text = render_table(title, rows)
    with open(RESULTS_DIR / f"{name}.txt", "w") as f:
        f.write(text)
    print("\n" + text)


def render_table(title: str, rows: list[dict]) -> str:
    if not rows:
        return f"== {title} ==\n(no rows)\n"
    cols = list(rows[0].keys())
    widths = {c: max(len(c), *(len(_fmt(r.get(c))) for r in rows))
              for c in cols}
    lines = [f"== {title} ==",
             "  ".join(c.ljust(widths[c]) for c in cols),
             "  ".join("-" * widths[c] for c in cols)]
    for r in rows:
        lines.append("  ".join(_fmt(r.get(c)).ljust(widths[c])
                               for c in cols))
    return "\n".join(lines) + "\n"


def _fmt(v) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 100 or abs(v) < 1e-3:
            return f"{v:.3e}"
        return f"{v:.3f}"
    return str(v)


@pytest.fixture
def bench_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""
    def run(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1,
                                  warmup_rounds=0)
    return run
