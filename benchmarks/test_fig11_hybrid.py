"""Figure 11: hybrid MPI-rank x OpenMP-thread scaling of LULESH.

The paper's final scaling figure combines both parallelism levels in
one binary; the claim under test is that the Enzyme gradient keeps
scaling when ranks and threads are combined.
"""

from __future__ import annotations

import pytest

from repro.apps.lulesh import LuleshApp

from conftest import save_and_print

STEPS = 3
#: (pr, per-rank nx, threads) — 8 ranks x {1,2,4,8} threads plus the
#: single-rank references (node has 64 cores).
CASES = [
    (1, 8, 1), (1, 8, 4), (1, 8, 8),
    (2, 4, 1), (2, 4, 2), (2, 4, 4), (2, 4, 8),
]


def test_fig11_hybrid_scaling(bench_once):
    def experiment():
        rows = []
        for pr, nx, nt in CASES:
            app = LuleshApp("hybrid", nx=nx, pr=pr)
            f = app.run_forward(app.make_domains(), STEPS, nt).time
            g = app.run_gradient(app.make_domains(), STEPS, nt).time
            rows.append({"ranks": pr ** 3, "threads": nt,
                         "cores": pr ** 3 * nt, "forward_s": f,
                         "gradient_s": g, "overhead": g / f})
        return rows

    rows = bench_once(experiment)
    save_and_print("fig11_hybrid",
                   "Fig 11: LULESH hybrid MPI+OpenMP scaling "
                   "(fixed total size)", rows)

    by = {(r["ranks"], r["threads"]): r for r in rows}
    # adding threads on top of ranks keeps helping (both modes)
    assert by[(8, 4)]["forward_s"] < by[(8, 1)]["forward_s"]
    assert by[(8, 4)]["gradient_s"] < by[(8, 1)]["gradient_s"]
    # distributing the same problem over 8 ranks beats 1 rank
    assert by[(8, 1)]["forward_s"] < by[(1, 1)]["forward_s"]
    # the gradient's hybrid speedup tracks the primal's
    f_sp = by[(1, 1)]["forward_s"] / by[(8, 8)]["forward_s"]
    g_sp = by[(1, 1)]["gradient_s"] / by[(8, 8)]["gradient_s"]
    assert g_sp > 0.4 * f_sp
