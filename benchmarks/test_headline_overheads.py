"""Headline overheads (abstract): gradient/forward at 64 threads/ranks.

The paper reports differentiation overheads of roughly 3.4-10.8x for
the C++ variants and 5.4-12.5x for the Julia variants "on benchmarks
with 64 threads or nodes".  Absolute factors depend on the machine; the
shape claims asserted here are (a) overheads land in the same
single-digit regime, (b) every Julia variant's overhead exceeds its
C++ counterpart's, (c) the operator-overloading baseline is an order
of magnitude above Enzyme.
"""

from __future__ import annotations

import pytest

from repro.apps.lulesh import LuleshApp
from repro.apps.minibude import MinibudeApp, make_deck

from conftest import save_and_print

STEPS = 3


def test_headline_overheads(bench_once):
    def experiment():
        rows = []

        def add(label, fwd, grad):
            rows.append({"benchmark": label, "forward_s": fwd,
                         "gradient_s": grad, "overhead": grad / fwd})

        # 64 MPI ranks
        for label, flavor in (("LULESH C++ MPI x64", "mpi"),
                              ("LULESH Julia MPI x64", "julia_mpi"),
                              ("LULESH RAJA MPI x64", "raja_mpi")):
            app = LuleshApp(flavor, nx=3, pr=4)
            f = app.run_forward(app.make_domains(), STEPS).time
            g = app.run_gradient(app.make_domains(), STEPS).time
            add(label, f, g)

        app = LuleshApp("mpi", nx=3, pr=4)
        f, _ = app.run_codipack_forward(app.make_domains(), STEPS)
        g, _ = app.run_codipack_gradient(app.make_domains(), STEPS)
        add("LULESH CoDiPack MPI x64", f.time, g.time)

        # 64 threads
        for label, flavor in (("LULESH C++ OpenMP x64", "openmp"),
                              ("LULESH RAJA x64", "raja")):
            app = LuleshApp(flavor, nx=12)
            f = app.run_forward(app.make_domains(), STEPS, 64).time
            g = app.run_gradient(app.make_domains(), STEPS, 64).time
            add(label, f, g)

        deck = make_deck(nprotein=24, nligand=8, nposes=256)
        for label, variant in (("miniBUDE C++ OpenMP x64", "openmp"),
                               ("miniBUDE Julia tasks x64", "julia")):
            app = MinibudeApp(variant, deck, ntasks=64)
            f = app.run_forward(num_threads=64).time
            g = app.run_gradient(num_threads=64)[1].time
            add(label, f, g)
        return rows

    rows = bench_once(experiment)
    save_and_print("headline_overheads",
                   "Headline: differentiation overhead at 64 "
                   "threads/ranks (paper: C++ 3.4-10.8x, Julia "
                   "5.4-12.5x)", rows)

    ov = {r["benchmark"]: r["overhead"] for r in rows}
    gt = {r["benchmark"]: r["gradient_s"] for r in rows}
    enzyme = {k: v for k, v in ov.items() if "CoDiPack" not in k}
    # (a) single-digit regime for every Enzyme-differentiated variant
    for k, v in enzyme.items():
        assert 1.5 < v < 15.0, (k, v)
    # (b) Julia above its C++ counterpart
    assert ov["LULESH Julia MPI x64"] > ov["LULESH C++ MPI x64"] * 0.95
    assert ov["miniBUDE Julia tasks x64"] > ov["miniBUDE C++ OpenMP x64"]
    # (c) the tape baseline's *absolute* gradient time is far above
    #     Enzyme's (its gradient/taped-forward ratio looks mild only
    #     because its forward is already slowed by AD types — the same
    #     artifact §VIII describes for its scaling).
    assert gt["LULESH CoDiPack MPI x64"] > 3.0 * gt["LULESH C++ MPI x64"]
