"""Figure 10: LULESH OpenMP weak scaling.

The per-thread problem size stays fixed while threads increase; the
paper plots execution time and efficiency for OpenMP and OpenMPOpt and
finds the gradient's weak scaling matches the primal's.
"""

from __future__ import annotations

import pytest

from repro.ad import ADConfig
from repro.apps.lulesh import LuleshApp

from conftest import save_and_print

STEPS = 3
#: (threads, nx): total elements ~ 250 * threads (cube-rounded).
CASES = [(1, 6), (8, 12), (27, 18), (64, 24)]


def test_fig10_weak_scaling(bench_once):
    def experiment():
        rows = []
        for label, cfg in (("C++ OpenMP", ADConfig()),
                           ("C++ OpenMPOpt", ADConfig(openmp_opt=True))):
            base_f = base_g = None
            for nt, nx in CASES:
                app = LuleshApp("openmp", nx=nx, ad_config=cfg)
                f = app.run_forward(app.make_domains(), STEPS, nt).time
                g = app.run_gradient(app.make_domains(), STEPS, nt).time
                if base_f is None:
                    base_f, base_g = f, g
                rows.append({
                    "impl": label, "threads": nt, "nx": nx,
                    "forward_s": f, "gradient_s": g,
                    "fwd_efficiency": base_f / f,
                    "grad_efficiency": base_g / g,
                    "overhead": g / f,
                })
        return rows

    rows = bench_once(experiment)
    save_and_print("fig10_openmp_weak",
                   "Fig 10: LULESH OpenMP weak scaling", rows)

    by = {(r["impl"], r["threads"]): r for r in rows}
    for impl in ("C++ OpenMP", "C++ OpenMPOpt"):
        # gradient weak efficiency tracks the primal's (§VIII: "scaling
        # of the gradient matches that of the primal")
        f_eff = by[(impl, 27)]["fwd_efficiency"]
        g_eff = by[(impl, 27)]["grad_efficiency"]
        assert g_eff > 0.5 * f_eff, impl
        # weak-scaling time grows sub-linearly in threads (it is weak
        # scaling, not serialization): 64 threads on 64x work costs far
        # less than 64x the single-thread time.
        assert by[(impl, 64)]["forward_s"] < \
            8.0 * by[(impl, 1)]["forward_s"], impl
