"""Pass-manager behaviour and pipeline-level invariants."""

import numpy as np
import pytest

from repro.interp import Executor
from repro.ir import F64, I64, IRBuilder, Ptr, verify_module
from repro.passes import (
    ConstantFold,
    DCE,
    PassManager,
    cleanup_pipeline,
    default_pipeline,
)


def _sample_module():
    b = IRBuilder()
    with b.function("f", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        k = b.mul(3.0, 2.0)            # foldable
        dead = b.sin(k)                # dead after folding
        with b.for_(0, n) as i:
            inv = b.sqrt(b.add(k, 10.0))   # invariant
            v = b.load(x, i)
            b.store(b.add(b.mul(v, inv), 0.0), x, i)
    return b


def test_pass_manager_converges_and_counts():
    b = _sample_module()
    pm = default_pipeline(verify_each=True)
    changed = pm.run(b.module)
    assert changed
    assert pm.stats  # at least one pass reported work
    # A second run reaches a fixpoint quickly.
    pm2 = default_pipeline()
    pm2.run(b.module)
    verify_module(b.module)


def test_pipeline_shrinks_and_preserves():
    b = _sample_module()
    before = b.module.functions["f"].num_ops()
    xs_expect = np.arange(1.0, 6.0) * 4.0
    default_pipeline().run(b.module)
    after = b.module.functions["f"].num_ops()
    assert after < before
    xs = np.arange(1.0, 6.0)
    Executor(b.module).run("f", xs, 5)
    np.testing.assert_allclose(xs, xs_expect)


def test_cleanup_pipeline_on_gradient():
    from repro.ad import ADConfig, Duplicated, autodiff
    sizes = {}
    for post_opt in (False, True):
        b = IRBuilder()
        with b.function("k", [("x", Ptr()), ("n", I64)]) as f:
            x, n = f.args
            with b.parallel_for(0, n) as i:
                v = b.load(x, i)
                b.store(v * v, x, i)
        grad = autodiff(b.module, "k", [Duplicated, None],
                        ADConfig(post_opt=post_opt))
        sizes[post_opt] = b.module.functions[grad].num_ops()
        # both are correct
        x0 = np.arange(1.0, 4.0)
        dx = np.ones(3)
        Executor(b.module).run(grad, x0.copy(), dx, 3)
        np.testing.assert_allclose(dx, 2 * x0)
    assert sizes[True] < sizes[False]


def test_pass_order_custom_manager():
    b = _sample_module()
    pm = PassManager([ConstantFold(), DCE()], max_rounds=2)
    pm.run(b.module)
    fn = b.module.functions["f"]
    # the dead sin(6.0) vanished
    assert not any(op.opcode == "sin" for op in fn.walk())


def test_verify_each_catches_breakage():
    class Vandal(ConstantFold):
        name = "vandal"

        def run(self, fn, module):
            # break SSA: duplicate a result-less use of a loop-local
            from repro.ir.ops import StoreOp
            for op in fn.walk():
                if op.opcode == "for":
                    inner = op.body.ops[-1]
                    if inner.opcode == "store":
                        fn.body.append(inner.clone({}))
                        return True
            return False

    b = _sample_module()
    from repro.ir import VerificationError
    pm = PassManager([Vandal()], verify_each=True)
    with pytest.raises(VerificationError):
        pm.run(b.module)
