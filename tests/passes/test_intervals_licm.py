"""Interval facts × LICM/OpenMPOpt: hoisting an invariant load out of
a loop (or a parallel region) must not lose — or invent — bounds
certification, and the public aliasing region queries the certifier
and the cache planner share must agree with what LICM does."""

from __future__ import annotations

from repro.ir import I64, IRBuilder, Ptr, verify_module
from repro.passes import LICM, OpenMPOpt, analyze_aliasing
from repro.passes.intervals import PROVEN, UNPROVEN, analyze_intervals


def _fn(module):
    return next(iter(module.functions.values()))


def _statuses(fn, ia, opcode):
    return [ia.status(op) for op in fn.body.walk() if op.opcode == opcode]


def test_licm_hoisted_load_keeps_proven_status():
    b = IRBuilder()
    with b.function("f", [("x", Ptr()), ("c", Ptr()), ("n", I64)],
                    arg_attrs=[{"extent": 100, "noalias": True},
                               {"extent": 4, "noalias": True}, {}]):
        fn = b.module.functions["f"]
        x, c, n = fn.args
        with b.for_(0, 100) as i:
            k = b.load(c, 2)            # invariant AND proven
            b.store(b.mul(b.load(x, i), k), x, i)
    verify_module(b.module)
    fn = _fn(b.module)

    before = analyze_intervals(fn, b.module)
    assert before.counts() == {"proven": 3, "unproven": 0, "oob": 0}

    changed = LICM().run(fn, b.module)
    assert changed
    # The invariant load now sits outside the loop; every access is
    # still classified, and none lost its proof.
    after = analyze_intervals(fn, b.module)
    assert after.counts() == {"proven": 3, "unproven": 0, "oob": 0}
    # ... and it really was hoisted to the top level.
    top = [op.opcode for op in fn.body.ops]
    assert "load" in top


def test_licm_does_not_invent_proofs():
    b = IRBuilder()
    with b.function("f", [("x", Ptr()), ("c", Ptr()), ("n", I64)],
                    arg_attrs=[{"extent": 100, "noalias": True},
                               {"extent": 4, "noalias": True}, {}]):
        fn = b.module.functions["f"]
        x, c, n = fn.args
        with b.for_(0, 100) as i:
            k = b.load(c, n)            # invariant but NOT proven
            b.store(b.mul(b.load(x, i), k), x, i)
    verify_module(b.module)
    fn = _fn(b.module)

    assert analyze_intervals(fn, b.module).counts()["unproven"] == 1
    LICM().run(fn, b.module)
    after = analyze_intervals(fn, b.module)
    assert after.counts()["unproven"] == 1
    assert after.counts()["proven"] == 2


def test_openmp_opt_hoist_keeps_classification():
    def build():
        b = IRBuilder()
        with b.function("f", [("x", Ptr()), ("c", Ptr())],
                        arg_attrs=[{"extent": 64, "noalias": True},
                                   {"extent": 4, "noalias": True}]):
            fn = b.module.functions["f"]
            x, c = fn.args
            with b.fork(8):
                with b.workshare(0, 64) as i:
                    k = b.load(c, 1)    # region-invariant, proven
                    b.store(b.mul(b.load(x, i), k), x, i)
        verify_module(b.module)
        return b.module

    module = build()
    fn = _fn(module)
    before = analyze_intervals(fn, module).counts()
    assert before == {"proven": 3, "unproven": 0, "oob": 0}

    OpenMPOpt().run(fn, module)
    after = analyze_intervals(fn, module).counts()
    assert after == before


def test_region_written_origins_public_query():
    b = IRBuilder()
    with b.function("f", [("x", Ptr()), ("y", Ptr())],
                    arg_attrs=[{"extent": 8, "noalias": True},
                               {"extent": 8, "noalias": True}]):
        fn = b.module.functions["f"]
        x, y = fn.args
        with b.fork(2):
            with b.workshare(0, 8) as i:
                b.store(b.load(x, i), y, i)
    verify_module(b.module)
    fn = _fn(b.module)
    ai = analyze_aliasing(fn, b.module)

    region = next(op for op in fn.body.walk() if op.opcode == "fork")
    writes, unknown = ai.region_written_origins(region)
    assert not unknown
    # Only y's origin is written.
    assert writes == ai.provenance(fn.args[1])
    assert ai.readonly_in_region(fn.args[0], region)
    assert not ai.readonly_in_region(fn.args[1], region)
    # The query is cached per region op.
    assert ai.region_written_origins(region) == (writes, unknown)


def test_region_written_origins_unknown_on_opaque_call():
    b = IRBuilder()
    with b.function("f", [("x", Ptr())],
                    arg_attrs=[{"extent": 8, "noalias": True}]):
        fn = b.module.functions["f"]
        x = fn.args[0]
        with b.fork(2):
            b.call("mpi.wait", b.call("mpi.irecv", x, 0, 0, 4))
    verify_module(b.module)
    fn = _fn(b.module)
    ai = analyze_aliasing(fn, b.module)
    region = next(op for op in fn.body.walk() if op.opcode == "fork")
    _writes, unknown = ai.region_written_origins(region)
    assert unknown
    assert not ai.readonly_in_region(fn.args[0], region)
