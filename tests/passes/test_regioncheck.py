"""Native-region claimability certifier: the reason taxonomy on small
programs, nested-region handling, may-alias stores, and the report
shape the region_lint CLI snapshots."""

from __future__ import annotations

from repro.ir import I64, IRBuilder, Ptr, verify_module
from repro.passes.regioncheck import OK, RegionChecker, region_report


def _check(build):
    b = IRBuilder()
    build(b)
    verify_module(b.module)
    fn = next(iter(b.module.functions.values()))
    return RegionChecker(fn, b.module).run()


def _reasons(checker):
    """label -> list of reasons in statement order."""
    return {r.label: [s.reason for s in r.statements]
            for r in checker.regions}


def test_fully_claimable_workshare():
    def build(b):
        with b.function("f", [("x", Ptr())], arg_attrs=[{"extent": 8}]):
            fn = b.module.functions["f"]
            x = fn.args[0]
            with b.fork(2):
                with b.workshare(0, 8) as i:
                    v = b.load(x, i)
                    b.store(b.mul(v, 2.0), x, i)

    rc = _check(build)
    kinds = {r.kind for r in rc.regions}
    assert kinds == {"fork", "workshare-simd"}
    ws = next(r for r in rc.regions if r.kind.startswith("workshare"))
    assert ws.claimable
    assert [s.reason for s in ws.statements] == [OK, OK, OK]
    # The fork body's only statement is the (claimable) workshare loop.
    fk = next(r for r in rc.regions if r.kind == "fork")
    assert fk.claimable


def test_unproven_bounds_blocks_statement():
    def build(b):
        with b.function("f", [("x", Ptr()), ("ix", Ptr(I64))],
                        arg_attrs=[{"extent": 8}, {"extent": 8}]):
            fn = b.module.functions["f"]
            x, ix = fn.args
            with b.fork(2):
                with b.workshare(0, 8) as i:
                    j = b.load(ix, i)
                    b.store(0.0, x, j)

    rc = _check(build)
    ws = next(r for r in rc.regions if r.kind.startswith("workshare"))
    assert not ws.claimable
    assert ws.counts()["unproven-bounds"] == 1


def test_unclaimable_opcode_and_call():
    def build(b):
        with b.function("f", [("x", Ptr())], arg_attrs=[{"extent": 8}]):
            fn = b.module.functions["f"]
            x = fn.args[0]
            with b.fork(2):
                with b.workshare(0, 8) as i:
                    v = b.load(x, i)
                    b.store(b.sin(v), x, i)          # no C template
                    b.call("rt.num_threads")

    rc = _check(build)
    ws = next(r for r in rc.regions if r.kind.startswith("workshare"))
    counts = ws.counts()
    assert counts["unclaimable-op:sin"] == 1
    assert counts["call:rt.num_threads"] == 1


def test_idiv_imod_stay_unclaimable():
    """Floor division differs from C truncation on negatives — the
    emitter must never claim it."""
    def build(b):
        with b.function("f", [("x", Ptr()), ("n", I64)],
                        arg_attrs=[{"extent": 8}, {}]):
            fn = b.module.functions["f"]
            x, n = fn.args
            with b.fork(2):
                with b.workshare(0, 8) as i:
                    q = b.idiv(i, 3)
                    r = b.imod(b.sub(i, 4), 3)
                    b.store(0.0, x, b.min(b.max(b.add(q, r), 0), 7))

    rc = _check(build)
    ws = next(r for r in rc.regions if r.kind.startswith("workshare"))
    counts = ws.counts()
    assert counts["unclaimable-op:idiv"] == 1
    assert counts["unclaimable-op:imod"] == 1


def test_barrier_splits_region():
    def build(b):
        with b.function("f", [("x", Ptr())], arg_attrs=[{"extent": 8}]):
            fn = b.module.functions["f"]
            x = fn.args[0]
            with b.fork(2):
                with b.workshare(0, 8) as i:
                    b.store(0.0, x, i)
                b.barrier()
                with b.workshare(0, 8) as i:
                    b.store(1.0, x, i)

    rc = _check(build)
    fk = next(r for r in rc.regions if r.kind == "fork")
    assert fk.counts()["barrier"] == 1
    # Both workshares still get their own (claimable) entries.
    assert sum(1 for r in rc.regions if r.kind.startswith("workshare")) == 2


def test_may_alias_store_blocks():
    def build(b):
        with b.function("f", [("x", Ptr()), ("y", Ptr())],
                        arg_attrs=[{"extent": 8},
                                   {"extent": 8, "noalias": True}]):
            fn = b.module.functions["f"]
            x, y = fn.args
            with b.fork(2):
                with b.workshare(0, 8) as i:
                    # x may alias x (same origin RMW: fine) but a
                    # second non-noalias arg could alias x.
                    v = b.load(x, i)
                    b.store(v, x, i)

    rc = _check(build)
    ws = next(r for r in rc.regions if r.kind.startswith("workshare"))
    # Same-single-origin RMW is allowed.
    assert ws.claimable


def test_may_alias_two_args_blocks():
    def build(b):
        with b.function("f", [("x", Ptr()), ("y", Ptr())],
                        arg_attrs=[{"extent": 8}, {"extent": 8}]):
            fn = b.module.functions["f"]
            x, y = fn.args
            with b.fork(2):
                with b.workshare(0, 8) as i:
                    v = b.load(x, i)
                    b.store(v, y, i)   # y may alias x (no noalias)

    rc = _check(build)
    ws = next(r for r in rc.regions if r.kind.startswith("workshare"))
    assert ws.counts().get("may-alias-store") == 1


def test_noalias_args_do_not_block():
    def build(b):
        with b.function("f", [("x", Ptr()), ("y", Ptr())],
                        arg_attrs=[{"extent": 8, "noalias": True},
                                   {"extent": 8, "noalias": True}]):
            fn = b.module.functions["f"]
            x, y = fn.args
            with b.fork(2):
                with b.workshare(0, 8) as i:
                    b.store(b.load(x, i), y, i)

    rc = _check(build)
    ws = next(r for r in rc.regions if r.kind.startswith("workshare"))
    assert ws.claimable


def test_nested_parallel_blocks_and_reports():
    def build(b):
        with b.function("f", [("x", Ptr())], arg_attrs=[{"extent": 8}]):
            fn = b.module.functions["f"]
            x = fn.args[0]
            with b.spawn():
                with b.fork(2):
                    with b.workshare(0, 8) as i:
                        b.store(0.0, x, i)

    rc = _check(build)
    kinds = sorted(r.kind for r in rc.regions)
    assert kinds == ["fork", "spawn", "workshare-simd"]
    sp = next(r for r in rc.regions if r.kind == "spawn")
    assert sp.counts()["nested-parallel:fork"] == 1


def test_serial_container_recursion():
    def build(b):
        with b.function("f", [("x", Ptr())], arg_attrs=[{"extent": 8}]):
            fn = b.module.functions["f"]
            x = fn.args[0]
            with b.fork(2):
                with b.workshare(0, 4) as i:
                    with b.for_(0, 2) as k:
                        b.store(0.0, x, b.add(b.mul(i, 2), k))  # ok
                with b.workshare(0, 4) as i:
                    with b.for_(0, 2) as k:
                        b.call("rt.num_threads")                # blocked

    rc = _check(build)
    shares = [r for r in rc.regions if r.kind.startswith("workshare")]
    ok_counts = [r.counts() for r in shares]
    assert {"ok": 1} in ok_counts
    assert any("nested-blocked" in c for c in ok_counts)


def test_report_shape():
    def build(b):
        with b.function("f", [("x", Ptr())], arg_attrs=[{"extent": 8}]):
            fn = b.module.functions["f"]
            x = fn.args[0]
            with b.fork(2):
                with b.workshare(0, 8) as i:
                    b.store(0.0, x, i)

    b = IRBuilder()
    build(b)
    verify_module(b.module)
    fn = next(iter(b.module.functions.values()))
    rep = region_report(fn, b.module)
    assert rep["tool"] == "regioncheck"
    assert rep["fn"] == "f"
    assert rep["bounds"] == {"proven": 1, "unproven": 0, "oob": 0}
    assert rep["claimable_regions"] >= 1
    for region in rep["regions"]:
        assert {"kind", "label", "claimable", "counts",
                "statements"} <= set(region)
        for stmt in region["statements"]:
            assert {"op", "opcode", "claimable", "reason"} <= set(stmt)
