"""Interval/affine-index dataflow: lattice unit tests, affine bound
proofs, flow-sensitive context (loops, fork/workshare, branches), and
the proven/unproven/oob access classification."""

from __future__ import annotations

import pytest

from repro.ir import I64, IRBuilder, Ptr, verify_module
from repro.passes.intervals import (
    NEG_INF,
    OOB,
    POS_INF,
    PROVEN,
    UNPROVEN,
    Interval,
    analyze_intervals,
)


# ---------------------------------------------------------------------
# Interval lattice
# ---------------------------------------------------------------------

def test_interval_lattice_basics():
    top = Interval.top()
    assert top.is_top
    c = Interval.const(3)
    assert (c.lo, c.hi) == (3, 3)
    assert c.join(Interval.const(7)) == Interval(3, 7)
    assert c.meet(Interval(5, 9)) is None
    assert Interval(0, 8).meet(Interval(5, 9)) == Interval(5, 8)


def test_interval_widening_blows_unstable_endpoints():
    a = Interval(0, 10)
    assert a.widen(Interval(0, 11)) == Interval(0, POS_INF)
    assert a.widen(Interval(-1, 10)) == Interval(NEG_INF, 10)
    # Stable endpoints survive widening.
    assert a.widen(Interval(2, 9)) == a


def test_interval_arithmetic():
    assert Interval(1, 2).add(Interval(10, 20)) == Interval(11, 22)
    assert Interval(1, 2).neg() == Interval(-2, -1)
    assert Interval(1, 2).scale(-3) == Interval(-6, -3)
    assert Interval(-1, 2).mul(Interval(-5, 3)) == Interval(-10, 6)
    # 0 * inf must stay 0, not NaN.
    z = Interval.const(0).mul(Interval.top())
    assert z == Interval.const(0)


def test_interval_int64_overflow_clamps_to_inf():
    big = Interval.const(2 ** 62)
    out = big.add(big)
    assert out.hi == POS_INF  # not a wrong finite value


# ---------------------------------------------------------------------
# Classification on programs
# ---------------------------------------------------------------------

def _analyze(build):
    b = IRBuilder()
    build(b)
    verify_module(b.module)
    fn = next(iter(b.module.functions.values()))
    return analyze_intervals(fn, b.module), fn


def _accesses(fn, ia, opcode):
    return [ia.status(op) for op in fn.body.walk()
            if op.opcode == opcode]


def test_alloc_extent_proves_loop_body_access():
    def build(b):
        with b.function("f", [("n", I64)]) as f:
            (n,) = f.args
            buf = b.alloc(n)
            with b.for_(0, n) as i:
                b.store(0.0, buf, i)
                # reversal: n-1-i is also in [0, n-1]
                b.store(1.0, buf, b.sub(b.sub(n, 1), i))

    ia, fn = _analyze(build)
    assert _accesses(fn, ia, "store") == [PROVEN, PROVEN]


def test_arg_extent_attr_proves_and_flags_oob():
    def build(b):
        with b.function("f", [("x", Ptr())], arg_attrs=[{"extent": 10}]):
            fn = b.module.functions["f"]
            x = fn.args[0]
            with b.for_(0, 10) as i:
                b.store(0.0, x, i)            # proven
                b.load(x, b.add(i, 10))       # provably OOB (hi=19)

    ia, fn = _analyze(build)
    assert _accesses(fn, ia, "store") == [PROVEN]
    assert _accesses(fn, ia, "load") == [OOB]
    finds = ia.findings()
    assert len(finds) == 1 and finds[0].op  # rendered op text present


def test_unbounded_index_stays_unproven():
    def build(b):
        with b.function("f", [("x", Ptr()), ("n", I64)],
                        arg_attrs=[{"extent": 10}, {}]):
            fn = b.module.functions["f"]
            x, n = fn.args
            b.load(x, n)   # n unconstrained

    ia, fn = _analyze(build)
    assert _accesses(fn, ia, "load") == [UNPROVEN]
    assert ia.counts() == {"proven": 0, "unproven": 1, "oob": 0}


def test_indirect_index_is_unproven():
    def build(b):
        with b.function("f", [("x", Ptr()), ("ix", Ptr(I64))],
                        arg_attrs=[{"extent": 8}, {"extent": 8}]):
            fn = b.module.functions["f"]
            x, ix = fn.args
            with b.for_(0, 8) as i:
                j = b.load(ix, i)        # proven read of the table
                b.load(x, j)             # value loaded: unprovable

    ia, fn = _analyze(build)
    assert _accesses(fn, ia, "load") == [PROVEN, UNPROVEN]


def test_fork_workshare_tid_chunks_prove():
    def build(b):
        with b.function("f", [("x", Ptr())], arg_attrs=[{"extent": 64}]):
            fn = b.module.functions["f"]
            x = fn.args[0]
            with b.fork(8) as (tid, _nth):
                base = b.mul(tid, 8)
                with b.workshare(0, 8) as i:
                    b.store(0.0, x, b.add(base, i))  # tid*8+i in [0,63]

    ia, fn = _analyze(build)
    assert _accesses(fn, ia, "store") == [PROVEN]


def test_ptradd_offset_chain_counts_toward_extent():
    def build(b):
        with b.function("f", [("x", Ptr())], arg_attrs=[{"extent": 10}]):
            fn = b.module.functions["f"]
            x = fn.args[0]
            p = b.ptradd(x, 4)
            b.store(0.0, p, 5)      # 4+5 = 9 < 10: proven
            b.load(p, 6)            # 4+6 = 10: OOB

    ia, fn = _analyze(build)
    assert _accesses(fn, ia, "store") == [PROVEN]
    assert _accesses(fn, ia, "load") == [OOB]


def test_uniform_branch_refinement_proves():
    def build(b):
        with b.function("f", [("x", Ptr()), ("n", I64)],
                        arg_attrs=[{"extent": 64}, {}]):
            fn = b.module.functions["f"]
            x, n = fn.args
            with b.if_(b.cmp("ge", n, 0)):
                with b.if_(b.cmp("lt", n, 64)):
                    b.load(x, n)            # n in [0, 63]: proven
            with b.if_(b.cmp("lt", n, 64)):
                b.load(x, n)                # lower bound unknown

    ia, fn = _analyze(build)
    assert _accesses(fn, ia, "load") == [PROVEN, UNPROVEN]


def test_nonuniform_condition_does_not_refine():
    """A condition computed from loaded data varies across the simd
    lanes the lowering executes together, so refining on it would be
    unsound under masked execution — such accesses stay unproven."""
    def build(b):
        with b.function("f", [("x", Ptr()), ("ix", Ptr(I64))],
                        arg_attrs=[{"extent": 8}, {"extent": 8}]):
            fn = b.module.functions["f"]
            x, ix = fn.args
            with b.for_(0, 8, simd=True) as i:
                j = b.load(ix, i)
                ok_lo = b.cmp("ge", j, 0)
                with b.if_(ok_lo):
                    with b.if_(b.cmp("lt", j, 8)):
                        b.load(x, j)

    ia, fn = _analyze(build)
    statuses = _accesses(fn, ia, "load")
    assert statuses[-1] == UNPROVEN


def test_while_counter_widens_to_unbounded():
    def build(b):
        with b.function("f", [("x", Ptr()), ("n", I64)],
                        arg_attrs=[{"extent": 100}, {}]):
            fn = b.module.functions["f"]
            x, n = fn.args
            with b.while_() as k:
                b.load(x, k)    # k in [0, +inf): unproven upper bound
                b.loop_while(b.cmp("lt", k, n))

    ia, fn = _analyze(build)
    assert _accesses(fn, ia, "load") == [UNPROVEN]


def test_mpi_rank_bounded_by_comm_size():
    def build(b):
        with b.function("f", [("x", Ptr())], arg_attrs=[{"extent": 4}]):
            fn = b.module.functions["f"]
            x = fn.args[0]
            b.call("mpi.comm_size")
            r = b.call("mpi.comm_rank")
            b.store(0.0, x, r)   # r in [0, size-1], but size unbounded

    ia, fn = _analyze(build)
    # rank >= 0 is known; the upper bound needs a concrete size, so
    # this stays unproven rather than OOB.
    assert _accesses(fn, ia, "store") == [UNPROVEN]


def test_step_two_loop_interval():
    def build(b):
        with b.function("f", [("x", Ptr())], arg_attrs=[{"extent": 10}]):
            fn = b.module.functions["f"]
            x = fn.args[0]
            with b.for_(0, 10, step=2) as i:
                b.store(0.0, x, i)

    ia, fn = _analyze(build)
    assert _accesses(fn, ia, "store") == [PROVEN]


def test_short_buffer_rejected_at_wrap(tmp_path):
    import numpy as np

    from repro.interp import ExecConfig, Executor

    b = IRBuilder()
    with b.function("f", [("x", Ptr())], arg_attrs=[{"extent": 10}]):
        fn = b.module.functions["f"]
        b.store(0.0, fn.args[0], 9)
    verify_module(b.module)
    ex = Executor(b.module, ExecConfig())
    with pytest.raises(TypeError, match="extent"):
        ex.run("f", np.zeros(5))
    ex2 = Executor(b.module, ExecConfig())
    ex2.run("f", np.zeros(12))   # longer is fine
