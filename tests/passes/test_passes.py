"""Optimization pass unit tests."""

import numpy as np
import pytest

from repro.interp import ExecConfig, Executor
from repro.ir import F64, I64, IRBuilder, Constant, Ptr, verify_module
from repro.passes import (
    CSE,
    ConstantFold,
    DCE,
    LICM,
    OpenMPOpt,
    Simplify,
    default_pipeline,
    inline_all,
)


def _count(fn, opcode):
    return sum(1 for op in fn.walk() if op.opcode == opcode)


def test_dce_removes_dead_arith():
    b = IRBuilder()
    with b.function("f", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        dead = b.load(x, 0) * 2.0
        b.store(1.0, x, 0)
    fn = b.module.functions["f"]
    assert _count(fn, "mul") == 1
    DCE().run(fn, b.module)
    assert _count(fn, "mul") == 0
    assert _count(fn, "load") == 0
    assert _count(fn, "store") == 1
    verify_module(b.module)


def test_dce_keeps_effects():
    b = IRBuilder()
    with b.function("f", [("x", Ptr())]) as f:
        b.atomic_add(1.0, f.args[0], 0)
        b.memset(f.args[0], 0.0, 1)
    fn = b.module.functions["f"]
    DCE().run(fn, b.module)
    assert _count(fn, "atomic") == 1
    assert _count(fn, "memset") == 1


def test_dce_removes_empty_loop():
    b = IRBuilder()
    with b.function("f", [("n", I64)]) as f:
        with b.for_(0, f.args[0]) as i:
            pass
    fn = b.module.functions["f"]
    DCE().run(fn, b.module)
    assert _count(fn, "for") == 0


def test_constfold_arith():
    b = IRBuilder()
    with b.function("f", [("x", Ptr())]) as f:
        v = b.mul(b.add(2.0, 3.0), 4.0)
        b.store(v, f.args[0], 0)
    fn = b.module.functions["f"]
    ConstantFold().run(fn, b.module)
    DCE().run(fn, b.module)
    store = fn.body.ops[-2]
    assert store.opcode == "store"
    assert isinstance(store.operands[0], Constant)
    assert store.operands[0].value == 20.0


def test_constfold_identities():
    b = IRBuilder()
    with b.function("f", [("a", F64)], ret=F64) as f:
        a = f.args[0]
        v = (a + 0.0) * 1.0 - 0.0
        b.ret(v / 1.0)
    fn = b.module.functions["f"]
    ConstantFold().run(fn, b.module)
    DCE().run(fn, b.module)
    # everything folds to the argument itself
    assert fn.body.ops[-1].operands[0] is fn.args[0]


def test_cse_merges_pure_ops():
    b = IRBuilder()
    with b.function("f", [("a", F64)], ret=F64) as f:
        a = f.args[0]
        v1 = a * a
        v2 = a * a
        b.ret(v1 + v2)
    fn = b.module.functions["f"]
    CSE().run(fn, b.module)
    DCE().run(fn, b.module)
    assert _count(fn, "mul") == 1


def test_cse_commutative():
    b = IRBuilder()
    with b.function("f", [("a", F64), ("c", F64)], ret=F64) as f:
        a, c = f.args
        b.ret(a * c + c * a)
    fn = b.module.functions["f"]
    CSE().run(fn, b.module)
    DCE().run(fn, b.module)
    assert _count(fn, "mul") == 1


def test_cse_does_not_merge_loads():
    b = IRBuilder()
    with b.function("f", [("x", Ptr())], ret=F64) as f:
        x = f.args[0]
        v1 = b.load(x, 0)
        b.store(v1 + 1.0, x, 0)
        v2 = b.load(x, 0)  # different value!
        b.ret(v1 + v2)
    fn = b.module.functions["f"]
    CSE().run(fn, b.module)
    assert _count(fn, "load") == 2


def test_licm_hoists_invariant():
    b = IRBuilder()
    with b.function("f", [("x", Ptr()), ("s", F64), ("n", I64)]) as f:
        x, s, n = f.args
        with b.for_(0, n) as i:
            k = b.exp(s)  # invariant
            b.store(b.load(x, i) * k, x, i)
    fn = b.module.functions["f"]
    LICM().run(fn, b.module)
    loop = next(op for op in fn.walk() if op.opcode == "for")
    assert _count(fn, "exp") == 1
    assert all(op.opcode != "exp" for op in loop.body.ops)


def test_licm_skips_parallel_regions():
    """Plain LICM must not see through parallel regions (the outlined
    body is a separate function in real LLVM)."""
    b = IRBuilder()
    with b.function("f", [("x", Ptr()), ("s", F64), ("n", I64)]) as f:
        x, s, n = f.args
        with b.parallel_for(0, n) as i:
            k = b.exp(s)
            b.store(b.load(x, i) * k, x, i)
    fn = b.module.functions["f"]
    LICM().run(fn, b.module)
    region = next(op for op in fn.walk() if op.opcode == "parallel_for")
    assert any(op.opcode == "exp" for op in region.body.ops)


def test_openmp_opt_hoists_from_parallel():
    b = IRBuilder()
    with b.function("f", [("x", Ptr()), ("s", F64), ("n", I64)]) as f:
        x, s, n = f.args
        with b.parallel_for(0, n) as i:
            k = b.exp(s)
            b.store(b.load(x, i) * k, x, i)
    fn = b.module.functions["f"]
    OpenMPOpt().run(fn, b.module)
    region = next(op for op in fn.walk() if op.opcode == "parallel_for")
    assert all(op.opcode != "exp" for op in region.body.ops)


def test_openmp_opt_hoists_closure_pointer_loads():
    from repro.frontends import OpenMP
    b = IRBuilder()
    with b.function("f", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        omp = OpenMP(b)
        with omp.parallel_for(0, n, captured=[x, n]) as (i, env):
            v = b.load(env[x], i)
            b.store(v * v, env[x], i)
    fn = b.module.functions["f"]

    def ptr_loads_in_fork():
        region = next(op for op in fn.walk() if op.opcode == "fork")
        return [op for op in region.walk() if op.opcode == "load"
                and str(op.result.type).startswith("ptr")]

    assert ptr_loads_in_fork()  # the closure reload pattern (Fig. 3)
    OpenMPOpt().run(fn, b.module)
    DCE().run(fn, b.module)
    assert not ptr_loads_in_fork()


def test_openmp_opt_store_to_load_forwarding():
    b = IRBuilder()
    with b.function("f", [("x", Ptr()), ("n", I64)], ret=F64) as f:
        x, n = f.args
        cell = b.alloc(1)
        b.store(4.5, cell, 0)
        v = b.load(cell, 0)
        b.ret(v * 2.0)
    fn = b.module.functions["f"]
    OpenMPOpt().run(fn, b.module)
    ConstantFold().run(fn, b.module)
    DCE().run(fn, b.module)
    ret = fn.body.ops[-1]
    assert isinstance(ret.operands[0], Constant)
    assert ret.operands[0].value == 9.0


def test_openmp_opt_merges_disjoint_regions():
    b = IRBuilder()
    with b.function("f", [("x", Ptr()), ("y", Ptr()), ("n", I64)],
                    arg_attrs=[{"noalias": True}, {"noalias": True},
                               {}]) as f:
        x, y, n = f.args
        with b.parallel_for(0, n) as i:
            b.store(1.0, x, i)
        with b.parallel_for(0, n) as j:
            b.store(2.0, y, j)
    fn = b.module.functions["f"]
    assert _count(fn, "parallel_for") == 2
    OpenMPOpt().run(fn, b.module)
    assert _count(fn, "parallel_for") == 1
    verify_module(b.module)
    xs, ys = np.zeros(4), np.zeros(4)
    Executor(b.module).run("f", xs, ys, 4)
    np.testing.assert_allclose(xs, 1.0)
    np.testing.assert_allclose(ys, 2.0)


def test_openmp_opt_does_not_merge_dependent_regions():
    b = IRBuilder()
    with b.function("f", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        with b.parallel_for(0, n) as i:
            b.store(1.0, x, i)
        with b.parallel_for(0, n) as j:
            b.store(b.load(x, j) * 2.0, x, j)
    fn = b.module.functions["f"]
    OpenMPOpt().run(fn, b.module)
    assert _count(fn, "parallel_for") == 2


def test_simplify_constant_if():
    b = IRBuilder()
    with b.function("f", [("x", Ptr())]) as f:
        with b.if_(b.const(True)):
            b.store(1.0, f.args[0], 0)
        with b.else_():
            b.store(2.0, f.args[0], 0)
    fn = b.module.functions["f"]
    Simplify().run(fn, b.module)
    assert _count(fn, "if") == 0
    assert _count(fn, "store") == 1


def test_inline_user_calls():
    b = IRBuilder()
    with b.function("helper", [("a", F64)], ret=F64) as f:
        b.ret(f.args[0] * 3.0)
    with b.function("main", [("a", F64)], ret=F64) as f:
        r = b.call("helper", f.args[0])
        b.ret(r + 1.0)
    fn = b.module.functions["main"]
    n = inline_all(fn, b.module)
    assert n == 1
    assert _count(fn, "call") == 0
    verify_module(b.module)
    assert Executor(b.module).run("main", 2.0) == pytest.approx(7.0)


def test_inline_respects_noinline():
    b = IRBuilder()
    with b.function("kern", [("a", F64)], ret=F64) as f:
        b.ret(f.args[0] * 3.0)
    b.module.functions["kern"].attrs["noinline"] = True
    with b.function("main", [("a", F64)], ret=F64) as f:
        b.ret(b.call("kern", f.args[0]))
    fn = b.module.functions["main"]
    assert inline_all(fn, b.module) == 0
    from repro.passes import force_inline_all
    assert force_inline_all(fn, b.module) == 1


def test_pipeline_preserves_semantics():
    b = IRBuilder()
    with b.function("f", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        k = b.mul(2.0, 3.0)
        with b.for_(0, n) as i:
            inv = b.sqrt(k)
            v = b.load(x, i)
            b.store(v * inv + 0.0, x, i)
    verify_module(b.module)
    xs_ref = np.arange(1.0, 6.0)
    expect = xs_ref * np.sqrt(6.0)
    default_pipeline().run(b.module)
    verify_module(b.module)
    xs = np.arange(1.0, 6.0)
    Executor(b.module).run("f", xs, 5)
    np.testing.assert_allclose(xs, expect)
