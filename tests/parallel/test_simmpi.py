"""SimMPI engine semantics: matching, collectives, clocks, deadlock."""

import numpy as np
import pytest

from repro.interp import ExecConfig, InterpreterError
from repro.ir import F64, I64, IRBuilder, Ptr, Request, verify_module
from repro.parallel import SimMPI, mpi_run


def _module_pingpong():
    b = IRBuilder()
    with b.function("pp", [("buf", Ptr()), ("n", I64)]) as f:
        buf, n = f.args
        rank = b.call("mpi.comm_rank")
        with b.if_(b.cmp("eq", rank, 0)):
            b.call("mpi.send", buf, n, 1, 5)
            b.call("mpi.recv", buf, n, 1, 6)
        with b.else_():
            tmp = b.alloc(n)
            b.call("mpi.recv", tmp, n, 0, 5)
            with b.for_(0, n, simd=True) as i:
                b.store(b.load(tmp, i) * 2.0, tmp, i)
            b.call("mpi.send", tmp, n, 0, 6)
    verify_module(b.module)
    return b


def test_pingpong_doubles():
    b = _module_pingpong()
    bufs = [np.arange(1.0, 4.0), np.zeros(3)]
    mpi_run(b.module, "pp", 2, lambda r: (bufs[r], 3))
    np.testing.assert_allclose(bufs[0], 2 * np.arange(1.0, 4.0))


def test_message_ordering_fifo():
    """Two same-tag messages arrive in send order."""
    b = IRBuilder()
    with b.function("fifo", [("out", Ptr())]) as f:
        out = f.args[0]
        rank = b.call("mpi.comm_rank")
        one = b.alloc(1)
        with b.if_(b.cmp("eq", rank, 0)):
            b.store(1.0, one, 0)
            b.call("mpi.send", one, 1, 1, 9)
            b.store(2.0, one, 0)
            b.call("mpi.send", one, 1, 1, 9)
        with b.else_():
            b.call("mpi.recv", one, 1, 0, 9)
            b.store(b.load(one, 0), out, 0)
            b.call("mpi.recv", one, 1, 0, 9)
            b.store(b.load(one, 0), out, 1)
    outs = [np.zeros(2), np.zeros(2)]
    mpi_run(b.module, "fifo", 2, lambda r: (outs[r],))
    np.testing.assert_allclose(outs[1], [1.0, 2.0])


def test_tags_demultiplex():
    b = IRBuilder()
    with b.function("tags", [("out", Ptr())]) as f:
        out = f.args[0]
        rank = b.call("mpi.comm_rank")
        cell = b.alloc(1)
        with b.if_(b.cmp("eq", rank, 0)):
            b.store(7.0, cell, 0)
            b.call("mpi.send", cell, 1, 1, 70)
            b.store(8.0, cell, 0)
            b.call("mpi.send", cell, 1, 1, 80)
        with b.else_():
            # receive in the opposite tag order
            b.call("mpi.recv", cell, 1, 0, 80)
            b.store(b.load(cell, 0), out, 0)
            b.call("mpi.recv", cell, 1, 0, 70)
            b.store(b.load(cell, 0), out, 1)
    outs = [np.zeros(2), np.zeros(2)]
    mpi_run(b.module, "tags", 2, lambda r: (outs[r],))
    np.testing.assert_allclose(outs[1], [8.0, 7.0])


@pytest.mark.parametrize("op,expect", [
    ("sum", 0 + 1 + 2 + 3), ("min", 0.0), ("max", 3.0),
])
def test_allreduce_ops(op, expect):
    b = IRBuilder()
    with b.function("ar", [("out", Ptr())]) as f:
        out = f.args[0]
        rank = b.call("mpi.comm_rank")
        s = b.alloc(1)
        b.store(b.itof(rank), s, 0)
        r = b.alloc(1)
        b.call("mpi.allreduce", s, r, 1, op=op)
        b.store(b.load(r, 0), out, 0)
    outs = [np.zeros(1) for _ in range(4)]
    mpi_run(b.module, "ar", 4, lambda r: (outs[r],))
    for o in outs:
        assert o[0] == expect


def test_bcast_and_reduce():
    b = IRBuilder()
    with b.function("br", [("buf", Ptr()), ("tot", Ptr())]) as f:
        buf, tot = f.args
        b.call("mpi.bcast", buf, 2, 0)
        b.call("mpi.reduce", buf, tot, 2, 0, op="sum")
    bufs = [np.array([3.0, 4.0]) if r == 0 else np.zeros(2)
            for r in range(3)]
    tots = [np.zeros(2) for _ in range(3)]
    mpi_run(b.module, "br", 3, lambda r: (bufs[r], tots[r]))
    for bu in bufs:
        np.testing.assert_allclose(bu, [3.0, 4.0])
    np.testing.assert_allclose(tots[0], [9.0, 12.0])
    np.testing.assert_allclose(tots[1], 0.0)


def test_nonblocking_overlap():
    b = IRBuilder()
    with b.function("nb", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        rank = b.call("mpi.comm_rank")
        size = b.call("mpi.comm_size")
        tmp = b.alloc(n)
        r1 = b.call("mpi.isend", x, n, (rank + 1) % size, 1)
        r2 = b.call("mpi.irecv", tmp, n, (rank + size - 1) % size, 1)
        # overlap with local work before waiting
        with b.for_(0, n, simd=True) as i:
            b.store(b.load(x, i) + 0.0, x, i)
        b.call("mpi.wait", r1)
        b.call("mpi.wait", r2)
        b.memcpy(x, tmp, n)
    xs = [np.full(3, float(r)) for r in range(3)]
    mpi_run(b.module, "nb", 3, lambda r: (xs[r], 3))
    np.testing.assert_allclose(xs[0], 2.0)
    np.testing.assert_allclose(xs[1], 0.0)
    np.testing.assert_allclose(xs[2], 1.0)


def test_deadlock_detected():
    # Both ranks post a blocking receive from the other with nobody
    # sending: the engine must diagnose the deadlock.
    b2 = IRBuilder()
    with b2.function("dead", [("x", Ptr())]) as f:
        x = f.args[0]
        rank = b2.call("mpi.comm_rank")
        peer = 1 - rank
        b2.call("mpi.recv", x, 1, peer, 3)
    with pytest.raises(InterpreterError, match="deadlock"):
        mpi_run(b2.module, "dead", 2, lambda r: (np.zeros(1),))


def test_count_mismatch_detected():
    b = IRBuilder()
    with b.function("mm", [("x", Ptr())]) as f:
        x = f.args[0]
        rank = b.call("mpi.comm_rank")
        with b.if_(b.cmp("eq", rank, 0)):
            b.call("mpi.send", x, 3, 1, 1)
        with b.else_():
            b.call("mpi.recv", x, 2, 0, 1)
    with pytest.raises(InterpreterError, match="size mismatch"):
        mpi_run(b.module, "mm", 2, lambda r: (np.zeros(3),))


def test_mismatched_collectives_detected():
    b = IRBuilder()
    with b.function("mc", [("x", Ptr())]) as f:
        x = f.args[0]
        rank = b.call("mpi.comm_rank")
        with b.if_(b.cmp("eq", rank, 0)):
            b.call("mpi.barrier")
        with b.else_():
            b.call("mpi.bcast", x, 1, 0)
    with pytest.raises(InterpreterError, match="ismatched"):
        mpi_run(b.module, "mc", 2, lambda r: (np.zeros(1),))


def test_clocks_advance_and_alpha_beta():
    """Bigger messages take longer; MPICH constants exceed OpenMPI's."""
    b = IRBuilder()
    with b.function("c", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        rank = b.call("mpi.comm_rank")
        with b.if_(b.cmp("eq", rank, 0)):
            b.call("mpi.send", x, n, 1, 1)
        with b.else_():
            b.call("mpi.recv", x, n, 0, 1)

    def time_for(n, impl):
        res = SimMPI(b.module, 2, ExecConfig(mpi_impl=impl)).run(
            "c", lambda r: (np.zeros(n), n))
        return res.time

    assert time_for(4096, "openmpi") > time_for(8, "openmpi")
    assert time_for(4096, "mpich") > time_for(4096, "openmpi")


def test_barrier_synchronizes_clocks():
    b = IRBuilder()
    with b.function("bar", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        rank = b.call("mpi.comm_rank")
        with b.if_(b.cmp("eq", rank, 0)):
            with b.for_(0, n, simd=True) as i:  # rank 0 does extra work
                b.store(b.sin(b.load(x, i)), x, i)
        b.call("mpi.barrier")
    engine = SimMPI(b.module, 2, ExecConfig())
    engine.run("bar", lambda r: (np.ones(50000), 50000))
    c0 = engine.ranks[0].interp.clock
    c1 = engine.ranks[1].interp.clock
    assert c0 == pytest.approx(c1)


# ---------------------------------------------------------------------------
# Rendezvous-mode sends (ISSUE 5)
# ---------------------------------------------------------------------------

def _module_headtohead():
    """Both ranks Send before they Recv: safe eagerly, deadlocks in
    rendezvous mode — the textbook unsafe exchange."""
    b = IRBuilder()
    with b.function("hh", [("buf", Ptr()), ("out", Ptr()), ("n", I64)]) as f:
        buf, out, n = f.args
        rank = b.call("mpi.comm_rank")
        peer = b.sub(1, rank)
        b.call("mpi.send", buf, n, peer, 1)
        b.call("mpi.recv", out, n, peer, 1)
    verify_module(b.module)
    return b


def test_head_to_head_passes_eagerly():
    b = _module_headtohead()
    n = 3
    args = [(np.full(n, float(r + 1)), np.zeros(n), n) for r in range(2)]
    SimMPI(b.module, 2, ExecConfig()).run("hh", lambda r: args[r])
    np.testing.assert_allclose(args[0][1], 2.0)
    np.testing.assert_allclose(args[1][1], 1.0)


def test_head_to_head_deadlocks_in_rendezvous_mode():
    b = _module_headtohead()
    n = 3
    args = [(np.full(n, float(r + 1)), np.zeros(n), n) for r in range(2)]
    with pytest.raises(InterpreterError, match="deadlock"):
        SimMPI(b.module, 2, ExecConfig(),
               rendezvous_sends=True).run("hh", lambda r: args[r])


def test_eager_limit_triggers_rendezvous_for_large_messages():
    from repro.perf.machine import MachineModel
    b = _module_headtohead()

    def run(n):
        machine = MachineModel(eager_limit=64)  # bytes: 8 doubles
        args = [(np.full(n, 1.0), np.zeros(n), n) for r in range(2)]
        SimMPI(b.module, 2, ExecConfig(), machine=machine).run(
            "hh", lambda r: args[r])

    run(8)      # 64 bytes: still eager, completes
    with pytest.raises(InterpreterError, match="deadlock"):
        run(9)  # 72 bytes > eager_limit: rendezvous, deadlocks


def test_ordered_exchange_completes_in_rendezvous_mode():
    b = IRBuilder()
    with b.function("ord", [("buf", Ptr()), ("out", Ptr()), ("n", I64)]) as f:
        buf, out, n = f.args
        rank = b.call("mpi.comm_rank")
        peer = b.sub(1, rank)
        with b.if_(b.cmp("eq", rank, 0)):
            b.call("mpi.send", buf, n, peer, 1)
            b.call("mpi.recv", out, n, peer, 2)
        with b.else_():
            b.call("mpi.recv", out, n, peer, 1)
            b.call("mpi.send", buf, n, peer, 2)
    n = 4
    args = [(np.full(n, float(r + 1)), np.zeros(n), n) for r in range(2)]
    SimMPI(b.module, 2, ExecConfig(),
           rendezvous_sends=True).run("ord", lambda r: args[r])
    np.testing.assert_allclose(args[0][1], 2.0)
    np.testing.assert_allclose(args[1][1], 1.0)


def test_rendezvous_isend_overlap_still_works():
    """Nonblocking sends stay legal under rendezvous: the wait blocks
    until the receiver arrives, not the post."""
    b = IRBuilder()
    with b.function("nb", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        rank = b.call("mpi.comm_rank")
        size = b.call("mpi.comm_size")
        tmp = b.alloc(n)
        r1 = b.call("mpi.isend", x, n, (rank + 1) % size, 1)
        r2 = b.call("mpi.irecv", tmp, n, (rank + size - 1) % size, 1)
        b.call("mpi.wait", r1)
        b.call("mpi.wait", r2)
        b.memcpy(x, tmp, n)
    xs = [np.full(3, float(r)) for r in range(3)]
    SimMPI(b.module, 3, ExecConfig(),
           rendezvous_sends=True).run("nb", lambda r: (xs[r], 3))
    np.testing.assert_allclose(xs[0], 2.0)
    np.testing.assert_allclose(xs[1], 0.0)
