"""Task DAG reversal and scheduling (§IV-A theory)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.parallel import TaskDAG, list_schedule


def _diamond():
    d = TaskDAG()
    for t, c in (("spawn", 1.0), ("a", 2.0), ("b", 3.0), ("sync", 1.0)):
        d.add_task(t, c)
    d.add_dep("spawn", "a")
    d.add_dep("spawn", "b")
    d.add_dep("a", "sync")
    d.add_dep("b", "sync")
    return d


def test_spawn_sync_classification():
    d = _diamond()
    assert d.spawns() == {"spawn"}
    assert d.syncs() == {"sync"}


def test_reverse_swaps_spawn_and_sync():
    r = _diamond().reverse()
    assert r.spawns() == {"sync"}
    assert r.syncs() == {"spawn"}


def test_reverse_preserves_work_and_span():
    d = _diamond()
    r = d.reverse()
    assert r.work() == d.work()
    assert r.span() == d.span()


def test_cycle_rejected():
    d = TaskDAG()
    d.add_task("a")
    d.add_task("b")
    d.add_dep("a", "b")
    with pytest.raises(ValueError, match="cycle"):
        d.add_dep("b", "a")


def test_execute_respects_dependencies():
    d = _diamond()
    seen = []
    d.execute(seen.append)
    assert seen.index("spawn") < seen.index("a") < seen.index("sync")
    assert seen.index("spawn") < seen.index("b") < seen.index("sync")


def test_list_schedule_bounds():
    d = _diamond()
    t1 = list_schedule(d, 1)
    t2 = list_schedule(d, 2)
    assert t1 == pytest.approx(d.work())
    # a and b run in parallel with 2 workers
    assert t2 == pytest.approx(1.0 + 3.0 + 1.0)
    assert d.span() <= t2 <= t1


@st.composite
def random_dag(draw):
    n = draw(st.integers(2, 14))
    d = TaskDAG()
    for i in range(n):
        d.add_task(i, draw(st.floats(0.1, 5.0)))
    for j in range(1, n):
        for i in range(j):
            if draw(st.booleans()) and draw(st.booleans()):
                d.add_dep(i, j)  # i < j: acyclic by construction
    return d


@settings(max_examples=60, deadline=None)
@given(dag=random_dag(), workers=st.integers(1, 8))
def test_schedule_within_graham_bound(dag, workers):
    """Greedy list scheduling: span <= T_P <= T1/P + span (Graham)."""
    tp = list_schedule(dag, workers)
    t1 = dag.work()
    tinf = dag.span()
    assert tp >= tinf - 1e-9
    assert tp >= t1 / workers - 1e-9
    assert tp <= t1 / workers + tinf + 1e-9


@settings(max_examples=40, deadline=None)
@given(dag=random_dag(), workers=st.integers(1, 8))
def test_reverse_dag_schedules_comparably(dag, workers):
    """§IV-A's scalability argument: the adjoint DAG has identical work
    and span, so its greedy makespan obeys the same Graham bound."""
    rev = dag.reverse()
    assert rev.work() == pytest.approx(dag.work())
    assert rev.span() == pytest.approx(dag.span())
    tp = list_schedule(rev, workers)
    assert tp <= dag.work() / workers + dag.span() + 1e-9
