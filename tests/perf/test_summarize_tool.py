"""The repro.tools.summarize CLI."""

import json

import pytest

from repro.tools.summarize import load, main, render


@pytest.fixture
def results_dir(tmp_path):
    rows = [
        {"impl": "A", "ranks": 1, "fwd_speedup": 1.0},
        {"impl": "A", "ranks": 8, "fwd_speedup": 6.5},
        {"impl": "B", "ranks": 1, "fwd_speedup": 1.0},
        {"impl": "B", "ranks": 8, "fwd_speedup": 7.8},
    ]
    with open(tmp_path / "fig8_mid_strong.json", "w") as f:
        json.dump({"title": "Strong scaling", "rows": rows}, f)
    return tmp_path


def test_load_and_render(results_dir):
    data = load(results_dir)
    assert "fig8_mid_strong" in data
    text = render("fig8_mid_strong", data["fig8_mid_strong"])
    assert "Strong scaling" in text
    assert "6.500" in text
    assert "A" in text and "B" in text


def test_main_ok(results_dir, capsys):
    assert main(["--results", str(results_dir)]) == 0
    out = capsys.readouterr().out
    assert "Strong scaling" in out


def test_main_unknown_name(results_dir):
    assert main(["--results", str(results_dir), "nope"]) == 2


def test_main_empty_dir(tmp_path):
    assert main(["--results", str(tmp_path)]) == 1


def _commcheck_payload():
    from repro.ir import I64, IRBuilder, Ptr
    from repro.sanitize.commcheck import commcheck_function
    b = IRBuilder()
    with b.function("um", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        rank = b.call("mpi.comm_rank")
        with b.if_(b.cmp("eq", rank, 0)):
            b.call("mpi.send", x, n, 1, 3)
    return commcheck_function("um", b.module, sizes=(2,)).to_json()


def test_render_comm_report_single():
    from repro.tools.summarize import render_comm_report
    text = render_comm_report(_commcheck_payload())
    assert "commcheck @um" in text
    assert "unmatched-p2p" in text
    assert "symbolic communication summary" in text


def test_render_comm_report_suite_and_main(tmp_path, capsys):
    from repro.tools.summarize import render_comm_report
    payload = {"tool": "commcheck-suite",
               "reports": [_commcheck_payload(), _commcheck_payload()]}
    assert render_comm_report(payload).count("commcheck @um") == 2
    path = tmp_path / "comm.json"
    with open(path, "w") as f:
        json.dump(payload, f)
    assert main(["--comm-report", str(path)]) == 0
    assert "unmatched-p2p" in capsys.readouterr().out


def test_render_comm_report_rejects_other_tools():
    from repro.tools.summarize import render_comm_report
    with pytest.raises(ValueError, match="not a commcheck report"):
        render_comm_report({"tool": "lint"})
