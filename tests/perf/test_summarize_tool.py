"""The repro.tools.summarize CLI."""

import json

import pytest

from repro.tools.summarize import load, main, render


@pytest.fixture
def results_dir(tmp_path):
    rows = [
        {"impl": "A", "ranks": 1, "fwd_speedup": 1.0},
        {"impl": "A", "ranks": 8, "fwd_speedup": 6.5},
        {"impl": "B", "ranks": 1, "fwd_speedup": 1.0},
        {"impl": "B", "ranks": 8, "fwd_speedup": 7.8},
    ]
    with open(tmp_path / "fig8_mid_strong.json", "w") as f:
        json.dump({"title": "Strong scaling", "rows": rows}, f)
    return tmp_path


def test_load_and_render(results_dir):
    data = load(results_dir)
    assert "fig8_mid_strong" in data
    text = render("fig8_mid_strong", data["fig8_mid_strong"])
    assert "Strong scaling" in text
    assert "6.500" in text
    assert "A" in text and "B" in text


def test_main_ok(results_dir, capsys):
    assert main(["--results", str(results_dir)]) == 0
    out = capsys.readouterr().out
    assert "Strong scaling" in out


def test_main_unknown_name(results_dir):
    assert main(["--results", str(results_dir), "nope"]) == 2


def test_main_empty_dir(tmp_path):
    assert main(["--results", str(tmp_path)]) == 1
