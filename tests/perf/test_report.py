"""Reporting helpers."""

import pytest

from repro.perf.report import Series, ascii_plot, format_table


def test_series_speedup_and_efficiency():
    s = Series("fwd")
    for x, t in ((1, 8.0), (2, 4.0), (4, 2.5)):
        s.add(x, t)
    sp = s.speedup()
    assert sp.points[1] == 1.0
    assert sp.points[2] == 2.0
    assert sp.points[4] == pytest.approx(3.2)
    eff = s.efficiency()
    assert eff.points[2] == pytest.approx(1.0)
    assert eff.points[4] == pytest.approx(0.8)


def test_overhead_series():
    f = Series("fwd")
    g = Series("grad")
    for x in (1, 2):
        f.add(x, 1.0 * x)
        g.add(x, 3.0 * x)
    ov = g.overhead_against(f)
    assert ov.points[1] == 3.0 and ov.points[2] == 3.0


def test_format_table_alignment():
    t = format_table("T", ["a", "bbb"], [[1, 2.5], [100, 3.0e-9]])
    lines = t.splitlines()
    assert lines[0] == "== T =="
    assert "3.000e-09" in t
    assert len(set(len(l) for l in lines[1:3])) == 1


def test_ascii_plot_renders():
    s = Series("fwd")
    for x, t in ((1, 8.0), (2, 4.0), (4, 2.0), (8, 1.2)):
        s.add(x, t)
    art = ascii_plot([s], title="scaling", width=30, height=8)
    assert "scaling" in art
    assert "o=fwd" in art
    assert art.count("o") >= 4
