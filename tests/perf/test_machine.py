"""Machine model unit tests: the phenomena the evaluation relies on."""

import math

import pytest

from repro.perf import CostVector, MachineModel, c6i_metal, uncontended


def _cost(flops=0.0, loads=0.0, stores=0.0, stream=0.0, atomics=0.0,
          specials=0.0, tape_ops=0.0):
    c = CostVector()
    c.flops = flops
    c.load_bytes = loads
    c.store_bytes = stores
    c.stream_bytes = stream
    c.atomic_ops = atomics
    c.specials = specials
    c.tape_ops = tape_ops
    return c


def test_compute_time_linear():
    m = c6i_metal()
    assert m.compute_time(_cost(flops=1e6)) == pytest.approx(
        1e6 * m.flop_time)
    assert m.compute_time(_cost(specials=10)) == pytest.approx(
        10 * m.special_time)


def test_bandwidth_sharing_across_cores():
    m = c6i_metal()
    assert m.effective_bw(1) == pytest.approx(m.per_core_bw)
    assert m.effective_bw(32) == pytest.approx(m.socket_bw / 32)


def test_numa_penalty_beyond_one_socket():
    m = c6i_metal()
    bw32 = m.effective_bw(32)
    bw33 = m.effective_bw(33)
    # crossing the socket: fewer cores per socket but NUMA penalty
    assert bw33 < bw32 * 2  # no magic speedup
    assert m.effective_bw(64) == pytest.approx(
        m.socket_bw / 32 / m.numa_penalty)


def test_parallel_region_makespan_is_worst_thread():
    m = uncontended()
    costs = [_cost(flops=100), _cost(flops=1000), _cost(flops=10)]
    t = m.parallel_region_time(costs, 3)
    assert t == pytest.approx(m.compute_time(costs[1])
                              + m.fork_overhead(3) + m.barrier_time(3))


def test_atomic_contention_grows_with_threads():
    m = c6i_metal()
    c = _cost(atomics=1000)
    assert m.atomic_time(c, 64) > m.atomic_time(c, 1)


def test_stream_traffic_not_hidden_by_compute():
    """AD-cache streaming adds to compute instead of overlapping (the
    miniBUDE-without-OpenMPOpt mechanism)."""
    m = c6i_metal()
    base = _cost(flops=1e6)
    with_stream = _cost(flops=1e6, stream=1e6)
    assert m.serial_time(with_stream) > m.serial_time(base)
    # and the stream term does not shrink with more busy threads
    t8 = m.thread_time(_cost(stream=1e6), nthreads=8)
    t64 = m.thread_time(_cost(stream=1e6), nthreads=64)
    assert t64 >= t8


def test_tape_time_serial_overhead():
    m = c6i_metal()
    assert m.serial_time(_cost(flops=100, tape_ops=100)) > \
        m.serial_time(_cost(flops=100))


def test_network_constants_per_implementation():
    m = c6i_metal()
    openmpi = m.network("openmpi")
    mpich = m.network("mpich")
    assert mpich.alpha > openmpi.alpha
    assert mpich.ptp_time(1 << 20) > openmpi.ptp_time(1 << 20)


def test_collective_times_log_scale():
    m = c6i_metal()
    net = m.network()
    assert net.allreduce_time(8, 64) > net.allreduce_time(8, 4)
    assert net.allreduce_time(8, 64) == pytest.approx(
        6 * (2 * net.alpha + 8 * net.beta))
    assert net.allreduce_time(8, 1) == 0.0


def test_fork_and_barrier_overheads():
    m = c6i_metal()
    assert m.fork_overhead(64) > m.fork_overhead(1)
    assert m.barrier_time(1) == 0.0
    assert m.barrier_time(64) == pytest.approx(6 * m.barrier_base)


def test_cost_vector_merge_and_copy():
    a = _cost(flops=5, loads=16)
    b = _cost(flops=3, atomics=2)
    a.merge(b)
    assert a.flops == 8 and a.atomic_ops == 2 and a.load_bytes == 16
    c = a.copy()
    c.flops += 1
    assert a.flops == 8
    assert not a.is_zero()
    assert CostVector().is_zero()
