"""Fuzz: static bounds certification is sound.  On random affine
programs with declared extents, every access the interval analysis
marks *proven* runs without ever tripping a runtime bounds check — the
fully-checked interpreter and the check-eliding compiled backend
execute bit-identically — and certified scalar sites carry no
``_check_bounds`` branch in the generated source."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.interp import ExecConfig, Executor
from repro.interp.lowering import lower_function
from repro.ir import I64, IRBuilder, Ptr, verify_module
from repro.passes.intervals import certify_bounds

# A random program: a buffer x with a declared extent N, plus loops
# whose affine index expressions stay inside [0, N) by construction —
# with a scale/offset/reversal chosen so certification has real work.

_EXTENT = st.integers(4, 16)


@st.composite
def _programs(draw):
    n = draw(_EXTENT)
    body = []
    for _ in range(draw(st.integers(1, 3))):
        scale = draw(st.integers(1, 3))
        span = n // scale
        off = draw(st.integers(0, n - scale * (span - 1) - 1))
        rev = draw(st.booleans())
        kind = draw(st.sampled_from(["scale", "rev", "plain"]))
        body.append((kind, scale, span, off, rev))
    return n, body


def _build(n, body):
    b = IRBuilder()
    with b.function("prog", [("x", Ptr()), ("s", I64)],
                    arg_attrs=[{"extent": n, "noalias": True}, {}]):
        fn = b.module.functions["prog"]
        x, _s = fn.args
        for depth, (kind, scale, span, off, rev) in enumerate(body):
            with b.for_(0, span, name=f"i{depth}") as i:
                if kind == "scale":
                    idx = b.add(b.mul(i, scale), off)
                elif kind == "rev":
                    idx = b.sub(span - 1 + off, i)
                else:
                    idx = b.add(i, off)
                v = b.load(x, idx)
                b.store(b.add(b.mul(v, 1.5), 0.25), x, idx)
    verify_module(b.module)
    return b.module


def _run(module, backend, xs):
    arr = np.array(xs, dtype=np.float64)
    ex = Executor(module, ExecConfig(backend=backend))
    if backend != "interp":
        ex.interp.backend.strict = True
    ex.run("prog", arr, 0)
    stats = ex.compile_stats()
    return arr, stats


@settings(max_examples=60, deadline=None)
@given(prog=_programs(), seed=st.integers(0, 2 ** 32 - 1))
def test_certified_sites_never_trip_runtime_checks(prog, seed):
    n, body = prog
    module = _build(n, body)

    fn = module.functions["prog"]
    facts = certify_bounds(fn, module)
    counts = facts.counts()
    # The generator only emits in-range affine accesses: nothing may
    # be flagged provably OOB, and every access must be certified (the
    # index arithmetic is exactly the shape the analysis covers).
    assert counts["oob"] == 0
    assert counts["unproven"] == 0
    assert counts["proven"] == len(body) * 2

    rng = np.random.default_rng(seed)
    xs = rng.uniform(-1.0, 1.0, size=n)

    # Interpreter: every access runtime-checked.  Must not raise.
    ref, _ = _run(module, "interp", xs)
    # Compiled backend: proven checks elided.  Bit-identical.
    got, stats = _run(module, "compiled", xs)
    np.testing.assert_array_equal(ref, got)
    assert stats["bounds_proven"] == counts["proven"]
    assert stats["checks_elided"] > 0


def test_proven_scalar_site_has_no_check_in_source():
    b = IRBuilder()
    with b.function("prog", [("x", Ptr())],
                    arg_attrs=[{"extent": 8, "noalias": True}]):
        fn = b.module.functions["prog"]
        x = fn.args[0]
        with b.for_(0, 8) as i:
            # Force the scalar open-coded path with a serial loop of
            # scalar accesses.
            b.store(b.add(b.load(x, i), 1.0), x, i)
    verify_module(b.module)
    fn = b.module.functions["prog"]

    bounds = certify_bounds(fn, b.module)
    src, _consts, stats = lower_function(fn, bounds=bounds)
    assert "_check_bounds" not in src
    assert stats.checks_elided > 0
    assert stats.bounds_proven == 2 and stats.bounds_unproven == 0

    # Without certification the very same program carries the checks.
    src2, _c2, stats2 = lower_function(fn)
    assert "_check_bounds" in src2
    assert stats2.checks_elided == 0


def test_unproven_site_keeps_check_and_raises():
    b = IRBuilder()
    with b.function("prog", [("x", Ptr()), ("j", I64)],
                    arg_attrs=[{"extent": 8, "noalias": True}, {}]):
        fn = b.module.functions["prog"]
        x, j = fn.args
        b.store(1.0, x, j)   # j unconstrained: unproven
    verify_module(b.module)

    ex = Executor(b.module, ExecConfig(backend="compiled"))
    ex.interp.backend.strict = True
    arr = np.zeros(8)
    ex.run("prog", arr, 3)           # in range: fine
    assert arr[3] == 1.0
    import pytest
    with pytest.raises(Exception):
        ex.run("prog", np.zeros(8), 8)   # out of range: still caught
