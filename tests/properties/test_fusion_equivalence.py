"""Fuzz: trace fusion is semantics-free.

Random elementwise chains — in simd loops, serial loops, and
fork/workshare bodies — must execute bit-identically under the
compiled backend with fusion on and off (arrays, return-free side
effects, simulated clock, and the full cost vector), and both must
match the op-by-op interpreter.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.interp import ExecConfig, Executor
from repro.ir import I64, IRBuilder, Ptr, verify_module

# One chain step: an elementwise op applied to the running value.
_STEP = st.one_of(
    st.tuples(st.just("add"), st.floats(-2, 2)),
    st.tuples(st.just("sub"), st.floats(-2, 2)),
    st.tuples(st.just("mul"), st.floats(-2, 2)),
    st.tuples(st.just("fma"), st.floats(-1.5, 1.5), st.floats(-1, 1)),
    st.tuples(st.just("min"), st.floats(-1, 3)),
    st.tuples(st.just("max"), st.floats(-3, 1)),
    st.tuples(st.just("neg")),
    st.tuples(st.just("abs")),
    st.tuples(st.just("sin")),
    st.tuples(st.just("cos")),
    st.tuples(st.just("sqrt_abs")),
)

#: Loop flavor the chain runs under.  "workshare" exercises fusion
#: inside a fork body; "serial" exercises the scalar inline paths.
_REGION = st.sampled_from(["simd", "serial", "workshare"])

_CASE = st.tuples(_REGION, st.lists(_STEP, min_size=1, max_size=10),
                  st.booleans())


def _apply(b, v, step):
    kind = step[0]
    if kind == "add":
        return b.add(v, step[1])
    if kind == "sub":
        return b.sub(v, step[1])
    if kind == "mul":
        return b.mul(v, step[1])
    if kind == "fma":
        return b.fma(v, step[1], step[2])
    if kind == "min":
        return b.min(v, step[1])
    if kind == "max":
        return b.max(v, step[1])
    if kind == "neg":
        return b.neg(v)
    if kind == "abs":
        return b.abs(v)
    if kind == "sin":
        return b.sin(v)
    if kind == "cos":
        return b.cos(v)
    if kind == "sqrt_abs":
        return b.sqrt(b.abs(v))
    raise AssertionError(kind)


def _build(cases):
    """One function running each (region, chain, accumulate) case."""
    b = IRBuilder()
    with b.function("prog", [("x", Ptr()), ("acc", Ptr()),
                             ("n", I64)]) as f:
        x, acc, n = f.args

        def body(i, steps, accumulate):
            v = b.load(x, i)
            for s in steps:
                v = _apply(b, v, s)
            b.store(v, x, i)
            if accumulate:
                b.atomic_add(v, acc, 0)

        for region, steps, accumulate in cases:
            if region == "simd":
                with b.for_(0, n, simd=True) as i:
                    body(i, steps, accumulate)
            elif region == "serial":
                with b.for_(0, n) as i:
                    body(i, steps, accumulate)
            else:  # workshare inside a fork
                with b.fork(num_threads=2):
                    with b.workshare(0, n) as i:
                        body(i, steps, accumulate)
    verify_module(b.module)
    return b.module


def _run(module, backend, xs, fusion=True, num_threads=2):
    x = np.asarray(xs, dtype=float)
    acc = np.zeros(1)
    ex = Executor(module, ExecConfig(backend=backend, fusion=fusion,
                                     num_threads=num_threads))
    if backend == "compiled":
        ex.interp.backend.strict = True
    ex.run("prog", x, acc, len(xs))
    return x, acc, ex.clock, ex.cost.as_dict()


@settings(max_examples=40, deadline=None)
@given(cases=st.lists(_CASE, min_size=1, max_size=3),
       xs=st.lists(st.floats(-1.5, 1.5), min_size=2, max_size=5))
def test_fused_matches_unfused_compiled(cases, xs):
    module = _build(cases)
    fused = _run(module, "compiled", xs, fusion=True)
    # Fusion participates in the per-function compile key, so flipping
    # it recompiles instead of reusing the fused code object.
    unfused = _run(module, "compiled", xs, fusion=False)
    interp = _run(module, "interp", xs)
    for got in (unfused, interp):
        np.testing.assert_array_equal(fused[0], got[0])
        np.testing.assert_array_equal(fused[1], got[1])
        assert fused[2] == got[2]
        assert fused[3] == got[3]


@settings(max_examples=15, deadline=None)
@given(cases=st.lists(_CASE, min_size=1, max_size=2),
       xs=st.lists(st.floats(-1.2, 1.2), min_size=2, max_size=4))
def test_fused_gradient_matches_unfused(cases, xs):
    """The AD-generated adjoint (reversed loops, caches, atomics on
    shadows) is where fusion has the most surface; fused and unfused
    compiled gradients must agree to the bit."""
    from repro.ad import Duplicated, autodiff

    module = _build(cases)
    grad = autodiff(module, "prog", [Duplicated, Duplicated, None])

    outs = []
    for fusion in (True, False):
        x = np.asarray(xs, dtype=float)
        dx = np.zeros(len(xs))
        acc = np.zeros(1)
        dacc = np.ones(1)
        ex = Executor(module, ExecConfig(backend="compiled",
                                         fusion=fusion, num_threads=2))
        ex.interp.backend.strict = True
        ex.run(grad, x, dx, acc, dacc, len(xs))
        outs.append((x, dx, acc, dacc, ex.clock, ex.cost.as_dict()))
    a, b_ = outs
    for i in range(4):
        np.testing.assert_array_equal(a[i], b_[i])
    assert a[4] == b_[4]
    assert a[5] == b_[5]
