"""Fuzz: random structured programs round-trip through print/parse and
execute identically before and after."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.interp import ExecConfig, Executor
from repro.ir import (
    F64,
    I64,
    IRBuilder,
    Ptr,
    parse_function,
    parse_module,
    print_function,
    verify_module,
)

# A random program is a list of statements operating on x (length n)
# and a scratch cell, with nested structure.

_STMT = st.deferred(lambda: st.one_of(
    st.tuples(st.just("axpy"), st.floats(-2, 2), st.floats(-2, 2)),
    st.tuples(st.just("trig")),
    st.tuples(st.just("clamp"), st.floats(0.1, 3.0)),
    st.tuples(st.just("loop"), st.integers(1, 3), st.lists(_STMT,
                                                           max_size=2)),
    st.tuples(st.just("branch"), st.floats(-1, 1),
              st.lists(_STMT, max_size=2), st.lists(_STMT, max_size=2)),
))


def _emit(b, stmts, x, n, depth=0):
    for s in stmts:
        kind = s[0]
        if kind == "axpy":
            with b.for_(0, n, simd=True, name=f"i{depth}") as i:
                v = b.load(x, i)
                b.store(b.add(b.mul(v, s[1]), s[2]), x, i)
        elif kind == "trig":
            with b.for_(0, n, simd=True, name=f"i{depth}") as i:
                b.store(b.sin(b.load(x, i)), x, i)
        elif kind == "clamp":
            with b.for_(0, n, simd=True, name=f"i{depth}") as i:
                b.store(b.min(b.load(x, i), s[1]), x, i)
        elif kind == "loop":
            with b.for_(0, s[1], name=f"k{depth}") as _k:
                _emit(b, s[2], x, n, depth + 1)
        elif kind == "branch":
            v0 = b.load(x, 0)
            with b.if_(b.cmp("gt", v0, s[1])):
                _emit(b, s[2], x, n, depth + 1)
            with b.else_():
                _emit(b, s[3], x, n, depth + 1)


@settings(max_examples=40, deadline=None)
@given(stmts=st.lists(_STMT, min_size=1, max_size=4),
       xs=st.lists(st.floats(-1.5, 1.5), min_size=2, max_size=4))
def test_print_parse_execute_roundtrip(stmts, xs):
    b = IRBuilder()
    with b.function("prog", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        _emit(b, stmts, x, n)
    verify_module(b.module)

    # One parse∘print round normalizes cosmetic value numbering (name
    # collisions between same-named loop ivars); after that, printing
    # is a fixpoint.
    text1 = print_function(b.module.functions["prog"])
    mod2 = parse_module(text1)
    verify_module(mod2)
    text2 = print_function(mod2.functions["prog"])
    mod3 = parse_module(text2)
    text3 = print_function(mod3.functions["prog"])
    assert text2 == text3

    x1 = np.asarray(xs, dtype=float)
    x2 = x1.copy()
    x3 = x1.copy()
    Executor(b.module).run("prog", x1, len(xs))
    Executor(mod2).run("prog", x2, len(xs))
    Executor(mod3).run("prog", x3, len(xs))
    np.testing.assert_array_equal(x1, x2)
    np.testing.assert_array_equal(x1, x3)


@settings(max_examples=25, deadline=None)
@given(stmts=st.lists(_STMT, min_size=1, max_size=3),
       xs=st.lists(st.floats(-1.2, 1.2), min_size=2, max_size=4))
def test_parsed_program_differentiates_identically(stmts, xs):
    """autodiff(parse(print(f))) produces the same derivatives as
    autodiff(f)."""
    from repro.ad import Duplicated, autodiff

    def build():
        b = IRBuilder()
        with b.function("prog", [("x", Ptr()), ("n", I64)]) as f:
            x, n = f.args
            _emit(b, stmts, x, n)
        return b.module

    mod1 = build()
    text = print_function(mod1.functions["prog"])
    mod2 = parse_module(text)

    grads = []
    for mod in (mod1, mod2):
        g = autodiff(mod, "prog", [Duplicated, None])
        x0 = np.asarray(xs, dtype=float)
        dx = np.ones(len(xs))
        Executor(mod).run(g, x0, dx, len(xs))
        grads.append(dx)
    np.testing.assert_array_equal(grads[0], grads[1])
