"""Fuzz: random structured programs execute bit-identically under the
interpreter, the compiled backend, and the native backend — primal
outputs, gradients, simulated clocks, and cost vectors.  A companion
case forces the C gather/scatter width floor down so the machine-code
helpers (not just the expression kernels) face the fuzzer."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ad import Duplicated, autodiff
from repro.interp import ExecConfig, Executor, probe_toolchain
import repro.interp.native as native_mod
from repro.ir import I64, IRBuilder, Ptr, verify_module

from .test_roundtrip_properties import _STMT, _emit

pytestmark = pytest.mark.skipif(probe_toolchain() is None,
                                reason="no C compiler")

#: Claim every fused chain (the suite's widths are tiny, so the
#: default floor would leave the C kernels untested).
_EAGER = {"NATIVE_MIN_OPS": 1, "NATIVE_MIN_GATHER": 1}


def _build(stmts):
    b = IRBuilder()
    with b.function("prog", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        _emit(b, stmts, x, n)
    verify_module(b.module)
    return b.module


def _run(module, fn_name, backend, arrays, scalars):
    ex = Executor(module, ExecConfig(backend=backend))
    if backend != "interp":
        ex.interp.backend.strict = (backend == "compiled")
    ex.run(fn_name, *arrays, *scalars)
    return ex.clock, ex.cost.as_dict()


def _assert_three_way(module, fn_name, xs, grad_of=None):
    outs = {}
    for backend in ("interp", "compiled", "native"):
        x = np.asarray(xs, dtype=float)
        arrays = (x,) if grad_of is None else (x, np.ones(len(xs)))
        clock, cost = _run(module, fn_name, backend, arrays, (len(xs),))
        outs[backend] = (arrays, clock, cost)
    ia, ic, icost = outs["interp"]
    for backend in ("compiled", "native"):
        ba, bc, bcost = outs[backend]
        for a, b in zip(ia, ba):
            np.testing.assert_array_equal(a, b)
        assert ic == bc
        assert icost == bcost


@settings(max_examples=30, deadline=None)
@given(stmts=st.lists(_STMT, min_size=1, max_size=4),
       xs=st.lists(st.floats(-1.5, 1.5), min_size=2, max_size=4))
def test_primal_three_way(stmts, xs):
    _assert_three_way(_build(stmts), "prog", xs)


@settings(max_examples=20, deadline=None)
@given(stmts=st.lists(_STMT, min_size=1, max_size=3),
       xs=st.lists(st.floats(-1.2, 1.2), min_size=2, max_size=4))
def test_gradient_three_way(stmts, xs):
    """The AD-generated derivative is the hard case: reversed loops,
    caches, shadow accumulates — all three backends, same bits."""
    module = _build(stmts)
    grad = autodiff(module, "prog", [Duplicated, None])
    _assert_three_way(module, grad, xs, grad_of="x")


@settings(max_examples=20, deadline=None)
@given(stmts=st.lists(_STMT, min_size=1, max_size=3),
       xs=st.lists(st.floats(-1.2, 1.2), min_size=2, max_size=4))
def test_gradient_three_way_forced_native(stmts, xs):
    """Same property with every native claim floor dropped to 1, so the
    C expression kernels and gather/scatter helpers actually run at the
    fuzzer's widths instead of declining."""
    saved = {k: getattr(native_mod, k) for k in _EAGER}
    for k, v in _EAGER.items():
        setattr(native_mod, k, v)
    try:
        module = _build(stmts)
        grad = autodiff(module, "prog", [Duplicated, None])
        _assert_three_way(module, grad, xs, grad_of="x")
    finally:
        for k, v in saved.items():
            setattr(native_mod, k, v)
