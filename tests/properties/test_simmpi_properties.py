"""Property tests of the SimMPI engine and the min-cut planner."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ad.activity import analyze_activity
from repro.ad.cacheplan import CachePlanner
from repro.interp import ExecConfig
from repro.ir import F64, I64, IRBuilder, Ptr
from repro.parallel import SimMPI
from repro.passes.aliasing import analyze_aliasing


# ---------------------------------------------------------------------------
# Random all-to-all message pattern delivers every payload exactly once.
# ---------------------------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(
    nprocs=st.integers(2, 5),
    seed=st.integers(0, 10_000),
)
def test_random_permutation_exchange(nprocs, seed):
    """Each rank sends its vector to a random peer (a permutation);
    everyone must receive exactly the right payload."""
    rng = np.random.default_rng(seed)
    perm = rng.permutation(nprocs)

    b = IRBuilder()
    with b.function("x", [("buf", Ptr()), ("dest", Ptr(I64)),
                          ("src", Ptr(I64)), ("n", I64)]) as f:
        buf, dest, src, n = f.args
        tmp = b.alloc(n)
        r1 = b.call("mpi.isend", buf, n, b.load(dest, 0), 11)
        r2 = b.call("mpi.irecv", tmp, n, b.load(src, 0), 11)
        b.call("mpi.wait", r1)
        b.call("mpi.wait", r2)
        b.memcpy(buf, tmp, n)

    n = 3
    bufs = [np.full(n, float(r + 1)) for r in range(nprocs)]
    inv = np.empty(nprocs, dtype=int)
    inv[perm] = np.arange(nprocs)
    SimMPI(b.module, nprocs, ExecConfig()).run(
        "x", lambda r: (bufs[r],
                        np.array([perm[r]], dtype=np.int64),
                        np.array([inv[r]], dtype=np.int64), n))
    for r in range(nprocs):
        np.testing.assert_allclose(bufs[r], float(inv[r] + 1))


@settings(max_examples=20, deadline=None)
@given(nprocs=st.integers(1, 6),
       values=st.lists(st.floats(-100, 100, allow_nan=False),
                       min_size=6, max_size=6))
def test_allreduce_equals_numpy(nprocs, values):
    b = IRBuilder()
    with b.function("ar", [("x", Ptr()), ("out", Ptr()), ("n", I64)]) as f:
        x, out, n = f.args
        b.call("mpi.allreduce", x, out, n, op="sum")
    per = 6 // max(1, 1)
    xs = [np.asarray(values) * (r + 1) for r in range(nprocs)]
    outs = [np.zeros(6) for _ in range(nprocs)]
    SimMPI(b.module, nprocs, ExecConfig()).run(
        "ar", lambda r: (xs[r], outs[r], 6))
    expect = sum(np.asarray(values) * (r + 1) for r in range(nprocs))
    for o in outs:
        np.testing.assert_allclose(o, expect, rtol=1e-12, atol=1e-12)


# ---------------------------------------------------------------------------
# Min-cut planner invariants on random straight-line kernels.
# ---------------------------------------------------------------------------

_OPS = ("mul", "add", "sin", "sqrt1", "div1")


@st.composite
def random_chain(draw):
    return draw(st.lists(st.sampled_from(_OPS), min_size=1, max_size=8))


def _build_kernel(chain):
    b = IRBuilder()
    with b.function("k", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        with b.parallel_for(0, n) as i:
            v = b.load(x, i)
            for oc in chain:
                if oc == "mul":
                    v = b.mul(v, v)
                elif oc == "add":
                    v = b.add(v, 1.0)
                elif oc == "sin":
                    v = b.sin(v)
                elif oc == "sqrt1":
                    v = b.sqrt(b.add(b.mul(v, v), 1.0))
                elif oc == "div1":
                    v = b.div(v, b.add(b.mul(v, v), 2.0))
            b.store(v, x, i)
    return b


@settings(max_examples=40, deadline=None)
@given(chain=random_chain())
def test_mincut_cut_is_sufficient_and_cheaper(chain):
    """Invariants: (1) every reverse-needed value resolves to free,
    cached, or recomputable-from-resolved; (2) the min-cut never caches
    more than cache-all."""
    b = _build_kernel(chain)
    fn = b.module.functions["k"]
    aliasing = analyze_aliasing(fn, b.module)
    act = analyze_activity(fn, b.module, aliasing, set(fn.args), set())

    plans = {}
    for cache_all in (False, True):
        planner = CachePlanner(fn, b.module, aliasing, act,
                               cache_all=cache_all)
        plans[cache_all] = planner.build()

    mincut, call = plans[False], plans[True]
    assert mincut.stats["cached"] <= call.stats["cached"]

    # sufficiency: transitively resolve every needed value
    planner = CachePlanner(fn, b.module, aliasing, act)
    plan = planner.build()

    memo: dict = {}

    def resolvable(v):
        if v in memo:
            return memo[v]          # shared operands resolve once
        memo[v] = False             # cycle guard (DAG: never hit)
        if planner._is_free(v):
            out = True
        else:
            r = plan.resolution.get(v)
            if r == "cache":
                out = True
            elif r == "recompute":
                deps = planner._recompute_deps(v)
                out = deps is not None and all(resolvable(d) for d in deps)
            else:
                out = False
        memo[v] = out
        return out

    for v in plan.needed:
        from repro.ir.types import PointerType
        if isinstance(v.type, PointerType):
            continue
        assert resolvable(v), v


@settings(max_examples=25, deadline=None)
@given(chain=random_chain(),
       xs=st.lists(st.floats(0.2, 1.5), min_size=3, max_size=5))
def test_random_chain_gradient_fd(chain, xs):
    from repro.ad import Duplicated, autodiff
    from repro.interp import Executor
    b = _build_kernel(chain)
    grad = autodiff(b.module, "k", [Duplicated, None])
    x0 = np.asarray(xs)
    n = len(x0)

    def run(x):
        Executor(b.module).run("k", x, n)
        return x.sum()

    eps = 1e-7
    fd = np.array([(run(x0 + eps * e) - run(x0 - eps * e)) / (2 * eps)
                   for e in np.eye(n)])
    dx = np.ones(n)
    Executor(b.module).run(grad, x0.copy(), dx, n)
    np.testing.assert_allclose(dx, fd, rtol=5e-4, atol=1e-5)
