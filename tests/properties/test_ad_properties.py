"""Property-based tests: random programs differentiate correctly.

Hypothesis generates random elementwise expression trees and random
loop-nest programs; every generated gradient must match central finite
differences (and be invariant to thread count and cache-planning
strategy).
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ad import ADConfig, Duplicated, autodiff
from repro.interp import ExecConfig, Executor
from repro.ir import F64, I64, IRBuilder, Ptr

# ---------------------------------------------------------------------------
# Random smooth expression trees
# ---------------------------------------------------------------------------

_UNARY = ["sin", "cos", "exp", "sqrt_safe", "neg", "abs_shift"]
_BINARY = ["add", "sub", "mul", "div_safe", "min_skew", "max_skew"]


def _apply_unary(b, op, v):
    if op == "sin":
        return b.sin(v)
    if op == "cos":
        return b.cos(v)
    if op == "exp":
        return b.exp(b.mul(v, 0.25))
    if op == "sqrt_safe":
        return b.sqrt(b.add(b.mul(v, v), 1.0))
    if op == "neg":
        return b.neg(v)
    if op == "abs_shift":
        # keep away from the |.|-kink at 0
        return b.abs(b.add(v, 10.0))
    raise AssertionError(op)


def _apply_binary(b, op, u, v):
    if op == "add":
        return b.add(u, v)
    if op == "sub":
        return b.sub(u, v)
    if op == "mul":
        return b.mul(u, v)
    if op == "div_safe":
        return b.div(u, b.add(b.mul(v, v), 2.0))
    if op == "min_skew":
        # skew keeps ties measure-zero for generic inputs
        return b.min(u, b.add(v, 0.137))
    if op == "max_skew":
        return b.max(u, b.sub(v, 0.274))
    raise AssertionError(op)


def _np_unary(op, v):
    if op == "sin":
        return np.sin(v)
    if op == "cos":
        return np.cos(v)
    if op == "exp":
        return np.exp(0.25 * v)
    if op == "sqrt_safe":
        return np.sqrt(v * v + 1.0)
    if op == "neg":
        return -v
    if op == "abs_shift":
        return np.abs(v + 10.0)
    raise AssertionError(op)


def _np_binary(op, u, v):
    if op == "add":
        return u + v
    if op == "sub":
        return u - v
    if op == "mul":
        return u * v
    if op == "div_safe":
        return u / (v * v + 2.0)
    if op == "min_skew":
        return np.minimum(u, v + 0.137)
    if op == "max_skew":
        return np.maximum(u, v - 0.274)
    raise AssertionError(op)


expr_strategy = st.recursive(
    st.sampled_from(["x", "c1", "c2"]),
    lambda children: st.one_of(
        st.tuples(st.sampled_from(_UNARY), children),
        st.tuples(st.sampled_from(_BINARY), children, children),
    ),
    max_leaves=10,
)


def _build_expr(b, node, x, consts):
    if node == "x":
        return x
    if node == "c1":
        return b.const(consts[0])
    if node == "c2":
        return b.const(consts[1])
    if len(node) == 2:
        return _apply_unary(b, node[0], _build_expr(b, node[1], x, consts))
    return _apply_binary(b, node[0],
                         _build_expr(b, node[1], x, consts),
                         _build_expr(b, node[2], x, consts))


def _eval_expr(node, x, consts):
    if node == "x":
        return x
    if node == "c1":
        return np.full_like(x, consts[0])
    if node == "c2":
        return np.full_like(x, consts[1])
    if len(node) == 2:
        return _np_unary(node[0], _eval_expr(node[1], x, consts))
    return _np_binary(node[0], _eval_expr(node[1], x, consts),
                      _eval_expr(node[2], x, consts))


@settings(max_examples=40, deadline=None)
@given(expr=expr_strategy,
       xs=st.lists(st.floats(-2.0, 2.0), min_size=3, max_size=6),
       c1=st.floats(-1.5, 1.5), c2=st.floats(0.2, 2.0),
       nthreads=st.sampled_from([1, 2, 4]))
def test_random_expression_gradient_matches_fd(expr, xs, c1, c2, nthreads):
    consts = (c1, c2)
    b = IRBuilder()
    with b.function("k", [("x", Ptr()), ("y", Ptr()), ("n", I64)]) as f:
        x, y, n = f.args
        with b.parallel_for(0, n) as i:
            v = b.load(x, i)
            b.store(_build_expr(b, expr, v, consts), y, i)
    grad = autodiff(b.module, "k", [Duplicated, Duplicated, None])

    x0 = np.asarray(xs, dtype=float)
    n = len(x0)

    # primal agrees with the direct NumPy evaluation
    y = np.zeros(n)
    Executor(b.module, ExecConfig(num_threads=nthreads)).run(
        "k", x0.copy(), y, n)
    np.testing.assert_allclose(y, _eval_expr(expr, x0, consts),
                               rtol=1e-10, atol=1e-12)

    # reverse gradient agrees with central FD
    dx = np.zeros(n)
    Executor(b.module, ExecConfig(num_threads=nthreads)).run(
        grad, x0.copy(), dx, np.zeros(n), np.ones(n), n)

    eps = 1e-6
    fd = (_eval_expr(expr, x0 + eps, consts)
          - _eval_expr(expr, x0 - eps, consts)) / (2 * eps)
    np.testing.assert_allclose(dx, fd, rtol=2e-4, atol=2e-4)


@settings(max_examples=25, deadline=None)
@given(expr=expr_strategy,
       xs=st.lists(st.floats(-2.0, 2.0), min_size=3, max_size=5))
def test_cache_all_equals_mincut(expr, xs):
    """The §IV-C ablation never changes values, only costs."""
    grads = {}
    for cache_all in (False, True):
        b = IRBuilder()
        with b.function("k", [("x", Ptr()), ("n", I64)]) as f:
            x, n = f.args
            with b.for_(0, n) as i:
                v = b.load(x, i)
                b.store(_build_expr(b, expr, v, (0.5, 1.5)), x, i)
        grad = autodiff(b.module, "k", [Duplicated, None],
                        ADConfig(cache_all=cache_all))
        x0 = np.asarray(xs, dtype=float)
        dx = np.ones(len(x0))
        Executor(b.module).run(grad, x0.copy(), dx, len(x0))
        grads[cache_all] = dx
    np.testing.assert_allclose(grads[False], grads[True], rtol=1e-12)


@settings(max_examples=20, deadline=None)
@given(steps=st.integers(1, 4),
       xs=st.lists(st.floats(0.35, 0.9), min_size=2, max_size=4))
def test_iterated_map_gradient(steps, xs):
    """d/dx of an n-fold logistic-like map via a while loop.

    The map factor stays in the contracting regime — in the chaotic
    regime derivatives blow up and *finite differences* (not AD) lose
    accuracy to cancellation.
    """
    b = IRBuilder()
    with b.function("it", [("x", Ptr()), ("n", I64), ("t", Ptr(I64))]) as f:
        x, n, t = f.args
        with b.while_() as it:
            with b.for_(0, n, simd=True) as i:
                v = b.load(x, i)
                b.store(b.mul(b.mul(2.5, v), b.sub(1.05, v)), x, i)
            b.loop_while(b.cmp("lt", it + 1, b.load(t, 0)))
    grad = autodiff(b.module, "it", [Duplicated, None, None])

    x0 = np.asarray(xs, dtype=float)
    n = len(x0)
    tarr = np.array([steps], dtype=np.int64)

    def run(x):
        Executor(b.module).run("it", x, n, tarr.copy())
        return x.sum()

    eps = 1e-7
    fd = np.array([(run(x0 + eps * e) - run(x0 - eps * e)) / (2 * eps)
                   for e in np.eye(n)])
    dx = np.ones(n)
    Executor(b.module).run(grad, x0.copy(), dx, n, tarr.copy())
    np.testing.assert_allclose(dx, fd, rtol=1e-4, atol=1e-6)
