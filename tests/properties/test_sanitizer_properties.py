"""Property-based soundness check for the race sanitizer.

Hypothesis generates random fork-region access patterns (disjoint /
uniform / guarded stores, atomics, loads, barriers).  The static lint's
contract is one-directional: a program it reports *fully clean* (no
errors and no warnings) must produce zero reports from the dynamic
vector-clock checker at any thread count.  Warned programs may or may
not race — the lint is conservative — but a clean verdict is a proof.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.interp import ExecConfig, Executor
from repro.ir import F64, I64, IRBuilder, Ptr
from repro.sanitize import lint_function

NA = {"noalias": True}

BUF = 16          # cells in the shared buffer
MAXT = 4          # max thread count exercised dynamically

# One fork-body statement: (kind, cell, guard) where guard is a thread
# id (guarded store) or None (unguarded).
_stmt = st.one_of(
    st.tuples(st.just("store_tid"), st.just(0), st.none()),
    st.tuples(st.just("store_cell"), st.integers(0, 3),
              st.none() | st.integers(0, MAXT - 1)),
    st.tuples(st.just("atomic_cell"), st.integers(0, 3), st.none()),
    st.tuples(st.just("load_cell"), st.integers(0, 3),
              st.none() | st.integers(0, MAXT - 1)),
    st.tuples(st.just("barrier"), st.just(0), st.none()),
)


def _build(stmts):
    b = IRBuilder()
    with b.function("f", [("y", Ptr()), ("n", I64)],
                    arg_attrs=[NA, {}]) as f:
        y, n = f.args
        with b.fork(0) as (tid, nth):
            for kind, cell, guard in stmts:
                if kind == "barrier":
                    b.barrier()
                    continue
                if guard is not None:
                    with b.if_(b.cmp("eq", tid, guard)):
                        _emit(b, kind, cell, tid, y)
                else:
                    _emit(b, kind, cell, tid, y)
    return b


def _emit(b, kind, cell, tid, y):
    if kind == "store_tid":
        b.store(1.0, y, tid)
    elif kind == "store_cell":
        b.store(2.0, y, cell)
    elif kind == "atomic_cell":
        b.atomic_add(1.0, y, cell)
    elif kind == "load_cell":
        v = b.load(y, cell)
        b.store(v, y, b.add(tid, 8))    # private spill, disjoint range


@settings(max_examples=60, deadline=None)
@given(st.lists(_stmt, min_size=1, max_size=7))
def test_lint_clean_implies_no_dynamic_race(stmts):
    b = _build(stmts)
    res = lint_function(b.module.functions["f"], b.module)
    if not (res.clean and not res.warnings):
        return  # conservative verdict: no claim either way
    for nt in (2, MAXT):
        ex = Executor(b.module, ExecConfig(
            num_threads=nt, sanitize=True, sanitize_raise=False))
        ex.run("f", np.zeros(BUF), BUF)
        assert ex.races == [], (
            f"lint-clean program raced at {nt} threads:\n"
            f"{ex.races[0]}\nstmts={stmts}")


@settings(max_examples=30, deadline=None)
@given(st.lists(_stmt, min_size=1, max_size=7))
def test_dynamic_checker_never_crashes_or_corrupts(stmts):
    """The checker itself must not alter results: a sanitized run and a
    plain run produce identical final buffers."""
    b = _build(stmts)
    buf_plain = np.zeros(BUF)
    Executor(b.module, ExecConfig(num_threads=2)).run("f", buf_plain, BUF)
    buf_san = np.zeros(BUF)
    Executor(b.module, ExecConfig(
        num_threads=2, sanitize=True,
        sanitize_raise=False)).run("f", buf_san, BUF)
    np.testing.assert_array_equal(buf_plain, buf_san)
