"""Property: the checkpointed adjoint is bit-identical to the
cache-all plan — on random time-stepped programs and on the real
LULESH variants (simd, workshare, RAJA inner loops) across step
counts and both execution backends."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.ad import ADConfig, Const, Duplicated, autodiff
from repro.interp import ExecConfig, Executor
from repro.ir import I64, IRBuilder, Ptr, verify_module

from .test_roundtrip_properties import _STMT, _emit


def _time_stepped(stmts):
    """Wrap a random statement list in a counted time loop over x."""
    b = IRBuilder()
    with b.function("prog", [("x", Ptr()), ("n", I64),
                             ("steps", I64)]) as f:
        x, n, steps = f.args
        with b.for_(0, steps, name="s"):
            _emit(b, stmts, x, n, depth=1)
    verify_module(b.module)
    return b.module


@settings(max_examples=20, deadline=None)
@given(stmts=st.lists(_STMT, min_size=1, max_size=3),
       xs=st.lists(st.floats(-1.2, 1.2), min_size=2, max_size=4),
       steps=st.integers(0, 9),
       backend=st.sampled_from(["interp", "compiled"]))
def test_checkpoint_equals_cacheall_random_programs(stmts, xs, steps,
                                                    backend):
    grads = {}
    for adjoint in ("cache-all", "checkpoint"):
        module = _time_stepped(stmts)
        grad = autodiff(module, "prog", [Duplicated, Const, Const],
                        ADConfig(adjoint=adjoint))
        ex = Executor(module, ExecConfig(backend=backend))
        x = np.asarray(xs, dtype=float)
        dx = np.ones(len(xs))
        ex.run(grad, x, dx, len(xs), steps)
        grads[adjoint] = (x, dx)
    np.testing.assert_array_equal(grads["cache-all"][0],
                                  grads["checkpoint"][0])
    np.testing.assert_array_equal(grads["cache-all"][1],
                                  grads["checkpoint"][1])


@settings(max_examples=6, deadline=None)
@given(flavor=st.sampled_from(["serial", "openmp", "raja"]),
       steps=st.integers(1, 8))
def test_checkpoint_equals_cacheall_lulesh(flavor, steps):
    """serial = simd inner loops, openmp/raja = fork + workshare: the
    strategy must reproduce every shadow accumulation mode exactly."""
    from repro.apps.lulesh.driver import LuleshApp

    threads = 1 if flavor == "serial" else 2
    shadows = {}
    for adjoint in (None, "checkpoint"):
        app = LuleshApp(flavor, 2, adjoint=adjoint)
        doms = app.make_domains()
        sh = [d.shadow_arrays(seed=1.0) for d in doms]
        app.run_gradient(doms, steps, threads, sh)
        if adjoint:
            assert [e["loop"] for e in app.adjoint_report["managed"]] \
                == ["s"]
        shadows[adjoint] = sh[0]
    for field in sorted(shadows[None]):
        np.testing.assert_array_equal(shadows[None][field],
                                      shadows["checkpoint"][field],
                                      err_msg=f"{flavor}/{field}")
