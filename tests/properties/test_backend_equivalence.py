"""Fuzz: random structured programs execute bit-identically under the
interpreter and the compiled backend — primal outputs, gradients,
simulated clocks, and cost vectors."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.ad import Duplicated, autodiff
from repro.interp import ExecConfig, Executor
from repro.ir import I64, IRBuilder, Ptr, verify_module

from .test_roundtrip_properties import _STMT, _emit


def _build(stmts):
    b = IRBuilder()
    with b.function("prog", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        _emit(b, stmts, x, n)
    verify_module(b.module)
    return b.module


def _run(module, fn_name, backend, arrays, scalars):
    ex = Executor(module, ExecConfig(backend=backend))
    if backend == "compiled":
        ex.interp.backend.strict = True  # lowering must cover everything
    ex.run(fn_name, *arrays, *scalars)
    return ex.clock, ex.cost.as_dict()


@settings(max_examples=40, deadline=None)
@given(stmts=st.lists(_STMT, min_size=1, max_size=4),
       xs=st.lists(st.floats(-1.5, 1.5), min_size=2, max_size=4))
def test_primal_matches_interpreter(stmts, xs):
    module = _build(stmts)
    x_i = np.asarray(xs, dtype=float)
    x_c = x_i.copy()
    clock_i, cost_i = _run(module, "prog", "interp", (x_i,), (len(xs),))
    clock_c, cost_c = _run(module, "prog", "compiled", (x_c,), (len(xs),))
    np.testing.assert_array_equal(x_i, x_c)
    assert clock_i == clock_c
    assert cost_i == cost_c


@settings(max_examples=25, deadline=None)
@given(stmts=st.lists(_STMT, min_size=1, max_size=3),
       xs=st.lists(st.floats(-1.2, 1.2), min_size=2, max_size=4))
def test_gradient_matches_interpreter(stmts, xs):
    """The AD-generated derivative (caches, reversed loops, shadow
    increments) is the hard case: both backends must produce the same
    bits for primal-out, gradient, clock, and cost."""
    module = _build(stmts)
    grad = autodiff(module, "prog", [Duplicated, None])

    outs = {}
    for backend in ("interp", "compiled"):
        x = np.asarray(xs, dtype=float)
        dx = np.ones(len(xs))
        clock, cost = _run(module, grad, backend, (x, dx), (len(xs),))
        outs[backend] = (x, dx, clock, cost)
    x_i, dx_i, clock_i, cost_i = outs["interp"]
    x_c, dx_c, clock_c, cost_c = outs["compiled"]
    np.testing.assert_array_equal(x_i, x_c)
    np.testing.assert_array_equal(dx_i, dx_c)
    assert clock_i == clock_c
    assert cost_i == cost_c
