"""Pluggable adjoint strategies (repro.ad.strategy).

Covers the revolve reference schedule, the checkpointed adjoint's
bit-identity with the cache-all plan under both backends, its
O(log N) peak cached state, the implicit (fixed-point) adjoint, the
eligibility fallbacks, per-region tags, the verifier rules, and the
IR round-trip of the ``adjoint`` loop attribute.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ad import ADConfig, Const, Duplicated, autodiff, autodiff_transform
from repro.ad.strategy import (CacheAllAdjoint, CheckpointAdjoint,
                               ImplicitAdjoint, resolve_strategy,
                               simulate_schedule, strategy_fingerprint)
from repro.interp import ExecConfig, Executor
from repro.ir import (I64, IRBuilder, Ptr, VerificationError, parse_module,
                      print_module, verify_module)

BACKENDS = ["interp", "compiled"]


# ---------------------------------------------------------------------------
# The pure-Python revolve schedule
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("n", [0, 1, 2, 3, 4, 5, 7, 8, 13, 64, 100])
def test_simulate_schedule(n):
    order, peak, advance = simulate_schedule(n)
    assert order == list(range(n - 1, -1, -1))
    if n == 0:
        assert peak == 0 and advance == 0
    elif n == 1:
        assert peak == 1 and advance == 0
    else:
        # ceil(log2 n) + 1 snapshot slots — the select chain in
        # _ckpt_forward_loop computes exactly this bound.
        assert peak == (n - 1).bit_length() + 1
        # O(N log N) primal recompute.
        assert advance <= n * (n - 1).bit_length()


def test_resolve_strategy():
    assert isinstance(resolve_strategy(None), CacheAllAdjoint)
    assert isinstance(resolve_strategy("cache-all"), CacheAllAdjoint)
    assert isinstance(resolve_strategy("checkpoint"), CheckpointAdjoint)
    assert isinstance(resolve_strategy("implicit"), ImplicitAdjoint)
    strat = CheckpointAdjoint()
    assert resolve_strategy(strat) is strat
    with pytest.raises(ValueError, match="unknown adjoint strategy"):
        resolve_strategy("bogus")


def test_strategy_fingerprints_distinct():
    fps = {strategy_fingerprint(ADConfig(adjoint=a))
           for a in ("cache-all", "checkpoint", "implicit")}
    assert len(fps) == 3
    assert strategy_fingerprint(
        ADConfig(adjoint="implicit", implicit_iters=5)) != \
        strategy_fingerprint(ADConfig(adjoint="implicit"))


# ---------------------------------------------------------------------------
# Checkpoint == cache-all, bit for bit, under both backends
# ---------------------------------------------------------------------------

def _step_loop_module(adjoint_tag=None):
    """x[i] <- 0.99*x[i] + x[i]^2 iterated ``steps`` times."""
    b = IRBuilder()
    with b.function("step_loop", [("x", Ptr()), ("n", I64),
                                  ("steps", I64)]) as f:
        x, n, steps = f.args
        with b.for_(0, steps, name="s", adjoint=adjoint_tag):
            with b.for_(0, n, name="i") as i:
                v = b.load(x, i)
                b.store(b.add(b.mul(v, 0.99), b.mul(v, v)), x, i)
    verify_module(b.module)
    return b.module


def _grad_step_loop(adjoint, steps, backend, n=5, tag=None):
    m = _step_loop_module(tag)
    g = autodiff(m, "step_loop", [Duplicated, Const, Const],
                 ADConfig(adjoint=adjoint) if adjoint else ADConfig())
    ex = Executor(m, ExecConfig(backend=backend))
    x = np.linspace(0.1, 0.9, n)
    dx = np.ones(n)
    ex.run(g, x, dx, n, steps)
    return dx, ex.adjoint_stats()


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("steps", [0, 1, 2, 3, 7, 64])
def test_checkpoint_bit_identical(backend, steps):
    g_ca, _ = _grad_step_loop("cache-all", steps, backend)
    g_ck, _ = _grad_step_loop("checkpoint", steps, backend)
    np.testing.assert_array_equal(g_ca, g_ck)


@pytest.mark.parametrize("backend", BACKENDS)
def test_checkpoint_peak_state_logarithmic(backend):
    """Peak cached bytes grow O(log steps), not O(steps)."""
    peaks = {}
    for steps in (8, 64, 256):
        _, st_ca = _grad_step_loop("cache-all", steps, backend)
        _, st_ck = _grad_step_loop("checkpoint", steps, backend)
        assert st_ck["peak_cached_bytes"] < st_ca["peak_cached_bytes"]
        peaks[steps] = st_ck["peak_cached_bytes"]
    # 32x the steps must cost far less than 32x the state: the slot
    # count goes 4 -> 7 -> 9 (ceil(log2 N) + 1).
    assert peaks[256] <= 3 * peaks[8]


def test_per_region_tag_overrides_global_default():
    """A tagged loop is managed even under the cache-all default."""
    m = _step_loop_module("checkpoint")
    tr = autodiff_transform(m, "step_loop", [Duplicated, Const, Const])
    assert tr.adjoint_report["strategy"] == "cache-all"
    assert [e["loop"] for e in tr.adjoint_report["managed"]] == ["s"]
    g_ca, _ = _grad_step_loop(None, 16, "interp")
    g_tag, st = _grad_step_loop(None, 16, "interp", tag="checkpoint")
    np.testing.assert_array_equal(g_ca, g_tag)


# ---------------------------------------------------------------------------
# Implicit (fixed-point) adjoint
# ---------------------------------------------------------------------------

def _fixpoint_module(tag=None):
    """x[i] <- 0.5*x[i] + theta[i]: contraction to x* = 2*theta."""
    b = IRBuilder()
    with b.function("fixpt", [("x", Ptr()), ("theta", Ptr()),
                              ("n", I64), ("steps", I64)]) as f:
        x, theta, n, steps = f.args
        with b.for_(0, steps, name="s", adjoint=tag):
            with b.for_(0, n, name="i") as i:
                b.store(b.add(b.mul(b.load(x, i), 0.5),
                              b.load(theta, i)), x, i)
    verify_module(b.module)
    return b.module


@pytest.mark.parametrize("backend", BACKENDS)
def test_implicit_matches_unrolled(backend):
    steps, n = 60, 4

    def run(tag):
        m = _fixpoint_module(tag)
        g = autodiff(m, "fixpt", [Duplicated, Duplicated, Const, Const],
                     ADConfig())
        ex = Executor(m, ExecConfig(backend=backend))
        x = np.full(n, 3.0)
        theta = np.linspace(0.5, 2.0, n)
        dx, dtheta = np.ones(n), np.zeros(n)
        ex.run(g, x, dx, theta, dtheta, n, steps)
        return dtheta

    unrolled = run(None)
    implicit = run("implicit")
    # After 60 halvings the map is numerically at its fixed point, so
    # theta_bar = sum_k 0.5^k = 2 (per element, seed 1) for both.
    np.testing.assert_allclose(implicit, unrolled, rtol=0, atol=1e-10)
    np.testing.assert_allclose(implicit, 2.0, rtol=0, atol=1e-10)


def test_implicit_iters_truncates_neumann_series():
    m = _fixpoint_module("implicit")
    g = autodiff(m, "fixpt", [Duplicated, Duplicated, Const, Const],
                 ADConfig(implicit_iters=3))
    ex = Executor(m, ExecConfig())
    n = 2
    x, theta = np.full(n, 3.0), np.ones(n)
    dx, dtheta = np.ones(n), np.zeros(n)
    ex.run(g, x, dx, theta, dtheta, n, 50)
    # 3 Neumann rounds: 1 + 0.5 + 0.25
    np.testing.assert_allclose(dtheta, 1.75, rtol=0, atol=1e-12)


# ---------------------------------------------------------------------------
# Eligibility fallbacks (recorded, and still correct via cache-all)
# ---------------------------------------------------------------------------

def _report_for(build_body, adjoint="checkpoint", args=None):
    b = IRBuilder()
    arglist = args or [("x", Ptr()), ("n", I64), ("steps", I64)]
    with b.function("f", arglist) as f:
        build_body(b, f)
    verify_module(b.module)
    tr = autodiff_transform(b.module, "f",
                            [Duplicated] + [Const] * (len(arglist) - 1),
                            ADConfig(adjoint=adjoint))
    return tr.adjoint_report


def test_fallback_while_in_body():
    def body(b, f):
        x, n, steps = f.args
        with b.for_(0, steps, name="s"):
            with b.while_():
                v = b.load(x, 0)
                b.store(b.mul(v, 0.5), x, 0)
                b.loop_while(b.cmp("gt", b.load(x, 0), 1.0))

    rep = _report_for(body)
    assert rep["managed"] == []
    assert len(rep["fallbacks"]) == 1
    assert "dynamic trip-count" in rep["fallbacks"][0]["reason"]


def test_fallback_dynamic_bounds():
    def body(b, f):
        x, n, steps = f.args
        with b.for_(0, n, name="i") as i:
            # The bound of the would-be time loop is loop-varying.
            with b.for_(0, b.add(i, 1), name="s"):
                b.store(b.mul(b.load(x, 0), 0.5), x, 0)

    rep = _report_for(body)
    assert rep["managed"] == []
    # The outer loop is eligible-shaped but the inner tagged-one is not
    # function-level; only top-level loops are considered, so the outer
    # loop is the candidate and its body holds an inner dynamic region.
    assert len(rep["fallbacks"]) == 1
    assert "non-static extent" in rep["fallbacks"][0]["reason"]


def test_fallback_still_differentiates_correctly():
    """An ineligible loop silently falls back to the cache-all plan."""
    def build(adjoint):
        b = IRBuilder()
        with b.function("f", [("x", Ptr()), ("steps", I64)]) as f:
            x, steps = f.args
            with b.for_(0, steps, name="s"):
                with b.while_():
                    v = b.load(x, 0)
                    b.store(b.mul(v, 0.5), x, 0)
                    b.loop_while(b.cmp("gt", b.load(x, 0), 1.0))
        verify_module(b.module)
        cfg = ADConfig(adjoint=adjoint) if adjoint else ADConfig()
        g = autodiff(b.module, "f", [Duplicated, Const], cfg)
        ex = Executor(b.module, ExecConfig())
        x, dx = np.array([40.0]), np.array([1.0])
        ex.run(g, x, dx, 3)
        return dx

    np.testing.assert_array_equal(build(None), build("checkpoint"))


def test_lulesh_julia_flavor_falls_back():
    """jl.* runtime calls in the body are a recorded fallback."""
    pytest.importorskip("numpy")
    from repro.apps.lulesh.driver import LuleshApp

    app = LuleshApp("julia", 2, adjoint="checkpoint")
    app.grad_fn()
    rep = app.adjoint_report
    assert rep["managed"] == []
    assert any("jl." in e["reason"] for e in rep["fallbacks"])


# ---------------------------------------------------------------------------
# Determinism: gradient IR must not depend on hash ordering
# ---------------------------------------------------------------------------

_HASHSEED_SCRIPT = """
import sys
from repro.ad import ADConfig, Const, Duplicated, autodiff
from repro.ir import I64, IRBuilder, Ptr, print_module, verify_module

b = IRBuilder()
with b.function("step_loop", [("x", Ptr()), ("y", Ptr()), ("n", I64),
                              ("steps", I64)]) as f:
    x, y, n, steps = f.args
    with b.for_(0, steps, name="s", adjoint=sys.argv[1] or None):
        with b.for_(0, n, name="i") as i:
            u, v = b.load(x, i), b.load(y, i)
            b.store(b.add(b.mul(u, 0.99), b.mul(v, u)), x, i)
            b.store(b.add(v, b.mul(u, 0.125)), y, i)
verify_module(b.module)
autodiff(b.module, "step_loop", [Duplicated, Duplicated, Const, Const],
         ADConfig(adjoint=sys.argv[1]) if sys.argv[1] else ADConfig())
sys.stdout.write(print_module(b.module))
"""


@pytest.mark.parametrize("adjoint", ["", "checkpoint", "implicit"])
def test_gradient_ir_deterministic_across_hash_seeds(adjoint, tmp_path):
    """Byte-identical gradient IR under different PYTHONHASHSEEDs: the
    strategy analysis (state discovery, snapshot order) must iterate in
    program order, never set order."""
    import os
    import subprocess
    import sys

    import repro

    script = tmp_path / "emit_ir.py"
    script.write_text(_HASHSEED_SCRIPT)
    src_root = os.path.dirname(os.path.dirname(repro.__file__))
    outs = []
    for seed in ("0", "1"):
        env = dict(os.environ, PYTHONHASHSEED=seed,
                   PYTHONPATH=src_root + os.pathsep
                   + os.environ.get("PYTHONPATH", ""))
        proc = subprocess.run([sys.executable, str(script), adjoint],
                              capture_output=True, env=env, check=True)
        outs.append(proc.stdout)
    assert outs[0] == outs[1]
    if adjoint:
        assert f"{{adjoint='{adjoint}'}}".encode() in outs[0]


# ---------------------------------------------------------------------------
# Verifier rules and IR round-trip for the loop attribute
# ---------------------------------------------------------------------------

def test_verifier_rejects_unknown_tag():
    b = IRBuilder()
    with b.function("f", [("n", I64)]) as f:
        (n,) = f.args
        with b.for_(0, n, adjoint="bogus"):
            pass
    with pytest.raises(VerificationError, match="unknown adjoint strategy"):
        verify_module(b.module)


def test_verifier_rejects_simd_with_adjoint_tag():
    b = IRBuilder()
    with b.function("f", [("n", I64)]) as f:
        (n,) = f.args
        with b.for_(0, n, simd=True, adjoint="checkpoint"):
            pass
    with pytest.raises(VerificationError, match="serial counted loops"):
        verify_module(b.module)


def test_adjoint_attr_roundtrip():
    m = _step_loop_module("checkpoint")
    text = print_module(m)
    assert "{adjoint='checkpoint'}" in text
    m2 = parse_module(text)
    loops = [op for op in m2.functions["step_loop"].body.ops
             if op.opcode == "for"]
    assert loops[0].attrs.get("adjoint") == "checkpoint"
    assert print_module(m2) == text
    verify_module(m2)
