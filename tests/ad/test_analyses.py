"""Unit tests for the AD-supporting analyses: activity, aliasing,
thread-locality / access patterns."""

import numpy as np
import pytest

from repro.ad.activity import analyze_activity
from repro.ad.tls import (
    ATOMIC,
    REDUCTION,
    SERIAL,
    ReductionCatalog,
    classify_index,
    increment_kind,
    parallel_context,
)
from repro.ir import F64, I64, IRBuilder, Ptr
from repro.passes.aliasing import UNKNOWN, analyze_aliasing


def _analyze(build, dup_names=("x",)):
    b = IRBuilder()
    build(b)
    fn = next(iter(b.module.functions.values()))
    aliasing = analyze_aliasing(fn, b.module)
    dup = {a for a in fn.args if a.name in dup_names}
    act = analyze_activity(fn, b.module, aliasing, dup, set())
    return b, fn, aliasing, act


# ---------------------------------------------------------------------------
# aliasing
# ---------------------------------------------------------------------------

def test_noalias_args_disjoint():
    def build(b):
        with b.function("f", [("x", Ptr()), ("y", Ptr())],
                        arg_attrs=[{"noalias": True}, {"noalias": True}]):
            pass
    _b, fn, al, _ = _analyze(build)
    x, y = fn.args
    assert not al.may_alias(x, y)
    assert al.may_alias(x, x)


def test_plain_args_may_alias():
    def build(b):
        with b.function("f", [("x", Ptr()), ("y", Ptr())]):
            pass
    _b, fn, al, _ = _analyze(build)
    assert al.may_alias(*fn.args)


def test_allocs_never_alias_each_other_or_args():
    def build(b):
        with b.function("f", [("x", Ptr())]) as f:
            p = b.alloc(4)
            q = b.alloc(4)
            b.store(b.load(p, 0), q, 0)
    _b, fn, al, _ = _analyze(build)
    allocs = [op.result for op in fn.walk() if op.opcode == "alloc"]
    assert not al.may_alias(allocs[0], allocs[1])
    assert not al.may_alias(allocs[0], fn.args[0])


def test_arrayptr_is_opaque():
    def build(b):
        with b.function("f", [("x", Ptr())]) as f:
            raw = b.call("jl.arrayptr", f.args[0])
            b.store(1.0, raw, 0)
    _b, fn, al, _ = _analyze(build)
    raw = next(op.result for op in fn.walk() if op.opcode == "call")
    assert UNKNOWN in al.provenance(raw)


def test_readonly_detection():
    def build(b):
        with b.function("f", [("x", Ptr()), ("y", Ptr())],
                        arg_attrs=[{"noalias": True},
                                   {"noalias": True}]) as f:
            x, y = f.args
            b.store(b.load(x, 0), y, 0)
    _b, fn, al, _ = _analyze(build)
    x, y = fn.args
    assert al.is_readonly(x)
    assert not al.is_readonly(y)


def test_pointer_roundtrip_through_memory():
    def build(b):
        with b.function("f", [("x", Ptr())],
                        arg_attrs=[{"noalias": True}]) as f:
            cell = b.alloc(1, Ptr(F64))
            b.store(f.args[0], cell, 0)
            p = b.load(cell, 0)
            b.store(2.0, p, 0)
    _b, fn, al, _ = _analyze(build)
    loaded = next(op.result for op in fn.walk()
                  if op.opcode == "load" and op.result.type is Ptr(F64))
    prov = al.provenance(loaded)
    assert ("arg", fn.args[0]) in prov
    assert UNKNOWN not in prov


# ---------------------------------------------------------------------------
# activity
# ---------------------------------------------------------------------------

def test_integer_chain_inactive():
    def build(b):
        with b.function("f", [("x", Ptr()), ("n", I64)]) as f:
            x, n = f.args
            with b.parallel_for(0, n) as i:
                j = (i * 3 + 1) % n
                v = b.load(x, j)
                b.store(v * 2.0, x, j)
    _b, fn, _al, act = _analyze(build)
    for op in fn.walk():
        if op.opcode in ("imul", "iadd", "imod"):
            assert not act.value_active(op.result)
        if op.opcode == "mul":
            assert act.value_active(op.result)


def test_const_buffer_loads_inactive():
    def build(b):
        with b.function("f", [("x", Ptr()), ("w", Ptr()), ("n", I64)],
                        arg_attrs=[{"noalias": True}, {"noalias": True},
                                   {}]) as f:
            x, w, n = f.args
            with b.parallel_for(0, n) as i:
                wv = b.load(w, i)          # w is Const: inactive
                b.store(b.load(x, i) * wv, x, i)
    _b, fn, _al, act = _analyze(build, dup_names=("x",))
    loads = [op for op in fn.walk() if op.opcode == "load"]
    w_load = next(ld for ld in loads if ld.operands[0].name == "w")
    x_load = next(ld for ld in loads if ld.operands[0].name == "x")
    assert not act.value_active(w_load.result)
    assert act.value_active(x_load.result)


def test_store_propagates_activity_to_alloc():
    def build(b):
        with b.function("f", [("x", Ptr())],
                        arg_attrs=[{"noalias": True}]) as f:
            t = b.alloc(1)
            b.store(b.load(f.args[0], 0), t, 0)
            v = b.load(t, 0)
            b.store(v * v, f.args[0], 0)
    _b, fn, al, act = _analyze(build)
    t_alloc = next(op for op in fn.walk() if op.opcode == "alloc")
    assert act.origin_active(("alloc", t_alloc))


# ---------------------------------------------------------------------------
# thread-locality / access patterns
# ---------------------------------------------------------------------------

def _loop_with_index(mk_idx):
    b = IRBuilder()
    with b.function("f", [("x", Ptr()), ("idx", Ptr(I64)),
                          ("n", I64)]) as f:
        x, idx, n = f.args
        with b.parallel_for(0, n) as i:
            j = mk_idx(b, i, idx, n)
            v = b.load(x, j)
            b.store(v * 2.0, x, b.add(j, n))
    fn = b.module.functions["f"]
    load = next(op for op in fn.walk() if op.opcode == "load"
                and op.result.type is F64)
    ivar = next(op for op in fn.walk()
                if op.opcode == "parallel_for").body.args[0]
    return b, fn, load, ivar


def test_classify_affine_disjoint():
    _b, fn, load, ivar = _loop_with_index(lambda b, i, idx, n: i * 2 + 1)
    assert classify_index(load.operands[1], [ivar]) == "disjoint"


def test_classify_uniform():
    _b, fn, load, ivar = _loop_with_index(lambda b, i, idx, n: n * 0 + 3)
    # n*0+3 folds conceptually to uniform; the analysis sees n-stride 0
    assert classify_index(load.operands[1], [ivar]) == "uniform"


def test_classify_indirect_unknown():
    _b, fn, load, ivar = _loop_with_index(
        lambda b, i, idx, n: b.load(idx, i))
    assert classify_index(load.operands[1], [ivar]) == "unknown"


def test_increment_kind_dispatch():
    b, fn, load, ivar = _loop_with_index(lambda b, i, idx, n: i * 2)
    al = analyze_aliasing(fn, b.module)
    region, ivars = parallel_context(load)
    assert region is not None
    kind = increment_kind(load.operands[0], load.operands[1], ivars, al,
                          region)
    assert kind == SERIAL
    kind = increment_kind(load.operands[0], load.operands[1], ivars, al,
                          region, atomic_everywhere=True)
    assert kind == ATOMIC


def test_reduction_catalog():
    cat = ReductionCatalog()
    assert cat.supports("f64", "add")
    assert not cat.supports("f64", "logsumexp")
    cat.register("f64", "logsumexp")
    assert cat.supports("f64", "logsumexp")


def test_serial_outside_parallel():
    b = IRBuilder()
    with b.function("f", [("x", Ptr())]) as f:
        v = b.load(f.args[0], 0)
        b.store(v * v, f.args[0], 0)
    fn = b.module.functions["f"]
    load = next(op for op in fn.walk() if op.opcode == "load")
    al = analyze_aliasing(fn, b.module)
    region, ivars = parallel_context(load)
    assert region is None
    assert increment_kind(load.operands[0], load.operands[1], ivars, al,
                          region) == SERIAL
