"""Differentiation of parallel constructs (paper §IV-A, §VI)."""

import numpy as np
import pytest

from repro.ad import ADConfig, Duplicated, autodiff
from repro.interp import ExecConfig, Executor
from repro.ir import F64, I64, IRBuilder, Ptr, verify_module


def test_parallel_for_fig4_structure():
    """Differentiating a parallel loop yields aug + reverse parallel
    regions (Fig. 4): exactly two parallel_for ops in the gradient."""
    b = IRBuilder()
    with b.function("sq", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        with b.parallel_for(0, n) as i:
            v = b.load(x, i)
            b.store(v * v, x, i)
    grad = autodiff(b.module, "sq", [Duplicated, None])
    g = b.module.functions[grad]
    pfors = [op for op in g.walk() if op.opcode == "parallel_for"]
    assert len(pfors) == 2


@pytest.mark.parametrize("nthreads", [1, 2, 4, 7])
def test_gradient_thread_count_invariant(nthreads):
    b = IRBuilder()
    with b.function("k", [("x", Ptr()), ("y", Ptr()), ("n", I64)]) as f:
        x, y, n = f.args
        with b.parallel_for(0, n) as i:
            v = b.load(x, i)
            b.store(b.exp(v * 0.2) * v, y, i)
    grad = autodiff(b.module, "k", [Duplicated, Duplicated, None])
    x0 = np.linspace(0.5, 2.0, 11)
    dx = np.zeros(11)
    Executor(b.module, ExecConfig(num_threads=nthreads)).run(
        grad, x0.copy(), dx, np.zeros(11), np.ones(11), 11)
    expect = np.exp(0.2 * x0) * (1 + 0.2 * x0)
    np.testing.assert_allclose(dx, expect, rtol=1e-12)


def test_gather_reverse_scatters_atomically():
    """Reading x[idx[i]] in parallel reverses into scatter-adds; with
    duplicate indices all contributions must accumulate (§IV-A)."""
    b = IRBuilder()
    with b.function("gath", [("x", Ptr()), ("idx", Ptr(I64)), ("y", Ptr()),
                             ("n", I64)]) as f:
        x, idx, y, n = f.args
        with b.parallel_for(0, n) as i:
            j = b.load(idx, i)
            v = b.load(x, j)
            b.store(v * v, y, i)
    grad = autodiff(b.module, "gath", [Duplicated, None, Duplicated, None])
    x0 = np.array([3.0, 5.0])
    idx = np.array([0, 1, 0, 0], dtype=np.int64)
    dx = np.zeros(2)
    Executor(b.module, ExecConfig(num_threads=2)).run(
        grad, x0.copy(), dx, idx, np.zeros(4), np.ones(4), 4)
    # d/dx0 = 3 uses * 2*x0 ; d/dx1 = 1 use * 2*x1
    np.testing.assert_allclose(dx, [3 * 2 * 3.0, 1 * 2 * 5.0])


def test_gather_adjoint_uses_atomic_increment():
    b = IRBuilder()
    with b.function("gath2", [("x", Ptr()), ("idx", Ptr(I64)), ("y", Ptr()),
                              ("n", I64)]) as f:
        x, idx, y, n = f.args
        with b.parallel_for(0, n) as i:
            j = b.load(idx, i)
            b.store(b.load(x, j) * 2.0, y, i)
    grad = autodiff(b.module, "gath2", [Duplicated, None, Duplicated, None])
    g = b.module.functions[grad]
    atomics = [op for op in g.walk() if op.opcode == "atomic"]
    assert atomics, "data-dependent gather must reverse to atomic adds"


def test_affine_access_adjoint_is_serial():
    """x[i] accesses are iteration-disjoint: the reverse increments are
    plain load-add-store, not atomic (§VI-A1)."""
    b = IRBuilder()
    with b.function("aff", [("x", Ptr()), ("y", Ptr()), ("n", I64)]) as f:
        x, y, n = f.args
        with b.parallel_for(0, n) as i:
            b.store(b.load(x, i) * 2.0, y, i)
    grad = autodiff(b.module, "aff", [Duplicated, Duplicated, None])
    g = b.module.functions[grad]
    atomics = [op for op in g.walk() if op.opcode == "atomic"]
    assert not atomics


def test_strided_access_adjoint_is_serial():
    b = IRBuilder()
    with b.function("str", [("x", Ptr()), ("y", Ptr()), ("n", I64)]) as f:
        x, y, n = f.args
        with b.parallel_for(0, n) as i:
            v = b.load(x, i * 2 + 1)
            b.store(v * v, y, i)
    grad = autodiff(b.module, "str", [Duplicated, Duplicated, None])
    g = b.module.functions[grad]
    assert not [op for op in g.walk() if op.opcode == "atomic"]
    x0 = np.arange(1.0, 9.0)
    dx = np.zeros(8)
    Executor(b.module, ExecConfig(num_threads=2)).run(
        grad, x0.copy(), dx, np.zeros(4), np.ones(4), 4)
    expect = np.zeros(8)
    expect[1::2] = 2 * x0[1::2]
    np.testing.assert_allclose(dx, expect)


def test_uniform_location_uses_reduction():
    """Every iteration reads the same cell: the reverse increment uses
    the registered reduction, not an atomic (§VI-A1)."""
    b = IRBuilder()
    with b.function("uni", [("s", Ptr()), ("y", Ptr()), ("n", I64)]) as f:
        s, y, n = f.args
        with b.parallel_for(0, n) as i:
            b.store(b.load(s, 0) * b.itof(i), y, i)
    grad = autodiff(b.module, "uni", [Duplicated, Duplicated, None])
    g = b.module.functions[grad]
    reductions = [op for op in g.walk() if op.opcode == "atomic"
                  and op.attrs.get("via") == "reduction"]
    assert reductions
    s = np.array([2.0])
    ds = np.zeros(1)
    Executor(b.module, ExecConfig(num_threads=4)).run(
        grad, s, ds, np.zeros(5), np.ones(5), 5)
    assert ds[0] == pytest.approx(sum(range(5)))


def test_atomic_everywhere_ablation():
    """§VI-A1: falling back to atomics everywhere is legal (same
    values), just slower (more atomic ops)."""
    results = {}
    for atomic_everywhere in (False, True):
        b = IRBuilder()
        with b.function("k", [("x", Ptr()), ("y", Ptr()), ("n", I64)]) as f:
            x, y, n = f.args
            with b.parallel_for(0, n) as i:
                v = b.load(x, i)
                b.store(v * v * v, y, i)
        grad = autodiff(b.module, "k", [Duplicated, Duplicated, None],
                        ADConfig(atomic_everywhere=atomic_everywhere))
        x0 = np.arange(1.0, 6.0)
        dx = np.zeros(5)
        ex = Executor(b.module, ExecConfig(num_threads=2))
        ex.run(grad, x0.copy(), dx, np.zeros(5), np.ones(5), 5)
        results[atomic_everywhere] = (dx.copy(), ex.cost.atomic_ops)
    np.testing.assert_allclose(results[False][0], results[True][0])
    assert results[True][1] > results[False][1]


def test_thread_local_alloc_serial_increment():
    """Shadows of allocations inside the parallel body are thread-local:
    serial increments (§VI-A1)."""
    b = IRBuilder()
    with b.function("tl", [("x", Ptr()), ("y", Ptr()), ("n", I64)]) as f:
        x, y, n = f.args
        with b.parallel_for(0, n) as i:
            scratch = b.alloc(1)
            b.store(b.load(x, i) * 3.0, scratch, 0)
            s = b.load(scratch, 0)
            b.store(s * s, y, i)
    grad = autodiff(b.module, "tl", [Duplicated, Duplicated, None])
    x0 = np.arange(1.0, 5.0)
    dx = np.zeros(4)
    Executor(b.module, ExecConfig(num_threads=2)).run(
        grad, x0.copy(), dx, np.zeros(4), np.ones(4), 4)
    np.testing.assert_allclose(dx, 18.0 * x0)  # y=9x^2


def test_two_parallel_regions_dependency():
    """Second region consumes the first's output; reverse order flips."""
    b = IRBuilder()
    with b.function("two", [("x", Ptr()), ("t", Ptr()), ("y", Ptr()),
                            ("n", I64)]) as f:
        x, t, y, n = f.args
        with b.parallel_for(0, n) as i:
            b.store(b.load(x, i) * 2.0, t, i)
        with b.parallel_for(0, n) as i:
            v = b.load(t, i)
            b.store(v * v, y, i)
    grad = autodiff(b.module, "two", [Duplicated, Duplicated, Duplicated,
                                      None])
    x0 = np.arange(1.0, 4.0)
    dx = np.zeros(3)
    Executor(b.module, ExecConfig(num_threads=2)).run(
        grad, x0.copy(), dx, np.zeros(3), np.zeros(3), np.zeros(3),
        np.ones(3), 3)
    np.testing.assert_allclose(dx, 8.0 * x0)  # y = 4x^2


def test_spawn_wait_reversal():
    """§IV-A: the primal sync becomes an adjoint spawn and vice versa."""
    b = IRBuilder()
    with b.function("tk", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        with b.spawn() as t:
            with b.for_(0, n, simd=True) as i:
                v = b.load(x, i)
                b.store(v * v, x, i)
        b.call("task.wait", t)
    grad = autodiff(b.module, "tk", [Duplicated, None])
    g = b.module.functions[grad]
    spawns = [op for op in g.walk() if op.opcode == "spawn"]
    waits = [op for op in g.walk() if op.opcode == "call"
             and op.attrs["callee"] == "task.wait"]
    assert len(spawns) == 2 and len(waits) == 2
    x0 = np.arange(1.0, 5.0)
    dx = np.ones(4)
    Executor(b.module, ExecConfig(num_threads=2)).run(grad, x0.copy(), dx, 4)
    np.testing.assert_allclose(dx, 2 * x0)


def test_vector_if_inside_parallel_gradient():
    b = IRBuilder()
    with b.function("vif", [("x", Ptr()), ("y", Ptr()), ("n", I64)]) as f:
        x, y, n = f.args
        with b.parallel_for(0, n) as i:
            v = b.load(x, i)
            with b.if_(v > 1.0):
                b.store(v * v, y, i)
            with b.else_():
                b.store(v * 0.5, y, i)
    grad = autodiff(b.module, "vif", [Duplicated, Duplicated, None])
    x0 = np.array([0.5, 2.0, 1.5, 0.2])
    dx = np.zeros(4)
    Executor(b.module, ExecConfig(num_threads=2)).run(
        grad, x0.copy(), dx, np.zeros(4), np.ones(4), 4)
    np.testing.assert_allclose(dx, [0.5, 4.0, 3.0, 0.5])
