"""ADConfig knobs: prefixes, verify, opt levels interact correctly."""

import numpy as np
import pytest

from repro.ad import ADConfig, Duplicated, autodiff
from repro.interp import Executor
from repro.ir import F64, I64, IRBuilder, Ptr


def _simple_module():
    b = IRBuilder()
    with b.function("k", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        with b.parallel_for(0, n) as i:
            v = b.load(x, i)
            b.store(b.sin(v) * v, x, i)
    return b


def test_prefix_allows_multiple_gradients_per_module():
    b = _simple_module()
    g1 = autodiff(b.module, "k", [Duplicated, None], ADConfig())
    g2 = autodiff(b.module, "k", [Duplicated, None],
                  ADConfig(cache_all=True, prefix="diffe_all_"))
    assert g1 != g2
    assert g1 in b.module.functions and g2 in b.module.functions
    for g in (g1, g2):
        x0 = np.array([0.4, 0.9])
        dx = np.ones(2)
        Executor(b.module).run(g, x0.copy(), dx, 2)
        np.testing.assert_allclose(dx, np.sin(x0) + x0 * np.cos(x0))


def test_opt_levels_agree_numerically():
    results = {}
    for level, omp in (("none", False), ("default", False),
                       ("default", True)):
        b = _simple_module()
        g = autodiff(b.module, "k", [Duplicated, None],
                     ADConfig(opt_level=level, openmp_opt=omp))
        x0 = np.array([0.3, 0.7, 1.3])
        dx = np.ones(3)
        Executor(b.module).run(g, x0.copy(), dx, 3)
        results[(level, omp)] = dx
    base = results[("none", False)]
    for v in results.values():
        np.testing.assert_allclose(v, base, rtol=1e-12)


def test_verify_flag_off_still_works():
    b = _simple_module()
    g = autodiff(b.module, "k", [Duplicated, None],
                 ADConfig(verify=False))
    x0 = np.array([1.0])
    dx = np.ones(1)
    Executor(b.module).run(g, x0, dx, 1)


def test_gradient_of_gradient_module_unpolluted():
    """autodiff leaves the module free of its private working copies."""
    b = _simple_module()
    before = set(b.module.functions)
    autodiff(b.module, "k", [Duplicated, None])
    after = set(b.module.functions)
    assert after - before == {"diffe_k"}
    assert not any(name.startswith("__ad_work") for name in after)


def test_cache_space_knob():
    b = _simple_module()
    g = autodiff(b.module, "k", [Duplicated, None],
                 ADConfig(cache_space="gc"))
    fn = b.module.functions[g]
    caches = [op for op in fn.walk() if op.opcode == "alloc"
              and op.attrs.get("stream")]
    assert caches
    assert all(op.attrs["space"] == "gc" for op in caches)
