"""Per-opcode adjoint rules, each checked against finite differences."""

import numpy as np
import pytest

from repro.ad import Duplicated, autodiff
from repro.interp import ExecConfig, Executor
from repro.ir import F64, I64, IRBuilder, Ptr

from ..conftest import build_elementwise, fd_elementwise_check


def _check(body_fn, x0, rtol=1e-5):
    b = IRBuilder()
    build_elementwise(b, "k", body_fn)
    grad = autodiff(b.module, "k", [Duplicated, Duplicated, None])
    return fd_elementwise_check(b, "k", grad, np.asarray(x0, dtype=float),
                                rtol=rtol)


def test_add_sub():
    _check(lambda b, v: (v + 3.0) - (2.0 - v), [0.5, -1.2, 4.0])


def test_mul():
    dx = _check(lambda b, v: v * v, [1.0, 2.0, 3.0])
    np.testing.assert_allclose(dx, [2.0, 4.0, 6.0])


def test_div():
    _check(lambda b, v: 1.0 / (v + 2.0), [0.5, 1.5, -0.7])
    _check(lambda b, v: v / (v * v + 1.0), [0.5, 1.5, -0.7])


def test_neg_abs():
    _check(lambda b, v: b.abs(-v * 3.0), [0.5, -1.5, 2.0])


def test_sqrt():
    dx = _check(lambda b, v: b.sqrt(v), [4.0, 9.0, 16.0])
    np.testing.assert_allclose(dx, [0.25, 1 / 6, 0.125])


def test_cbrt():
    _check(lambda b, v: b.cbrt(v), [8.0, 27.0, 1.0], rtol=1e-4)


def test_trig():
    _check(lambda b, v: b.sin(v) * b.cos(v) + b.tan(v * 0.3),
           [0.3, 1.1, -0.8])


def test_exp_log():
    _check(lambda b, v: b.exp(v * 0.5) + b.log(v + 3.0), [0.5, 1.0, 2.0])


def test_pow_constant_exponent():
    dx = _check(lambda b, v: b.pow(v, 3.0), [1.0, 2.0])
    np.testing.assert_allclose(dx, [3.0, 12.0])


def test_pow_active_exponent():
    _check(lambda b, v: b.pow(2.0, v), [1.0, 2.5], rtol=1e-4)


def test_min_max():
    dx = _check(lambda b, v: b.min(v, 2.0) + b.max(v, 3.0),
                [1.0, 2.5, 4.0])
    # v<2: min active (1) + max inactive (0); 2<v<3: 0+0; v>3: 0+1
    np.testing.assert_allclose(dx, [1.0, 0.0, 1.0])


def test_min_tie_goes_to_first():
    b = IRBuilder()
    with b.function("t", [("x", Ptr()), ("y", Ptr()), ("n", I64)]) as f:
        x, y, n = f.args
        with b.parallel_for(0, n) as i:
            v = b.load(x, i)
            b.store(b.min(v, v), y, i)  # tie: derivative must be 1 not 2
    grad = autodiff(b.module, "t", [Duplicated, Duplicated, None])
    dx = np.zeros(2)
    Executor(b.module).run(grad, np.array([1.0, 2.0]), dx,
                           np.zeros(2), np.ones(2), 2)
    np.testing.assert_allclose(dx, [1.0, 1.0])


def test_select():
    dx = _check(
        lambda b, v: b.select(v > 1.0, v * 3.0, v * 5.0),
        [0.5, 2.0])
    np.testing.assert_allclose(dx, [5.0, 3.0])


def test_fma():
    dx = _check(lambda b, v: b.fma(v, v, v), [2.0, 3.0])
    np.testing.assert_allclose(dx, [5.0, 7.0])


def test_copysign():
    _check(lambda b, v: b.copysign(v * 2.0, -1.0), [1.5, -0.5])


def test_floor_zero_derivative():
    dx = _check(lambda b, v: b.floor(v) + v, [1.3, 2.7])
    np.testing.assert_allclose(dx, [1.0, 1.0])


def test_deep_expression_chain():
    _check(lambda b, v: b.sin(b.exp(b.sqrt(v * v + 1.0)) * 0.1) / (v + 4.0),
           [0.5, 1.5, 2.5], rtol=1e-4)


def test_shared_subexpression_fanout():
    """A value used by several consumers accumulates all contributions."""
    dx = _check(lambda b, v: (lambda w: w + w * w)(v * 2.0), [1.0, 3.0])
    # y = 2v + 4v^2, dy = 2 + 8v
    np.testing.assert_allclose(dx, [10.0, 26.0])
