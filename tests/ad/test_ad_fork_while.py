"""AD of less-common structural combinations: while-in-fork, if-in-ws,
multi-barrier phases, serial-for-in-parallel-for."""

import numpy as np
import pytest

from repro.ad import Duplicated, autodiff
from repro.frontends import OpenMP
from repro.interp import ExecConfig, Executor
from repro.ir import F64, I64, IRBuilder, Ptr, verify_module


def _grad_run(b, fn, acts, args, nt=1):
    grad = autodiff(b.module, fn, acts)
    ex = Executor(b.module, ExecConfig(num_threads=nt))
    ex.run(grad, *args)
    return grad


def test_serial_loop_inside_parallel_for():
    """Per-iteration fixed-count inner loop (the LULESH EOS pattern)."""
    b = IRBuilder()
    with b.function("k", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        with b.parallel_for(0, n) as i:
            v = b.load(x, i)
            with b.for_(0, 3) as _k:
                v2 = b.load(x, i)
                b.store(b.mul(v2, 1.1), x, i)
            del v
    grad = autodiff(b.module, "k", [Duplicated, None])
    x0 = np.arange(1.0, 5.0)
    dx = np.ones(4)
    Executor(b.module, ExecConfig(num_threads=2)).run(grad, x0.copy(),
                                                      dx, 4)
    np.testing.assert_allclose(dx, 1.1 ** 3)


def test_if_inside_workshare():
    b = IRBuilder()
    with b.function("k", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        omp = OpenMP(b)
        with omp.parallel_for(0, n, captured=[x, n]) as (i, env):
            v = b.load(env[x], i)
            with b.if_(v > 1.0):
                b.store(v * v, env[x], i)
    grad = autodiff(b.module, "k", [Duplicated, None])
    x0 = np.array([0.5, 2.0, 3.0, 0.7])
    dx = np.ones(4)
    Executor(b.module, ExecConfig(num_threads=2)).run(grad, x0.copy(),
                                                      dx, 4)
    np.testing.assert_allclose(dx, [1.0, 4.0, 6.0, 1.0])


def test_multi_phase_fork_gradient():
    """Two worksharing phases separated by a barrier; phase 2 reads
    phase 1's output — the reverse must re-synchronize correctly."""
    b = IRBuilder()
    with b.function("k", [("x", Ptr()), ("t", Ptr()), ("n", I64)]) as f:
        x, t, n = f.args
        omp = OpenMP(b)
        with omp.parallel(captured=[x, t, n]) as (tid, nth, env):
            with omp.for_(0, env[n], simd=True) as i:
                b.store(b.load(env[x], i) * 2.0, env[t], i)
            with omp.for_(0, env[n], simd=True) as i:
                v = b.load(env[t], i)
                b.store(v * v, env[x], i)
    grad = autodiff(b.module, "k", [Duplicated, Duplicated, None])
    for nt in (1, 2, 4):
        x0 = np.arange(1.0, 5.0)
        dx = np.zeros(4)
        dt_ = np.zeros(4)
        seed_x = np.ones(4)
        # x is in-place input & output: its shadow is both seed and grad
        ex = Executor(b.module, ExecConfig(num_threads=nt))
        ex.run(grad, x0.copy(), seed_x, np.zeros(4), dt_, 4)
        np.testing.assert_allclose(seed_x, 8.0 * x0)  # d(4x^2)/dx


def test_while_inside_fork_rejected_with_diagnostic():
    """Dynamic-trip loops inside parallel regions would need per-thread
    dynamic caches; the planner refuses with a clear diagnostic (a
    documented limitation — none of the paper's applications nest a
    convergence loop inside an OpenMP region either)."""
    from repro.ad import PlanError
    b = IRBuilder()
    with b.function("k", [("x", Ptr()), ("out", Ptr())]) as f:
        x, out = f.args
        omp = OpenMP(b)
        with omp.parallel(captured=[x, out]) as (tid, nth, env):
            with b.if_(b.cmp("eq", tid, 0)):
                est = b.alloc(1)
                b.store(b.load(env[x], 0), est, 0)
                with b.while_() as it:
                    e = b.load(est, 0)
                    nxt = 0.5 * (e + b.load(env[x], 0) / e)
                    b.store(nxt, est, 0)
                    b.loop_while(b.abs(nxt - e) > 1e-12)
                b.store(b.load(est, 0), env[out], 0)
    with pytest.raises(PlanError, match="parallel region"):
        autodiff(b.module, "k", [Duplicated, Duplicated])


def test_deep_nest_for_for_if():
    b = IRBuilder()
    with b.function("k", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        with b.for_(0, n) as i:
            with b.for_(0, n) as j:
                idx = i * n + j
                v = b.load(x, idx)
                with b.if_(v > 0.0):
                    b.store(b.sqrt(v), x, idx)
    grad = autodiff(b.module, "k", [Duplicated, None])
    n = 3
    x0 = np.array([4.0, -1.0, 9.0, 16.0, -4.0, 25.0, 1.0, 36.0, -9.0])
    dx = np.ones(9)
    Executor(b.module).run(grad, x0.copy(), dx, n)
    expect = np.where(x0 > 0, 0.5 / np.sqrt(np.abs(x0)), 1.0)
    np.testing.assert_allclose(dx, expect)
