"""Const/Duplicated/Active mixtures and shadow-seeding semantics."""

import numpy as np
import pytest

from repro.ad import Active, Const, Duplicated, autodiff
from repro.interp import ExecConfig, Executor
from repro.ir import F64, I64, IRBuilder, Ptr


def test_const_pointer_gets_no_shadow_arg():
    b = IRBuilder()
    with b.function("k", [("x", Ptr()), ("w", Ptr()), ("n", I64)]) as f:
        x, w, n = f.args
        with b.parallel_for(0, n) as i:
            b.store(b.load(x, i) * b.load(w, i), x, i)
    grad = autodiff(b.module, "k", [Duplicated, Const, None])
    g = b.module.functions[grad]
    assert [a.name for a in g.args] == ["x", "d_x", "w", "n"]

    x0, w0 = np.arange(1.0, 4.0), np.array([2.0, 3.0, 4.0])
    dx = np.ones(3)
    Executor(b.module).run(grad, x0.copy(), dx, w0, 3)
    np.testing.assert_allclose(dx, w0)


def test_none_is_const():
    b = IRBuilder()
    with b.function("k", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        with b.parallel_for(0, n) as i:
            b.store(b.load(x, i) * 2.0, x, i)
    g1 = autodiff(b.module, "k", [Duplicated, None])
    assert "n" == b.module.functions[g1].args[-1].name


def test_seed_scaling_linearity():
    """Scaling the output seed scales the input gradient (linearity of
    the adjoint)."""
    b = IRBuilder()
    with b.function("k", [("x", Ptr()), ("y", Ptr()), ("n", I64)]) as f:
        x, y, n = f.args
        with b.parallel_for(0, n) as i:
            v = b.load(x, i)
            b.store(b.sin(v) * v, y, i)
    grad = autodiff(b.module, "k", [Duplicated, Duplicated, None])
    x0 = np.linspace(0.3, 1.4, 5)

    def run(seed):
        dx = np.zeros(5)
        Executor(b.module).run(grad, x0.copy(), dx, np.zeros(5),
                               np.full(5, seed), 5)
        return dx

    np.testing.assert_allclose(run(3.0), 3.0 * run(1.0), rtol=1e-13)


def test_partial_seeding_selects_outputs():
    b = IRBuilder()
    with b.function("k", [("x", Ptr()), ("y", Ptr()), ("n", I64)]) as f:
        x, y, n = f.args
        with b.parallel_for(0, n) as i:
            v = b.load(x, i)
            b.store(v * v, y, i)
    grad = autodiff(b.module, "k", [Duplicated, Duplicated, None])
    x0 = np.arange(1.0, 5.0)
    dx = np.zeros(4)
    dy = np.zeros(4)
    dy[2] = 1.0              # only y[2] matters
    Executor(b.module).run(grad, x0.copy(), dx, np.zeros(4), dy, 4)
    expect = np.zeros(4)
    expect[2] = 2 * x0[2]
    np.testing.assert_allclose(dx, expect)


def test_input_shadow_accumulates_on_top():
    """Enzyme semantics: input shadows are accumulated into, not
    overwritten — pre-existing derivative content is preserved."""
    b = IRBuilder()
    with b.function("k", [("x", Ptr()), ("y", Ptr()), ("n", I64)]) as f:
        x, y, n = f.args
        with b.parallel_for(0, n) as i:
            b.store(b.load(x, i) * 3.0, y, i)
    grad = autodiff(b.module, "k", [Duplicated, Duplicated, None])
    x0 = np.ones(3)
    dx = np.array([10.0, 20.0, 30.0])      # pre-existing content
    Executor(b.module).run(grad, x0.copy(), dx, np.zeros(3), np.ones(3), 3)
    np.testing.assert_allclose(dx, [13.0, 23.0, 33.0])


def test_active_scalar_with_const_arrays():
    b = IRBuilder()
    with b.function("k", [("x", Ptr()), ("a", F64), ("n", I64)],
                    ret=F64) as f:
        x, a, n = f.args
        acc = b.alloc(1)
        with b.for_(0, n) as i:
            b.store(b.load(acc, 0) + b.load(x, i) * b.exp(a), acc, 0)
        b.ret(b.load(acc, 0))
    grad = autodiff(b.module, "k", [Const, Active, None])
    x0 = np.arange(1.0, 4.0)
    da = Executor(b.module).run(grad, x0, 0.5, 3, 1.0)
    assert da == pytest.approx(x0.sum() * np.exp(0.5))
