"""Reverse-mode AD through structured control flow."""

import numpy as np
import pytest

from repro.ad import Active, ADConfig, Duplicated, autodiff
from repro.interp import ExecConfig, Executor
from repro.ir import F64, I64, IRBuilder, Ptr, verify_module


def _grad(b, fn, acts, **cfg):
    return autodiff(b.module, fn, acts, ADConfig(**cfg))


def test_serial_loop_reversed_order():
    """x[i+1] depends on x[i]: only a correctly reversed loop gets it."""
    b = IRBuilder()
    with b.function("scan", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        with b.for_(1, n) as i:
            prev = b.load(x, i - 1)
            cur = b.load(x, i)
            b.store(cur * prev, x, i)
    grad = _grad(b, "scan", [Duplicated, None])
    n = 5
    x0 = np.array([1.1, 1.2, 1.3, 1.4, 1.5])

    def run(x):
        Executor(b.module).run("scan", x, n)
        return x[-1]

    eps = 1e-7
    fd = np.zeros(n)
    for k in range(n):
        xp, xm = x0.copy(), x0.copy()
        xp[k] += eps
        xm[k] -= eps
        fd[k] = (run(xp) - run(xm)) / (2 * eps)

    dx = np.zeros(n)
    dx[-1] = 0.0
    seed = np.zeros(n)
    seed[-1] = 1.0
    Executor(b.module).run(grad, x0.copy(), seed, n)
    np.testing.assert_allclose(seed, fd, rtol=1e-5)


def test_loop_carried_scalar_product():
    b = IRBuilder()
    with b.function("prod", [("x", Ptr()), ("n", I64)], ret=F64) as f:
        x, n = f.args
        acc = b.alloc(1)
        b.store(1.0, acc, 0)
        with b.for_(0, n) as i:
            b.store(b.load(acc, 0) * b.load(x, i), acc, 0)
        b.ret(b.load(acc, 0))
    grad = _grad(b, "prod", [Duplicated, None])
    x0 = np.array([2.0, 3.0, 4.0])
    dx = np.zeros(3)
    Executor(b.module).run(grad, x0.copy(), dx, 3, 1.0)  # seed=1
    np.testing.assert_allclose(dx, [12.0, 8.0, 6.0])


def test_if_branches():
    b = IRBuilder()
    with b.function("br", [("x", Ptr()), ("y", Ptr()), ("n", I64)]) as f:
        x, y, n = f.args
        with b.for_(0, n) as i:
            v = b.load(x, i)
            with b.if_(v > 0.0):
                b.store(v * v, y, i)
            with b.else_():
                b.store(v * -3.0, y, i)
    grad = _grad(b, "br", [Duplicated, Duplicated, None])
    x0 = np.array([2.0, -1.0, 3.0])
    dx = np.zeros(3)
    Executor(b.module).run(grad, x0.copy(), dx, np.zeros(3), np.ones(3), 3)
    np.testing.assert_allclose(dx, [4.0, -3.0, 6.0])


def test_if_condition_cached_when_operand_overwritten():
    """The branch condition depends on a value the loop overwrites; the
    reverse pass must use the *original* condition."""
    b = IRBuilder()
    with b.function("cc", [("x", Ptr()), ("y", Ptr()), ("n", I64)]) as f:
        x, y, n = f.args
        with b.for_(0, n) as i:
            v = b.load(x, i)
            cond = v > 1.0
            b.store(0.0, x, i)  # destroy the condition source
            with b.if_(cond):
                b.store(v * 2.0, y, i)
            with b.else_():
                b.store(v * 7.0, y, i)
    grad = _grad(b, "cc", [Duplicated, Duplicated, None])
    x0 = np.array([2.0, 0.5])
    dx = np.zeros(2)
    Executor(b.module).run(grad, x0.copy(), dx, np.zeros(2), np.ones(2), 2)
    np.testing.assert_allclose(dx, [2.0, 7.0])


def test_while_loop_gradient():
    """Babylonian sqrt via while: d(sqrt(a))/da = 1/(2 sqrt(a))."""
    b = IRBuilder()
    with b.function("bsqrt", [("a", Ptr()), ("out", Ptr())]) as f:
        a, out = f.args
        est = b.alloc(1)
        b.store(b.load(a, 0), est, 0)
        with b.while_() as it:
            e = b.load(est, 0)
            nxt = 0.5 * (e + b.load(a, 0) / e)
            b.store(nxt, est, 0)
            b.loop_while(b.abs(nxt - e) > 1e-12)
        b.store(b.load(est, 0), out, 0)
    grad = _grad(b, "bsqrt", [Duplicated, Duplicated])
    a = np.array([7.3])
    da = np.zeros(1)
    Executor(b.module).run(grad, a.copy(), da, np.zeros(1), np.ones(1))
    np.testing.assert_allclose(da, 0.5 / np.sqrt(7.3), rtol=1e-8)


def test_nested_loops():
    b = IRBuilder()
    with b.function("mat", [("x", Ptr()), ("out", Ptr()), ("n", I64)]) as f:
        x, out, n = f.args
        with b.for_(0, n) as i:
            with b.for_(0, n) as j:
                v = b.load(x, i * n + j)
                cur = b.load(out, i)
                b.store(cur + v * v, out, i)
    grad = _grad(b, "mat", [Duplicated, Duplicated, None])
    n = 3
    x0 = np.arange(1.0, 10.0)
    dx = np.zeros(9)
    Executor(b.module).run(grad, x0.copy(), dx, np.zeros(3), np.ones(3), n)
    np.testing.assert_allclose(dx, 2 * x0)


def test_while_containing_parallel_for():
    """Dynamic outer loop + parallel inner: hybrid caching (strategy 3
    holding strategy-2 arrays)."""
    b = IRBuilder()
    with b.function("steps", [("x", Ptr()), ("n", I64), ("t", Ptr(I64))]) as f:
        x, n, t = f.args
        with b.while_() as it:
            with b.parallel_for(0, n) as i:
                v = b.load(x, i)
                b.store(v * v * 0.5 + v * 0.5, x, i)
            b.loop_while(b.cmp("lt", it + 1, b.load(t, 0)))
    grad = _grad(b, "steps", [Duplicated, None, None])
    n, steps = 4, 3
    x0 = np.array([0.9, 1.0, 1.1, 0.5])

    def run(x):
        Executor(b.module, ExecConfig(num_threads=2)).run(
            "steps", x, n, np.array([steps], dtype=np.int64))
        return x.sum()

    eps = 1e-7
    fd = np.zeros(n)
    for k in range(n):
        xp, xm = x0.copy(), x0.copy()
        xp[k] += eps
        xm[k] -= eps
        fd[k] = (run(xp) - run(xm)) / (2 * eps)

    dx = np.ones(n)  # output shadow is x's shadow itself (in-place)
    Executor(b.module, ExecConfig(num_threads=2)).run(
        grad, x0.copy(), dx, n, np.array([steps], dtype=np.int64))
    np.testing.assert_allclose(dx, fd, rtol=1e-5)


def test_active_scalar_argument():
    b = IRBuilder()
    with b.function("scale", [("x", Ptr()), ("a", F64), ("n", I64)]) as f:
        x, a, n = f.args
        with b.parallel_for(0, n) as i:
            b.store(b.load(x, i) * a, x, i)
    from repro.ad import Active
    grad = autodiff(b.module, "scale", [Duplicated, Active, None])
    x0 = np.array([1.0, 2.0, 3.0])
    dx = np.ones(3)
    da = Executor(b.module).run(grad, x0.copy(), dx, 2.0, 3)
    assert da == pytest.approx(x0.sum())       # d(sum 2x)/da = sum x
    np.testing.assert_allclose(dx, 2.0)        # d/dx = a


def test_seed_argument_for_returned_scalar():
    b = IRBuilder()
    with b.function("dotself", [("x", Ptr()), ("n", I64)], ret=F64) as f:
        x, n = f.args
        acc = b.alloc(1)
        with b.for_(0, n) as i:
            v = b.load(x, i)
            b.store(b.load(acc, 0) + v * v, acc, 0)
        b.ret(b.load(acc, 0))
    grad = _grad(b, "dotself", [Duplicated, None])
    x0 = np.array([1.0, 2.0])
    dx = np.zeros(2)
    Executor(b.module).run(grad, x0.copy(), dx, 2, 3.0)  # seed 3
    np.testing.assert_allclose(dx, 6.0 * x0)


def test_memcpy_adjoint():
    b = IRBuilder()
    with b.function("cpy", [("x", Ptr()), ("y", Ptr()), ("n", I64)]) as f:
        x, y, n = f.args
        b.memcpy(y, x, n)
        with b.parallel_for(0, n) as i:
            v = b.load(y, i)
            b.store(v * v, y, i)
    grad = _grad(b, "cpy", [Duplicated, Duplicated, None])
    x0 = np.array([1.0, 2.0, 3.0])
    dx = np.zeros(3)
    dy = np.ones(3)
    Executor(b.module).run(grad, x0.copy(), dx, np.zeros(3), dy, 3)
    np.testing.assert_allclose(dx, 2 * x0)
    np.testing.assert_allclose(dy, 0.0)


def test_memset_zeroes_shadow():
    b = IRBuilder()
    with b.function("ms", [("x", Ptr()), ("y", Ptr()), ("n", I64)]) as f:
        x, y, n = f.args
        with b.parallel_for(0, n) as i:
            b.store(b.load(x, i) * 2.0, y, i)
        b.memset(y, 0.0, n)  # everything above is dead
    grad = _grad(b, "ms", [Duplicated, Duplicated, None])
    x0 = np.array([1.0, 2.0])
    dx = np.zeros(2)
    Executor(b.module).run(grad, x0.copy(), dx, np.zeros(2), np.ones(2), 2)
    np.testing.assert_allclose(dx, 0.0)


def test_atomic_add_primal_adjoint():
    b = IRBuilder()
    with b.function("sc", [("x", Ptr()), ("out", Ptr()), ("n", I64)]) as f:
        x, out, n = f.args
        with b.parallel_for(0, n) as i:
            v = b.load(x, i)
            b.atomic_add(v * v, out, 0)
    grad = _grad(b, "sc", [Duplicated, Duplicated, None])
    x0 = np.array([1.0, 2.0, 3.0])
    dx = np.zeros(3)
    Executor(b.module).run(grad, x0.copy(), dx, np.zeros(1), np.ones(1), 3)
    np.testing.assert_allclose(dx, 2 * x0)


def test_inactive_computation_skipped():
    """Integer/index computation generates no adjoint work."""
    b = IRBuilder()
    with b.function("idx", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        with b.parallel_for(0, n) as i:
            j = (i * 7 + 3) % n
            b.store(b.load(x, j) * 1.0, x, j)
    grad = _grad(b, "idx", [Duplicated, None])
    verify_module(b.module)


def test_duplicated_requires_pointer():
    from repro.ad import ADTransformError
    b = IRBuilder()
    with b.function("f", [("a", F64)], ret=F64) as f:
        b.ret(f.args[0])
    with pytest.raises(ADTransformError, match="non-pointer"):
        autodiff(b.module, "f", [Duplicated])


def test_gradient_regenerated_name_is_stable():
    b = IRBuilder()
    with b.function("h", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        with b.parallel_for(0, n) as i:
            b.store(b.load(x, i) * 2.0, x, i)
    g1 = autodiff(b.module, "h", [Duplicated, None])
    g2 = autodiff(b.module, "h", [Duplicated, None])
    assert g1 == g2 == "diffe_h"
