"""MPI adjoints: shadow requests, blocking p2p, collectives (Fig. 5)."""

import numpy as np
import pytest

from repro.ad import Duplicated, autodiff
from repro.interp import ExecConfig
from repro.ir import F64, I64, IRBuilder, Ptr, verify_module
from repro.parallel import SimMPI


def _ring_module(blocking: bool = False):
    b = IRBuilder()
    with b.function("ring", [("x", Ptr()), ("y", Ptr()), ("n", I64)]) as f:
        x, y, n = f.args
        rank = b.call("mpi.comm_rank")
        size = b.call("mpi.comm_size")
        nxt = (rank + 1) % size
        prv = (rank + size - 1) % size
        tmp = b.alloc(n, name="tmp")
        if blocking:
            b.call("mpi.send", x, n, nxt, 7)
            b.call("mpi.recv", tmp, n, prv, 7)
        else:
            r1 = b.call("mpi.isend", x, n, nxt, 7)
            r2 = b.call("mpi.irecv", tmp, n, prv, 7)
            b.call("mpi.wait", r1)
            b.call("mpi.wait", r2)
        with b.parallel_for(0, n) as i:
            t = b.load(tmp, i)
            b.store(t * t * t, y, i)
    return b


@pytest.mark.parametrize("blocking", [False, True])
@pytest.mark.parametrize("nprocs", [2, 4, 5])
def test_ring_gradient(blocking, nprocs):
    b = _ring_module(blocking)
    grad = autodiff(b.module, "ring", [Duplicated, Duplicated, None])
    n = 3
    xs = [np.arange(1.0, n + 1) * (r + 1) for r in range(nprocs)]
    dxs = [np.zeros(n) for _ in range(nprocs)]
    ys = [np.zeros(n) for _ in range(nprocs)]
    dys = [np.ones(n) for _ in range(nprocs)]
    SimMPI(b.module, nprocs, ExecConfig()).run(
        grad, lambda r: (xs[r], dxs[r], ys[r], dys[r], n))
    for r in range(nprocs):
        base = np.arange(1.0, n + 1) * (r + 1)
        np.testing.assert_allclose(dxs[r], 3 * base ** 2)


def test_request_array_in_loop():
    """Requests stored in arrays across an iteration loop: records must
    be cached per iteration (the LULESH communication pattern)."""
    b = IRBuilder()
    from repro.ir import Request
    with b.function("iter", [("x", Ptr()), ("n", I64), ("steps", I64)]) as f:
        x, n, steps = f.args
        rank = b.call("mpi.comm_rank")
        size = b.call("mpi.comm_size")
        nxt = (rank + 1) % size
        prv = (rank + size - 1) % size
        reqs = b.alloc(2, Request)
        tmp = b.alloc(n)
        with b.for_(0, steps) as s:
            b.store(b.call("mpi.isend", x, n, nxt, 3), reqs, 0)
            b.store(b.call("mpi.irecv", tmp, n, prv, 3), reqs, 1)
            b.call("mpi.wait", b.load(reqs, 0))
            b.call("mpi.wait", b.load(reqs, 1))
            with b.parallel_for(0, n) as i:
                b.store(b.load(tmp, i) * 0.5, x, i)
    grad = autodiff(b.module, "iter", [Duplicated, None, None])
    P, n, steps = 3, 2, 4
    xs = [np.arange(1.0, n + 1) + r for r in range(P)]
    x0 = [a.copy() for a in xs]
    dxs = [np.ones(n) for _ in range(P)]

    # FD check of the projection sum(all x) w.r.t. all inputs.
    def run_all(vals):
        arrs = [v.copy() for v in vals]
        SimMPI(b.module, P, ExecConfig()).run(
            "iter", lambda r: (arrs[r], n, steps))
        return sum(a.sum() for a in arrs)

    eps = 1e-7
    plus = [a + eps for a in x0]
    minus = [a - eps for a in x0]
    fd = (run_all(plus) - run_all(minus)) / (2 * eps)

    SimMPI(b.module, P, ExecConfig()).run(
        grad, lambda r: (xs[r], dxs[r], n, steps))
    rev = sum(d.sum() for d in dxs)
    assert rev == pytest.approx(fd, rel=1e-6)


def test_allreduce_sum_gradient():
    b = IRBuilder()
    with b.function("ars", [("x", Ptr()), ("y", Ptr()), ("n", I64)]) as f:
        x, y, n = f.args
        tot = b.alloc(n)
        b.call("mpi.allreduce", x, tot, n, op="sum")
        with b.parallel_for(0, n) as i:
            t = b.load(tot, i)
            b.store(t * t, y, i)
    grad = autodiff(b.module, "ars", [Duplicated, Duplicated, None])
    P, n = 3, 2
    xs = [np.array([1.0 + r, 2.0 + r]) for r in range(P)]
    total = sum(x.copy() for x in xs)
    dxs = [np.zeros(n) for _ in range(P)]
    ys = [np.zeros(n) for _ in range(P)]
    dys = [np.ones(n) for _ in range(P)]
    SimMPI(b.module, P, ExecConfig()).run(
        grad, lambda r: (xs[r], dxs[r], ys[r], dys[r], n))
    # y_q = T^2 on every rank q, T = sum_r x_r:
    # d(sum_q sum_i y_q[i])/dx_r[i] = P * 2*T[i]
    for r in range(P):
        np.testing.assert_allclose(dxs[r], P * 2 * total)


def test_allreduce_min_gradient_routes_to_winner():
    b = IRBuilder()
    with b.function("arm", [("x", Ptr()), ("y", Ptr())]) as f:
        x, y = f.args
        m = b.alloc(1)
        b.call("mpi.allreduce", x, m, 1, op="min")
        v = b.load(m, 0)
        b.store(v * 10.0, y, 0)
    grad = autodiff(b.module, "arm", [Duplicated, Duplicated])
    P = 4
    xs = [np.array([float(3 + (r % 3))]) for r in range(P)]  # min at r=0? 3,4,5,3
    dxs = [np.zeros(1) for _ in range(P)]
    ys = [np.zeros(1) for _ in range(P)]
    dys = [np.ones(1) for _ in range(P)]
    SimMPI(b.module, P, ExecConfig()).run(
        grad, lambda r: (xs[r], dxs[r], ys[r], dys[r]))
    # min value 3.0 achieved by ranks 0 and 3; winner is the lowest rank.
    total = sum(d[0] for d in dxs)
    assert dxs[0][0] == pytest.approx(P * 10.0)
    assert dxs[3][0] == 0.0
    assert total == pytest.approx(P * 10.0)


def test_bcast_gradient():
    b = IRBuilder()
    with b.function("bc", [("x", Ptr()), ("y", Ptr()), ("n", I64)]) as f:
        x, y, n = f.args
        b.call("mpi.bcast", x, n, 0)
        with b.parallel_for(0, n) as i:
            v = b.load(x, i)
            b.store(v * 2.0, y, i)
    grad = autodiff(b.module, "bc", [Duplicated, Duplicated, None])
    P, n = 3, 2
    xs = [np.array([5.0, 7.0]) if r == 0 else np.zeros(2) for r in range(P)]
    dxs = [np.zeros(n) for _ in range(P)]
    ys = [np.zeros(n) for _ in range(P)]
    dys = [np.ones(n) for _ in range(P)]
    SimMPI(b.module, P, ExecConfig()).run(
        grad, lambda r: (xs[r], dxs[r], ys[r], dys[r], n))
    # every rank's y = 2*x_root: d/dx_root = 2 per rank = 2P
    np.testing.assert_allclose(dxs[0], 2.0 * P)
    for r in range(1, P):
        np.testing.assert_allclose(dxs[r], 0.0)


def test_reduce_sum_gradient():
    b = IRBuilder()
    with b.function("rd", [("x", Ptr()), ("y", Ptr()), ("n", I64)]) as f:
        x, y, n = f.args
        tot = b.alloc(n)
        b.call("mpi.reduce", x, tot, n, 0, op="sum")
        rank = b.call("mpi.comm_rank")
        with b.if_(b.cmp("eq", rank, 0)):
            with b.parallel_for(0, n) as i:
                b.store(b.load(tot, i) * 3.0, y, i)
    grad = autodiff(b.module, "rd", [Duplicated, Duplicated, None])
    P, n = 3, 2
    xs = [np.array([1.0 + r, 2.0]) for r in range(P)]
    dxs = [np.zeros(n) for _ in range(P)]
    ys = [np.zeros(n) for _ in range(P)]
    dys = [np.ones(n) for _ in range(P)]
    SimMPI(b.module, P, ExecConfig()).run(
        grad, lambda r: (xs[r], dxs[r], ys[r], dys[r], n))
    for r in range(P):
        np.testing.assert_allclose(dxs[r], 3.0)


def test_barrier_reverses_to_barrier():
    b = IRBuilder()
    with b.function("bar", [("x", Ptr())]) as f:
        b.call("mpi.barrier")
        b.store(b.load(f.args[0], 0) * 2.0, f.args[0], 0)
        b.call("mpi.barrier")
    grad = autodiff(b.module, "bar", [Duplicated])
    g = b.module.functions[grad]
    barriers = [op for op in g.walk() if op.opcode == "call"
                and op.attrs["callee"] == "mpi.barrier"]
    assert len(barriers) == 4
    xs = [np.array([3.0]) for _ in range(2)]
    dxs = [np.ones(1) for _ in range(2)]
    SimMPI(b.module, 2, ExecConfig()).run(grad, lambda r: (xs[r], dxs[r]))
    np.testing.assert_allclose(dxs[0], 2.0)


def test_exchange_preserves_scaling_structure():
    """Gradient of an exchange-heavy step communicates twice the
    messages (primal + adjoint), as §IV-B predicts."""
    b = _ring_module(blocking=False)
    grad = autodiff(b.module, "ring", [Duplicated, Duplicated, None])
    n, P = 4, 4

    def count_msgs(fn, nargs):
        engine = SimMPI(b.module, P, ExecConfig())
        args = [(np.ones(n), np.zeros(n), n) if nargs == 3 else
                (np.ones(n), np.zeros(n), np.zeros(n), np.ones(n), n)
                for _ in range(P)]
        engine.run(fn, lambda r: args[r])
        return engine

    # primal: P isends; gradient: 2P (primal + adjoint)
    e1 = count_msgs("ring", 3)
    e2 = count_msgs(grad, 5)
    assert e2.ranks[0].interp.clock > e1.ranks[0].interp.clock
