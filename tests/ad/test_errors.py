"""Error paths and unsupported-construct diagnostics of the AD engine."""

import numpy as np
import pytest

from repro.ad import ADTransformError, Duplicated, PlanError, autodiff
from repro.ad.transform import Active
from repro.ir import F64, I64, IRBuilder, Ptr, Task, verify_module


def test_wrong_activity_count():
    b = IRBuilder()
    with b.function("f", [("x", Ptr()), ("n", I64)]) as f:
        pass
    with pytest.raises(ADTransformError, match="activities"):
        autodiff(b.module, "f", [Duplicated])


def test_active_on_nonscalar():
    b = IRBuilder()
    with b.function("f", [("x", Ptr())]) as f:
        pass
    with pytest.raises(ADTransformError, match="f64 scalar"):
        autodiff(b.module, "f", [Active])


def test_two_active_scalars_rejected():
    b = IRBuilder()
    with b.function("f", [("a", F64), ("c", F64)], ret=F64) as f:
        b.ret(f.args[0] * f.args[1])
    with pytest.raises(ADTransformError, match="at most one"):
        autodiff(b.module, "f", [Active, Active])


def test_atomic_min_reverse_unsupported():
    b = IRBuilder()
    with b.function("f", [("x", Ptr()), ("m", Ptr()), ("n", I64)]) as f:
        x, m, n = f.args
        with b.parallel_for(0, n) as i:
            b.atomic_min(b.load(x, i), m, 0)
    with pytest.raises(ADTransformError, match="atomic min/max"):
        autodiff(b.module, "f", [Duplicated, Duplicated, None])


def test_active_memset_value_unsupported():
    b = IRBuilder()
    with b.function("f", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        v = b.load(x, 0)
        b.memset(x, v, n)
    with pytest.raises(ADTransformError, match="memset"):
        autodiff(b.module, "f", [Duplicated, None])


def test_uncorrelated_spawn_wait_rejected():
    """Two spawn sites stored to the same slot cannot be statically
    associated with their waits."""
    b = IRBuilder()
    with b.function("f", [("x", Ptr()), ("c", I64)]) as f:
        x, c = f.args
        cell = b.alloc(1, Task)
        with b.if_(b.cmp("eq", c, 0)):
            with b.spawn() as t1:
                b.store(1.0, x, 0)
            b.store(t1, cell, 0)
        with b.else_():
            with b.spawn() as t2:
                b.store(2.0, x, 0)
            b.store(t2, cell, 0)
        b.call("task.wait", b.load(cell, 0))
    with pytest.raises(ADTransformError, match="spawn"):
        autodiff(b.module, "f", [Duplicated, None])


def test_gradient_of_unknown_function():
    b = IRBuilder()
    with pytest.raises(KeyError):
        autodiff(b.module, "nope", [])


def test_grad_fn_verifies():
    """Every generated gradient must pass the IR verifier (on by
    default) — spot-check a nontrivial program."""
    b = IRBuilder()
    with b.function("g", [("x", Ptr()), ("n", I64)], ret=F64) as f:
        x, n = f.args
        acc = b.alloc(1)
        with b.for_(0, n) as i:
            v = b.load(x, i)
            with b.if_(v > 0.0):
                b.store(b.load(acc, 0) + b.sqrt(v), acc, 0)
        b.ret(b.load(acc, 0))
    grad = autodiff(b.module, "g", [Duplicated, None])
    verify_module(b.module)
    from repro.interp import Executor
    x0 = np.array([4.0, -1.0, 9.0])
    dx = np.zeros(3)
    Executor(b.module).run(grad, x0.copy(), dx, 3, 1.0)
    np.testing.assert_allclose(dx, [0.25, 0.0, 1.0 / 6.0])


def test_noinline_kernel_differentiated_through():
    """The miniBUDE.jl pattern: the core kernel is noinline'd (§VII-A-c)
    — AD force-inlines it internally."""
    b = IRBuilder()
    with b.function("kern", [("x", Ptr()), ("i", I64)], ret=F64) as f:
        x, i = f.args
        v = b.load(x, i)
        b.ret(v * v * v)
    b.module.functions["kern"].attrs["noinline"] = True
    with b.function("main", [("x", Ptr()), ("y", Ptr()), ("n", I64)]) as f:
        x, y, n = f.args
        with b.for_(0, n) as i:
            b.store(b.call("kern", x, i), y, i)
    grad = autodiff(b.module, "main", [Duplicated, Duplicated, None])
    # the original callee is untouched
    assert "kern" in b.module.functions
    from repro.interp import Executor
    x0 = np.array([1.0, 2.0])
    dx = np.zeros(2)
    Executor(b.module).run(grad, x0.copy(), dx, np.zeros(2), np.ones(2), 2)
    np.testing.assert_allclose(dx, 3 * x0 ** 2)
