"""AD of Julia constructs: GC preservation (§VI-C2), arrayptr
indirection, MPI.jl wrappers under GC stress."""

import numpy as np
import pytest

from repro.ad import ADTransformError, Duplicated, autodiff
from repro.frontends import Julia
from repro.interp import ExecConfig, Executor, InterpreterError
from repro.ir import F64, I64, IRBuilder, Ptr, verify_module
from repro.parallel import SimMPI


def test_gradient_through_arrayptr():
    b = IRBuilder()
    with b.function("k", [("x", Ptr()), ("y", Ptr()), ("n", I64)]) as f:
        x, y, n = f.args
        with b.for_(0, n, simd=True) as i:
            raw_x = b.call("jl.arrayptr", x)
            raw_y = b.call("jl.arrayptr", y)
            v = b.load(raw_x, i)
            b.store(v * v, raw_y, i)
    grad = autodiff(b.module, "k", [Duplicated, Duplicated, None])
    x0 = np.arange(1.0, 5.0)
    dx = np.zeros(4)
    Executor(b.module).run(grad, x0.copy(), dx, np.zeros(4), np.ones(4), 4)
    np.testing.assert_allclose(dx, 2 * x0)


def test_arrayptr_forces_caching():
    """The extra indirection defeats alias analysis: data loads get
    cached (the Julia-overhead mechanism, §VIII)."""
    def build(with_arrayptr):
        b = IRBuilder()
        with b.function("k", [("x", Ptr()), ("y", Ptr()), ("n", I64)],
                        arg_attrs=[{"noalias": True}, {"noalias": True},
                                   {}]) as f:
            x, y, n = f.args
            with b.for_(0, n, simd=True) as i:
                src = b.call("jl.arrayptr", x) if with_arrayptr else x
                dst = b.call("jl.arrayptr", y) if with_arrayptr else y
                v = b.load(src, i)
                b.store(v * v, dst, i)
        grad = autodiff(b.module, "k", [Duplicated, Duplicated, None])
        g = b.module.functions[grad]
        return sum(1 for op in g.walk() if op.opcode == "alloc"
                   and op.attrs.get("stream"))

    assert build(True) > build(False)


def test_gc_preserve_extended_to_shadow():
    """Enzyme adds the shadow buffers to gc_preserve (§VI-C2): under GC
    stress the gradient survives; without the mechanism the shadow
    would be collected mid-communication."""
    b = IRBuilder()
    with b.function("jlring", [("x", Ptr()), ("y", Ptr()),
                               ("n", I64)]) as f:
        x, y, n = f.args
        jl = Julia(b)
        rank = jl.comm_rank()
        size = jl.comm_size()
        tmp = jl.zeros(n)
        with jl.gc_preserve(tmp):
            r1 = b.call("mpi.isend", x, n, (rank + 1) % size, 3)
            r2 = jl.mpi_irecv(tmp, n, (rank + size - 1) % size, 3)
            b.call("mpi.wait", r1)
            b.call("mpi.wait", r2)
            with b.for_(0, n, simd=True) as i:
                t = b.load(tmp.data(), i)
                b.store(t * t, y, i)
    grad = autodiff(b.module, "jlring", [Duplicated, Duplicated, None])

    # The generated forward preserve must cover more buffers (shadows).
    g = b.module.functions[grad]
    begins = [op for op in g.walk() if op.opcode == "call"
              and op.attrs["callee"] == "jl.gc_preserve_begin"]
    assert begins
    assert any(len(op.operands) >= 2 for op in begins)

    P, n = 3, 2
    xs = [np.arange(1.0, n + 1) + r for r in range(P)]
    dxs = [np.zeros(n) for _ in range(P)]
    ys = [np.zeros(n) for _ in range(P)]
    dys = [np.ones(n) for _ in range(P)]
    SimMPI(b.module, P, ExecConfig(gc_stress=True)).run(
        grad, lambda r: (xs[r], dxs[r], ys[r], dys[r], n))
    for r in range(P):
        prev = np.arange(1.0, n + 1) + (r - 1) % P
        np.testing.assert_allclose(dxs[r], 2 * (np.arange(1.0, n + 1) + r))


def test_reverse_pass_has_mirrored_preserve():
    b = IRBuilder()
    with b.function("k", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        jl = Julia(b)
        arr = jl.zeros(n)
        with jl.gc_preserve(arr):
            with b.for_(0, n, simd=True) as i:
                b.store(b.load(x, i) * 2.0, arr.data(), i)
            with b.for_(0, n, simd=True) as i:
                b.store(b.load(arr.data(), i), x, i)
    grad = autodiff(b.module, "k", [Duplicated, None])
    g = b.module.functions[grad]
    begins = [op for op in g.walk() if op.opcode == "call"
              and op.attrs["callee"] == "jl.gc_preserve_begin"]
    ends = [op for op in g.walk() if op.opcode == "call"
            and op.attrs["callee"] == "jl.gc_preserve_end"]
    # one forward pair + one reverse pair
    assert len(begins) == 2 and len(ends) == 2
    # and the gradient is right
    x0 = np.arange(1.0, 4.0)
    dx = np.ones(3)
    Executor(b.module).run(grad, x0.copy(), dx, 3)
    np.testing.assert_allclose(dx, 2.0)


def test_julia_task_gradient_under_scheduler_sizes():
    from repro.apps.minibude import MinibudeApp, make_deck
    deck = make_deck(nprotein=8, nligand=4, nposes=12)
    ref = None
    for ntasks in (2, 3, 6):
        app = MinibudeApp("julia", deck, ntasks=ntasks)
        shadows, _ = app.run_gradient(num_threads=3)
        if ref is None:
            ref = shadows["poses"]
        else:
            np.testing.assert_allclose(shadows["poses"], ref, rtol=1e-12)
