"""Cache-vs-recompute planning (min-cut, §IV-C) unit tests."""

import numpy as np
import pytest

from repro.ad import ADConfig, Duplicated, autodiff
from repro.ad.activity import analyze_activity
from repro.ad.cacheplan import CachePlanner, dims_for_op, nest_of
from repro.interp import ExecConfig, Executor
from repro.ir import F64, I64, IRBuilder, Ptr
from repro.passes.aliasing import analyze_aliasing


def _plan_for(build, activities_dup=("x",)):
    b = IRBuilder()
    fn = build(b)
    f = b.module.functions[fn]
    aliasing = analyze_aliasing(f, b.module)
    dup = {a for a in f.args if a.name in activities_dup}
    activity = analyze_activity(f, b.module, aliasing, dup, set())
    planner = CachePlanner(f, b.module, aliasing, activity)
    return planner.build(), f, b


def test_overwritten_load_is_cached():
    def build(b):
        with b.function("k", [("x", Ptr()), ("n", I64)]) as f:
            x, n = f.args
            with b.parallel_for(0, n) as i:
                v = b.load(x, i)
                b.store(v * v, x, i)  # overwrites x
        return "k"

    plan, f, _ = _plan_for(build)
    loads = [op for op in f.walk() if op.opcode == "load"]
    assert any(plan.resolution.get(ld.result) == "cache" for ld in loads)


def test_readonly_load_is_recomputed():
    def build(b):
        with b.function("k", [("x", Ptr()), ("y", Ptr()), ("n", I64)],
                        arg_attrs=[{"noalias": True}, {"noalias": True},
                                   {}]) as f:
            x, y, n = f.args
            with b.parallel_for(0, n) as i:
                v = b.load(x, i)     # x never written: recomputable
                b.store(v * v, y, i)
        return "k"

    plan, f, _ = _plan_for(build, activities_dup=("x", "y"))
    loads = [op for op in f.walk() if op.opcode == "load"
             and op.operands[0].name == "x"]
    for ld in loads:
        assert plan.resolution.get(ld.result) == "recompute"
    assert plan.stats["cached"] == 0


def test_mincut_prefers_cheap_cut():
    """Chain a -> b -> c where only `a` is unrecomputable: min-cut may
    cache any single value; cache-all caches every needed one."""
    def build(b):
        with b.function("k", [("x", Ptr()), ("n", I64)]) as f:
            x, n = f.args
            with b.parallel_for(0, n) as i:
                a = b.load(x, i)           # overwritten below: must-cache
                c = b.exp(a)
                d = b.sin(c)
                b.store(d * c * a, x, i)
        return "k"

    plan, f, _ = _plan_for(build)
    assert plan.stats["cached"] >= 1
    # With the min cut, caching `a` alone suffices (exp/sin recompute).
    assert plan.stats["cached"] <= 2


def test_cache_all_ablation_caches_more():
    def build_module():
        b = IRBuilder()
        with b.function("k", [("x", Ptr()), ("n", I64)]) as f:
            x, n = f.args
            with b.parallel_for(0, n) as i:
                a = b.load(x, i)
                b.store(b.sin(b.exp(a)) * a, x, i)
        return b

    counts = {}
    for cache_all in (False, True):
        b = build_module()
        grad = autodiff(b.module, "k", [Duplicated, None],
                        ADConfig(cache_all=cache_all))
        g = b.module.functions[grad]
        counts[cache_all] = sum(1 for op in g.walk()
                                if op.opcode == "alloc"
                                and (op.result.name or "").startswith(
                                    "cache"))
        # both produce correct gradients
        x0 = np.array([0.3, 0.7, 1.1])
        dx = np.ones(3)
        Executor(b.module).run(grad, x0.copy(), dx, 3)
        expect = np.cos(np.exp(x0)) * np.exp(x0) * x0 + np.sin(np.exp(x0))
        np.testing.assert_allclose(dx, expect, rtol=1e-12)
    assert counts[True] > counts[False]


def test_depth0_values_are_free():
    def build(b):
        with b.function("k", [("x", Ptr()), ("s", F64), ("n", I64)]) as f:
            x, s, n = f.args
            scale = b.exp(s)  # depth 0: free in the reverse pass
            with b.parallel_for(0, n) as i:
                b.store(b.load(x, i) * scale, x, i)
        return "k"

    plan, f, _ = _plan_for(build)
    exps = [op for op in f.walk() if op.opcode == "exp"]
    assert exps
    assert exps[0].result not in plan.resolution or \
        plan.resolution[exps[0].result] == "free"


def test_nest_and_dims():
    b = IRBuilder()
    with b.function("k", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        with b.for_(0, n) as i:
            with b.parallel_for(0, n) as j:
                v = b.load(x, j)
                b.store(v * 2.0, x, j)
    f = b.module.functions["k"]
    loads = [op for op in f.walk() if op.opcode == "load"]
    nest = nest_of(loads[0])
    assert [o.opcode for o in nest] == ["for", "parallel_for"]
    assert dims_for_op(loads[0]) == nest


def test_workshare_drops_fork_dim():
    b = IRBuilder()
    with b.function("k", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        with b.fork(4) as (tid, nth):
            with b.workshare(0, n) as i:
                v = b.load(x, i)
                b.store(v * v, x, i)
    f = b.module.functions["k"]
    loads = [op for op in f.walk() if op.opcode == "load"]
    dims = dims_for_op(loads[0])
    assert [d.opcode for d in dims] == ["for"]  # fork dropped (§VI-B)


def test_while_values_use_dynamic_cache():
    b = IRBuilder()
    with b.function("k", [("x", Ptr())]) as f:
        x = f.args[0]
        with b.while_() as it:
            v = b.load(x, 0)
            b.store(v * v, x, 0)
            b.loop_while(v > 1.5)
    f = b.module.functions["k"]
    aliasing = analyze_aliasing(f, b.module)
    activity = analyze_activity(f, b.module, aliasing, set(f.args), set())
    plan = CachePlanner(f, b.module, aliasing, activity).build()
    dyn_slots = [s for s in plan.slots.values() if s.dyn_anchor is not None]
    assert dyn_slots, "while-body values must use strategy-3 caches"


def test_gradient_correct_under_both_plans():
    for cache_all in (False, True):
        b = IRBuilder()
        with b.function("k", [("x", Ptr()), ("n", I64)]) as f:
            x, n = f.args
            with b.for_(0, n) as i:
                v = b.load(x, i)
                w = b.sqrt(v + 1.0)
                b.store(w * v, x, i)
        grad = autodiff(b.module, "k", [Duplicated, None],
                        ADConfig(cache_all=cache_all))
        x0 = np.array([1.0, 2.0, 3.0])
        dx = np.ones(3)
        Executor(b.module).run(grad, x0.copy(), dx, 3)
        expect = np.sqrt(x0 + 1) + x0 / (2 * np.sqrt(x0 + 1))
        np.testing.assert_allclose(dx, expect, rtol=1e-12)
