"""Paper Figs. 6-7: firstprivate and manual-reduction differentiation.

Both cases work with *zero* construct-specific AD support — they are
lowered to plain memory and parallel primitives first (§VI-A2/A3), the
paper's central architectural claim.
"""

import numpy as np
import pytest

from repro.ad import Active, Duplicated, autodiff
from repro.frontends import OpenMP
from repro.interp import ExecConfig, Executor
from repro.ir import F64, I64, IRBuilder, Ptr, verify_module


def _build_fig6():
    b = IRBuilder()
    with b.function("fp", [("out", Ptr()), ("inv", F64), ("n", I64)]) as f:
        out, inv, n = f.args
        omp = OpenMP(b)
        with omp.parallel(captured=[out, inv, n]) as (tid, nth, env):
            cell = omp.firstprivate(env[inv])       # in_local = in
            with omp.for_(0, env[n]) as i:
                b.store(b.load(cell, 0), env[out], i)
                b.store(0.0, cell, 0)               # in_local = 0
    verify_module(b.module)
    return b


def test_fig6_firstprivate_primal():
    b = _build_fig6()
    for nt in (1, 2, 4):
        out = np.full(8, -1.0)
        Executor(b.module, ExecConfig(num_threads=nt)).run(
            "fp", out, 3.5, 8)
        # first iteration of each thread's chunk gets `in`, rest 0
        chunks = np.array_split(np.arange(8), nt)
        expect = np.zeros(8)
        for c in chunks:
            if len(c):
                expect[c[0]] = 3.5
        np.testing.assert_allclose(out, expect)


@pytest.mark.parametrize("nt", [1, 2, 4, 8])
def test_fig6_firstprivate_gradient(nt):
    """The correct adjoint of `in` is the number of threads — "the sum
    of the derivatives of all the indices that were set to in"."""
    b = _build_fig6()
    grad = autodiff(b.module, "fp", [Duplicated, Active, None])
    out = np.zeros(8)
    dout = np.ones(8)
    dinv = Executor(b.module, ExecConfig(num_threads=nt)).run(
        grad, out, dout, 3.5, 8)
    assert dinv == float(min(nt, 8))


def _build_fig7():
    b = IRBuilder()
    with b.function("minred", [("data", Ptr()), ("out", Ptr()),
                               ("n", I64)]) as f:
        data, out, n = f.args
        omp = OpenMP(b)
        nt = b.call("rt.num_threads")
        partials = b.alloc(nt, name="min_per_thread")
        with omp.parallel(captured=[data, out, n, partials]) as \
                (tid, nth, env):
            local = b.alloc(1, name="min_local")
            b.store(1e30, local, 0)
            with omp.for_(0, env[n]) as i:
                v = b.load(env[data], i)
                b.store(b.min(b.load(local, 0), v), local, 0)
            b.store(b.load(local, 0), env[partials], tid)
            b.barrier()
            with b.if_(b.cmp("eq", tid, 0)):
                fin = b.alloc(1, name="final_val")
                b.store(b.load(env[partials], 0), fin, 0)
                with b.for_(1, nth) as t:
                    b.store(b.min(b.load(fin, 0),
                                  b.load(env[partials], t)), fin, 0)
                b.store(b.load(fin, 0), env[out], 0)
    verify_module(b.module)
    return b


@pytest.mark.parametrize("nt", [1, 2, 4, 8])
def test_fig7_manual_min_reduction(nt):
    b = _build_fig7()
    grad = autodiff(b.module, "minred", [Duplicated, Duplicated, None])
    data = np.array([5.0, 2.0, 9.0, 1.5, 7.0, 3.0, 8.0, 4.0])
    # primal
    out = np.zeros(1)
    Executor(b.module, ExecConfig(num_threads=nt)).run(
        "minred", data.copy(), out, 8)
    assert out[0] == 1.5
    # adjoint: derivative lands exactly on the argmin element
    dd, out, dout = np.zeros(8), np.zeros(1), np.ones(1)
    Executor(b.module, ExecConfig(num_threads=nt)).run(
        grad, data.copy(), dd, out, dout, 8)
    expect = np.zeros(8)
    expect[3] = 1.0
    np.testing.assert_allclose(dd, expect)


def test_fig7_tie_breaks_to_first():
    b = _build_fig7()
    grad = autodiff(b.module, "minred", [Duplicated, Duplicated, None])
    data = np.array([2.0, 1.0, 3.0, 1.0])   # tie between idx 1 and 3
    dd, out, dout = np.zeros(4), np.zeros(1), np.ones(1)
    Executor(b.module, ExecConfig(num_threads=1)).run(
        grad, data.copy(), dd, out, dout, 4)
    assert dd.sum() == 1.0                   # no double-counting
    assert dd[1] == 1.0
