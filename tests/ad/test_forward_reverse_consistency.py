"""Forward-over-everything consistency: JVP·u == u·VJP on the apps."""

import numpy as np
import pytest

from repro.ad import Duplicated, autodiff
from repro.ad.forward import autodiff_forward
from repro.apps.minibude import MinibudeApp, make_deck
from repro.apps.minibude.kernels import ARG_NAMES
from repro.interp import ExecConfig, Executor


def test_minibude_jvp_vjp_consistency():
    deck = make_deck(nprotein=8, nligand=4, nposes=6)
    app = MinibudeApp("serial", deck)
    rev = app.grad_fn()
    fwd = autodiff_forward(app.module, app.fn,
                           [Duplicated] * len(ARG_NAMES))

    rng = np.random.default_rng(3)
    u = rng.normal(size=deck.nposes * 6)

    # forward: tangent of energies along direction u in poses
    flat = deck.flat_args()
    shadows = {n: np.zeros_like(flat[n]) for n in ARG_NAMES}
    shadows["poses"][...] = u
    args = []
    for n in ARG_NAMES:
        args += [flat[n], shadows[n]]
    Executor(app.module).run(fwd, *args)
    jvp = shadows["energies"].sum()

    # reverse: u . d(sum energies)/d(poses)
    shadows_r, _ = app.run_gradient()
    vjp = float(shadows_r["poses"] @ u)
    assert jvp == pytest.approx(vjp, rel=1e-10)


def test_lulesh_kernel_jvp_vjp_consistency():
    """One LULESH-style kernel (face forces) under both modes."""
    from repro.ir import F64, I64, IRBuilder, Ptr
    b = IRBuilder()
    with b.function("vol", [("x", Ptr()), ("y", Ptr()), ("z", Ptr()),
                            ("nl", Ptr(I64)), ("out", Ptr()),
                            ("ne", I64)]) as f:
        x, y, z, nl, out, ne = f.args
        with b.parallel_for(0, ne) as e:
            base = b.mul(e, 8)
            nodes = [b.load(nl, b.add(base, k)) for k in range(8)]
            cx = [b.load(x, nd) for nd in nodes]
            cy = [b.load(y, nd) for nd in nodes]
            cz = [b.load(z, nd) for nd in nodes]
            from repro.apps.lulesh.kernels import (
                _emit_face_geometry,
                _emit_volume,
            )
            faces = _emit_face_geometry(b, cx, cy, cz)
            b.store(_emit_volume(b, faces), out, e)

    acts = [Duplicated, Duplicated, Duplicated, None, Duplicated, None]
    rev = autodiff(b.module, "vol", acts)
    fwd = autodiff_forward(b.module, "vol", acts)

    from repro.apps.lulesh import build_domain
    dom = build_domain(2)
    rng = np.random.default_rng(7)
    xs = dom["x"] + rng.normal(scale=0.01, size=dom.nnode)
    ys = dom["y"] + rng.normal(scale=0.01, size=dom.nnode)
    zs = dom["z"] + rng.normal(scale=0.01, size=dom.nnode)
    u = [rng.normal(size=dom.nnode) for _ in range(3)]

    # forward
    dxs, dys, dzs = (u[0].copy(), u[1].copy(), u[2].copy())
    out, dout = np.zeros(dom.nelem), np.zeros(dom.nelem)
    Executor(b.module).run(fwd, xs.copy(), dxs, ys.copy(), dys,
                           zs.copy(), dzs, dom["nodelist"], out, dout,
                           dom.nelem)
    jvp = dout.sum()

    # reverse
    gx, gy, gz = np.zeros(dom.nnode), np.zeros(dom.nnode), np.zeros(
        dom.nnode)
    out2, seed = np.zeros(dom.nelem), np.ones(dom.nelem)
    Executor(b.module).run(rev, xs.copy(), gx, ys.copy(), gy, zs.copy(),
                           gz, dom["nodelist"], out2, seed, dom.nelem)
    vjp = float(gx @ u[0] + gy @ u[1] + gz @ u[2])
    assert jvp == pytest.approx(vjp, rel=1e-10)


def test_volume_gradient_is_surface_normal():
    """Physics sanity: dV/dx of the divergence-theorem volume is the
    nodal area vector; for a unit cube, corner gradients are +-0.25
    per axis and sum to zero (translation invariance)."""
    from repro.ir import F64, I64, IRBuilder, Ptr
    b = IRBuilder()
    with b.function("v1", [("x", Ptr()), ("y", Ptr()), ("z", Ptr()),
                           ("out", Ptr())]) as f:
        x, y, z, out = f.args
        cx = [b.load(x, k) for k in range(8)]
        cy = [b.load(y, k) for k in range(8)]
        cz = [b.load(z, k) for k in range(8)]
        from repro.apps.lulesh.kernels import (
            _emit_face_geometry,
            _emit_volume,
        )
        b.store(_emit_volume(b, _emit_face_geometry(b, cx, cy, cz)),
                out, 0)
    acts = [Duplicated, Duplicated, Duplicated, Duplicated]
    rev = autodiff(b.module, "v1", acts)

    from repro.apps.lulesh.physics import HEX_CORNERS
    xs = np.array([c[0] for c in HEX_CORNERS], dtype=float)
    ys = np.array([c[1] for c in HEX_CORNERS], dtype=float)
    zs = np.array([c[2] for c in HEX_CORNERS], dtype=float)
    gx, gy, gz = np.zeros(8), np.zeros(8), np.zeros(8)
    out, seed = np.zeros(1), np.ones(1)
    Executor(b.module).run(rev, xs, gx, ys, gy, zs, gz, out, seed)
    assert out[0] == pytest.approx(1.0)
    # translation invariance of volume
    assert gx.sum() == pytest.approx(0.0, abs=1e-12)
    assert gy.sum() == pytest.approx(0.0, abs=1e-12)
    assert gz.sum() == pytest.approx(0.0, abs=1e-12)
    # corner at x=0 plane has dV/dx = -1/4; at x=1 plane +1/4
    np.testing.assert_allclose(np.abs(gx), 0.25)
    np.testing.assert_allclose(np.sign(gx), 2 * xs - 1)
