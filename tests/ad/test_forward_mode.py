"""Forward-mode AD (§III): tangent propagation through parallel code."""

import numpy as np
import pytest

from repro.ad import Duplicated, autodiff
from repro.ad.forward import autodiff_forward
from repro.interp import ExecConfig, Executor
from repro.ir import F64, I64, IRBuilder, Ptr, verify_module
from repro.parallel import SimMPI


def test_forward_elementwise():
    b = IRBuilder()
    with b.function("k", [("x", Ptr()), ("y", Ptr()), ("n", I64)]) as f:
        x, y, n = f.args
        with b.parallel_for(0, n) as i:
            v = b.load(x, i)
            b.store(b.sin(v) * v, y, i)
    fwd = autodiff_forward(b.module, "k", [Duplicated, Duplicated, None])
    x0 = np.linspace(0.2, 1.5, 6)
    dx = np.ones(6)               # tangent direction
    y, dy = np.zeros(6), np.zeros(6)
    Executor(b.module, ExecConfig(num_threads=2)).run(
        fwd, x0.copy(), dx, y, dy, 6)
    np.testing.assert_allclose(y, np.sin(x0) * x0)
    np.testing.assert_allclose(dy, np.cos(x0) * x0 + np.sin(x0),
                               rtol=1e-12)


def test_forward_matches_reverse_directional():
    """JVP with direction u equals u . (reverse gradient) for a scalar
    objective: cross-validate the two modes."""
    b = IRBuilder()
    with b.function("k", [("x", Ptr()), ("y", Ptr()), ("n", I64)]) as f:
        x, y, n = f.args
        with b.for_(0, n, simd=True) as i:
            v = b.load(x, i)
            b.store(b.exp(v * 0.3) / (v + 2.0), y, i)
    fwd = autodiff_forward(b.module, "k", [Duplicated, Duplicated, None])
    rev = autodiff(b.module, "k", [Duplicated, Duplicated, None])

    rng = np.random.default_rng(0)
    x0 = rng.uniform(0.1, 2.0, 7)
    u = rng.normal(size=7)

    y, dy = np.zeros(7), np.zeros(7)
    Executor(b.module).run(fwd, x0.copy(), u.copy(), y, dy, 7)
    jvp = dy.sum()                 # all-ones output projection

    dx = np.zeros(7)
    Executor(b.module).run(rev, x0.copy(), dx, np.zeros(7), np.ones(7), 7)
    vjp = float(dx @ u)
    assert jvp == pytest.approx(vjp, rel=1e-12)


def test_forward_through_control_flow():
    b = IRBuilder()
    with b.function("k", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        with b.for_(0, n) as i:
            v = b.load(x, i)
            with b.if_(v > 1.0):
                b.store(v * v, x, i)
            with b.else_():
                b.store(v * 0.5, x, i)
    fwd = autodiff_forward(b.module, "k", [Duplicated, None])
    x0 = np.array([0.5, 2.0, 3.0])
    dx = np.ones(3)
    Executor(b.module).run(fwd, x0.copy(), dx, 3)
    np.testing.assert_allclose(dx, [0.5, 4.0, 6.0])


def test_forward_through_while():
    b = IRBuilder()
    with b.function("k", [("x", Ptr())]) as f:
        x = f.args[0]
        with b.while_() as it:
            v = b.load(x, 0)
            b.store(v * 0.5, x, 0)
            b.loop_while(b.load(x, 0) > 1.0)
    fwd = autodiff_forward(b.module, "k", [Duplicated])
    x0 = np.array([37.0])
    dx = np.ones(1)
    Executor(b.module).run(fwd, x0.copy(), dx)
    # 6 halvings: d(final)/d(init) = 0.5^6
    np.testing.assert_allclose(dx, 0.5 ** 6)


def test_forward_through_mpi_ring():
    b = IRBuilder()
    with b.function("ring", [("x", Ptr()), ("y", Ptr()), ("n", I64)]) as f:
        x, y, n = f.args
        rank = b.call("mpi.comm_rank")
        size = b.call("mpi.comm_size")
        tmp = b.alloc(n)
        r1 = b.call("mpi.isend", x, n, (rank + 1) % size, 4)
        r2 = b.call("mpi.irecv", tmp, n, (rank + size - 1) % size, 4)
        b.call("mpi.wait", r1)
        b.call("mpi.wait", r2)
        with b.for_(0, n, simd=True) as i:
            t = b.load(tmp, i)
            b.store(t * t, y, i)
    fwd = autodiff_forward(b.module, "ring", [Duplicated, Duplicated,
                                              None])
    g = b.module.functions[fwd]
    sends = [op for op in g.walk() if op.opcode == "call"
             and op.attrs["callee"] == "mpi.isend"]
    assert len(sends) == 2        # §IV-B: twice the number of MPI calls

    P, n = 3, 2
    xs = [np.arange(1.0, n + 1) * (r + 1) for r in range(P)]
    dxs = [np.ones(n) for _ in range(P)]
    ys = [np.zeros(n) for _ in range(P)]
    dys = [np.zeros(n) for _ in range(P)]
    SimMPI(b.module, P, ExecConfig()).run(
        fwd, lambda r: (xs[r], dxs[r], ys[r], dys[r], n))
    for r in range(P):
        prev = np.arange(1.0, n + 1) * ((r - 1) % P + 1)
        np.testing.assert_allclose(dys[r], 2 * prev)


def test_forward_tasks():
    b = IRBuilder()
    with b.function("t", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        with b.spawn() as t:
            with b.for_(0, n, simd=True) as i:
                v = b.load(x, i)
                b.store(v * v * v, x, i)
        b.call("task.wait", t)
    fwd = autodiff_forward(b.module, "t", [Duplicated, None])
    x0 = np.arange(1.0, 4.0)
    dx = np.ones(3)
    Executor(b.module, ExecConfig(num_threads=2)).run(fwd, x0.copy(), dx, 3)
    np.testing.assert_allclose(dx, 3 * np.arange(1.0, 4.0) ** 2)


def test_forward_no_caches_generated():
    """Forward mode needs no value caches at all (tangents flow in
    program order)."""
    b = IRBuilder()
    with b.function("k", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        with b.parallel_for(0, n) as i:
            v = b.load(x, i)
            b.store(b.sin(v) * v * v, x, i)
    fwd = autodiff_forward(b.module, "k", [Duplicated, None])
    g = b.module.functions[fwd]
    assert not any(op.attrs.get("stream") for op in g.walk()
                   if op.opcode == "alloc")
    pfors = [op for op in g.walk() if op.opcode == "parallel_for"]
    assert len(pfors) == 1        # one region, not aug+reverse
