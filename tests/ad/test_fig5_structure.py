"""Fig. 5: structural checks of the generated MPI adjoint code."""

import numpy as np
import pytest

from repro.ad import Duplicated, autodiff
from repro.ir import I64, IRBuilder, Ptr


def _calls(fn, name):
    return [op for op in fn.walk() if op.opcode == "call"
            and op.attrs["callee"] == name]


def test_fig5_shadow_request_protocol():
    b = IRBuilder()
    with b.function("send_side", [("data", Ptr()), ("n", I64)]) as f:
        data, n = f.args
        rank = b.call("mpi.comm_rank")
        with b.if_(b.cmp("eq", rank, 0)):
            r = b.call("mpi.isend", data, n, 1, 5)
            b.call("mpi.wait", r)
        with b.else_():
            tmp = b.alloc(n)
            r = b.call("mpi.irecv", tmp, n, 0, 5)
            b.call("mpi.wait", r)
            with b.for_(0, n, simd=True) as i:
                v = b.load(tmp, i)
                b.store(v * v, data, i)
    grad = autodiff(b.module, "send_side", [Duplicated, None])
    g = b.module.functions[grad]

    # Forward pass: the shadow request records the task kind + shadow
    # buffer at the Isend/Irecv sites ("d_req = (ISend, d_data, ...)").
    assert len(_calls(g, "mpid.record_send")) == 1
    assert len(_calls(g, "mpid.record_recv")) == 1

    # Reverse of Wait inspects the shadow request and posts the adjoint
    # communication; reverse of Isend/Irecv completes it.
    assert len(_calls(g, "mpid.reverse_wait")) == 2
    assert len(_calls(g, "mpid.finish_send")) == 1
    assert len(_calls(g, "mpid.finish_recv")) == 1

    # "twice the number of MPI calls" (§IV-B): primal isend/irecv pair
    # plus the adjoint pair posted inside the mpid helpers at run time.
    assert len(_calls(g, "mpi.isend")) == 1   # primal clone (per branch)
    assert len(_calls(g, "mpi.irecv")) == 1

    # End-to-end: derivative of sum((recv)^2) w.r.t. sender data.
    xs = [np.arange(1.0, 4.0), np.zeros(3)]
    dxs = [np.zeros(3), np.ones(3)]
    from repro.interp import ExecConfig
    from repro.parallel import SimMPI
    SimMPI(b.module, 2, ExecConfig()).run(
        grad, lambda r: (xs[r], dxs[r], 3))
    np.testing.assert_allclose(dxs[0], 2 * np.arange(1.0, 4.0))


def test_wait_record_cached_per_iteration():
    """When waits sit inside a loop, their shadow requests are cached
    with the standard per-iteration machinery (§V-C)."""
    from repro.ir import Request
    b = IRBuilder()
    with b.function("loop", [("x", Ptr()), ("n", I64),
                             ("steps", I64)]) as f:
        x, n, steps = f.args
        rank = b.call("mpi.comm_rank")
        size = b.call("mpi.comm_size")
        tmp = b.alloc(n)
        with b.for_(0, steps) as s:
            r1 = b.call("mpi.isend", x, n, (rank + 1) % size, 2)
            r2 = b.call("mpi.irecv", tmp, n, (rank + size - 1) % size, 2)
            b.call("mpi.wait", r1)
            b.call("mpi.wait", r2)
            with b.for_(0, n, simd=True) as i:
                b.store(b.load(tmp, i) * 0.9, x, i)
    grad = autodiff(b.module, "loop", [Duplicated, None, None])
    g = b.module.functions[grad]
    # request-record caches are object (request-typed) buffers
    req_caches = [op for op in g.walk() if op.opcode == "alloc"
                  and str(op.result.type) == "ptr<request>"]
    assert len(req_caches) >= 2
