"""Frontend lowering tests: OpenMP closures, RAJA, Julia constructs."""

import numpy as np
import pytest

from repro.ad import Duplicated, autodiff
from repro.frontends import Julia, OpenMP, RAJA
from repro.frontends.raja import ReduceMin
from repro.interp import ExecConfig, Executor
from repro.ir import F64, I64, IRBuilder, Ptr, verify_module

from ..conftest import run_verified


def test_openmp_parallel_for_lowering_shape():
    """#pragma omp parallel for lowers to fork + reload + workshare
    (paper Fig. 3)."""
    b = IRBuilder()
    with b.function("k", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        omp = OpenMP(b)
        with omp.parallel_for(0, n, captured=[x, n]) as (i, env):
            b.store(b.load(env[x], i) + 1.0, env[x], i)
    fn = b.module.functions["k"]
    forks = [op for op in fn.walk() if op.opcode == "fork"]
    assert len(forks) == 1
    ws = [op for op in forks[0].walk() if op.opcode == "for"
          and op.attrs.get("workshare")]
    assert len(ws) == 1
    # closure record: context stores before the fork
    ctx_stores = [op for op in fn.body.ops if op.opcode == "store"]
    assert len(ctx_stores) == 2  # one pointer, one i64
    verify_module(b.module)


def test_openmp_mixed_capture_types():
    b = IRBuilder()
    with b.function("k", [("x", Ptr()), ("ix", Ptr(I64)), ("s", F64),
                          ("n", I64)]) as f:
        x, ix, s, n = f.args
        omp = OpenMP(b)
        with omp.parallel_for(0, n, captured=[x, ix, s, n]) as (i, env):
            j = b.load(env[ix], i)
            b.store(b.load(env[x], j) * env[s], env[x], j)
    xs = np.arange(1.0, 5.0)
    idx = np.array([3, 2, 1, 0], dtype=np.int64)
    run_verified(b, "k", xs, idx, 2.0, 4, num_threads=2)
    np.testing.assert_allclose(xs, 2 * np.arange(1.0, 5.0))


def test_openmp_nowait_and_barrier_combination():
    b = IRBuilder()
    with b.function("k", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        omp = OpenMP(b)
        with omp.parallel(captured=[x, n]) as (tid, nth, env):
            with omp.for_(0, env[n], nowait=True) as i:
                b.store(1.0, env[x], i)
            omp.barrier()
            with omp.for_(0, env[n]) as i:
                b.store(b.load(env[x], i) + 1.0, env[x], i)
    xs = np.zeros(6)
    run_verified(b, "k", xs, 6, num_threads=3)
    np.testing.assert_allclose(xs, 2.0)


def test_raja_forall_is_openmp_lowering():
    """§V-D: RAJA needs zero AD support because it *is* the lowering."""
    b = IRBuilder()
    with b.function("k", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        raja = RAJA(b)
        with raja.forall(0, n, captured=[x, n]) as (i, env):
            b.store(b.load(env[x], i) * 3.0, env[x], i)
    fn = b.module.functions["k"]
    assert any(op.opcode == "fork" for op in fn.walk())
    grad = autodiff(b.module, "k", [Duplicated, None])
    xs = np.ones(5)
    dxs = np.ones(5)
    Executor(b.module, ExecConfig(num_threads=2)).run(grad, xs, dxs, 5)
    np.testing.assert_allclose(dxs, 3.0)


def test_raja_reduce_min_values_and_gradient():
    b = IRBuilder()
    with b.function("rmin", [("d", Ptr()), ("out", Ptr()), ("n", I64)]) as f:
        d, out, n = f.args
        raja = RAJA(b)
        rm = ReduceMin(raja, b.const(1e30))
        with raja.forall_reduce(0, n, [rm], captured=[d, n]) as (i, env):
            raja.reduce_min(rm, b.load(env[d], i))
        b.store(rm.get(), out, 0)
    data = np.array([4.0, 1.25, 9.0, 2.0, 8.0])
    out = np.zeros(1)
    run_verified(b, "rmin", data, out, 5, num_threads=3)
    assert out[0] == 1.25
    grad = autodiff(b.module, "rmin", [Duplicated, Duplicated, None])
    data = np.array([4.0, 1.25, 9.0, 2.0, 8.0])
    dd, out, dout = np.zeros(5), np.zeros(1), np.ones(1)
    Executor(b.module, ExecConfig(num_threads=3)).run(
        grad, data, dd, out, dout, 5)
    expect = np.zeros(5)
    expect[1] = 1.0
    np.testing.assert_allclose(dd, expect)


def test_julia_arrays_and_arrayptr():
    b = IRBuilder()
    with b.function("k", [("out", Ptr()), ("n", I64)]) as f:
        out, n = f.args
        jl = Julia(b)
        arr = jl.zeros(n)
        with b.for_(0, n, simd=True) as i:
            b.store(b.itof(i) * 2.0, arr.data(), i)
        with b.for_(0, n, simd=True) as i:
            b.store(b.load(arr.data(), i), out, i)
    out = np.zeros(4)
    run_verified(b, "k", out, 4)
    np.testing.assert_allclose(out, [0, 2, 4, 6])


def test_julia_threads_for_covers_range():
    b = IRBuilder()
    with b.function("k", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        jl = Julia(b)
        with jl.threads_for(0, n, 3) as i:
            b.store(b.load(x, i) + 1.0, x, i)
    xs = np.zeros(10)
    run_verified(b, "k", xs, 10, num_threads=3)
    np.testing.assert_allclose(xs, 1.0)


def test_julia_mpi_symbol_table():
    from repro.frontends import MPI_SYMBOLS
    assert MPI_SYMBOLS["MPI.Isend"] == "mpi.isend"
    assert MPI_SYMBOLS["MPI.Allreduce!"] == "mpi.allreduce"


def test_julia_gc_preserve_context_manager():
    b = IRBuilder()
    with b.function("k", [("out", Ptr())]) as f:
        out = f.args[0]
        jl = Julia(b)
        arr = jl.zeros(2)
        with jl.gc_preserve(arr):
            jl.safepoint()
            b.store(5.0, arr.data(), 0)
            b.store(b.load(arr.data(), 0), out, 0)
    out = np.zeros(1)
    _, ex = run_verified(b, "k", out, gc_stress=True)
    assert out[0] == 5.0
