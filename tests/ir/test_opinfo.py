"""Opcode table invariants + AD rule coverage completeness."""

import numpy as np
import pytest

from repro.ad.rules import RULES, ZERO_DERIVATIVE
from repro.ir import OP_INFO
from repro.ir.opinfo import COST_FLOP, COST_FREE
from repro.ir.types import F64


def test_every_op_has_arity_and_cost():
    for name, info in OP_INFO.items():
        assert info.arity >= 1, name
        assert info.cost in ("flop", "div", "special", "int", "free"), name


def test_evaluators_callable():
    for name, info in OP_INFO.items():
        if name == "cmp":
            assert "preds" in info.attrs
            continue
        assert callable(info.evaluate), name


def test_float_ops_have_adjoint_rule_or_zero():
    """Every float-producing opcode must be differentiable: either a
    registered adjoint rule or an explicit zero-derivative entry —
    a new opcode without a rule is a silent-wrong-gradient hazard."""
    missing = []
    for name, info in OP_INFO.items():
        if name == "cmp":
            continue
        try:
            rt = info.result_type([F64] * info.arity)
        except TypeError:
            continue  # not a float op
        if rt is F64 and name not in RULES and name not in ZERO_DERIVATIVE:
            missing.append(name)
    assert not missing, missing


def test_commutative_flags_sane():
    for name in ("add", "mul", "min", "max", "iadd", "imul"):
        assert OP_INFO[name].commutative, name
    for name in ("sub", "div", "isub", "pow"):
        assert not OP_INFO[name].commutative, name


@pytest.mark.parametrize("name,args,expect", [
    ("add", (2.0, 3.0), 5.0),
    ("sub", (2.0, 3.0), -1.0),
    ("mul", (2.0, 3.0), 6.0),
    ("div", (3.0, 2.0), 1.5),
    ("min", (2.0, 3.0), 2.0),
    ("max", (2.0, 3.0), 3.0),
    ("fma", (2.0, 3.0, 1.0), 7.0),
    ("copysign", (2.5, -1.0), -2.5),
    ("neg", (2.0,), -2.0),
    ("abs", (-2.0,), 2.0),
    ("sqrt", (9.0,), 3.0),
    ("cbrt", (27.0,), 3.0),
    ("exp", (0.0,), 1.0),
    ("log", (1.0,), 0.0),
    ("floor", (2.7,), 2.0),
    ("idiv", (7, 2), 3),
    ("imod", (7, 2), 1),
])
def test_evaluator_values(name, args, expect):
    assert OP_INFO[name].evaluate(*args) == pytest.approx(expect)


def test_vectorized_evaluators():
    a = np.array([1.0, 4.0, 9.0])
    np.testing.assert_allclose(OP_INFO["sqrt"].evaluate(a), np.sqrt(a))
    np.testing.assert_allclose(
        OP_INFO["fma"].evaluate(a, a, a), a * a + a)
