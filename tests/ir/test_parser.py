"""Printer/parser round-trips."""

import numpy as np
import pytest

from repro.interp import ExecConfig, Executor
from repro.ir import (
    F64,
    I64,
    IRBuilder,
    Ptr,
    print_function,
    verify_module,
)
from repro.ir.parser import ParseError, parse_function, parse_module, \
    parse_type
from repro.ir.types import Request, Task


def _roundtrip(build, fn_name="f"):
    b = IRBuilder()
    build(b)
    text1 = print_function(b.module.functions[fn_name])
    fn2 = parse_function(text1)
    text2 = print_function(fn2)
    assert text1 == text2, f"\n--- first ---\n{text1}\n--- second ---\n{text2}"
    return fn2


def test_parse_types():
    assert parse_type("f64") is F64
    assert parse_type("ptr<f64>") is Ptr(F64)
    assert parse_type("ptr<ptr<i64>>") is Ptr(Ptr(I64))
    assert parse_type("request") is Request
    with pytest.raises(ParseError):
        parse_type("quux")


def test_roundtrip_arithmetic():
    def build(b):
        with b.function("f", [("a", F64), ("c", F64)], ret=F64) as f:
            a, c = f.args
            b.ret(b.sin(a) * c + b.sqrt(c) / (a - 0.5))
    _roundtrip(build)


def test_roundtrip_memory_and_loops():
    def build(b):
        with b.function("f", [("x", Ptr()), ("n", I64)]) as f:
            x, n = f.args
            t = b.alloc(n, space="heap")
            with b.for_(0, n, step=2) as i:
                b.store(b.load(x, i) * 2.0, t, i)
            b.memcpy(x, t, n)
            b.memset(t, 0.0, n)
            b.free(t)
    _roundtrip(build)


def test_roundtrip_parallel_constructs():
    def build(b):
        with b.function("f", [("x", Ptr()), ("n", I64)]) as f:
            x, n = f.args
            with b.parallel_for(0, n) as i:
                b.atomic_add(b.load(x, i), x, 0)
            with b.fork(4) as (tid, nth):
                b.store(b.itof(tid), x, tid)
                b.barrier()
                with b.workshare(0, n) as i:
                    b.store(1.0, x, i)
    _roundtrip(build)


def test_roundtrip_if_while_spawn():
    def build(b):
        with b.function("f", [("x", Ptr())]) as f:
            x = f.args[0]
            with b.while_() as it:
                v = b.load(x, 0)
                with b.if_(v > 1.0):
                    b.store(v * 0.5, x, 0)
                with b.else_():
                    b.store(v, x, 0)
                b.loop_while(b.cmp("gt", b.load(x, 0), 1.0))
            with b.spawn() as t:
                b.store(9.0, x, 1)
            b.call("task.wait", t)
    _roundtrip(build)


def test_roundtrip_calls_with_attrs():
    def build(b):
        with b.function("f", [("x", Ptr()), ("y", Ptr()), ("n", I64)]) as f:
            x, y, n = f.args
            b.call("mpi.allreduce", x, y, n, op="min")
            r = b.call("mpi.isend", x, n, 1, 7)
            b.call("mpi.wait", r)
    _roundtrip(build)


def test_parsed_function_executes():
    def build(b):
        with b.function("f", [("x", Ptr()), ("n", I64)]) as f:
            x, n = f.args
            with b.parallel_for(0, n) as i:
                v = b.load(x, i)
                b.store(v * v + 1.0, x, i)
    fn2 = _roundtrip(build)
    from repro.ir import Module, verify_module
    fn2_module = None
    # parse into a fresh module and execute it
    b = IRBuilder()
    build(b)
    text = print_function(b.module.functions["f"])
    from repro.ir.parser import parse_module
    mod = parse_module(text)
    verify_module(mod)
    xs = np.arange(1.0, 5.0)
    Executor(mod, ExecConfig(num_threads=2)).run("f", xs, 4)
    np.testing.assert_allclose(xs, np.arange(1.0, 5.0) ** 2 + 1.0)


def test_parse_error_messages():
    with pytest.raises(ParseError, match="function header"):
        parse_function("not a function")
    with pytest.raises(ParseError, match="undefined value"):
        parse_function(
            "func @f(%x: ptr<f64>) -> void {\n"
            "  store %nope, %x[0]\n"
            "  return\n"
            "}\n")


def test_roundtrip_generated_gradient():
    """Even AD-generated functions round-trip through text."""
    from repro.ad import Duplicated, autodiff
    b = IRBuilder()
    with b.function("k", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        with b.parallel_for(0, n) as i:
            v = b.load(x, i)
            b.store(b.exp(v) * v, x, i)
    grad = autodiff(b.module, "k", [Duplicated, None])
    text1 = print_function(b.module.functions[grad])
    fn2 = parse_function(text1)
    assert print_function(fn2) == text1
