import pytest

from repro.ir import (
    F64,
    I64,
    IRBuilder,
    Ptr,
    VerificationError,
    verify_module,
)
from repro.ir.ops import BarrierOp, ComputeOp, ForOp, ReturnOp, StoreOp
from repro.ir.values import Constant


def test_use_before_def_rejected():
    b = IRBuilder()
    with b.function("f", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        leaked = None
        with b.for_(0, n) as i:
            leaked = b.load(x, i)
        # Use a loop-local value outside the loop: invalid.
        b.store(leaked, x, 0)
    with pytest.raises(VerificationError, match="dominate"):
        verify_module(b.module)


def test_sibling_region_value_rejected():
    b = IRBuilder()
    with b.function("f", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        v = None
        with b.if_(b.cmp("lt", n, 3)):
            v = b.load(x, 0)
        with b.else_():
            b.store(v, x, 1)
    with pytest.raises(VerificationError, match="dominate"):
        verify_module(b.module)


def test_enclosing_scope_visible():
    b = IRBuilder()
    with b.function("f", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        outer = b.load(x, 0)
        with b.for_(0, n) as i:
            b.store(outer, x, i)  # enclosing def: fine
    verify_module(b.module)


def test_barrier_outside_fork_rejected():
    b = IRBuilder()
    with b.function("f", [("n", I64)]) as f:
        b.emit(BarrierOp())
    with pytest.raises(VerificationError, match="barrier"):
        verify_module(b.module)


def test_workshare_outside_fork_rejected():
    b = IRBuilder()
    with b.function("f", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        op = ForOp(Constant(0, I64), n, Constant(1, I64), workshare=True)
        b.emit(op)
    with pytest.raises(VerificationError, match="workshare"):
        verify_module(b.module)


def test_nested_parallel_rejected():
    b = IRBuilder()
    with b.function("f", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        with b.parallel_for(0, n) as i:
            with b.parallel_for(0, n) as j:
                b.store(0.0, x, j)
    with pytest.raises(VerificationError, match="nested"):
        verify_module(b.module)


def test_return_in_region_rejected():
    b = IRBuilder()
    with b.function("f", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        with b.for_(0, n) as i:
            b.block.append(ReturnOp([]))
    with pytest.raises(VerificationError, match="return"):
        verify_module(b.module)


def test_return_type_mismatch():
    b = IRBuilder()
    with b.function("f", [("a", F64)], ret=F64) as f:
        pass  # no return emitted; add a bad one manually
    fn = b.module.functions["f"]
    fn.body.append(ReturnOp([]))
    with pytest.raises(VerificationError, match="return"):
        verify_module(b.module)


def test_call_arity_verified():
    from repro.ir.ops import CallOp
    from repro.ir.types import Void
    b = IRBuilder()
    with b.function("f", [("x", Ptr())]) as f:
        f_x = f.args[0]
        bad = CallOp("mpi.barrier", [f_x], Void)
        b.emit(bad)
    with pytest.raises(VerificationError, match="expects"):
        verify_module(b.module)


def test_condition_must_terminate_while():
    from repro.ir.ops import ConditionOp, WhileOp
    b = IRBuilder()
    with b.function("f", [("x", Ptr())]) as f:
        x = f.args[0]
        w = WhileOp()
        b.emit(w)
        with b.at(w.body):
            c = b.cmp("lt", w.ivar, 2)
            b.loop_while(c)
            b.store(1.0, x, 0)  # op after condition
    with pytest.raises(VerificationError, match="condition"):
        verify_module(b.module)


# ---------------------------------------------------------------------------
# Request-typed value flow (ISSUE 5: verifier hygiene for mpi requests)
# ---------------------------------------------------------------------------

def _parse_and_verify(text):
    from repro.ir.parser import parse_module
    verify_module(parse_module(text))


def test_request_flow_clean_isend_wait():
    _parse_and_verify(
        "func @f(%buf: ptr<f64>, %n: i64) -> void {\n"
        "  %0 = call @mpi.isend(%buf, %n, 0, 1)\n"
        "  call @mpi.wait(%0)\n"
        "  return\n"
        "}\n")


def test_request_as_count_rejected():
    with pytest.raises(VerificationError, match="request-typed operand"):
        _parse_and_verify(
            "func @f(%buf: ptr<f64>, %n: i64) -> void {\n"
            "  %0 = call @mpi.isend(%buf, %n, 0, 1)\n"
            "  call @mpi.send(%buf, %0, 1, 5)\n"
            "  return\n"
            "}\n")


def test_int_into_wait_rejected():
    with pytest.raises(VerificationError, match="must be a request"):
        _parse_and_verify(
            "func @f(%buf: ptr<f64>, %n: i64) -> void {\n"
            "  call @mpi.wait(%n)\n"
            "  return\n"
            "}\n")


def test_request_into_pointer_arithmetic_rejected():
    from repro.ir.ops import PtrAddOp
    b = IRBuilder()
    with b.function("f", [("buf", Ptr()), ("n", I64)]) as f:
        buf, n = f.args
        r = b.call("mpi.isend", buf, n, 0, 1)
        b.block.append(PtrAddOp(r, n))
        b.call("mpi.wait", r)
    with pytest.raises(VerificationError, match="request-typed value"):
        verify_module(b.module)


def test_request_store_into_request_array_allowed():
    from repro.ir import Request
    b = IRBuilder()
    with b.function("f", [("buf", Ptr()), ("n", I64)]) as f:
        buf, n = f.args
        reqs = b.alloc(1, Request)
        b.store(b.call("mpi.isend", buf, n, 0, 1), reqs, 0)
        b.call("mpi.wait", b.load(reqs, 0))
    verify_module(b.module)
