import numpy as np
import pytest

from repro.ir import (
    F64,
    I1,
    I64,
    IRBuilder,
    Constant,
    Ptr,
    print_function,
    verify_module,
)
from repro.ir.ops import ComputeOp, ForOp, IfOp, ParallelForOp


def test_function_signature():
    b = IRBuilder()
    with b.function("f", [("x", Ptr()), ("n", I64)], ret=F64) as f:
        b.ret(1.5)
    fn = b.module.functions["f"]
    assert [a.name for a in fn.args] == ["x", "n"]
    assert fn.ret_type is F64


def test_operator_sugar_types():
    b = IRBuilder()
    with b.function("g", [("a", F64), ("k", I64)], ret=F64) as f:
        a, k = f.args
        v = a * a + 2.0
        w = v / (a - 0.5)
        i2 = k + 1          # integer op
        mixed = a + k       # int coerced to float
        assert v.type is F64
        assert i2.type is I64
        assert mixed.type is F64
        b.ret(w + mixed)
    verify_module(b.module)


def test_comparisons_produce_i1():
    b = IRBuilder()
    with b.function("c", [("a", F64)], ret=F64) as f:
        a = f.args[0]
        cond = a > 1.0
        assert cond.type is I1
        b.ret(b.select(cond, a, 0.0))
    verify_module(b.module)


def test_auto_void_return():
    b = IRBuilder()
    with b.function("v", [("x", Ptr())]) as f:
        b.store(1.0, f.args[0], 0)
    fn = b.module.functions["v"]
    assert fn.body.ops[-1].opcode == "return"


def test_structured_ops_nesting():
    b = IRBuilder()
    with b.function("s", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        with b.for_(0, n) as i:
            with b.if_(b.cmp("lt", i, 3)):
                b.store(1.0, x, i)
            with b.else_():
                b.store(2.0, x, i)
    fn = b.module.functions["s"]
    loop = fn.body.ops[0]
    assert isinstance(loop, ForOp)
    assert isinstance(loop.body.ops[1], IfOp)
    verify_module(b.module)


def test_while_requires_condition():
    b = IRBuilder()
    with pytest.raises(RuntimeError):
        with b.function("w", [("x", Ptr())]) as f:
            with b.while_() as it:
                b.store(1.0, f.args[0], 0)
            # missing loop_while


def test_while_ok():
    b = IRBuilder()
    with b.function("w", [("x", Ptr())]) as f:
        with b.while_() as it:
            b.store(1.0, f.args[0], 0)
            b.loop_while(b.cmp("lt", it, 3))
    verify_module(b.module)


def test_call_arity_checked():
    b = IRBuilder()
    with pytest.raises(TypeError):
        with b.function("bad", [("x", Ptr())]) as f:
            b.call("mpi.send", f.args[0])  # needs 4 args


def test_call_unknown_callee():
    b = IRBuilder()
    with pytest.raises(KeyError):
        with b.function("bad2", []) as f:
            b.call("nonexistent.fn")


def test_store_type_mismatch():
    b = IRBuilder()
    with b.function("m", [("x", Ptr(I64))]) as f:
        # float constant coerced to int fails
        with pytest.raises(TypeError):
            b.store(1.5, f.args[0], 0)


def test_constants_inferred():
    assert Constant(1).type is I64
    assert Constant(1.0).type is F64
    assert Constant(True).type is I1


def test_printer_roundtrip_mentions_structure():
    b = IRBuilder()
    with b.function("p", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        with b.parallel_for(0, n) as i:
            v = b.load(x, i)
            b.store(v + 1.0, x, i)
    text = print_function(b.module.functions["p"])
    assert "parallel_for" in text
    assert "load" in text and "store" in text


def test_operator_outside_builder_raises():
    from repro.ir.values import Argument
    a = Argument(F64, "x", 0)
    with pytest.raises(RuntimeError):
        _ = a + 1.0


def test_clone_preserves_structure():
    b = IRBuilder()
    with b.function("orig", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        with b.for_(0, n) as i:
            v = b.load(x, i)
            b.store(v * v, x, i)
    clone = b.module.clone_function("orig", "copy")
    assert clone.num_ops() == b.module.functions["orig"].num_ops()
    verify_module(b.module)
    # Cloned ops are distinct objects
    orig_ids = {op.uid for op in b.module.functions["orig"].walk()}
    copy_ids = {op.uid for op in clone.walk()}
    assert not (orig_ids & copy_ids)
