import pytest

from repro.ir import F64, I1, I64, PointerType, Ptr, Request, Task, Void
from repro.ir.types import Token, common_numeric


def test_scalar_singletons():
    assert F64 is not I64
    assert F64.is_float and not F64.is_int
    assert I64.is_int and not I64.is_float
    assert I1.is_bool


def test_pointer_interning():
    assert Ptr(F64) is Ptr(F64)
    assert Ptr(I64) is Ptr(I64)
    assert Ptr(F64) is not Ptr(I64)
    assert Ptr(Ptr(F64)) is Ptr(Ptr(F64))


def test_pointer_elem():
    p = Ptr(F64)
    assert isinstance(p, PointerType)
    assert p.elem is F64
    assert p.is_pointer
    assert str(p) == "ptr<f64>"


def test_nested_pointer():
    pp = Ptr(Ptr(F64))
    assert pp.elem is Ptr(F64)
    assert str(pp) == "ptr<ptr<f64>>"


def test_handle_types():
    assert Task.is_handle and Request.is_handle and Token.is_handle
    assert not F64.is_handle


def test_size_bytes():
    assert F64.size_bytes == 8
    assert I64.size_bytes == 8
    assert I1.size_bytes == 1
    assert Ptr(F64).size_bytes == 8


def test_common_numeric():
    assert common_numeric(F64, F64) is F64
    assert common_numeric(F64, I64) is F64
    assert common_numeric(I64, I64) is I64
    with pytest.raises(TypeError):
        common_numeric(I1, I1)


def test_default_ptr_is_f64():
    assert Ptr() is Ptr(F64)
