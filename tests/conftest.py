"""Shared test helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.interp import ExecConfig, Executor
from repro.ir import F64, I64, IRBuilder, Ptr, verify_module


@pytest.fixture
def builder() -> IRBuilder:
    return IRBuilder()


def run_verified(builder: IRBuilder, fn: str, *args, num_threads: int = 1,
                 **cfg_kw):
    """Verify the module, run ``fn``, return (result, executor)."""
    verify_module(builder.module)
    ex = Executor(builder.module, ExecConfig(num_threads=num_threads,
                                             **cfg_kw))
    result = ex.run(fn, *args)
    return result, ex


def build_elementwise(builder: IRBuilder, name: str, body_fn,
                      parallel: bool = True):
    """Build ``name(x, y, n)`` computing ``y[i] = body_fn(x[i])``."""
    b = builder
    with b.function(name, [("x", Ptr()), ("y", Ptr()), ("n", I64)]) as f:
        x, y, n = f.args
        if parallel:
            ctx = b.parallel_for(0, n)
        else:
            ctx = b.for_(0, n)
        with ctx as i:
            v = b.load(x, i)
            b.store(body_fn(b, v), y, i)
    return name


def fd_elementwise_check(builder, fn_name, grad_name, x0: np.ndarray,
                         num_threads: int = 1, rtol: float = 1e-5):
    """Compare d(sum y)/dx between the generated gradient and central
    finite differences for an elementwise y = f(x) kernel."""
    n = len(x0)
    eps = 1e-7 * max(1.0, float(np.abs(x0).max()))
    cfg = dict(num_threads=num_threads)

    def primal(x):
        y = np.zeros(n)
        Executor(builder.module, ExecConfig(**cfg)).run(fn_name, x.copy(),
                                                        y, n)
        return y.sum()

    fd = np.array([
        (primal(x0 + eps * e) - primal(x0 - eps * e)) / (2 * eps)
        for e in np.eye(n)
    ])

    dx = np.zeros(n)
    dy = np.ones(n)
    y = np.zeros(n)
    Executor(builder.module, ExecConfig(**cfg)).run(
        grad_name, x0.copy(), dx, y, dy, n)
    np.testing.assert_allclose(dx, fd, rtol=rtol, atol=1e-6)
    return dx
