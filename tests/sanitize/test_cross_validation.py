"""Sanitizer cross-validation with the AD engine (the PR's acceptance
harness): a deliberately mis-lowered gradient must be caught by *both*
layers, the TLS-optimized gradient by *neither*, and the
``atomic_everywhere`` ablation must not downgrade MPI-escaping shadows.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Duplicated, autodiff, print_function
from repro.ad import ADConfig
from repro.ad.tls import ATOMIC, SERIAL, increment_kind
from repro.interp import ExecConfig, Executor
from repro.ir import F64, I64, IRBuilder, Ptr
from repro.parallel.mpi import SimMPI
from repro.sanitize import LintError, RaceReport

NA = {"noalias": True}


def _shared_read_kernel():
    """Every thread reads x[0]: the load adjoint increments d_x[0]."""
    b = IRBuilder()
    with b.function("k", [("x", Ptr()), ("y", Ptr()), ("n", I64)],
                    arg_attrs=[NA, NA, {}]) as f:
        x, y, n = f.args
        with b.fork(0) as (tid, nth):
            v = b.load(x, 0)
            b.store(v * 3.0, y, tid)
    return b


def test_seeded_race_caught_statically():
    b = _shared_read_kernel()
    with pytest.raises(LintError) as exc:
        autodiff(b.module, "k", [Duplicated, Duplicated, None],
                 ADConfig(sanitize=True, force_increment_kind="serial"))
    assert any(d.code == "shared-store" for d in exc.value.result.errors)


def test_seeded_race_caught_dynamically():
    b = _shared_read_kernel()
    g = autodiff(b.module, "k", [Duplicated, Duplicated, None],
                 ADConfig(force_increment_kind="serial"))
    nt = 4
    ex = Executor(b.module, ExecConfig(num_threads=nt, sanitize=True))
    x, dx = np.ones(1), np.zeros(1)
    y, dy = np.zeros(nt), np.ones(nt)
    with pytest.raises(RaceReport) as exc:
        ex.run(g, x, dx, y, dy, nt)
    r = exc.value
    assert r.buffer_name == "d_x" and r.index == 0
    # Both racing ops are named in the report.
    assert "load %d_x[0]" in str(r) and "store" in str(r)


def test_tls_optimized_gradient_clean_both_layers():
    b = _shared_read_kernel()
    g = autodiff(b.module, "k", [Duplicated, Duplicated, None],
                 ADConfig(sanitize=True))    # lint passes: no LintError
    nt = 4
    ex = Executor(b.module, ExecConfig(num_threads=nt, sanitize=True))
    x, dx = np.ones(1), np.zeros(1)
    y, dy = np.zeros(nt), np.ones(nt)
    ex.run(g, x, dx, y, dy, nt)
    assert ex.races == []
    assert dx[0] == pytest.approx(3.0 * nt)


def test_forced_atomic_is_also_clean():
    b = _shared_read_kernel()
    g = autodiff(b.module, "k", [Duplicated, Duplicated, None],
                 ADConfig(sanitize=True, force_increment_kind="atomic"))
    nt = 4
    ex = Executor(b.module, ExecConfig(num_threads=nt, sanitize=True))
    x, dx = np.ones(1), np.zeros(1)
    y, dy = np.zeros(nt), np.ones(nt)
    ex.run(g, x, dx, y, dy, nt)
    assert ex.races == [] and dx[0] == pytest.approx(3.0 * nt)


# ---------------------------------------------------------------------------
# increment_kind MPI-escape regression (the audited bug)
# ---------------------------------------------------------------------------

def test_increment_kind_mpi_escape_unit():
    class _NoAlias:
        def points_to_single_alloc(self, ptr):
            return None
    # atomic_everywhere used to return SERIAL whenever there was no
    # enclosing parallel region, even for MPI-escaping locations.
    assert increment_kind(None, None, [], _NoAlias(), None,
                          atomic_everywhere=True,
                          mpi_escapes=True) == ATOMIC
    assert increment_kind(None, None, [], _NoAlias(), None,
                          atomic_everywhere=True,
                          mpi_escapes=False) == SERIAL
    # Optimized path: rank-local serial accumulation is provably safe.
    assert increment_kind(None, None, [], _NoAlias(), None,
                          mpi_escapes=True) == SERIAL


def _mpi_kernel():
    b = IRBuilder()
    with b.function("k", [("buf", Ptr()), ("out", Ptr()), ("n", I64)]) as f:
        buf, out, n = f.args
        r = b.call("mpi.comm_rank")
        v = b.load(buf, 0)           # shadow of buf escapes via mpi.send
        b.store(v * 2.0, out, 0)
        with b.if_(b.cmp("eq", r, 0)):
            b.call("mpi.send", buf, n, 1, 5)
        with b.if_(b.cmp("eq", r, 1)):
            b.call("mpi.recv", buf, n, 0, 5)
    return b


def test_atomic_everywhere_keeps_mpi_shadows_atomic():
    b = _mpi_kernel()
    g = autodiff(b.module, "k", [Duplicated, Duplicated, None],
                 ADConfig(atomic_everywhere=True))
    txt = print_function(b.module.functions[g])
    assert "atomic_add" in txt


def test_default_config_keeps_function_level_serial():
    b = _mpi_kernel()
    g = autodiff(b.module, "k", [Duplicated, Duplicated, None])
    txt = print_function(b.module.functions[g])
    assert "atomic_add" not in txt


def test_mpi_gradient_runs_clean_under_sanitizer():
    b = _mpi_kernel()
    g = autodiff(b.module, "k", [Duplicated, Duplicated, None],
                 ADConfig(atomic_everywhere=True))
    mpi = SimMPI(b.module, nprocs=2, config=ExecConfig(sanitize=True))
    bufs = [np.array([3.0]), np.array([0.0])]
    dbufs = [np.zeros(1), np.zeros(1)]
    outs = [np.zeros(1), np.zeros(1)]
    douts = [np.ones(1), np.ones(1)]
    mpi.run(g, lambda r: (bufs[r], dbufs[r], outs[r], douts[r], 1))
    assert mpi.races == []
    # out_r = 2 * buf_r, each rank seeds d_out = 1; rank1's adjoint of
    # the recv ships its d_buf back to rank 0's shadow.
    assert dbufs[0][0] == pytest.approx(2.0)


# ---------------------------------------------------------------------------
# Application-level validation (the paper's proxy apps)
# ---------------------------------------------------------------------------

@pytest.mark.slow
def test_lulesh_openmp_sanitized_gradient_matches_fd():
    from repro.apps.lulesh.driver import LuleshApp
    app = LuleshApp("openmp", nx=2, ad_config=ADConfig(sanitize=True),
                    sanitize=True)
    rev, fd = app.projection_check(steps=3, num_threads=4)
    assert rev == pytest.approx(fd, rel=5e-5)


@pytest.mark.slow
def test_minibude_openmp_sanitized_gradient_matches_fd():
    from repro.apps.minibude import MinibudeApp, make_deck
    deck = make_deck(nprotein=12, nligand=6, nposes=16)
    app = MinibudeApp("openmp", deck, ad_config=ADConfig(sanitize=True),
                      sanitize=True)
    rev, fd = app.projection_check(num_threads=4)
    assert rev == pytest.approx(fd, rel=1e-4)
