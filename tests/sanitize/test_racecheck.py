"""Dynamic vector-clock race checker: detection, HB edges, zero-cost-off."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.interp import ExecConfig, Executor
from repro.ir import F64, I64, IRBuilder, Ptr
from repro.parallel.mpi import SimMPI
from repro.sanitize import RaceChecker, RaceReport

NA = {"noalias": True}


def _run(b, fn, cfg, *args):
    ex = Executor(b.module, cfg)
    ex.run(fn, *args)
    return ex


# ---------------------------------------------------------------------------
# Shared-memory detection
# ---------------------------------------------------------------------------

def test_write_write_race_detected_and_named():
    b = IRBuilder()
    with b.function("racy", [("x", Ptr()), ("n", I64)],
                    arg_attrs=[NA, {}]) as f:
        x, n = f.args
        with b.parallel_for(0, n) as i:
            b.store(2.0, x, 0)
    with pytest.raises(RaceReport) as exc:
        _run(b, "racy", ExecConfig(num_threads=4, sanitize=True),
             np.zeros(4), 4)
    r = exc.value
    assert r.kind == "write-write"
    assert r.buffer_name == "x" and r.index == 0
    # Both ops are named, with provenance.
    msg = str(r)
    assert "store 2.0, %x[0]" in msg
    assert "parallel_for" in msg


def test_disjoint_writes_clean():
    b = IRBuilder()
    with b.function("ok", [("x", Ptr()), ("n", I64)],
                    arg_attrs=[NA, {}]) as f:
        x, n = f.args
        with b.parallel_for(0, n) as i:
            v = b.load(x, i)
            b.store(v * 2.0, x, i)
    ex = _run(b, "ok", ExecConfig(num_threads=4, sanitize=True),
              np.arange(8.0), 8)
    assert ex.races == []
    assert ex.racecheck.accesses_checked > 0


def test_atomic_increments_clean():
    b = IRBuilder()
    with b.function("at", [("x", Ptr()), ("n", I64)],
                    arg_attrs=[NA, {}]) as f:
        x, n = f.args
        with b.parallel_for(0, n) as i:
            b.atomic_add(1.0, x, 0)
    ex = _run(b, "at", ExecConfig(num_threads=4, sanitize=True),
              np.zeros(1), 8)
    assert ex.races == []


def test_atomic_vs_plain_write_races():
    b = IRBuilder()
    with b.function("ap", [("x", Ptr()), ("n", I64)],
                    arg_attrs=[NA, {}]) as f:
        x, n = f.args
        with b.fork(0) as (tid, nth):
            with b.if_(b.cmp("eq", tid, 0)):
                b.store(1.0, x, 0)
            with b.if_(b.cmp("eq", tid, 1)):
                b.atomic_add(1.0, x, 0)
    with pytest.raises(RaceReport) as exc:
        _run(b, "ap", ExecConfig(num_threads=2, sanitize=True),
             np.zeros(1), 1)
    assert exc.value.kind == "write-write"


def test_read_read_is_not_a_race_and_join_orders_later_write():
    b = IRBuilder()
    with b.function("rr", [("x", Ptr()), ("n", I64)],
                    arg_attrs=[NA, {}]) as f:
        x, n = f.args
        with b.parallel_for(0, n) as i:
            v = b.load(x, 0)          # concurrent reads: fine
            b.store(v, x, i + 1)
        b.store(9.0, x, 0)            # after join: ordered
    ex = _run(b, "rr", ExecConfig(num_threads=4, sanitize=True),
              np.zeros(16), 8)
    assert ex.races == []


def test_barrier_separates_fork_phases():
    b = IRBuilder()
    with b.function("fk", [("y", Ptr()), ("n", I64)],
                    arg_attrs=[NA, {}]) as f:
        y, n = f.args
        with b.fork(0) as (tid, nth):
            with b.if_(b.cmp("eq", tid, 0)):
                b.store(1.0, y, 0)
            b.barrier()
            v = b.load(y, 0)
            b.barrier()
            b.store(v, y, tid)
    ex = _run(b, "fk", ExecConfig(num_threads=4, sanitize=True),
              np.zeros(8), 8)
    assert ex.races == []


def test_missing_barrier_is_a_race():
    b = IRBuilder()
    with b.function("fk2", [("y", Ptr()), ("n", I64)],
                    arg_attrs=[NA, {}]) as f:
        y, n = f.args
        with b.fork(0) as (tid, nth):
            with b.if_(b.cmp("eq", tid, 0)):
                b.store(1.0, y, 0)
            v = b.load(y, 0)          # unordered vs thread 0's store
            b.store(v, y, tid)
    with pytest.raises(RaceReport):
        _run(b, "fk2", ExecConfig(num_threads=4, sanitize=True),
             np.zeros(8), 8)


def test_spawn_wait_orders_task_accesses():
    b = IRBuilder()
    with b.function("tw", [("x", Ptr()), ("n", I64)],
                    arg_attrs=[NA, {}]) as f:
        x, n = f.args
        with b.spawn() as task:
            b.store(5.0, x, 0)
        b.wait_task(task)
        v = b.load(x, 0)              # ordered by the wait
        b.store(v, x, 1)
    ex = _run(b, "tw", ExecConfig(num_threads=2, sanitize=True),
              np.zeros(4), 4)
    assert ex.races == []


def test_collect_mode_does_not_raise():
    b = IRBuilder()
    with b.function("racy", [("x", Ptr()), ("n", I64)],
                    arg_attrs=[NA, {}]) as f:
        x, n = f.args
        with b.parallel_for(0, n) as i:
            b.store(2.0, x, 0)
    ex = _run(b, "racy",
              ExecConfig(num_threads=4, sanitize=True, sanitize_raise=False),
              np.zeros(4), 4)
    assert len(ex.races) >= 1
    d = ex.races[0].to_dict()
    assert d["kind"] == "write-write" and d["buffer"] == "x"
    json.dumps(ex.racecheck.to_json())  # JSON-serializable


def test_zero_cost_when_off():
    b = IRBuilder()
    with b.function("ok", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        with b.parallel_for(0, n) as i:
            b.store(1.0, x, i)
    ex = Executor(b.module, ExecConfig(num_threads=2))
    assert ex.interp.racecheck is None
    ex.run("ok", np.zeros(4), 4)
    # No shadow metadata was materialised on any buffer.
    assert all(buf.shadow_meta is None
               for buf in ex.interp.memory.buffers.values())


# ---------------------------------------------------------------------------
# MPI happens-before edges
# ---------------------------------------------------------------------------

def _mpi_cfg():
    return ExecConfig(sanitize=True)


def test_send_recv_creates_hb_edge():
    b = IRBuilder()
    with b.function("pp", [("buf", Ptr()), ("n", I64)],
                    arg_attrs=[NA, {}]) as f:
        buf, n = f.args
        r = b.call("mpi.comm_rank")
        with b.if_(b.cmp("eq", r, 0)):
            b.store(3.5, buf, 0)
            b.call("mpi.send", buf, n, 1, 7)
        with b.if_(b.cmp("eq", r, 1)):
            b.call("mpi.recv", buf, n, 0, 7)
            v = b.load(buf, 0)
            b.store(v * 2.0, buf, 1)
    mpi = SimMPI(b.module, nprocs=2, config=_mpi_cfg())
    mpi.run("pp", lambda r: (np.zeros(4), 4))
    assert mpi.races == []


def test_pre_recv_access_is_ordered_before_delivery():
    """A blocking recv posted *after* a local load cannot race with it."""
    b = IRBuilder()
    with b.function("k", [("buf", Ptr()), ("n", I64)],
                    arg_attrs=[NA, {}]) as f:
        buf, n = f.args
        r = b.call("mpi.comm_rank")
        v = b.load(buf, 0)            # before the recv is posted
        with b.if_(b.cmp("eq", r, 0)):
            b.store(v, buf, 1)
            b.call("mpi.send", buf, n, 1, 5)
        with b.if_(b.cmp("eq", r, 1)):
            b.call("mpi.recv", buf, n, 0, 5)
    mpi = SimMPI(b.module, nprocs=2, config=_mpi_cfg())
    mpi.run("k", lambda r: (np.zeros(4), 4))
    assert mpi.races == []


def test_irecv_window_access_races_with_delivery():
    b = IRBuilder()
    with b.function("iw", [("buf", Ptr()), ("n", I64)],
                    arg_attrs=[NA, {}]) as f:
        buf, n = f.args
        r = b.call("mpi.comm_rank")
        with b.if_(b.cmp("eq", r, 0)):
            b.store(1.0, buf, 0)
            b.call("mpi.send", buf, n, 1, 3)
        with b.if_(b.cmp("eq", r, 1)):
            req = b.call("mpi.irecv", buf, n, 0, 3)
            v = b.load(buf, 0)        # inside the in-flight window
            b.call("mpi.wait", req)
            b.store(v, buf, 1)
    mpi = SimMPI(b.module, nprocs=2, config=_mpi_cfg())
    with pytest.raises(RaceReport) as exc:
        mpi.run("iw", lambda r: (np.zeros(4), 4))
    assert "delivery" in str(exc.value)


def test_collectives_join_all_ranks():
    b = IRBuilder()
    with b.function("ar", [("s", Ptr()), ("d", Ptr()), ("n", I64)],
                    arg_attrs=[NA, NA, {}]) as f:
        s, d, n = f.args
        r = b.call("mpi.comm_rank")
        b.store(b.itof(r), s, 0)
        b.call("mpi.allreduce", s, d, n, op="sum")
        v = b.load(d, 0)
        b.store(v, s, 1)
    mpi = SimMPI(b.module, nprocs=4, config=_mpi_cfg())
    mpi.run("ar", lambda r: (np.zeros(4), np.zeros(4), 4))
    assert mpi.races == []


# ---------------------------------------------------------------------------
# Checker primitives
# ---------------------------------------------------------------------------

def test_vector_clock_primitives():
    ck = RaceChecker()
    main = ck.new_thread("main")
    kids = ck.region_begin(main, 3, "r")
    assert len(kids) == 3 and len({ck.label(t) for t in kids}) == 3
    ck.barrier(kids)
    ck.region_end(main, kids)
    t = ck.task_begin(main, "t")
    ck.task_join(main, t)
    snap = ck.snapshot(main)
    other = ck.new_thread("other")
    ck.join_snapshot(other, snap)
    assert ck.reports == []
