"""Static MPI communication analyzer + adjoint-duality verifier.

Covers the symbolic endpoint extraction, every graph check (p2p
matching, collectives, request lifetimes, in-flight buffer accesses,
rendezvous deadlocks), the Fig. 5 duality verification on generated
gradients (including seeded-mutation detection), and the LULESH /
miniBUDE acceptance gates.
"""

import numpy as np
import pytest

from repro.ad import ADConfig, Duplicated, autodiff
from repro.interp import ExecConfig, InterpreterError
from repro.ir import F64, I64, IRBuilder, Ptr, verify_module
from repro.ir.values import Constant
from repro.parallel import SimMPI
from repro.passes.pass_manager import commcheck_pipeline
from repro.sanitize.commcheck import (
    CommCheckError,
    commcheck_function,
    verify_duality,
)


def codes(report):
    return {d.code for d in report.diagnostics}


def error_codes(report):
    return {d.code for d in report.errors}


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------

def ring_module(blocking: bool = False):
    """The Fig. 5 ring: isend right, irecv left, wait both, cube."""
    b = IRBuilder()
    with b.function("ring", [("x", Ptr()), ("y", Ptr()),
                             ("n", I64)]) as f:
        x, y, n = f.args
        rank = b.call("mpi.comm_rank")
        size = b.call("mpi.comm_size")
        nxt = (rank + 1) % size
        prv = (rank + size - 1) % size
        tmp = b.alloc(n, name="tmp")
        if blocking:
            b.call("mpi.send", x, n, nxt, 7)
            b.call("mpi.recv", tmp, n, prv, 7)
        else:
            r1 = b.call("mpi.isend", x, n, nxt, 7)
            r2 = b.call("mpi.irecv", tmp, n, prv, 7)
            b.call("mpi.wait", r1)
            b.call("mpi.wait", r2)
        with b.parallel_for(0, n) as i:
            t = b.load(tmp, i)
            b.store(t * t * t, y, i)
    verify_module(b.module)
    return b.module


def simple_module(name, body):
    b = IRBuilder()
    with b.function(name, [("buf", Ptr()), ("out", Ptr()),
                           ("n", I64)]) as f:
        body(b, f)
    return b.module


def head_to_head_module():
    """Symmetric exchange where every rank Sends before it Recvs."""
    def body(b, f):
        buf, out, n = f.args
        rank = b.call("mpi.comm_rank")
        size = b.call("mpi.comm_size")
        peer = b.sub(b.sub(size, 1), rank)
        b.call("mpi.send", buf, n, peer, 1)
        b.call("mpi.recv", out, n, peer, 1)
    return simple_module("hh", body)


# ---------------------------------------------------------------------------
# Clean programs and the symbolic summary
# ---------------------------------------------------------------------------

def test_ring_clean_across_sizes():
    rep = commcheck_function("ring", ring_module(), sizes=(2, 3, 5))
    assert rep.clean
    assert rep.checked


def test_symbolic_summary_tracks_rank_arithmetic():
    rep = commcheck_function("ring", ring_module(), sizes=(2,))
    peers = [row["peer"] for row in rep.summary if row["kind"] == "isend"]
    assert peers and all("rank" in p and "size" in p for p in peers)
    kinds = [row["kind"] for row in rep.summary]
    assert "isend" in kinds and "irecv" in kinds and "wait" in kinds


def test_function_without_comm_is_skipped():
    def body(b, f):
        b.store(1.0, f.args[0], 0)
    rep = commcheck_function("pure", simple_module("pure", body))
    assert not rep.checked
    assert rep.clean


# ---------------------------------------------------------------------------
# Point-to-point graph checks
# ---------------------------------------------------------------------------

def test_unmatched_send():
    def body(b, f):
        rank = b.call("mpi.comm_rank")
        with b.if_(b.cmp("eq", rank, 0)):
            b.call("mpi.send", f.args[0], f.args[2], 1, 3)
    rep = commcheck_function("um", simple_module("um", body), sizes=(2,))
    assert "unmatched-p2p" in error_codes(rep)


def test_count_mismatch():
    def body(b, f):
        rank = b.call("mpi.comm_rank")
        with b.if_(b.cmp("eq", rank, 0)):
            b.call("mpi.send", f.args[0], 10, 1, 3)
        with b.else_():
            b.call("mpi.recv", f.args[1], 20, 0, 3)
    rep = commcheck_function("cm", simple_module("cm", body), sizes=(2,))
    assert "count-mismatch" in error_codes(rep)


def test_tag_typo_gets_near_miss_hint():
    def body(b, f):
        rank = b.call("mpi.comm_rank")
        with b.if_(b.cmp("eq", rank, 0)):
            b.call("mpi.send", f.args[0], 10, 1, 3)
        with b.else_():
            b.call("mpi.recv", f.args[1], 10, 0, 4)
    rep = commcheck_function("tt", simple_module("tt", body), sizes=(2,))
    assert "unmatched-p2p" in error_codes(rep)
    assert any("tag" in d.message and "exists" in d.message
               for d in rep.errors)


def test_peer_out_of_range():
    def body(b, f):
        b.call("mpi.send", f.args[0], f.args[2], 5, 1)
        b.call("mpi.recv", f.args[1], f.args[2], 5, 1)
    rep = commcheck_function("oor", simple_module("oor", body), sizes=(2,))
    assert "peer-out-of-range" in error_codes(rep)


# ---------------------------------------------------------------------------
# Collectives
# ---------------------------------------------------------------------------

def test_collective_divergence_on_guard():
    def body(b, f):
        rank = b.call("mpi.comm_rank")
        with b.if_(b.cmp("eq", rank, 0)):
            b.call("mpi.allreduce", f.args[0], f.args[1], f.args[2],
                   op="sum")
    rep = commcheck_function("cd", simple_module("cd", body), sizes=(2,))
    assert "collective-divergence" in error_codes(rep)


def test_collective_count_divergence():
    def body(b, f):
        rank = b.call("mpi.comm_rank")
        cnt = b.select(b.cmp("eq", rank, 0), b.const(4, I64),
                       b.const(8, I64))
        b.call("mpi.allreduce", f.args[0], f.args[1], cnt, op="sum")
    rep = commcheck_function("cc", simple_module("cc", body), sizes=(2,))
    assert "collective-divergence" in error_codes(rep)


# ---------------------------------------------------------------------------
# Request lifetimes and in-flight windows
# ---------------------------------------------------------------------------

def _ring_posts(b, f):
    rank = b.call("mpi.comm_rank")
    size = b.call("mpi.comm_size")
    nxt = (rank + 1) % size
    prv = (rank + size - 1) % size
    r1 = b.call("mpi.isend", f.args[0], f.args[2], nxt, 7)
    r2 = b.call("mpi.irecv", f.args[1], f.args[2], prv, 7)
    return r1, r2


def test_missing_and_double_wait():
    def body(b, f):
        r1, r2 = _ring_posts(b, f)
        b.call("mpi.wait", r1)
        b.call("mpi.wait", r1)      # double; r2 never waited
    rep = commcheck_function("mw", simple_module("mw", body), sizes=(2,))
    got = error_codes(rep)
    assert "missing-wait" in got and "double-wait" in got


def test_inflight_write():
    def body(b, f):
        r1, r2 = _ring_posts(b, f)
        b.store(1.5, f.args[0], 0)      # isend buffer still in flight
        b.call("mpi.wait", r1)
        b.call("mpi.wait", r2)
    rep = commcheck_function("iw", simple_module("iw", body), sizes=(2,))
    assert "inflight-write" in error_codes(rep)


def test_waited_ring_has_no_lifetime_findings():
    def body(b, f):
        r1, r2 = _ring_posts(b, f)
        b.call("mpi.wait", r1)
        b.call("mpi.wait", r2)
        b.store(1.5, f.args[0], 0)      # after wait: fine
    rep = commcheck_function("ok", simple_module("ok", body), sizes=(2, 3))
    assert rep.clean


# ---------------------------------------------------------------------------
# Rendezvous deadlocks: static flag + dynamic reproduction
# ---------------------------------------------------------------------------

def test_head_to_head_flagged_statically():
    rep = commcheck_function("hh", head_to_head_module(), sizes=(2,))
    assert "rendezvous-deadlock" in error_codes(rep)


def test_head_to_head_dynamic_eager_vs_rendezvous():
    """The same exchange passes under eager sends and deadlocks under
    rendezvous — the gap commcheck closes statically."""
    module = head_to_head_module()
    n = 3

    def make_args():
        return [(np.arange(1.0, n + 1) * (r + 1), np.zeros(n), n)
                for r in range(2)]

    args = make_args()
    SimMPI(module, 2, ExecConfig()).run("hh", lambda r: args[r])
    np.testing.assert_allclose(args[0][1], np.arange(1.0, n + 1) * 2)

    args = make_args()
    with pytest.raises(InterpreterError, match="deadlock"):
        SimMPI(module, 2, ExecConfig(),
               rendezvous_sends=True).run("hh", lambda r: args[r])


def test_blocking_ring_deadlock_matches_static_verdict():
    module = ring_module(blocking=True)
    rep = commcheck_function("ring", module, sizes=(3,))
    assert "rendezvous-deadlock" in error_codes(rep)
    n = 2
    bufs = [(np.ones(n), np.zeros(n), n) for _ in range(3)]
    with pytest.raises(InterpreterError, match="deadlock"):
        SimMPI(module, 3, ExecConfig(),
               rendezvous_sends=True).run("ring", lambda r: bufs[r])


def test_ordered_exchange_clean_and_runs_under_rendezvous():
    def body(b, f):
        buf, out, n = f.args
        rank = b.call("mpi.comm_rank")
        peer = b.sub(1, rank)
        with b.if_(b.cmp("eq", rank, 0)):
            b.call("mpi.send", buf, n, peer, 1)
            b.call("mpi.recv", out, n, peer, 2)
        with b.else_():
            b.call("mpi.recv", out, n, peer, 1)
            b.call("mpi.send", buf, n, peer, 2)
    module = simple_module("ord", body)
    rep = commcheck_function("ord", module, sizes=(2,))
    assert rep.clean
    n = 3
    args = [(np.ones(n) * (r + 1), np.zeros(n), n) for r in range(2)]
    SimMPI(module, 2, ExecConfig(),
           rendezvous_sends=True).run("ord", lambda r: args[r])
    np.testing.assert_allclose(args[0][1], 2.0)


# ---------------------------------------------------------------------------
# Warnings (possibly-spurious side of the severity model)
# ---------------------------------------------------------------------------

def test_guarded_comm_warns_not_errors():
    def body(b, f):
        flag = b.load(f.args[0], 0)
        with b.if_(b.cmp("gt", flag, 0.0)):
            b.call("mpi.barrier")
    rep = commcheck_function("gc", simple_module("gc", body), sizes=(2,))
    assert "guarded-comm" in codes(rep)
    assert not rep.errors


def test_comm_in_while_loop_warns():
    def body(b, f):
        with b.while_() as it:
            b.call("mpi.barrier")
            b.loop_while(b.cmp("lt", it, f.args[2]))
    rep = commcheck_function("wl", simple_module("wl", body), sizes=(2,))
    assert "comm-in-loop" in codes(rep)
    assert not rep.errors


# ---------------------------------------------------------------------------
# Adjoint duality (Fig. 5)
# ---------------------------------------------------------------------------

def build_ring_gradient(blocking: bool = False):
    module = ring_module(blocking)
    grad = autodiff(module, "ring", [Duplicated, Duplicated, None])
    return module, grad


def test_nonblocking_ring_duality_clean():
    module, grad = build_ring_gradient(False)
    rep = verify_duality(module, "ring", grad, sizes=(2, 3, 5))
    assert rep.duality
    assert not rep.errors


def test_blocking_ring_duality_holds_despite_deadlock():
    """The blocking ring's adjoint is still the exact transpose; the
    only error is the (true-positive) rendezvous deadlock the primal
    pattern itself has."""
    module, grad = build_ring_gradient(True)
    rep = verify_duality(module, "ring", grad, sizes=(2, 3))
    assert error_codes(rep) == {"rendezvous-deadlock"}


@pytest.mark.parametrize("collective,dual_codes", [
    ("allreduce_sum", set()),
    ("allreduce_min", set()),
    ("bcast", set()),
    ("reduce", set()),
])
def test_collective_duality_clean(collective, dual_codes):
    b = IRBuilder()
    with b.function("c", [("x", Ptr()), ("y", Ptr()), ("n", I64)]) as f:
        x, y, n = f.args
        if collective == "allreduce_sum":
            tot = b.alloc(n)
            b.call("mpi.allreduce", x, tot, n, op="sum")
            with b.parallel_for(0, n) as i:
                t = b.load(tot, i)
                b.store(t * t, y, i)
        elif collective == "allreduce_min":
            m = b.alloc(1)
            b.call("mpi.allreduce", x, m, 1, op="min")
            b.store(b.load(m, 0) * 10.0, y, 0)
        elif collective == "bcast":
            b.call("mpi.bcast", x, n, 0)
            with b.parallel_for(0, n) as i:
                b.store(b.load(x, i) * 2.0, y, i)
        else:
            tot = b.alloc(n)
            b.call("mpi.reduce", x, tot, n, 0, op="sum")
            rank = b.call("mpi.comm_rank")
            with b.if_(b.cmp("eq", rank, 0)):
                with b.parallel_for(0, n) as i:
                    b.store(b.load(tot, i) * 3.0, y, i)
    grad = autodiff(b.module, "c", [Duplicated, Duplicated, None])
    rep = verify_duality(b.module, "c", grad, sizes=(2, 3))
    assert error_codes(rep) == dual_codes


def test_adconfig_commcheck_hook():
    module = ring_module(False)
    grad = autodiff(module, "ring", [Duplicated, Duplicated, None],
                    ADConfig(commcheck=(2, 3)))
    assert grad in module.functions


# ---------------------------------------------------------------------------
# Seeded mutations of the Fig. 5 gradient pattern
# ---------------------------------------------------------------------------

def _calls(fn, callee):
    return [op for op in fn.walk()
            if op.opcode == "call" and op.attrs.get("callee") == callee]


def _mutant(module, grad, name):
    return module.clone_function(grad, name)


def test_mutation_flipped_peer_detected():
    module, grad = build_ring_gradient(False)
    mut = _mutant(module, grad, "mut_peer")
    rec_send = _calls(mut, "mpid.record_send")[0]
    rec_recv = _calls(mut, "mpid.record_recv")[0]
    # Swap the adjoint isend's destination for the isend's (the
    # transpose now points the wrong way around the ring).
    rec_recv.operands[2] = rec_send.operands[2]
    rep = verify_duality(module, "ring", "mut_peer", sizes=(3,))
    assert "duality-p2p" in error_codes(rep)


def test_mutation_wrong_tag_detected():
    module, grad = build_ring_gradient(False)
    mut = _mutant(module, grad, "mut_tag")
    rec_recv = _calls(mut, "mpid.record_recv")[0]
    rec_recv.operands[3] = Constant(99, I64)
    rep = verify_duality(module, "ring", "mut_tag", sizes=(2, 3))
    assert "duality-p2p" in error_codes(rep)


def test_mutation_shadow_swapped_for_primal_detected():
    module, grad = build_ring_gradient(False)
    mut = _mutant(module, grad, "mut_shadow")
    clone = _calls(mut, "mpi.isend")[0]
    rec_send = _calls(mut, "mpid.record_send")[0]
    rec_send.operands[0] = clone.operands[0]    # primal buf, not shadow
    rep = verify_duality(module, "ring", "mut_shadow", sizes=(2,))
    assert "shadow-is-primal" in error_codes(rep)


def test_mutation_dropped_adjoint_wait_detected():
    module, grad = build_ring_gradient(False)
    mut = _mutant(module, grad, "mut_wait")
    fin = _calls(mut, "mpid.finish_send")[0]
    fin.parent.remove(fin)
    rep = verify_duality(module, "ring", "mut_wait", sizes=(2,))
    assert "missing-wait" in error_codes(rep)


def test_unmutated_clone_still_clean():
    module, grad = build_ring_gradient(False)
    _mutant(module, grad, "mut_none")
    rep = verify_duality(module, "ring", "mut_none", sizes=(2, 3))
    assert not rep.errors


# ---------------------------------------------------------------------------
# Pass-manager integration
# ---------------------------------------------------------------------------

def test_commcheck_pipeline_collects_reports():
    module = ring_module(False)
    pm = commcheck_pipeline(sizes=(2, 3))
    pm.run(module)
    results = pm.passes[0].results
    assert "ring" in results and results["ring"].clean


def test_commcheck_pipeline_raises_on_error():
    module = head_to_head_module()
    pm = commcheck_pipeline(sizes=(2,), on_error="raise")
    with pytest.raises(CommCheckError, match="rendezvous-deadlock|hh"):
        pm.run(module)


# ---------------------------------------------------------------------------
# Acceptance gates: LULESH and miniBUDE (paper §VII apps)
# ---------------------------------------------------------------------------

def test_lulesh_mpi_primal_clean():
    from repro.apps.lulesh.driver import LuleshApp
    app = LuleshApp("mpi", 2, pr=2)
    rep = commcheck_function(app.fn, app.module, sizes=(app.nprocs,),
                             bindings={"steps": 2})
    assert not rep.errors


def test_lulesh_mpi_duality():
    from repro.apps.lulesh.driver import LuleshApp
    app = LuleshApp("mpi", 2, pr=2)
    rep = verify_duality(app.module, app.fn, app.grad_fn(),
                         sizes=(app.nprocs,), bindings={"steps": 2})
    assert not rep.errors


def test_minibude_mpi_primal_clean():
    from repro.apps.minibude.deck import make_deck
    from repro.apps.minibude.driver import MinibudeApp
    app = MinibudeApp("mpi", make_deck(6, 3, 8))
    rep = commcheck_function(app.fn, app.module, sizes=(2, 4))
    assert not rep.errors


def test_minibude_mpi_duality():
    from repro.apps.minibude.deck import make_deck
    from repro.apps.minibude.driver import MinibudeApp
    app = MinibudeApp("mpi", make_deck(6, 3, 8))
    rep = verify_duality(app.module, app.fn, app.grad_fn(),
                         sizes=(2, 4))
    assert not rep.errors
