"""Static shadow-race lint: per-access rules, pairwise rules, severities."""

from __future__ import annotations

import json

import pytest

from repro.ir import F64, I64, IRBuilder, Ptr
from repro.passes.pass_manager import sanitize_pipeline
from repro.sanitize import LintError, lint_function, lint_module

NA = {"noalias": True}


def _lint(b, name):
    return lint_function(b.module.functions[name], b.module)


def _codes(res):
    return [(d.severity, d.code) for d in res.diagnostics]


# ---------------------------------------------------------------------------
# Per-access classification
# ---------------------------------------------------------------------------

def test_uniform_store_in_parallel_is_error():
    b = IRBuilder()
    with b.function("f", [("x", Ptr()), ("n", I64)], arg_attrs=[NA, {}]) as f:
        x, n = f.args
        with b.parallel_for(0, n) as i:
            b.store(1.0, x, 0)
    res = _lint(b, "f")
    assert _codes(res) == [("error", "shared-store")]
    assert not res.clean
    # Provenance names the op and the enclosing region.
    assert "store 1.0, %x[0]" in res.render()
    assert "parallel_for" in res.render()


def test_disjoint_store_clean():
    b = IRBuilder()
    with b.function("f", [("x", Ptr()), ("n", I64)], arg_attrs=[NA, {}]) as f:
        x, n = f.args
        with b.parallel_for(0, n) as i:
            v = b.load(x, i)
            b.store(v * 2.0, x, i)
    assert _lint(b, "f").clean


def test_unknown_index_store_is_warn():
    b = IRBuilder()
    with b.function("f", [("x", Ptr()), ("idx", Ptr(I64)), ("n", I64)],
                    arg_attrs=[NA, NA, {}]) as f:
        x, idx, n = f.args
        with b.parallel_for(0, n) as i:
            j = b.load(idx, i)
            b.store(1.0, x, j)
    res = _lint(b, "f")
    assert ("warn", "unproven-store") in _codes(res)
    assert res.errors == []


def test_atomic_uniform_clean():
    b = IRBuilder()
    with b.function("f", [("x", Ptr()), ("n", I64)], arg_attrs=[NA, {}]) as f:
        x, n = f.args
        with b.parallel_for(0, n) as i:
            b.atomic_add(1.0, x, 0)
    assert _lint(b, "f").clean


def test_thread_local_alloc_clean():
    b = IRBuilder()
    with b.function("f", [("x", Ptr()), ("n", I64)], arg_attrs=[NA, {}]) as f:
        x, n = f.args
        with b.parallel_for(0, n) as i:
            tmp = b.alloc(4)
            b.store(1.0, tmp, 0)       # private to the iteration
            v = b.load(tmp, 0)
            b.store(v, x, i)
    assert _lint(b, "f").clean


def test_serial_code_is_never_flagged():
    b = IRBuilder()
    with b.function("f", [("x", Ptr()), ("n", I64)], arg_attrs=[NA, {}]) as f:
        x, n = f.args
        b.store(1.0, x, 0)
        b.store(2.0, x, 0)
    assert _lint(b, "f").clean


# ---------------------------------------------------------------------------
# Pairwise rules (fork regions, guards, barrier phases)
# ---------------------------------------------------------------------------

def test_guarded_uniform_store_needs_no_self_diagnostic():
    b = IRBuilder()
    with b.function("f", [("y", Ptr()), ("n", I64)], arg_attrs=[NA, {}]) as f:
        y, n = f.args
        with b.fork(0) as (tid, nth):
            with b.if_(b.cmp("eq", tid, 0)):
                b.store(1.0, y, 0)
    assert _lint(b, "f").clean


def test_guarded_conflict_same_cell_is_error():
    b = IRBuilder()
    with b.function("f", [("y", Ptr()), ("n", I64)], arg_attrs=[NA, {}]) as f:
        y, n = f.args
        with b.fork(0) as (tid, nth):
            with b.if_(b.cmp("eq", tid, 0)):
                b.store(1.0, y, 0)
            with b.if_(b.cmp("eq", tid, 1)):
                b.store(2.0, y, 0)
    res = _lint(b, "f")
    assert ("error", "guarded-conflict") in _codes(res)
    # The diagnostic names both operations.
    msg = res.render()
    assert "store 1.0" in msg and "store 2.0" in msg


def test_guarded_different_cells_clean():
    b = IRBuilder()
    with b.function("f", [("y", Ptr()), ("n", I64)], arg_attrs=[NA, {}]) as f:
        y, n = f.args
        with b.fork(0) as (tid, nth):
            with b.if_(b.cmp("eq", tid, 0)):
                b.store(1.0, y, 0)
            with b.if_(b.cmp("eq", tid, 1)):
                b.store(2.0, y, 1)
    assert _lint(b, "f").clean


def test_barrier_phases_separate_conflicting_accesses():
    b = IRBuilder()
    with b.function("f", [("y", Ptr()), ("n", I64)], arg_attrs=[NA, {}]) as f:
        y, n = f.args
        with b.fork(0) as (tid, nth):
            with b.if_(b.cmp("eq", tid, 0)):
                b.store(1.0, y, 0)
            b.barrier()
            v = b.load(y, 0)
            b.barrier()
            b.store(v, y, tid)
    assert _lint(b, "f").clean


def test_unordered_store_load_pair_is_flagged():
    b = IRBuilder()
    with b.function("f", [("y", Ptr()), ("n", I64)], arg_attrs=[NA, {}]) as f:
        y, n = f.args
        with b.fork(0) as (tid, nth):
            with b.if_(b.cmp("eq", tid, 0)):
                b.store(1.0, y, 0)
            v = b.load(y, 0)          # same phase as the guarded store
            b.store(v, y, tid)
    res = _lint(b, "f")
    assert not res.clean
    assert any(c == "concurrent-overlap" for _, c in _codes(res))


def test_noalias_suppresses_cross_argument_pairs():
    def build(attrs):
        b = IRBuilder()
        with b.function("f", [("a", Ptr()), ("c", Ptr()), ("n", I64)],
                        arg_attrs=attrs) as f:
            a, c, n = f.args
            with b.fork(0) as (tid, nth):
                v = b.load(c, 0)
                b.store(v, a, tid)
        return b
    # Possibly-aliasing args: the load of c may overlap the stores to a.
    assert not _lint(build([{}, {}, {}]), "f").clean
    # noalias proves the pairs apart.
    assert _lint(build([NA, NA, {}]), "f").clean


# ---------------------------------------------------------------------------
# MPI in-flight windows
# ---------------------------------------------------------------------------

def test_inflight_irecv_window_flagged():
    b = IRBuilder()
    with b.function("f", [("buf", Ptr()), ("n", I64)],
                    arg_attrs=[NA, {}]) as f:
        buf, n = f.args
        req = b.call("mpi.irecv", buf, n, 0, 3)
        v = b.load(buf, 0)
        b.call("mpi.wait", req)
        b.store(v, buf, 1)
    res = _lint(b, "f")
    assert ("warn", "inflight-recv") in _codes(res)


def test_access_after_wait_clean():
    b = IRBuilder()
    with b.function("f", [("buf", Ptr()), ("n", I64)],
                    arg_attrs=[NA, {}]) as f:
        buf, n = f.args
        req = b.call("mpi.irecv", buf, n, 0, 3)
        b.call("mpi.wait", req)
        v = b.load(buf, 0)
        b.store(v, buf, 1)
    assert _lint(b, "f").clean


# ---------------------------------------------------------------------------
# Reporting plumbing
# ---------------------------------------------------------------------------

def test_json_output_shape():
    b = IRBuilder()
    with b.function("f", [("x", Ptr()), ("n", I64)], arg_attrs=[NA, {}]) as f:
        x, n = f.args
        with b.parallel_for(0, n) as i:
            b.store(1.0, x, 0)
    payload = _lint(b, "f").to_json()
    json.dumps(payload)
    assert payload["tool"] == "lint" and payload["fn"] == "f"
    assert payload["counts"] == {"error": 1, "warn": 0}
    d = payload["diagnostics"][0]
    assert d["severity"] == "error" and d["code"] == "shared-store"
    assert "store" in d["op"]


def test_lint_module_and_pipeline_registration():
    b = IRBuilder()
    with b.function("bad", [("x", Ptr()), ("n", I64)],
                    arg_attrs=[NA, {}]) as f:
        x, n = f.args
        with b.parallel_for(0, n) as i:
            b.store(1.0, x, 0)
    with b.function("good", [("x", Ptr()), ("n", I64)],
                    arg_attrs=[NA, {}]) as f:
        x, n = f.args
        with b.parallel_for(0, n) as i:
            b.store(1.0, x, i)
    results = lint_module(b.module)
    assert not results["bad"].clean and results["good"].clean

    pm = sanitize_pipeline()
    assert pm.run(b.module) is False        # analysis-only: IR unchanged
    assert not pm.passes[0].results["bad"].clean

    with pytest.raises(LintError) as exc:
        sanitize_pipeline(on_error="raise").run(b.module)
    assert exc.value.result.fn == "bad"

    with pytest.raises(ValueError):
        sanitize_pipeline(on_error="explode")
