"""User-function calls, recursion guards, and event plumbing."""

import numpy as np
import pytest

from repro.interp import ExecConfig, Executor, InterpreterError
from repro.ir import F64, I64, IRBuilder, Ptr, verify_module

from ..conftest import run_verified


def test_call_inside_parallel_body_vectorizes():
    b = IRBuilder()
    with b.function("helper", [("v", F64)], ret=F64) as f:
        v = f.args[0]
        b.ret(b.sin(v) * v)
    with b.function("main", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        with b.parallel_for(0, n) as i:
            b.store(b.call("helper", b.load(x, i)), x, i)
    xs = np.linspace(0.1, 1.0, 8)
    expect = np.sin(xs) * xs
    run_verified(b, "main", xs, 8, num_threads=2)
    np.testing.assert_allclose(xs, expect)


def test_nested_calls():
    b = IRBuilder()
    with b.function("inner", [("v", F64)], ret=F64) as f:
        b.ret(f.args[0] + 1.0)
    with b.function("outer", [("v", F64)], ret=F64) as f:
        b.ret(b.call("inner", f.args[0]) * 2.0)
    with b.function("main", [("v", F64)], ret=F64) as f:
        b.ret(b.call("outer", f.args[0]))
    out, _ = run_verified(b, "main", 3.0)
    assert out == 8.0


def test_recursion_depth_guard():
    b = IRBuilder()
    with b.function("rec", [("v", F64)], ret=F64) as f:
        # unconditionally recursive: must trip the depth guard
        b.ret(b.call("rec", f.args[0]))
    verify_module(b.module)
    ex = Executor(b.module)
    with pytest.raises(InterpreterError, match="depth"):
        ex.run("rec", 1.0)


def test_mpi_without_engine_raises():
    b = IRBuilder()
    with b.function("m", [("x", Ptr())]) as f:
        b.call("mpi.send", f.args[0], 1, 0, 0)
    verify_module(b.module)
    ex = Executor(b.module)
    with pytest.raises(InterpreterError, match="SimMPI"):
        ex.run("m", np.zeros(1))


def test_mpi_inside_parallel_region_rejected():
    b = IRBuilder()
    with b.function("m", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        with b.parallel_for(0, n) as i:
            b.call("mpi.barrier")
    verify_module(b.module)
    from repro.parallel import mpi_run
    with pytest.raises(InterpreterError, match="parallel region"):
        mpi_run(b.module, "m", 2, lambda r: (np.zeros(2), 2))


def test_mpi_inside_spawn_rejected():
    b = IRBuilder()
    with b.function("m", [("x", Ptr())]) as f:
        with b.spawn() as t:
            b.call("mpi.barrier")
        b.call("task.wait", t)
    verify_module(b.module)
    from repro.parallel import mpi_run
    with pytest.raises(InterpreterError, match="parallel region|task"):
        mpi_run(b.module, "m", 2, lambda r: (np.zeros(1),))


def test_unknown_intrinsic_handler():
    from repro.ir.function import IntrinsicInfo
    from repro.ir.types import Void
    b = IRBuilder()
    b.module.register_intrinsic(IntrinsicInfo("weird.op", [], Void))
    with b.function("m", []) as f:
        b.call("weird.op")
    ex = Executor(b.module)
    with pytest.raises(InterpreterError, match="no handler"):
        ex.run("m")


def test_argument_count_mismatch():
    b = IRBuilder()
    with b.function("m", [("x", Ptr()), ("n", I64)]) as f:
        pass
    ex = Executor(b.module)
    with pytest.raises(TypeError, match="arguments"):
        ex.run("m", np.zeros(1))


def test_executor_reset_clock():
    b = IRBuilder()
    with b.function("m", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        with b.for_(0, n, simd=True) as i:
            b.store(b.sin(b.load(x, i)), x, i)
    ex = Executor(b.module)
    ex.run("m", np.ones(100), 100)
    assert ex.clock > 0
    ex.reset_clock()
    assert ex.clock == 0.0
    assert ex.cost.is_zero()
