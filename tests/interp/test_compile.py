"""Compiled backend: parity with the interpreter, fallback contract,
compile cache, and backend wiring."""

import numpy as np
import pytest

from repro.ad import Duplicated, autodiff
from repro.interp import (
    ExecConfig,
    Executor,
    InterpreterError,
    LoweringError,
    compile_function,
)
from repro.ir import F64, I64, IRBuilder, Ptr, verify_module
from repro.parallel import mpi_run


def run_both(module, fn_name, make_arrays, scalars=(), num_threads=1,
             strict=True):
    """Run ``fn_name`` under both backends (compiled in strict mode)
    and assert bit-identical buffers, simulated clock, and cost."""
    outs = {}
    for backend in ("interp", "compiled"):
        arrays = make_arrays()
        ex = Executor(module, ExecConfig(backend=backend,
                                         num_threads=num_threads))
        if backend == "compiled" and strict:
            ex.interp.backend.strict = True
        ret = ex.run(fn_name, *arrays, *scalars)
        outs[backend] = (arrays, ret, ex.clock, ex.cost.as_dict())
    ia, ir, ic, icost = outs["interp"]
    ca, cr, cc, ccost = outs["compiled"]
    for a, b in zip(ia, ca):
        np.testing.assert_array_equal(a, b)
    assert ir == cr
    assert ic == cc
    assert icost == ccost
    return outs["compiled"]


# ---------------------------------------------------------------------------
# Parity across the lowered constructs
# ---------------------------------------------------------------------------

def test_fork_workshare_barrier_parity():
    b = IRBuilder()
    with b.function("fk", [("x", Ptr()), ("acc", Ptr()), ("n", I64)]) as f:
        x, acc, n = f.args
        with b.fork(num_threads=3):
            with b.workshare(0, n) as i:
                b.store(b.mul(b.load(x, i), 2.0), x, i)
            b.barrier()
            with b.workshare(0, n, nowait=True) as i:
                b.atomic_add(b.load(x, i), acc)
    verify_module(b.module)
    n = 17
    arrays, _, _, _ = run_both(
        b.module, "fk",
        lambda: (np.arange(float(n)), np.zeros(1)), (n,), num_threads=3)
    np.testing.assert_allclose(arrays[1][0], 2.0 * np.arange(n).sum())


def test_while_dyncache_parity():
    b = IRBuilder()
    with b.function("wh", [("x", Ptr())]) as f:
        x = f.args[0]
        h = b.cache_create()
        with b.while_() as it:
            v = b.load(x, 0)
            b.cache_push(h, v)
            b.store(b.mul(v, 0.5), x, 0)
            b.loop_while(b.cmp("gt", b.load(x, 0), 1.0))
        # drain two entries back out (LIFO)
        b.store(b.cache_pop(h, F64), x, 1)
        b.store(b.cache_pop(h, F64), x, 2)
        _ = it
    verify_module(b.module)
    run_both(b.module, "wh", lambda: (np.array([40.0, 0.0, 0.0]),))


def test_spawn_wait_parity():
    b = IRBuilder()
    with b.function("sp", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        with b.spawn() as t1:
            with b.for_(0, n, simd=True) as i:
                b.store(b.add(b.load(x, i), 1.0), x, i)
        b.wait_task(t1)
        with b.spawn() as t2:
            b.store(b.mul(b.load(x, 0), 10.0), x, 0)
        b.wait_task(t2)
    verify_module(b.module)
    arrays, _, _, _ = run_both(
        b.module, "sp", lambda: (np.zeros(4),), (4,))
    np.testing.assert_allclose(arrays[0], [10.0, 1.0, 1.0, 1.0])


def test_masked_if_parity():
    b = IRBuilder()
    with b.function("mi", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        with b.for_(0, n, simd=True) as i:
            v = b.load(x, i)
            with b.if_(b.cmp("gt", v, 0.0)):
                b.store(b.sqrt(v), x, i)
            with b.else_():
                b.store(b.neg(v), x, i)
    verify_module(b.module)
    run_both(b.module, "mi",
             lambda: (np.array([4.0, -9.0, 0.0, 2.25, -1.0]),), (5,))


def test_atomic_kinds_parity():
    b = IRBuilder()
    with b.function("at", [("x", Ptr()), ("out", Ptr()), ("n", I64)]) as f:
        x, out, n = f.args
        with b.for_(0, n, simd=True) as i:
            v = b.load(x, i)
            b.atomic_add(v, out, 0)
            b.atomic_min(v, out, 1)
            b.atomic_max(v, out, 2)
    verify_module(b.module)
    arrays, _, _, _ = run_both(
        b.module, "at",
        lambda: (np.array([3.0, -7.0, 5.0]), np.zeros(3)), (3,))
    np.testing.assert_allclose(arrays[1], [1.0, -7.0, 5.0])


def test_alloc_privatization_in_simd_parity():
    b = IRBuilder()
    with b.function("pv", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        with b.for_(0, n, simd=True) as i:
            tmp = b.alloc(2)
            b.store(b.load(x, i), tmp, 0)
            b.store(b.mul(b.load(tmp, 0), 3.0), tmp, 1)
            b.store(b.load(tmp, 1), x, i)
    verify_module(b.module)
    arrays, _, _, _ = run_both(
        b.module, "pv", lambda: (np.arange(6.0),), (6,))
    np.testing.assert_allclose(arrays[0], 3.0 * np.arange(6.0))


def test_gradient_reverse_workshare_parity():
    """AD of a fork/workshare loop generates reverse-order worksharing
    and cache traffic; both backends must agree bit-for-bit."""
    b = IRBuilder()
    with b.function("g", [("x", Ptr()), ("y", Ptr()), ("n", I64)]) as f:
        x, y, n = f.args
        with b.fork(num_threads=2):
            with b.workshare(0, n) as i:
                v = b.load(x, i)
                b.store(b.mul(b.sin(v), v), y, i)
    verify_module(b.module)
    grad = autodiff(b.module, "g", [Duplicated, Duplicated, None])
    n = 9

    def make_arrays():
        x = np.linspace(0.1, 2.0, n)
        dx = np.zeros(n)
        y = np.zeros(n)
        dy = np.ones(n)
        return x, dx, y, dy

    arrays, _, _, _ = run_both(b.module, grad, make_arrays, (n,),
                               num_threads=2)
    x = np.linspace(0.1, 2.0, n)
    np.testing.assert_allclose(arrays[1], np.sin(x) + x * np.cos(x),
                               rtol=1e-12)


def test_user_function_call_parity():
    b = IRBuilder()
    with b.function("helper", [("x", Ptr()), ("i", I64)]) as f:
        x, i = f.args
        b.store(b.add(b.load(x, i), 100.0), x, i)
    with b.function("main", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        with b.for_(0, n) as i:
            b.call("helper", x, i)
    verify_module(b.module)
    arrays, _, _, _ = run_both(
        b.module, "main", lambda: (np.arange(3.0),), (3,))
    np.testing.assert_allclose(arrays[0], np.arange(3.0) + 100.0)


def test_mpi_parity_through_events():
    """Compiled code yields MPI events upward; SimMPI coordination and
    the simulated network clock must match the interpreter exactly."""
    b = IRBuilder()
    with b.function("pp", [("buf", Ptr()), ("n", I64)]) as f:
        buf, n = f.args
        rank = b.call("mpi.comm_rank")
        with b.if_(b.cmp("eq", rank, 0)):
            b.call("mpi.send", buf, n, 1, 5)
            b.call("mpi.recv", buf, n, 1, 6)
        with b.else_():
            tmp = b.alloc(n)
            b.call("mpi.recv", tmp, n, 0, 5)
            with b.for_(0, n, simd=True) as i:
                b.store(b.load(tmp, i) * 2.0, tmp, i)
            b.call("mpi.send", tmp, n, 0, 6)
    verify_module(b.module)

    results = {}
    for backend in ("interp", "compiled"):
        bufs = [np.arange(1.0, 4.0), np.zeros(3)]
        res = mpi_run(b.module, "pp", 2, lambda r: (bufs[r], 3),
                      config=ExecConfig(backend=backend))
        results[backend] = (bufs, res.time)
    np.testing.assert_array_equal(results["interp"][0][0],
                                  results["compiled"][0][0])
    np.testing.assert_allclose(results["interp"][0][0],
                               2 * np.arange(1.0, 4.0))
    assert results["interp"][1] == results["compiled"][1]
    fn = b.module.functions["pp"]
    assert getattr(fn, "_compiled_code", None) not in (None, False)


# ---------------------------------------------------------------------------
# Fallback contract and wiring
# ---------------------------------------------------------------------------

def _simple_module():
    b = IRBuilder()
    with b.function("f", [("x", Ptr())]) as f:
        x = f.args[0]
        b.store(b.add(b.load(x, 0), 1.0), x, 0)
    verify_module(b.module)
    return b.module


def test_unknown_backend_rejected():
    with pytest.raises(InterpreterError, match="unknown backend"):
        Executor(_simple_module(), ExecConfig(backend="bogus"))


def test_sanitize_pins_interpreter():
    ex = Executor(_simple_module(),
                  ExecConfig(backend="compiled", sanitize=True))
    assert ex.interp.backend is None
    x = np.zeros(1)
    ex.run("f", x)
    assert x[0] == 1.0


def test_tape_pins_interpreter():
    """An attached operator-overloading tape must route execution to
    the interpreter even when the compiled backend is active."""
    from repro.baselines.codipack import CoDiPackTape

    mod = _simple_module()
    ex = Executor(mod, ExecConfig(backend="compiled"))
    ex.interp.tape = CoDiPackTape(ex.interp)
    x = np.zeros(1)
    ex.run("f", x)
    assert x[0] == 1.0
    # the guard fires before compilation is ever attempted
    assert getattr(mod.functions["f"], "_compiled_code", None) is None


def test_lowering_failure_falls_back(monkeypatch):
    import repro.interp.compile as compile_mod

    def boom(fn, **kwargs):
        raise LoweringError("synthetic failure")

    monkeypatch.setattr(compile_mod, "compile_function", boom)
    mod = _simple_module()
    ex = Executor(mod, ExecConfig(backend="compiled"))
    x = np.zeros(1)
    ex.run("f", x)
    assert x[0] == 1.0
    fn = mod.functions["f"]
    assert fn._compiled_code is False
    assert "synthetic failure" in str(fn._compile_error)
    # strict mode surfaces the failure instead
    mod2 = _simple_module()
    ex2 = Executor(mod2, ExecConfig(backend="compiled"))
    ex2.interp.backend.strict = True
    with pytest.raises(LoweringError, match="synthetic failure"):
        ex2.run("f", np.zeros(1))


def test_compiled_code_cached_on_function():
    mod = _simple_module()
    fn = mod.functions["f"]
    ex = Executor(mod, ExecConfig(backend="compiled"))
    ex.run("f", np.zeros(1))
    code = fn._compiled_code
    assert code is not False and code is not None
    assert "def _compiled" in code.__lowered_source__
    ex2 = Executor(mod, ExecConfig(backend="compiled"))
    ex2.run("f", np.zeros(1))
    assert fn._compiled_code is code


def test_compile_function_source_is_inspectable():
    mod = _simple_module()
    code = compile_function(mod.functions["f"])
    src = code.__lowered_source__
    assert src.startswith("def _compiled(rt")
    assert "_ld(rt" in src and "_st(rt" in src
