"""Executor argument wrapping across element types."""

import numpy as np
import pytest

from repro.interp import ExecConfig, Executor
from repro.ir import F64, I1, I64, IRBuilder, Ptr, Task, verify_module


def test_bool_buffers():
    b = IRBuilder()
    with b.function("m", [("mask", Ptr(I1)), ("x", Ptr()), ("n", I64)]) as f:
        mask, x, n = f.args
        with b.for_(0, n, simd=True) as i:
            m = b.load(mask, i)
            b.store(b.select(m, b.load(x, i), 0.0), x, i)
    verify_module(b.module)
    xs = np.arange(1.0, 5.0)
    mk = np.array([True, False, True, False])
    Executor(b.module).run("m", mk, xs, 4)
    np.testing.assert_allclose(xs, [1.0, 0.0, 3.0, 0.0])


def test_int_buffers_and_results():
    b = IRBuilder()
    with b.function("c", [("idx", Ptr(I64)), ("n", I64)], ret=I64) as f:
        idx, n = f.args
        acc = b.alloc(1, I64)
        with b.for_(0, n) as i:
            b.store(b.load(acc, 0) + b.load(idx, i), acc, 0)
        b.ret(b.load(acc, 0))
    out = Executor(b.module).run("c", np.array([3, 5, 9], dtype=np.int64),
                                 3)
    assert out == 17


def test_object_buffers_for_handles():
    b = IRBuilder()
    with b.function("t", [("tasks", Ptr(Task)), ("x", Ptr())]) as f:
        tasks, x = f.args
        with b.spawn() as t:
            b.store(4.0, x, 0)
        b.store(t, tasks, 0)
        b.call("task.wait", b.load(tasks, 0))
    xs = np.zeros(1)
    Executor(b.module, ExecConfig(num_threads=2)).run(
        "t", np.empty(1, dtype=object), xs)
    assert xs[0] == 4.0


def test_handle_buffer_with_numeric_dtype_rejected():
    b = IRBuilder()
    with b.function("t", [("tasks", Ptr(Task))]) as f:
        pass
    with pytest.raises(TypeError, match="dtype=object"):
        Executor(b.module).run("t", np.zeros(1))


def test_no_dtype_for_handle_elem_is_typed_error():
    """_np_elem_dtype must raise a typed error for non-numeric element
    types instead of silently falling back to dtype=object."""
    from repro.interp import InterpreterError
    from repro.interp.executor import _np_elem_dtype

    assert _np_elem_dtype(F64) is np.float64
    assert _np_elem_dtype(I64) is np.int64
    assert _np_elem_dtype(I1) is np.bool_
    with pytest.raises(InterpreterError, match="no NumPy dtype"):
        _np_elem_dtype(Task)
    with pytest.raises(InterpreterError, match="no NumPy dtype"):
        _np_elem_dtype(Ptr())


def test_multidim_array_rejected():
    b = IRBuilder()
    with b.function("m", [("x", Ptr())]) as f:
        pass
    with pytest.raises(TypeError, match="1-D"):
        Executor(b.module).run("m", np.zeros((2, 2)))


def test_scalar_coercions():
    b = IRBuilder()
    with b.function("s", [("a", F64), ("k", I64), ("flag", I1)],
                    ret=F64) as f:
        a, k, flag = f.args
        b.ret(b.select(flag, a * b.itof(k), 0.0))
    out = Executor(b.module).run("s", 2, 3, 1)   # int->float, bool coercion
    assert out == 6.0
