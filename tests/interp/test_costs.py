"""Cost accounting: the interpreter's abstract counters."""

import numpy as np
import pytest

from repro.interp import ExecConfig, Executor
from repro.ir import F64, I64, IRBuilder, Ptr

from ..conftest import run_verified


def _run_and_cost(build, *args, num_threads=1):
    b = IRBuilder()
    build(b)
    fn = next(iter(b.module.functions))
    _r, ex = run_verified(b, fn, *args, num_threads=num_threads)
    return ex.cost, ex.clock


def test_flop_count_exact():
    def build(b):
        with b.function("f", [("x", Ptr()), ("n", I64)]) as f:
            x, n = f.args
            with b.parallel_for(0, n) as i:
                v = b.load(x, i)
                b.store(v * v + v, x, i)  # 2 flops per element
    cost, _ = _run_and_cost(build, np.ones(10), 10)
    assert cost.flops == 20
    assert cost.load_bytes == 80
    assert cost.store_bytes == 80


def test_special_and_div_classes():
    def build(b):
        with b.function("f", [("x", Ptr()), ("n", I64)]) as f:
            x, n = f.args
            with b.parallel_for(0, n) as i:
                v = b.load(x, i)
                b.store(b.sin(v) / b.sqrt(v + 1.0), x, i)
    cost, _ = _run_and_cost(build, np.ones(8), 8)
    assert cost.specials == 8     # sin
    assert cost.divs == 16        # sqrt + div
    assert cost.flops == 8        # the add


def test_masked_lanes_not_charged():
    def build(b):
        with b.function("f", [("x", Ptr()), ("n", I64)]) as f:
            x, n = f.args
            with b.parallel_for(0, n) as i:
                v = b.load(x, i)
                with b.if_(v > 0.0):
                    b.store(b.exp(v), x, i)
    xs = np.array([1.0, -1.0, 1.0, -1.0])
    cost, _ = _run_and_cost(build, xs, 4)
    assert cost.specials == 2     # only active lanes pay for exp


def test_atomic_counter():
    def build(b):
        with b.function("f", [("x", Ptr()), ("out", Ptr()), ("n", I64)]) as f:
            x, out, n = f.args
            with b.parallel_for(0, n) as i:
                b.atomic_add(b.load(x, i), out, 0)
    cost, _ = _run_and_cost(build, np.ones(6), np.zeros(1), 6)
    assert cost.atomic_ops == 6


def test_clock_monotone_with_work():
    def build_n(b, reps):
        with b.function("f", [("x", Ptr()), ("n", I64)]) as f:
            x, n = f.args
            with b.parallel_for(0, n) as i:
                v = b.load(x, i)
                for _ in range(reps):
                    v = b.sin(v)
                b.store(v, x, i)

    def clock(reps):
        b = IRBuilder()
        build_n(b, reps)
        _r, ex = run_verified(b, "f", np.ones(1000), 1000)
        return ex.clock

    assert clock(8) > clock(2) > 0


def test_parallel_region_faster_than_serial_region():
    b = IRBuilder()
    with b.function("f", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        with b.parallel_for(0, n) as i:
            v = b.load(x, i)
            b.store(b.sin(v) + b.cos(v) * b.exp(v), x, i)
    from repro.ir import verify_module
    verify_module(b.module)
    times = {}
    for nt in (1, 8):
        ex = Executor(b.module, ExecConfig(num_threads=nt))
        ex.run("f", np.ones(20000), 20000)
        times[nt] = ex.clock
    assert times[8] < times[1] / 3


def test_stream_buffers_counted_separately():
    from repro.ir.ops import AllocOp
    b = IRBuilder()
    with b.function("f", [("n", I64)]) as f:
        n = f.args[0]
        buf = b.alloc(n, name="c")
        buf.op.attrs["stream"] = True
        with b.for_(0, n, simd=True) as i:
            b.store(1.0, buf, i)
    _r, ex = run_verified(b, "f", 16)
    assert ex.cost.stream_bytes == 16 * 8
    assert ex.cost.store_bytes == 0


def test_gc_alloc_pays_zero_fill():
    b = IRBuilder()
    with b.function("f", [("n", I64)]) as f:
        b.alloc(f.args[0], space="gc")
    _r, ex = run_verified(b, "f", 64)
    assert ex.cost.stream_bytes == 64 * 8
