"""Trace fusion: the monotonicity algebra, the fusion statistics, and
the fusion on/off switch."""

import numpy as np
import pytest

from repro.interp import ExecConfig, Executor, compile_function
from repro.interp.fusion import (
    FUSE_OP_CAP,
    FusionStats,
    mono_add,
    mono_neg,
    mono_relax,
    mono_scale,
)
from repro.ir import I64, IRBuilder, Ptr, verify_module


# ---------------------------------------------------------------------------
# Monotonicity algebra
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("a,b,want", [
    (0, 0, 0),
    (0, 2, 2),          # uniform + strict keeps strictness
    (2, 0, 2),
    (1, 2, 2),          # non-strict + strict stays strict
    (2, 2, 2),
    (-2, -1, -2),
    (1, -1, None),      # opposing directions
    (2, -2, None),
    (None, 2, None),
    (1, None, None),
])
def test_mono_add(a, b, want):
    assert mono_add(a, b) == want


def test_mono_neg():
    assert mono_neg(2) == -2
    assert mono_neg(-1) == 1
    assert mono_neg(0) == 0
    assert mono_neg(None) is None


def test_mono_scale():
    assert mono_scale(2, 1) == 2
    assert mono_scale(2, -1) == -2
    assert mono_scale(1, -1) == -1
    assert mono_scale(2, 0) == 0
    assert mono_scale(0, -1) == 0
    assert mono_scale(None, 1) is None
    assert mono_scale(2, None) is None


def test_mono_relax_demotes_strictness():
    assert mono_relax(2) == 1
    assert mono_relax(-2) == -1
    assert mono_relax(1) == 1
    assert mono_relax(0) == 0
    assert mono_relax(None) is None


# ---------------------------------------------------------------------------
# Fusion statistics and the on/off switch
# ---------------------------------------------------------------------------

def _chain_module(nops: int):
    """One simd loop applying ``nops`` dependent elementwise ops."""
    b = IRBuilder()
    with b.function("chain", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        with b.for_(0, n, simd=True) as i:
            v = b.load(x, i)
            for _ in range(nops):
                v = b.add(b.mul(v, 1.0000001), 1e-9)
            b.store(v, x, i)
    verify_module(b.module)
    return b.module


def test_fusion_stats_count_folded_ops():
    mod = _chain_module(8)
    code = compile_function(mod.functions["chain"], fusion=True)
    st = code.__fusion_stats__
    assert isinstance(st, FusionStats)
    assert st.ops == 16           # 8 * (mul + add)
    # A single-use chain collapses into the store: every compute op is
    # folded, none needs its own kernel statement.
    assert st.fused_ops == 16
    assert st.kernels == 0
    assert st.as_dict()["fused_ops"] == 16


def test_unfused_lowering_emits_every_op():
    mod = _chain_module(8)
    code = compile_function(mod.functions["chain"], fusion=False)
    st = code.__fusion_stats__
    assert st.ops == 16
    assert st.fused_ops == 0
    assert st.kernels == 16


def test_fuse_op_cap_splits_long_chains():
    """A chain longer than FUSE_OP_CAP must split into >1 kernel
    instead of growing one unbounded expression."""
    nops = FUSE_OP_CAP + 10
    mod = _chain_module(nops)
    code = compile_function(mod.functions["chain"], fusion=True)
    st = code.__fusion_stats__
    assert st.ops == 2 * nops
    assert st.kernels >= 1            # at least one forced split
    assert st.fused_ops < st.ops
    # and the generated source stays within one expression per split
    assert "def _compiled" in code.__lowered_source__


def test_fusion_config_switch_same_results():
    mod = _chain_module(6)
    outs = {}
    for fusion in (True, False):
        x = np.linspace(-1, 1, 7)
        ex = Executor(mod, ExecConfig(backend="compiled", fusion=fusion))
        ex.interp.backend.strict = True
        ex.run("chain", x, 7)
        outs[fusion] = (x, ex.clock, ex.cost.as_dict())
    np.testing.assert_array_equal(outs[True][0], outs[False][0])
    assert outs[True][1] == outs[False][1]
    assert outs[True][2] == outs[False][2]


def test_fusion_flag_reaches_backend():
    mod = _chain_module(2)
    ex = Executor(mod, ExecConfig(backend="compiled", fusion=False))
    assert ex.interp.backend.fusion is False
    ex.run("chain", np.zeros(3), 3)
    stats = ex.compile_stats()
    assert stats["fusion"] is False
    assert stats["functions"] == 1
    assert stats["fused_ops"] == 0


def test_executor_compile_stats_none_for_interp():
    mod = _chain_module(1)
    ex = Executor(mod, ExecConfig(backend="interp"))
    ex.run("chain", np.zeros(2), 2)
    assert ex.compile_stats() is None
