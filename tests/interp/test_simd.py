"""Vectorized (SIMD) execution of parallel-loop bodies."""

import numpy as np
import pytest

from repro.interp import ExecConfig, Executor, InterpreterError
from repro.ir import F64, I64, IRBuilder, Ptr, verify_module

from ..conftest import run_verified


def test_parallel_for_matches_serial():
    results = []
    for parallel in (False, True):
        b = IRBuilder()
        with b.function("k", [("x", Ptr()), ("y", Ptr()), ("n", I64)]) as f:
            x, y, n = f.args
            ctx = b.parallel_for(0, n) if parallel else b.for_(0, n)
            with ctx as i:
                v = b.load(x, i)
                b.store(b.sin(v) * b.exp(v * 0.1) + v, y, i)
        xs = np.linspace(0.1, 2.0, 17)
        ys = np.zeros(17)
        run_verified(b, "k", xs, ys, 17, num_threads=4)
        results.append(ys.copy())
    np.testing.assert_allclose(results[0], results[1])


@pytest.mark.parametrize("nthreads", [1, 2, 3, 5, 8, 64])
def test_thread_count_invariance(nthreads):
    b = IRBuilder()
    with b.function("k", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        with b.parallel_for(0, n) as i:
            b.store(b.itof(i) * 2.0, x, i)
    xs = np.zeros(13)
    run_verified(b, "k", xs, 13, num_threads=nthreads)
    np.testing.assert_allclose(xs, 2.0 * np.arange(13))


def test_gather_scatter_indirection():
    b = IRBuilder()
    with b.function("g", [("x", Ptr()), ("idx", Ptr(I64)), ("y", Ptr()),
                          ("n", I64)]) as f:
        x, idx, y, n = f.args
        with b.parallel_for(0, n) as i:
            j = b.load(idx, i)
            b.store(b.load(x, j) * 10.0, y, i)
    xs = np.arange(1.0, 9.0)
    idx = np.array([3, 1, 0, 2], dtype=np.int64)
    ys = np.zeros(4)
    run_verified(b, "g", xs, idx, ys, 4, num_threads=2)
    np.testing.assert_allclose(ys, xs[idx] * 10.0)


def test_vector_if_masking():
    b = IRBuilder()
    with b.function("m", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        with b.parallel_for(0, n) as i:
            v = b.load(x, i)
            with b.if_(v > 0.0):
                b.store(b.sqrt(v), x, i)
            with b.else_():
                b.store(0.0, x, i)
    xs = np.array([4.0, -1.0, 9.0, -5.0, 16.0])
    run_verified(b, "m", xs, 5, num_threads=2)
    np.testing.assert_allclose(xs, [2.0, 0.0, 3.0, 0.0, 4.0])


def test_nested_vector_if():
    b = IRBuilder()
    with b.function("m2", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        with b.parallel_for(0, n) as i:
            v = b.load(x, i)
            with b.if_(v > 0.0):
                with b.if_(v > 10.0):
                    b.store(100.0, x, i)
                with b.else_():
                    b.store(1.0, x, i)
    xs = np.array([-3.0, 5.0, 20.0])
    run_verified(b, "m2", xs, 3)
    np.testing.assert_allclose(xs, [-3.0, 1.0, 100.0])


def test_masked_division_no_crash():
    """Inactive lanes may divide by zero; masking must protect them."""
    b = IRBuilder()
    with b.function("d", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        with b.parallel_for(0, n) as i:
            v = b.load(x, i)
            with b.if_(b.cmp("ne", v, 0.0)):
                b.store(1.0 / v, x, i)
    xs = np.array([2.0, 0.0, 4.0])
    run_verified(b, "d", xs, 3)
    np.testing.assert_allclose(xs, [0.5, 0.0, 0.25])


def test_masked_gather_oob_index_protected():
    """Masked-off lanes may compute garbage indices; loads are
    neutralized rather than trapping."""
    b = IRBuilder()
    with b.function("gg", [("x", Ptr()), ("idx", Ptr(I64)), ("n", I64)]) as f:
        x, idx, n = f.args
        with b.parallel_for(0, n) as i:
            j = b.load(idx, i)
            with b.if_(b.cmp("ge", j, 0)):
                b.store(b.load(x, j) + 1.0, x, i)
    xs = np.array([1.0, 2.0, 3.0])
    idx = np.array([2, -99, 0], dtype=np.int64)
    run_verified(b, "gg", xs, idx, 3)
    np.testing.assert_allclose(xs, [4.0, 2.0, 2.0])


def test_serial_inner_loop_inside_parallel_body():
    b = IRBuilder()
    with b.function("inner", [("x", Ptr()), ("y", Ptr()), ("n", I64)]) as f:
        x, y, n = f.args
        with b.parallel_for(0, n) as i:
            acc = b.load(y, i)
            with b.for_(0, 3) as k:
                acc2 = b.load(y, i) + b.load(x, i)
                b.store(acc2, y, i)
            del acc
    xs = np.ones(5)
    ys = np.zeros(5)
    run_verified(b, "inner", xs, ys, 5, num_threads=2)
    np.testing.assert_allclose(ys, 3.0)


def test_atomic_add_duplicate_indices():
    b = IRBuilder()
    with b.function("hist", [("x", Ptr()), ("idx", Ptr(I64)), ("out", Ptr()),
                             ("n", I64)]) as f:
        x, idx, out, n = f.args
        with b.parallel_for(0, n) as i:
            b.atomic_add(b.load(x, i), out, b.load(idx, i))
    xs = np.ones(6)
    idx = np.array([0, 1, 0, 1, 0, 2], dtype=np.int64)
    out = np.zeros(3)
    run_verified(b, "hist", xs, idx, out, 6, num_threads=3)
    np.testing.assert_allclose(out, [3.0, 2.0, 1.0])


def test_atomic_min_max():
    b = IRBuilder()
    with b.function("mm", [("x", Ptr()), ("lo", Ptr()), ("hi", Ptr()),
                           ("n", I64)]) as f:
        x, lo, hi, n = f.args
        with b.parallel_for(0, n) as i:
            v = b.load(x, i)
            b.atomic_min(v, lo, 0)
            b.atomic_max(v, hi, 0)
    xs = np.array([3.0, -7.0, 12.0, 0.5])
    lo, hi = np.array([1e30]), np.array([-1e30])
    run_verified(b, "mm", xs, lo, hi, 4, num_threads=2)
    assert lo[0] == -7.0 and hi[0] == 12.0


def test_simd_for_outside_parallel():
    b = IRBuilder()
    with b.function("sf", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        with b.for_(0, n, simd=True) as i:
            b.store(b.itof(i), x, i)
    xs = np.zeros(5)
    run_verified(b, "sf", xs, 5)
    np.testing.assert_allclose(xs, np.arange(5.0))


def test_data_dependent_while_in_simd_rejected():
    b = IRBuilder()
    with b.function("bad", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        with b.parallel_for(0, n) as i:
            with b.while_() as it:
                v = b.load(x, i)
                b.store(v * 0.5, x, i)
                b.loop_while(v > 1.0)
    verify_module(b.module)
    ex = Executor(b.module, ExecConfig(num_threads=2))
    with pytest.raises(InterpreterError, match="vectorized"):
        ex.run("bad", np.array([8.0, 1.0, 2.0]), 3)


def test_zero_trip_parallel_for():
    b = IRBuilder()
    with b.function("z", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        with b.parallel_for(0, n) as i:
            b.store(1.0, x, i)
    xs = np.zeros(3)
    run_verified(b, "z", xs, 0, num_threads=4)
    np.testing.assert_allclose(xs, 0.0)
