import numpy as np
import pytest

from repro.interp import ExecConfig, Executor, InterpreterError
from repro.ir import F64, I64, IRBuilder, Ptr

from ..conftest import run_verified


def test_scalar_arith():
    b = IRBuilder()
    with b.function("f", [("a", F64), ("c", F64)], ret=F64) as f:
        a, c = f.args
        b.ret(a * a + b.sqrt(c) - 1.0)
    out, _ = run_verified(b, "f", 3.0, 16.0)
    assert out == pytest.approx(9.0 + 4.0 - 1.0)


def test_integer_ops():
    b = IRBuilder()
    with b.function("g", [("k", I64)], ret=F64) as f:
        k = f.args[0]
        q = (k * 3 + 1) // 2
        r = k % 4
        b.ret(b.itof(q + r))
    out, _ = run_verified(b, "g", 9)
    assert out == ((9 * 3 + 1) // 2 + 9 % 4)


def test_serial_loop_accumulation():
    b = IRBuilder()
    with b.function("sumsq", [("x", Ptr()), ("n", I64)], ret=F64) as f:
        x, n = f.args
        acc = b.alloc(1)
        with b.for_(0, n) as i:
            v = b.load(x, i)
            b.store(b.load(acc, 0) + v * v, acc, 0)
        b.ret(b.load(acc, 0))
    xs = np.arange(1.0, 6.0)
    out, _ = run_verified(b, "sumsq", xs, 5)
    assert out == pytest.approx((xs ** 2).sum())


def test_loop_with_step():
    b = IRBuilder()
    with b.function("evens", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        with b.for_(0, n, step=2) as i:
            b.store(1.0, x, i)
    xs = np.zeros(7)
    run_verified(b, "evens", xs, 7)
    np.testing.assert_array_equal(xs, [1, 0, 1, 0, 1, 0, 1])


def test_if_else():
    b = IRBuilder()
    with b.function("clamp", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        with b.for_(0, n) as i:
            v = b.load(x, i)
            with b.if_(v > 1.0):
                b.store(1.0, x, i)
            with b.else_():
                b.store(v * 2.0, x, i)
    xs = np.array([0.2, 3.0, 0.5])
    run_verified(b, "clamp", xs, 3)
    np.testing.assert_allclose(xs, [0.4, 1.0, 1.0])


def test_while_loop():
    b2 = IRBuilder()
    with b2.function("halve", [("x", Ptr()), ("cnt", Ptr(I64))]) as f:
        x, cnt = f.args
        with b2.while_() as it:
            v = b2.load(x, 0)
            b2.store(v * 0.5, x, 0)
            b2.store(it + 1, cnt, 0)
            b2.loop_while(b2.load(x, 0) > 1.0)
    xs = np.array([37.0])
    cnt = np.zeros(1, dtype=np.int64)
    run_verified(b2, "halve", xs, cnt)
    assert xs[0] <= 1.0
    assert cnt[0] == 6  # 37 -> ... -> 0.578 after 6 halvings


def test_while_iteration_guard():
    b = IRBuilder()
    with b.function("spin", [("x", Ptr())]) as f:
        with b.while_() as it:
            b.loop_while(b.cmp("ge", it, 0))  # never terminates
    from repro.ir import verify_module
    verify_module(b.module)
    ex = Executor(b.module, ExecConfig(max_while_iters=100))
    with pytest.raises(InterpreterError, match="iterations"):
        ex.run("spin", np.zeros(1))


def test_user_function_call():
    b = IRBuilder()
    with b.function("helper", [("a", F64)], ret=F64) as f:
        b.ret(f.args[0] * 3.0)
    with b.function("main", [("a", F64)], ret=F64) as f:
        r = b.call("helper", f.args[0])
        b.ret(r + 1.0)
    out, _ = run_verified(b, "main", 2.0)
    assert out == pytest.approx(7.0)


def test_memset_memcpy():
    b = IRBuilder()
    with b.function("mm", [("x", Ptr()), ("y", Ptr()), ("n", I64)]) as f:
        x, y, n = f.args
        b.memset(x, 2.5, n)
        b.memcpy(y, x, n)
    xs, ys = np.zeros(4), np.zeros(4)
    run_verified(b, "mm", xs, ys, 4)
    np.testing.assert_allclose(ys, 2.5)


def test_ptradd_subbuffer():
    b = IRBuilder()
    with b.function("sub", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        mid = b.ptradd(x, 2)
        b.store(9.0, mid, 0)
        b.store(8.0, mid, 1)
    xs = np.zeros(5)
    run_verified(b, "sub", xs, 5)
    np.testing.assert_allclose(xs, [0, 0, 9, 8, 0])


def test_out_of_bounds_raises():
    b = IRBuilder()
    with b.function("oob", [("x", Ptr())]) as f:
        b.store(1.0, f.args[0], 10)
    from repro.ir import verify_module
    verify_module(b.module)
    ex = Executor(b.module)
    with pytest.raises(InterpreterError, match="bounds"):
        ex.run("oob", np.zeros(3))


def test_use_after_free_raises():
    b = IRBuilder()
    with b.function("uaf", [("n", I64)], ret=F64) as f:
        p = b.alloc(f.args[0], space="heap")
        b.free(p)
        b.ret(b.load(p, 0))
    ex = Executor(b.module)
    with pytest.raises(InterpreterError, match="freed"):
        ex.run("uaf", 4)


def test_wrong_dtype_rejected():
    b = IRBuilder()
    with b.function("dt", [("x", Ptr())]) as f:
        b.store(1.0, f.args[0], 0)
    ex = Executor(b.module)
    with pytest.raises(TypeError, match="dtype"):
        ex.run("dt", np.zeros(3, dtype=np.float32))


def test_return_value_scalar():
    b = IRBuilder()
    with b.function("r", [], ret=F64) as f:
        b.ret(4.25)
    out, _ = run_verified(b, "r")
    assert out == 4.25


def test_select_scalar_and_mixed():
    b = IRBuilder()
    with b.function("sel", [("a", F64)], ret=F64) as f:
        a = f.args[0]
        b.ret(b.select(a > 0.0, a, -a))
    assert run_verified(b, "sel", -3.0)[0] == 3.0
