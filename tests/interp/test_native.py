"""Native backend: toolchain probe, three-way backend parity, the
per-kernel claim/fallback contract, fold/gather/scatter semantics at
forced widths, and the no-compiler degradation path."""

import re

import numpy as np
import pytest

from repro.ad import Duplicated, autodiff
from repro.interp import ExecConfig, Executor, probe_toolchain
import repro.interp.native as native_mod

HAVE_CC = probe_toolchain() is not None

needs_cc = pytest.mark.skipif(not HAVE_CC, reason="no C compiler")


def run_three(module, fn_name, make_arrays, scalars=(), num_threads=1,
              config_extra=None):
    """Run under interp, compiled, and native; assert bit-identical
    buffers, return value, simulated clock, and cost across all three.
    Returns the native executor for stats assertions."""
    outs = {}
    for backend in ("interp", "compiled", "native"):
        arrays = make_arrays()
        ex = Executor(module, ExecConfig(backend=backend,
                                         num_threads=num_threads,
                                         **(config_extra or {})))
        if backend != "interp":
            ex.interp.backend.strict = (backend == "compiled")
        ret = ex.run(fn_name, *arrays, *scalars)
        outs[backend] = (arrays, ret, ex.clock, ex.cost.as_dict(), ex)
    ia, ir, ic, icost, _ = outs["interp"]
    for backend in ("compiled", "native"):
        ba, br, bc, bcost, _ = outs[backend]
        for a, b in zip(ia, ba):
            np.testing.assert_array_equal(a, b)
        assert ir == br
        assert ic == bc
        assert icost == bcost
    return outs["native"][4]


# ---------------------------------------------------------------------------
# Modules
# ---------------------------------------------------------------------------

def _chain_module():
    """A fused elementwise chain long enough to claim a C kernel."""
    from repro.ir import I64, IRBuilder, Ptr, verify_module
    b = IRBuilder()
    with b.function("ch", [("x", Ptr()), ("y", Ptr()), ("n", I64)]) as f:
        x, y, n = f.args
        with b.for_(0, n, simd=True) as i:
            v = b.load(x, i)
            w = b.load(y, i)
            r = b.add(b.mul(v, w), b.mul(b.sub(v, w), 0.5))
            r = b.select(b.cmp("gt", r, 0.0), b.sqrt(b.add(r, 1.0)),
                         b.neg(r))
            b.store(r, x, i)
    verify_module(b.module)
    return b.module


def _gather_scatter_module():
    """Indirect loads/stores through an index array (pure data motion:
    exercises the runtime _ld/_st claims, not expression kernels)."""
    from repro.ir import I64, IRBuilder, Ptr, verify_module
    b = IRBuilder()
    with b.function("gs", [("x", Ptr()), ("y", Ptr()),
                           ("idx", Ptr(I64)), ("n", I64)]) as f:
        x, y, idx, n = f.args
        with b.for_(0, n, simd=True) as i:
            j = b.load(idx, i)
            v = b.load(x, j)
            b.store(b.mul(v, 2.0), y, j)
    verify_module(b.module)
    return b.module


def _fold_module():
    """Vector-valued atomics onto scalar targets: the fold claim."""
    from repro.ir import I64, IRBuilder, Ptr, verify_module
    b = IRBuilder()
    with b.function("fo", [("x", Ptr()), ("out", Ptr()), ("n", I64)]) as f:
        x, out, n = f.args
        with b.for_(0, n, simd=True) as i:
            v = b.load(x, i)
            b.atomic_add(v, out, 0)
            b.atomic_min(v, out, 1)
            b.atomic_max(v, out, 2)
    verify_module(b.module)
    return b.module


# ---------------------------------------------------------------------------
# Toolchain probe
# ---------------------------------------------------------------------------

@needs_cc
def test_probe_toolchain_identity():
    tc = probe_toolchain()
    assert tc.cc
    assert tc.version
    # identity folds in everything that invalidates machine code
    assert tc.cc in tc.identity and tc.version in tc.identity
    # memoized: same object back
    assert probe_toolchain() is tc


def test_probe_missing_compiler_returns_none():
    assert probe_toolchain("/nonexistent/cc-for-test") is None


# ---------------------------------------------------------------------------
# Three-way parity + claim accounting
# ---------------------------------------------------------------------------

@needs_cc
def test_chain_parity_and_kernel_claimed():
    ex = run_three(_chain_module(), "ch",
                   lambda: (np.linspace(-2.0, 2.0, 64),
                            np.linspace(1.0, 3.0, 64)), (64,))
    nat = ex.compile_stats()["native"]
    assert nat["enabled"]
    assert nat["cc"]
    assert nat["kernels"] >= 1
    assert nat["claimed"] >= 1


@needs_cc
def test_fold_parity_and_claims():
    def arrays():
        x = np.linspace(-3.0, 3.0, 33)
        out = np.array([0.0, np.inf, -np.inf])
        return x, out
    ex = run_three(_fold_module(), "fo", arrays, (33,))
    nat = ex.compile_stats()["native"]
    assert nat["enabled"]
    assert nat["folds"] >= 1


@needs_cc
def test_fold_parity_with_nan_and_signed_zero():
    """min/max folds must keep NumPy's accumulate semantics bit-for-bit
    through NaNs and signed zeros."""
    def arrays():
        x = np.array([1.0, np.nan, -0.0, 0.0, -2.5, np.nan, 7.0])
        out = np.array([0.5, 4.0, -4.0])
        return x, out
    run_three(_fold_module(), "fo", arrays, (7,))


@needs_cc
def test_gather_scatter_parity_small_width():
    """Below NATIVE_MIN_GATHER the claims decline and NumPy runs."""
    n = 32

    def arrays():
        rng = np.random.default_rng(7)
        return (rng.standard_normal(n).copy(),
                np.zeros(n),
                rng.permutation(n).astype(np.int64))
    run_three(_gather_scatter_module(), "gs", arrays, (n,))


@needs_cc
def test_gather_scatter_parity_forced_c_path(monkeypatch):
    """With the width floor lowered the C gather/scatter helpers claim
    at fuzz-sized widths — exercising the machine-code path itself."""
    monkeypatch.setattr(native_mod, "NATIVE_MIN_GATHER", 1)
    n = 48

    def arrays():
        rng = np.random.default_rng(11)
        return (rng.standard_normal(n).copy(),
                np.zeros(n),
                rng.permutation(n).astype(np.int64))
    run_three(_gather_scatter_module(), "gs", arrays, (n,))


@needs_cc
def test_gradient_parity_threaded():
    """The AD adjoint under a fork is the app-shaped case: shadow
    accumulates, reversed sweeps, atomics — all three backends must
    agree bit-for-bit."""
    from repro.ir import I64, IRBuilder, Ptr, verify_module
    b = IRBuilder()
    with b.function("g", [("x", Ptr()), ("y", Ptr()), ("n", I64)]) as f:
        x, y, n = f.args
        with b.fork(num_threads=2):
            with b.workshare(0, n) as i:
                v = b.load(x, i)
                b.store(b.mul(b.sin(v), b.add(v, 0.25)), y, i)
    verify_module(b.module)
    grad = autodiff(b.module, "g", [Duplicated, Duplicated, None])
    n = 24

    def arrays():
        return (np.linspace(0.1, 2.0, n), np.ones(n),
                np.zeros(n), np.ones(n))
    run_three(b.module, grad, arrays, (n,), num_threads=2)


# ---------------------------------------------------------------------------
# Fallback contract
# ---------------------------------------------------------------------------

def test_no_compiler_falls_back_bit_identical():
    """cc pointing nowhere: the native backend *is* the compiled
    backend, with the reason recorded in compile_stats()."""
    module = _chain_module()
    outs = {}
    for backend, extra in (("interp", {}),
                           ("native", {"cc": "/nonexistent/cc-for-test"})):
        x = np.linspace(-2.0, 2.0, 32)
        y = np.linspace(1.0, 3.0, 32)
        ex = Executor(module, ExecConfig(backend=backend, **extra))
        ex.run("ch", x, y, 32)
        outs[backend] = (x, y, ex.clock, ex.cost.as_dict(), ex)
    np.testing.assert_array_equal(outs["interp"][0], outs["native"][0])
    np.testing.assert_array_equal(outs["interp"][1], outs["native"][1])
    assert outs["interp"][2] == outs["native"][2]
    assert outs["interp"][3] == outs["native"][3]
    nat = outs["native"][4].compile_stats()["native"]
    assert not nat["enabled"]
    assert "no usable C compiler" in nat["fallback_reason"]
    assert "/nonexistent/cc-for-test" in nat["fallback_reason"]
    # every compiled function degrades with an explicit reason
    assert any("no usable C compiler" in why
               for why in nat["function_fallbacks"].values())


@needs_cc
def test_unclaimable_function_records_reason():
    """A function with nothing for the emitter: the build still ships
    the dynamic helper overrides and says so."""
    from repro.ir import I64, IRBuilder, Ptr, verify_module
    b = IRBuilder()
    with b.function("s", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        b.store(b.add(b.load(x, 0), 1.0), x, 0)
    verify_module(b.module)
    ex = Executor(b.module, ExecConfig(backend="native"))
    x = np.array([1.0])
    ex.run("s", x, 1)
    np.testing.assert_array_equal(x, [2.0])
    nat = ex.compile_stats()["native"]
    assert nat["enabled"]
    assert nat["claimed"] == 0
    assert "no claimable kernels" in nat["function_fallbacks"]["s"]


@needs_cc
def test_oob_store_raises_identically(monkeypatch):
    """Bounds violations through the native helper overrides must
    surface the same error as the interpreter — and must not partially
    mutate the target buffer first."""
    monkeypatch.setattr(native_mod, "NATIVE_MIN_GATHER", 1)
    module = _gather_scatter_module()
    n = 8
    errs, bufs = {}, {}
    for backend in ("interp", "native"):
        x = np.arange(float(n))
        y = np.zeros(n)
        idx = np.arange(n, dtype=np.int64)
        idx[-1] = n + 3  # out of bounds on the last lane
        ex = Executor(module, ExecConfig(backend=backend))
        with pytest.raises(Exception) as ei:
            ex.run("gs", x, y, idx, n)
        # buffer *ids* differ between executors; normalize them out
        msg = re.sub(r"#\d+", "#N", str(ei.value))
        errs[backend] = (type(ei.value), msg)
        bufs[backend] = y.copy()
    assert errs["interp"] == errs["native"]
    np.testing.assert_array_equal(bufs["interp"], bufs["native"])


# ---------------------------------------------------------------------------
# Disk cache for .so blobs
# ---------------------------------------------------------------------------

@needs_cc
def test_so_cache_roundtrip(tmp_path):
    """Second executor over a fresh module hits the native .so cache
    (the marshal entry and the .so entry share the counters)."""
    native_mod._LIB_MEMO.clear()
    cfg = dict(backend="native", compile_cache=str(tmp_path))
    ex1 = Executor(_chain_module(), ExecConfig(**cfg))
    ex1.run("ch", np.ones(16), np.ones(16), 16)
    st1 = ex1.compile_stats()
    assert st1["cache"]["stores"] >= 2  # marshal entry + .so blob
    assert not st1["native"]["so_cached"]
    native_mod._LIB_MEMO.clear()
    ex2 = Executor(_chain_module(), ExecConfig(**cfg))
    ex2.run("ch", np.ones(16), np.ones(16), 16)
    st2 = ex2.compile_stats()
    assert st2["cache"]["misses"] == 0
    assert st2["cache"]["hits"] >= 2
    assert st2["native"]["so_cached"]


# ---------------------------------------------------------------------------
# Static bounds certification through the native tier
# ---------------------------------------------------------------------------

def _certified_module():
    """Mixed proven/unproven accesses: x[i] affine under a declared
    extent (provable), plus an indirect x[idx[i]] (not provable)."""
    from repro.ir import I64, IRBuilder, Ptr, verify_module
    b = IRBuilder()
    n = 48
    with b.function("ce", [("x", Ptr()), ("y", Ptr()),
                           ("idx", Ptr(I64)), ("n", I64)],
                    arg_attrs=[{"extent": n, "noalias": True},
                               {"extent": n, "noalias": True},
                               {"extent": n, "noalias": True}, {}]):
        fn = b.module.functions["ce"]
        x, y, idx, _nv = fn.args
        with b.fork(num_threads=2):
            with b.workshare(0, n) as i:
                v = b.load(x, i)                 # proven
                b.store(b.mul(v, 1.5), y, i)     # proven
            with b.workshare(0, n) as i:
                j = b.load(idx, i)               # proven
                w = b.load(x, j)                 # unproven (indirect)
                b.store(b.add(w, 0.5), y, j)     # unproven
    verify_module(b.module)
    return b.module, n


@needs_cc
def test_native_claims_classified_proven_unproven(monkeypatch):
    """Every gather/scatter claim is classified proven/unproven in
    compile_stats(), and with the claim floors forced down the parity
    suite still holds bit-identically with elision live."""
    monkeypatch.setattr(native_mod, "NATIVE_MIN_GATHER", 1)
    module, n = _certified_module()

    def arrays():
        rng = np.random.default_rng(5)
        return (rng.standard_normal(n).copy(), np.zeros(n),
                rng.permutation(n).astype(np.int64))

    ex = run_three(module, "ce", arrays, (n,), num_threads=2)
    stats = ex.compile_stats()
    # The analysis certifies 4 sites; one proven load rides inside a
    # fused trace and is never lowered as its own access, so the
    # lowering-time counters see 3 proven + 2 unproven sites.
    assert stats["bounds_proven"] == 3
    assert stats["bounds_unproven"] == 2
    assert stats["checks_elided"] > 0
    nat = stats["native"]
    assert nat["claims_proven"] > 0
    # Every classified claim is one of the counted kinds.
    assert (nat["claims_proven"] + nat["claims_unproven"]
            == nat["gathers"] + nat["scatters"] + nat["folds"])
