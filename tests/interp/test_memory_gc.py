"""Memory model and the Julia GC-stress semantics."""

import numpy as np
import pytest

from repro.interp import ExecConfig, Executor, InterpreterError, Memory
from repro.interp.memory import PtrVal
from repro.ir import F64, I64, IRBuilder, Ptr, verify_module


def test_alloc_zero_init():
    m = Memory()
    p = m.alloc(5, F64, "stack")
    assert np.all(p.buffer.data == 0.0)


def test_bounds_checks():
    m = Memory()
    p = m.alloc(3, F64, "stack")
    with pytest.raises(InterpreterError):
        m.load(p, 3)
    with pytest.raises(InterpreterError):
        m.store(p, -1, 1.0)
    with pytest.raises(InterpreterError):
        m.load(p, np.array([0, 5]))


def test_interior_pointer_free_rejected():
    m = Memory()
    p = m.alloc(4, F64, "heap")
    with pytest.raises(InterpreterError, match="interior"):
        m.free(p.added(2))


def test_double_free_rejected():
    m = Memory()
    p = m.alloc(4, F64, "heap")
    m.free(p)
    with pytest.raises(InterpreterError, match="double"):
        m.free(p)


def test_masked_store():
    m = Memory()
    p = m.alloc(4, F64, "stack")
    mask = np.array([True, False, True, False])
    m.store(p, np.arange(4), np.array([1.0, 2.0, 3.0, 4.0]), mask=mask)
    np.testing.assert_allclose(p.buffer.data, [1.0, 0.0, 3.0, 0.0])


def test_atomic_accumulates_duplicates():
    m = Memory()
    p = m.alloc(2, F64, "stack")
    m.atomic("add", p, np.array([0, 0, 1, 0]), np.ones(4))
    np.testing.assert_allclose(p.buffer.data, [3.0, 1.0])


def test_gc_not_collected_without_stress():
    b = IRBuilder()
    with b.function("g", [("out", Ptr())]) as f:
        arr = b.alloc(4, space="gc")
        b.call("jl.safepoint")
        b.store(b.load(arr, 0) + 1.0, f.args[0], 0)
    verify_module(b.module)
    out = np.zeros(1)
    Executor(b.module).run("g", out)
    assert out[0] == 1.0


def test_gc_stress_collects_unpreserved_at_safepoint():
    b = IRBuilder()
    with b.function("g", [("out", Ptr())]) as f:
        arr = b.alloc(4, space="gc")
        b.call("jl.safepoint")
        b.store(b.load(arr, 0) + 1.0, f.args[0], 0)
    verify_module(b.module)
    ex = Executor(b.module, ExecConfig(gc_stress=True))
    with pytest.raises(InterpreterError, match="freed|collected"):
        ex.run("g", np.zeros(1))


def test_gc_stress_preserve_protects():
    b = IRBuilder()
    with b.function("g", [("out", Ptr())]) as f:
        arr = b.alloc(4, space="gc")
        tok = b.call("jl.gc_preserve_begin", arr)
        b.call("jl.safepoint")
        b.store(b.load(arr, 0) + 1.0, f.args[0], 0)
        b.call("jl.gc_preserve_end", tok)
    verify_module(b.module)
    out = np.zeros(1)
    Executor(b.module, ExecConfig(gc_stress=True)).run("g", out)
    assert out[0] == 1.0


def test_gc_stress_preserve_end_reexposes():
    b = IRBuilder()
    with b.function("g", [("out", Ptr())]) as f:
        arr = b.alloc(4, space="gc")
        tok = b.call("jl.gc_preserve_begin", arr)
        b.call("jl.gc_preserve_end", tok)
        b.call("jl.safepoint")
        b.store(b.load(arr, 0), f.args[0], 0)
    verify_module(b.module)
    ex = Executor(b.module, ExecConfig(gc_stress=True))
    with pytest.raises(InterpreterError):
        ex.run("g", np.zeros(1))


def test_gc_reachability_through_stored_pointers():
    """A GC buffer stored (as a managed pointer) inside a preserved
    buffer stays alive transitively."""
    b = IRBuilder()
    with b.function("g", [("out", Ptr())]) as f:
        holder = b.alloc(1, Ptr(F64), space="gc")
        inner = b.alloc(2, space="gc")
        b.store(inner, holder, 0)
        tok = b.call("jl.gc_preserve_begin", holder)
        b.call("jl.safepoint")
        got = b.load(holder, 0)
        b.store(b.load(got, 0) + 7.0, f.args[0], 0)
        b.call("jl.gc_preserve_end", tok)
    verify_module(b.module)
    out = np.zeros(1)
    Executor(b.module, ExecConfig(gc_stress=True)).run("g", out)
    assert out[0] == 7.0


def test_raw_arrayptr_does_not_root():
    """The §VI-C2 hazard: a raw data pointer does not keep the array
    alive across a safepoint."""
    b = IRBuilder()
    with b.function("g", [("out", Ptr()), ("holder", Ptr(Ptr(F64)))]) as f:
        out, holder = f.args
        arr = b.alloc(2, space="gc")
        raw = b.call("jl.arrayptr", arr)
        b.store(raw, holder, 0)  # raw pointer escapes, but raw != root
        b.call("jl.safepoint")
        b.store(b.load(raw, 0), out, 0)
    verify_module(b.module)
    ex = Executor(b.module, ExecConfig(gc_stress=True))
    with pytest.raises(InterpreterError):
        ex.run("g", np.zeros(1), np.empty(1, dtype=object))


def test_external_buffers_are_roots():
    b = IRBuilder()
    with b.function("g", [("x", Ptr())]) as f:
        b.call("jl.safepoint")
        b.store(1.0, f.args[0], 0)
    verify_module(b.module)
    xs = np.zeros(2)
    Executor(b.module, ExecConfig(gc_stress=True)).run("g", xs)
    assert xs[0] == 1.0
