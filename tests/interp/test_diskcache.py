"""Persistent compile cache: key correctness (anything that can change
the generated code changes the key), corruption tolerance, and the
ExecConfig/environment plumbing."""

import json
import os

import numpy as np
import pytest

from repro.ad import ADConfig, Duplicated, autodiff
from repro.interp import (
    CompileCache,
    ExecConfig,
    Executor,
    compile_function,
    config_fingerprint,
    resolve_cache_dir,
)
from repro.interp.diskcache import FORMAT_VERSION, open_cache
from repro.ir import I64, IRBuilder, Ptr, verify_module


def _module(scale: float = 2.0):
    b = IRBuilder()
    with b.function("f", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        with b.for_(0, n, simd=True) as i:
            b.store(b.mul(b.load(x, i), scale), x, i)
    verify_module(b.module)
    return b.module


def _lowered_source(module, fn="f", **kwargs):
    return compile_function(module.functions[fn],
                            **kwargs).__lowered_source__


def _entry_paths(root):
    out = []
    for dirpath, _, files in os.walk(root):
        out += [os.path.join(dirpath, f) for f in files
                if f.endswith(".json")]
    return sorted(out)


# ---------------------------------------------------------------------------
# Key correctness: each input dimension must change the key
# ---------------------------------------------------------------------------

def test_exec_config_change_is_a_miss(tmp_path):
    cache = CompileCache(str(tmp_path))
    src = _lowered_source(_module())
    fp1 = config_fingerprint(ExecConfig(num_threads=1))
    fp2 = config_fingerprint(ExecConfig(num_threads=4))
    assert fp1 != fp2
    assert cache.key(src, fp1) != cache.key(src, fp2)
    code = compile(src, "<t>", "exec")
    cache.store(src, fp1, code)
    assert cache.load(src, fp2) is None      # different config: miss
    assert cache.load(src, fp1) is not None  # same config: hit
    assert cache.stats() == {"hits": 1, "misses": 1, "stores": 1,
                             "errors": 0}


def test_ir_body_change_is_a_miss(tmp_path):
    cache = CompileCache(str(tmp_path))
    fp = config_fingerprint(ExecConfig())
    src1 = _lowered_source(_module(2.0))
    src2 = _lowered_source(_module(3.0))
    assert src1 != src2
    cache.store(src1, fp, compile(src1, "<t>", "exec"))
    assert cache.load(src2, fp) is None
    assert cache.load(src1, fp) is not None


def test_ad_config_change_is_a_miss(tmp_path):
    """An ADConfig that changes the generated gradient code must reach
    the key through the lowered source.  (ADConfig knobs that only
    change *constants* — e.g. alloc attributes from cache_space — may
    legitimately share an entry: the cache stores the compiled code
    object only, and lowering rebuilds the constant table on every
    load.)"""
    def nonlinear_module():
        b = IRBuilder()
        with b.function("f", [("x", Ptr()), ("n", I64)]) as f:
            x, n = f.args
            with b.for_(0, n, simd=True) as i:
                v = b.load(x, i)
                b.store(b.mul(b.sin(v), v), x, i)
        verify_module(b.module)
        return b.module

    cache = CompileCache(str(tmp_path))
    fp = config_fingerprint(ExecConfig())
    sources = []
    for cfg in (ADConfig(), ADConfig(opt_level="none", post_opt=False)):
        mod = nonlinear_module()
        grad = autodiff(mod, "f", [Duplicated, None], cfg)
        sources.append(_lowered_source(mod, grad))
    src_a, src_b = sources
    assert src_a != src_b
    cache.store(src_a, fp, compile(src_a, "<t>", "exec"))
    assert cache.load(src_b, fp) is None
    assert cache.load(src_a, fp) is not None


def test_adjoint_strategy_change_is_a_miss(tmp_path):
    """ADConfig.adjoint reaches the key two ways: the generated IR
    differs (source), and the gradient function carries the strategy
    fingerprint in ``attrs['adjoint']``, which CompiledBackend folds
    into the ExecConfig fingerprint — so strategies can never share a
    cache entry even if their lowered source ever coincided."""
    from repro.ad.strategy import strategy_fingerprint

    def loop_module():
        b = IRBuilder()
        with b.function("f", [("x", Ptr()), ("n", I64),
                              ("steps", I64)]) as f:
            x, n, steps = f.args
            with b.for_(0, steps, name="s"):
                with b.for_(0, n, name="i") as i:
                    v = b.load(x, i)
                    b.store(b.mul(v, v), x, i)
        verify_module(b.module)
        return b.module

    cache = CompileCache(str(tmp_path))
    base_fp = config_fingerprint(ExecConfig())
    sources, fps = [], []
    for cfg in (ADConfig(), ADConfig(adjoint="checkpoint")):
        mod = loop_module()
        grad = autodiff(mod, "f", [Duplicated, None, None], cfg)
        fn = mod.functions[grad]
        assert fn.attrs["adjoint"] == strategy_fingerprint(cfg)
        sources.append(_lowered_source(mod, grad))
        # The fold CompiledBackend.get_compiled applies:
        fps.append(f"{base_fp}|adjoint={fn.attrs['adjoint']}")
    src_a, src_b = sources
    fp_a, fp_b = fps
    assert src_a != src_b                      # IR-level separation
    assert fp_a != fp_b                        # fingerprint separation
    assert cache.key(src_a, fp_a) != cache.key(src_a, fp_b)
    cache.store(src_a, fp_a, compile(src_a, "<t>", "exec"))
    assert cache.load(src_a, fp_b) is None
    assert cache.load(src_a, fp_a) is not None


def test_implicit_iters_changes_fingerprint():
    """implicit_iters changes generated code (the Neumann round count),
    so it must show up in the strategy fingerprint."""
    from repro.ad.strategy import strategy_fingerprint

    assert strategy_fingerprint(ADConfig(adjoint="implicit")) != \
        strategy_fingerprint(ADConfig(adjoint="implicit", implicit_iters=8))
    assert strategy_fingerprint(ADConfig()) != \
        strategy_fingerprint(ADConfig(adjoint="checkpoint"))


def test_fusion_flag_changes_source_and_key(tmp_path):
    cache = CompileCache(str(tmp_path))
    fp = config_fingerprint(ExecConfig())
    mod = _module()
    src_on = _lowered_source(mod, fusion=True)
    src_off = _lowered_source(mod, fusion=False)
    assert src_on != src_off
    assert cache.key(src_on, fp) != cache.key(src_off, fp)


def test_format_version_change_is_a_miss(tmp_path, monkeypatch):
    import repro.interp.diskcache as dc

    cache = CompileCache(str(tmp_path))
    fp = config_fingerprint(ExecConfig())
    src = _lowered_source(_module())
    cache.store(src, fp, compile(src, "<t>", "exec"))
    assert cache.load(src, fp) is not None
    old_key = cache.key(src, fp)

    monkeypatch.setattr(dc, "FORMAT_VERSION", FORMAT_VERSION + 1)
    bumped = CompileCache(str(tmp_path))
    # the key itself moves, so the old entry is simply never found
    assert bumped.key(src, fp) != old_key
    assert bumped.load(src, fp) is None
    assert bumped.stats()["misses"] == 1


def test_stale_format_entry_rejected_even_on_key_collision(tmp_path,
                                                           monkeypatch):
    """Defense in depth: an entry whose payload claims another format
    version is rejected at load even if it sits at the right path."""
    import repro.interp.diskcache as dc

    cache = CompileCache(str(tmp_path))
    fp = config_fingerprint(ExecConfig())
    src = _lowered_source(_module())
    cache.store(src, fp, compile(src, "<t>", "exec"))
    (path,) = _entry_paths(cache.root)
    with open(path) as f:
        entry = json.load(f)
    entry["format"] = FORMAT_VERSION + 1
    with open(path, "w") as f:
        json.dump(entry, f)
    assert cache.load(src, fp) is None
    assert cache.stats()["errors"] == 1
    assert not os.path.exists(path)  # corrupt entry unlinked


# ---------------------------------------------------------------------------
# Corruption tolerance
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("corruption", [
    b"",                          # empty file
    b"{not json",                 # unparseable
    b'{"format": 1}',             # missing payload
    None,                         # truncated (handled below)
])
def test_corrupt_entry_falls_back_to_recompile(tmp_path, corruption):
    cache = CompileCache(str(tmp_path))
    fp = config_fingerprint(ExecConfig())
    src = _lowered_source(_module())
    cache.store(src, fp, compile(src, "<t>", "exec"))
    (path,) = _entry_paths(cache.root)
    if corruption is None:
        with open(path, "rb") as f:
            payload = f.read()
        corruption = payload[:len(payload) // 2]
    with open(path, "wb") as f:
        f.write(corruption)
    assert cache.load(src, fp) is None
    assert cache.stats()["errors"] == 1
    # and a full compile-through-the-cache still works end to end
    mod = _module()
    ex = Executor(mod, ExecConfig(backend="compiled",
                                  compile_cache=str(tmp_path)))
    ex.interp.backend.strict = True
    x = np.arange(3.0)
    ex.run("f", x, 3)
    np.testing.assert_array_equal(x, np.arange(3.0) * 2.0)


def test_corrupt_marshal_blob_is_a_miss(tmp_path):
    cache = CompileCache(str(tmp_path))
    fp = config_fingerprint(ExecConfig())
    src = _lowered_source(_module())
    cache.store(src, fp, compile(src, "<t>", "exec"))
    (path,) = _entry_paths(cache.root)
    with open(path) as f:
        entry = json.load(f)
    entry["code"] = "AAAA"  # valid base64, not a marshaled code object
    with open(path, "w") as f:
        json.dump(entry, f)
    assert cache.load(src, fp) is None
    assert cache.stats()["errors"] == 1


# ---------------------------------------------------------------------------
# Native .so entries
# ---------------------------------------------------------------------------

_CC_A = "cc 13.2.0 [-O2 -fPIC -shared]"
_CC_B = "cc 14.1.0 [-O2 -fPIC -shared]"


def _native_files(cache):
    out = []
    for dirpath, _, files in os.walk(cache.native_root):
        out += [os.path.join(dirpath, f) for f in files]
    return sorted(out)


def test_native_so_roundtrip(tmp_path):
    cache = CompileCache(str(tmp_path))
    blob = b"\x7fELF-not-really-a-library"
    path = cache.store_native("void k(void) {}\n", _CC_A, blob)
    assert path is not None and os.path.exists(path)
    got = cache.load_native("void k(void) {}\n", _CC_A)
    assert got == path
    with open(got, "rb") as f:
        assert f.read() == blob
    assert cache.stats() == {"hits": 1, "misses": 0, "stores": 1,
                             "errors": 0}


def test_native_key_separates_source_and_compiler(tmp_path):
    """The .so key covers the emitted C *and* the compiler identity: a
    compiler upgrade (new version string) must miss, never serve stale
    machine code."""
    cache = CompileCache(str(tmp_path))
    assert cache.native_key("void a(void){}", _CC_A) != \
        cache.native_key("void b(void){}", _CC_A)
    assert cache.native_key("void a(void){}", _CC_A) != \
        cache.native_key("void a(void){}", _CC_B)
    cache.store_native("void a(void){}", _CC_A, b"AAAA")
    assert cache.load_native("void a(void){}", _CC_B) is None
    assert cache.load_native("void b(void){}", _CC_A) is None
    assert cache.load_native("void a(void){}", _CC_A) is not None
    # the two rejected lookups were plain misses, not corruption
    assert cache.stats()["errors"] == 0


def test_native_corrupt_blob_is_a_miss_and_unlinked(tmp_path):
    """A .so whose bytes do not match the metadata digest (torn write,
    tampering) is dropped — both files — and reported as an error."""
    cache = CompileCache(str(tmp_path))
    path = cache.store_native("void k(void){}", _CC_A, b"GOODBYTES")
    with open(path, "wb") as f:
        f.write(b"EVILBYTES")
    assert cache.load_native("void k(void){}", _CC_A) is None
    assert cache.stats()["errors"] == 1
    assert _native_files(cache) == []  # blob and metadata both gone


def test_native_meta_format_mismatch_rejected(tmp_path):
    import repro.interp.diskcache as dc

    cache = CompileCache(str(tmp_path))
    cache.store_native("void k(void){}", _CC_A, b"BYTES")
    meta_path = [p for p in _native_files(cache)
                 if p.endswith(".json")][0]
    with open(meta_path) as f:
        meta = json.load(f)
    meta["format"] = dc.NATIVE_FORMAT_VERSION + 1
    with open(meta_path, "w") as f:
        json.dump(meta, f)
    assert cache.load_native("void k(void){}", _CC_A) is None
    assert cache.stats()["errors"] == 1
    assert _native_files(cache) == []


def test_native_missing_meta_is_a_plain_miss(tmp_path):
    cache = CompileCache(str(tmp_path))
    assert cache.load_native("void never(void){}", _CC_A) is None
    assert cache.stats() == {"hits": 0, "misses": 1, "stores": 0,
                             "errors": 0}


# ---------------------------------------------------------------------------
# Config / environment plumbing
# ---------------------------------------------------------------------------

def test_resolve_cache_dir_precedence(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    assert resolve_cache_dir(ExecConfig()) is None
    assert resolve_cache_dir(ExecConfig(compile_cache="off")) is None
    assert resolve_cache_dir(
        ExecConfig(compile_cache=str(tmp_path))) == str(tmp_path)
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
    assert resolve_cache_dir(ExecConfig()) == str(tmp_path / "env")
    # explicit "off" beats the environment
    assert resolve_cache_dir(ExecConfig(compile_cache="off")) is None
    assert open_cache(ExecConfig(compile_cache="off")) is None


def test_end_to_end_warm_process_hits(tmp_path):
    """Two executors over the same module + config: the second's disk
    cache is hit (fresh Function objects defeat the in-memory memo)."""
    cfg = dict(backend="compiled", compile_cache=str(tmp_path))
    ex1 = Executor(_module(), ExecConfig(**cfg))
    ex1.run("f", np.zeros(2), 2)
    assert ex1.compile_stats()["cache"]["stores"] == 1
    ex2 = Executor(_module(), ExecConfig(**cfg))
    ex2.run("f", np.zeros(2), 2)
    st = ex2.compile_stats()["cache"]
    assert st == {"hits": 1, "misses": 0, "stores": 0, "errors": 0}
