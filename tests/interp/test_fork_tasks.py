"""Fork regions (barriers, worksharing) and task spawn/wait."""

import numpy as np
import pytest

from repro.interp import ExecConfig, Executor, InterpreterError
from repro.ir import F64, I64, IRBuilder, Ptr, Task, verify_module

from ..conftest import run_verified


def test_fork_tid_nthreads():
    b = IRBuilder()
    with b.function("ids", [("out", Ptr()), ("nt", Ptr())]) as f:
        out, ntp = f.args
        with b.fork(4) as (tid, nth):
            b.store(b.itof(tid), out, tid)
            b.store(b.itof(nth), ntp, 0)
    out = np.zeros(4)
    nt = np.zeros(1)
    run_verified(b, "ids", out, nt)
    np.testing.assert_allclose(out, [0, 1, 2, 3])
    assert nt[0] == 4


def test_fork_default_thread_count():
    b = IRBuilder()
    with b.function("dflt", [("out", Ptr())]) as f:
        with b.fork(0) as (tid, nth):
            b.store(1.0, f.args[0], tid)
    out = np.zeros(8)
    run_verified(b, "dflt", out, num_threads=3)
    assert out.sum() == 3


def test_barrier_phases_communicate():
    """Thread 0 reads data written by all threads after a barrier."""
    b = IRBuilder()
    with b.function("ph", [("buf", Ptr()), ("total", Ptr())]) as f:
        buf, total = f.args
        with b.fork(4) as (tid, nth):
            b.store(b.itof(tid) + 1.0, buf, tid)
            b.barrier()
            with b.if_(b.cmp("eq", tid, 0)):
                acc = b.alloc(1)
                with b.for_(0, nth) as t:
                    b.store(b.load(acc, 0) + b.load(buf, t), acc, 0)
                b.store(b.load(acc, 0), total, 0)
    buf, total = np.zeros(4), np.zeros(1)
    run_verified(b, "ph", buf, total)
    assert total[0] == 1 + 2 + 3 + 4


def test_workshare_covers_range_once():
    b = IRBuilder()
    with b.function("ws", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        with b.fork(3) as (tid, nth):
            with b.workshare(0, n) as i:
                v = b.load(x, i)
                b.store(v + 1.0, x, i)
    xs = np.zeros(10)
    run_verified(b, "ws", xs, 10)
    np.testing.assert_allclose(xs, 1.0)  # each index exactly once


def test_workshare_nowait_and_barrier():
    b = IRBuilder()
    with b.function("wsn", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        with b.fork(2) as (tid, nth):
            with b.workshare(0, n, nowait=True) as i:
                b.store(1.0, x, i)
            b.barrier()
            with b.workshare(0, n) as i:
                b.store(b.load(x, i) * 2.0, x, i)
    xs = np.zeros(6)
    run_verified(b, "wsn", xs, 6)
    np.testing.assert_allclose(xs, 2.0)


def test_more_threads_than_iterations():
    b = IRBuilder()
    with b.function("mt", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        with b.fork(8) as (tid, nth):
            with b.workshare(0, n) as i:
                b.store(5.0, x, i)
    xs = np.zeros(3)
    run_verified(b, "mt", xs, 3)
    np.testing.assert_allclose(xs, 5.0)


def test_spawn_wait_basic():
    b = IRBuilder()
    with b.function("tw", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        with b.spawn() as t1:
            with b.for_(0, n, simd=True) as i:
                b.store(b.load(x, i) * 2.0, x, i)
        b.wait_task(t1)
    xs = np.arange(1.0, 5.0)
    run_verified(b, "tw", xs, 4)
    np.testing.assert_allclose(xs, 2 * np.arange(1.0, 5.0))


def test_task_array_chunked():
    b = IRBuilder()
    with b.function("chunks", [("x", Ptr()), ("n", I64), ("c", I64)]) as f:
        x, n, c = f.args
        tasks = b.alloc(c, Task)
        per = (n + c - 1) // c
        with b.for_(0, c) as w:
            lo = w * per
            hi = b.min(lo + per, n)
            with b.spawn() as t:
                with b.for_(lo, hi, simd=True) as i:
                    b.store(b.load(x, i) + 1.0, x, i)
            b.store(t, tasks, w)
        with b.for_(0, c) as w:
            b.call("task.wait", b.load(tasks, w))
    xs = np.zeros(11)
    run_verified(b, "chunks", xs, 11, 4, num_threads=4)
    np.testing.assert_allclose(xs, 1.0)


def test_task_scheduler_makespan():
    """Two independent equal tasks on two workers finish ~in parallel."""
    b = IRBuilder()
    with b.function("par2", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        tasks = b.alloc(2, Task)
        for w in (0, 1):
            with b.spawn() as t:
                with b.for_(w * 500, (w + 1) * 500, simd=True) as i:
                    b.store(b.sin(b.load(x, i)), x, i)
            b.store(t, tasks, w)
        with b.for_(0, 2) as w:
            b.call("task.wait", b.load(tasks, w))
    verify_module(b.module)
    xs = np.ones(1000)
    ex2 = Executor(b.module, ExecConfig(num_threads=2))
    ex2.run("par2", xs.copy(), 1000)
    t2 = ex2.clock
    ex1 = Executor(b.module, ExecConfig(num_threads=1))
    ex1.run("par2", xs.copy(), 1000)
    t1 = ex1.clock
    assert t2 < 0.75 * t1  # real speedup in simulated time


def test_wait_on_non_task_errors():
    b = IRBuilder()
    with b.function("bad", [("x", Ptr(Task))]) as f:
        b.call("task.wait", b.load(f.args[0], 0))
    verify_module(b.module)
    ex = Executor(b.module)
    with pytest.raises(InterpreterError, match="task"):
        ex.run("bad", np.empty(1, dtype=object))
