"""miniBUDE proxy: kernel correctness and gradients across variants."""

import numpy as np
import pytest

from repro.apps.minibude import MinibudeApp, make_deck
from repro.apps.minibude.reference import pose_energy, run_reference

DECK = make_deck(nprotein=12, nligand=6, nposes=16)


def test_deck_shapes():
    assert DECK.protein_pos.shape == (12, 3)
    assert DECK.poses.shape == (16, 6)
    flat = DECK.flat_args()
    assert flat["protein_xyz"].shape == (36,)
    assert flat["energies"].shape == (16,)


def test_deck_deterministic():
    d2 = make_deck(nprotein=12, nligand=6, nposes=16)
    np.testing.assert_array_equal(DECK.poses, d2.poses)


@pytest.mark.parametrize("variant,nt", [
    ("serial", 1), ("openmp", 4), ("julia", 4),
])
def test_variant_matches_reference(variant, nt):
    app = MinibudeApp(variant, DECK)
    res = app.run_forward(num_threads=nt)
    np.testing.assert_allclose(res.energies, run_reference(DECK),
                               rtol=1e-10)


@pytest.mark.parametrize("variant,nt", [
    ("serial", 1), ("openmp", 4), ("julia", 2),
])
def test_gradient_projection(variant, nt):
    app = MinibudeApp(variant, DECK)
    rev, fd = app.projection_check(num_threads=nt)
    assert rev == pytest.approx(fd, rel=1e-4)


def test_gradient_matches_codipack():
    app = MinibudeApp("serial", DECK)
    shadows, _ = app.run_gradient()
    codi, _ = app.run_codipack_gradient()
    np.testing.assert_allclose(shadows["poses"], codi, rtol=1e-7,
                               atol=1e-10)


def test_gradient_per_pose_isolated():
    """d(energy_i)/d(pose_j) = 0 for i != j: seed one pose's energy."""
    app = MinibudeApp("serial", DECK)
    flat = DECK.flat_args()
    from repro.apps.minibude.kernels import ARG_NAMES
    from repro.interp import Executor
    shadows = {n: np.zeros_like(flat[n]) for n in ARG_NAMES}
    shadows["energies"][3] = 1.0
    args = []
    for n in ARG_NAMES:
        args += [flat[n], shadows[n]]
    Executor(app.module).run(app.grad_fn(), *args)
    dposes = shadows["poses"].reshape(-1, 6)
    assert np.abs(dposes[3]).max() > 0
    others = np.delete(dposes, 3, axis=0)
    assert np.abs(others).max() == 0.0


def test_gradient_fd_per_parameter():
    """Dense FD check of one pose's 6-parameter gradient."""
    app = MinibudeApp("serial", DECK)
    shadows, _ = app.run_gradient()
    g = shadows["poses"].reshape(-1, 6)[2]
    eps = 1e-6
    for k in range(6):
        d = make_deck(12, 6, 16)
        d.poses[2, k] += eps
        ep = pose_energy(d, d.poses[2])
        d.poses[2, k] -= 2 * eps
        em = pose_energy(d, d.poses[2])
        fd = (ep - em) / (2 * eps)
        assert g[k] == pytest.approx(fd, rel=1e-4, abs=1e-7), k


def test_julia_task_count_does_not_change_results():
    for ntasks in (2, 4, 8):
        app = MinibudeApp("julia", DECK, ntasks=ntasks)
        res = app.run_forward(num_threads=4)
        np.testing.assert_allclose(res.energies, run_reference(DECK),
                                   rtol=1e-10)


def test_openmp_opt_reduces_cache_traffic():
    from repro.ad import ADConfig
    deck = make_deck(nprotein=12, nligand=6, nposes=32)
    traffic = {}
    for opt in (False, True):
        app = MinibudeApp("openmp", deck, ad_config=ADConfig(openmp_opt=opt))
        _sh, g = app.run_gradient(num_threads=2)
        traffic[opt] = g.cost.stream_bytes
    assert traffic[True] < 0.25 * traffic[False]


# ---------------------------------------------------------------------------
# MPI variant (ISSUE 5): bcast poses, block-partition, allreduce energies
# ---------------------------------------------------------------------------

def test_mpi_forward_matches_reference():
    app = MinibudeApp("mpi", DECK, nprocs=4)
    res = app.run_forward()
    np.testing.assert_allclose(res.energies, run_reference(DECK),
                               rtol=1e-10)


def test_mpi_forward_uneven_partition():
    # 16 poses over 3 ranks: the last rank's block is clamped.
    app = MinibudeApp("mpi", DECK, nprocs=3)
    res = app.run_forward()
    np.testing.assert_allclose(res.energies, run_reference(DECK),
                               rtol=1e-10)


def test_mpi_gradient_matches_serial():
    serial, _ = MinibudeApp("serial", DECK).run_gradient()
    mpi, _ = MinibudeApp("mpi", DECK, nprocs=4).run_gradient()
    np.testing.assert_allclose(mpi["poses"], serial["poses"], rtol=1e-10)


def test_mpi_gradient_projection():
    app = MinibudeApp("mpi", DECK, nprocs=2)
    rev, fd = app.projection_check()
    assert rev == pytest.approx(fd, rel=1e-4)
