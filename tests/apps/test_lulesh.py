"""LULESH proxy: physics, cross-variant agreement, gradients."""

import numpy as np
import pytest

from repro.apps.lulesh import (
    FLAVORS,
    LuleshApp,
    build_domain,
    gather_global,
)
from repro.apps.lulesh.reference import lagrange_leapfrog

CHECK_FIELDS = ("x", "y", "z", "xd", "yd", "zd", "e", "p", "q", "v", "ss")


def test_reference_blast_evolves():
    dom = build_domain(3)
    e0 = dom.total_energy()
    lagrange_leapfrog(dom, 10)
    assert np.isfinite(dom["e"]).all()
    assert np.abs(dom["xd"]).max() > 0.0           # shock moves matter
    assert dom["p"].max() > 0.0
    assert abs(dom.total_energy() - e0) < 0.01 * e0  # internal e ~conserved


def test_reference_decomposition_invariance():
    doms = [build_domain(2, 2, r) for r in range(8)]
    lagrange_leapfrog(doms, 8)
    stitched = gather_global(doms)
    ref = build_domain(4)
    lagrange_leapfrog(ref, 8)
    for f in CHECK_FIELDS:
        np.testing.assert_allclose(stitched[f], ref[f], rtol=1e-11,
                                   atol=1e-14, err_msg=f)


def test_mesh_connectivity():
    dom = build_domain(3)
    nodelist = dom["nodelist"].reshape(-1, 8)
    assert nodelist.min() >= 0 and nodelist.max() < dom.nnode
    # each element has 8 distinct corners
    assert all(len(set(row)) == 8 for row in nodelist)
    # corner map covers all slots exactly once (plus padding)
    ell = dom["corner_ell"]
    real = ell[ell < 8 * dom.nelem]
    assert len(np.unique(real)) == 8 * dom.nelem


def test_nodal_mass_partition_of_total():
    dom = build_domain(3)
    np.testing.assert_allclose(dom["nodal_mass"].sum(),
                               dom["elem_mass"].sum(), rtol=1e-12)


@pytest.mark.parametrize("flavor,nt", [
    ("serial", 1), ("openmp", 4), ("raja", 3), ("julia", 1),
])
def test_shared_variants_match_reference(flavor, nt):
    app = LuleshApp(flavor, nx=3)
    doms = app.make_domains()
    ref = doms[0].copy()
    app.run_forward(doms, steps=5, num_threads=nt)
    lagrange_leapfrog(ref, 5)
    for f in CHECK_FIELDS:
        np.testing.assert_allclose(doms[0][f], ref[f], rtol=1e-9,
                                   atol=1e-12, err_msg=f"{flavor}:{f}")


@pytest.mark.parametrize("flavor,nt", [
    ("mpi", 1), ("hybrid", 2), ("julia_mpi", 1),
])
def test_mpi_variants_match_reference(flavor, nt):
    app = LuleshApp(flavor, nx=2, pr=2)
    doms = app.make_domains()
    refs = [d.copy() for d in doms]
    app.run_forward(doms, steps=5, num_threads=nt)
    lagrange_leapfrog(refs, 5)
    for r in range(8):
        for f in CHECK_FIELDS:
            np.testing.assert_allclose(
                doms[r][f], refs[r][f], rtol=1e-9, atol=1e-12,
                err_msg=f"{flavor}:rank{r}:{f}")


@pytest.mark.parametrize("flavor,pr,nt", [
    ("serial", 1, 1), ("openmp", 1, 4), ("raja", 1, 4), ("julia", 1, 1),
    ("mpi", 2, 1), ("hybrid", 2, 2), ("julia_mpi", 2, 1),
])
def test_gradient_projection_all_variants(flavor, pr, nt):
    """The paper's §VII verification on every framework variant."""
    app = LuleshApp(flavor, nx=2, pr=pr)
    rev, fd = app.projection_check(steps=3, num_threads=nt)
    assert rev == pytest.approx(fd, rel=5e-5), (rev, fd)


def test_gradient_matches_codipack_tape():
    """Enzyme-path and operator-overloading-path derivatives agree."""
    app = LuleshApp("serial", nx=2)
    steps = 3
    doms = app.make_domains()
    shadows = [d.shadow_arrays(0.0) for d in doms]
    shadows[0]["e"][...] = 1.0
    app.run_gradient(doms, steps, 1, shadows)

    doms2 = app.make_domains()
    _res, tapes = app.run_codipack_gradient(doms2, steps)
    for f in ("x", "y", "z", "e"):
        np.testing.assert_allclose(
            shadows[0][f], tapes[0].gradient_of(doms2[0][f]),
            rtol=1e-7, atol=1e-9, err_msg=f)


def test_mpi_gradient_matches_codipack_tape():
    app = LuleshApp("mpi", nx=2, pr=2)
    steps = 3
    doms = app.make_domains()
    shadows = [d.shadow_arrays(0.0) for d in doms]
    for sh in shadows:
        sh["e"][...] = 1.0
    app.run_gradient(doms, steps, 1, shadows)

    doms2 = app.make_domains()
    _res, tapes = app.run_codipack_gradient(doms2, steps)
    for r in range(8):
        for f in ("x", "e"):
            np.testing.assert_allclose(
                shadows[r][f], tapes[r].gradient_of(doms2[r][f]),
                rtol=1e-7, atol=1e-9, err_msg=f"rank{r}:{f}")


def test_gradient_thread_count_invariance():
    app = LuleshApp("openmp", nx=2)
    results = []
    for nt in (1, 3, 8):
        doms = app.make_domains()
        shadows = [d.shadow_arrays(1.0) for d in doms]
        app.run_gradient(doms, 3, nt, shadows)
        results.append(shadows[0]["x"].copy())
    np.testing.assert_allclose(results[0], results[1], rtol=1e-11)
    np.testing.assert_allclose(results[0], results[2], rtol=1e-11)


def test_gradient_scales_like_primal():
    """§VIII headline: the differentiated code scales like the original."""
    app = LuleshApp("openmp", nx=6)
    f_times, g_times = {}, {}
    for nt in (1, 8):
        doms = app.make_domains()
        f_times[nt] = app.run_forward(doms, 3, nt).time
        doms = app.make_domains()
        g_times[nt] = app.run_gradient(doms, 3, nt).time
    f_speedup = f_times[1] / f_times[8]
    g_speedup = g_times[1] / g_times[8]
    assert f_speedup > 2.0
    assert g_speedup > 0.5 * f_speedup


def test_unknown_flavor_rejected():
    with pytest.raises(ValueError, match="unknown flavor"):
        LuleshApp("cuda", nx=2)


def test_final_report_fields():
    app = LuleshApp("serial", nx=2)
    doms = app.make_domains()
    app.run_forward(doms, 5)
    rep = app.final_report(doms)
    assert rep["total_energy"] > 0
    assert rep["max_abs_velocity"] > 0
    assert rep["elapsed_time"] > 0
    assert 0 < rep["dt"] <= app.params.dt_max
    assert set(rep) == {"final_origin_energy", "total_energy",
                        "max_abs_velocity", "max_pressure",
                        "elapsed_time", "dt"}


def test_report_decomposition_invariant():
    app1 = LuleshApp("serial", nx=4)
    d1 = app1.make_domains()
    app1.run_forward(d1, 5)
    app8 = LuleshApp("mpi", nx=2, pr=2)
    d8 = app8.make_domains()
    app8.run_forward(d8, 5)
    r1, r8 = app1.final_report(d1), app8.final_report(d8)
    assert r1["total_energy"] == pytest.approx(r8["total_energy"],
                                               rel=1e-10)
    assert r1["max_abs_velocity"] == pytest.approx(
        r8["max_abs_velocity"], rel=1e-10)
    assert r1["final_origin_energy"] == pytest.approx(
        r8["final_origin_energy"], rel=1e-10)


def test_monoq_limiter_variant_matches_reference():
    """Neighbour-based monotonic q (lxim/.../lzetap indirection)."""
    from dataclasses import replace
    from repro.apps.lulesh import DEFAULT_PARAMS
    params = replace(DEFAULT_PARAMS, use_monoq_limiter=True)
    app = LuleshApp("serial", nx=3, params=params)
    doms = app.make_domains()
    ref = doms[0].copy()
    app.run_forward(doms, steps=6)
    lagrange_leapfrog(ref, 6)
    for f in CHECK_FIELDS:
        np.testing.assert_allclose(doms[0][f], ref[f], rtol=1e-9,
                                   atol=1e-12, err_msg=f)
    # the limiter actually changes q somewhere near the shock front
    base = LuleshApp("serial", nx=3)
    bdoms = base.make_domains()
    base.run_forward(bdoms, steps=6)
    assert not np.allclose(bdoms[0]["q"], doms[0]["q"])


def test_monoq_limiter_gradient_verifies():
    from dataclasses import replace
    from repro.apps.lulesh import DEFAULT_PARAMS
    params = replace(DEFAULT_PARAMS, use_monoq_limiter=True)
    app = LuleshApp("serial", nx=2, params=params)
    rev, fd = app.projection_check(steps=3)
    assert rev == pytest.approx(fd, rel=5e-5), (rev, fd)


def test_monoq_limiter_gradient_more_atomics():
    """The neighbour gathers in q reverse into data-dependent scatter
    adds — the limiter variant carries more atomic adjoint work."""
    from dataclasses import replace
    from repro.apps.lulesh import DEFAULT_PARAMS

    def atomics(params):
        app = LuleshApp("openmp", nx=3, params=params)
        doms = app.make_domains()
        g = app.run_gradient(doms, 3, num_threads=4)
        return g.cost.atomic_ops

    base = atomics(DEFAULT_PARAMS)
    lim = atomics(replace(DEFAULT_PARAMS, use_monoq_limiter=True))
    assert lim > base
