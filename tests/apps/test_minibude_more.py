"""Additional miniBUDE coverage: kernel terms, forward mode, scaling."""

import numpy as np
import pytest

from repro.ad import Duplicated
from repro.ad.forward import autodiff_forward
from repro.apps.minibude import MinibudeApp, make_deck
from repro.apps.minibude.deck import (
    DESOLV_SCALE,
    DESOLV_SIGMA,
    ELEC_CUTOFF,
    ELEC_SCALE,
    HARDNESS,
)
from repro.apps.minibude.kernels import ARG_NAMES
from repro.apps.minibude.reference import pose_energy, rotation
from repro.interp import ExecConfig, Executor


def test_rotation_is_orthonormal():
    ang = np.array([0.3, -1.1, 2.0])
    R = rotation(ang)
    np.testing.assert_allclose(R @ R.T, np.eye(3), atol=1e-12)
    assert np.linalg.det(R) == pytest.approx(1.0)


def test_identity_pose_energy():
    """Zero rotation+translation leaves the ligand at its reference
    placement; energy must equal the direct pair sum."""
    deck = make_deck(nprotein=6, nligand=3, nposes=1)
    deck.poses[0] = 0.0
    e = pose_energy(deck, deck.poses[0])
    # manual recomputation
    tot = 0.0
    for l in range(3):
        for p in range(6):
            d = np.sqrt(((deck.ligand_pos[l] - deck.protein_pos[p]) ** 2
                         ).sum() + 1e-12)
            distbb = d - (deck.protein_radius[p] + deck.ligand_radius[l])
            steric = -distbb * 2 * HARDNESS if distbb < 0 else 0.0
            elect = (deck.protein_charge[p] * deck.ligand_charge[l]
                     * ELEC_SCALE * max(1 - d / ELEC_CUTOFF, 0.0))
            dslv = (DESOLV_SCALE * deck.protein_hphb[p]
                    * deck.ligand_hphb[l]
                    * np.exp(-d * d / DESOLV_SIGMA ** 2))
            tot += steric + elect - dslv
    assert e == pytest.approx(0.5 * tot)


def test_translation_gradient_pushes_apart():
    """A ligand rammed into the protein centre gets a steric gradient
    pointing outward (energy decreases when moving away)."""
    deck = make_deck(nprotein=16, nligand=6, nposes=1)
    deck.poses[0, :] = 0.0
    # place ligand at the protein centroid: maximal clash
    centroid = deck.protein_pos.mean(axis=0)
    deck.poses[0, 3:] = centroid - deck.ligand_pos.mean(axis=0)
    app = MinibudeApp("serial", deck)
    shadows, _ = app.run_gradient()
    g_trans = shadows["poses"][3:]
    # moving along -gradient must reduce the energy
    e0 = app.run_forward().energies[0]
    deck.poses[0, 3:] -= 0.05 * g_trans / max(np.linalg.norm(g_trans),
                                              1e-9)
    e1 = MinibudeApp("serial", deck).run_forward().energies[0]
    assert e1 < e0


def test_forward_mode_on_minibude():
    deck = make_deck(nprotein=6, nligand=3, nposes=4)
    app = MinibudeApp("serial", deck)
    fwd = autodiff_forward(app.module, app.fn,
                           [Duplicated] * len(ARG_NAMES))
    flat = deck.flat_args()
    shadows = {n: np.zeros_like(flat[n]) for n in ARG_NAMES}
    shadows["poses"][...] = 1.0
    args = []
    for n in ARG_NAMES:
        args += [flat[n], shadows[n]]
    Executor(app.module).run(fwd, *args)
    jvp = shadows["energies"].sum()

    rev_shadows, _ = app.run_gradient()
    assert jvp == pytest.approx(rev_shadows["poses"].sum(), rel=1e-10)


def test_pose_count_scales_forward_time():
    t = {}
    for nposes in (32, 128):
        deck = make_deck(nprotein=12, nligand=6, nposes=nposes)
        app = MinibudeApp("serial", deck)
        t[nposes] = app.run_forward().time
    assert t[128] > 3.0 * t[32]


def test_gradient_wrt_charges():
    """Differentiate w.r.t. a deck parameter (ligand charges) instead of
    poses — the electrostatic term is linear in them."""
    deck = make_deck(nprotein=8, nligand=4, nposes=3)
    app = MinibudeApp("serial", deck)
    grad = app.grad_fn()
    flat = deck.flat_args()
    shadows = {n: np.zeros_like(flat[n]) for n in ARG_NAMES}
    shadows["energies"][...] = 1.0
    args = []
    for n in ARG_NAMES:
        args += [flat[n], shadows[n]]
    Executor(app.module).run(grad, *args)
    g = shadows["ligand_charge"]
    # finite difference on one charge
    eps = 1e-6
    d2 = make_deck(8, 4, 3)
    d2.ligand_charge[1] += eps
    ep = MinibudeApp("serial", d2).run_forward().energies.sum()
    d2.ligand_charge[1] -= 2 * eps
    em = MinibudeApp("serial", d2).run_forward().energies.sum()
    assert g[1] == pytest.approx((ep - em) / (2 * eps), rel=1e-5)
