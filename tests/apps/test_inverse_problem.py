"""Integration: use the LULESH gradient for an inverse problem.

The paper motivates AD with "gradient-based optimization [and] inverse
problems" (§I).  Here we recover an initial-energy perturbation from
the final state: gradient descent with the Enzyme-generated adjoint
must reduce the data-misfit loss monotonically — an end-to-end check
that the derivative is not just FD-consistent but *useful*.
"""

import numpy as np
import pytest

from repro.apps.lulesh import LuleshApp


def _loss_and_grad(app, e_init, target_e, steps):
    doms = app.make_domains()
    doms[0]["e"][...] = e_init
    g = app.params.gamma
    doms[0]["p"][...] = np.maximum((g - 1) * doms[0]["e"] / doms[0]["v"],
                                   0.0)
    app.run_forward(doms, steps)
    resid = doms[0]["e"] - target_e
    loss = 0.5 * float(resid @ resid)

    # reverse pass with the loss adjoint as the energy seed
    doms = app.make_domains()
    doms[0]["e"][...] = e_init
    doms[0]["p"][...] = np.maximum((g - 1) * doms[0]["e"] / doms[0]["v"],
                                   0.0)
    shadows = [d.shadow_arrays(0.0) for d in doms]
    # d(loss)/d(final e) = resid.
    shadows[0]["e"][...] = resid
    app.run_gradient(doms, steps, 1, shadows)
    # Total derivative w.r.t. the initial energy includes the chain
    # through the EOS-consistent initial pressure p0 = (γ-1) e0 / v0
    # (applied in the NumPy setup, outside the differentiated function).
    total = shadows[0]["e"] + shadows[0]["p"] * (g - 1) / doms[0]["v"]
    return loss, total


@pytest.mark.slow
def test_gradient_descent_recovers_energy():
    app = LuleshApp("serial", nx=2)
    steps = 3

    # ground truth: base Sedov + a bump in element 5
    doms = app.make_domains()
    true_e = doms[0]["e"].copy()
    true_e[5] += 2000.0
    target_doms = app.make_domains()
    target_doms[0]["e"][...] = true_e
    g = app.params.gamma
    target_doms[0]["p"][...] = np.maximum(
        (g - 1) * target_doms[0]["e"] / target_doms[0]["v"], 0.0)
    app.run_forward(target_doms, steps)
    target_final_e = target_doms[0]["e"].copy()

    # start from the unperturbed Sedov state
    e_init = app.make_domains()[0]["e"].copy()
    losses = []
    lr = 0.4
    for it in range(12):
        loss, grad = _loss_and_grad(app, e_init, target_final_e, steps)
        losses.append(loss)
        e_init = e_init - lr * grad
    final_loss, _ = _loss_and_grad(app, e_init, target_final_e, steps)
    losses.append(final_loss)

    assert losses[-1] < 1e-3 * losses[0], losses
    # monotone decrease (smooth quadratic-ish misfit at this scale)
    assert all(b <= a * 1.001 for a, b in zip(losses, losses[1:]))
    # the recovered bump is in the right element
    doms0 = app.make_domains()
    delta = e_init - doms0[0]["e"]
    assert np.argmax(np.abs(delta)) == 5
    assert delta[5] == pytest.approx(2000.0, rel=0.05)
