"""Checkpointed adjoint on the LULESH time loop (ISSUE acceptance:
64 steps, bit-identical to cache-all under both backends, with peak
cached state O(log steps) instead of O(steps))."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.lulesh.driver import LuleshApp

STEPS = 64


def _gradient(adjoint, backend, flavor="serial", steps=STEPS,
              num_threads=1):
    app = LuleshApp(flavor, 3, backend=backend, adjoint=adjoint)
    doms = app.make_domains()
    shadows = [d.shadow_arrays(seed=1.0) for d in doms]
    app.run_gradient(doms, steps, num_threads, shadows)
    return shadows[0], app.last_adjoint_stats, app.adjoint_report


@pytest.mark.parametrize("backend", ["interp", "compiled"])
def test_checkpoint_64_steps_bit_identical_and_sublinear(backend):
    sh_ca, st_ca, _ = _gradient(None, backend)
    sh_ck, st_ck, rep = _gradient("checkpoint", backend)
    assert [e["loop"] for e in rep["managed"]] == ["s"]
    assert rep["fallbacks"] == []
    for field in sorted(sh_ca):
        np.testing.assert_array_equal(sh_ca[field], sh_ck[field],
                                      err_msg=field)
    # The CI perf gate: strictly below cache-all at 64 steps.  The
    # revolve machine keeps ceil(log2 64)+2 = 8 snapshots of the
    # mutable domain state vs 64 iterations of cached intermediates.
    assert st_ck["peak_cached_bytes"] < st_ca["peak_cached_bytes"]
    assert st_ck["peak_cached_bytes"] < st_ca["peak_cached_bytes"] / 4


def test_checkpoint_openmp_time_loop_managed():
    """The fork/workshare flavor's serial time loop is still eligible."""
    sh_ca, _, _ = _gradient(None, "interp", flavor="openmp", steps=8,
                            num_threads=2)
    sh_ck, _, rep = _gradient("checkpoint", "interp", flavor="openmp",
                              steps=8, num_threads=2)
    assert [e["loop"] for e in rep["managed"]] == ["s"]
    for field in sorted(sh_ca):
        np.testing.assert_array_equal(sh_ca[field], sh_ck[field],
                                      err_msg=field)
