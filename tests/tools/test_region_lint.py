"""region_lint CLI: suite collection over the real apps, the
expected-reasons baseline round-trip, and nonzero exits on findings
(OOB accesses, snapshot drift)."""

from __future__ import annotations

import copy
import json
import pathlib

import pytest

from repro.tools.region_lint import (
    _PROGRAMS,
    baseline_view,
    collect,
    main,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def payload():
    return collect(nx=2)


def test_collect_covers_all_programs(payload):
    assert set(payload["reports"]) == set(_PROGRAMS)
    for label, rep in payload["reports"].items():
        assert rep["tool"] == "regioncheck"
        # Every parallel program reports regions with statement-level
        # classifications; lulesh_serial legitimately has none.
        if label != "lulesh_serial":
            assert rep["regions"], f"{label} reported no regions"
            for region in rep["regions"]:
                assert region["statements"]  or region["claimable"]
        assert rep["bounds"]["proven"] > 0
        assert rep["bounds"]["oob"] == 0


def test_every_workshare_body_is_classified(payload):
    for label in ("lulesh_openmp", "lulesh_raja", "minibude_openmp"):
        rep = payload["reports"][label]
        shares = [r for r in rep["regions"]
                  if r["kind"].startswith("workshare")]
        assert shares, f"{label}: no workshare regions found"
        for region in shares:
            assert region["statements"]
            for stmt in region["statements"]:
                assert stmt["reason"]


def test_committed_baseline_matches(payload):
    """The snapshot in REGION_baseline.json is what the current code
    produces (CI gates on this via --check)."""
    with open(REPO_ROOT / "REGION_baseline.json") as f:
        expected = json.load(f)
    assert baseline_view(payload)["programs"] == expected["programs"]


def test_cli_clean_and_drift(tmp_path, capsys):
    base = tmp_path / "base.json"
    out = tmp_path / "out.json"
    rc = main(["--write-baseline", str(base), "--out", str(out)])
    assert rc == 0
    capsys.readouterr()

    # Same baseline: clean.
    assert main(["--check", str(base)]) == 0
    capsys.readouterr()

    # Perturbed baseline: drift, nonzero exit.
    with open(base) as f:
        doc = json.load(f)
    tweaked = copy.deepcopy(doc)
    prog = next(iter(tweaked["programs"]))
    tweaked["programs"][prog]["bounds"]["proven"] += 1
    with open(base, "w") as f:
        json.dump(tweaked, f)
    assert main(["--check", str(base)]) == 1
    err = capsys.readouterr().err
    assert "drift" in err

    # The --out payload renders through summarize --region-report.
    from repro.tools.summarize import render_region_report
    with open(out) as f:
        text = render_region_report(json.load(f))
    assert "regioncheck @lulesh_openmp" in text
