"""The CI perf gate: regression detection and cache-state assertions
of ``repro.tools.bench_compare``."""

import json

from repro.tools.bench_compare import check_cache, compare, main


def _report(rows):
    return {"tool": "backend-bench", "mode": "smoke", "rows": rows}


def _row(case, speedup, headline=True, dev=0.0, clock=True, cost=True,
         cache=None):
    row = {"case": case, "headline": headline, "speedup": speedup,
           "max_abs_dev": dev, "clock_match": clock, "cost_match": cost,
           "interp_seconds": 1.0, "compiled_seconds": 1.0 / speedup}
    if cache is not None:
        row["backend"] = {"cache": cache}
    return row


def test_no_regression_passes():
    base = _report([_row("a", 6.0), _row("b", 8.0)])
    cand = _report([_row("a", 5.5), _row("b", 9.0)])
    rows, failures = compare(base, cand, 0.20)
    assert failures == []
    assert {r["case"] for r in rows} == {"a", "b"}


def test_headline_regression_fails():
    base = _report([_row("a", 6.0)])
    cand = _report([_row("a", 4.0)])  # -33%
    _, failures = compare(base, cand, 0.20)
    assert len(failures) == 1
    assert "regressed" in failures[0]


def test_non_headline_rows_do_not_gate():
    base = _report([_row("a", 3.0, headline=False)])
    cand = _report([_row("a", 1.0, headline=False)])
    _, failures = compare(base, cand, 0.20)
    assert failures == []


def test_regression_exactly_at_limit_passes():
    base = _report([_row("a", 5.0)])
    cand = _report([_row("a", 4.0)])  # exactly -20%
    _, failures = compare(base, cand, 0.20)
    assert failures == []


def test_candidate_divergence_fails_regardless_of_speed():
    base = _report([_row("a", 5.0)])
    cand = _report([_row("a", 9.0, dev=1e-9)])
    _, failures = compare(base, cand, 0.20)
    assert any("deviation" in f for f in failures)
    cand = _report([_row("a", 9.0, clock=False)])
    _, failures = compare(base, cand, 0.20)
    assert any("clocks" in f for f in failures)
    cand = _report([_row("a", 9.0, cost=False)])
    _, failures = compare(base, cand, 0.20)
    assert any("cost" in f for f in failures)


def test_case_only_in_baseline_is_listed_not_failed():
    base = _report([_row("a", 6.0), _row("full-only", 2.0,
                                         headline=False)])
    cand = _report([_row("a", 6.0)])
    rows, failures = compare(base, cand, 0.20)
    assert failures == []
    (missing,) = [r for r in rows if r["case"] == "full-only"]
    assert missing["candidate_speedup"] is None


def test_new_candidate_case_compares_against_nothing():
    base = _report([_row("a", 6.0)])
    cand = _report([_row("a", 6.0), _row("new", 1.0)])
    rows, failures = compare(base, cand, 0.20)
    assert failures == []
    (new,) = [r for r in rows if r["case"] == "new"]
    assert new["baseline_speedup"] is None and new["change"] is None


# ---------------------------------------------------------------------------
# Cache-state assertions
# ---------------------------------------------------------------------------

def test_cold_cache_expectations():
    ok = _report([_row("a", 5.0, cache={"hits": 0, "misses": 2,
                                        "stores": 2, "errors": 0})])
    assert check_cache(ok, "cold") == []
    warm_counters = _report([_row("a", 5.0,
                                  cache={"hits": 2, "misses": 0,
                                         "stores": 0, "errors": 0})])
    assert check_cache(warm_counters, "cold") != []


def test_warm_cache_expectations():
    ok = _report([_row("a", 5.0, cache={"hits": 2, "misses": 0,
                                        "stores": 0, "errors": 0})])
    assert check_cache(ok, "warm") == []
    for bad in ({"hits": 0, "misses": 1, "stores": 1, "errors": 0},
                {"hits": 1, "misses": 1, "stores": 1, "errors": 0},
                {"hits": 1, "misses": 0, "stores": 0, "errors": 1}):
        rep = _report([_row("a", 5.0, cache=bad)])
        assert check_cache(rep, "warm") != [], bad


def test_missing_cache_counters_fail():
    rep = _report([_row("a", 5.0)])  # no backend stats at all
    assert check_cache(rep, "warm") != []


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def _write(tmp_path, name, payload):
    p = tmp_path / name
    p.write_text(json.dumps(payload))
    return str(p)


def test_main_pass_and_fail_exit_codes(tmp_path, capsys):
    base = _write(tmp_path, "base.json", _report([_row("a", 6.0)]))
    good = _write(tmp_path, "good.json", _report([_row("a", 6.1)]))
    bad = _write(tmp_path, "bad.json", _report([_row("a", 1.0)]))
    assert main([base, good]) == 0
    assert "OK" in capsys.readouterr().out
    assert main([base, bad]) == 1
    assert "FAIL" in capsys.readouterr().err


def test_main_rejects_non_reports(tmp_path):
    junk = _write(tmp_path, "junk.json", {"tool": "something-else"})
    ok = _write(tmp_path, "ok.json", _report([]))
    assert main([junk, ok]) == 2
    assert main([ok, str(tmp_path / "missing.json")]) == 2


def test_main_expect_cache(tmp_path):
    base = _write(tmp_path, "base.json", _report([_row("a", 6.0)]))
    warm = _write(tmp_path, "warm.json", _report(
        [_row("a", 6.0, cache={"hits": 1, "misses": 0, "stores": 0,
                               "errors": 0})]))
    assert main([base, warm, "--expect-cache", "warm"]) == 0
    assert main([base, warm, "--expect-cache", "cold"]) == 1
