"""CoDiPack-model tape: correctness and character."""

import numpy as np
import pytest

from repro.baselines import TapeError, codipack_gradient, \
    codipack_mpi_gradient
from repro.baselines.codipack import CoDiPackTape
from repro.interp import ExecConfig, Executor
from repro.ir import F64, I64, IRBuilder, Ptr, verify_module


def _poly_module():
    b = IRBuilder()
    with b.function("poly", [("x", Ptr()), ("y", Ptr()), ("n", I64)]) as f:
        x, y, n = f.args
        with b.for_(0, n, simd=True) as i:
            v = b.load(x, i)
            b.store(v * v * v + b.sin(v), y, i)
    return b


def test_serial_gradient():
    b = _poly_module()
    xs = np.arange(1.0, 6.0)
    ys = np.zeros(5)
    grads, ex = codipack_gradient(b.module, "poly", (xs, ys, 5),
                                  seed_arrays=[ys], wrt_arrays=[xs])
    expect = 3 * np.arange(1.0, 6.0) ** 2 + np.cos(np.arange(1.0, 6.0))
    np.testing.assert_allclose(grads[0], expect)


def test_taping_records_cost():
    b = _poly_module()
    xs, ys = np.ones(5), np.zeros(5)
    _g, ex = codipack_gradient(b.module, "poly", (xs, ys, 5),
                               seed_arrays=[ys], wrt_arrays=[xs])
    assert ex.cost.tape_ops > 0
    assert ex.cost.tape_bytes > 0


def test_branchy_kernel():
    b = IRBuilder()
    with b.function("k", [("x", Ptr()), ("y", Ptr()), ("n", I64)]) as f:
        x, y, n = f.args
        with b.for_(0, n) as i:
            v = b.load(x, i)
            with b.if_(v > 1.0):
                b.store(v * v, y, i)
            with b.else_():
                b.store(-v, y, i)
    xs = np.array([0.5, 2.0, 3.0])
    ys = np.zeros(3)
    grads, _ = codipack_gradient(b.module, "k", (xs, ys, 3),
                                 seed_arrays=[ys], wrt_arrays=[xs])
    np.testing.assert_allclose(grads[0], [-1.0, 4.0, 6.0])


def test_overwrites_tracked_through_memory():
    """Cells re-assigned get new identifiers; old flows survive."""
    b = IRBuilder()
    with b.function("k", [("x", Ptr())]) as f:
        x = f.args[0]
        v = b.load(x, 0)
        b.store(v * v, x, 0)       # x0 := x0^2
        w = b.load(x, 0)
        b.store(w * 3.0, x, 0)     # x0 := 3 x0^2
    xs = np.array([2.0])
    grads, _ = codipack_gradient(b.module, "k", (xs,), seed_arrays=[xs],
                                 wrt_arrays=[xs])
    np.testing.assert_allclose(grads[0], [12.0 * 1.0])  # d(3x^2)=6x=12


def test_threaded_taping_rejected():
    """CoDiPack cannot record shared-memory parallel regions (§VIII)."""
    b = IRBuilder()
    with b.function("k", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        with b.parallel_for(0, n) as i:
            b.store(b.load(x, i) * 2.0, x, i)
    ex = Executor(b.module, ExecConfig(num_threads=4))
    ex.interp.tape = CoDiPackTape(ex.interp)
    with pytest.raises(TapeError, match="serial"):
        ex.run("k", np.ones(8), 8)


def test_mpi_tape_gradient():
    b = IRBuilder()
    with b.function("ring", [("x", Ptr()), ("y", Ptr()), ("n", I64)]) as f:
        x, y, n = f.args
        rank = b.call("mpi.comm_rank")
        size = b.call("mpi.comm_size")
        tmp = b.alloc(n)
        r1 = b.call("mpi.isend", x, n, (rank + 1) % size, 7)
        r2 = b.call("mpi.irecv", tmp, n, (rank + size - 1) % size, 7)
        b.call("mpi.wait", r1)
        b.call("mpi.wait", r2)
        with b.for_(0, n, simd=True) as i:
            t = b.load(tmp, i)
            b.store(t * t, y, i)
    P, n = 3, 2
    xs = [np.arange(1.0, n + 1) * (r + 1) for r in range(P)]
    ys = [np.zeros(n) for _ in range(P)]
    grads, res = codipack_mpi_gradient(
        b.module, "ring", P, lambda r: (xs[r], ys[r], n),
        seed_indices=[1], wrt_indices=[0])
    for r in range(P):
        np.testing.assert_allclose(grads[r][0],
                                   2 * np.arange(1.0, n + 1) * (r + 1))


def test_mpi_allreduce_min_tape():
    b = IRBuilder()
    with b.function("arm", [("x", Ptr()), ("y", Ptr())]) as f:
        x, y = f.args
        m = b.alloc(1)
        b.call("mpi.allreduce", x, m, 1, op="min")
        b.store(b.load(m, 0) * 10.0, y, 0)
    P = 3
    xs = [np.array([5.0 - r]) for r in range(P)]  # min at last rank
    ys = [np.zeros(1) for _ in range(P)]
    grads, _ = codipack_mpi_gradient(
        b.module, "arm", P, lambda r: (xs[r], ys[r]),
        seed_indices=[1], wrt_indices=[0])
    assert grads[P - 1][0][0] == pytest.approx(P * 10.0)
    assert grads[0][0][0] == 0.0
