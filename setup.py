"""Setuptools shim (the offline environment lacks the `wheel` package,
so PEP 517 editable installs are unavailable; this enables the legacy
`pip install -e . --no-use-pep517` path)."""

from setuptools import setup

setup()
