"""OpenMPOpt analogue: parallel-region optimizations (paper §V-E, §VIII).

The paper extends LLVM's OpenMPOpt to hoist loads out of parallel
regions; with the pointer indirection moved out of the loop, alias
analysis improves and Enzyme avoids caching loop data (the miniBUDE
result: gradient overhead stays flat with OpenMPOpt, grows without).

This pass implements the same three mechanisms on our IR:

1. **Parallel-region invariant hoisting** — loads (and pure ops,
   including ``jl.arrayptr`` indirections) whose operands are defined
   outside a ``parallel_for``/``fork`` region and whose memory is not
   written inside it move in front of the region.
2. **Store-to-load forwarding** at function depth — closure-record
   loads pick up the SSA pointer that was stored, recovering `noalias`
   argument provenance.
3. **Parallel-region merging** — adjacent ``parallel_for`` regions with
   identical bounds and provably disjoint memory footprints fuse,
   saving fork overhead (the post-AD fork merge §V-E mentions).
"""

from __future__ import annotations

from ..ir.function import Function, Module
from ..ir.opinfo import OP_INFO
from ..ir.ops import Block, Op
from ..ir.values import BlockArg, Constant, Value
from .aliasing import UNKNOWN, analyze_aliasing
from .licm import LICM
from .pass_manager import FunctionPass


class OpenMPOpt(FunctionPass):
    name = "openmp-opt"

    def __init__(self, merge_regions: bool = True) -> None:
        self.merge_regions = merge_regions

    def run(self, fn: Function, module: Module) -> bool:
        changed = self._hoist(fn, module)
        changed |= self._forward_stores(fn, module)
        if self.merge_regions:
            changed |= self._merge(fn, module)
        return changed

    # ------------------------------------------------------------------
    def _hoist(self, fn: Function, module: Module) -> bool:
        """Hoist invariants out of parallel regions (reuses the LICM
        machinery, which treats parallel_for like any loop; fork regions
        are handled here)."""
        licm = LICM(hoist_loads=True)
        licm.aliasing = analyze_aliasing(fn, module)
        changed = False
        for block, defined in _blocks_with_scope(fn):
            for op in list(block.ops):
                if op.opcode in ("parallel_for", "fork"):
                    changed |= licm._hoist_from(op, block, set(defined[op]),
                                                module)
        return changed

    # ------------------------------------------------------------------
    def _forward_stores(self, fn: Function, module: Module) -> bool:
        """Replace loads with the value stored to the same location when
        the store is in the same block with no intervening writes.

        Matching is by identical (pointer value, index value/constant);
        this is exactly what the OpenMP closure-record pattern needs.
        """
        aliasing = analyze_aliasing(fn, module)
        replaced: dict[Value, Value] = {}
        changed = False

        def scan(block: Block) -> None:
            nonlocal changed
            available: dict[tuple, Value] = {}
            for op in block.ops:
                oc = op.opcode
                if oc == "store":
                    key = _loc_key(op.operands[1], op.operands[2])
                    if key is not None:
                        # Invalidate anything this store may alias.
                        p = aliasing.provenance(op.operands[1])
                        for k in list(available):
                            if k[0] is not key[0]:
                                other_p = aliasing.provenance(k[0])
                                from .aliasing import provs_may_alias
                                if provs_may_alias(p, other_p):
                                    del available[k]
                        available[key] = op.operands[0]
                    else:
                        available.clear()
                elif oc == "load":
                    key = _loc_key(op.operands[0], op.operands[1])
                    if key is not None and key in available:
                        val = available[key]
                        if val.type is op.result.type:
                            replaced[op.result] = val
                            changed = True
                elif oc in ("atomic", "memset", "memcpy"):
                    available.clear()
                elif oc == "call":
                    callee = op.attrs["callee"]
                    info = module.intrinsics.get(callee)
                    if info is None or info.effects != "pure":
                        available.clear()
                elif op.has_regions:
                    available.clear()
                    for region in op.regions:
                        scan(region)

        scan(fn.body)
        if replaced:
            for op in fn.walk():
                op.operands = [replaced.get(v, v) for v in op.operands]
        return changed

    # ------------------------------------------------------------------
    def _merge(self, fn: Function, module: Module) -> bool:
        aliasing = analyze_aliasing(fn, module)
        changed = False

        def footprint(op: Op):
            reads, writes, unknown = set(), set(), False
            for inner in op.walk():
                tgt = None
                if inner.opcode == "load":
                    p = aliasing.provenance(inner.operands[0])
                    if UNKNOWN in p:
                        unknown = True
                    reads |= set(p)
                elif inner.opcode in ("store", "atomic"):
                    tgt = inner.operands[1]
                elif inner.opcode in ("memset", "memcpy"):
                    tgt = inner.operands[0]
                elif inner.opcode == "call":
                    unknown = True
                if tgt is not None:
                    p = aliasing.provenance(tgt)
                    if UNKNOWN in p:
                        unknown = True
                    writes |= set(p)
            return reads, writes, unknown

        def visit(block: Block) -> None:
            nonlocal changed
            i = 0
            while i + 1 < len(block.ops):
                a, b = block.ops[i], block.ops[i + 1]
                if (a.opcode == "parallel_for" and b.opcode == "parallel_for"
                        and _same_value(a.operands[0], b.operands[0])
                        and _same_value(a.operands[1], b.operands[1])
                        and a.attrs.get("framework") ==
                        b.attrs.get("framework")):
                    ra, wa, ua = footprint(a)
                    rb, wb, ub_ = footprint(b)
                    if not (ua or ub_) and not (wa & (rb | wb)) \
                            and not (wb & ra):
                        self._fuse(a, b)
                        block.remove(b)
                        changed = True
                        continue
                for region in a.regions:
                    visit(region)
                i += 1
            if block.ops:
                for region in block.ops[-1].regions:
                    visit(region)

        visit(fn.body)
        return changed

    @staticmethod
    def _fuse(a: Op, b: Op) -> None:
        """Splice b's body into a's, remapping b's induction variable."""
        iv_a = a.regions[0].args[0]
        iv_b = b.regions[0].args[0]
        remap = {iv_b: iv_a}
        for op in b.regions[0].ops:
            cloned = op.clone(remap)
            a.regions[0].append(cloned)


def _same_value(a: Value, b: Value) -> bool:
    if a is b:
        return True
    return (isinstance(a, Constant) and isinstance(b, Constant)
            and a.value == b.value)


def _loc_key(ptr: Value, idx: Value):
    if isinstance(idx, Constant):
        return (ptr, ("c", idx.value))
    return (ptr, ("v", id(idx)))


def _blocks_with_scope(fn: Function):
    """Yield (block, {op: defined-before-op set}) for parallel hoisting."""
    out = []

    def visit(block: Block, defined: set) -> None:
        local = set(defined)
        scope_map: dict[Op, set] = {}
        for op in block.ops:
            scope_map[op] = set(local)
            for region in op.regions:
                inner = set(local)
                inner.update(region.args)
                visit(region, inner)
            if op.result is not None:
                local.add(op.result)
        out.append((block, scope_map))

    visit(fn.body, set(fn.args))
    return out
