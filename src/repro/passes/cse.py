"""Common subexpression elimination (block-local value numbering).

Pure computational ops and pointer arithmetic with identical opcodes,
operands, and attributes within the same block are merged.  Loads are
deliberately not merged (that would require a memory-dependence check;
LICM and OpenMPOpt handle the profitable load cases).
"""

from __future__ import annotations

from ..ir.function import Function, Module
from ..ir.opinfo import OP_INFO
from ..ir.ops import Block, Op
from ..ir.values import Constant, Value
from .pass_manager import FunctionPass

_PURE_INTRINSICS = {"mpi.comm_rank", "mpi.comm_size", "rt.num_threads"}


def _key(op: Op):
    oc = op.opcode
    info = OP_INFO.get(oc)
    pure_call = oc == "call" and op.attrs["callee"] in _PURE_INTRINSICS
    if info is None and oc != "ptradd" and not pure_call:
        return None
    if op.result is None:
        return None
    operand_ids = tuple(
        ("c", v.value) if isinstance(v, Constant) else ("v", id(v))
        for v in op.operands)
    attr_items = tuple(sorted(
        (k, v) for k, v in op.attrs.items() if isinstance(v, (str, int,
                                                              bool, float))))
    if info is not None and info.commutative:
        operand_ids = tuple(sorted(operand_ids))
    return (oc, operand_ids, attr_items)


class CSE(FunctionPass):
    name = "cse"

    def run(self, fn: Function, module: Module) -> bool:
        self.replacements: dict[Value, Value] = {}
        self._block(fn.body)
        if not self.replacements:
            return False
        for op in fn.walk():
            new_ops = [self.replacements.get(v, v) for v in op.operands]
            if any(a is not b for a, b in zip(new_ops, op.operands)):
                op.operands = new_ops
        # Dead originals are cleaned up by DCE.
        return True

    def _block(self, block: Block) -> None:
        seen: dict = {}
        for op in block.ops:
            # Resolve operands through earlier replacements so chains
            # of identical expressions collapse in one pass.
            if self.replacements:
                op.operands = [self.replacements.get(v, v)
                               for v in op.operands]
            k = _key(op)
            if k is not None:
                prev = seen.get(k)
                if prev is not None:
                    self.replacements[op.result] = prev.result
                else:
                    seen[k] = op
            for region in op.regions:
                self._block(region)
