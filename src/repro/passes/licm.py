"""Loop-invariant code motion.

Hoists pure computational ops (and loads from memory not written inside
the loop) out of ``for``/``parallel_for``/``while`` bodies when all
operands are defined outside the region.  Loads are hoisted
speculatively (buffers in this IR are always dereferenceable), which is
what allows the later AD transform to find the values at function depth
and skip caching them — the interplay §V-E describes.
"""

from __future__ import annotations

from ..ir.function import Function, Module
from ..ir.opinfo import OP_INFO
from ..ir.ops import Block, Op
from ..ir.types import PointerType
from ..ir.values import Constant, Value
from ..passes.aliasing import UNKNOWN, analyze_aliasing
from .pass_manager import FunctionPass


class LICM(FunctionPass):
    name = "licm"

    def __init__(self, hoist_loads: bool = True) -> None:
        self.hoist_loads = hoist_loads

    def run(self, fn: Function, module: Module) -> bool:
        self.aliasing = analyze_aliasing(fn, module)
        return self._visit(fn.body, outer_defined=set(
            list(fn.args)), module=module)

    def _visit(self, block: Block, outer_defined: set, module) -> bool:
        changed = False
        defined = set(outer_defined)
        for op in list(block.ops):
            # Parallel constructs are opaque to plain LICM — in real
            # LLVM the outlined ``__kmpc_fork`` body is a separate
            # function.  Hoisting out of them is OpenMPOpt's job.
            if op.opcode in ("for", "while") and not \
                    op.attrs.get("workshare"):
                changed |= self._hoist_from(op, block, defined, module)
            for region in op.regions:
                inner = set(defined)
                inner.update(region.args)
                # Results inside the region become visible there during
                # the recursive walk.
                changed |= self._visit(region, inner, module)
            if op.result is not None:
                defined.add(op.result)
        return changed

    def _region_writes(self, op: Op):
        writes, unknown = self.aliasing.region_written_origins(op)
        return set(writes), unknown

    def _hoist_from(self, loop: Op, parent: Block, defined: set,
                    module) -> bool:
        body = loop.regions[0]
        writes, unknown_writes = self._region_writes(loop)
        changed = False
        moved = True
        while moved:
            moved = False
            for op in list(body.ops):
                if not self._hoistable(op, defined, writes, unknown_writes,
                                       module):
                    continue
                body.remove(op)
                at = parent.ops.index(loop)
                parent.insert(at, op)
                defined.add(op.result)
                moved = changed = True
        return changed

    def _hoistable(self, op: Op, defined: set, writes, unknown_writes,
                   module) -> bool:
        if op.result is None or op.has_regions:
            return False
        for v in op.operands:
            if not isinstance(v, Constant) and v not in defined:
                return False
        oc = op.opcode
        if oc in OP_INFO or oc == "ptradd":
            return True
        if oc == "load" and self.hoist_loads:
            if unknown_writes:
                return False
            p = self.aliasing.provenance(op.operands[0])
            if UNKNOWN in p:
                return False
            return not (set(p) & writes)
        if oc == "call":
            info = module.intrinsics.get(op.attrs["callee"])
            return info is not None and info.effects == "pure"
        return False
