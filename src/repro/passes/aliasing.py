"""Pointer provenance and alias analysis.

Allocation-site based, flow-insensitive.  Each pointer SSA value gets a
*provenance*: a set of origins it may point into.

Origins:

* ``("arg", Argument)`` — a pointer argument.  Arguments marked
  ``noalias`` are assumed pairwise disjoint from every other argument
  (the `restrict` convention the benchmark apps follow).
* ``("alloc", AllocOp)`` — a fresh allocation; distinct allocs never
  alias, and never alias arguments.
* ``UNKNOWN`` — anything else; may alias everything.  Notably the
  result of ``jl.arrayptr`` is UNKNOWN: the extra indirection of Julia
  array descriptors defeats the analysis exactly as the paper reports
  for miniBUDE.jl (§VIII) — unless an optimization pass first forwards
  the descriptor's definition (see :mod:`repro.passes.openmp_opt`).

The analysis also tracks which origins may be *written* anywhere in the
function (stores, atomics, memset/memcpy, writing intrinsics such as
``mpi.recv``).  The AD cache planner uses this to decide whether a load
can be rematerialized in the reverse pass (only loads from read-only
origins can — re-loading an overwritten location would observe the
final, not the original, value).
"""

from __future__ import annotations

from typing import Optional

from ..ir.function import Function, IntrinsicInfo, Module
from ..ir.ops import Op
from ..ir.types import PointerType
from ..ir.values import Argument, BlockArg, Constant, Result, Value

UNKNOWN = ("unknown",)

#: Intrinsics that write through their pointer arguments (arg indices).
_WRITING_INTRINSICS: dict[str, tuple[int, ...]] = {
    "mpi.recv": (0,),
    "mpi.irecv": (0,),
    "mpi.allreduce": (1,),
    "mpi.reduce": (1,),
    "mpi.bcast": (0,),
}

#: Intrinsics whose pointer result derives opaquely from the argument.
_OPAQUE_DERIVES = {"jl.arrayptr"}

#: Intrinsics with pointer arguments that never write through them.
_NONWRITING_INTRINSICS = {
    "mpi.send", "mpi.isend", "jl.gc_preserve_begin", "jl.gc_preserve_end",
    "cache.push", "cache.pop", "cache.create", "cache.destroy",
}


class AliasInfo:
    """Result of provenance analysis over one function."""

    def __init__(self) -> None:
        self.prov: dict[Value, frozenset] = {}
        self.written: set = set()
        self.has_unknown_write = False
        #: Per alloc/arg origin: provenances of pointers stored into it
        #: (for pointers held in memory, e.g. closure records).
        self.stored_ptrs: dict = {}
        self._region_writes_cache: dict[Op, tuple[frozenset, bool]] = {}

    # ------------------------------------------------------------------
    def provenance(self, ptr: Value) -> frozenset:
        return self.prov.get(ptr, frozenset([UNKNOWN]))

    def may_alias(self, a: Value, b: Value) -> bool:
        return provs_may_alias(self.provenance(a), self.provenance(b))

    def is_readonly(self, ptr: Value) -> bool:
        """True if no write in the function may touch ``ptr``'s origins."""
        p = self.provenance(ptr)
        if UNKNOWN in p:
            return False
        if self.has_unknown_write:
            return False
        return not (p & self.written)

    def points_to_single_alloc(self, ptr: Value) -> Optional[Op]:
        p = self.provenance(ptr)
        if len(p) == 1:
            (origin,) = p
            if origin[0] == "alloc":
                return origin[1]
        return None

    # ------------------------------------------------------------------
    # Per-region write tracking (public: regioncheck and LICM consume it)
    # ------------------------------------------------------------------
    def region_written_origins(self, region_op: Op) -> tuple[frozenset,
                                                             bool]:
        """Origins that may be written by any op nested inside
        ``region_op``, plus a has-unknown-write flag.  Unlike the
        whole-function :attr:`written` set this is per-origin precise
        for the known writing intrinsics (``mpi.recv`` writes only its
        receive buffer; ``mpi.send`` writes nothing), so read-only
        buffers inside an MPI-using region stay read-only.  Cached per
        op."""
        cached = self._region_writes_cache.get(region_op)
        if cached is not None:
            return cached
        origins: set = set()
        unknown = False
        for inner in region_op.walk():
            oc = inner.opcode
            target: Optional[Value] = None
            if oc in ("store", "atomic"):
                target = inner.operands[1]
            elif oc in ("memset", "memcpy"):
                target = inner.operands[0]
            elif oc == "call":
                callee = inner.attrs["callee"]
                idxs = _WRITING_INTRINSICS.get(callee)
                if idxs is not None:
                    for i in idxs:
                        p = self.provenance(inner.operands[i])
                        if UNKNOWN in p:
                            unknown = True
                        origins |= set(p)
                elif callee in _NONWRITING_INTRINSICS:
                    pass
                elif callee.startswith("mpi.") or \
                        callee.startswith("mpid."):
                    # e.g. mpi.wait completing an irecv posted outside
                    # the region: the write lands here.
                    unknown = True
                else:
                    for v in inner.operands:
                        if isinstance(v.type, PointerType):
                            p = self.provenance(v)
                            if UNKNOWN in p:
                                unknown = True
                            origins |= set(p)
            if target is not None:
                p = self.provenance(target)
                if UNKNOWN in p:
                    unknown = True
                origins |= set(p)
        out = (frozenset(origins), unknown)
        self._region_writes_cache[region_op] = out
        return out

    def readonly_in_region(self, ptr: Value, region_op: Op) -> bool:
        """True if no write *inside* ``region_op`` may touch ``ptr``'s
        origins — the per-region analogue of :meth:`is_readonly`."""
        p = self.provenance(ptr)
        if UNKNOWN in p:
            return False
        writes, unknown = self.region_written_origins(region_op)
        if unknown:
            return False
        return not (p & writes)


def provs_may_alias(pa: frozenset, pb: frozenset) -> bool:
    if UNKNOWN in pa or UNKNOWN in pb:
        return True
    if pa & pb:
        return True
    # Distinct allocs never alias; allocs never alias args; two args may
    # alias unless one of them is marked noalias.
    for oa in pa:
        for ob in pb:
            if oa[0] == "arg" and ob[0] == "arg":
                a_attr = oa[1].attrs.get("noalias")
                b_attr = ob[1].attrs.get("noalias")
                if not (a_attr or b_attr):
                    return True
    return False


def analyze_aliasing(fn: Function, module: Module) -> AliasInfo:
    info = AliasInfo()
    prov = info.prov

    for arg in fn.args:
        if isinstance(arg.type, PointerType):
            prov[arg] = frozenset([("arg", arg)])

    def p_of(v: Value) -> frozenset:
        if isinstance(v, Constant):
            return frozenset()
        return prov.get(v, frozenset([UNKNOWN]))

    # Iterate to a fixpoint: pointers can round-trip through memory.
    for _round in range(8):
        changed = False

        def update(v: Value, newp: frozenset) -> None:
            nonlocal changed
            old = prov.get(v)
            if old is None or old != (old | newp):
                prov[v] = (old or frozenset()) | newp
                changed = True

        for op in fn.walk():
            oc = op.opcode
            if oc == "alloc":
                update(op.result, frozenset([("alloc", op)]))
            elif oc == "ptradd":
                update(op.result, p_of(op.operands[0]))
            elif oc == "load" and isinstance(op.result.type if op.result
                                             else None, PointerType):
                base = p_of(op.operands[0])
                gathered: set = set()
                if UNKNOWN in base:
                    gathered.add(UNKNOWN)
                else:
                    for origin in base:
                        gathered |= info.stored_ptrs.get(origin, set())
                    if not gathered:
                        # Nothing stored yet (or unobserved) — unknown.
                        gathered.add(UNKNOWN)
                update(op.result, frozenset(gathered))
            elif oc == "store" and isinstance(op.operands[0].type,
                                              PointerType):
                val_p = p_of(op.operands[0])
                dest_p = p_of(op.operands[1])
                for origin in (dest_p if UNKNOWN not in dest_p
                               else [UNKNOWN]):
                    cur = info.stored_ptrs.setdefault(origin, set())
                    if not val_p <= cur:
                        cur |= val_p
                        changed = True
            elif oc == "call":
                callee = op.attrs["callee"]
                if callee in _OPAQUE_DERIVES and op.result is not None:
                    update(op.result, frozenset([UNKNOWN]))
                elif op.result is not None and isinstance(
                        op.result.type, PointerType):
                    update(op.result, frozenset([UNKNOWN]))
        if not changed:
            break

    # Written origins.
    for op in fn.walk():
        oc = op.opcode
        target: Optional[Value] = None
        if oc == "store":
            target = op.operands[1]
        elif oc == "atomic":
            target = op.operands[1]
        elif oc in ("memset", "memcpy"):
            target = op.operands[0]
        elif oc == "call":
            callee = op.attrs["callee"]
            idxs = _WRITING_INTRINSICS.get(callee)
            if idxs is not None:
                for i in idxs:
                    _mark_written(info, p_of(op.operands[i]))
            elif callee in _NONWRITING_INTRINSICS:
                pass
            else:
                # Unknown user function / writing intrinsic: conservative
                # if it takes pointer args and is not known read-only.
                target_callee = module.intrinsics.get(callee)
                if callee in module.functions:
                    # User calls are inlined before AD; be conservative.
                    for v in op.operands:
                        if isinstance(v.type, PointerType):
                            _mark_written(info, p_of(v))
                elif target_callee is not None and target_callee.effects in (
                        "write", "any"):
                    for v in op.operands:
                        if isinstance(v.type, PointerType):
                            _mark_written(info, p_of(v))
            continue
        if target is not None:
            _mark_written(info, p_of(target))

    return info


def _mark_written(info: AliasInfo, p: frozenset) -> None:
    if UNKNOWN in p:
        info.has_unknown_write = True
    info.written |= p
