"""Constant folding and algebraic simplification.

Folds computational ops with constant operands through the same NumPy
evaluators the interpreter uses, plus a small set of (fast-math style)
identities: ``x+0``, ``x*1``, ``x*0``, ``x-0``, ``0/x`` is left alone,
``select`` on a constant condition, integer identities, and idempotent
``min``/``max``.
"""

from __future__ import annotations

import numpy as np

from ..ir.function import Function, Module
from ..ir.opinfo import OP_INFO
from ..ir.ops import Op
from ..ir.types import F64, I1, I64
from ..ir.values import Constant, Value
from .pass_manager import FunctionPass

_CMP = OP_INFO["cmp"].attrs["preds"]


def _const(v) -> Constant:
    if isinstance(v, (np.floating,)):
        return Constant(float(v))
    if isinstance(v, (np.bool_, bool)):
        return Constant(bool(v))
    if isinstance(v, (np.integer, int)):
        return Constant(int(v))
    return Constant(v)


def _is_const(v: Value, val=None) -> bool:
    return isinstance(v, Constant) and (val is None or v.value == val)


class ConstantFold(FunctionPass):
    name = "constfold"

    def run(self, fn: Function, module: Module) -> bool:
        changed = False
        replacements: dict[Value, Value] = {}
        for op in fn.walk():
            # First apply pending replacements to operands.
            if replacements:
                new_ops = [replacements.get(v, v) for v in op.operands]
                if any(a is not b for a, b in zip(new_ops, op.operands)):
                    op.operands = new_ops
                    changed = True
            if op.result is None:
                continue
            folded = self._fold(op)
            if folded is not None:
                replacements[op.result] = folded
                changed = True
        if replacements:
            for op in fn.walk():
                new_ops = [replacements.get(v, v) for v in op.operands]
                if any(a is not b for a, b in zip(new_ops, op.operands)):
                    op.operands = new_ops
        return changed

    def _fold(self, op: Op) -> Value | None:
        oc = op.opcode
        info = OP_INFO.get(oc)
        if info is None:
            return None
        ops_ = op.operands
        if all(isinstance(v, Constant) for v in ops_):
            if oc == "cmp":
                return _const(_CMP[op.attrs["pred"]](ops_[0].value,
                                                     ops_[1].value))
            if info.evaluate is None:
                return None
            if oc == "select":
                return ops_[1] if ops_[0].value else ops_[2]
            try:
                return _const(info.evaluate(*[v.value for v in ops_]))
            except (ZeroDivisionError, FloatingPointError, ValueError):
                return None

        # Identities (fast-math style; the apps avoid NaN-sensitive
        # corners, matching how the benchmarks are compiled with -O2).
        if oc in ("add", "iadd"):
            if _is_const(ops_[0], 0) or _is_const(ops_[0], 0.0):
                return ops_[1]
            if _is_const(ops_[1], 0) or _is_const(ops_[1], 0.0):
                return ops_[0]
        elif oc in ("sub", "isub"):
            if _is_const(ops_[1], 0) or _is_const(ops_[1], 0.0):
                return ops_[0]
        elif oc in ("mul", "imul"):
            for a, b in ((0, 1), (1, 0)):
                if _is_const(ops_[a], 1) or _is_const(ops_[a], 1.0):
                    return ops_[b]
                if _is_const(ops_[a], 0) or _is_const(ops_[a], 0.0):
                    return Constant(0, I64) if oc == "imul" else \
                        Constant(0.0, F64)
        elif oc in ("div", "idiv"):
            if _is_const(ops_[1], 1) or _is_const(ops_[1], 1.0):
                return ops_[0]
        elif oc == "select":
            if isinstance(ops_[0], Constant):
                return ops_[1] if ops_[0].value else ops_[2]
            if ops_[1] is ops_[2]:
                return ops_[1]
        elif oc in ("min", "max", "imin", "imax", "and", "or"):
            if ops_[0] is ops_[1]:
                return ops_[0]
        return None
