"""Dead code elimination.

Removes pure ops whose results are never used (arithmetic, loads,
pointer arithmetic, pure intrinsic calls, unused allocations) and empty
control-flow regions.  Iterates to a fixpoint within one invocation.
"""

from __future__ import annotations

from ..ir.function import Function, Module
from ..ir.ops import Block, Op
from ..ir.values import Value
from .pass_manager import FunctionPass

#: Opcodes removable when their result is unused.
_REMOVABLE = frozenset({
    "ptradd", "load", "alloc", "cache_create",
})

_PURE_INTRINSICS = {"mpi.comm_rank", "mpi.comm_size", "rt.num_threads",
                    "jl.arrayptr"}


class DCE(FunctionPass):
    name = "dce"

    def run(self, fn: Function, module: Module) -> bool:
        changed = False
        while self._round(fn, module):
            changed = True
        return changed

    def _round(self, fn: Function, module: Module) -> bool:
        used: set[Value] = set()
        alloc_written: set[Op] = set()
        for op in fn.walk():
            for v in op.operands:
                used.add(v)
        from ..ir.opinfo import OP_INFO

        def removable(op: Op) -> bool:
            if op.result is not None and op.result in used:
                return False
            oc = op.opcode
            if oc in OP_INFO:
                return True
            if oc in _REMOVABLE:
                return op.result is not None
            if oc == "call":
                return op.attrs["callee"] in _PURE_INTRINSICS
            if oc == "if":
                return not op.regions[0].ops and not op.regions[1].ops
            if oc in ("for", "parallel_for"):
                return not op.regions[0].ops
            return False

        changed = False
        for op in list(fn.walk()):
            if op.parent is None:
                continue  # already removed with an enclosing region
            if removable(op):
                op.parent.remove(op)
                changed = True
        return changed
