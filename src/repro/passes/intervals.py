"""Flow-sensitive interval + affine-index dataflow analysis.

The static-analysis substrate the native tier builds on (paper §VII's
"analyses run over the IR first"): every ``i64`` SSA value gets

* an **affine decomposition** ``c0 + Σ ci·vi`` over *symbols* (values
  the analysis cannot open up: arguments, loads, call results) and
  *bounded values* (loop induction variables, thread ids, MPI ranks),
  built from the exact integer ops ``iadd``/``isub``/``ineg`` and
  ``imul``-by-constant; and
* an **interval** ``[lo, hi]`` obtained by eliminating bounded values
  from the affine form (substituting their symbolic bound, so
  ``n - i`` with ``i ∈ [0, n-1]`` cancels to ``[1, n]`` exactly) and
  then evaluating the remaining symbols over the interval lattice.

The lattice is the classic integer-interval lattice with ±∞; ``join``
is the union hull, ``meet`` the intersection, and the widening rule is
"unstable endpoints go straight to ±∞" (applied when a bound would
have to grow, e.g. the iteration counter of a ``while`` loop, whose
fixpoint ``widen([0,0], [0,1]) = [0, +∞)`` is registered directly).

Flow-sensitivity enters through *scoped bounds*:

* ``for``/``parallel_for`` induction variables carry the affine bounds
  ``[lb, ub-1]`` of their range (positive-step loops only execute with
  ``iv < ub``);
* workshare loops chunk a subset of the same range, so the full-range
  bound is sound for every thread;
* ``fork`` thread ids carry ``[0, nthreads-1]`` with ``nthreads``
  itself ``[1, +∞)`` (or the exact constant);
* ``mpi.comm_rank`` results carry ``[0, size-1]`` against the matching
  ``mpi.comm_size`` result;
* branch conditions over *uniform* ``i64`` values refine the compared
  values inside the taken region (``if i < n`` gives ``i ≤ n-1``
  there).  Lane-varying conditions refine nothing: vectorized branches
  execute masked, where every lane still evaluates the body.

Soundness against ``int64`` wraparound: the affine form is exact over
ℤ and machine arithmetic is exact mod 2^64, so whenever the ℤ-value of
an affine expression fits ``int64`` the machine value equals it.  Any
interval endpoint outside the ``int64`` range degrades to ±∞ before it
can be used in a proof.

The consumer-facing product is :func:`certify_bounds`: every
``load``/``store``/``atomic`` site is classified ``proven`` (the
address is certainly inside its buffer — the backend may elide the
runtime bounds check), ``unproven`` (checks stay on), or ``oob``
(provably out of bounds on every executed lane: a compile-time lint
finding).  Buffer extents come from the ``count`` operand of a
dominating ``alloc`` or from the ``extent`` attribute of a pointer
argument (a caller contract enforced by ``Executor.wrap_args``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..ir.opinfo import OP_INFO
from ..ir.ops import Op
from ..ir.types import I64
from ..ir.values import Argument, Constant, Result, Value
from .aliasing import AliasInfo, analyze_aliasing

Bound = Union[int, float]

NEG_INF: float = float("-inf")
POS_INF: float = float("inf")

#: Endpoints beyond this magnitude degrade to ±∞: the machine value of
#: a non-affine op applied to a wrapped operand could differ from the
#: ℤ-value the analysis reasons about.
_INT64_MAX: int = 2**63 - 1
_INT64_MIN: int = -(2**63)

#: Substitution fuel for bound evaluation (cyclic refinement guards).
_FUEL: int = 32


def _clamp(b: Bound) -> Bound:
    if isinstance(b, int) and not (_INT64_MIN <= b <= _INT64_MAX):
        return POS_INF if b > 0 else NEG_INF
    return b


@dataclass(frozen=True)
class Interval:
    """A closed integer interval with ±∞ endpoints."""

    lo: Bound
    hi: Bound

    @staticmethod
    def top() -> "Interval":
        return Interval(NEG_INF, POS_INF)

    @staticmethod
    def const(v: int) -> "Interval":
        return Interval(v, v)

    @property
    def is_top(self) -> bool:
        return self.lo == NEG_INF and self.hi == POS_INF

    def join(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def meet(self, other: "Interval") -> Optional["Interval"]:
        lo, hi = max(self.lo, other.lo), min(self.hi, other.hi)
        return Interval(lo, hi) if lo <= hi else None

    def widen(self, other: "Interval") -> "Interval":
        """Classic interval widening: endpoints that would have to move
        jump straight to ±∞ (guarantees termination of any fixpoint
        this analysis would iterate)."""
        lo = self.lo if other.lo >= self.lo else NEG_INF
        hi = self.hi if other.hi <= self.hi else POS_INF
        return Interval(lo, hi)

    def add(self, other: "Interval") -> "Interval":
        return Interval(_add(self.lo, other.lo), _add(self.hi, other.hi))

    def neg(self) -> "Interval":
        return Interval(-self.hi, -self.lo)

    def shift(self, c: int) -> "Interval":
        return Interval(_add(self.lo, c), _add(self.hi, c))

    def scale(self, c: int) -> "Interval":
        if c == 0:
            return Interval.const(0)
        if c > 0:
            return Interval(_mul(self.lo, c), _mul(self.hi, c))
        return Interval(_mul(self.hi, c), _mul(self.lo, c))

    def mul(self, other: "Interval") -> "Interval":
        ends = [_mul(a, b) for a in (self.lo, self.hi)
                for b in (other.lo, other.hi)]
        return Interval(min(ends), max(ends))

    def __repr__(self) -> str:
        return f"[{self.lo}, {self.hi}]"


TOP: Interval = Interval.top()


def _add(a: Bound, b: Bound) -> Bound:
    # ±inf + finite is well-defined; opposing infinities cannot occur
    # (lo sums with lo, hi with hi).
    return _clamp(a + b)


def _mul(a: Bound, b: Bound) -> Bound:
    if a == 0 or b == 0:
        return 0  # 0 * ±inf is 0 for interval endpoints
    return _clamp(a * b)


def _floordiv(a: Bound, b: Bound) -> Bound:
    """``a // b`` for b >= 1 with ±∞ endpoints."""
    if a == NEG_INF or a == POS_INF:
        return a
    if b == POS_INF:
        return 0 if a >= 0 else -1
    return _clamp(int(a) // int(b))


class Affine:
    """An exact affine form ``const + Σ coeff·value`` over ℤ."""

    __slots__ = ("const", "terms")

    def __init__(self, const: int = 0,
                 terms: Optional[Dict[Value, int]] = None) -> None:
        self.const = const
        self.terms: Dict[Value, int] = terms if terms is not None else {}

    @staticmethod
    def of(v: Value, coeff: int = 1) -> "Affine":
        return Affine(0, {v: coeff})

    def add(self, other: "Affine") -> "Affine":
        terms = dict(self.terms)
        for v, c in other.terms.items():
            nc = terms.get(v, 0) + c
            if nc:
                terms[v] = nc
            else:
                terms.pop(v, None)
        return Affine(self.const + other.const, terms)

    def scale(self, c: int) -> "Affine":
        if c == 0:
            return Affine(0)
        return Affine(self.const * c,
                      {v: k * c for v, k in self.terms.items()})

    def sub(self, other: "Affine") -> "Affine":
        return self.add(other.scale(-1))

    def shift(self, c: int) -> "Affine":
        return Affine(self.const + c, dict(self.terms))

    def substitute(self, v: Value, repl: "Affine") -> "Affine":
        """Replace ``v`` by ``repl`` (an inclusive bound of ``v``)."""
        c = self.terms.get(v, 0)
        if not c:
            return self
        terms = dict(self.terms)
        del terms[v]
        return Affine(self.const, terms).add(repl.scale(c))

    @property
    def is_const(self) -> bool:
        return not self.terms

    def __repr__(self) -> str:
        parts = [str(self.const)]
        parts += [f"{c}*{v!r}" for v, c in self.terms.items()]
        return " + ".join(parts)


#: Access-site classification statuses.
PROVEN = "proven"
UNPROVEN = "unproven"
OOB = "oob"


@dataclass
class AccessFact:
    """Bounds verdict for one ``load``/``store``/``atomic`` site."""

    status: str
    reason: str
    index: Interval = field(default_factory=Interval.top)
    extent: Interval = field(default_factory=Interval.top)


@dataclass
class BoundsFinding:
    """A provably out-of-bounds access (compile-time lint finding)."""

    fn: str
    op: str
    reason: str
    index: str
    extent: str

    def to_dict(self) -> Dict[str, str]:
        return {"fn": self.fn, "op": self.op, "reason": self.reason,
                "index": self.index, "extent": self.extent}


class IntervalAnalysis:
    """One function's interval/affine facts (see module docstring).

    Build with :func:`analyze_intervals`; query with :meth:`interval`,
    :meth:`affine_of` and :attr:`access` (per-op
    :class:`AccessFact`).
    """

    def __init__(self, fn: object, module: object,
                 aliasing: Optional[AliasInfo] = None) -> None:
        self.fn = fn
        self.module = module
        self.aliasing: AliasInfo = (aliasing if aliasing is not None
                                    else analyze_aliasing(fn, module))
        #: Exact affine decomposition memo (pure SSA facts).
        self._affine: Dict[Value, Affine] = {}
        #: Plain ranges for symbols the walk registered.
        self._sym_range: Dict[Value, Interval] = {}
        #: Scoped inclusive symbolic bounds (induction variables,
        #: thread ids, branch refinements).
        self._lo_bounds: Dict[Value, List[Affine]] = {}
        self._hi_bounds: Dict[Value, List[Affine]] = {}
        self._order: Dict[Value, int] = {}
        self._next_order = 0
        #: Statically-uniform values (refinement gate: lane-varying
        #: conditions execute masked, so they must refine nothing).
        self._uniform: Dict[Value, bool] = {}
        #: Pointer offset (relative to its single origin) memo.
        self._ptr_off: Dict[Value, Optional[Affine]] = {}
        #: Per access op (load/store/atomic): the bounds verdict.
        self.access: Dict[Op, AccessFact] = {}
        #: The last ``mpi.comm_size`` result in scope (rank bounds).
        self._comm_size: Optional[Value] = None

    # -- public queries -------------------------------------------------
    def affine_of(self, v: Value) -> Affine:
        """Exact affine decomposition of an integer value."""
        got = self._affine.get(v)
        if got is not None:
            return got
        aff = self._decompose(v)
        self._affine[v] = aff
        return aff

    def interval(self, v: Value) -> Interval:
        """Best interval for ``v`` under the bounds active right now."""
        if isinstance(v, Constant):
            if isinstance(v.value, bool) or not isinstance(v.value, int):
                return TOP
            return Interval.const(v.value)
        if getattr(v, "type", None) is not I64:
            return TOP
        return self.bound_affine(self.affine_of(v))

    def is_uniform(self, v: Value) -> bool:
        if isinstance(v, Constant):
            return True
        return self._uniform.get(v, False)

    def proven(self, op: Op) -> bool:
        fact = self.access.get(op)
        return fact is not None and fact.status == PROVEN

    def status(self, op: Op) -> str:
        fact = self.access.get(op)
        return fact.status if fact is not None else UNPROVEN

    def counts(self) -> Dict[str, int]:
        out = {PROVEN: 0, UNPROVEN: 0, OOB: 0}
        for fact in self.access.values():
            out[fact.status] += 1
        return out

    def findings(self) -> List[BoundsFinding]:
        """Provably out-of-bounds accesses, in program order."""
        from ..ir.printer import print_op
        out: List[BoundsFinding] = []
        for op, fact in self.access.items():
            if fact.status == OOB:
                out.append(BoundsFinding(
                    fn=getattr(self.fn, "name", "?"),
                    op=print_op(op),
                    reason=fact.reason,
                    index=repr(fact.index),
                    extent=repr(fact.extent)))
        return out

    # -- affine decomposition -------------------------------------------
    def _decompose(self, v: Value) -> Affine:
        if isinstance(v, Constant):
            if isinstance(v.value, int) and not isinstance(v.value, bool):
                return Affine(v.value)
            return Affine.of(v)
        if isinstance(v, Result):
            op = v.op
            oc = op.opcode
            if oc == "iadd":
                return self.affine_of(op.operands[0]).add(
                    self.affine_of(op.operands[1]))
            if oc == "isub":
                return self.affine_of(op.operands[0]).sub(
                    self.affine_of(op.operands[1]))
            if oc == "ineg":
                return self.affine_of(op.operands[0]).scale(-1)
            if oc == "imul":
                a, b = op.operands
                if isinstance(a, Constant) and isinstance(a.value, int):
                    return self.affine_of(b).scale(a.value)
                if isinstance(b, Constant) and isinstance(b.value, int):
                    return self.affine_of(a).scale(b.value)
        return Affine.of(v)

    # -- bound evaluation -----------------------------------------------
    def bound_affine(self, aff: Affine) -> Interval:
        lo = self._eval_dir(aff, want_hi=False, fuel=_FUEL)
        hi = self._eval_dir(aff, want_hi=True, fuel=_FUEL)
        return Interval(lo, hi)

    def _eval_dir(self, aff: Affine, want_hi: bool, fuel: int) -> Bound:
        """Tightest upper (``want_hi``) / lower bound of ``aff``:
        eliminate symbolically-bounded values innermost-first by
        substituting each candidate bound, then evaluate the residual
        symbols over their intervals."""
        if fuel <= 0:
            return POS_INF if want_hi else NEG_INF
        bounded = [v for v in aff.terms
                   if (self._hi_bounds.get(v) if want_hi == (
                       aff.terms[v] > 0) else self._lo_bounds.get(v))]
        if bounded:
            v = max(bounded, key=lambda x: self._order.get(x, -1))
            coeff = aff.terms[v]
            use_hi = want_hi == (coeff > 0)
            cands = (self._hi_bounds if use_hi else self._lo_bounds)[v]
            best: Bound = POS_INF if want_hi else NEG_INF
            results: List[Bound] = []
            for repl in cands:
                results.append(self._eval_dir(aff.substitute(v, repl),
                                              want_hi, fuel - 1))
            # The value's plain range (if registered) competes too.
            plain = self._sym_range.get(v)
            if plain is not None:
                residual = dict(aff.terms)
                del residual[v]
                end = plain.hi if use_hi else plain.lo
                if end not in (POS_INF, NEG_INF):
                    results.append(self._eval_dir(
                        Affine(aff.const, residual).shift(0).add(
                            Affine(int(end) * coeff)),
                        want_hi, fuel - 1))
            best = min(results) if want_hi else max(results)
            return best
        total: Bound = aff.const
        for v, coeff in aff.terms.items():
            r = self._sym_range.get(v, TOP)
            use_hi = want_hi == (coeff > 0)
            end = r.hi if use_hi else r.lo
            total = _add(total, _mul(end, coeff))
            if total in (POS_INF, NEG_INF):
                break
        return _clamp(total)

    # -- bound registration ---------------------------------------------
    def _push_bound(self, v: Value, lo: Optional[Affine],
                    hi: Optional[Affine]) -> None:
        if v not in self._order:
            self._order[v] = self._next_order
            self._next_order += 1
        if lo is not None:
            self._lo_bounds.setdefault(v, []).append(lo)
        if hi is not None:
            self._hi_bounds.setdefault(v, []).append(hi)

    def _pop_bound(self, v: Value, lo: bool, hi: bool) -> None:
        if lo:
            self._lo_bounds[v].pop()
            if not self._lo_bounds[v]:
                del self._lo_bounds[v]
        if hi:
            self._hi_bounds[v].pop()
            if not self._hi_bounds[v]:
                del self._hi_bounds[v]

    # -- the walk --------------------------------------------------------
    def run(self) -> "IntervalAnalysis":
        for arg in getattr(self.fn, "args", []):
            self._uniform[arg] = True
        self._walk_block(getattr(self.fn, "body"))
        return self

    def _walk_block(self, block: object) -> None:
        for op in getattr(block, "ops"):
            self._visit(op)

    def _visit(self, op: Op) -> None:
        oc = op.opcode
        if oc in ("load", "atomic"):
            ptr, idx = ((op.operands[0], op.operands[1]) if oc == "load"
                        else (op.operands[1], op.operands[2]))
            self.access[op] = self._classify_access(ptr, idx)
            if op.result is not None:
                self._uniform[op.result] = False
            return
        if oc == "store":
            self.access[op] = self._classify_access(op.operands[1],
                                                    op.operands[2])
            return
        if oc == "for":
            self._visit_for(op)
            return
        if oc == "parallel_for":
            body = op.regions[0]
            iv = body.args[0]
            self._push_bound(iv, self.affine_of(op.operands[0]),
                             self.affine_of(op.operands[1]).shift(-1))
            self._uniform[iv] = False
            self._walk_block(body)
            return
        if oc == "fork":
            self._visit_fork(op)
            return
        if oc == "while":
            body = op.regions[0]
            iv = body.args[0]
            # The widened fixpoint of the iteration counter: [0,0]
            # widen [0,1] = [0, +inf).
            self._sym_range[iv] = Interval(0, POS_INF)
            self._uniform[iv] = True
            self._walk_block(body)
            return
        if oc == "if":
            self._visit_if(op)
            return
        if oc == "spawn":
            self._walk_block(op.regions[0])
            return
        if oc == "call":
            self._visit_call(op)
            return
        if oc == "alloc":
            self._ptr_off[op.result] = Affine(0)
            self._uniform[op.result] = True
            return
        if oc == "ptradd":
            base_off = self.ptr_offset(op.operands[0])
            if base_off is not None:
                self._ptr_off[op.result] = base_off.add(
                    self.affine_of(op.operands[1]))
            else:
                self._ptr_off[op.result] = None
            self._uniform[op.result] = all(
                self.is_uniform(v) for v in op.operands)
            return
        for region in op.regions:
            self._walk_block(region)
        if op.result is not None:
            self._visit_compute(op)

    def _visit_compute(self, op: Op) -> None:
        res = op.result
        if res is None:
            return
        oc = op.opcode
        pure = oc in OP_INFO or oc == "select"
        self._uniform[res] = pure and all(
            self.is_uniform(v) for v in op.operands)
        if getattr(res, "type", None) is not I64:
            return
        # Non-affine integer ops: evaluate the result range here (the
        # facts active at the definition hold at every use — SSA
        # region scoping keeps uses inside the defining region).
        if oc == "imod":
            a, b = (self.interval(op.operands[0]),
                    self.interval(op.operands[1]))
            if b.lo >= 1:
                hi = _add(b.hi, -1)
                if a.lo >= 0 and a.hi < hi:
                    hi = a.hi
                self._sym_range[res] = Interval(0, hi)
        elif oc == "idiv":
            a, b = (self.interval(op.operands[0]),
                    self.interval(op.operands[1]))
            if b.lo >= 1:
                ends = [_floordiv(a.lo, b.lo), _floordiv(a.lo, b.hi),
                        _floordiv(a.hi, b.lo), _floordiv(a.hi, b.hi)]
                self._sym_range[res] = Interval(min(ends), max(ends))
        elif oc == "imin":
            a, b = (self.interval(op.operands[0]),
                    self.interval(op.operands[1]))
            self._sym_range[res] = Interval(min(a.lo, b.lo),
                                            min(a.hi, b.hi))
        elif oc == "imax":
            a, b = (self.interval(op.operands[0]),
                    self.interval(op.operands[1]))
            self._sym_range[res] = Interval(max(a.lo, b.lo),
                                            max(a.hi, b.hi))
        elif oc == "select":
            a, b = (self.interval(op.operands[1]),
                    self.interval(op.operands[2]))
            self._sym_range[res] = a.join(b)

    def _visit_for(self, op: Op) -> None:
        body = op.regions[0]
        iv = body.args[0]
        # Positive-step loops only execute the body with iv in
        # [lb, ub-1] (reverse_order walks the same set backwards;
        # workshare chunks a subset of it).
        self._push_bound(iv, self.affine_of(op.operands[0]),
                         self.affine_of(op.operands[1]).shift(-1))
        simd = bool(op.attrs.get("simd"))
        self._uniform[iv] = not simd
        self._walk_block(body)

    def _visit_fork(self, op: Op) -> None:
        body = op.regions[0]
        tid, nth = body.args[0], body.args[1]
        want = op.operands[0]
        if isinstance(want, Constant) and isinstance(want.value, int) \
                and want.value > 0:
            self._sym_range[nth] = Interval.const(want.value)
        else:
            self._sym_range[nth] = Interval(1, POS_INF)
        self._push_bound(tid, Affine(0), Affine.of(nth).shift(-1))
        self._uniform[tid] = True
        self._uniform[nth] = True
        self._walk_block(body)

    def _visit_call(self, op: Op) -> None:
        callee = str(op.attrs.get("callee", ""))
        res = op.result
        if res is None:
            return
        self._uniform[res] = False
        if callee == "mpi.comm_size":
            self._sym_range[res] = Interval(1, POS_INF)
            self._uniform[res] = True
            self._comm_size = res
        elif callee == "mpi.comm_rank":
            self._sym_range[res] = Interval(0, POS_INF)
            self._uniform[res] = True
            if self._comm_size is not None:
                self._push_bound(res, Affine(0),
                                 Affine.of(self._comm_size).shift(-1))
        elif callee == "rt.num_threads":
            self._sym_range[res] = Interval(1, POS_INF)
            self._uniform[res] = True
        elif callee == "rt.buflen":
            self._sym_range[res] = Interval(0, POS_INF)
            self._uniform[res] = True

    def _visit_if(self, op: Op) -> None:
        then_body, else_body = op.regions[0], op.regions[1]
        cond = op.operands[0]
        then_ref = self._refinement(cond, negate=False)
        else_ref = self._refinement(cond, negate=True)
        self._with_refinement(then_ref, then_body)
        self._with_refinement(else_ref, else_body)

    def _with_refinement(self, ref: List[Tuple[Value, Optional[Affine],
                                               Optional[Affine]]],
                         body: object) -> None:
        for v, lo, hi in ref:
            self._push_bound(v, lo, hi)
        try:
            self._walk_block(body)
        finally:
            for v, lo, hi in reversed(ref):
                self._pop_bound(v, lo is not None, hi is not None)

    def _refinement(self, cond: Value, negate: bool
                    ) -> List[Tuple[Value, Optional[Affine],
                                    Optional[Affine]]]:
        """Bounds implied by ``cond`` being true (or false)."""
        if not isinstance(cond, Result) or cond.op.opcode != "cmp":
            return []
        op = cond.op
        a, b = op.operands
        if getattr(a, "type", None) is not I64 \
                or getattr(b, "type", None) is not I64:
            return []
        if not (self.is_uniform(a) and self.is_uniform(b)):
            return []
        pred = str(op.attrs.get("pred", ""))
        neg = {"lt": "ge", "le": "gt", "gt": "le", "ge": "lt",
               "eq": "ne", "ne": "eq"}
        if negate:
            pred = neg.get(pred, "")
        fa, fb = self.affine_of(a), self.affine_of(b)
        out: List[Tuple[Value, Optional[Affine], Optional[Affine]]] = []
        if pred == "lt":      # a <= b-1, b >= a+1
            out = [(a, None, fb.shift(-1)), (b, fa.shift(1), None)]
        elif pred == "le":
            out = [(a, None, fb), (b, fa, None)]
        elif pred == "gt":    # a >= b+1, b <= a-1
            out = [(a, fb.shift(1), None), (b, None, fa.shift(-1))]
        elif pred == "ge":
            out = [(a, fb, None), (b, None, fa)]
        elif pred == "eq":
            out = [(a, fb, fb), (b, fa, fa)]
        # "ne" (and unknown predicates) refine nothing.
        # A bound of a value in terms of itself is useless and would
        # loop the substitution; drop self-referential entries.
        return [(v, lo, hi) for v, lo, hi in out
                if not ((lo is not None and v in lo.terms)
                        or (hi is not None and v in hi.terms))]

    # -- pointers & access classification --------------------------------
    def ptr_offset(self, ptr: Value) -> Optional[Affine]:
        """Element offset of ``ptr`` relative to its origin base, or
        None when the pointer's derivation is opaque."""
        if ptr in self._ptr_off:
            return self._ptr_off[ptr]
        out: Optional[Affine]
        if isinstance(ptr, Argument):
            out = Affine(0)
        elif isinstance(ptr, Result) and ptr.op.opcode == "alloc":
            out = Affine(0)
        elif isinstance(ptr, Result) and ptr.op.opcode == "ptradd":
            base = self.ptr_offset(ptr.op.operands[0])
            out = (base.add(self.affine_of(ptr.op.operands[1]))
                   if base is not None else None)
        else:
            out = None
        self._ptr_off[ptr] = out
        return out

    def extent_of(self, ptr: Value) -> Tuple[Optional[Affine], str]:
        """Affine element count of the buffer ``ptr`` points into,
        resolved through single-origin provenance; ``(None, why)``
        when unknown."""
        prov = self.aliasing.provenance(ptr)
        if len(prov) != 1:
            return None, "pointer has multiple or unknown origins"
        (origin,) = prov
        kind = origin[0]
        if kind == "alloc":
            alloc_op = origin[1]
            return self.affine_of(alloc_op.operands[0]), ""
        if kind == "arg":
            arg = origin[1]
            ext = arg.attrs.get("extent")
            if isinstance(ext, int) and not isinstance(ext, bool):
                return Affine(ext), ""
            return None, (f"argument {arg.name!r} declares no extent")
        return None, "pointer origin is unknown"

    def _classify_access(self, ptr: Value, idx: Value) -> AccessFact:
        ext_aff, why = self.extent_of(ptr)
        off = self.ptr_offset(ptr)
        if off is None:
            addr_aff = None
            why = why or "pointer offset is not affine"
        else:
            addr_aff = off.add(self.affine_of(idx))
        if addr_aff is None or ext_aff is None:
            index = (self.bound_affine(addr_aff)
                     if addr_aff is not None else TOP)
            return AccessFact(UNPROVEN, why, index=index)
        index = self.bound_affine(addr_aff)
        # slack = extent - addr; slack >= 1 everywhere means in bounds.
        slack = self.bound_affine(ext_aff.sub(addr_aff))
        extent = self.bound_affine(ext_aff)
        if index.lo >= 0 and slack.lo >= 1:
            return AccessFact(PROVEN, "", index=index, extent=extent)
        # Provably out of bounds: every executed lane violates.
        if index.hi < 0:
            return AccessFact(OOB, "index is always negative",
                              index=index, extent=extent)
        if slack.hi < 1:
            return AccessFact(OOB, "index always >= buffer extent",
                              index=index, extent=extent)
        parts: List[str] = []
        if index.lo < 0:
            parts.append(f"index lower bound {index.lo} may be negative")
        if slack.lo < 1:
            parts.append(f"index may reach extent (slack {slack.lo})")
        return AccessFact(UNPROVEN, "; ".join(parts) or why,
                          index=index, extent=extent)


def analyze_intervals(fn: object, module: object,
                      aliasing: Optional[AliasInfo] = None
                      ) -> IntervalAnalysis:
    """Run the interval/affine dataflow over ``fn``; returns the facts."""
    return IntervalAnalysis(fn, module, aliasing).run()


def certify_bounds(fn: object, module: object,
                   aliasing: Optional[AliasInfo] = None
                   ) -> IntervalAnalysis:
    """Alias of :func:`analyze_intervals`, named for its consumer: the
    backend lowering asks the result ``facts.proven(op)`` per memory
    access and elides the runtime bounds check on certified sites."""
    return analyze_intervals(fn, module, aliasing)
