"""Native-region claimability certifier.

The native C tier (``repro.interp.native``) today claims *expression
chains* inside parallel regions; whole workshare loop bodies stay in
generated Python (ROADMAP item 2).  This pass walks every parallel
region of a function — ``fork`` bodies, ``workshare`` loops,
``parallel_for`` bodies, and ``spawn`` tasks — and classifies each
statement as **C-loop-emittable or not, with a recorded reason**, using

* the native tier's own claimable-op templates (an op the C emitter has
  no template for cannot be emitted),
* the interval analysis (:mod:`repro.passes.intervals`): a memory
  access is only emittable without a runtime check when its bounds are
  statically certified,
* the alias analysis (:mod:`repro.passes.aliasing`): a store whose
  target may alias another buffer loaded in the same region would make
  the C loop's load/store order observable.

The reason taxonomy (stable strings — CI snapshots them):

``ok``
    claimable as part of a C loop body.
``unclaimable-op:<opcode>``
    no C template for this opcode.  Notably ``idiv``/``imod`` stay
    unclaimable: the IR (and NumPy) use floor-division semantics while
    C truncates toward zero.
``unproven-bounds`` / ``oob-bounds``
    the interval analysis could not certify the access in-bounds (or
    proved it always out of bounds).
``may-alias-store``
    the store's target may alias a *different* buffer loaded in this
    region (single-origin read-modify-write of the same buffer is
    allowed).
``barrier``
    barriers split a region into phases; a statement at a barrier
    position bounds any single C loop.
``call:<callee>``
    calls leave the C universe (interpreter intrinsics, user funcs).
``nested-parallel:<opcode>``
    a nested ``fork``/``spawn``/``parallel_for`` — C regions are flat.
``workshare-loop`` / ``nested-blocked``
    container statements: a nested workshare loop is reported as its
    own region; a serial ``for``/``if`` container is claimable iff all
    of its statements are.

The per-function report is the machine-checked work-list whole-loop
-body lowering will consume: a region whose every statement is ``ok``
can be emitted as one C loop today.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..ir.printer import print_op
from ..ir.types import PointerType
from .aliasing import AliasInfo, analyze_aliasing, provs_may_alias
from .intervals import OOB, PROVEN, IntervalAnalysis, analyze_intervals

#: Reason strings (the taxonomy above).
OK = "ok"

#: Opcodes the C emitter has templates for (mirrors the native tier's
#: _C_FLOAT_TEMPLATES/_C_BOOL_TEMPLATES plus cmp/select), extended
#: with the exact int ops a C loop body could carry: iadd/isub/imul/
#: ineg/imin/imax are exact in both semantics, itof/ftoi convert
#: identically (C casts truncate toward zero exactly like np.int64
#: casting).  idiv/imod are ABSENT on purpose: floor vs trunc.
CLAIMABLE_COMPUTE = frozenset({
    # float templates
    "add", "sub", "mul", "div", "fma", "min", "max", "neg", "abs",
    "sqrt", "floor",
    # bool templates
    "and", "or", "xor", "not",
    # comparisons and select (C ternary)
    "cmp", "select",
    # exact integer arithmetic + conversions
    "iadd", "isub", "imul", "ineg", "imin", "imax", "itof", "ftoi",
})

#: Region-bearing opcodes that a C region cannot contain.
_NESTED_PARALLEL = frozenset({"fork", "spawn", "parallel_for"})


@dataclass
class StmtVerdict:
    """One statement's classification inside a parallel region."""

    op: str
    opcode: str
    claimable: bool
    reason: str

    def to_dict(self) -> Dict[str, Any]:
        return {"op": self.op, "opcode": self.opcode,
                "claimable": self.claimable, "reason": self.reason}


@dataclass
class RegionVerdict:
    """One parallel region's statement-level claimability report."""

    kind: str
    label: str
    statements: List[StmtVerdict] = field(default_factory=list)

    @property
    def claimable(self) -> bool:
        return all(s.claimable for s in self.statements)

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for s in self.statements:
            out[s.reason] = out.get(s.reason, 0) + 1
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "label": self.label,
                "claimable": self.claimable,
                "counts": self.counts(),
                "statements": [s.to_dict() for s in self.statements]}


class RegionChecker:
    """Classify every parallel region of one function (see module
    docstring); produces :class:`RegionVerdict` entries and the
    aggregate report dict ``region_report`` renders."""

    def __init__(self, fn: Any, module: Any,
                 aliasing: Optional[AliasInfo] = None,
                 intervals: Optional[IntervalAnalysis] = None) -> None:
        self.fn = fn
        self.module = module
        self.aliasing: AliasInfo = (aliasing if aliasing is not None
                                    else analyze_aliasing(fn, module))
        self.intervals: IntervalAnalysis = (
            intervals if intervals is not None
            else analyze_intervals(fn, module, self.aliasing))
        self.regions: List[RegionVerdict] = []
        self._counter = 0

    # ------------------------------------------------------------------
    def run(self) -> "RegionChecker":
        self._walk(getattr(self.fn, "body"))
        return self

    def _walk(self, block: Any) -> None:
        """Find parallel regions anywhere in the function (top-level or
        nested in serial control flow)."""
        for op in getattr(block, "ops"):
            kind = self._region_kind(op)
            if kind is not None:
                self._check_region(kind, op)
                # Nested workshare loops inside a fork body get their
                # own entries too (via _classify's recursion hook).
                continue
            for region in op.regions:
                self._walk(region)

    @staticmethod
    def _region_kind(op: Any) -> Optional[str]:
        oc = op.opcode
        if oc == "fork":
            return "fork"
        if oc == "parallel_for":
            return "parallel_for"
        if oc == "spawn":
            return "spawn"
        if oc == "for" and op.attrs.get("workshare"):
            return "workshare-simd" if op.attrs.get("simd") else "workshare"
        return None

    def _check_region(self, kind: str, op: Any) -> RegionVerdict:
        self._counter += 1
        verdict = RegionVerdict(
            kind=kind, label=f"{getattr(self.fn, 'name', '?')}"
            f"#{self._counter}")
        self.regions.append(verdict)
        body = op.regions[0]
        for inner in getattr(body, "ops"):
            verdict.statements.append(self._classify(inner, op))
        return verdict

    # ------------------------------------------------------------------
    def _classify(self, op: Any, region_op: Any) -> StmtVerdict:
        oc = op.opcode
        reason = self._reason(op, region_op)
        return StmtVerdict(op=print_op(op, context=False), opcode=oc,
                           claimable=(reason == OK), reason=reason)

    def _reason(self, op: Any, region_op: Any) -> str:
        oc = op.opcode
        if oc in _NESTED_PARALLEL:
            # A nested parallel construct still gets its own region
            # entry, but blocks the enclosing one.
            nested_kind = self._region_kind(op)
            if nested_kind is not None:
                self._check_region(nested_kind, op)
            return f"nested-parallel:{oc}"
        if oc == "for":
            if op.attrs.get("workshare"):
                nested = self._check_region(
                    self._region_kind(op) or "workshare", op)
                return OK if nested.claimable else "workshare-loop"
            return self._container_reason(op, region_op)
        if oc == "if":
            return self._container_reason(op, region_op)
        if oc == "barrier":
            return "barrier"
        if oc == "call":
            return f"call:{op.attrs.get('callee', '?')}"
        if oc == "load":
            return self._access_reason(op)
        if oc in ("store", "atomic"):
            bounds = self._access_reason(op)
            if bounds != OK:
                return bounds
            ptr = op.operands[1]
            if self._store_may_alias(ptr, region_op):
                return "may-alias-store"
            return OK
        if oc in ("return", "condition"):
            return f"unclaimable-op:{oc}"
        if oc in CLAIMABLE_COMPUTE:
            return OK
        return f"unclaimable-op:{oc}"

    def _container_reason(self, op: Any, region_op: Any) -> str:
        """Serial for / if: claimable iff every nested statement is."""
        for region in op.regions:
            for inner in getattr(region, "ops"):
                if self._reason(inner, region_op) != OK:
                    return "nested-blocked"
        return OK

    def _access_reason(self, op: Any) -> str:
        status = self.intervals.status(op)
        if status == PROVEN:
            return OK
        if status == OOB:
            return "oob-bounds"
        return "unproven-bounds"

    def _store_may_alias(self, ptr: Any, region_op: Any) -> bool:
        """True when the store's target may alias a *different* buffer
        loaded inside the same region (same single-origin RMW is OK)."""
        sp = self.aliasing.provenance(ptr)
        for inner in region_op.walk():
            if inner.opcode != "load":
                continue
            lptr = inner.operands[0]
            if not isinstance(getattr(lptr, "type", None), PointerType):
                continue
            lp = self.aliasing.provenance(lptr)
            if len(sp) == 1 and sp == lp:
                continue  # provably the same single buffer
            if provs_may_alias(sp, lp):
                return True
        return False

    # ------------------------------------------------------------------
    def to_json(self) -> Dict[str, Any]:
        counts: Dict[str, int] = {}
        for region in self.regions:
            for reason, n in region.counts().items():
                counts[reason] = counts.get(reason, 0) + n
        bounds = self.intervals.counts()
        return {
            "tool": "regioncheck",
            "fn": getattr(self.fn, "name", "?"),
            "regions": [r.to_dict() for r in self.regions],
            "counts": counts,
            "claimable_regions": sum(1 for r in self.regions
                                     if r.claimable and r.statements),
            "bounds": bounds,
            "oob_findings": [f.to_dict()
                             for f in self.intervals.findings()],
        }


def region_report(fn: Any, module: Any) -> Dict[str, Any]:
    """Run the claimability certifier over ``fn``; returns the
    ``{"tool": "regioncheck", ...}`` report dict."""
    return RegionChecker(fn, module).run().to_json()
