"""Function inlining.

Enzyme differentiates after optimization, and in particular after
inlining: the AD transform in this reproduction requires user-function
calls to be inlined first (intrinsics are handled by registered adjoint
rules instead).  Functions marked ``noinline`` are kept as calls — used
by the miniBUDE.jl variant, which no-inlines its core kernel exactly as
the paper describes (§VII-A-c); such calls are then inlined *by the AD
engine itself* on demand.
"""

from __future__ import annotations

from ..ir.function import Function, Module
from ..ir.ops import Block, CallOp, Op
from ..ir.values import Value


class InlineError(Exception):
    pass


def inline_call(op: CallOp, module: Module) -> list[Op]:
    """Produce the inlined op list replacing ``op`` (not yet spliced)."""
    callee = module.functions[op.attrs["callee"]]
    vmap: dict[Value, Value] = dict(zip(callee.args, op.operands))
    new_ops: list[Op] = []
    ret_val = None
    body_ops = callee.body.ops
    for i, inner in enumerate(body_ops):
        if inner.opcode == "return":
            if inner.operands:
                ret_val = vmap.get(inner.operands[0], inner.operands[0])
            break
        new_ops.append(inner.clone(vmap))
    if op.result is not None:
        if ret_val is None:
            raise InlineError(
                f"call to {callee.name} expects a result but callee does "
                f"not return a value")
        # Map the call's result onto the inlined return value for all
        # later uses.
        _replace_uses(op, ret_val)
    return new_ops


def _replace_uses(op: Op, new_val: Value) -> None:
    """Replace uses of op.result with new_val in the rest of the function."""
    old = op.result
    blk = op.parent
    fn_block = blk
    while fn_block.parent_op is not None:
        fn_block = fn_block.parent_op.parent
    for other in fn_block.walk():
        if other is op:
            continue
        if old in other.operands:
            other.replace_operand(old, new_val)


def inline_all(fn: Function, module: Module, max_rounds: int = 16) -> int:
    """Inline every call to a non-``noinline`` user function.  Returns
    the number of call sites inlined."""
    total = 0
    for _ in range(max_rounds):
        sites = [
            op for op in fn.walk()
            if op.opcode == "call"
            and op.attrs["callee"] in module.functions
            and not module.functions[op.attrs["callee"]].attrs.get("noinline")
        ]
        if not sites:
            return total
        for op in sites:
            new_ops = inline_call(op, module)
            blk = op.parent
            at = blk.ops.index(op)
            blk.ops[at:at + 1] = new_ops
            for o in new_ops:
                o.parent = blk
            total += 1
    raise InlineError(f"inlining did not converge in {max_rounds} rounds "
                      f"(recursive calls?)")


def force_inline_all(fn: Function, module: Module) -> int:
    """Inline every user call including ``noinline`` ones (AD does this
    for the functions it must differentiate through)."""
    total = 0
    for _ in range(32):
        sites = [op for op in fn.walk()
                 if op.opcode == "call"
                 and op.attrs["callee"] in module.functions]
        if not sites:
            return total
        for op in sites:
            new_ops = inline_call(op, module)
            blk = op.parent
            at = blk.ops.index(op)
            blk.ops[at:at + 1] = new_ops
            for o in new_ops:
                o.parent = blk
            total += 1
    raise InlineError("force-inlining did not converge (recursive calls?)")
