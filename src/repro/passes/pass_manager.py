"""Pass manager: ordered IR-to-IR transformations.

Enzyme's effectiveness depends on running optimizations *before*
differentiation (simplified code → better aliasing → less caching) and
*after* it (cleaning up the generated adjoint) — §V-E.  The AD engine
invokes a pipeline built here on its private working copy after
inlining, and optionally on the generated gradient.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..ir.function import Function, Module
from ..ir.verifier import verify_function


class FunctionPass:
    """Base class: ``run`` returns True when the function changed."""

    name = "pass"

    def run(self, fn: Function, module: Module) -> bool:  # pragma: no cover
        raise NotImplementedError


class PassManager:
    def __init__(self, passes: Iterable[FunctionPass],
                 verify_each: bool = False, max_rounds: int = 4) -> None:
        self.passes = list(passes)
        self.verify_each = verify_each
        self.max_rounds = max_rounds
        self.stats: dict[str, int] = {}

    def run_function(self, fn: Function, module: Module) -> bool:
        changed_any = False
        for _ in range(self.max_rounds):
            changed = False
            for p in self.passes:
                if p.run(fn, module):
                    changed = True
                    self.stats[p.name] = self.stats.get(p.name, 0) + 1
                    if self.verify_each:
                        verify_function(fn, module)
            changed_any |= changed
            if not changed:
                break
        return changed_any

    def run(self, module: Module,
            fn_names: Optional[Iterable[str]] = None) -> bool:
        names = list(fn_names) if fn_names is not None else \
            list(module.functions)
        changed = False
        for name in names:
            changed |= self.run_function(module.functions[name], module)
        return changed


def default_pipeline(openmp_opt: bool = False,
                     verify_each: bool = False) -> PassManager:
    """The standard pre-AD optimization pipeline.

    ``openmp_opt=True`` adds the parallel-region load/indirection
    hoisting pass (the paper's extended OpenMPOpt, §V-E / §VIII).
    """
    from .constfold import ConstantFold
    from .cse import CSE
    from .dce import DCE
    from .licm import LICM
    from .openmp_opt import OpenMPOpt
    from .simplify import Simplify

    passes: list[FunctionPass] = [
        ConstantFold(), CSE(), DCE(), Simplify(), LICM(),
    ]
    if openmp_opt:
        passes.append(OpenMPOpt())
    passes += [ConstantFold(), CSE(), DCE()]
    return PassManager(passes, verify_each=verify_each)


def sanitize_pipeline(on_error: str = "ignore",
                      verify_each: bool = False) -> PassManager:
    """Analysis-only pipeline running the shadow-memory race lint.

    The lint re-derives thread-locality of every write in parallel
    regions and reports non-atomic shadow increments whose disjointness
    proof fails (§VI-A1).  ``on_error="raise"`` turns lint errors into
    a ``sanitize.lint.LintError``; the pass never mutates IR, so the
    manager converges in one round.
    """
    from ..sanitize.lint import ShadowRaceLint

    return PassManager([ShadowRaceLint(on_error=on_error)],
                       verify_each=verify_each, max_rounds=1)


def commcheck_pipeline(sizes: tuple = (2, 3), on_error: str = "ignore",
                       verify_each: bool = False) -> PassManager:
    """Analysis-only pipeline running the static MPI communication
    analyzer (matching, collectives, request lifetimes, rendezvous
    deadlocks) on every communicating function.  ``on_error="raise"``
    turns error findings into a ``sanitize.commcheck.CommCheckError``;
    the pass never mutates IR, so the manager converges in one round.
    """
    from ..sanitize.commcheck import CommCheckPass

    return PassManager([CommCheckPass(sizes=sizes, on_error=on_error)],
                       verify_each=verify_each, max_rounds=1)


def cleanup_pipeline(verify_each: bool = False) -> PassManager:
    """Post-AD cleanup (fold the index arithmetic the transform emits)."""
    from .constfold import ConstantFold
    from .cse import CSE
    from .dce import DCE
    from .simplify import Simplify

    return PassManager([ConstantFold(), CSE(), DCE(), Simplify()],
                       verify_each=verify_each)
