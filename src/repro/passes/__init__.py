"""repro.passes — the optimization-pass substrate (LLVM analogue).

Alias analysis, inlining, constant folding, CSE, DCE, LICM, structural
simplification, and the OpenMPOpt analogue with parallel-region load
hoisting and region merging.  AD runs after these (and optionally runs
the cleanup pipeline on its output), reproducing the paper's
optimization↔differentiation interplay (§V-E).
"""

from .aliasing import AliasInfo, analyze_aliasing
from .constfold import ConstantFold
from .cse import CSE
from .dce import DCE
from .inline import force_inline_all, inline_all
from .intervals import (
    Affine,
    Interval,
    IntervalAnalysis,
    analyze_intervals,
    certify_bounds,
)
from .licm import LICM
from .openmp_opt import OpenMPOpt
from .regioncheck import RegionChecker, region_report
from .pass_manager import (
    FunctionPass,
    PassManager,
    cleanup_pipeline,
    default_pipeline,
)
from .simplify import Simplify

__all__ = [
    "AliasInfo", "analyze_aliasing",
    "Affine", "Interval", "IntervalAnalysis",
    "analyze_intervals", "certify_bounds",
    "ConstantFold", "CSE", "DCE", "LICM", "OpenMPOpt", "Simplify",
    "RegionChecker", "region_report",
    "force_inline_all", "inline_all",
    "FunctionPass", "PassManager", "cleanup_pipeline", "default_pipeline",
]
