"""Structural simplifications.

* drop ``if`` ops whose regions are both empty,
* drop zero-trip-count constant loops,
* flatten ``if`` with a constant condition,
* remove self-copies (``memcpy(p, p, n)`` is UB-adjacent; dropped).
"""

from __future__ import annotations

from ..ir.function import Function, Module
from ..ir.ops import Block, Op
from ..ir.values import Constant
from .pass_manager import FunctionPass


class Simplify(FunctionPass):
    name = "simplify"

    def run(self, fn: Function, module: Module) -> bool:
        return self._block(fn.body)

    def _block(self, block: Block) -> bool:
        changed = False
        for op in list(block.ops):
            for region in op.regions:
                changed |= self._block(region)
            oc = op.opcode
            if oc == "if":
                cond = op.operands[0]
                if not op.regions[0].ops and not op.regions[1].ops:
                    block.remove(op)
                    changed = True
                elif isinstance(cond, Constant):
                    body = op.regions[0] if cond.value else op.regions[1]
                    at = block.ops.index(op)
                    block.remove(op)
                    for o in reversed(body.ops):
                        # Region has no block args; splice directly.
                        block.insert(at, o)
                    changed = True
            elif oc in ("for", "parallel_for"):
                lb, ub = op.operands[0], op.operands[1]
                if (isinstance(lb, Constant) and isinstance(ub, Constant)
                        and ub.value <= lb.value):
                    block.remove(op)
                    changed = True
            elif oc == "memcpy" and op.operands[0] is op.operands[1]:
                block.remove(op)
                changed = True
        return changed
