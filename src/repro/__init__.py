"""repro — reproduction of "Scalable Automatic Differentiation of
Multiple Parallel Paradigms through Compiler Augmentation" (SC 2022).

The package implements an Enzyme-style, compiler-integrated reverse-mode
automatic-differentiation engine operating on an SSA IR with structured
parallel constructs (parallel for, fork/barrier, task spawn/wait, MPI
message passing), together with the substrates the paper's evaluation
needs: optimization passes (including an OpenMPOpt analogue), simulated
shared-memory and MPI runtimes with a calibrated machine model, the
LULESH and miniBUDE proxy applications in several parallel-framework
"frontends", and a CoDiPack-style operator-overloading baseline.

Quickstart::

    import numpy as np
    from repro import IRBuilder, Ptr, I64, autodiff, Duplicated, Executor

    b = IRBuilder()
    with b.function("square", [("x", Ptr()), ("n", I64)]) as f:
        x, n = f.args
        with b.parallel_for(0, n) as i:
            v = b.load(x, i)
            b.store(v * v, x, i)

    grad = autodiff(b.module, "square", [Duplicated, None])
    ex = Executor(b.module)
    x = np.arange(1.0, 5.0)
    dx = np.ones(4)
    ex.run(grad, x, dx, len(x))   # dx now holds 2*x_orig
"""

from .ad import Active, Const, Duplicated, autodiff, autodiff_forward
from .interp import ExecConfig, Executor, run_function
from .ir import (
    F64,
    I1,
    I64,
    IRBuilder,
    Module,
    Ptr,
    print_function,
    print_module,
    verify_module,
)
from .perf import MachineModel, c6i_metal
from .sanitize import (
    LintError,
    RaceChecker,
    RaceReport,
    lint_function,
    lint_module,
)

__version__ = "1.0.0"

__all__ = [
    "Active", "Const", "Duplicated", "autodiff", "autodiff_forward",
    "ExecConfig", "Executor", "run_function",
    "F64", "I1", "I64", "IRBuilder", "Module", "Ptr",
    "print_function", "print_module", "verify_module",
    "MachineModel", "c6i_metal",
    "LintError", "RaceChecker", "RaceReport", "lint_function", "lint_module",
    "__version__",
]
