"""Native-region claimability lint gate: ``python -m repro.tools.region_lint``.

Builds the LULESH serial/openmp/raja flavors and the miniBUDE
openmp/julia variants, runs the claimability certifier
(:mod:`repro.passes.regioncheck`) over each kernel, and prints the
statement-level classification for every parallel region — the
machine-checked work-list whole-loop-body native lowering will consume
(ROADMAP item 2).

Exit status is nonzero when findings are emitted:

* any access the interval analysis *proves* out of bounds
  (``oob-bounds`` — a compile-time bug report), or
* with ``--check BASELINE``, any drift of the per-region reason counts
  from the committed snapshot (``REGION_baseline.json``) — so CI fails
  when a pass change silently makes regions less (or more) claimable.

``--out`` writes the combined JSON for ``summarize --region-report``;
``--write-baseline`` regenerates the snapshot after a reviewed change.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict

from ..apps.lulesh.kernels import build_lulesh
from ..apps.minibude.kernels import build_minibude
from ..passes.regioncheck import region_report

#: program label -> builder returning (module, fn_name).
_PROGRAMS = {
    "lulesh_serial": lambda nx: build_lulesh("serial", nx),
    "lulesh_openmp": lambda nx: build_lulesh("openmp", nx),
    "lulesh_raja": lambda nx: build_lulesh("raja", nx),
    "minibude_openmp": lambda nx: build_minibude("openmp", 8, 4, 12),
    "minibude_julia": lambda nx: build_minibude("julia", 8, 4, 12),
}


def collect(nx: int = 2) -> Dict[str, Any]:
    """Run the certifier over every linted program; returns the
    ``{"tool": "regioncheck-suite", ...}`` payload."""
    reports = {}
    for label, builder in _PROGRAMS.items():
        module, fn_name = builder(nx)
        reports[label] = region_report(module.functions[fn_name], module)
    return {"tool": "regioncheck-suite", "nx": nx, "reports": reports}


def baseline_view(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Reduce a suite payload to the snapshot-stable expected-reasons
    view: per-region reason counts + per-program bounds counts.  The
    statement list itself (op text, SSA names) is intentionally NOT
    part of the snapshot — it churns with printer cosmetics."""
    programs = {}
    for label, rep in payload["reports"].items():
        programs[label] = {
            "bounds": rep["bounds"],
            "claimable_regions": rep["claimable_regions"],
            "regions": {
                r["label"]: {"kind": r["kind"],
                             "claimable": r["claimable"],
                             "counts": r["counts"]}
                for r in rep["regions"]
            },
        }
    return {"tool": "regioncheck-baseline", "programs": programs}


def _diff(expected: Dict[str, Any], actual: Dict[str, Any],
          prefix: str = "") -> list:
    """Recursive dict diff; returns human-readable drift lines."""
    out = []
    for k in sorted(set(expected) | set(actual)):
        path = f"{prefix}{k}"
        if k not in expected:
            out.append(f"  + {path}: {actual[k]!r} (not in baseline)")
        elif k not in actual:
            out.append(f"  - {path}: {expected[k]!r} (gone)")
        elif isinstance(expected[k], dict) and isinstance(actual[k], dict):
            out.extend(_diff(expected[k], actual[k], path + "."))
        elif expected[k] != actual[k]:
            out.append(f"  ~ {path}: {expected[k]!r} -> {actual[k]!r}")
    return out


def render_text(payload: Dict[str, Any]) -> str:
    lines = []
    for label, rep in payload["reports"].items():
        b = rep["bounds"]
        lines.append(f"--- {label}: {len(rep['regions'])} region(s), "
                     f"{rep['claimable_regions']} fully claimable; "
                     f"bounds {b['proven']} proven / "
                     f"{b['unproven']} unproven / {b['oob']} oob")
        for region in rep["regions"]:
            counts = ", ".join(f"{k}={v}" for k, v in
                               sorted(region["counts"].items()))
            mark = "ok" if region["claimable"] else "BLOCKED"
            lines.append(f"    {region['label']} [{region['kind']}] "
                         f"{mark}: {counts or 'empty'}")
        for f in rep["oob_findings"]:
            lines.append(f"    OOB {f['fn']}: {f['reason']} at {f['op']}")
    return "\n".join(lines)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--out", metavar="FILE",
                    help="write the combined JSON report here")
    ap.add_argument("--check", metavar="BASELINE",
                    help="compare against a committed expected-reasons "
                         "snapshot; exit nonzero on drift")
    ap.add_argument("--write-baseline", metavar="FILE",
                    help="write the expected-reasons snapshot here")
    ap.add_argument("--nx", type=int, default=2,
                    help="LULESH elements per edge (default 2)")
    args = ap.parse_args(argv)

    payload = collect(args.nx)
    print(render_text(payload))

    if args.out:
        with open(args.out, "w") as f:
            json.dump(payload, f, indent=2)
        print(f"wrote {args.out}")

    if args.write_baseline:
        with open(args.write_baseline, "w") as f:
            json.dump(baseline_view(payload), f, indent=2, sort_keys=True)
        print(f"wrote {args.write_baseline}")

    findings = 0
    oob = sum(len(rep["oob_findings"])
              for rep in payload["reports"].values())
    if oob:
        print(f"region-lint: {oob} provably out-of-bounds access(es)",
              file=sys.stderr)
        findings += oob

    if args.check:
        with open(args.check) as f:
            expected = json.load(f)
        drift = _diff(expected.get("programs", {}),
                      baseline_view(payload)["programs"])
        if drift:
            print(f"region-lint: drift from {args.check}:",
                  file=sys.stderr)
            for line in drift:
                print(line, file=sys.stderr)
            findings += len(drift)

    if findings:
        print(f"region-lint: {findings} finding(s)", file=sys.stderr)
        return 1
    print("region-lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
