"""Compare two backend-benchmark reports:
``python -m repro.tools.bench_compare BASELINE CANDIDATE``.

The CI perf gate: loads the committed ``BENCH_backend.json`` (baseline)
and a freshly produced report (candidate, usually from ``bench_backend
--smoke``) and fails if any *headline* case's compiled-vs-interp
speedup regressed more than ``--max-regression`` (default 20%) below
the baseline.  Cases present in only one report are compared against
nothing (smoke runs a subset of the full suite) but listed, so a
silently vanishing case is visible in the log.

``--expect-cache warm|cold`` additionally asserts the candidate's
persistent compile-cache counters: a *cold* run must have compiled
(misses, no hits) and a *warm* run must have been served entirely from
disk (hits, no misses, no stores).  CI runs the smoke benchmark twice
under the same ``REPRO_CACHE_DIR`` and checks cold-then-warm.

Speedups are wall-clock ratios on shared runners, so the gate is
deliberately loose: it catches the "compiled backend silently fell
back to the interpreter" class of regression (speedup collapses to
~1x), not single-digit-percent noise.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_report(path: str) -> dict:
    with open(path) as f:
        payload = json.load(f)
    if payload.get("tool") != "backend-bench":
        raise ValueError(f"{path}: not a backend-bench report "
                         f"(tool={payload.get('tool')!r})")
    return payload


def compare(baseline: dict, candidate: dict,
            max_regression: float) -> tuple[list[dict], list[str]]:
    """Per-case comparison rows and the list of failure messages."""
    base_rows = {r["case"]: r for r in baseline.get("rows", [])}
    failures: list[str] = []
    rows: list[dict] = []
    for cand in candidate.get("rows", []):
        name = cand["case"]
        base = base_rows.get(name)
        row = {"case": name,
               "headline": bool(cand.get("headline")),
               "baseline_speedup": base["speedup"] if base else None,
               "candidate_speedup": cand["speedup"]}
        if base is not None and base["speedup"] > 0:
            change = (cand["speedup"] - base["speedup"]) / base["speedup"]
            row["change"] = round(change, 4)
            if cand.get("headline") and change < -max_regression:
                failures.append(
                    f"{name}: speedup {cand['speedup']:.2f}x regressed "
                    f"{-change:.0%} below baseline "
                    f"{base['speedup']:.2f}x (limit "
                    f"{max_regression:.0%})")
        else:
            row["change"] = None
        # A candidate that diverges is broken regardless of speed.
        if cand.get("max_abs_dev", 0.0) > 0.0:
            failures.append(f"{name}: nonzero backend deviation "
                            f"{cand['max_abs_dev']:.2e}")
        if not cand.get("clock_match", True):
            failures.append(f"{name}: simulated clocks diverged")
        if not cand.get("cost_match", True):
            failures.append(f"{name}: cost vectors diverged")
        rows.append(row)
    missing = sorted(set(base_rows) - {r["case"] for r in rows})
    for name in missing:
        rows.append({"case": name, "headline": None,
                     "baseline_speedup": base_rows[name]["speedup"],
                     "candidate_speedup": None, "change": None})
    return rows, failures


def check_cache(candidate: dict, expect: str) -> list[str]:
    """Assert every compiled row's disk-cache counters match ``expect``
    ('cold': compiled and stored; 'warm': served purely from disk)."""
    failures = []
    for row in candidate.get("rows", []):
        name = row["case"]
        cache = (row.get("backend") or {}).get("cache")
        if cache is None:
            failures.append(f"{name}: no compile-cache counters "
                            f"(was bench_backend run with --cache-dir?)")
            continue
        if cache.get("errors"):
            failures.append(f"{name}: {cache['errors']} cache error(s)")
        if expect == "cold":
            if not cache.get("misses") or not cache.get("stores"):
                failures.append(
                    f"{name}: cold run expected misses+stores, got "
                    f"{cache}")
        else:  # warm
            if not cache.get("hits") or cache.get("misses") \
                    or cache.get("stores"):
                failures.append(
                    f"{name}: warm run expected hits only (no misses/"
                    f"stores), got {cache}")
    return failures


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", help="committed BENCH_backend.json")
    ap.add_argument("candidate", help="freshly produced report")
    ap.add_argument("--max-regression", type=float, default=0.20,
                    metavar="FRAC",
                    help="max allowed fractional headline-speedup "
                         "regression (default 0.20 = 20%%)")
    ap.add_argument("--expect-cache", choices=("cold", "warm"),
                    help="assert the candidate's persistent compile-"
                         "cache counters (cold: compiled+stored; warm: "
                         "pure hits)")
    args = ap.parse_args(argv)

    try:
        baseline = load_report(args.baseline)
        candidate = load_report(args.candidate)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2

    rows, failures = compare(baseline, candidate, args.max_regression)
    if args.expect_cache:
        failures += check_cache(candidate, args.expect_cache)

    for r in rows:
        base = r["baseline_speedup"]
        cand = r["candidate_speedup"]
        change = (f"{r['change']:+.1%}" if r["change"] is not None
                  else "n/a")
        mark = "headline" if r["headline"] else (
            "not in candidate" if cand is None else "")
        print(f"{r['case']:24s} baseline="
              f"{base if base is not None else '—':>6} candidate="
              f"{cand if cand is not None else '—':>6} "
              f"change={change:>7} {mark}")

    if failures:
        for msg in failures:
            print(f"FAIL: {msg}", file=sys.stderr)
        return 1
    print(f"OK: no headline regression beyond "
          f"{args.max_regression:.0%}"
          + (f", cache counters match '{args.expect_cache}'"
             if args.expect_cache else ""))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
