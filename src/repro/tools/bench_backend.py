"""Wall-clock comparison of the execution backends:
``python -m repro.tools.bench_backend``.

Runs the LULESH and miniBUDE *gradient* benchmarks (the generated
reverse-mode derivative, the expensive path) under ``backend="interp"``
and each candidate backend (``--backend compiled|native|both``,
default both) and reports real (host) seconds, the speedup, and the
maximum absolute deviation between the backends' gradients, primal
outputs, and simulated clocks.  The compiled and native backends are
contractually bit-identical, so any deviation beyond ``--tol``
(default 1e-12 — in practice it must be exactly 0.0) is a bug and
makes the tool exit nonzero.  Native-backend rows carry a ``[native]``
case suffix so they gate independently in ``bench_compare``.  CI runs
``--smoke`` as a divergence gate; the committed ``BENCH_backend.json``
is produced by a full run.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from ..apps.lulesh.driver import LuleshApp
from ..apps.minibude.driver import MinibudeApp

#: (name, kind, headline, kwargs) benchmark cases.  Gradient runs only
#: — the primal re-runs inside them as the augmented forward pass.
#: ``headline`` marks the benchmark rows the perf gate scores.  All
#: four are headline now: the serial gradients exercise the scalar
#: adjoint sweeps that compilation accelerates, and the threaded
#: gradients are the rows the native C tier targets.  The threaded
#: LULESH row runs nx=14 (~2.2k elements, ~550-wide per-thread
#: chunks): a production-representative width where the fused
#: expression kernels and fold accumulators engage, unlike the nx=6
#: toy.  Measured honestly, the threaded rows sit at ~3.6-4.2x vs the
#: interpreter and the native tier only edges out the compiled one:
#: the dominant remaining cost on both is inline per-statement NumPy
#: work in fork bodies, which is backend-neutral (and the monotone
#: scatter lowering already avoids ``ufunc.at``, so C gathers are a
#: wash at these widths — see ROADMAP on loop-level C regions).
#: miniBUDE keeps the default deck: its per-task chunks are 8 poses
#: wide, so its floor is per-call overhead, not kernel width — the
#: honest hard case.
_FULL_CASES = [
    ("lulesh-serial-grad", "lulesh", True,
     dict(flavor="serial", nx=6, steps=3)),
    ("minibude-serial-grad", "minibude", True, dict(variant="serial")),
    ("lulesh-openmp-grad", "lulesh", True,
     dict(flavor="openmp", nx=14, steps=3, num_threads=4)),
    ("minibude-openmp-grad", "minibude", True,
     dict(variant="openmp", num_threads=4)),
]

_SMOKE_CASES = [
    ("lulesh-serial-grad", "lulesh", True,
     dict(flavor="serial", nx=4, steps=2)),
    ("minibude-serial-grad", "minibude", True, dict(variant="serial")),
]


def _backend_summary(stats) -> dict | None:
    """Compress Executor.compile_stats() into the benchmark-row form."""
    if not stats:
        return None
    cache = stats.get("cache")
    out = {
        "functions": stats["functions"],
        "fusion": stats["fusion"],
        "ops": stats["ops"],
        "kernels": stats["kernels"],
        "fused_ops": stats["fused_ops"],
        "mono_loads": stats["mono_loads"],
        "mono_stores": stats["mono_stores"],
        "fast_atomics": stats["fast_atomics"],
        "cache": ({k: cache[k] for k in
                   ("hits", "misses", "stores", "errors")}
                  if cache else None),
    }
    if stats.get("native") is not None:
        out["native"] = stats["native"]
    return out


def _run_lulesh(backend: str, flavor: str, nx: int, steps: int,
                num_threads: int = 1, reps: int = 1,
                fusion: bool = True, cache_dir=None,
                adjoint=None, cc=None) -> dict:
    app = LuleshApp(flavor, nx, backend=backend, fusion=fusion,
                    compile_cache=cache_dir, adjoint=adjoint, cc=cc)
    app.grad_fn()  # build the derivative outside the timed region

    def one_run():
        doms = app.make_domains(1.0e4)
        shadows = [d.shadow_arrays(seed=1.0) for d in doms]
        t0 = time.perf_counter()
        res = app.run_gradient(doms, steps, num_threads, shadows)
        return time.perf_counter() - t0, doms, shadows, res

    one_run()  # warmup: compiles under backend="compiled"
    # The warmup run is where compilation (and any disk-cache traffic)
    # happens; the timed reps below hit the in-memory per-function memo.
    stats = _backend_summary(app.last_compile_stats)
    times = []
    for _ in range(reps):
        t, doms, shadows, res = one_run()
        times.append(t)
    best = min(times)
    grads = np.concatenate([sh[f].ravel() for sh in shadows
                            for f in sorted(sh)])
    primal = np.concatenate([np.asarray(d[f], dtype=np.float64).ravel()
                             for d in doms for f in sorted(d.arrays)])
    return {"seconds": best, "grads": grads, "primal": primal,
            "clock": res.time, "cost": res.cost.as_dict(),
            "backend_stats": stats,
            "adjoint_stats": app.last_adjoint_stats}


def _run_minibude(backend: str, variant: str, num_threads: int = 1,
                  reps: int = 1, fusion: bool = True,
                  cache_dir=None, cc=None) -> dict:
    app = MinibudeApp(variant, backend=backend, fusion=fusion,
                      compile_cache=cache_dir, cc=cc)
    app.grad_fn()

    def one_run():
        t0 = time.perf_counter()
        shadows, res = app.run_gradient(num_threads)
        return time.perf_counter() - t0, shadows, res

    one_run()
    stats = _backend_summary(app.last_compile_stats)
    times = []
    for _ in range(reps):
        t, shadows, res = one_run()
        times.append(t)
    best = min(times)
    grads = np.concatenate([shadows[k].ravel() for k in sorted(shadows)])
    return {"seconds": best, "grads": grads,
            "primal": res.energies.copy(), "clock": res.time,
            "cost": res.cost.as_dict(), "backend_stats": stats}


def run_case(name: str, kind: str, headline: bool, kwargs: dict,
             reps: int, backends=("compiled",), fusion: bool = True,
             cache_dir=None, adjoint=None, cc=None) -> list[dict]:
    """One benchmark case: the interp baseline runs once, then every
    candidate backend is timed and diffed against it.  Returns one row
    per candidate; native rows carry a ``[native]`` case suffix (their
    timing stays under the ``compiled_seconds`` key so downstream
    tooling reads every row the same way)."""
    runner = _run_lulesh if kind == "lulesh" else _run_minibude
    if adjoint and kind == "lulesh":
        # The strategy tags the LULESH time loop; miniBUDE has no
        # counted time loop, so its cases keep the cache-all plan.
        kwargs = dict(kwargs, adjoint=adjoint)
    interp = runner("interp", reps=reps, **kwargs)
    rows = []
    for backend in backends:
        cand = runner(backend, reps=reps, fusion=fusion,
                      cache_dir=cache_dir, cc=cc, **kwargs)
        dev = max(float(np.max(np.abs(interp["grads"] - cand["grads"]))),
                  float(np.max(np.abs(interp["primal"]
                                      - cand["primal"]))))
        rows.append({
            "case": name if backend == "compiled" else f"{name}[{backend}]",
            "backend_kind": backend,
            "headline": headline,
            "interp_seconds": round(interp["seconds"], 4),
            "compiled_seconds": round(cand["seconds"], 4),
            "speedup": round(interp["seconds"] / cand["seconds"], 2),
            "max_abs_dev": dev,
            "clock_match": interp["clock"] == cand["clock"],
            "cost_match": interp["cost"] == cand["cost"],
            "backend": cand["backend_stats"],
            "adjoint": adjoint if kind == "lulesh" else None,
            "adjoint_stats": cand.get("adjoint_stats"),
        })
    return rows


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true",
                    help="small problem sizes (the CI divergence gate)")
    ap.add_argument("--reps", type=int, default=3,
                    help="timed repetitions per backend (best is kept)")
    ap.add_argument("--tol", type=float, default=1e-12,
                    help="max allowed |interp - compiled| deviation")
    ap.add_argument("--out", metavar="FILE",
                    help="write the JSON report here as well as stdout")
    ap.add_argument("--backend", default="both",
                    choices=["compiled", "native", "both"],
                    help="candidate backend(s) to bench against interp "
                         "(default: both)")
    ap.add_argument("--cc", default=None,
                    help="C compiler for the native backend (default: "
                         "$CC, then cc/gcc/clang)")
    ap.add_argument("--no-fusion", action="store_true",
                    help="disable trace fusion in the compiled backend")
    ap.add_argument("--cache-dir", metavar="DIR",
                    help="persistent compile-cache directory for the "
                         "compiled backend (unset: defer to the "
                         "REPRO_CACHE_DIR environment variable; no "
                         "caching when that is unset too)")
    ap.add_argument("--adjoint", default=None,
                    choices=["cache-all", "checkpoint", "implicit"],
                    help="adjoint strategy for the LULESH time loop "
                         "(default: the engine's cache-all plan)")
    args = ap.parse_args(argv)

    backends = (("compiled", "native") if args.backend == "both"
                else (args.backend,))
    cases = _SMOKE_CASES if args.smoke else _FULL_CASES
    rows = []
    for name, kind, headline, kwargs in cases:
        case_rows = run_case(name, kind, headline, kwargs, args.reps,
                             backends=backends,
                             fusion=not args.no_fusion,
                             cache_dir=args.cache_dir,
                             adjoint=args.adjoint, cc=args.cc)
        rows += case_rows
        for row in case_rows:
            be = row["backend"] or {}
            cache = be.get("cache")
            extra = (f" fused={be['fused_ops']}/{be['ops']}"
                     f" kernels={be['kernels']}" if be else "")
            if cache:
                extra += (f" cache[h={cache['hits']} m={cache['misses']} "
                          f"s={cache['stores']}]")
            nat = be.get("native")
            if nat:
                extra += (f" native[k={nat['kernels']} c={nat['claimed']}"
                          f" f={nat['folds']} g={nat['gathers']}"
                          f" s={nat['scatters']}]" if nat["enabled"]
                          else " native[fallback]")
            if row.get("adjoint") and row.get("adjoint_stats"):
                extra += (
                    f" adjoint={row['adjoint']} "
                    f"peak={row['adjoint_stats']['peak_cached_bytes']}B")
            print(f"{row['case']:24s} "
                  f"interp={row['interp_seconds']:8.3f}s "
                  f"{row['backend_kind']}="
                  f"{row['compiled_seconds']:8.3f}s "
                  f"speedup={row['speedup']:5.2f}x "
                  f"dev={row['max_abs_dev']:.2e} "
                  f"clock_match={row['clock_match']} "
                  f"cost_match={row['cost_match']}{extra}")

    headline_speedups = [r["speedup"] for r in rows if r["headline"]]
    by_backend = {
        b: round(float(np.exp(np.mean(np.log(
            [r["speedup"] for r in rows
             if r["headline"] and r["backend_kind"] == b])))), 2)
        for b in backends
    }
    report = {
        "tool": "backend-bench",
        "mode": "smoke" if args.smoke else "full",
        "reps": args.reps,
        "adjoint": args.adjoint,
        "rows": rows,
        "speedup": round(float(np.exp(np.mean(
            np.log(headline_speedups)))), 2),
        "speedup_by_backend": by_backend,
        "speedup_note": "geomean over the headline gradient rows; "
                        "serial rows exercise the scalar adjoint "
                        "sweeps, threaded rows the per-chunk NumPy "
                        "kernel floor that the native C tier targets. "
                        "Static bounds certification is in effect: "
                        "certified sites drop their runtime checks, "
                        "which moved the serial rows from ~9.8/8.4x "
                        "to ~11.2/10.2x (scalar check calls were on "
                        "the hot adjoint sweep) but left the threaded "
                        "rows within ~0.1-0.5x of the prior numbers — "
                        "a near-wash, as their floor is per-statement "
                        "NumPy work in fork bodies, not check "
                        "branches",
        "max_abs_dev": max(r["max_abs_dev"] for r in rows),
    }
    text = json.dumps(report, indent=2)
    if args.out:
        with open(args.out, "w") as f:
            f.write(text + "\n")
    print(text)

    bad = [r for r in rows
           if r["max_abs_dev"] > args.tol or not r["clock_match"]
           or not r["cost_match"]]
    if bad:
        print(f"FAIL: {len(bad)} case(s) diverge beyond tol={args.tol}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
