"""Wall-clock comparison of the two execution backends:
``python -m repro.tools.bench_backend``.

Runs the LULESH and miniBUDE *gradient* benchmarks (the generated
reverse-mode derivative, the expensive path) under ``backend="interp"``
and ``backend="compiled"`` and reports real (host) seconds, the
speedup, and the maximum absolute deviation between the two backends'
gradients, primal outputs, and simulated clocks.  The compiled backend
is contractually bit-identical, so any deviation beyond ``--tol``
(default 1e-12 — in practice it must be exactly 0.0) is a bug and
makes the tool exit nonzero.  CI runs ``--smoke`` as a divergence
gate; the committed ``BENCH_backend.json`` is produced by a full run.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from ..apps.lulesh.driver import LuleshApp
from ..apps.minibude.driver import MinibudeApp

#: (name, kind, headline, kwargs) benchmark cases.  Gradient runs only
#: — the primal re-runs inside them as the augmented forward pass.
#: ``headline`` marks the benchmark rows the speedup target is scored
#: on: the serial-flavor gradients, whose adjoint sweeps execute
#: element-by-element (the reverse of a vectorized loop with an
#: iteration-indexed cache is a scalar loop), which is exactly the
#: regime compilation accelerates.  The threaded variants ride along
#: as supplementary rows: their interpreter execution is already
#: vectorized over per-thread chunks, so eliminating per-op dispatch
#: buys much less there — they are included for coverage of the
#: fork/workshare lowering, not for the speedup figure.
_FULL_CASES = [
    ("lulesh-serial-grad", "lulesh", True,
     dict(flavor="serial", nx=6, steps=3)),
    ("minibude-serial-grad", "minibude", True, dict(variant="serial")),
    ("lulesh-openmp-grad", "lulesh", False,
     dict(flavor="openmp", nx=6, steps=3, num_threads=4)),
    ("minibude-openmp-grad", "minibude", False,
     dict(variant="openmp", num_threads=4)),
]

_SMOKE_CASES = [
    ("lulesh-serial-grad", "lulesh", True,
     dict(flavor="serial", nx=4, steps=2)),
    ("minibude-serial-grad", "minibude", True, dict(variant="serial")),
]


def _backend_summary(stats) -> dict | None:
    """Compress Executor.compile_stats() into the benchmark-row form."""
    if not stats:
        return None
    cache = stats.get("cache")
    return {
        "functions": stats["functions"],
        "fusion": stats["fusion"],
        "ops": stats["ops"],
        "kernels": stats["kernels"],
        "fused_ops": stats["fused_ops"],
        "mono_loads": stats["mono_loads"],
        "mono_stores": stats["mono_stores"],
        "fast_atomics": stats["fast_atomics"],
        "cache": ({k: cache[k] for k in
                   ("hits", "misses", "stores", "errors")}
                  if cache else None),
    }


def _run_lulesh(backend: str, flavor: str, nx: int, steps: int,
                num_threads: int = 1, reps: int = 1,
                fusion: bool = True, cache_dir=None,
                adjoint=None) -> dict:
    app = LuleshApp(flavor, nx, backend=backend, fusion=fusion,
                    compile_cache=cache_dir, adjoint=adjoint)
    app.grad_fn()  # build the derivative outside the timed region

    def one_run():
        doms = app.make_domains(1.0e4)
        shadows = [d.shadow_arrays(seed=1.0) for d in doms]
        t0 = time.perf_counter()
        res = app.run_gradient(doms, steps, num_threads, shadows)
        return time.perf_counter() - t0, doms, shadows, res

    one_run()  # warmup: compiles under backend="compiled"
    # The warmup run is where compilation (and any disk-cache traffic)
    # happens; the timed reps below hit the in-memory per-function memo.
    stats = _backend_summary(app.last_compile_stats)
    times = []
    for _ in range(reps):
        t, doms, shadows, res = one_run()
        times.append(t)
    best = min(times)
    grads = np.concatenate([sh[f].ravel() for sh in shadows
                            for f in sorted(sh)])
    primal = np.concatenate([np.asarray(d[f], dtype=np.float64).ravel()
                             for d in doms for f in sorted(d.arrays)])
    return {"seconds": best, "grads": grads, "primal": primal,
            "clock": res.time, "cost": res.cost.as_dict(),
            "backend_stats": stats,
            "adjoint_stats": app.last_adjoint_stats}


def _run_minibude(backend: str, variant: str, num_threads: int = 1,
                  reps: int = 1, fusion: bool = True,
                  cache_dir=None) -> dict:
    app = MinibudeApp(variant, backend=backend, fusion=fusion,
                      compile_cache=cache_dir)
    app.grad_fn()

    def one_run():
        t0 = time.perf_counter()
        shadows, res = app.run_gradient(num_threads)
        return time.perf_counter() - t0, shadows, res

    one_run()
    stats = _backend_summary(app.last_compile_stats)
    times = []
    for _ in range(reps):
        t, shadows, res = one_run()
        times.append(t)
    best = min(times)
    grads = np.concatenate([shadows[k].ravel() for k in sorted(shadows)])
    return {"seconds": best, "grads": grads,
            "primal": res.energies.copy(), "clock": res.time,
            "cost": res.cost.as_dict(), "backend_stats": stats}


def run_case(name: str, kind: str, headline: bool, kwargs: dict,
             reps: int, fusion: bool = True, cache_dir=None,
             adjoint=None) -> dict:
    runner = _run_lulesh if kind == "lulesh" else _run_minibude
    if adjoint and kind == "lulesh":
        # The strategy tags the LULESH time loop; miniBUDE has no
        # counted time loop, so its cases keep the cache-all plan.
        kwargs = dict(kwargs, adjoint=adjoint)
    interp = runner("interp", reps=reps, **kwargs)
    compiled = runner("compiled", reps=reps, fusion=fusion,
                      cache_dir=cache_dir, **kwargs)
    dev = max(float(np.max(np.abs(interp["grads"] - compiled["grads"]))),
              float(np.max(np.abs(interp["primal"] - compiled["primal"]))))
    return {
        "case": name,
        "headline": headline,
        "interp_seconds": round(interp["seconds"], 4),
        "compiled_seconds": round(compiled["seconds"], 4),
        "speedup": round(interp["seconds"] / compiled["seconds"], 2),
        "max_abs_dev": dev,
        "clock_match": interp["clock"] == compiled["clock"],
        "cost_match": interp["cost"] == compiled["cost"],
        "backend": compiled["backend_stats"],
        "adjoint": adjoint if kind == "lulesh" else None,
        "adjoint_stats": compiled.get("adjoint_stats"),
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true",
                    help="small problem sizes (the CI divergence gate)")
    ap.add_argument("--reps", type=int, default=3,
                    help="timed repetitions per backend (best is kept)")
    ap.add_argument("--tol", type=float, default=1e-12,
                    help="max allowed |interp - compiled| deviation")
    ap.add_argument("--out", metavar="FILE",
                    help="write the JSON report here as well as stdout")
    ap.add_argument("--no-fusion", action="store_true",
                    help="disable trace fusion in the compiled backend")
    ap.add_argument("--cache-dir", metavar="DIR",
                    help="persistent compile-cache directory for the "
                         "compiled backend (unset: defer to the "
                         "REPRO_CACHE_DIR environment variable; no "
                         "caching when that is unset too)")
    ap.add_argument("--adjoint", default=None,
                    choices=["cache-all", "checkpoint", "implicit"],
                    help="adjoint strategy for the LULESH time loop "
                         "(default: the engine's cache-all plan)")
    args = ap.parse_args(argv)

    cases = _SMOKE_CASES if args.smoke else _FULL_CASES
    rows = []
    for name, kind, headline, kwargs in cases:
        row = run_case(name, kind, headline, kwargs, args.reps,
                       fusion=not args.no_fusion,
                       cache_dir=args.cache_dir,
                       adjoint=args.adjoint)
        rows.append(row)
        be = row["backend"] or {}
        cache = be.get("cache")
        extra = (f" fused={be['fused_ops']}/{be['ops']}"
                 f" kernels={be['kernels']}" if be else "")
        if cache:
            extra += (f" cache[h={cache['hits']} m={cache['misses']} "
                      f"s={cache['stores']}]")
        if row.get("adjoint") and row.get("adjoint_stats"):
            extra += (f" adjoint={row['adjoint']} "
                      f"peak={row['adjoint_stats']['peak_cached_bytes']}B")
        print(f"{row['case']:24s} interp={row['interp_seconds']:8.3f}s "
              f"compiled={row['compiled_seconds']:8.3f}s "
              f"speedup={row['speedup']:5.2f}x "
              f"dev={row['max_abs_dev']:.2e} "
              f"clock_match={row['clock_match']} "
              f"cost_match={row['cost_match']}{extra}")

    headline_speedups = [r["speedup"] for r in rows if r["headline"]]
    report = {
        "tool": "backend-bench",
        "mode": "smoke" if args.smoke else "full",
        "reps": args.reps,
        "adjoint": args.adjoint,
        "rows": rows,
        "speedup": round(float(np.exp(np.mean(
            np.log(headline_speedups)))), 2),
        "speedup_note": "geomean over the headline gradient benchmarks "
                        "(scalar adjoint sweeps); threaded rows are "
                        "supplementary coverage — their interpreter "
                        "baseline is already NumPy-vectorized",
        "max_abs_dev": max(r["max_abs_dev"] for r in rows),
    }
    text = json.dumps(report, indent=2)
    if args.out:
        with open(args.out, "w") as f:
            f.write(text + "\n")
    print(text)

    bad = [r for r in rows
           if r["max_abs_dev"] > args.tol or not r["clock_match"]
           or not r["cost_match"]]
    if bad:
        print(f"FAIL: {len(bad)} case(s) diverge beyond tol={args.tol}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
