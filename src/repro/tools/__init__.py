"""Command-line utilities (``python -m repro.tools.<name>``)."""
