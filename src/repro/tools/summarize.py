"""Summarize benchmark results: ``python -m repro.tools.summarize``.

Reads the JSON series the benchmark harness saved under
``benchmarks/results/`` and renders the paper-style tables plus ASCII
scaling plots for the figure benchmarks.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from ..perf.report import Series, ascii_plot, format_table

DEFAULT_DIR = pathlib.Path(__file__).resolve().parents[3] / \
    "benchmarks" / "results"

#: result-name -> (x key, series key, y key) for plotting
_PLOTTABLE = {
    "fig8_mid_strong": ("ranks", "impl", "fwd_speedup"),
    "fig9_top_lulesh": ("threads", "impl", "fwd_speedup"),
    "fig9_bot_minibude": ("threads", "impl", "overhead"),
}


def load(results_dir: pathlib.Path) -> dict:
    out = {}
    for path in sorted(results_dir.glob("*.json")):
        with open(path) as f:
            out[path.stem] = json.load(f)
    return out


def render(name: str, data: dict, plot: bool = True) -> str:
    rows = data["rows"]
    cols = list(rows[0].keys()) if rows else []
    text = format_table(data["title"], cols,
                        [[r.get(c) for c in cols] for r in rows])
    spec = _PLOTTABLE.get(name)
    if plot and spec and rows:
        xk, sk, yk = spec
        series: dict[str, Series] = {}
        for r in rows:
            s = series.setdefault(r[sk], Series(str(r[sk])))
            s.points[r[xk]] = float(r[yk])
        text += "\n" + ascii_plot(list(series.values()),
                                  title=f"{name}: {yk} vs {xk}",
                                  value="raw")
    return text


def render_sanitize_report(payload: dict) -> str:
    """Render sanitizer JSON (lint or racecheck) as a benchmark table."""
    tool = payload.get("tool")
    if tool == "lint":
        rows = [{"severity": d["severity"], "code": d["code"],
                 "op": d["op"], "message": d["message"]}
                for d in payload.get("diagnostics", [])]
        counts = payload.get("counts", {})
        title = (f"sanitize-lint @{payload.get('fn', '?')}: "
                 f"{counts.get('error', 0)} error(s), "
                 f"{counts.get('warn', 0)} warning(s)")
        if not rows:
            return f"== {title} ==\nclean\n"
        cols = list(rows[0].keys())
        return format_table(title, cols,
                            [[r.get(c) for c in cols] for r in rows])
    if tool == "racecheck":
        rows = [{"kind": r["kind"],
                 "location": f"{r['buffer']}[{r['index']}]",
                 "thread": r["thread"], "prev_thread": r["prev_thread"],
                 "op": r["op"], "prev_op": r["prev_op"]}
                for r in payload.get("races", [])]
        title = (f"racecheck: {len(rows)} race(s), "
                 f"{payload.get('accesses_checked', 0)} accesses checked, "
                 f"{len(payload.get('threads', []))} logical threads")
        if not rows:
            return f"== {title} ==\nclean\n"
        cols = list(rows[0].keys())
        return format_table(title, cols,
                            [[r.get(c) for c in cols] for r in rows])
    raise ValueError(f"not a sanitizer report (tool={tool!r}); expected "
                     f"LintResult.to_json() or RaceChecker.to_json() output")


def render_backend_report(payload: dict) -> str:
    """Render ``repro.tools.bench_backend`` JSON as a benchmark table."""
    if payload.get("tool") != "backend-bench":
        raise ValueError(f"not a backend-bench report "
                         f"(tool={payload.get('tool')!r}); expected "
                         f"bench_backend --out output")
    def _fused(r):
        be = r.get("backend")
        if not be:
            return ""
        return f"{be['fused_ops']}/{be['ops']}"

    def _cache(r):
        cache = (r.get("backend") or {}).get("cache")
        if not cache:
            return "off"
        return (f"h{cache['hits']} m{cache['misses']} "
                f"s{cache['stores']}")

    def _native(r):
        nat = (r.get("backend") or {}).get("native")
        if not nat:
            return ""
        if not nat.get("enabled"):
            return "fallback"
        return (f"k{nat['kernels']}+f{nat['folds']}"
                f"+g{nat['gathers']}+s{nat['scatters']} "
                f"{nat['compile_seconds']:.2f}s")

    rows = [{"case": r["case"],
             "headline": "yes" if r.get("headline") else "",
             "interp_s": r["interp_seconds"],
             "backend_s": r["compiled_seconds"],
             "speedup": f"{r['speedup']:.2f}x",
             "max_abs_dev": f"{r['max_abs_dev']:.1e}",
             "clock": "=" if r["clock_match"] else "DIVERGED",
             "cost": "=" if r["cost_match"] else "DIVERGED",
             "fused_ops": _fused(r),
             "kernels": (r.get("backend") or {}).get("kernels", ""),
             "native": _native(r),
             "cache": _cache(r)}
            for r in payload.get("rows", [])]
    title = (f"backend-bench ({payload.get('mode', '?')}): "
             f"backends vs interp, headline speedup "
             f"{payload.get('speedup', '?')}x, "
             f"max |dev| {payload.get('max_abs_dev', '?')}")
    if not rows:
        return f"== {title} ==\nno cases\n"
    cols = list(rows[0].keys())
    out = format_table(title, cols,
                       [[r.get(c) for c in cols] for r in rows])
    # Surface native-tier fallbacks explicitly: a row that silently ran
    # the NumPy path instead of C would otherwise only show as a
    # missing kernel count.
    notes = []
    for r in payload.get("rows", []):
        nat = (r.get("backend") or {}).get("native")
        if not nat:
            continue
        reason = nat.get("fallback_reason")
        if reason:
            notes.append(f"note: {r['case']}: native fallback - {reason}")
        for fn, why in sorted((nat.get("function_fallbacks")
                               or {}).items()):
            notes.append(f"note: {r['case']}: {fn}: {why}")
    if notes:
        out += "\n".join(notes) + "\n"
    return out


def render_comm_report(payload: dict) -> str:
    """Render commcheck JSON (one report or an mpi_lint suite)."""
    tool = payload.get("tool")
    if tool == "commcheck-suite":
        return "\n".join(render_comm_report(r)
                         for r in payload.get("reports", []))
    if tool != "commcheck":
        raise ValueError(f"not a commcheck report (tool={tool!r}); "
                         f"expected CommReport.to_json() or mpi_lint "
                         f"--out output")
    counts = payload.get("counts", {})
    sizes = ",".join(str(p) for p in payload.get("sizes", []))
    title = (f"commcheck{' duality' if payload.get('duality') else ''} "
             f"@{payload.get('fn', '?')} (P={sizes}): "
             f"{counts.get('error', 0)} error(s), "
             f"{counts.get('warn', 0)} warning(s)")
    if not payload.get("checked", True):
        return f"== {title} ==\nno MPI communication\n"
    rows = [{"severity": d["severity"], "code": d["code"],
             "op": d["op"], "message": d["message"]}
            for d in payload.get("diagnostics", [])]
    if rows:
        cols = list(rows[0].keys())
        text = format_table(title, cols,
                            [[r.get(c) for c in cols] for r in rows])
    else:
        text = f"== {title} ==\nclean\n"
    summary = payload.get("summary", [])
    if summary:
        cols = list(summary[0].keys())
        text += format_table("symbolic communication summary", cols,
                             [[r.get(c) for c in cols] for r in summary])
    return text


def render_adjoint_report(payload: dict) -> str:
    """Render an adjoint-strategy report: the per-loop managed/fallback
    table plus peak AD-cache bytes, from a gradient-run JSON (the
    ``python -m repro.apps.lulesh.driver --json`` output, or any dict
    with ``adjoint_report``/``adjoint_stats`` keys)."""
    rep = payload.get("adjoint_report")
    if rep is None:
        raise ValueError("no 'adjoint_report' in payload; expected "
                         "`python -m repro.apps.lulesh.driver --json` "
                         "output from a gradient run")
    stats = payload.get("adjoint_stats") or {}
    where = payload.get("flavor") or payload.get("fn") or "?"
    title = (f"adjoint strategy {rep.get('strategy', '?')!r} @{where} "
             f"steps={payload.get('steps', '?')}: "
             f"{len(rep.get('managed', []))} managed loop(s), "
             f"{len(rep.get('fallbacks', []))} fallback(s), "
             f"peak cached {stats.get('peak_cached_bytes', '?')} bytes")
    rows = ([{"loop": m["loop"], "strategy": m["strategy"], "note": ""}
             for m in rep.get("managed", [])] +
            [{"loop": f["loop"],
              "strategy": f"{f['strategy']} -> cache-all",
              "note": f.get("reason", "")}
             for f in rep.get("fallbacks", [])])
    if not rows:
        return f"== {title} ==\nno managed loops (cache-all everywhere)\n"
    cols = list(rows[0].keys())
    return format_table(title, cols,
                        [[r.get(c) for c in cols] for r in rows])


def render_region_report(payload: dict) -> str:
    """Render regioncheck JSON (one report or a region_lint suite): the
    per-region claimability table plus the bounds-certification
    counts."""
    tool = payload.get("tool")
    if tool == "regioncheck-suite":
        return "\n".join(
            render_region_report(r)
            for r in payload.get("reports", {}).values())
    if tool != "regioncheck":
        raise ValueError(f"not a regioncheck report (tool={tool!r}); "
                         f"expected region_report() output or "
                         f"region_lint --out output")
    b = payload.get("bounds", {})
    regions = payload.get("regions", [])
    title = (f"regioncheck @{payload.get('fn', '?')}: "
             f"{len(regions)} region(s), "
             f"{payload.get('claimable_regions', 0)} fully claimable; "
             f"bounds {b.get('proven', 0)} proven / "
             f"{b.get('unproven', 0)} unproven / {b.get('oob', 0)} oob")
    if not regions:
        return f"== {title} ==\nno parallel regions\n"
    rows = [{"region": r["label"], "kind": r["kind"],
             "claimable": "yes" if r["claimable"] else "no",
             "reasons": ", ".join(f"{k}={v}" for k, v in
                                  sorted(r["counts"].items()))}
            for r in regions]
    cols = list(rows[0].keys())
    text = format_table(title, cols,
                        [[row.get(c) for c in cols] for row in rows])
    oob = payload.get("oob_findings", [])
    for f in oob:
        text += f"OOB {f.get('fn', '?')}: {f.get('reason', '?')}\n"
    return text


#: dest -> (renderer, help) for the report-file options shared by the
#: sanitizer, backend-bench, commcheck, and adjoint render paths.
_REPORT_KINDS = {
    "sanitize_report": (render_sanitize_report,
                        "render a sanitizer JSON report (lint or "
                        "racecheck output) instead of benchmark "
                        "results; repeatable"),
    "backend_report": (render_backend_report,
                       "render a bench_backend JSON report "
                       "(BENCH_backend.json); repeatable"),
    "comm_report": (render_comm_report,
                    "render a commcheck JSON report (CommReport or "
                    "mpi_lint --out output); repeatable"),
    "adjoint_report": (render_adjoint_report,
                       "render an adjoint-strategy report (lulesh "
                       "driver --json gradient output): managed loops, "
                       "fallbacks, peak cached bytes; repeatable"),
    "region_report": (render_region_report,
                      "render a regioncheck JSON report "
                      "(region_report() or region_lint --out output): "
                      "per-region claimability with reasons plus "
                      "bounds-certification counts; repeatable"),
}


def _add_report_args(ap: argparse.ArgumentParser) -> None:
    for dest, (_, help_text) in _REPORT_KINDS.items():
        ap.add_argument("--" + dest.replace("_", "-"), metavar="FILE",
                        action="append", type=pathlib.Path, default=[],
                        help=help_text)


def _render_report_args(args: argparse.Namespace) -> bool:
    """Render any requested report files; True if any were given."""
    rendered = False
    for dest, (renderer, _) in _REPORT_KINDS.items():
        for path in getattr(args, dest):
            with open(path) as f:
                print(renderer(json.load(f)))
            rendered = True
    return rendered


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--results", type=pathlib.Path, default=DEFAULT_DIR)
    ap.add_argument("--no-plots", action="store_true")
    _add_report_args(ap)
    ap.add_argument("names", nargs="*",
                    help="result names to show (default: all)")
    args = ap.parse_args(argv)
    if _render_report_args(args):
        return 0
    data = load(args.results)
    if not data:
        print(f"no results in {args.results}; run "
              f"`pytest benchmarks/ --benchmark-only` first",
              file=sys.stderr)
        return 1
    names = args.names or sorted(data)
    for n in names:
        if n not in data:
            print(f"unknown result {n!r}", file=sys.stderr)
            return 2
        print(render(n, data[n], plot=not args.no_plots))
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
