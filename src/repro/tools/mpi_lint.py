"""Static MPI lint gate: ``python -m repro.tools.mpi_lint``.

Builds the LULESH and miniBUDE MPI programs, runs the static
communication analyzer (:mod:`repro.sanitize.commcheck`) on each
primal, differentiates them, and runs the adjoint-duality verifier on
each gradient — the machine-check of the paper's Fig. 5 claim that CI
gates on.  Exits nonzero on any finding — errors always, warnings too
unless ``--allow-warnings`` (warnings mark communication the
abstraction could not resolve, so letting them accumulate silently
erodes the lint's coverage); ``--out`` writes the combined JSON
report for ``summarize --comm-report``.
"""

from __future__ import annotations

import argparse
import json
import sys

from ..apps.lulesh.driver import LuleshApp
from ..apps.minibude.deck import make_deck
from ..apps.minibude.driver import MinibudeApp
from ..sanitize.commcheck import (CommReport, commcheck_function,
                                  verify_duality)


def _lulesh_reports(nx: int, pr: int) -> list[CommReport]:
    # Neighbor arithmetic is only in-range at the built decomposition,
    # so the communicator size must be pr**3.
    app = LuleshApp("mpi", nx, pr=pr)
    sizes = (app.nprocs,)
    bindings = {"steps": 2}
    primal = commcheck_function(app.fn, app.module, sizes=sizes,
                                bindings=bindings)
    dual = verify_duality(app.module, app.fn, app.grad_fn(),
                          sizes=sizes, bindings=bindings)
    return [primal, dual]


def _minibude_reports(sizes: tuple) -> list[CommReport]:
    app = MinibudeApp("mpi", make_deck(8, 4, 12))
    primal = commcheck_function(app.fn, app.module, sizes=sizes)
    dual = verify_duality(app.module, app.fn, app.grad_fn(),
                          sizes=sizes)
    return [primal, dual]


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--out", metavar="FILE",
                    help="write the combined JSON report here")
    ap.add_argument("--nx", type=int, default=2,
                    help="LULESH per-rank elements per edge")
    ap.add_argument("--pr", type=int, default=2,
                    help="LULESH ranks per edge (communicator is pr^3)")
    ap.add_argument("--sizes", default="2,4",
                    help="comma-separated miniBUDE communicator sizes")
    ap.add_argument("--allow-warnings", action="store_true",
                    help="exit zero when only warn-severity findings "
                         "are present")
    args = ap.parse_args(argv)

    sizes = tuple(int(s) for s in args.sizes.split(","))
    reports = _lulesh_reports(args.nx, args.pr) + \
        _minibude_reports(sizes)

    errors = warnings = 0
    for rep in reports:
        what = "duality" if rep.duality else "primal"
        print(f"--- {what}: {rep.render()}")
        errors += len(rep.errors)
        warnings += len(rep.warnings)

    if args.out:
        payload = {"tool": "commcheck-suite",
                   "reports": [r.to_json() for r in reports]}
        with open(args.out, "w") as f:
            json.dump(payload, f, indent=2)
        print(f"wrote {args.out}")

    if errors or (warnings and not args.allow_warnings):
        print(f"mpi-lint: {errors} error / {warnings} warn "
              f"finding(s)", file=sys.stderr)
        return 1
    if warnings:
        print(f"mpi-lint: clean ({warnings} allowed warning(s))")
    else:
        print("mpi-lint: clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
