"""Cross-rank communication graphs and their structural checks.

:mod:`repro.sanitize.commcheck` abstractly executes an IR function once
per rank for a concrete communicator size and produces, for every rank,
an ordered *trace* of :class:`CommEvent` records.  This module holds the
graph side of the analyzer: matching point-to-point endpoints into
edges, comparing collective sequences across ranks, auditing request
lifetimes, simulating the trace under rendezvous semantics to find
blocking-send cycles, and checking the adjoint trace of a gradient
function against the edge-reversed transpose of its primal (Fig. 5).

Severity follows :mod:`repro.sanitize.lint`: ``error`` findings are
provable structural bugs in the extracted traces; ``warn`` findings mark
places where extraction lost precision (so a clean report means *no
structural communication bug among the statically resolved events*).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Optional

from ..ir.ops import Op
from ..ir.printer import print_op
from .lint import ERROR, WARN, Diagnostic

#: Point-to-point transmit / receive event kinds.
P2P_TX = frozenset({"send", "isend"})
P2P_RX = frozenset({"recv", "irecv"})
#: Collective event kinds (``winner_mask`` is the MINLOC-style
#: collective the augmented forward pass adds for min/max allreduce).
COLLECTIVES = frozenset({"allreduce", "reduce", "bcast", "barrier",
                         "winner_mask"})


@dataclass
class CommEvent:
    """One communication action of one rank, in program order."""

    kind: str                       # p2p kind, collective kind, or "wait"
    rank: int
    peer: Optional[int] = None      # resolved peer rank (p2p)
    tag: Optional[int] = None
    count: Optional[int] = None
    red_op: Optional[str] = None    # reduction op for (all)reduce
    root: Optional[int] = None      # root rank for reduce/bcast
    buf: Optional[object] = None    # abstract buffer identity (display)
    req: Optional[int] = None       # request id (posts and waits)
    blocking: bool = True           # False for isend/irecv posts
    #: "primal" for undifferentiated functions; gradient traces split
    #: into "forward" (clones of the primal), "adjoint" (reverse-pass
    #: communication), and "augmented" (extra forward collectives such
    #: as winner_mask, which have no primal counterpart).
    provenance: str = "primal"
    maybe: bool = False             # under an unresolved guard
    op: Optional[Op] = None         # IR op for diagnostics
    # Symbolic endpoint strings (filled by the symbolic-summary run).
    peer_s: Optional[str] = None
    tag_s: Optional[str] = None
    count_s: Optional[str] = None

    def describe(self) -> str:
        bits = [f"{self.kind}"]
        if self.kind in P2P_TX:
            bits.append(f"rank{self.rank}->rank{self.peer}")
        elif self.kind in P2P_RX:
            bits.append(f"rank{self.rank}<-rank{self.peer}")
        else:
            bits.append(f"rank{self.rank}")
        if self.tag is not None:
            bits.append(f"tag={self.tag}")
        if self.count is not None:
            bits.append(f"count={self.count}")
        if self.red_op:
            bits.append(f"op={self.red_op}")
        if self.root is not None:
            bits.append(f"root={self.root}")
        return " ".join(bits)


class DiagSink:
    """Diagnostic collector deduplicating per (severity, code, op)."""

    def __init__(self, fn: str) -> None:
        self.fn = fn
        self.items: list[Diagnostic] = []
        self._seen: set = set()

    def add(self, severity: str, code: str, message: str,
            op: Optional[Op] = None, related: Optional[Op] = None) -> None:
        key = (severity, code,
               op.uid if op is not None else message)
        if key in self._seen:
            return
        self._seen.add(key)
        self.items.append(Diagnostic(severity, code, message, self.fn,
                                     op, related))

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.items if d.severity == ERROR]


def _matchable(ev: CommEvent) -> bool:
    return not ev.maybe and ev.peer is not None


# ---------------------------------------------------------------------------
# Point-to-point matching
# ---------------------------------------------------------------------------

def check_p2p(traces: list[list[CommEvent]], sink: DiagSink) -> bool:
    """Pair sends with receives per (src, dst, tag) channel.

    Returns True when every resolved endpoint matched with equal count.
    """
    tx: dict[tuple, list[CommEvent]] = {}
    rx: dict[tuple, list[CommEvent]] = {}
    for trace in traces:
        for ev in trace:
            if ev.kind in P2P_TX and _matchable(ev):
                tx.setdefault((ev.rank, ev.peer, ev.tag), []).append(ev)
            elif ev.kind in P2P_RX and _matchable(ev):
                rx.setdefault((ev.peer, ev.rank, ev.tag), []).append(ev)
    ok = True
    for chan in sorted(set(tx) | set(rx), key=repr):
        src, dst, tag = chan
        ts, rs = tx.get(chan, []), rx.get(chan, [])
        for a, b in zip(ts, rs):
            if a.count is not None and b.count is not None \
                    and a.count != b.count:
                ok = False
                sink.add(ERROR, "count-mismatch",
                         f"{a.describe()} paired with a receive of "
                         f"count={b.count}", a.op, b.op)
        for ev in ts[len(rs):]:
            ok = False
            sink.add(ERROR, "unmatched-p2p",
                     f"{ev.describe()} has no matching receive"
                     f"{_near_miss_hint(rx, tx, src, dst, tag)}", ev.op)
        for ev in rs[len(ts):]:
            ok = False
            sink.add(ERROR, "unmatched-p2p",
                     f"{ev.describe()} has no matching send"
                     f"{_near_miss_hint(tx, rx, src, dst, tag)}", ev.op)
    return ok


def _near_miss_hint(others: dict, own: dict, src: int, dst: int,
                    tag) -> str:
    """If the opposite side has surplus endpoints on the same (src, dst)
    pair under a different tag, say so — almost always a tag typo."""
    for (s, d, t), evs in others.items():
        if s == src and d == dst and t != tag:
            if len(evs) > len(own.get((s, d, t), [])):
                return f" (unmatched endpoint with tag={t} exists " \
                       f"on the same rank pair — tag mismatch?)"
    return ""


# ---------------------------------------------------------------------------
# Collectives
# ---------------------------------------------------------------------------

def _coll_key(ev: CommEvent) -> tuple:
    return (ev.kind, ev.red_op, ev.count, ev.root)


def check_collectives(traces: list[list[CommEvent]],
                      sink: DiagSink) -> bool:
    """Every rank must issue the same collective sequence (kind, op,
    count, root), in the same order."""
    seqs = [[ev for ev in t if ev.kind in COLLECTIVES and not ev.maybe]
            for t in traces]
    lens = {len(s) for s in seqs}
    if len(lens) > 1:
        detail = ", ".join(f"rank{r}:{len(s)}" for r, s in enumerate(seqs))
        first = next((s[0] for s in seqs if s), None)
        sink.add(ERROR, "collective-divergence",
                 f"ranks disagree on the number of collectives "
                 f"({detail})", first.op if first else None)
        return False
    ok = True
    for pos in range(min(lens) if lens else 0):
        ref = seqs[0][pos]
        for r in range(1, len(seqs)):
            ev = seqs[r][pos]
            if _coll_key(ev) != _coll_key(ref):
                ok = False
                sink.add(ERROR, "collective-divergence",
                         f"collective #{pos} diverges across ranks: "
                         f"rank0 issues {ref.describe()} but rank{r} "
                         f"issues {ev.describe()}", ref.op, ev.op)
    return ok


# ---------------------------------------------------------------------------
# Request lifetimes
# ---------------------------------------------------------------------------

def check_request_lifetime(trace: list[CommEvent], sink: DiagSink) -> None:
    """Missing / double waits over one rank's trace."""
    pending: dict[int, CommEvent] = {}
    completed: set[int] = set()
    for ev in trace:
        if ev.req is None:
            continue
        if ev.kind in P2P_TX or ev.kind in P2P_RX:
            if not ev.blocking and not ev.maybe:
                pending[ev.req] = ev
        elif ev.kind == "wait" and not ev.maybe:
            if ev.req in pending:
                del pending[ev.req]
                completed.add(ev.req)
            elif ev.req in completed:
                sink.add(ERROR, "double-wait",
                         f"request already completed is waited on "
                         f"again ({ev.describe()})", ev.op)
    for ev in pending.values():
        sink.add(ERROR, "missing-wait",
                 f"nonblocking {ev.describe()} is never waited on",
                 ev.op)


# ---------------------------------------------------------------------------
# Rendezvous-semantics deadlock simulation
# ---------------------------------------------------------------------------

def simulate_rendezvous(traces: list[list[CommEvent]],
                        sink: DiagSink) -> bool:
    """Schedule the traces under rendezvous semantics.

    Blocking sends complete only once the matching receive is posted
    (and waits on nonblocking sends only once matched), so symmetric
    head-to-head ``Send``/``Send`` exchanges — which SimMPI's default
    eager mode hides — show up as a no-progress state here.  Only run
    after :func:`check_p2p` / :func:`check_collectives` pass, so a
    reported cycle is an ordering bug, not a missing endpoint.
    """
    n = len(traces)
    runs: list[list[CommEvent]] = []
    for t in traces:
        skipped: set[int] = set()
        lst = []
        for ev in t:
            if ev.kind in P2P_TX or ev.kind in P2P_RX:
                if not _matchable(ev):
                    if ev.req is not None:
                        skipped.add(ev.req)
                    continue
            elif ev.kind == "wait":
                if ev.maybe or ev.req is None or ev.req in skipped:
                    continue
            elif ev.kind in COLLECTIVES:
                if ev.maybe:
                    continue
            else:
                continue
            lst.append(ev)
        runs.append(lst)

    pcs = [0] * n
    posted: set[int] = set()
    matched: set[int] = set()
    pend_tx: dict[tuple, list[CommEvent]] = {}
    pend_rx: dict[tuple, list[CommEvent]] = {}
    post_by_req = [
        {ev.req: ev for ev in run
         if ev.req is not None and (ev.kind in P2P_TX or ev.kind in P2P_RX)}
        for run in runs]
    at_collective: list[Optional[CommEvent]] = [None] * n

    def post(ev: CommEvent) -> None:
        if ev.kind in P2P_TX:
            chan = (ev.rank, ev.peer, ev.tag)
            q = pend_rx.get(chan)
            if q:
                other = q.pop(0)
                matched.add(id(other))
                matched.add(id(ev))
            else:
                pend_tx.setdefault(chan, []).append(ev)
        else:
            chan = (ev.peer, ev.rank, ev.tag)
            q = pend_tx.get(chan)
            if q:
                other = q.pop(0)
                matched.add(id(other))
                matched.add(id(ev))
            else:
                pend_rx.setdefault(chan, []).append(ev)

    while True:
        progress = False
        for r in range(n):
            while pcs[r] < len(runs[r]):
                ev = runs[r][pcs[r]]
                if ev.kind in P2P_TX or ev.kind in P2P_RX:
                    if id(ev) not in posted:
                        posted.add(id(ev))
                        post(ev)
                    if not ev.blocking or id(ev) in matched:
                        pcs[r] += 1
                        progress = True
                        continue
                    break
                if ev.kind == "wait":
                    pev = post_by_req[r].get(ev.req)
                    if pev is None or id(pev) in matched:
                        pcs[r] += 1
                        progress = True
                        continue
                    break
                # collective: everyone must arrive.
                at_collective[r] = ev
                if all(at_collective[q] is not None or pcs[q] >= len(runs[q])
                       for q in range(n)):
                    for q in range(n):
                        if at_collective[q] is not None:
                            at_collective[q] = None
                            pcs[q] += 1
                    progress = True
                    continue
                break
        if all(pcs[r] >= len(runs[r]) for r in range(n)):
            return True
        if not progress:
            stuck = [(r, runs[r][pcs[r]]) for r in range(n)
                     if pcs[r] < len(runs[r])]
            detail = "; ".join(f"rank{r} blocked at {ev.describe()}"
                               for r, ev in stuck)
            sink.add(ERROR, "rendezvous-deadlock",
                     f"no progress under rendezvous semantics: {detail}",
                     stuck[0][1].op,
                     stuck[1][1].op if len(stuck) > 1 else None)
            return False


# ---------------------------------------------------------------------------
# Adjoint duality (Fig. 5)
# ---------------------------------------------------------------------------

def _p2p_edges(traces: list[list[CommEvent]], prov: tuple) -> Counter:
    c: Counter = Counter()
    for t in traces:
        for ev in t:
            if ev.kind in P2P_TX and _matchable(ev) \
                    and ev.provenance in prov:
                c[(ev.rank, ev.peer, ev.tag, ev.count)] += 1
    return c


def _coll_seq(traces: list[list[CommEvent]], prov: tuple) -> list[list]:
    return [[_coll_key(ev) for ev in t
             if ev.kind in COLLECTIVES and not ev.maybe
             and ev.provenance in prov]
            for t in traces]


def _dual_collective(key: tuple) -> tuple:
    """Fig. 5 / §IV-B collective duals."""
    kind, red_op, count, root = key
    if kind == "allreduce":
        return ("allreduce", "sum", count, None)
    if kind == "bcast":
        return ("reduce", "sum", count, root)
    if kind == "reduce":
        return ("bcast", None, count, root)
    return key                                   # barrier is self-dual


def _edge_str(edge: tuple) -> str:
    s, d, t, c = edge
    return f"rank{s}->rank{d} tag={t} count={c}"


def _counter_diff(want: Counter, got: Counter) -> str:
    missing = want - got
    extra = got - want
    bits = []
    if missing:
        bits.append("missing " + ", ".join(
            _edge_str(e) for e in sorted(missing, key=repr)))
    if extra:
        bits.append("unexpected " + ", ".join(
            _edge_str(e) for e in sorted(extra, key=repr)))
    return "; ".join(bits)


def duality_diagnostics(primal_traces: list[list[CommEvent]],
                        grad_traces: list[list[CommEvent]],
                        sink: DiagSink, nprocs: int) -> None:
    """Check that the gradient's communication is the primal's clone
    (forward sweep) plus its exact transpose (adjoint sweep)."""
    prim = _p2p_edges(primal_traces, ("primal",))
    fwd = _p2p_edges(grad_traces, ("forward",))
    if prim != fwd:
        sink.add(ERROR, "forward-clone-divergence",
                 f"augmented forward pass does not replay the primal's "
                 f"point-to-point edges at P={nprocs}: "
                 f"{_counter_diff(prim, fwd)}")

    adj = _p2p_edges(grad_traces, ("adjoint",))
    want = Counter()
    for (s, d, t, c), k in prim.items():
        want[(d, s, t, c)] = k
    if adj != want:
        sink.add(ERROR, "duality-p2p",
                 f"adjoint point-to-point graph is not the transpose of "
                 f"the primal's at P={nprocs}: {_counter_diff(want, adj)}")

    prim_c = _coll_seq(primal_traces, ("primal",))
    fwd_c = _coll_seq(grad_traces, ("forward",))
    for r, (a, b) in enumerate(zip(prim_c, fwd_c)):
        if a != b:
            sink.add(ERROR, "forward-clone-divergence",
                     f"augmented forward pass of rank{r} does not replay "
                     f"the primal collective sequence at P={nprocs}: "
                     f"primal {a} vs forward {b}")
            break
    adj_c = _coll_seq(grad_traces, ("adjoint",))
    for r, (a, b) in enumerate(zip(prim_c, adj_c)):
        expect = [_dual_collective(k) for k in reversed(a)]
        if expect != b:
            sink.add(ERROR, "duality-collective",
                     f"adjoint collective sequence of rank{r} is not the "
                     f"reversed dual of the primal's at P={nprocs}: "
                     f"expected {expect}, got {b}")
            break


def render_summary(summary: list[dict]) -> str:
    """Human-readable symbolic endpoint table."""
    if not summary:
        return "(no communication)"
    cols = ("kind", "peer", "tag", "count", "guard", "op")
    widths = {c: max(len(c), *(len(str(row.get(c, ""))) for row in summary))
              for c in cols}
    lines = ["  ".join(c.ljust(widths[c]) for c in cols)]
    for row in summary:
        lines.append("  ".join(
            str(row.get(c, "")).ljust(widths[c]) for c in cols))
    return "\n".join(lines)


__all__ = [
    "COLLECTIVES", "P2P_RX", "P2P_TX",
    "CommEvent", "DiagSink",
    "check_collectives", "check_p2p", "check_request_lifetime",
    "duality_diagnostics", "render_summary", "simulate_rendezvous",
]
