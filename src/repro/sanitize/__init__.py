"""Shadow-memory race sanitizer (static lint + dynamic checker).

The paper's central correctness claim (§IV) is that adjoint shadow
increments to non-thread-local memory must be atomic, and its headline
performance claim (§VI-A1) is that the thread-locality analysis may
legally *downgrade* atomics to serial or reduction increments.  A wrong
downgrade is a silent data race that corrupts gradients — silent in
this repository's simulated (serialized) execution, and racy on real
hardware.  This package is the safety net:

* :mod:`repro.sanitize.lint` — a static pass over differentiated IR
  that re-derives thread-locality with the aliasing + TLS analyses and
  reports every non-atomic shadow increment inside a fork/MPI region
  whose disjointness proof fails, as structured diagnostics;
* :mod:`repro.sanitize.racecheck` — a vector-clock happens-before
  detector threaded through the interpreter (``ExecConfig.sanitize``)
  and the SimMPI engine, raising :class:`RaceReport` on any unordered
  conflicting pair of accesses;
* :mod:`repro.sanitize.commcheck` (+ :mod:`repro.sanitize.commgraph`)
  — the message-passing counterpart: a static abstract-interpretation
  pass that extracts each rank's symbolic communication endpoints,
  checks the instantiated cross-rank graph (matching, collectives,
  request lifetimes, rendezvous deadlocks), and verifies the
  AD-generated adjoint graph is the edge-reversed transpose of the
  primal's (Fig. 5).

The layers cross-validate: lint-clean programs must run race-free
under the dynamic checker, and commcheck-clean programs must complete
under ``SimMPI(rendezvous_sends=True)`` (see ``tests/properties`` and
``tests/sanitize``).
"""

from .commcheck import (
    CommCheckError,
    CommCheckPass,
    CommReport,
    commcheck_function,
    commcheck_module,
    verify_duality,
)
from .commgraph import CommEvent, DiagSink
from .lint import (
    Diagnostic,
    LintError,
    LintResult,
    ShadowRaceLint,
    lint_function,
    lint_module,
)
from .racecheck import RaceChecker, RaceReport

__all__ = [
    "CommCheckError",
    "CommCheckPass",
    "CommEvent",
    "CommReport",
    "DiagSink",
    "Diagnostic",
    "LintError",
    "LintResult",
    "RaceChecker",
    "RaceReport",
    "ShadowRaceLint",
    "commcheck_function",
    "commcheck_module",
    "lint_function",
    "lint_module",
    "verify_duality",
]
