"""Static shadow-race lint over (differentiated) IR.

Walks a function's parallel structure and re-derives thread-locality
with the same analyses the AD transform trusts
(:func:`repro.ad.tls.classify_index` + the allocation-site alias
analysis), then reports every non-atomic write inside a fork / MPI
region whose disjointness proof fails.  This is the static half of the
sanitizer: the dynamic half (:mod:`repro.sanitize.racecheck`) checks
one concrete execution; the lint checks all of them, conservatively.

Severity model (soundness direction: *clean* ⇒ no dynamic race; warns
may be spurious):

* ``error`` — provable race: an unguarded plain write to a
  loop-uniform location inside a parallel region, a registered
  reduction applied to a non-uniform location, two differently-guarded
  writes to the same constant cell in the same fork phase, or a write
  into a buffer with an in-flight nonblocking receive;
* ``warn`` — unprovable: the disjointness proof failed (unknown index
  form, guarded writes that may overlap another same-phase access,
  shared memset, writes from spawned tasks, reads of in-flight
  receive buffers).

Fork regions are partitioned into phases at their top-level barriers
(and worksharing loops' implied barriers); the phase graph is built as
a :class:`repro.parallel.dag.TaskDAG` and accesses in different phases
are never reported as a concurrent pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..ad.tls import _alloc_inside, classify_index, parallel_context
from ..ir.function import Function, Module
from ..ir.ops import Block, Op
from ..ir.printer import print_op
from ..ir.values import Constant, Value
from ..parallel.dag import TaskDAG
from ..passes.aliasing import AliasInfo, analyze_aliasing
from ..passes.pass_manager import FunctionPass

WARN = "warn"
ERROR = "error"


@dataclass
class Diagnostic:
    """One lint finding, anchored to the offending op(s)."""

    severity: str
    code: str
    message: str
    fn: str
    op: Optional[Op] = None
    related_op: Optional[Op] = None

    def render(self) -> str:
        lines = [f"{self.severity}[{self.code}] in @{self.fn}: "
                 f"{self.message}"]
        if self.op is not None:
            lines.append(f"  at: {print_op(self.op)}")
        if self.related_op is not None:
            lines.append(f"  with: {print_op(self.related_op)}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "severity": self.severity,
            "code": self.code,
            "fn": self.fn,
            "message": self.message,
            "op": print_op(self.op) if self.op is not None else None,
            "related_op": (print_op(self.related_op)
                           if self.related_op is not None else None),
        }


@dataclass
class LintResult:
    """All findings for one function."""

    fn: str
    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == WARN]

    @property
    def clean(self) -> bool:
        return not self.diagnostics

    def render(self) -> str:
        if self.clean:
            return f"@{self.fn}: clean"
        return "\n".join(d.render() for d in self.diagnostics)

    def to_json(self) -> dict:
        return {
            "tool": "lint",
            "fn": self.fn,
            "counts": {"error": len(self.errors),
                       "warn": len(self.warnings)},
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }


class LintError(Exception):
    """Raised when a lint run with ``on_error='raise'`` finds errors."""

    def __init__(self, result: LintResult) -> None:
        self.result = result
        errs = result.errors
        head = (f"shadow-race lint found {len(errs)} error(s) "
                f"in @{result.fn}:")
        super().__init__("\n".join([head] + [d.render() for d in errs]))


# ---------------------------------------------------------------------------
# Access model
# ---------------------------------------------------------------------------

class _Access:
    __slots__ = ("op", "kind", "ptr", "idx", "region", "phase", "guards",
                 "atomic", "cls", "local", "flagged")

    def __init__(self, op: Op, kind: str, ptr: Value, idx: Optional[Value],
                 region: Optional[Op], phase: int, guards: list,
                 atomic: bool) -> None:
        self.op = op
        self.kind = kind            # "load" | "store" | "atomic" | "memset" | "memcpy"
        self.ptr = ptr
        self.idx = idx
        self.region = region
        self.phase = phase
        self.guards = guards        # [(ivar, key)] pinned by enclosing ifs
        self.atomic = atomic
        self.cls: Optional[str] = None
        self.local = False          # thread-local allocation
        self.flagged = False        # already reported by the self-race rule

    @property
    def writes(self) -> bool:
        return self.kind != "load"


def _guard_key(v: Value):
    if isinstance(v, Constant):
        return ("const", v.value)
    return ("val", id(v))


def _guards_of(op: Op, par_ivars: list[Value]) -> list:
    """Pinning guards: enclosing ``if`` then-branches whose condition is
    ``cmp.eq(ivar, uniform)`` for a parallel ivar — the access then runs
    on (at most) one region instance."""
    ivar_set = set(par_ivars)
    guards = []
    blk = op.parent
    node = op
    while blk is not None:
        owner = blk.parent_op
        if owner is None:
            break
        if owner.opcode == "if" and blk is owner.regions[0]:
            cond = owner.operands[0]
            cop = getattr(cond, "op", None)
            if cop is not None and cop.opcode == "cmp" \
                    and cop.attrs.get("pred") == "eq":
                a, b = cop.operands
                for ivar, other in ((a, b), (b, a)):
                    if ivar in ivar_set and \
                            classify_index(other, par_ivars) == "uniform":
                        guards.append((ivar, _guard_key(other)))
                        break
        node = owner
        blk = owner.parent
    return guards


def _phase_of(region: Op, op: Op) -> int:
    """Barrier phase of ``op`` within a fork region: count the
    top-level barriers (and worksharing loops' implied barriers) that
    precede its top-level ancestor.  Nested barriers inside conditional
    regions are conservatively ignored (fewer phases ⇒ more pairs)."""
    node = op
    blk = op.parent
    while blk is not None and blk.parent_op is not region:
        node = blk.parent_op
        blk = node.parent
    phase = 0
    for top in region.regions[0].ops:
        if top is node:
            return phase
        if top.opcode == "barrier":
            phase += 1
        elif top.opcode == "for" and top.attrs.get("workshare") \
                and not top.attrs.get("nowait"):
            phase += 1
    return phase


def _phase_dag(nphases: int) -> TaskDAG:
    """The fork region's phase graph: a barrier-ordered chain."""
    dag = TaskDAG()
    for p in range(nphases):
        dag.add_task(p, cost=1.0)
        if p:
            dag.add_dep(p - 1, p)
    return dag


def _independent_regions(op: Op) -> int:
    """Number of independent parallel regions enclosing ``op`` — a
    worksharing loop binds to its fork, so only parallel_for / fork
    count.  More than one means an index disjoint in a single ivar is
    still duplicated across the other region's instances."""
    n = 0
    blk = op.parent
    while blk is not None:
        owner = blk.parent_op
        if owner is None:
            break
        if owner.opcode in ("parallel_for", "fork"):
            n += 1
        blk = owner.parent
    return n


def _const_index(idx: Optional[Value]):
    if isinstance(idx, Constant):
        return idx.value
    return None


# ---------------------------------------------------------------------------
# The lint proper
# ---------------------------------------------------------------------------

_ACCESS_OPS = ("load", "store", "atomic", "memset", "memcpy")


def lint_function(fn: Function, module: Module,
                  aliasing: Optional[AliasInfo] = None) -> LintResult:
    res = LintResult(fn.name)
    aliasing = aliasing or analyze_aliasing(fn, module)

    accesses: list[_Access] = []
    for op in fn.walk():
        oc = op.opcode
        if oc not in _ACCESS_OPS:
            continue
        region, ivars = parallel_context(op)
        phase = (_phase_of(region, op)
                 if region is not None and region.opcode == "fork" else 0)
        guards = _guards_of(op, ivars) if region is not None else []
        if oc == "load":
            accesses.append(_Access(op, "load", op.operands[0],
                                    op.operands[1], region, phase, guards,
                                    atomic=False))
        elif oc == "store":
            accesses.append(_Access(op, "store", op.operands[1],
                                    op.operands[2], region, phase, guards,
                                    atomic=False))
        elif oc == "atomic":
            accesses.append(_Access(op, "atomic", op.operands[1],
                                    op.operands[2], region, phase, guards,
                                    atomic=True))
        elif oc == "memset":
            accesses.append(_Access(op, "memset", op.operands[0], None,
                                    region, phase, guards, atomic=False))
        elif oc == "memcpy":
            accesses.append(_Access(op, "memcpy", op.operands[0], None,
                                    region, phase, guards, atomic=False))
            accesses.append(_Access(op, "load", op.operands[1], None,
                                    region, phase, guards, atomic=False))

    for a in accesses:
        _classify_access(a, aliasing, res)

    _check_pairs(accesses, aliasing, res)
    _scan_inflight(fn.body, {}, aliasing, res, fn.name)
    return res


def _classify_access(a: _Access, aliasing: AliasInfo,
                     res: LintResult) -> None:
    """Self-race rule: a non-atomic write races with its own other
    region instances unless its target is thread-local, its index is
    instance-disjoint, or a guard pins it to one instance."""
    if a.region is None:
        return
    fn = res.fn
    region, ivars = parallel_context(a.op)
    a.cls = classify_index(a.idx, ivars) if a.idx is not None else "unknown"

    # Thread-local allocation: private by construction.
    alloc = aliasing.points_to_single_alloc(a.ptr)
    if alloc is not None and _alloc_inside(alloc, a.region):
        a.local = True
        return
    if not a.writes:
        return

    if a.region.opcode == "spawn":
        a.flagged = True
        res.diagnostics.append(Diagnostic(
            WARN, "spawn-shared", "write to non-task-local memory "
            "from a spawned task (unordered with the parent until "
            "task.wait)", fn, a.op))
        return

    if a.kind in ("memset", "memcpy"):
        a.flagged = True
        res.diagnostics.append(Diagnostic(
            WARN, f"{a.kind}-shared",
            f"{a.kind} of shared memory inside a parallel region "
            f"(block writes are not privatized)", fn, a.op))
        return

    if a.atomic:
        # Atomics never race with atomics; but a *reduction*-lowered
        # increment is only legal on a loop-uniform location.
        if a.op.attrs.get("via") == "reduction" and a.cls != "uniform":
            a.flagged = True
            res.diagnostics.append(Diagnostic(
                ERROR, "reduction-nonuniform",
                f"reduction-lowered increment on a location that is "
                f"{a.cls} across parallel iterations — reductions "
                f"privatize one location per thread, this miscompiles",
                fn, a.op))
        return

    if a.cls == "disjoint":
        if _independent_regions(a.op) > 1:
            a.flagged = True
            res.diagnostics.append(Diagnostic(
                WARN, "nested-disjoint",
                "index is disjoint in one parallel ivar but the access "
                "sits under multiple independent parallel regions — "
                "instances of the other region hit the same locations",
                fn, a.op))
        return
    if a.guards:
        return                  # single instance: no self race
    a.flagged = True
    if a.cls == "uniform":
        res.diagnostics.append(Diagnostic(
            ERROR, "shared-store",
            "non-atomic write to a loop-uniform location inside a "
            "parallel region: every region instance writes the same "
            "cell (use an atomic or a registered reduction)",
            fn, a.op))
    else:
        res.diagnostics.append(Diagnostic(
            WARN, "unproven-store",
            "non-atomic write whose disjointness proof failed (index "
            "not affine in the parallel ivars)", fn, a.op))


def _check_pairs(accesses: list, aliasing: AliasInfo,
                 res: LintResult) -> None:
    """Cross-site rule: two distinct access sites in the same region
    and barrier phase conflict unless provably ordered or provably
    touching different cells.  Walk each region's phase DAG; different
    phases are barrier-ordered and never paired."""
    by_region: dict[int, list] = {}
    for a in accesses:
        if a.region is not None and a.region.opcode != "spawn" \
                and not a.local:
            by_region.setdefault(id(a.region), []).append(a)

    for group in by_region.values():
        nphases = max(a.phase for a in group) + 1
        dag = _phase_dag(nphases)
        in_phase: dict[int, list] = {p: [] for p in dag.topo_order()}
        for a in group:
            in_phase[a.phase].append(a)
        for phase_accesses in in_phase.values():
            for i, a in enumerate(phase_accesses):
                for b in phase_accesses[i + 1:]:
                    _check_pair(a, b, aliasing, res)


def _check_pair(a: _Access, b: _Access, aliasing: AliasInfo,
                res: LintResult) -> None:
    if not (a.writes or b.writes):
        return                  # reads never conflict
    if a.atomic and b.atomic:
        return                  # atomics are mutually ordered
    if a.flagged or b.flagged:
        return                  # already reported by the self-race rule
    if a.guards and a.guards == b.guards:
        return                  # same single instance: sequential
    if not aliasing.may_alias(a.ptr, b.ptr):
        return
    ia, ib = _const_index(a.idx), _const_index(b.idx)
    if ia is not None and ib is not None and ia != ib:
        return                  # provably different cells
    if a.idx is not None and a.idx is b.idx and "disjoint" in (
            a.cls, b.cls):
        return                  # same instance-disjoint cell per instance
    if a.writes and b.writes and ia is not None and ia == ib \
            and a.guards != b.guards and (a.guards or b.guards):
        res.diagnostics.append(Diagnostic(
            ERROR, "guarded-conflict",
            f"two differently-guarded writes hit the same cell [{ia}] "
            f"in the same barrier phase", res.fn, a.op, b.op))
        return
    res.diagnostics.append(Diagnostic(
        WARN, "concurrent-overlap",
        "two concurrent same-phase accesses (at least one a non-atomic "
        "write) may touch the same cell and cannot be proven ordered "
        "or disjoint", res.fn, a.op, b.op))


def _scan_inflight(block: Block, active: dict, aliasing: AliasInfo,
                   res: LintResult, fn: str) -> None:
    """Nonblocking-receive windows: between ``mpi.irecv`` and the
    matching ``mpi.wait`` the engine may deliver into the buffer at any
    time, so any access to it races with the delivery."""
    for op in block.ops:
        oc = op.opcode
        if oc == "call":
            callee = op.attrs["callee"]
            if callee == "mpi.irecv" and op.result is not None:
                active[op.result] = op
                continue
            if callee == "mpi.wait" and op.operands:
                active.pop(op.operands[0], None)
                continue
            if callee in ("mpi.send", "mpi.isend") and active:
                _check_inflight(op, op.operands[0], False, active,
                                aliasing, res, fn)
            continue
        if active:
            if oc == "store":
                _check_inflight(op, op.operands[1], True, active,
                                aliasing, res, fn)
            elif oc == "atomic":
                _check_inflight(op, op.operands[1], True, active,
                                aliasing, res, fn)
            elif oc == "load":
                _check_inflight(op, op.operands[0], False, active,
                                aliasing, res, fn)
            elif oc in ("memset", "memcpy"):
                _check_inflight(op, op.operands[0], True, active,
                                aliasing, res, fn)
        for region in op.regions:
            _scan_inflight(region, active, aliasing, res, fn)


def _check_inflight(op: Op, ptr: Value, is_write: bool, active: dict,
                    aliasing: AliasInfo, res: LintResult, fn: str) -> None:
    for irecv_op in active.values():
        if aliasing.may_alias(ptr, irecv_op.operands[0]):
            res.diagnostics.append(Diagnostic(
                ERROR if is_write else WARN, "inflight-recv",
                ("write to" if is_write else "read of") +
                " a buffer with an in-flight nonblocking receive "
                "(unordered with the message delivery until mpi.wait)",
                fn, op, irecv_op))
            return


def lint_module(module: Module,
                fn_names: Optional[list] = None) -> dict[str, LintResult]:
    names = fn_names if fn_names is not None else list(module.functions)
    return {name: lint_function(module.functions[name], module)
            for name in names}


# ---------------------------------------------------------------------------
# Pass-manager integration
# ---------------------------------------------------------------------------

class ShadowRaceLint(FunctionPass):
    """Analysis pass wrapper: lints each function, collects results in
    :attr:`results`, never mutates IR.  ``on_error='raise'`` turns
    error-severity findings into a :class:`LintError` — the mode the
    AD transform uses under ``ADConfig.sanitize``."""

    name = "sanitize-lint"

    def __init__(self, on_error: str = "ignore") -> None:
        if on_error not in ("ignore", "raise"):
            raise ValueError(f"on_error must be ignore|raise, "
                             f"got {on_error!r}")
        self.on_error = on_error
        self.results: dict[str, LintResult] = {}

    def run(self, fn: Function, module: Module) -> bool:
        res = lint_function(fn, module)
        self.results[fn.name] = res
        if self.on_error == "raise" and res.errors:
            raise LintError(res)
        return False
