"""Static MPI communication analyzer with adjoint-duality verification.

The paper's MPI claim (§IV-B, §V-C, Fig. 5) is structural: the adjoint
of every communication is its *dual* — ``Isend`` reverses into an
``Irecv`` of the shadow buffer and vice versa, ``bcast`` into a
``reduce`` onto the root, ``allreduce(sum)`` into itself.  This module
machine-checks that claim instead of trusting one SimMPI schedule.

It abstractly interprets an IR function once per rank of a concrete
communicator size, tracking every integer value as a symbolic
expression over ``mpi.comm_rank`` / ``mpi.comm_size`` / the function's
scalar arguments (:class:`Sym`).  Branch conditions that fold pick one
side; loops whose trip counts fold (and that contain communication)
unroll; everything else is analyzed once under a "maybe" flag.  Each
``mpi.*`` / ``mpid.*`` call becomes a :class:`~.commgraph.CommEvent`
with resolved (peer, tag, count, kind), and the per-rank traces feed
the graph checks in :mod:`repro.sanitize.commgraph`:

* unmatched / count-mismatched point-to-point pairs,
* collective kind/order/count divergence across ranks,
* request-lifetime errors (missing or double ``Wait``) and accesses to
  buffers with a nonblocking operation in flight,
* blocking-send cycles that deadlock under rendezvous semantics,
* and, for gradients, that the adjoint communication graph is the
  edge-reversed transpose of the primal graph (Fig. 5).

Soundness direction mirrors :mod:`repro.sanitize.lint`: a *clean*
report proves there is no structural communication bug among the
statically resolved events; ``warn`` diagnostics mark events the
abstraction could not resolve (and therefore did not match), so warns
may be spurious but errors are real.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from ..ir.function import Function, Module
from ..ir.ops import Block, CallOp, Op
from ..ir.printer import print_op
from ..ir.types import F64, I64, PointerType, Request
from ..ir.values import Argument, Constant, Value
from ..passes.pass_manager import FunctionPass
from .commgraph import (
    COLLECTIVES,
    P2P_RX,
    P2P_TX,
    CommEvent,
    DiagSink,
    check_collectives,
    check_p2p,
    check_request_lifetime,
    duality_diagnostics,
    render_summary,
    simulate_rendezvous,
)
from .lint import ERROR, WARN, Diagnostic

#: Default communicator sizes to instantiate the graph for.
DEFAULT_SIZES = (2, 3)
#: Values auto-bound to unknown integer arguments (distinct, small).
_AUTO_BINDINGS = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29)


# ---------------------------------------------------------------------------
# Symbolic integer domain
# ---------------------------------------------------------------------------

class Sym:
    """A symbolic value over rank/size/argument leaves.

    Constructors fold constants eagerly, so under a concrete (rank,
    size, bindings) assignment every expression collapses to a
    ``const`` and the interpreter is effectively a partial evaluator;
    under symbolic leaves the tree survives for display in the
    per-function communication summary.
    """

    __slots__ = ("kind", "args")

    def __init__(self, kind: str, args: tuple = ()) -> None:
        self.kind = kind
        self.args = args

    @property
    def is_const(self) -> bool:
        return self.kind == "const"

    @property
    def value(self):
        return self.args[0]

    def __repr__(self) -> str:
        return f"<Sym {fmt_sym(self)}>"


UNKNOWN = Sym("unknown")


def _c(v) -> Sym:
    return Sym("const", (v,))


def sym_var(name: str) -> Sym:
    return Sym("var", (name,))


_CMP_PY = {
    "eq": lambda a, b: a == b, "ne": lambda a, b: a != b,
    "lt": lambda a, b: a < b, "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b, "ge": lambda a, b: a >= b,
}

_FOLD2 = {
    "iadd": lambda a, b: a + b, "isub": lambda a, b: a - b,
    "imul": lambda a, b: a * b, "idiv": lambda a, b: a // b,
    "imod": lambda a, b: a % b, "imin": min, "imax": max,
    "add": lambda a, b: a + b, "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b, "div": lambda a, b: a / b,
    "min": min, "max": max, "pow": lambda a, b: a ** b,
    "and": lambda a, b: bool(a) and bool(b),
    "or": lambda a, b: bool(a) or bool(b),
    "xor": lambda a, b: bool(a) != bool(b),
    "copysign": lambda a, b: abs(a) if b >= 0 else -abs(a),
}

_FOLD1 = {
    "ineg": lambda a: -a, "neg": lambda a: -a, "abs": abs,
    "not": lambda a: not a, "itof": float, "ftoi": int,
    "floor": lambda a: float(int(a // 1)),
}

#: Binary kinds worth keeping as trees for the symbolic summary.
_TREE2 = frozenset({"iadd", "isub", "imul", "idiv", "imod", "imin",
                    "imax", "and", "or"})
_TREE1 = frozenset({"ineg", "not", "itof", "ftoi"})


def sym_binop(opcode: str, a: Sym, b: Sym) -> Sym:
    if a.is_const and b.is_const:
        fn = _FOLD2.get(opcode)
        if fn is None:
            return UNKNOWN
        try:
            return _c(fn(a.value, b.value))
        except (ZeroDivisionError, TypeError, ValueError):
            return UNKNOWN
    if opcode not in _TREE2 or a.kind == "unknown" or b.kind == "unknown":
        return UNKNOWN
    # Trivial identities keep the summary readable.
    if opcode == "iadd" and b.is_const and b.value == 0:
        return a
    if opcode in ("imul",) and b.is_const and b.value == 1:
        return a
    return Sym(opcode, (a, b))


def sym_unop(opcode: str, a: Sym) -> Sym:
    if a.is_const:
        fn = _FOLD1.get(opcode)
        if fn is None:
            return UNKNOWN
        try:
            return _c(fn(a.value))
        except (TypeError, ValueError):
            return UNKNOWN
    if opcode not in _TREE1 or a.kind == "unknown":
        return UNKNOWN
    return Sym(opcode, (a,))


def sym_cmp(pred: str, a: Sym, b: Sym) -> Sym:
    if a.is_const and b.is_const:
        try:
            return _c(bool(_CMP_PY[pred](a.value, b.value)))
        except (KeyError, TypeError):
            return UNKNOWN
    if a.kind == "unknown" or b.kind == "unknown":
        return UNKNOWN
    return Sym("cmp:" + pred, (a, b))


_OPSTR = {"iadd": "+", "isub": "-", "imul": "*", "idiv": "//",
          "imod": "%", "and": "&&", "or": "||"}


def fmt_sym(s: Sym) -> str:
    if not isinstance(s, Sym):
        return "?"
    k = s.kind
    if k == "const":
        return str(s.value)
    if k in ("rank", "size"):
        return k
    if k == "var":
        return str(s.args[0])
    if k == "unknown":
        return "?"
    if k.startswith("cmp:"):
        a, b = s.args
        return f"({fmt_sym(a)} {k[4:]} {fmt_sym(b)})"
    if k in ("imin", "imax"):
        a, b = s.args
        return f"{k[1:]}({fmt_sym(a)}, {fmt_sym(b)})"
    if k in ("ineg",):
        return f"-({fmt_sym(s.args[0])})"
    if k in ("not",):
        return f"!({fmt_sym(s.args[0])})"
    if k in ("itof", "ftoi"):
        return fmt_sym(s.args[0])
    if len(s.args) == 2:
        a, b = s.args
        return f"({fmt_sym(a)} {_OPSTR.get(k, k)} {fmt_sym(b)})"
    return "?"


# ---------------------------------------------------------------------------
# Abstract memory and runtime records
# ---------------------------------------------------------------------------

class AbsBuffer:
    """One abstract allocation; cells are keyed by concrete index."""

    __slots__ = ("label", "cells")

    def __init__(self, label: str) -> None:
        self.label = label
        self.cells: dict[int, object] = {}

    def __repr__(self) -> str:
        return f"<buf {self.label}>"


class AbsPtr:
    __slots__ = ("buf", "off")

    def __init__(self, buf: AbsBuffer, off: Optional[int]) -> None:
        self.buf = buf
        self.off = off          # None once the offset is not constant


class AbsRecord:
    """Abstract ``mpid.record_*`` shadow record (Fig. 5's ``d_req``)."""

    __slots__ = ("kind", "d_buf", "d_buf2", "count", "peer", "tag",
                 "red_op", "root", "op")

    def __init__(self, kind: str, d_buf, count: Sym, *, peer: Sym = None,
                 tag: Sym = None, d_buf2=None, red_op: str = None,
                 root: Sym = None, op: Op = None) -> None:
        self.kind = kind            # "isend" | "irecv" | "allreduce" | "reduce"
        self.d_buf = d_buf
        self.d_buf2 = d_buf2
        self.count = count
        self.peer = peer
        self.tag = tag
        self.red_op = red_op
        self.root = root
        self.op = op


class AbsRequest:
    """Abstract in-flight nonblocking operation (engine or adjoint)."""

    __slots__ = ("rid", "kind", "buf", "acc", "event")

    def __init__(self, rid: int, kind: str, buf: Optional[AbsPtr],
                 event: CommEvent, acc: Optional[AbsPtr] = None) -> None:
        self.rid = rid
        self.kind = kind            # "isend"|"irecv"|"rev_isend"|"rev_irecv"
        self.buf = buf
        self.acc = acc              # accumulation target of finish_send
        self.event = event


class AbsCache:
    __slots__ = ("items",)

    def __init__(self) -> None:
        self.items: list = []


class _Budget(Exception):
    pass


# ---------------------------------------------------------------------------
# Comm-relevance prepass
# ---------------------------------------------------------------------------

def _call_is_comm(op: Op, module: Module, memo: dict) -> bool:
    callee = op.attrs.get("callee", "")
    if callee.startswith(("mpi.", "mpid.")):
        return True
    target = module.functions.get(callee)
    if target is not None:
        return function_has_comm(target, module, memo)
    return False


def function_has_comm(fn: Function, module: Module,
                      memo: Optional[dict] = None) -> bool:
    """True when ``fn`` (transitively) performs MPI communication."""
    memo = memo if memo is not None else {}
    if fn.name in memo:
        return bool(memo[fn.name])
    memo[fn.name] = False        # break recursion cycles
    found = False
    for op in fn.body.walk():
        if op.opcode == "call" and _call_is_comm(op, module, memo):
            found = True
            break
        if (op.result is not None and op.result.type is Request) or \
                any(v.type is Request for v in op.operands):
            found = True
            break
    memo[fn.name] = found
    return found


def _comm_region_ops(fn: Function, module: Module, memo: dict) -> set:
    """Uids of region-bearing ops whose subtree communicates (these are
    the loops worth unrolling precisely)."""
    out: set[int] = set()

    def visit(block: Block) -> bool:
        has = False
        for op in block.ops:
            sub = False
            for region in op.regions:
                sub |= visit(region)
            if op.opcode == "call" and _call_is_comm(op, module, memo):
                sub = True
            if (op.result is not None and op.result.type is Request) or \
                    any(v.type is Request for v in op.operands):
                sub = True
            if sub and op.regions:
                out.add(op.uid)
            has |= sub
        return has

    visit(fn.body)
    return out


# ---------------------------------------------------------------------------
# The per-rank abstract interpreter
# ---------------------------------------------------------------------------

class _Extractor:
    """Abstractly execute ``fn`` for one rank (or symbolically)."""

    def __init__(self, module: Module, fn: Function, *, sink: DiagSink,
                 rank: Optional[int], nprocs: Optional[int],
                 bindings: dict, symbolic: bool = False,
                 split_adjoint: bool = False, max_unroll: int = 128,
                 budget: int = 2_000_000) -> None:
        self.module = module
        self.fn = fn
        self.sink = sink
        self.symbolic = symbolic
        self.rank = rank if rank is not None else -1
        self.nprocs = nprocs
        self.split = split_adjoint
        self.max_unroll = max_unroll
        self.budget = budget
        self.env: dict[Value, object] = {}
        self.trace: list[CommEvent] = []
        self.windows: list[AbsRequest] = []
        self.maybe = 0
        self.depth = 0
        self._rids = itertools.count(1)
        self._allocs = itertools.count(1)
        self._memo: dict = {}
        self._comm_ops = _comm_region_ops(fn, module, self._memo)
        if symbolic:
            self._rank_sym: Sym = Sym("rank")
            self._size_sym: Sym = Sym("size")
        else:
            self._rank_sym = _c(rank)
            self._size_sym = _c(nprocs)
        self.bindings = bindings

    # -- plumbing ----------------------------------------------------------

    def run(self) -> list[CommEvent]:
        for a in self.fn.args:
            self.env[a] = self._bind_arg(a)
        try:
            self._exec_block(self.fn.body)
        except _Budget:
            self.sink.add(WARN, "analysis-budget",
                          f"abstract interpretation exceeded its step "
                          f"budget in @{self.fn.name}; communication "
                          f"after the cutoff is unchecked")
        return self.trace

    def _bind_arg(self, a: Argument):
        if isinstance(a.type, PointerType):
            return AbsPtr(AbsBuffer(f"%{a.name}"), 0)
        if a.type is I64:
            if a.name in self.bindings and not self.symbolic:
                return _c(self.bindings[a.name])
            return sym_var(a.name)
        if a.type is F64:
            return sym_var(a.name)
        return UNKNOWN

    def _diag(self, severity: str, code: str, msg: str, op: Op,
              related: Op = None) -> None:
        self.sink.add(severity, code, msg, op, related)

    def _val(self, v: Value):
        if isinstance(v, Constant):
            return _c(v.value)
        return self.env.get(v, UNKNOWN)

    def _sym(self, v: Value) -> Sym:
        got = self._val(v)
        return got if isinstance(got, Sym) else UNKNOWN

    def _ptr(self, v: Value) -> Optional[AbsPtr]:
        got = self._val(v)
        return got if isinstance(got, AbsPtr) else None

    def _int(self, s: Sym) -> Optional[int]:
        if isinstance(s, Sym) and s.is_const and \
                isinstance(s.value, (int, bool)):
            return int(s.value)
        return None

    # -- memory ------------------------------------------------------------

    def _touch(self, op: Op, ptr: Optional[AbsPtr], is_write: bool,
               exclude: Optional[AbsRequest] = None) -> None:
        """Check an access against open nonblocking windows."""
        if ptr is None or self.maybe:
            return
        for req in self.windows:
            if req is exclude or req.buf is None:
                continue
            if req.buf.buf is not ptr.buf:
                continue
            what = req.event.describe()
            if is_write:
                self._diag(ERROR, "inflight-write",
                           f"buffer {ptr.buf.label} written while "
                           f"nonblocking {what} is in flight", op,
                           req.event.op)
            elif req.kind in ("irecv", "rev_irecv"):
                self._diag(WARN, "inflight-read",
                           f"buffer {ptr.buf.label} read while "
                           f"nonblocking {what} is in flight", op,
                           req.event.op)

    def _store(self, op: Op, ptr: Optional[AbsPtr], idx: Sym,
               value) -> None:
        self._touch(op, ptr, True)
        if ptr is None:
            return
        i = self._int(idx)
        if ptr.off is not None and i is not None:
            ptr.buf.cells[ptr.off + i] = UNKNOWN if self.maybe else value
        else:
            ptr.buf.cells.clear()

    def _load(self, op: Op, ptr: Optional[AbsPtr], idx: Sym):
        self._touch(op, ptr, False)
        if ptr is None:
            return UNKNOWN
        i = self._int(idx)
        if ptr.off is not None and i is not None:
            return ptr.buf.cells.get(ptr.off + i, UNKNOWN)
        return UNKNOWN

    def _clobber(self, ptr: Optional[AbsPtr]) -> None:
        if ptr is not None:
            ptr.buf.cells.clear()

    # -- execution ---------------------------------------------------------

    def _exec_block(self, block: Block) -> None:
        for op in block.ops:
            self.budget -= 1
            if self.budget <= 0:
                raise _Budget()
            self._exec_op(op)

    def _exec_op(self, op: Op) -> None:
        oc = op.opcode
        if oc == "call":
            self._call(op)
        elif oc == "load":
            self.env[op.result] = self._load(
                op, self._ptr(op.operands[0]), self._sym(op.operands[1]))
        elif oc == "store":
            self._store(op, self._ptr(op.operands[1]),
                        self._sym(op.operands[2]), self._val(op.operands[0]))
        elif oc == "alloc":
            label = op.result.name or f"alloc#{op.uid}"
            self.env[op.result] = AbsPtr(
                AbsBuffer(f"{label}.{next(self._allocs)}"), 0)
        elif oc == "ptradd":
            base = self._ptr(op.operands[0])
            if base is None:
                return
            i = self._int(self._sym(op.operands[1]))
            off = base.off + i if (base.off is not None and i is not None) \
                else None
            self.env[op.result] = AbsPtr(base.buf, off)
        elif oc == "atomic":
            ptr = self._ptr(op.operands[1])
            self._touch(op, ptr, True)
            if ptr is not None:
                i = self._int(self._sym(op.operands[2]))
                if ptr.off is not None and i is not None:
                    ptr.buf.cells[ptr.off + i] = UNKNOWN
                else:
                    ptr.buf.cells.clear()
        elif oc == "memset":
            ptr = self._ptr(op.operands[0])
            self._touch(op, ptr, True)
            self._clobber(ptr)
        elif oc == "memcpy":
            dst = self._ptr(op.operands[0])
            self._touch(op, self._ptr(op.operands[1]), False)
            self._touch(op, dst, True)
            self._clobber(dst)
        elif oc == "free":
            pass
        elif oc == "if":
            cond = self._sym(op.operands[0])
            if cond.is_const:
                self._exec_block(op.regions[0] if cond.value
                                 else op.regions[1])
            else:
                self.maybe += 1
                try:
                    self._exec_block(op.regions[0])
                    self._exec_block(op.regions[1])
                finally:
                    self.maybe -= 1
        elif oc == "for":
            self._for(op)
        elif oc == "while":
            if op.uid in self._comm_ops:
                self._diag(WARN, "comm-in-loop",
                           "communication inside a while loop is "
                           "analyzed for a single iteration", op)
            self.env[op.ivar] = sym_var(op.ivar.name or "it")
            self._exec_maybe(op.regions[0])
        elif oc in ("parallel_for", "fork", "spawn"):
            if op.uid in self._comm_ops:
                self._diag(WARN, "comm-in-parallel",
                           f"communication inside a {oc} region is "
                           f"analyzed for a single symbolic worker", op)
            for barg in op.regions[0].args:
                self.env[barg] = sym_var(barg.name or "tid")
            if op.result is not None:
                self.env[op.result] = UNKNOWN
            self._exec_maybe(op.regions[0])
        elif oc == "cache_create":
            self.env[op.result] = AbsCache()
        elif oc == "cache_push":
            h = self._val(op.operands[0])
            if isinstance(h, AbsCache):
                h.items.append(self._val(op.operands[1]))
        elif oc == "cache_pop":
            h = self._val(op.operands[0])
            got = UNKNOWN
            if isinstance(h, AbsCache) and h.items:
                got = h.items.pop()
            self.env[op.result] = got
        elif oc in ("return", "condition", "barrier"):
            pass
        elif op.result is not None:
            self._compute(op)

    def _exec_maybe(self, block: Block) -> None:
        self.maybe += 1
        try:
            self._exec_block(block)
        finally:
            self.maybe -= 1

    def _for(self, op: Op) -> None:
        lb = self._sym(op.operands[0])
        ub = self._sym(op.operands[1])
        step = self._sym(op.operands[2])
        ivar = op.regions[0].args[0]
        comm = op.uid in self._comm_ops
        if comm and lb.is_const and ub.is_const and step.is_const \
                and step.value:
            trips = range(int(lb.value), int(ub.value), int(step.value))
            if len(trips) <= self.max_unroll:
                for i in trips:
                    self.env[ivar] = _c(i)
                    self._exec_block(op.regions[0])
                return
            self._diag(WARN, "comm-in-loop",
                       f"loop with {len(trips)} iterations exceeds the "
                       f"unroll limit ({self.max_unroll}); communication "
                       f"inside is analyzed for a single symbolic "
                       f"iteration", op)
        elif comm:
            self._diag(WARN, "comm-in-loop",
                       "communication inside a loop whose trip count "
                       "does not fold is analyzed for a single symbolic "
                       "iteration", op)
        self.env[ivar] = sym_var(ivar.name or "i")
        self._exec_maybe(op.regions[0])

    def _compute(self, op: Op) -> None:
        oc = op.opcode
        if oc == "cmp":
            self.env[op.result] = sym_cmp(
                op.attrs["pred"], self._sym(op.operands[0]),
                self._sym(op.operands[1]))
        elif oc == "select":
            cond = self._sym(op.operands[0])
            if cond.is_const:
                self.env[op.result] = self._val(
                    op.operands[1] if cond.value else op.operands[2])
            else:
                a, b = self._val(op.operands[1]), self._val(op.operands[2])
                self.env[op.result] = a if a is b else UNKNOWN
        elif len(op.operands) == 2:
            self.env[op.result] = sym_binop(
                oc, self._sym(op.operands[0]), self._sym(op.operands[1]))
        elif len(op.operands) == 1:
            self.env[op.result] = sym_unop(oc, self._sym(op.operands[0]))
        else:
            self.env[op.result] = UNKNOWN

    # -- calls -------------------------------------------------------------

    def _call(self, op: Op) -> None:
        callee = op.attrs.get("callee", "")
        if callee.startswith("mpi."):
            self._mpi(op, callee)
        elif callee.startswith("mpid."):
            self._mpid(op, callee)
        elif callee.startswith("cache."):
            self._cache_call(op, callee)
        elif callee == "jl.arrayptr":
            self.env[op.result] = self._val(op.operands[0])
        elif callee in self.module.functions:
            self._user_call(op, self.module.functions[callee])
        else:
            # Other runtime intrinsics have no communication effect.
            if op.result is not None:
                self.env[op.result] = UNKNOWN

    def _cache_call(self, op: Op, callee: str) -> None:
        if callee == "cache.create":
            self.env[op.result] = AbsCache()
        elif callee == "cache.push":
            h = self._val(op.operands[0])
            if isinstance(h, AbsCache) and len(op.operands) > 1:
                h.items.append(self._val(op.operands[1]))
        elif callee == "cache.pop":
            h = self._val(op.operands[0])
            got = UNKNOWN
            if isinstance(h, AbsCache) and h.items:
                got = h.items.pop()
            self.env[op.result] = got

    def _user_call(self, op: Op, target: Function) -> None:
        if self.depth >= 8:
            self._diag(WARN, "call-depth",
                       f"call to @{target.name} exceeds the abstract "
                       f"inlining depth; its communication is unchecked",
                       op)
            if op.result is not None:
                self.env[op.result] = UNKNOWN
            return
        saved = {a: self.env.get(a) for a in target.args}
        for a, v in zip(target.args, op.operands):
            self.env[a] = self._val(v)
        self.depth += 1
        try:
            self._exec_block(target.body)
        finally:
            self.depth -= 1
            for a, old in saved.items():
                if old is None:
                    self.env.pop(a, None)
                else:
                    self.env[a] = old
        ret = UNKNOWN
        body = target.body.ops
        if body and body[-1].opcode == "return" and body[-1].operands:
            ret = self._val(body[-1].operands[0])
        if op.result is not None:
            self.env[op.result] = ret

    # -- events ------------------------------------------------------------

    def _provenance(self, op: Op) -> str:
        if not self.split:
            return "primal"
        return "adjoint" if op.attrs.get("ad") == "reverse" else "forward"

    def _emit(self, op: Op, kind: str, *, peer: Sym = None, tag: Sym = None,
              count: Sym = None, red_op: str = None, root: Sym = None,
              buf: Optional[AbsPtr] = None, blocking: bool = True,
              rid: Optional[int] = None,
              provenance: Optional[str] = None) -> CommEvent:
        ev = CommEvent(kind=kind, rank=self.rank, blocking=blocking,
                       red_op=red_op, req=rid, op=op,
                       maybe=self.maybe > 0,
                       buf=buf.buf.label if buf is not None else None,
                       provenance=provenance or self._provenance(op))
        if self.symbolic:
            ev.peer_s = fmt_sym(peer) if peer is not None else None
            ev.tag_s = fmt_sym(tag) if tag is not None else None
            ev.count_s = fmt_sym(count) if count is not None else None
            if root is not None:
                ev.root = self._int(root)
            self.trace.append(ev)
            return ev
        if peer is not None:
            p = self._int(peer)
            if p is None:
                if not ev.maybe:
                    self._diag(WARN, "unresolved-endpoint",
                               f"{kind} peer `{fmt_sym(peer)}` does not "
                               f"fold to a rank; the endpoint is not "
                               f"statically matched", op)
            elif not 0 <= p < self.nprocs:
                if not ev.maybe:
                    self._diag(ERROR, "peer-out-of-range",
                               f"{kind} peer {p} is outside communicator "
                               f"size {self.nprocs} (from rank "
                               f"{self.rank})", op)
            else:
                ev.peer = p
        if tag is not None:
            ev.tag = self._int(tag)
        if root is not None:
            ev.root = self._int(root)
        if count is not None:
            ev.count = self._int(count)
            if ev.count is None and not ev.maybe:
                self._diag(WARN, "unresolved-count",
                           f"{kind} count `{fmt_sym(count)}` does not "
                           f"fold; sizes are not statically checked", op)
        if ev.maybe and (kind in P2P_TX or kind in P2P_RX
                         or kind in COLLECTIVES):
            self._diag(WARN, "guarded-comm",
                       f"{kind} under a data-dependent guard or "
                       f"unresolved loop is excluded from static "
                       f"matching", op)
        self.trace.append(ev)
        return ev

    # -- MPI intrinsics ----------------------------------------------------

    def _mpi(self, op: Op, callee: str) -> None:
        if callee == "mpi.comm_rank":
            self.env[op.result] = self._rank_sym
            return
        if callee == "mpi.comm_size":
            self.env[op.result] = self._size_sym
            return
        if callee == "mpi.barrier":
            self._emit(op, "barrier")
            return
        if callee in ("mpi.send", "mpi.recv", "mpi.isend", "mpi.irecv"):
            buf = self._ptr(op.operands[0])
            count = self._sym(op.operands[1])
            peer = self._sym(op.operands[2])
            tag = self._sym(op.operands[3])
            kind = callee[4:]
            is_tx = kind in P2P_TX
            self._touch(op, buf, not is_tx)
            if not is_tx:
                self._clobber(buf)
            if kind in ("isend", "irecv"):
                rid = next(self._rids)
                ev = self._emit(op, kind, peer=peer, tag=tag, count=count,
                                buf=buf, blocking=False, rid=rid)
                req = AbsRequest(rid, kind, buf, ev)
                if not ev.maybe:
                    self.windows.append(req)
                self.env[op.result] = req
            else:
                self._emit(op, kind, peer=peer, tag=tag, count=count,
                           buf=buf)
            return
        if callee == "mpi.wait":
            got = self._val(op.operands[0])
            if isinstance(got, AbsRequest):
                self._emit(op, "wait", rid=got.rid)
                if got in self.windows:
                    self.windows.remove(got)
            else:
                self._diag(WARN, "unresolved-request",
                           "wait on a request the analysis could not "
                           "track; its lifetime is unchecked", op)
            return
        if callee == "mpi.allreduce":
            send, recv = self._ptr(op.operands[0]), self._ptr(op.operands[1])
            self._touch(op, send, False)
            self._touch(op, recv, True)
            self._clobber(recv)
            self._emit(op, "allreduce", count=self._sym(op.operands[2]),
                       red_op=op.attrs.get("op", "sum"))
            return
        if callee == "mpi.reduce":
            send, recv = self._ptr(op.operands[0]), self._ptr(op.operands[1])
            self._touch(op, send, False)
            self._touch(op, recv, True)
            self._clobber(recv)
            self._emit(op, "reduce", count=self._sym(op.operands[2]),
                       root=self._sym(op.operands[3]),
                       red_op=op.attrs.get("op", "sum"))
            return
        if callee == "mpi.bcast":
            buf = self._ptr(op.operands[0])
            self._touch(op, buf, True)
            self._clobber(buf)
            self._emit(op, "bcast", count=self._sym(op.operands[1]),
                       root=self._sym(op.operands[2]))
            return
        if op.result is not None:
            self.env[op.result] = UNKNOWN

    # -- mpid.* adjoint helpers --------------------------------------------

    def _mpid(self, op: Op, callee: str) -> None:
        if callee in ("mpid.record_send", "mpid.record_recv"):
            kind = "isend" if callee.endswith("send") else "irecv"
            self.env[op.result] = AbsRecord(
                kind, self._ptr(op.operands[0]),
                self._sym(op.operands[1]), peer=self._sym(op.operands[2]),
                tag=self._sym(op.operands[3]), op=op)
            return
        if callee == "mpid.reverse_wait":
            rec = self._val(op.operands[0])
            if not isinstance(rec, AbsRecord) or rec.kind not in \
                    ("isend", "irecv"):
                self._diag(WARN, "unresolved-request",
                           "reverse_wait on a shadow record the analysis "
                           "could not track; the adjoint endpoint is "
                           "unchecked", op)
                self.env[op.result] = UNKNOWN
                return
            rid = next(self._rids)
            if rec.kind == "isend":
                # Fig. 5: the adjoint of Isend is an Irecv into a
                # temporary accumulation buffer.
                tmp = AbsPtr(AbsBuffer(f"d_acc#{next(self._allocs)}"), 0)
                ev = self._emit(op, "irecv", peer=rec.peer, tag=rec.tag,
                                count=rec.count, buf=tmp, blocking=False,
                                rid=rid, provenance="adjoint")
                req = AbsRequest(rid, "rev_irecv", tmp, ev, acc=rec.d_buf)
            else:
                # The adjoint of Irecv is an Isend of the shadow buffer.
                self._touch(op, rec.d_buf, False)
                ev = self._emit(op, "isend", peer=rec.peer, tag=rec.tag,
                                count=rec.count, buf=rec.d_buf,
                                blocking=False, rid=rid,
                                provenance="adjoint")
                req = AbsRequest(rid, "rev_isend", rec.d_buf, ev)
            if not ev.maybe:
                self.windows.append(req)
            self.env[op.result] = req
            return
        if callee in ("mpid.finish_send", "mpid.finish_recv"):
            rr = self._val(op.operands[0])
            if not isinstance(rr, AbsRequest):
                self._diag(WARN, "unresolved-request",
                           f"{callee[5:]} on an adjoint request the "
                           f"analysis could not track", op)
                return
            self._emit(op, "wait", rid=rr.rid, provenance="adjoint")
            if rr in self.windows:
                self.windows.remove(rr)
            if callee == "mpid.finish_send":
                self._touch(op, rr.buf, False)
                self._touch(op, rr.acc, True)    # += accumulate
            else:
                self._touch(op, rr.buf, True)    # zero the shadow
                self._clobber(rr.buf)
            return
        if callee == "mpid.record_allreduce":
            red_op = op.attrs.get("op", "sum")
            rec = AbsRecord("allreduce", self._ptr(op.operands[2]),
                            self._sym(op.operands[4]),
                            d_buf2=self._ptr(op.operands[3]),
                            red_op=red_op, op=op)
            if red_op in ("min", "max"):
                # The augmented forward pass adds a MINLOC-style
                # winner-mask collective with no primal counterpart.
                self._emit(op, "winner_mask",
                           count=self._sym(op.operands[4]),
                           red_op=red_op, provenance="augmented")
            self.env[op.result] = rec
            return
        if callee == "mpid.rev_allreduce":
            rec = self._val(op.operands[0])
            if isinstance(rec, AbsRecord):
                self._touch(op, rec.d_buf2, False)
                self._touch(op, rec.d_buf, True)
                self._clobber(rec.d_buf)
                self._emit(op, "allreduce", count=rec.count, red_op="sum",
                           provenance="adjoint")
            else:
                self._diag(WARN, "unresolved-request",
                           "rev_allreduce on an untracked record", op)
            return
        if callee == "mpid.record_reduce":
            self.env[op.result] = AbsRecord(
                "reduce", self._ptr(op.operands[0]),
                self._sym(op.operands[2]),
                d_buf2=self._ptr(op.operands[1]),
                root=self._sym(op.operands[3]), op=op)
            return
        if callee == "mpid.rev_reduce":
            rec = self._val(op.operands[0])
            if isinstance(rec, AbsRecord):
                self._touch(op, rec.d_buf2, False)
                self._touch(op, rec.d_buf, True)
                self._clobber(rec.d_buf)
                # reduce(sum, root) reverses into bcast from the root.
                self._emit(op, "bcast", count=rec.count, root=rec.root,
                           provenance="adjoint")
            else:
                self._diag(WARN, "unresolved-request",
                           "rev_reduce on an untracked record", op)
            return
        if callee == "mpid.rev_bcast":
            d_buf = self._ptr(op.operands[0])
            self._touch(op, d_buf, True)
            self._clobber(d_buf)
            # bcast(root) reverses into reduce(sum) onto the root.
            self._emit(op, "reduce", count=self._sym(op.operands[1]),
                       root=self._sym(op.operands[2]), red_op="sum",
                       provenance="adjoint")
            return
        if op.result is not None:
            self.env[op.result] = UNKNOWN


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------

@dataclass
class CommReport:
    """Findings (plus the symbolic endpoint summary) for one function."""

    fn: str
    sizes: tuple
    diagnostics: list[Diagnostic] = field(default_factory=list)
    summary: list[dict] = field(default_factory=list)
    checked: bool = True        # False when the function never communicates
    duality: bool = False       # True for verify_duality reports

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == WARN]

    @property
    def clean(self) -> bool:
        return not self.diagnostics

    def render(self) -> str:
        head = f"@{self.fn} (P={', '.join(map(str, self.sizes))})"
        if not self.checked:
            return f"{head}: no MPI communication"
        lines = [f"{head}: " + ("clean" if self.clean else
                                f"{len(self.errors)} error(s), "
                                f"{len(self.warnings)} warning(s)")]
        lines.extend(d.render() for d in self.diagnostics)
        if self.summary:
            lines.append("symbolic communication summary:")
            lines.append(render_summary(self.summary))
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "tool": "commcheck",
            "fn": self.fn,
            "sizes": list(self.sizes),
            "duality": self.duality,
            "checked": self.checked,
            "counts": {"error": len(self.errors),
                       "warn": len(self.warnings)},
            "summary": self.summary,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }


class CommCheckError(Exception):
    """Raised when commcheck (run with ``on_error='raise'``) finds
    error-severity structural communication bugs."""

    def __init__(self, result: CommReport) -> None:
        self.result = result
        errs = result.errors
        head = (f"commcheck found {len(errs)} error(s) in @{result.fn}")
        detail = "\n".join(d.render() for d in errs)
        super().__init__(head + ("\n" + detail if detail else ""))


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------

def _resolve_fn(fn, module: Module) -> Function:
    return module.functions[fn] if isinstance(fn, str) else fn


def _auto_bindings(fns: list[Function], bindings: Optional[dict]) -> dict:
    out = dict(bindings or {})
    vals = iter(_AUTO_BINDINGS)
    for f in fns:
        for a in f.args:
            if a.type is I64 and a.name not in out:
                out[a.name] = next(vals, 2)
    return out


def _symbolic_summary(module: Module, fn: Function, sink: DiagSink,
                      bindings: dict, split: bool,
                      max_unroll: int) -> list[dict]:
    ext = _Extractor(module, fn, sink=DiagSink(fn.name), rank=None,
                     nprocs=None, bindings=bindings, symbolic=True,
                     split_adjoint=split, max_unroll=max_unroll)
    trace = ext.run()
    rows, seen = [], set()
    for ev in trace:
        if ev.op is not None and ev.op.uid in seen:
            continue
        if ev.op is not None:
            seen.add(ev.op.uid)
        rows.append({
            "kind": ev.kind + ("" if ev.provenance in ("primal", "forward")
                               else f" [{ev.provenance}]"),
            "peer": ev.peer_s or "",
            "tag": ev.tag_s or "",
            "count": ev.count_s or "",
            "guard": "maybe" if ev.maybe else "",
            "op": print_op(ev.op) if ev.op is not None else "",
        })
    return rows


def _extract_traces(module: Module, fn: Function, sink: DiagSink,
                    nprocs: int, bindings: dict, split: bool,
                    max_unroll: int) -> list[list[CommEvent]]:
    return [
        _Extractor(module, fn, sink=sink, rank=r, nprocs=nprocs,
                   bindings=bindings, split_adjoint=split,
                   max_unroll=max_unroll).run()
        for r in range(nprocs)
    ]


def _check_traces(traces: list[list[CommEvent]], sink: DiagSink) -> None:
    ok = check_p2p(traces, sink)
    ok &= check_collectives(traces, sink)
    for trace in traces:
        check_request_lifetime(trace, sink)
    if ok:
        simulate_rendezvous(traces, sink)


def commcheck_function(fn, module: Module, sizes: tuple = DEFAULT_SIZES,
                       bindings: Optional[dict] = None,
                       max_unroll: int = 128,
                       split_adjoint: bool = False) -> CommReport:
    """Extract and check ``fn``'s communication graph for each
    communicator size in ``sizes``.

    ``bindings`` maps integer-argument names to concrete values; unbound
    integer arguments are auto-assigned small distinct values (the same
    value for the same name across functions, so primal and gradient
    instantiate identically).
    """
    fn = _resolve_fn(fn, module)
    if not function_has_comm(fn, module):
        return CommReport(fn.name, tuple(sizes), checked=False)
    bindings = _auto_bindings([fn], bindings)
    sink = DiagSink(fn.name)
    for nprocs in sizes:
        traces = _extract_traces(module, fn, sink, nprocs, bindings,
                                 split_adjoint, max_unroll)
        _check_traces(traces, sink)
    summary = _symbolic_summary(module, fn, sink, bindings,
                                split_adjoint, max_unroll)
    return CommReport(fn.name, tuple(sizes), sink.items, summary)


def _scan_shadow_swap(fn: Function, sink: DiagSink) -> None:
    """Statically reject shadow records built over the *primal* buffer:
    ``mpid.record_*`` must take the shadow, never the buffer its
    adjacent clone communicates (Fig. 5's ``d_data`` vs ``data``)."""
    last_clone: dict[str, Op] = {}
    for op in fn.body.walk():
        if op.opcode != "call":
            continue
        callee = op.attrs.get("callee", "")
        if callee in ("mpi.isend", "mpi.irecv"):
            last_clone[callee[4:]] = op
        elif callee in ("mpid.record_send", "mpid.record_recv"):
            kind = "isend" if callee.endswith("send") else "irecv"
            clone = last_clone.get(kind)
            if clone is not None and clone.operands[0] is op.operands[0]:
                sink.add(ERROR, "shadow-is-primal",
                         f"{callee} records the primal communication "
                         f"buffer instead of its shadow", op, clone)
        elif callee == "mpid.record_allreduce":
            if op.operands[2] is op.operands[0] or \
                    op.operands[3] is op.operands[1]:
                sink.add(ERROR, "shadow-is-primal",
                         "mpid.record_allreduce records a primal buffer "
                         "instead of its shadow", op)


def verify_duality(module: Module, primal, grad,
                   sizes: tuple = DEFAULT_SIZES,
                   bindings: Optional[dict] = None,
                   max_unroll: int = 128) -> CommReport:
    """Verify the gradient's communication graph against the primal's.

    Extracts both functions' traces per communicator size, runs the
    full structural checks on the gradient (matching, collectives,
    request lifetimes, rendezvous simulation), and asserts the Fig. 5
    duality: forward clones replay the primal graph exactly, the
    adjoint point-to-point edge multiset is the primal's transpose, and
    each rank's adjoint collective sequence is the reversed dual of its
    primal sequence.
    """
    primal = _resolve_fn(primal, module)
    grad = _resolve_fn(grad, module)
    if not function_has_comm(primal, module):
        return CommReport(grad.name, tuple(sizes), checked=False,
                          duality=True)
    bindings = _auto_bindings([primal, grad], bindings)
    sink = DiagSink(grad.name)
    _scan_shadow_swap(grad, sink)
    for nprocs in sizes:
        prim_traces = _extract_traces(module, primal, sink, nprocs,
                                      bindings, False, max_unroll)
        grad_traces = _extract_traces(module, grad, sink, nprocs,
                                      bindings, True, max_unroll)
        _check_traces(grad_traces, sink)
        duality_diagnostics(prim_traces, grad_traces, sink, nprocs)
    summary = _symbolic_summary(module, grad, sink, bindings, True,
                                max_unroll)
    return CommReport(grad.name, tuple(sizes), sink.items, summary,
                      duality=True)


def commcheck_module(module: Module, sizes: tuple = DEFAULT_SIZES,
                     bindings: Optional[dict] = None,
                     max_unroll: int = 128) -> dict[str, CommReport]:
    """Run :func:`commcheck_function` over every communicating function."""
    out = {}
    memo: dict = {}
    for name, fn in module.functions.items():
        if function_has_comm(fn, module, memo):
            out[name] = commcheck_function(fn, module, sizes, bindings,
                                           max_unroll)
    return out


class CommCheckPass(FunctionPass):
    """Diagnostics-only pass: static MPI communication analysis.

    Analysis only — never mutates IR.  Results accumulate in
    ``self.results`` keyed by function name; ``on_error="raise"`` turns
    error findings into :class:`CommCheckError`.
    """

    name = "commcheck"

    def __init__(self, sizes: tuple = DEFAULT_SIZES,
                 on_error: str = "ignore",
                 bindings: Optional[dict] = None,
                 max_unroll: int = 128) -> None:
        self.sizes = tuple(sizes)
        self.on_error = on_error
        self.bindings = bindings
        self.max_unroll = max_unroll
        self.results: dict[str, CommReport] = {}

    def run(self, fn: Function, module: Module) -> bool:
        if not function_has_comm(fn, module):
            return False
        report = commcheck_function(fn, module, self.sizes, self.bindings,
                                    self.max_unroll)
        self.results[fn.name] = report
        if self.on_error == "raise" and report.errors:
            raise CommCheckError(report)
        return False


__all__ = [
    "CommCheckError", "CommCheckPass", "CommReport", "DEFAULT_SIZES",
    "Sym", "commcheck_function", "commcheck_module", "fmt_sym",
    "function_has_comm", "sym_binop", "sym_cmp", "sym_unop", "sym_var",
    "verify_duality",
]
