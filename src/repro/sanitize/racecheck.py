"""Dynamic happens-before race detection over the interpreter.

The interpreter executes parallel constructs *serialized* (thread by
thread, phase by phase), so a data race never corrupts simulated
results — which is exactly why a racy atomic-downgrade in the AD
thread-locality analysis would go unnoticed.  This module rebuilds the
logical concurrency structure with vector clocks and flags every pair
of conflicting accesses that is unordered by happens-before, FastTrack
style (per-cell last-access *epochs* with escalation to a shared read
map only when concurrent readers actually occur).

Clock edges modelled:

* ``parallel_for`` / ``fork`` — region begin forks child clocks off the
  parent; region end joins them all back (OpenMP's implied barrier);
* ``barrier`` (fork-region and worksharing-loop barriers) — all
  participants join to a common clock;
* ``spawn`` / ``task.wait`` — task begin forks a task clock, the wait
  joins it into the waiter;
* atomics — checked but never racing against other atomics;
* SimMPI — a send carries a snapshot of the sender's clock which the
  receiver joins when it observes completion (``recv`` or ``wait``);
  collectives join all participants like a barrier.

Thread ids are interned small integers; clocks are dense NumPy int64
vectors, so the per-access check is a handful of vectorized gathers and
compares even for wide SIMD accesses.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..interp.memory import Buffer, CellClocks, PtrVal

#: Sentinel appended to extended clock vectors so that epoch thread id
#: ``-1`` ("no previous access") indexes it and always compares as
#: ordered-before everything.
_INF = np.int64(2 ** 62)


def _describe_op(op) -> str:
    """Render an access site: IR ops via the printer, engine-side
    accesses (MPI completions) via their string label."""
    if op is None:
        return "<unknown op>"
    if isinstance(op, str):
        return op
    try:
        from ..ir.printer import print_op
        return print_op(op)
    except Exception:
        return repr(op)


class RaceReport(Exception):
    """An unordered pair of conflicting accesses to one memory cell.

    Raised by the checker when ``raise_on_race`` is set; always appended
    to :attr:`RaceChecker.reports`.  Names both conflicting ops.
    """

    def __init__(self, kind: str, buffer: Buffer, index: int,
                 prev_op, prev_thread: str, op, thread: str) -> None:
        self.kind = kind                    # "write-write" | "read-write" | "write-read"
        self.buffer_name = buffer.name or f"#{buffer.bid}"
        self.buffer_id = buffer.bid
        self.index = int(index)
        self.prev_op = prev_op
        self.prev_thread = prev_thread
        self.op = op
        self.thread = thread
        super().__init__(self._describe())

    def _describe(self) -> str:
        return (
            f"{self.kind} race on buffer {self.buffer_name}"
            f"[{self.index}]:\n"
            f"  earlier access by {self.prev_thread}:\n"
            f"    {_describe_op(self.prev_op)}\n"
            f"  unordered access by {self.thread}:\n"
            f"    {_describe_op(self.op)}")

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "buffer": self.buffer_name,
            "index": self.index,
            "prev_thread": self.prev_thread,
            "prev_op": _describe_op(self.prev_op),
            "thread": self.thread,
            "op": _describe_op(self.op),
        }


class RaceChecker:
    """Vector-clock happens-before detector shared by one execution.

    One instance serves a whole run — a single :class:`~repro.interp.
    executor.Executor` or every rank of a :class:`~repro.parallel.mpi.
    SimMPI` engine (ranks share the checker so send/recv edges order
    cross-rank accesses).  Logical threads (main, parallel-region
    workers, tasks, MPI ranks, in-flight message deliveries) are
    interned as small integers; ``_vc[t][u]`` is the latest clock of
    ``u`` that ``t`` has synchronized with.
    """

    def __init__(self, raise_on_race: bool = True) -> None:
        self.raise_on_race = raise_on_race
        self.reports: list[RaceReport] = []
        self.accesses_checked = 0
        self._labels: list[str] = []
        self._vc: list[np.ndarray] = []

    # ------------------------------------------------------------------
    # Thread lifecycle / synchronization edges
    # ------------------------------------------------------------------
    def new_thread(self, label: str, parent: Optional[int] = None,
                   snapshot: Optional[np.ndarray] = None) -> int:
        """Intern a new logical thread, inheriting the parent's clock
        and/or an explicit clock snapshot (MPI message)."""
        tid = len(self._vc)
        vc = np.zeros(tid + 1, dtype=np.int64)
        if parent is not None:
            pv = self._vc[parent]
            vc[:len(pv)] = pv
        if snapshot is not None:
            np.maximum(vc[:len(snapshot)], snapshot, out=vc[:len(snapshot)])
        vc[tid] = 1
        self._vc.append(vc)
        self._labels.append(label)
        return tid

    def label(self, tid: int) -> str:
        return self._labels[tid] if 0 <= tid < len(self._labels) else "?"

    def _tick(self, tid: int) -> None:
        self._vc[tid][tid] += 1

    def _join_into(self, dst: int, src_vc: np.ndarray) -> None:
        v = self._vc[dst]
        if len(src_vc) > len(v):
            v = np.concatenate(
                [v, np.zeros(len(src_vc) - len(v), dtype=np.int64)])
            self._vc[dst] = v
        np.maximum(v[:len(src_vc)], src_vc, out=v[:len(src_vc)])

    def region_begin(self, parent: int, n: int, label: str = "worker"
                     ) -> list[int]:
        """Fork ``n`` children off ``parent`` (parallel_for / fork)."""
        self._tick(parent)
        return [self.new_thread(f"{label}#{i}", parent=parent)
                for i in range(n)]

    def region_end(self, parent: int, children: list[int]) -> None:
        """Join all children back into the parent (implied barrier)."""
        for c in children:
            self._join_into(parent, self._vc[c])
        self._tick(parent)

    def barrier(self, tids: list[int]) -> None:
        """All participants release and acquire a common clock."""
        n = len(self._vc)
        m = np.zeros(n, dtype=np.int64)
        for t in tids:
            v = self._vc[t]
            np.maximum(m[:len(v)], v, out=m[:len(v)])
        for t in tids:
            self._vc[t] = m.copy()
            self._tick(t)

    def task_begin(self, parent: int, label: str = "task") -> int:
        self._tick(parent)
        return self.new_thread(label, parent=parent)

    def task_join(self, waiter: int, task_tid: int) -> None:
        self._join_into(waiter, self._vc[task_tid])
        self._tick(waiter)

    def snapshot(self, tid: int) -> np.ndarray:
        """Release edge: tick then copy, e.g. onto an MPI message."""
        self._tick(tid)
        return self._vc[tid].copy()

    def join_snapshot(self, tid: int, snap: Optional[np.ndarray]) -> None:
        """Acquire edge: join a clock snapshot (MPI receive)."""
        if snap is not None:
            self._join_into(tid, snap)
        self._tick(tid)

    # ------------------------------------------------------------------
    # Access checking
    # ------------------------------------------------------------------
    @staticmethod
    def _resolve(ptr: PtrVal, idx, mask: Optional[np.ndarray]
                 ) -> np.ndarray:
        at = np.asarray(ptr.resolve(idx))
        if mask is not None and (at.ndim > 0 or mask.ndim > 0):
            at = np.broadcast_to(at, np.broadcast_shapes(
                at.shape, mask.shape))[mask]
        return np.atleast_1d(at).astype(np.int64, copy=False).ravel()

    @staticmethod
    def _meta(buf: Buffer) -> CellClocks:
        meta = buf.shadow_meta
        if meta is None:
            meta = buf.shadow_meta = CellClocks(buf.count)
        return meta

    def _ext(self, tid: int) -> np.ndarray:
        """This thread's clock padded to all interned tids, with an
        ``_INF`` sentinel at index -1 so epoch tid -1 reads as ordered."""
        vc = self._vc[tid]
        n = len(self._vc)
        out = np.zeros(n + 1, dtype=np.int64)
        out[:len(vc)] = vc
        out[n] = _INF
        return out

    def _report(self, kind: str, buf: Buffer, index: int,
                prev_op, prev_tid: int, op, tid: int) -> None:
        rep = RaceReport(kind, buf, index, prev_op, self.label(prev_tid),
                         op, self.label(tid))
        self.reports.append(rep)
        if self.raise_on_race:
            raise rep

    def on_write(self, tid: int, ptr: PtrVal, idx, op,
                 mask: Optional[np.ndarray] = None,
                 atomic: bool = False) -> None:
        at = self._resolve(ptr, idx, mask)
        if at.size == 0:
            return
        self.accesses_checked += 1
        buf = ptr.buffer
        meta = self._meta(buf)
        cu = self._ext(tid)
        # write-write: previous write epoch not ordered before us.
        pt = meta.w_tid[at]
        ww = meta.w_clk[at] > cu[pt]
        if atomic:
            ww &= ~meta.w_atomic[at]
        if ww.any():
            k = int(np.argmax(ww))
            self._report("write-write", buf, at[k],
                         meta.w_op[at[k]], int(pt[k]), op, tid)
        # read-write: previous read epoch not ordered before us.
        rt = meta.r_tid[at]
        rw = meta.r_clk[at] > cu[rt]
        if atomic:
            rw &= ~meta.r_atomic[at]
        if rw.any():
            k = int(np.argmax(rw))
            self._report("read-write", buf, at[k],
                         meta.r_op[at[k]], int(rt[k]), op, tid)
        if meta.shared:
            self._check_shared(meta, buf, at, cu, op, tid, atomic)
        # Record the new write epoch; a write subsumes prior reads.
        clk = self._vc[tid][tid]
        meta.w_tid[at] = tid
        meta.w_clk[at] = clk
        meta.w_atomic[at] = atomic
        meta.w_op[at] = op
        meta.r_tid[at] = -1
        meta.r_clk[at] = 0
        meta.r_atomic[at] = False
        meta.r_op[at] = None
        if meta.shared:
            for i in at:
                meta.shared.pop(int(i), None)

    def on_read(self, tid: int, ptr: PtrVal, idx, op,
                mask: Optional[np.ndarray] = None,
                atomic: bool = False) -> None:
        at = self._resolve(ptr, idx, mask)
        if at.size == 0:
            return
        self.accesses_checked += 1
        buf = ptr.buffer
        meta = self._meta(buf)
        cu = self._ext(tid)
        # write-read: previous write epoch not ordered before us.
        pt = meta.w_tid[at]
        wr = meta.w_clk[at] > cu[pt]
        if atomic:
            wr &= ~meta.w_atomic[at]
        if wr.any():
            k = int(np.argmax(wr))
            self._report("write-read", buf, at[k],
                         meta.w_op[at[k]], int(pt[k]), op, tid)
        # Update read epochs: replace when the previous read is ours or
        # ordered before us; otherwise escalate to the shared read map
        # (two genuinely concurrent readers — legal, but both must be
        # remembered for later write-vs-read checks).
        clk = self._vc[tid][tid]
        rt = meta.r_tid[at]
        replace = (rt == tid) | (meta.r_clk[at] <= cu[rt])
        esc = ~replace
        if esc.any():
            for k in np.flatnonzero(esc):
                i = int(at[k])
                entry = meta.shared.setdefault(i, {})
                entry[int(rt[k])] = (int(meta.r_clk[at[k]]),
                                     meta.r_op[at[k]],
                                     bool(meta.r_atomic[at[k]]))
                entry[tid] = (int(clk), op, atomic)
        upd = at[replace]
        meta.r_tid[upd] = tid
        meta.r_clk[upd] = clk
        meta.r_atomic[upd] = atomic
        meta.r_op[upd] = op
        if meta.shared:
            # Cells already escalated also remember this reader.
            for i in at:
                entry = meta.shared.get(int(i))
                if entry is not None:
                    entry[tid] = (int(clk), op, atomic)

    def _check_shared(self, meta: CellClocks, buf: Buffer,
                      at: np.ndarray, cu: np.ndarray, op, tid: int,
                      atomic: bool) -> None:
        """Writes must also be ordered after every escalated reader."""
        for i in at:
            entry = meta.shared.get(int(i))
            if not entry:
                continue
            for t2, (c2, op2, at2) in entry.items():
                if atomic and at2:
                    continue
                if t2 < len(cu) - 1 and c2 > int(cu[t2]):
                    self._report("read-write", buf, int(i), op2, t2, op, tid)
                    return

    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        return {
            "tool": "racecheck",
            "threads": list(self._labels),
            "accesses_checked": int(self.accesses_checked),
            "races": [r.to_dict() for r in self.reports],
        }
