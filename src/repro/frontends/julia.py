"""Julia frontend: GC arrays, task parallelism, and MPI.jl wrappers.

Reproduces the three Julia-specific phenomena of the paper:

* **Array descriptors with an extra indirection** (§VIII): a Julia
  array is a GC-allocated descriptor; the data pointer is extracted at
  use sites with ``jl.arrayptr``, which alias analysis treats as
  opaque.  This is why the Julia variants cache more and carry higher
  gradient overhead than the C++ ones.
* **GC preservation** (§VI-C2): raw data pointers do not root their
  array, so foreign calls (MPI) must be wrapped in
  ``gc_preserve_begin/end`` — and the AD engine extends the preserve
  set with shadows and mirrors it in the reverse pass.
* **Task parallelism** (§V-B): ``Threads.@threads``-style chunked
  ``@spawn``/``wait``, recognized by Enzyme through the marked
  ``spawn`` construct rather than a runtime symbol (Julia's JIT
  randomizes names, so source-level marking is used — §V-A).

MPI.jl wrappers resolve through a symbol table the way Enzyme.jl
rewrites integer-address foreign calls back to names (§VI-C1): the
``MPI_SYMBOLS`` dict is consulted at emission, modelling that lookup.
"""

from __future__ import annotations

import contextlib
from typing import Optional, Sequence

from ..ir.builder import IRBuilder
from ..ir.types import F64, I64, Ptr, Request, Task
from ..ir.values import Value

#: Julia runtime symbol table: ccall address-name resolution (§VI-C1).
MPI_SYMBOLS = {
    "MPI.Isend": "mpi.isend",
    "MPI.Irecv!": "mpi.irecv",
    "MPI.Wait": "mpi.wait",
    "MPI.Send": "mpi.send",
    "MPI.Recv!": "mpi.recv",
    "MPI.Allreduce!": "mpi.allreduce",
    "MPI.Bcast!": "mpi.bcast",
    "MPI.Barrier": "mpi.barrier",
    "MPI.Comm_rank": "mpi.comm_rank",
    "MPI.Comm_size": "mpi.comm_size",
}


class JuliaArray:
    """A GC-allocated Julia ``Vector{Float64}``.

    ``.data()`` extracts the raw data pointer through ``jl.arrayptr``
    (one extra indirection, opaque to alias analysis).
    """

    def __init__(self, b: IRBuilder, count, name: str = "jlarr") -> None:
        self.b = b
        self.desc = b.alloc(count, F64, space="gc", name=name)
        self.count = count

    def data(self) -> Value:
        return self.b.call("jl.arrayptr", self.desc)


class Julia:
    def __init__(self, b: IRBuilder) -> None:
        self.b = b

    # ------------------------------------------------------------------
    def zeros(self, count, name: str = "jlarr") -> JuliaArray:
        return JuliaArray(self.b, count, name)

    @contextlib.contextmanager
    def gc_preserve(self, *arrays: JuliaArray):
        """``GC.@preserve a b begin ... end``."""
        b = self.b
        tok = b.call("jl.gc_preserve_begin",
                     *[a.desc for a in arrays])
        try:
            yield
        finally:
            b.call("jl.gc_preserve_end", tok)

    def safepoint(self) -> None:
        self.b.call("jl.safepoint")

    # ------------------------------------------------------------------
    # Threads.@threads-style chunked task parallelism
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def threads_for(self, lb, ub, nchunks: Value, name: str = "i"):
        """``Threads.@threads for i in lb:ub-1`` lowered to one spawned
        task per chunk plus waits (Base.threads_for / enq_work).

        Yields the per-element induction variable inside the task's
        chunk loop.
        """
        b = self.b
        tasks = b.alloc(nchunks, Task, name="jl_tasks")
        span = b.sub(ub, lb)
        per = b.idiv(b.add(span, b.sub(nchunks, 1)), nchunks)
        with b.for_(0, nchunks, name="chunk") as c:
            lo = b.add(lb, b.mul(c, per))
            hi = b.min(b.add(lo, per), ub)
            with b.spawn(framework="julia") as task:
                with b.for_(lo, hi, simd=True, name=name) as i:
                    yield i
            b.store(task, tasks, c)
        with b.for_(0, nchunks, name="w") as w:
            b.call("task.wait", b.load(tasks, w))

    # ------------------------------------------------------------------
    # MPI.jl wrappers (resolved through the symbol table)
    # ------------------------------------------------------------------
    def mpi(self, jl_name: str, *args, **attrs):
        callee = MPI_SYMBOLS[jl_name]
        return self.b.call(callee, *args, **attrs)

    def mpi_isend(self, arr: JuliaArray, count, dest, tag) -> Value:
        return self.mpi("MPI.Isend", arr.data(), count, dest, tag)

    def mpi_irecv(self, arr: JuliaArray, count, src, tag) -> Value:
        return self.mpi("MPI.Irecv!", arr.data(), count, src, tag)

    def mpi_wait(self, req: Value) -> None:
        self.mpi("MPI.Wait", req)

    def mpi_allreduce(self, send: JuliaArray, recv: JuliaArray, count,
                      op: str = "sum") -> None:
        self.mpi("MPI.Allreduce!", send.data(), recv.data(), count, op=op)

    def comm_rank(self) -> Value:
        return self.mpi("MPI.Comm_rank")

    def comm_size(self) -> Value:
        return self.mpi("MPI.Comm_size")
