"""OpenMP frontend: emits the IR a C/C++ compiler would produce.

Clang lowers ``#pragma omp parallel for`` into an *outlined closure*
plus a ``__kmpc_fork_call`` (paper Fig. 3): captured variables are
written into a context record and re-loaded inside the region.  This
frontend reproduces that shape faithfully — which is what gives the
OpenMPOpt pass something to do: without it, every captured pointer is
re-loaded per region and alias analysis degrades, forcing the AD cache
planner to preserve loop data; with hoisting + store-to-load
forwarding the loads fold away and caching collapses (§V-E, §VIII).

``firstprivate`` is lowered to an explicit thread-local copy exactly as
in paper Fig. 6 — no AD-specific handling exists for it anywhere.
"""

from __future__ import annotations

import contextlib
from typing import Optional, Sequence

from ..ir.builder import IRBuilder
from ..ir.types import F64, I64, PointerType, Ptr
from ..ir.values import Value


class OpenMP:
    """OpenMP-style constructs over an :class:`IRBuilder`."""

    def __init__(self, b: IRBuilder) -> None:
        self.b = b

    # ------------------------------------------------------------------
    def _capture(self, captured: Sequence[Value]):
        """Write captures into context records (the closure struct).

        One record buffer per element type (pointer captures grouped by
        their exact pointee type), mirroring the by-value capture
        struct Clang builds for the outlined function.
        """
        b = self.b
        groups: dict = {}
        for v in captured:
            groups.setdefault(v.type, []).append(v)
        records = {}
        for t, vals in groups.items():
            buf = b.alloc(len(vals), t, name=f"omp_ctx_{t.name}")
            records[t] = buf
            for k, v in enumerate(vals):
                b.store(v, buf, k)

        def reload() -> dict[Value, Value]:
            out: dict[Value, Value] = {}
            for t, vals in groups.items():
                for k, v in enumerate(vals):
                    out[v] = b.load(records[t], k)
            return out

        return reload

    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def parallel_for(self, lb, ub, captured: Sequence[Value] = (),
                     schedule: str = "static", name: str = "i",
                     simd: bool = True):
        """``#pragma omp parallel for`` with closure capture.

        Lowered the way Clang lowers it: a ``__kmpc_fork``-style region
        whose outlined body re-loads the captured state once per thread
        and runs the worksharing loop (paper Fig. 3).  Yields
        ``(i, env)`` where ``env`` maps each captured value to its
        in-region reload — use ``env[x]`` instead of ``x`` in the body,
        exactly as the outlined function would.
        """
        reload = self._capture(captured)
        with self.b.fork(0, framework="openmp"):
            env = reload()
            with self.b.workshare(lb, ub, simd=simd, name=name) as i:
                yield i, env

    @contextlib.contextmanager
    def parallel(self, captured: Sequence[Value] = (), num_threads: int = 0):
        """``#pragma omp parallel`` (an explicit fork region).

        Yields ``(tid, nthreads, env)``.
        """
        reload = self._capture(captured)
        with self.b.fork(num_threads, framework="openmp") as (tid, nth):
            env = reload()
            yield tid, nth, env

    @contextlib.contextmanager
    def for_(self, lb, ub, step=1, nowait: bool = False, simd: bool = False,
             name: str = "i"):
        """``#pragma omp for`` worksharing loop (inside a parallel
        region), with the implicit trailing barrier unless ``nowait``."""
        with self.b.workshare(lb, ub, step, nowait=nowait, simd=simd,
                              name=name) as i:
            yield i

    def barrier(self) -> None:
        self.b.barrier()

    # ------------------------------------------------------------------
    def firstprivate(self, value: Value) -> Value:
        """Lower ``firstprivate(v)``: allocate a thread-local copy
        initialized from the outer value (paper Fig. 6's ``in_local``).
        Must be called inside a parallel region.  Returns a pointer to
        the private cell."""
        b = self.b
        cell = b.alloc(1, F64, name="fp")
        b.store(value, cell, 0)
        return cell

    def reduction_min_scratch(self, nthreads: Value) -> Value:
        """Per-thread partial array for a manual min reduction
        (paper Fig. 7)."""
        return self.b.alloc(nthreads, F64, name="min_per_thread")
