"""RAJA frontend: a portability-layer veneer that *lowers* onto the
OpenMP substrate.

The paper's point about RAJA (§V-D) is that Enzyme needs **zero**
RAJA-specific support: ``RAJA::forall<RAJA::omp_parallel_for_exec>``
compiles down to the same ``__kmpc_fork`` closures as plain OpenMP, so
differentiating the lowered form covers the whole framework.  This
module therefore contains *no* AD hooks whatsoever — it only emits IR
through the same mechanisms as :class:`repro.frontends.openmp.OpenMP`
(closure records included, since RAJA lambdas capture state the same
way).

``ReduceMin`` reproduces RAJA's OpenMP reduction lowering: per-thread
partials combined after the region, i.e. the Fig. 7 pattern expressed
by a library instead of by hand.
"""

from __future__ import annotations

import contextlib
from typing import Sequence

from ..ir.builder import IRBuilder
from ..ir.types import F64
from ..ir.values import Value
from .openmp import OpenMP


class ReduceMin:
    """``RAJA::ReduceMin<RAJA::omp_reduce, double>``.

    Usage::

        rmin = raja.ReduceMin(init)
        with raja.forall_reduce(0, n, [rmin], captured=[...]) as (i, env):
            raja.reduce_min(rmin, candidate)
        result = rmin.get()
    """

    def __init__(self, raja: "RAJA", init: Value) -> None:
        self.raja = raja
        b = raja.b
        self.nthreads = b.call("rt.num_threads")
        self.partials = b.alloc(self.nthreads, F64, name="raja_rmin")
        self.init = init
        self.result_cell = b.alloc(1, F64, name="raja_rmin_out")
        self._local_cell = None

    def get(self) -> Value:
        return self.raja.b.load(self.result_cell, 0)


class RAJA:
    def __init__(self, b: IRBuilder) -> None:
        self.b = b
        self._omp = OpenMP(b)

    @contextlib.contextmanager
    def forall(self, lb, ub, captured: Sequence[Value] = (),
               name: str = "i"):
        """``RAJA::forall`` over a range segment; lowers to an OpenMP
        worksharing loop with a captured lambda."""
        with self._omp.parallel_for(lb, ub, captured=captured,
                                    name=name) as (i, env):
            # Tag for reporting only; differentiation ignores this.
            self.b.block.parent_op.attrs["framework"] = "raja"
            yield i, env

    @contextlib.contextmanager
    def forall_reduce(self, lb, ub, reducers: Sequence[ReduceMin],
                      captured: Sequence[Value] = (), name: str = "i"):
        """``forall`` with ReduceMin objects: lowers to an explicit
        parallel region with per-thread partials and a serial combine,
        exactly what RAJA's OpenMP backend emits."""
        b = self.b
        with self._omp.parallel(captured=captured) as (tid, nth, env):
            b.block.parent_op.attrs["framework"] = "raja"
            locals_ = []
            for r in reducers:
                cell = b.alloc(1, F64, name="rmin_local")
                b.store(r.init, cell, 0)
                locals_.append(cell)
                r._local_cell = cell
            with self._omp.for_(lb, ub, name=name) as i:
                yield i, env
            for r, cell in zip(reducers, locals_):
                b.store(b.load(cell, 0), r.partials, tid)
            b.barrier()
            with b.if_(b.cmp("eq", tid, 0)):
                for r in reducers:
                    b.store(b.load(r.partials, 0), r.result_cell, 0)
                with b.for_(1, nth) as t:
                    for r in reducers:
                        cur = b.load(r.result_cell, 0)
                        cand = b.load(r.partials, t)
                        b.store(b.min(cur, cand), r.result_cell, 0)

    def reduce_min(self, reducer: ReduceMin, value: Value) -> None:
        """``rmin.min(value)`` inside a forall_reduce body."""
        b = self.b
        cell = reducer._local_cell
        cur = b.load(cell, 0)
        b.store(b.min(cur, value), cell, 0)
