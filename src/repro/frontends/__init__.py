"""repro.frontends — language/framework veneers over the IR.

Each frontend emits the IR its real-world compiler would produce, so
the AD engine only ever sees lowered constructs (the paper's §V-D
argument that one low-level implementation covers many frameworks):

* :class:`~repro.frontends.openmp.OpenMP` — closure-record outlining,
  worksharing loops, firstprivate, manual reductions;
* :class:`~repro.frontends.raja.RAJA` — forall / ReduceMin lowering
  onto the OpenMP substrate (zero AD-specific code);
* :class:`~repro.frontends.julia.Julia` — GC array descriptors with
  opaque data-pointer extraction, gc_preserve, chunked task
  parallelism, and MPI.jl wrappers resolved via a symbol table.
"""

from .julia import Julia, JuliaArray, MPI_SYMBOLS
from .openmp import OpenMP
from .raja import RAJA, ReduceMin

__all__ = ["Julia", "JuliaArray", "MPI_SYMBOLS", "OpenMP", "RAJA",
           "ReduceMin"]
