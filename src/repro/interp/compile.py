"""Compiled execution backend.

Pairs with :mod:`repro.interp.lowering`: each IR function is lowered
once to Python source (a generator function), compiled with
:func:`compile`/``exec``, and cached on the :class:`~repro.ir.function.
Function` object.  The generated code runs against the owning
:class:`~repro.interp.interpreter.Interpreter` instance (``rt``) as
shared runtime state — same :class:`~repro.interp.memory.Memory`, same
:class:`~repro.perf.cost.CostVector` sinks, same simulated clock — so
a compiled callee can hand any individual op back to the interpreter
(an MPI intrinsic, a spawned task, a region the lowering rejected) and
resume, with bit-identical results and timings.

The runtime helpers in this module are the out-of-line parts of the
generated code: memory access with interpreter-exact cost accounting
(``_ld``/``_st``/``_at``), privatizing allocation (``_al``), segment
cost accumulation (``_acc``), the fork-region phase driver (``_rf``),
call dispatch (``_ca``/``_cu``) and the op-by-op interpreter bridge
(``_bg``).

Fallback contract (who runs what):

* ``ExecConfig(sanitize=True)`` never constructs this backend at all;
* a tape (operator-overloading baseline) or a vectorized caller
  context pins the interpreter for that call;
* a function whose lowering fails is marked interpreter-only;
* inside compiled code, ops the lowering bridged execute through the
  interpreter's own dispatch tables against shared state.
"""

from __future__ import annotations

import numpy as np

from ..ir.function import Function
from ..ir.types import F64
from ..perf.cost import CostVector
from .events import BarrierEvent
from .interpreter import Interpreter, chunk_bounds
from .memory import DynCache, InterpreterError, Memory, PtrVal
from .lowering import LoweringError, lower_function

#: Cache attribute stashed on Function objects (they have no __slots__).
_CACHE_ATTR = "_compiled_code"


# ---------------------------------------------------------------------------
# Runtime helpers referenced by generated code
# ---------------------------------------------------------------------------

def _acc(rt, flops, divs, specials, int_ops):
    """Accumulate one straight-line segment's aggregated compute cost."""
    c = rt.cost
    if flops:
        c.flops += flops
    if divs:
        c.divs += divs
    if specials:
        c.specials += specials
    if int_ops:
        c.int_ops += int_ops


def _aw(rt, cost_class, res):
    """Cost of one op whose width is only known at runtime."""
    rt.cost.add_class(cost_class, rt._width(res))


def _ld(rt, ptr, idx):
    """Load with interpreter-exact masking and cost accounting.

    The scalar case (adjoint reverse loops run element-by-element) is
    inlined here: check-alive, bounds check, one element, 8 bytes —
    the same observable effects as ``Memory.load`` without the call
    chain.  A mask never changes a scalar load (the interpreter only
    neutralizes array indices), so ``rt.mask`` need not be consulted.
    """
    if not isinstance(idx, np.ndarray) and not isinstance(
            ptr.offset, np.ndarray):
        buf = ptr.buffer
        if buf.freed:
            buf.check_alive()
        at = ptr.offset + idx
        data = buf.data
        if at < 0 or at >= len(data):
            Memory._check_bounds(buf, at)
        c = rt.cost
        if buf.stream:
            c.stream_bytes += 8
        else:
            c.load_bytes += 8
        return data[at]
    mask = rt.mask
    if mask is not None and isinstance(idx, np.ndarray):
        idx = np.where(mask, idx, 0)
    val = rt.memory.load(ptr, idx)
    w = rt._width(val) if isinstance(val, np.ndarray) else 1
    if ptr.buffer.stream:
        rt.cost.add_stream(w * 8)
    else:
        rt.cost.add_load(w * 8)
    return val


def _st(rt, val, ptr, idx):
    if (rt.mask is None and not isinstance(idx, np.ndarray)
            and not isinstance(val, np.ndarray)
            and not isinstance(ptr.offset, np.ndarray)):
        buf = ptr.buffer
        if buf.freed:
            buf.check_alive()
        at = ptr.offset + idx
        data = buf.data
        if at < 0 or at >= len(data):
            Memory._check_bounds(buf, at)
        data[at] = val
        c = rt.cost
        if buf.stream:
            c.stream_bytes += 8
        else:
            c.store_bytes += 8
        return
    mask = rt.mask
    if mask is not None and isinstance(idx, np.ndarray):
        idx = np.where(mask, idx, 0)
    w = max(rt._width(val), rt._width(idx))
    rt.memory.store(ptr, idx, val, mask=mask)
    if ptr.buffer.stream:
        rt.cost.add_stream(w * 8)
    else:
        rt.cost.add_store(w * 8)


def _at(rt, kind, via_reduction, val, ptr, idx):
    mask = rt.mask
    if mask is not None and isinstance(idx, np.ndarray):
        idx = np.where(mask, idx, 0)
    w = max(rt._width(val), rt._width(idx))
    rt.memory.atomic(kind, ptr, idx, val, mask=mask)
    if via_reduction:
        rt.cost.add_reduction(w)
        rt.cost.add_store(w * 8)
    else:
        rt.cost.add_atomic(w, w * 8)


def _al(rt, op, count_val):
    """Allocation with the interpreter's vector-lane privatization."""
    if isinstance(count_val, np.ndarray) and count_val.size > 1:
        raise InterpreterError(
            "allocation size must be uniform inside vectorized regions")
    count = int(count_val)
    space = op.attrs["space"]
    stream = bool(op.attrs.get("stream"))
    elem = op.result.type.elem
    if rt.simd_depth > 0 and rt.simd_width >= 1:
        w = rt.simd_width
        ptr = rt.memory.alloc(count * w, elem, space, name=op.result.name,
                              thread_local_of=rt.current_thread)
        ptr = PtrVal(ptr.buffer, np.arange(w, dtype=np.int64) * count)
        ptr.buffer.stream = stream
        rt.cost.alloc_bytes += count * w * elem.size_bytes
    else:
        ptr = rt.memory.alloc(count, elem, space, name=op.result.name,
                              thread_local_of=rt.current_thread)
        ptr.buffer.stream = stream
        rt.cost.alloc_bytes += count * elem.size_bytes
        if space == "gc":
            rt.cost.add_stream(count * elem.size_bytes)
    return ptr


def _ms(rt, ptr, val, count_val):
    count = int(count_val)
    rt.memory.memset(ptr, val, count)
    rt.cost.add_store(count * 8)


def _mc(rt, dst, src, count_val):
    count = int(count_val)
    rt.memory.memcpy(dst, src, count)
    rt.cost.add_load(count * 8)
    rt.cost.add_store(count * 8)


def _bg(rt, op, env):
    """Bridge one region-bearing op to the interpreter's dispatch."""
    return (yield from rt._gen_dispatch[op.opcode](op, env))


def _ca(rt, op, args):
    """Call dispatch — mirror of ``Interpreter._exec_call``, except
    user callees route through the compiled-code cache when the calling
    context allows it."""
    callee = op.attrs["callee"]
    if callee in rt.module.functions:
        rt.cost.calls += 1
        ret = yield from _cu(rt, callee, args)
    else:
        simple = rt.intrinsics_simple.get(callee)
        if simple is not None:
            ret = simple(rt, op, args)
        else:
            gen = rt.intrinsics_gen.get(callee)
            if gen is None:
                raise InterpreterError(f"no handler for callee {callee!r}")
            ret = yield from gen(rt, op, args)
    return ret


def _cu(rt, name, args):
    """Execute a user function: compiled when the context is scalar and
    untaped, interpreted otherwise."""
    fn = rt.module.functions[name]
    rt._call_depth += 1
    if rt._call_depth > rt.config.max_call_depth:
        raise InterpreterError("call depth exceeded (recursion?)")
    try:
        if (rt.tape is None and rt.simd_depth == 0 and rt.mask is None
                and rt.backend is not None):
            code = rt.backend.get_compiled(fn)
            if code is not None:
                return (yield from code(rt, *args))
        env = dict(zip(fn.args, args))
        result = yield from rt._exec_block(fn.body, env)
    finally:
        rt._call_depth -= 1
    return result[1] if isinstance(result, tuple) else None


def _rf(rt, nthreads, body_factory):
    """Fork-region driver — mirror of ``Interpreter._exec_fork`` over
    compiled per-thread body generators.  Never yields upward."""
    if False:  # pragma: no cover - makes this a generator function
        yield None
    rt.flush_serial()
    gens = [body_factory(t, nthreads) for t in range(nthreads)]
    saved_cost = rt.cost
    saved_thread = rt.current_thread
    saved_width = rt._fork_width
    rt._fork_width = nthreads
    rt._noyield += 1
    rt._fork_depth += 1
    region_seconds = rt.machine.fork_overhead(nthreads)
    pending = dict(enumerate(gens))
    try:
        while pending:
            phase_costs = []
            finished, at_barrier = [], []
            for t in sorted(pending):
                c = CostVector()
                rt.cost = c
                rt.current_thread = t
                try:
                    ev = next(pending[t])
                    if not isinstance(ev, BarrierEvent):
                        raise InterpreterError(
                            f"unsupported event {ev!r} inside fork region")
                    at_barrier.append(t)
                except StopIteration:
                    finished.append(t)
                phase_costs.append(c)
                rt.raw_total.merge(c)
            for t in finished:
                del pending[t]
            if at_barrier and finished:
                raise InterpreterError(
                    "barrier deadlock: some threads finished while "
                    "others wait at a barrier")
            region_seconds += rt.machine.phase_time(
                phase_costs, nthreads, rt.procs_on_node)
    finally:
        rt._noyield -= 1
        rt._fork_depth -= 1
        rt.cost = saved_cost
        rt.current_thread = saved_thread
        rt._fork_width = saved_width
    rt.clock += region_seconds


_HELPER_GLOBALS = {
    "np": np,
    "F64": F64,
    "InterpreterError": InterpreterError,
    "CostVector": CostVector,
    "DynCache": DynCache,
    "PtrVal": PtrVal,
    "BarrierEvent": BarrierEvent,
    "chunk_bounds": chunk_bounds,
    "_acc": _acc, "_aw": _aw, "_ld": _ld, "_st": _st, "_at": _at,
    "_al": _al, "_ms": _ms, "_mc": _mc, "_bg": _bg, "_ca": _ca,
    "_cu": _cu, "_rf": _rf,
}


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------

def compile_function(fn: Function):
    """Lower + compile ``fn``; returns a generator function
    ``code(rt, *args)`` or raises :class:`LoweringError`."""
    source, consts = lower_function(fn)
    globs = dict(_HELPER_GLOBALS)
    globs.update(consts)
    try:
        exec(compile(source, f"<compiled {fn.name}>", "exec"), globs)
    except SyntaxError as e:  # codegen bug — surface the source
        raise LoweringError(
            f"generated source for {fn.name} does not compile: {e}") from e
    code = globs["_compiled"]
    code.__name__ = f"_compiled_{fn.name}"
    code.__lowered_source__ = source
    return code


class CompiledBackend:
    """Routes ``Interpreter.call_generator`` through compiled code.

    ``strict=True`` re-raises lowering failures instead of silently
    marking the function interpreter-only (used by tests).
    """

    def __init__(self, interp: Interpreter, strict: bool = False) -> None:
        self.rt = interp
        self.strict = strict

    # -- compile cache -------------------------------------------------
    def get_compiled(self, fn: Function):
        """Compiled code for ``fn``, or None if it is interpreter-only."""
        cached = getattr(fn, _CACHE_ATTR, None)
        if cached is None:
            try:
                cached = compile_function(fn)
            except LoweringError as e:
                if self.strict:
                    raise
                cached = False
                fn._compile_error = e
            except Exception as e:  # noqa: BLE001 - fallback must hold
                if self.strict:
                    raise
                cached = False
                fn._compile_error = e
            setattr(fn, _CACHE_ATTR, cached)
        return cached or None

    # -- Interpreter.call_generator hook -------------------------------
    def call_generator(self, fn_name: str, args: list):
        rt = self.rt
        fn = rt.module.functions[fn_name]
        if len(args) != len(fn.args):
            raise InterpreterError(
                f"{fn_name} expects {len(fn.args)} args, got {len(args)}")
        if (rt.tape is not None or rt.racecheck is not None
                or rt.simd_depth != 0 or rt.mask is not None):
            return rt._call_generator_interp(fn_name, args)
        code = self.get_compiled(fn)
        if code is None:
            return rt._call_generator_interp(fn_name, args)
        return code(rt, *args)
