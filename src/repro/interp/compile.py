"""Compiled execution backend.

Pairs with :mod:`repro.interp.lowering`: each IR function is lowered
once to Python source (a generator function), compiled with
:func:`compile`/``exec``, and cached on the :class:`~repro.ir.function.
Function` object.  The generated code runs against the owning
:class:`~repro.interp.interpreter.Interpreter` instance (``rt``) as
shared runtime state — same :class:`~repro.interp.memory.Memory`, same
:class:`~repro.perf.cost.CostVector` sinks, same simulated clock — so
a compiled callee can hand any individual op back to the interpreter
(an MPI intrinsic, a spawned task, a region the lowering rejected) and
resume, with bit-identical results and timings.

The runtime helpers in this module are the out-of-line parts of the
generated code.  Memory access comes in three statically-selected
flavors (the lowering knows mask state and index monotonicity at
codegen time — see :mod:`repro.interp.fusion`):

* ``_ld``/``_st``/``_at`` — statically-unmasked generics (no mask
  handling at all, plus scalar fast paths and a sequential-fold atomic
  fast path);
* ``_ldm``/``_stm`` — unmasked monotone-index vector access: endpoint
  bounds checks instead of ``O(width)`` min/max reductions, and slice
  copies instead of gather/scatter when a strictly-monotone index is
  contiguous at runtime;
* ``_ldk``/``_stk``/``_atk`` — masked generics used inside lowered
  vectorized-``if`` branches, consulting ``rt.mask`` exactly like the
  interpreter.

Plus privatizing allocation (``_al``), segment cost accumulation
(``_acc``), the fork-region phase driver (``_rf``), call dispatch
(``_ca``/``_cu``) and the op-by-op interpreter bridge (``_bg``).

Compilation itself is two-level cached: in-process on the Function
object (fingerprint-checked, since ExecConfig.fusion changes codegen),
and optionally on disk (:mod:`repro.interp.diskcache`) keyed on the
lowered source + config fingerprint so warm processes skip CPython's
``compile()`` for large adjoint functions.

Fallback contract (who runs what):

* ``ExecConfig(sanitize=True)`` never constructs this backend at all;
* a tape (operator-overloading baseline) or a vectorized caller
  context pins the interpreter for that call;
* a function whose lowering fails is marked interpreter-only;
* inside compiled code, ops the lowering bridged execute through the
  interpreter's own dispatch tables against shared state.
"""

from __future__ import annotations

import numpy as np

from ..ir.function import Function
from ..ir.types import F64
from ..perf.cost import CostVector
from .diskcache import config_fingerprint, open_cache
from .events import BarrierEvent
from .fusion import FusionStats
from .interpreter import Interpreter, chunk_bounds
from .memory import DynCache, InterpreterError, Memory, PtrVal
from .lowering import LoweringError, lower_function

#: Cache attributes stashed on Function objects (they have no
#: __slots__).  ``_compiled_code`` holds the generator function (False
#: = interpreter-only); ``_compiled_key`` the (fusion, fingerprint)
#: pair it was built under, so a config change recompiles.
_CACHE_ATTR = "_compiled_code"
_CACHE_KEY_ATTR = "_compiled_key"

#: Bounds checks on int64 index vectors use a zero-copy uint64 view:
#: negative indexes wrap to huge values, so a single max-reduction
#: catches both underflow and overflow (the interpreter does two).
_I8 = np.dtype(np.int64)
_U8 = np.dtype(np.uint64)
_umax = np.maximum.reduce


# ---------------------------------------------------------------------------
# Runtime helpers referenced by generated code
# ---------------------------------------------------------------------------

def _acc(rt, flops, divs, specials, int_ops):
    """Accumulate one straight-line segment's aggregated compute cost."""
    c = rt.cost
    if flops:
        c.flops += flops
    if divs:
        c.divs += divs
    if specials:
        c.specials += specials
    if int_ops:
        c.int_ops += int_ops


def _aw(rt, cost_class, res):
    """Cost of one op whose width is only known at runtime."""
    rt.cost.add_class(cost_class, rt._width(res))


def _ld(rt, ptr, idx):
    """Statically-unmasked load with interpreter-exact cost accounting.

    The scalar case (adjoint reverse loops run element-by-element) is
    inlined here: check-alive, bounds check, one element, 8 bytes —
    the same observable effects as ``Memory.load`` without the call
    chain.  The lowering only emits ``_ld`` where ``rt.mask`` is
    statically None (masked branches use ``_ldk``), so no mask handling
    appears at all.
    """
    if not isinstance(idx, np.ndarray) and not isinstance(
            ptr.offset, np.ndarray):
        buf = ptr.buffer
        if buf.freed:
            buf.check_alive()
        at = ptr.offset + idx
        data = buf.data
        if at < 0 or at >= len(data):
            Memory._check_bounds(buf, at)
        c = rt.cost
        if buf.stream:
            c.stream_bytes += 8
        else:
            c.load_bytes += 8
        return data[at]
    # Vector gather, inlined from Memory.load (no mask statically).
    buf = ptr.buffer
    if buf.freed:
        buf.check_alive()
    off = ptr.offset
    # Skip the index-vector add (an O(width) allocation) at offset 0.
    at = idx if type(off) is int and not off else off + idx
    data = buf.data
    if at.size:
        if at.dtype is _I8:
            if int(_umax(at.view(_U8))) >= len(data):
                Memory._check_bounds(buf, at)  # exact message
        elif at.min() < 0 or at.max() >= len(data):
            Memory._check_bounds(buf, at)
    val = data[at]  # fancy gather (copies)
    w = val.size if val.size > 1 else 1
    c = rt.cost
    if buf.stream:
        c.stream_bytes += w * 8
    else:
        c.load_bytes += w * 8
    return val


def _ldm(rt, ptr, idx, d):
    """Unmasked vector load with a statically-monotone index.

    ``d`` is the static monotonicity class of ``ptr.offset + idx``:
    ±1 monotone non-strict, ±2 strictly monotone.  Bounds come from the
    endpoint lanes (the extremes of any monotone vector); a strictly
    monotone index whose endpoint span equals ``size - 1`` is
    consecutive (pigeonhole), so the gather becomes a slice copy.
    """
    off = ptr.offset
    at = idx if type(off) is int and not off else off + idx
    if not isinstance(at, np.ndarray) or at.ndim != 1 or at.size == 0:
        return _ld(rt, ptr, idx)
    buf = ptr.buffer
    if buf.freed:
        buf.check_alive()
    data = buf.data
    n = at.size
    if d > 0:
        lo, hi = int(at[0]), int(at[n - 1])
    else:
        lo, hi = int(at[n - 1]), int(at[0])
    if lo < 0 or hi >= len(data):
        Memory._check_bounds(buf, at)  # raises with the exact message
    if hi - lo == n - 1 and (d == 2 or d == -2):
        sl = data[lo:hi + 1]
        val = sl[::-1].copy() if d < 0 else sl.copy()
    else:
        val = data[at]  # fancy gather (copies)
    c = rt.cost
    w = n if n > 1 else 1
    if buf.stream:
        c.stream_bytes += w * 8
    else:
        c.load_bytes += w * 8
    return val


def _ldmu(rt, ptr, idx, d):
    """``_ldm`` for statically bounds-certified sites: the interval
    analysis proved every lane in range, so the endpoint bounds check
    is dropped (the slice fast path and cost accounting are
    unchanged)."""
    off = ptr.offset
    at = idx if type(off) is int and not off else off + idx
    if not isinstance(at, np.ndarray) or at.ndim != 1 or at.size == 0:
        return _ld(rt, ptr, idx)
    buf = ptr.buffer
    if buf.freed:
        buf.check_alive()
    data = buf.data
    n = at.size
    if d > 0:
        lo, hi = int(at[0]), int(at[n - 1])
    else:
        lo, hi = int(at[n - 1]), int(at[0])
    if hi - lo == n - 1 and (d == 2 or d == -2):
        sl = data[lo:hi + 1]
        val = sl[::-1].copy() if d < 0 else sl.copy()
    else:
        val = data[at]  # fancy gather (copies)
    c = rt.cost
    w = n if n > 1 else 1
    if buf.stream:
        c.stream_bytes += w * 8
    else:
        c.load_bytes += w * 8
    return val


def _ldk(rt, ptr, idx):
    """Masked generic load (inside lowered vectorized-if branches)."""
    mask = rt.mask
    if mask is not None and isinstance(idx, np.ndarray):
        idx = np.where(mask, idx, 0)
    val = rt.memory.load(ptr, idx)
    w = rt._width(val) if isinstance(val, np.ndarray) else 1
    if ptr.buffer.stream:
        rt.cost.add_stream(w * 8)
    else:
        rt.cost.add_load(w * 8)
    return val


def _st(rt, val, ptr, idx):
    """Statically-unmasked store (mask handling lives in ``_stk``)."""
    if (not isinstance(idx, np.ndarray) and not isinstance(val, np.ndarray)
            and not isinstance(ptr.offset, np.ndarray)):
        buf = ptr.buffer
        if buf.freed:
            buf.check_alive()
        at = ptr.offset + idx
        data = buf.data
        if at < 0 or at >= len(data):
            Memory._check_bounds(buf, at)
        data[at] = val
        c = rt.cost
        if buf.stream:
            c.stream_bytes += 8
        else:
            c.store_bytes += 8
        return
    # Vector scatter, inlined from Memory.store (no mask statically).
    buf = ptr.buffer
    if buf.freed:
        buf.check_alive()
    off = ptr.offset
    at = idx if type(off) is int and not off else off + idx
    data = buf.data
    if isinstance(at, np.ndarray):
        if at.size:
            if at.dtype is _I8:
                if int(_umax(at.view(_U8))) >= len(data):
                    Memory._check_bounds(buf, at)
            elif at.min() < 0 or at.max() >= len(data):
                Memory._check_bounds(buf, at)
    elif at < 0 or at >= len(data):
        Memory._check_bounds(buf, at)
    data[at] = val
    wv = val.size if isinstance(val, np.ndarray) and val.size > 1 else 1
    wi = idx.size if isinstance(idx, np.ndarray) and idx.size > 1 else 1
    w = wv if wv > wi else wi
    c = rt.cost
    if buf.stream:
        c.stream_bytes += w * 8
    else:
        c.store_bytes += w * 8


def _stm(rt, val, ptr, idx, d):
    """Unmasked vector store with a statically-monotone index (see
    ``_ldm``); a contiguous strictly-monotone scatter is a slice
    assignment.  NumPy's last-wins fancy-assignment semantics are
    preserved: duplicates only occur in the non-strict case, which
    keeps the fancy path."""
    off = ptr.offset
    at = idx if type(off) is int and not off else off + idx
    if not isinstance(at, np.ndarray) or at.ndim != 1 or at.size == 0:
        _st(rt, val, ptr, idx)
        return
    buf = ptr.buffer
    if buf.freed:
        buf.check_alive()
    data = buf.data
    n = at.size
    if d > 0:
        lo, hi = int(at[0]), int(at[n - 1])
    else:
        lo, hi = int(at[n - 1]), int(at[0])
    if lo < 0 or hi >= len(data):
        Memory._check_bounds(buf, at)
    val_is_arr = isinstance(val, np.ndarray)
    if (hi - lo == n - 1 and (d == 2 or d == -2)
            and (not val_is_arr
                 or (val.ndim == 1 and (val.size == n or val.size == 1)))):
        if val_is_arr and val.size == n and n > 1 and d < 0:
            data[lo:hi + 1] = val[::-1]
        else:
            data[lo:hi + 1] = val
    else:
        data[at] = val
    c = rt.cost
    wv = val.size if val_is_arr and val.size > 1 else 1
    wi = idx.size if isinstance(idx, np.ndarray) and idx.size > 1 else 1
    w = wv if wv > wi else wi
    if buf.stream:
        c.stream_bytes += w * 8
    else:
        c.store_bytes += w * 8


def _stmu(rt, val, ptr, idx, d):
    """``_stm`` for statically bounds-certified sites (no endpoint
    bounds check; see ``_ldmu``)."""
    off = ptr.offset
    at = idx if type(off) is int and not off else off + idx
    if not isinstance(at, np.ndarray) or at.ndim != 1 or at.size == 0:
        _st(rt, val, ptr, idx)
        return
    buf = ptr.buffer
    if buf.freed:
        buf.check_alive()
    data = buf.data
    n = at.size
    if d > 0:
        lo, hi = int(at[0]), int(at[n - 1])
    else:
        lo, hi = int(at[n - 1]), int(at[0])
    val_is_arr = isinstance(val, np.ndarray)
    if (hi - lo == n - 1 and (d == 2 or d == -2)
            and (not val_is_arr
                 or (val.ndim == 1 and (val.size == n or val.size == 1)))):
        if val_is_arr and val.size == n and n > 1 and d < 0:
            data[lo:hi + 1] = val[::-1]
        else:
            data[lo:hi + 1] = val
    else:
        data[at] = val
    c = rt.cost
    wv = val.size if val_is_arr and val.size > 1 else 1
    wi = idx.size if isinstance(idx, np.ndarray) and idx.size > 1 else 1
    w = wv if wv > wi else wi
    if buf.stream:
        c.stream_bytes += w * 8
    else:
        c.store_bytes += w * 8


def _stk(rt, val, ptr, idx):
    """Masked generic store."""
    mask = rt.mask
    if mask is not None and isinstance(idx, np.ndarray):
        idx = np.where(mask, idx, 0)
    w = max(rt._width(val), rt._width(idx))
    rt.memory.store(ptr, idx, val, mask=mask)
    if ptr.buffer.stream:
        rt.cost.add_stream(w * 8)
    else:
        rt.cost.add_store(w * 8)


_AT_UFUNC = {"add": np.add, "min": np.minimum, "max": np.maximum}


def _at(rt, kind, via_reduction, val, ptr, idx, d=0):
    """Statically-unmasked atomic with fast paths for the two hot
    shapes: a scalar target accumulating a lane vector (the adjoint of
    a broadcast read) and a duplicate-free monotone scatter.

    ``ufunc.at`` applies lanes *sequentially*; the scalar-target path
    reproduces that exact left fold with ``ufunc.accumulate`` over
    ``[current, lane0, lane1, ...]`` (bit-identical, including ordered
    float addition and signed-zero/NaN min-max behavior).  ``d`` is the
    static monotonicity class of the index (see the lowering): a
    strictly monotone index vector is duplicate-free, so each cell gets
    exactly one application and ``ufunc.at`` collapses to a vectorized
    read-modify-write — no runtime probe needed.
    """
    off = ptr.offset
    buf = ptr.buffer
    if not isinstance(idx, np.ndarray) and not isinstance(off, np.ndarray):
        if buf.freed:
            buf.check_alive()
        at = off + idx
        data = buf.data
        if at < 0 or at >= len(data):
            Memory._check_bounds(buf, at)
        ufunc = _AT_UFUNC[kind]
        if isinstance(val, np.ndarray) and val.ndim > 0:
            v = val if val.ndim == 1 else val.ravel()
            data[at] = ufunc.accumulate(
                np.concatenate((data[at:at + 1], v)))[-1]
            w = val.size if val.size > 1 else 1
        else:
            data[at] = ufunc(data[at], val)
            w = 1
    else:
        if buf.freed:
            buf.check_alive()
        at = idx if type(off) is int and not off else off + idx
        data = buf.data
        at_arr = at if isinstance(at, np.ndarray) else np.asarray(at)
        val_arr = val if isinstance(val, np.ndarray) else np.asarray(val)
        ufunc = _AT_UFUNC[kind]
        if ((d == 2 or d == -2) and at_arr.ndim == 1 and at_arr.size
                and (val_arr.ndim == 0 or val_arr.shape == at_arr.shape)):
            n = at_arr.size
            if d > 0:
                lo, hi = int(at_arr[0]), int(at_arr[n - 1])
            else:
                lo, hi = int(at_arr[n - 1]), int(at_arr[0])
            if lo < 0 or hi >= len(data):
                Memory._check_bounds(buf, at_arr)
            data[at_arr] = ufunc(data[at_arr], val_arr)
        else:
            if at_arr.ndim == 0:
                a0 = int(at_arr)
                if a0 < 0 or a0 >= len(data):
                    Memory._check_bounds(buf, at_arr)
            elif at_arr.size:
                if at_arr.dtype is _I8:
                    if int(_umax(at_arr.view(_U8))) >= len(data):
                        Memory._check_bounds(buf, at_arr)
                elif at_arr.min() < 0 or at_arr.max() >= len(data):
                    Memory._check_bounds(buf, at_arr)
            if at_arr.ndim == 0 and val_arr.ndim == 0:
                data[int(at_arr)] = ufunc(data[int(at_arr)], val_arr)
            elif at_arr.shape == val_arr.shape and at_arr.ndim == 1:
                ufunc.at(data, at_arr, val_arr)
            else:
                shape = np.broadcast_shapes(at_arr.shape, val_arr.shape)
                ufunc.at(data, np.broadcast_to(at_arr, shape).ravel(),
                         np.broadcast_to(val_arr, shape).ravel())
        wv = val.size if isinstance(val, np.ndarray) and val.size > 1 else 1
        wi = idx.size if isinstance(idx, np.ndarray) and idx.size > 1 else 1
        w = wv if wv > wi else wi
    c = rt.cost
    if via_reduction:
        c.reduction_ops += w
        c.store_bytes += w * 8
    else:
        c.atomic_ops += w
        c.store_bytes += w * 8
        c.load_bytes += w * 8


def _atk(rt, kind, via_reduction, val, ptr, idx):
    """Masked generic atomic."""
    mask = rt.mask
    if mask is not None and isinstance(idx, np.ndarray):
        idx = np.where(mask, idx, 0)
    w = max(rt._width(val), rt._width(idx))
    rt.memory.atomic(kind, ptr, idx, val, mask=mask)
    if via_reduction:
        rt.cost.add_reduction(w)
        rt.cost.add_store(w * 8)
    else:
        rt.cost.add_atomic(w, w * 8)


def _al(rt, op, count_val):
    """Allocation with the interpreter's vector-lane privatization."""
    if isinstance(count_val, np.ndarray) and count_val.size > 1:
        raise InterpreterError(
            "allocation size must be uniform inside vectorized regions")
    count = int(count_val)
    space = op.attrs["space"]
    stream = bool(op.attrs.get("stream"))
    elem = op.result.type.elem
    if rt.simd_depth > 0 and rt.simd_width >= 1:
        w = rt.simd_width
        ptr = rt.memory.alloc(count * w, elem, space, name=op.result.name,
                              thread_local_of=rt.current_thread)
        ptr = PtrVal(ptr.buffer, np.arange(w, dtype=np.int64) * count)
        ptr.buffer.stream = stream
        if op.attrs.get("adcache"):
            rt.memory.note_adcache(ptr.buffer)
        rt.cost.alloc_bytes += count * w * elem.size_bytes
    else:
        ptr = rt.memory.alloc(count, elem, space, name=op.result.name,
                              thread_local_of=rt.current_thread)
        ptr.buffer.stream = stream
        if op.attrs.get("adcache"):
            rt.memory.note_adcache(ptr.buffer)
        rt.cost.alloc_bytes += count * elem.size_bytes
        if space == "gc":
            rt.cost.add_stream(count * elem.size_bytes)
    return ptr


def _ms(rt, ptr, val, count_val):
    count = int(count_val)
    rt.memory.memset(ptr, val, count)
    rt.cost.add_store(count * 8)


def _mc(rt, dst, src, count_val):
    count = int(count_val)
    rt.memory.memcpy(dst, src, count)
    rt.cost.add_load(count * 8)
    rt.cost.add_store(count * 8)


def _bg(rt, op, env):
    """Bridge one region-bearing op to the interpreter's dispatch."""
    return (yield from rt._gen_dispatch[op.opcode](op, env))


def _ca(rt, op, args):
    """Call dispatch — mirror of ``Interpreter._exec_call``, except
    user callees route through the compiled-code cache when the calling
    context allows it."""
    callee = op.attrs["callee"]
    if callee in rt.module.functions:
        rt.cost.calls += 1
        ret = yield from _cu(rt, callee, args)
    else:
        simple = rt.intrinsics_simple.get(callee)
        if simple is not None:
            ret = simple(rt, op, args)
        else:
            gen = rt.intrinsics_gen.get(callee)
            if gen is None:
                raise InterpreterError(f"no handler for callee {callee!r}")
            ret = yield from gen(rt, op, args)
    return ret


def _cu(rt, name, args):
    """Execute a user function: compiled when the context is scalar and
    untaped, interpreted otherwise."""
    fn = rt.module.functions[name]
    rt._call_depth += 1
    if rt._call_depth > rt.config.max_call_depth:
        raise InterpreterError("call depth exceeded (recursion?)")
    try:
        if (rt.tape is None and rt.simd_depth == 0 and rt.mask is None
                and rt.backend is not None):
            code = rt.backend.get_compiled(fn)
            if code is not None:
                return (yield from code(rt, *args))
        env = dict(zip(fn.args, args))
        result = yield from rt._exec_block(fn.body, env)
    finally:
        rt._call_depth -= 1
    return result[1] if isinstance(result, tuple) else None


def _rf(rt, nthreads, body_factory):
    """Fork-region driver — mirror of ``Interpreter._exec_fork`` over
    compiled per-thread body generators.  Never yields upward."""
    if False:  # pragma: no cover - makes this a generator function
        yield None
    rt.flush_serial()
    gens = [body_factory(t, nthreads) for t in range(nthreads)]
    saved_cost = rt.cost
    saved_thread = rt.current_thread
    saved_width = rt._fork_width
    rt._fork_width = nthreads
    rt._noyield += 1
    rt._fork_depth += 1
    region_seconds = rt.machine.fork_overhead(nthreads)
    pending = dict(enumerate(gens))
    try:
        while pending:
            phase_costs = []
            finished, at_barrier = [], []
            for t in sorted(pending):
                c = CostVector()
                rt.cost = c
                rt.current_thread = t
                try:
                    ev = next(pending[t])
                    if not isinstance(ev, BarrierEvent):
                        raise InterpreterError(
                            f"unsupported event {ev!r} inside fork region")
                    at_barrier.append(t)
                except StopIteration:
                    finished.append(t)
                phase_costs.append(c)
                rt.raw_total.merge(c)
            for t in finished:
                del pending[t]
            if at_barrier and finished:
                raise InterpreterError(
                    "barrier deadlock: some threads finished while "
                    "others wait at a barrier")
            region_seconds += rt.machine.phase_time(
                phase_costs, nthreads, rt.procs_on_node)
    finally:
        rt._noyield -= 1
        rt._fork_depth -= 1
        rt.cost = saved_cost
        rt.current_thread = saved_thread
        rt._fork_width = saved_width
    rt.clock += region_seconds


_HELPER_GLOBALS = {
    "np": np,
    "F64": F64,
    "InterpreterError": InterpreterError,
    "CostVector": CostVector,
    "DynCache": DynCache,
    "PtrVal": PtrVal,
    "Memory": Memory,
    "BarrierEvent": BarrierEvent,
    "chunk_bounds": chunk_bounds,
    "_acc": _acc, "_aw": _aw, "_ld": _ld, "_st": _st, "_at": _at,
    "_ldm": _ldm, "_stm": _stm, "_ldmu": _ldmu, "_stmu": _stmu,
    "_ldk": _ldk, "_stk": _stk, "_atk": _atk,
    "_al": _al, "_ms": _ms, "_mc": _mc, "_bg": _bg, "_ca": _ca,
    "_cu": _cu, "_rf": _rf,
}


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------

def compile_function(fn: Function, fusion: bool = True, cache=None,
                     fingerprint: str = "", native=None, module=None):
    """Lower + compile ``fn``; returns a generator function
    ``code(rt, *args)`` or raises :class:`LoweringError`.

    ``cache`` is an optional :class:`~repro.interp.diskcache.
    CompileCache`: lowering always runs (it rebuilds the constant
    table deterministically), but the CPython ``compile()`` step is
    skipped when the cache holds a code object for this exact lowered
    source + ``fingerprint``.

    ``native`` is an optional :class:`~repro.interp.native.
    NativeEmitter`: the lowering then routes claimable kernels through
    C functions whose bindings ``native.build()`` injects into the
    generated code's globals (may raise ``NativeBuildError``).  The
    lowered *source* differs from the plain-NumPy lowering, so native
    and plain artifacts never share a marshal-cache entry.

    ``module`` (the owning :class:`~repro.ir.function.Module`) enables
    static bounds certification: the interval analysis runs over ``fn``
    first, and accesses it proves in-bounds lower without their runtime
    bounds checks.  The disk cache stays correct because the elision
    changes the lowered source itself (the cache keys on source).
    """
    bounds = None
    if module is not None:
        from ..passes.intervals import certify_bounds
        bounds = certify_bounds(fn, module)
    source, consts, stats = lower_function(fn, fusion=fusion, native=native,
                                           bounds=bounds)
    code_obj = cache.load(source, fingerprint) if cache is not None else None
    if code_obj is None:
        try:
            code_obj = compile(source, f"<compiled {fn.name}>", "exec")
        except SyntaxError as e:  # codegen bug — surface the source
            raise LoweringError(
                f"generated source for {fn.name} does not compile: {e}"
            ) from e
        if cache is not None:
            cache.store(source, fingerprint, code_obj)
    globs = dict(_HELPER_GLOBALS)
    globs.update(consts)
    if native is not None:
        globs.update(native.build(cache))
    exec(code_obj, globs)
    code = globs["_compiled"]
    code.__name__ = f"_compiled_{fn.name}"
    code.__lowered_source__ = source
    code.__fusion_stats__ = stats
    code.__native_stats__ = native.stats if native is not None else None
    return code


class CompiledBackend:
    """Routes ``Interpreter.call_generator`` through compiled code.

    ``strict=True`` re-raises lowering failures instead of silently
    marking the function interpreter-only (used by tests).
    """

    def __init__(self, interp: Interpreter, strict: bool = False) -> None:
        self.rt = interp
        self.strict = strict
        cfg = interp.config
        self.fusion = bool(getattr(cfg, "fusion", True))
        self.cache = open_cache(cfg)
        self.fingerprint = config_fingerprint(cfg)
        #: Functions compiled through this backend (for reporting).
        self.compiled_functions: dict[str, FusionStats] = {}

    # -- compile cache -------------------------------------------------
    def get_compiled(self, fn: Function):
        """Compiled code for ``fn``, or None if it is interpreter-only."""
        # Gradients stamp the adjoint-strategy fingerprint on the
        # function; folding it into the key keeps artifacts generated
        # under different strategies from ever sharing a cache entry.
        fingerprint = self.fingerprint
        adjoint = fn.attrs.get("adjoint")
        if adjoint:
            fingerprint = f"{fingerprint}|adjoint={adjoint}"
        key = (self.fusion, fingerprint)
        cached = getattr(fn, _CACHE_ATTR, None)
        if cached is None or getattr(fn, _CACHE_KEY_ATTR, None) != key:
            try:
                cached = self._compile(fn, fingerprint)
            except LoweringError as e:
                if self.strict:
                    raise
                cached = False
                fn._compile_error = e
            except Exception as e:  # noqa: BLE001 - fallback must hold
                if self.strict:
                    raise
                cached = False
                fn._compile_error = e
            setattr(fn, _CACHE_ATTR, cached)
            setattr(fn, _CACHE_KEY_ATTR, key)
        if cached:
            # Register even when served from the per-function memo so
            # compile_stats reflects every function this backend ran.
            self.compiled_functions[fn.name] = cached.__fusion_stats__
        return cached or None

    def _compile(self, fn: Function, fingerprint: str):
        """One function's compile step (the native backend overrides
        this to layer the C-kernel emitter on the same lowering)."""
        return compile_function(fn, fusion=self.fusion, cache=self.cache,
                                fingerprint=fingerprint,
                                module=self.rt.module)

    # -- reporting -----------------------------------------------------
    def compile_stats(self) -> dict:
        """Aggregated fusion + disk-cache counters for this backend."""
        agg = FusionStats()
        for st in self.compiled_functions.values():
            for slot in FusionStats.__slots__:
                setattr(agg, slot, getattr(agg, slot) + getattr(st, slot))
        out = {"functions": len(self.compiled_functions),
               "fusion": self.fusion, **agg.as_dict()}
        out["cache"] = self.cache.stats() if self.cache is not None else None
        return out

    # -- Interpreter.call_generator hook -------------------------------
    def call_generator(self, fn_name: str, args: list):
        rt = self.rt
        fn = rt.module.functions[fn_name]
        if len(args) != len(fn.args):
            raise InterpreterError(
                f"{fn_name} expects {len(fn.args)} args, got {len(args)}")
        if (rt.tape is not None or rt.racecheck is not None
                or rt.simd_depth != 0 or rt.mask is not None):
            return rt._call_generator_interp(fn_name, args)
        code = self.get_compiled(fn)
        if code is None:
            return rt._call_generator_interp(fn_name, args)
        return code(rt, *args)
