"""IR -> Python lowering for the compiled execution backend.

The :class:`Lowerer` translates one verified IR function into the
source of a generated Python *generator function* executing against the
interpreter instance (``rt``) as shared runtime state:

* straight-line f64/i64 arithmetic becomes native Python/NumPy
  expressions over SSA locals (one local per IR value);
* ``simd``/worksharing loop bodies and ``parallel_for`` bodies are
  vectorized exactly like the interpreter vectorizes them — the
  induction variable is bound to an ``np.arange`` index vector and
  elementwise ops become NumPy array kernels over the Executor's
  buffers;
* vectorized ``if`` regions run masked, with the mask published to
  ``rt.mask``/``rt.mask_count`` so memory helpers and interpreter
  bridges see the exact interpreter state;
* instruction-cost accounting is aggregated statically: each
  straight-line segment contributes one ``_acc(...)`` call instead of
  one ``CostVector`` update per op, with per-lane counts scaled by the
  region width local;
* anything the lowering cannot translate (``spawn`` tasks, ``if`` with
  a condition of statically-unknown vectorization, unknown opcodes)
  falls back *op-by-op* to the interpreter through ``_bg`` bridges that
  materialize the op's free SSA values into an interpreter ``env``.

Bit-identity contract: every emitted expression either is the exact
NumPy ufunc the interpreter would call, or a Python operator whose
IEEE-754 result is identical for the value types that can occur (float
``+``/``-``/``*`` and comparisons).  Division, min/max, pow and the
transcendentals always go through the interpreter's own ufuncs —
Python's operators differ observably there (``ZeroDivisionError``,
NaN propagation, complex results).

This module is pure code generation; the runtime helpers the generated
source calls live in :mod:`repro.interp.compile`.
"""

from __future__ import annotations

from typing import Optional

from ..ir.opinfo import OP_INFO
from ..ir.values import Constant, Value


class LoweringError(Exception):
    """Raised when a function cannot be lowered; caller falls back to
    the interpreter for the whole function."""


#: Float ops whose Python operator is bit-identical to the interpreter's
#: ufunc for every input (IEEE-754 basic ops; ``fma`` is evaluated as
#: ``a * b + c`` by the interpreter too).
_OPERATOR_TEMPLATES = {
    "add": "({a} + {b})",
    "sub": "({a} - {b})",
    "mul": "({a} * {b})",
    "neg": "(-{a})",
    "abs": "abs({a})",
    "fma": "({a} * {b} + {c})",
}

#: Comparison predicates -> Python operators (same truth value as the
#: interpreter's np.less/np.greater/... for scalars and arrays alike).
_CMP_TEMPLATES = {
    "lt": "<", "le": "<=", "gt": ">", "ge": ">=", "eq": "==", "ne": "!=",
}

#: Cost classes accumulated by segment aggregation, in `_acc` argument
#: order.  COST_FREE contributes nothing (matches CostVector.add_class).
_ACC_CLASSES = ("flop", "div", "special", "int")


def free_values(op) -> list:
    """SSA values used inside ``op`` (or its regions) but defined outside.

    These are exactly the values an interpreter bridge must seed into
    the ``env`` dict before handing the op to ``rt._gen_dispatch``.
    """
    defined = set()
    used = []
    for o in op.walk():
        for region in o.regions:
            defined.update(region.args)
        if o.result is not None:
            defined.add(o.result)
        for v in o.operands:
            if type(v) is not Constant:
                used.append(v)
    return [v for v in dict.fromkeys(used) if v not in defined]


def _literal(c: Constant) -> str:
    # repr() of Python floats round-trips exactly; ints and bools are
    # exact by construction.
    return repr(c.value)


class Lowerer:
    """Lower one IR function to Python generator-function source."""

    def __init__(self, fn) -> None:
        self.fn = fn
        self.lines: list[str] = []
        self._ind = 0
        self._n = 0
        #: Value -> generated local name.
        self.names: dict[Value, str] = {}
        #: Value -> True (lane-varying) / False (uniform) / None (only
        #: decidable at runtime; cost falls back to rt._width).
        self.vary: dict[Value, Optional[bool]] = {}
        #: Objects the generated code references by global name.
        self.consts: dict[str, object] = {}
        self._const_ids: dict[int, str] = {}
        #: Static vectorization depth (0 = scalar context).
        self.depth = 0
        #: Expression for the current per-lane width ("1" when scalar).
        self.wexpr = "1"
        #: Pending straight-line cost: class -> [uniform, varying] counts.
        self._seg: dict[str, list[int]] = {}

    # -- source emission helpers ---------------------------------------
    def emit(self, line: str = "") -> None:
        self.lines.append("    " * self._ind + line if line else "")

    def fresh(self, prefix: str = "_t") -> str:
        self._n += 1
        return f"{prefix}{self._n}"

    def konst(self, obj) -> str:
        name = self._const_ids.get(id(obj))
        if name is None:
            name = f"_k{len(self.consts)}"
            self.consts[name] = obj
            self._const_ids[id(obj)] = name
        return name

    def ref(self, v: Value) -> str:
        if type(v) is Constant:
            return _literal(v)
        try:
            return self.names[v]
        except KeyError:
            raise LoweringError(f"use of value {v!r} before definition")

    def bind(self, v: Value, varying: Optional[bool]) -> str:
        name = self.fresh("v")
        self.names[v] = name
        self.vary[v] = varying
        return name

    def vary_of(self, v: Value) -> Optional[bool]:
        if type(v) is Constant:
            return False
        return self.vary.get(v, False)

    def _join_vary(self, operands) -> Optional[bool]:
        out: Optional[bool] = False
        for v in operands:
            x = self.vary_of(v)
            if x is True:
                return True
            if x is None:
                out = None
        return out

    # -- cost segments -------------------------------------------------
    def seg_add(self, cost_class: str, varying: bool) -> None:
        if cost_class == "free":
            return
        cell = self._seg.setdefault(cost_class, [0, 0])
        cell[1 if varying else 0] += 1

    def flush_seg(self) -> None:
        if not self._seg:
            return
        args = []
        for cls in _ACC_CLASSES:
            u, vr = self._seg.get(cls, (0, 0))
            if vr and self.wexpr != "1":
                args.append(f"{u} + {vr}*{self.wexpr}" if u else
                            f"{vr}*{self.wexpr}")
            else:
                args.append(str(u + vr))
        self._seg.clear()
        if any(a != "0" for a in args):
            self.emit(f"_acc(rt, {', '.join(args)})")

    # ------------------------------------------------------------------
    def build(self) -> tuple[str, dict]:
        """Return ``(source, consts)`` for this function."""
        fn = self.fn
        arg_names = [self.bind(a, False) for a in fn.args]
        head = f"def _compiled(rt{''.join(', ' + a for a in arg_names)}):"
        self.emit(head)
        self._ind += 1
        self.emit("if False:")
        self.emit("    yield")
        body_start = len(self.lines)
        self.lower_block(fn.body, top_level=True)
        self.flush_seg()
        if len(self.lines) == body_start:
            self.emit("pass")
        return "\n".join(self.lines) + "\n", self.consts

    # ------------------------------------------------------------------
    def lower_block(self, block, top_level: bool = False) -> None:
        start = len(self.lines)
        for op in block.ops:
            if op.opcode == "return":
                self.flush_seg()
                if top_level:
                    val = self.ref(op.operands[0]) if op.operands else "None"
                    self.emit(f"return {val}")
                elif len(self.lines) == start:
                    self.emit("pass")
                # A nested return just ends this block in the
                # interpreter (region executors discard the signal), so
                # the remaining ops of the block are dead either way.
                return
            self.lower_op(op)
        self.flush_seg()
        if len(self.lines) == start:
            self.emit("pass")

    def lower_op(self, op) -> None:
        oc = op.opcode
        info = OP_INFO.get(oc)
        if info is not None:
            self.lower_compute(op, info)
        elif oc == "load":
            res = self.bind(op.result,
                            self._join_vary(op.operands))
            self.emit(f"{res} = _ld(rt, {self.ref(op.operands[0])}, "
                      f"{self.ref(op.operands[1])})")
        elif oc == "store":
            self.emit(f"_st(rt, {self.ref(op.operands[0])}, "
                      f"{self.ref(op.operands[1])}, "
                      f"{self.ref(op.operands[2])})")
        elif oc == "atomic":
            via_red = op.attrs.get("via") == "reduction"
            self.emit(f"_at(rt, {op.attrs['kind']!r}, {via_red!r}, "
                      f"{self.ref(op.operands[0])}, "
                      f"{self.ref(op.operands[1])}, "
                      f"{self.ref(op.operands[2])})")
        elif oc == "alloc":
            res = self.bind(op.result, self.depth > 0)
            self.emit(f"{res} = _al(rt, {self.konst(op)}, "
                      f"{self.ref(op.operands[0])})")
        elif oc == "ptradd":
            res = self.bind(op.result, self._join_vary(op.operands))
            self.emit(f"{res} = {self.ref(op.operands[0])}"
                      f".added({self.ref(op.operands[1])})")
            self.seg_add("int", False)
        elif oc == "memset":
            self.emit(f"_ms(rt, {self.ref(op.operands[0])}, "
                      f"{self.ref(op.operands[1])}, "
                      f"{self.ref(op.operands[2])})")
        elif oc == "memcpy":
            self.emit(f"_mc(rt, {self.ref(op.operands[0])}, "
                      f"{self.ref(op.operands[1])}, "
                      f"{self.ref(op.operands[2])})")
        elif oc == "free":
            self.emit(f"rt.memory.free({self.ref(op.operands[0])})")
        elif oc == "cache_create":
            self.emit(f"{self.bind(op.result, False)} = DynCache()")
        elif oc == "cache_push":
            self.emit(f"{self.ref(op.operands[0])}.push("
                      f"{self.ref(op.operands[1])})")
            self.emit("rt.cost.add_store(8)")
        elif oc == "cache_pop":
            self.emit(f"{self.bind(op.result, None)} = "
                      f"{self.ref(op.operands[0])}.pop()")
            self.emit("rt.cost.add_load(8)")
        elif oc == "for":
            self.lower_for(op)
        elif oc == "parallel_for":
            self.lower_parallel_for(op)
        elif oc == "if":
            self.lower_if(op)
        elif oc == "while":
            self.lower_while(op)
        elif oc == "fork":
            self.lower_fork(op)
        elif oc == "call":
            self.lower_call(op)
        elif oc == "barrier":
            self.flush_seg()
            self.emit("if rt._fork_depth == 0:")
            self.emit("    raise InterpreterError("
                      "'barrier outside an executing fork region')")
            self.emit("yield BarrierEvent()")
        elif oc == "condition":
            c = self.ref(op.operands[0])
            self.emit(f"if isinstance({c}, np.ndarray) and {c}.size > 1:")
            self.emit("    raise InterpreterError('data-dependent while "
                      "inside a vectorized region')")
            self.emit(f"rt._while_flag = bool({c})")
        elif oc == "spawn":
            self.lower_bridge(op)
        else:
            raise LoweringError(f"no lowering for opcode {oc!r}")

    # ------------------------------------------------------------------
    def lower_compute(self, op, info) -> None:
        oc = op.opcode
        refs = [self.ref(v) for v in op.operands]
        varying = self._join_vary(op.operands)
        if oc == "cmp":
            pyop = _CMP_TEMPLATES[op.attrs["pred"]]
            expr = f"({refs[0]} {pyop} {refs[1]})"
        elif oc == "select":
            cv = self.vary_of(op.operands[0])
            where = f"np.where({refs[0]}, {refs[1]}, {refs[2]})"
            pick = f"({refs[1]} if {refs[0]} else {refs[2]})"
            if cv is True:
                expr = where
            elif cv is False:
                expr = pick
            else:
                expr = (f"({where} if isinstance({refs[0]}, np.ndarray) "
                        f"else {pick})")
            # A select between a varying and a uniform arm under a
            # uniform condition has runtime-dependent width.
            if varying is not True and cv is not True and \
                    self._join_vary(op.operands[1:]) is not False:
                varying = None
        elif oc in _OPERATOR_TEMPLATES:
            expr = _OPERATOR_TEMPLATES[oc].format(
                a=refs[0],
                b=refs[1] if len(refs) > 1 else "",
                c=refs[2] if len(refs) > 2 else "")
        else:
            # Everything else calls the interpreter's own evaluate
            # function (NumPy ufunc or array-aware lambda) — identical
            # numerics by construction.
            expr = f"{self.konst(info.evaluate)}({', '.join(refs)})"
        res = self.bind(op.result, varying)
        self.emit(f"{res} = {expr}")
        if varying is None:
            self.flush_seg()
            self.emit(f"_aw(rt, {info.cost!r}, {res})")
        else:
            self.seg_add(info.cost, varying)

    # ------------------------------------------------------------------
    def _lower_vector_body(self, body, ivar_name: str) -> None:
        """Emit the simd_depth/simd_width bookkeeping + vectorized body.

        The caller has already emitted the ``np.arange`` assignment for
        the induction vector; indentation is inside the enclosing
        ``if trips:`` guard.
        """
        w = self.fresh("_W")
        sw = self.fresh("_sw")
        self.emit(f"{w} = {ivar_name}.size")
        self.emit("rt.simd_depth += 1")
        self.emit(f"{sw} = rt.simd_width")
        self.emit(f"rt.simd_width = {w}")
        self.emit("try:")
        self.emit("    with np.errstate(all='ignore'):")
        saved_depth, saved_w = self.depth, self.wexpr
        self.depth, self.wexpr = self.depth + 1, w
        self._ind += 2
        self.lower_block(body)
        self._ind -= 2
        self.depth, self.wexpr = saved_depth, saved_w
        self.emit("finally:")
        self.emit("    rt.simd_depth -= 1")
        self.emit(f"    rt.simd_width = {sw}")

    def lower_for(self, op) -> None:
        self.flush_seg()
        lb, ub, st = (self.fresh("_lb"), self.fresh("_ub"), self.fresh("_st"))
        self.emit(f"{lb} = int({self.ref(op.operands[0])})")
        self.emit(f"{ub} = int({self.ref(op.operands[1])})")
        self.emit(f"{st} = int({self.ref(op.operands[2])})")
        self.emit(f"if {st} <= 0:")
        self.emit("    raise InterpreterError('for step must be positive')")
        body = op.regions[0]
        ivar = body.args[0]
        simd = bool(op.attrs.get("simd")) and self.depth == 0
        backwards = bool(op.attrs.get("reverse_order"))

        if op.attrs.get("workshare"):
            lo, hi = self.fresh("_lo"), self.fresh("_hi")
            self.emit("if rt.current_thread is None:")
            self.emit("    raise InterpreterError("
                      "'workshare loop outside fork region')")
            self.emit(f"{lo}, {hi} = chunk_bounds({lb}, {ub}, {st}, "
                      f"rt.current_thread, rt._fork_width)")
            if simd:
                vi = self.bind(ivar, True)
                self.emit(f"if {hi} > {lo}:")
                self._ind += 1
                arange = f"np.arange({lo}, {hi}, {st}, dtype=np.int64)"
                self.emit(f"{vi} = {arange}[::-1]" if backwards
                          else f"{vi} = {arange}")
                self._lower_vector_body(body, vi)
                self._ind -= 1
            else:
                vi = self.bind(ivar, False)
                rng = f"range({lo}, {hi}, {st})"
                if backwards:
                    rng = f"reversed({rng})"
                self.emit(f"for {vi} in {rng}:")
                self._ind += 1
                self.lower_block(body)
                self._ind -= 1
            if not op.attrs.get("nowait"):
                self.emit("yield BarrierEvent()")
        elif simd:
            vi = self.bind(ivar, True)
            self.emit(f"if {ub} > {lb}:")
            self._ind += 1
            self.emit(f"{vi} = np.arange({lb}, {ub}, {st}, dtype=np.int64)")
            self._lower_vector_body(body, vi)
            self._ind -= 1
        else:
            # Serial loop: uniform induction variable at any depth.
            vi = self.bind(ivar, False)
            self.emit(f"for {vi} in range({lb}, {ub}, {st}):")
            self._ind += 1
            self.lower_block(body)
            self._ind -= 1

    def lower_parallel_for(self, op) -> None:
        if self.depth > 0:
            self.lower_bridge(op)
            return
        self.flush_seg()
        lb, ub = self.fresh("_lb"), self.fresh("_ub")
        self.emit(f"{lb} = int({self.ref(op.operands[0])})")
        self.emit(f"{ub} = int({self.ref(op.operands[1])})")
        nt = self.fresh("_nt")
        self.emit(f"{nt} = rt.config.num_threads")
        self.emit("rt.flush_serial()")
        sc, sth = self.fresh("_sc"), self.fresh("_sth")
        sm, smc = self.fresh("_sm"), self.fresh("_smc")
        tcs, t, c = self.fresh("_tcs"), self.fresh("_pt"), self.fresh("_pc")
        lo, hi = self.fresh("_lo"), self.fresh("_hi")
        self.emit(f"{sc} = rt.cost")
        self.emit(f"{sth} = rt.current_thread")
        self.emit(f"{sm}, {smc} = rt.mask, rt.mask_count")
        self.emit("rt.mask, rt.mask_count = None, 0")
        self.emit("rt._noyield += 1")
        self.emit(f"{tcs} = []")
        self.emit("try:")
        self._ind += 1
        self.emit(f"for {t} in range({nt}):")
        self._ind += 1
        self.emit(f"{lo}, {hi} = chunk_bounds({lb}, {ub}, 1, {t}, {nt})")
        self.emit(f"{c} = CostVector()")
        self.emit(f"rt.cost = {c}")
        self.emit(f"rt.current_thread = {t}")
        body = op.regions[0]
        vi = self.bind(body.args[0], True)
        self.emit(f"if {hi} > {lo}:")
        self._ind += 1
        self.emit(f"{vi} = np.arange({lo}, {hi}, dtype=np.int64)")
        self._lower_vector_body(body, vi)
        self._ind -= 1
        self.emit(f"{tcs}.append({c})")
        self.emit(f"rt.raw_total.merge({c})")
        self._ind -= 2
        self.emit("finally:")
        self._ind += 1
        self.emit("rt._noyield -= 1")
        self.emit(f"rt.cost = {sc}")
        self.emit(f"rt.current_thread = {sth}")
        self.emit(f"rt.mask, rt.mask_count = {sm}, {smc}")
        self._ind -= 1
        self.emit(f"rt.clock += rt.machine.parallel_region_time("
                  f"{tcs}, {nt}, rt.procs_on_node)")

    def lower_if(self, op) -> None:
        cv = self.vary_of(op.operands[0])
        if cv is None:
            self.lower_bridge(op)
            return
        self.flush_seg()
        c = self.ref(op.operands[0])
        then_body, else_body = op.regions
        if cv is False:
            self.emit(f"if {c}:")
            self._ind += 1
            if then_body.ops:
                self.lower_block(then_body)
            else:
                self.emit("pass")
            self._ind -= 1
            if else_body.ops:
                self.emit("else:")
                self._ind += 1
                self.lower_block(else_body)
                self._ind -= 1
            return
        # Masked (vectorized) if — mirrors Interpreter._exec_if,
        # publishing the live mask to rt so loads/stores/bridges see it.
        om, omc = self.fresh("_om"), self.fresh("_omc")
        self.emit(f"{om}, {omc} = rt.mask, rt.mask_count")
        self.emit("try:")
        self._ind += 1
        saved_w = self.wexpr
        if then_body.ops:
            mt = self.fresh("_mt")
            self.emit(f"{mt} = {c} if {om} is None else ({om} & {c})")
            self.emit(f"if {mt}.any():")
            self._ind += 1
            wd = self.fresh("_wd")
            self.emit(f"rt.mask = {mt}")
            self.emit(f"{wd} = int({mt}.sum())")
            self.emit(f"rt.mask_count = {wd}")
            self.wexpr = wd
            self.lower_block(then_body)
            self.wexpr = saved_w
            self._ind -= 1
        if else_body.ops:
            me = self.fresh("_me")
            self.emit(f"{me} = ~{c} if {om} is None else ({om} & ~{c})")
            self.emit(f"if {me}.any():")
            self._ind += 1
            wd = self.fresh("_wd")
            self.emit(f"rt.mask = {me}")
            self.emit(f"{wd} = int({me}.sum())")
            self.emit(f"rt.mask_count = {wd}")
            self.wexpr = wd
            self.lower_block(else_body)
            self.wexpr = saved_w
            self._ind -= 1
        if not then_body.ops and not else_body.ops:
            self.emit("pass")
        self._ind -= 1
        self.emit("finally:")
        self.emit(f"    rt.mask, rt.mask_count = {om}, {omc}")

    def lower_while(self, op) -> None:
        self.flush_seg()
        body = op.regions[0]
        cnt, lim = self.fresh("_cnt"), self.fresh("_lim")
        vi = self.bind(body.args[0], False)
        self.emit(f"{cnt} = 0")
        self.emit(f"{lim} = rt.config.max_while_iters")
        self.emit("while True:")
        self._ind += 1
        self.emit(f"{vi} = {cnt}")
        self.lower_block(body)
        self.emit(f"{cnt} += 1")
        self.emit(f"if {cnt} > {lim}:")
        self.emit(f"    raise InterpreterError('while loop exceeded ' + "
                  f"str({lim}) + ' iterations')")
        self.emit("if not rt._while_flag:")
        self.emit("    break")
        self._ind -= 1

    def lower_fork(self, op) -> None:
        if self.depth > 0:
            self.lower_bridge(op)
            return
        self.flush_seg()
        want, nt = self.fresh("_want"), self.fresh("_fnt")
        self.emit(f"{want} = int({self.ref(op.operands[0])})")
        self.emit(f"{nt} = {want} if {want} > 0 else rt.config.num_threads")
        body = op.regions[0]
        tid = self.bind(body.args[0], False)
        nth = self.bind(body.args[1], False)
        fb = self.fresh("_fb")
        self.emit(f"def {fb}({tid}, {nth}):")
        self._ind += 1
        self.emit("if False:")
        self.emit("    yield")
        self.lower_block(body)
        self.emit("return")
        self._ind -= 1
        self.emit(f"yield from _rf(rt, {nt}, {fb})")

    def lower_call(self, op) -> None:
        self.flush_seg()
        args = ", ".join(self.ref(v) for v in op.operands)
        args = f"[{args}]"
        call = f"yield from _ca(rt, {self.konst(op)}, {args})"
        if op.result is not None:
            res = self.bind(op.result, None if self.depth > 0 else False)
            self.emit(f"{res} = {call}")
        else:
            self.emit(call)

    # ------------------------------------------------------------------
    def lower_bridge(self, op) -> None:
        """Hand one op (with regions) to the interpreter, op-by-op.

        Free SSA values become an interpreter ``env``; the op executes
        through ``rt._gen_dispatch`` against the same runtime state, so
        results, costs and clock are bit-identical.
        """
        self.flush_seg()
        env = self.fresh("_env")
        items = ", ".join(
            f"{self.konst(v)}: {self.ref(v)}" for v in free_values(op))
        self.emit(f"{env} = {{{items}}}")
        self.emit(f"yield from _bg(rt, {self.konst(op)}, {env})")
        if op.result is not None:
            res = self.bind(op.result, None)
            self.emit(f"{res} = {env}[{self.konst(op.result)}]")


def lower_function(fn) -> tuple[str, dict]:
    """Lower ``fn``; returns ``(python_source, const_globals)``."""
    return Lowerer(fn).build()
