"""IR -> Python lowering for the compiled execution backend.

The :class:`Lowerer` translates one verified IR function into the
source of a generated Python *generator function* executing against the
interpreter instance (``rt``) as shared runtime state:

* straight-line f64/i64 arithmetic becomes native Python/NumPy
  expressions over SSA locals (one local per IR value);
* ``simd``/worksharing loop bodies and ``parallel_for`` bodies are
  vectorized exactly like the interpreter vectorizes them — the
  induction variable is bound to an ``np.arange`` index vector and
  elementwise ops become NumPy array kernels over the Executor's
  buffers;
* chains of single-use elementwise ops are *fused* (see
  :mod:`repro.interp.fusion`): instead of one generated statement (and
  one materialized temporary) per op, a whole chain collapses into one
  fused-kernel expression, often folded directly into the consuming
  store — Dr.Jit-style trace fusion at the source level;
* vectorized ``if`` regions run masked, with the mask published to
  ``rt.mask``/``rt.mask_count`` so memory helpers and interpreter
  bridges see the exact interpreter state; the lowering tracks mask
  state *statically*, so code outside masked branches uses memory
  helpers with no mask handling at all;
* loads/stores whose index vector is statically monotone (induction
  vectors and affine combinations) use endpoint bounds checks and
  slice-copy fast paths instead of ``O(width)`` reductions and
  gather/scatter (helpers ``_ldm``/``_stm``);
* instruction-cost accounting is aggregated statically: each
  straight-line segment contributes one ``_acc(...)`` call instead of
  one ``CostVector`` update per op, with per-lane counts scaled by the
  region width local;
* anything the lowering cannot translate (``spawn`` tasks, ``if`` with
  a condition of statically-unknown vectorization, unknown opcodes)
  falls back *op-by-op* to the interpreter through ``_bg`` bridges that
  materialize the op's free SSA values into an interpreter ``env``.

Bit-identity contract: every emitted expression either is the exact
NumPy ufunc the interpreter would call, or a Python operator whose
IEEE-754 result is identical for the value types that can occur (float
``+``/``-``/``*`` and comparisons).  Division, min/max, pow and the
transcendentals always go through the interpreter's own ufuncs —
Python's operators differ observably there (``ZeroDivisionError``,
NaN propagation, complex results).  Fusion composes those exact
expressions without reassociating anything, so fused and unfused
execution are bit-identical too.

This module is pure code generation; the runtime helpers the generated
source calls live in :mod:`repro.interp.compile`.
"""

from __future__ import annotations

from typing import Optional

from ..ir.opinfo import OP_INFO
from ..ir.values import Constant, Value
from .fusion import (
    FUSE_CHAR_CAP,
    FUSE_OP_CAP,
    ExprFuser,
    count_uses,
    mono_add,
    mono_neg,
    mono_relax,
    mono_scale,
)


class LoweringError(Exception):
    """Raised when a function cannot be lowered; caller falls back to
    the interpreter for the whole function."""


#: Float ops whose Python operator is bit-identical to the interpreter's
#: ufunc for every input (IEEE-754 basic ops; ``fma`` is evaluated as
#: ``a * b + c`` by the interpreter too).
_OPERATOR_TEMPLATES = {
    "add": "({a} + {b})",
    "sub": "({a} - {b})",
    "mul": "({a} * {b})",
    "neg": "(-{a})",
    "abs": "abs({a})",
    "fma": "({a} * {b} + {c})",
}

#: Comparison predicates -> Python operators (same truth value as the
#: interpreter's np.less/np.greater/... for scalars and arrays alike).
_CMP_TEMPLATES = {
    "lt": "<", "le": "<=", "gt": ">", "ge": ">=", "eq": "==", "ne": "!=",
}

#: Cost classes accumulated by segment aggregation, in `_acc` argument
#: order.  COST_FREE contributes nothing (matches CostVector.add_class).
_ACC_CLASSES = ("flop", "div", "special", "int")

#: Opcodes whose monotonicity can be derived from their operands (the
#: index-arithmetic algebra; see repro.interp.fusion).
_MONO_ADD_OPS = {"add", "iadd"}
_MONO_SUB_OPS = {"sub", "isub"}
_MONO_MUL_OPS = {"mul", "imul"}
_MONO_NEG_OPS = {"neg", "ineg"}
_MONO_KEEP_OPS = {"itof", "ftoi"}
_MONO_CLAMP_OPS = {"min", "max", "imin", "imax"}
#: Exact integer arithmetic preserves *strict* monotonicity; everything
#: else (float rounding, ftoi, clamps) demotes to non-strict.
_MONO_STRICT_OPS = {"iadd", "isub", "ineg", "imul"}


def free_values(op) -> list:
    """SSA values used inside ``op`` (or its regions) but defined outside.

    These are exactly the values an interpreter bridge must seed into
    the ``env`` dict before handing the op to ``rt._gen_dispatch``.
    """
    defined = set()
    used = []
    for o in op.walk():
        for region in o.regions:
            defined.update(region.args)
        if o.result is not None:
            defined.add(o.result)
        for v in o.operands:
            if type(v) is not Constant:
                used.append(v)
    return [v for v in dict.fromkeys(used) if v not in defined]


def _literal(c: Constant) -> str:
    # repr() of Python floats round-trips exactly; ints and bools are
    # exact by construction.
    return repr(c.value)


def _const_sign(v) -> Optional[int]:
    """Sign of a numeric Constant, or None for non-constants."""
    if type(v) is Constant and isinstance(v.value, (int, float)):
        return (v.value > 0) - (v.value < 0)
    return None


class Lowerer:
    """Lower one IR function to Python generator-function source."""

    def __init__(self, fn, fusion: bool = True, native=None,
                 bounds=None) -> None:
        self.fn = fn
        self.fusion = fusion
        #: Optional native-kernel emitter (repro.interp.native); when
        #: set, claimable fused chains additionally lower to a C kernel
        #: call with the generated-NumPy expression as runtime fallback.
        self.native = native
        #: Optional static bounds facts (repro.passes.intervals
        #: IntervalAnalysis): accesses the analysis certified in-bounds
        #: drop their open-coded runtime bounds checks; everything else
        #: keeps them.  A certified check can never fire, so eliding it
        #: preserves bit-identity with the interpreter.
        self.bounds = bounds
        #: Value -> CExpr for pending fused values the native emitter
        #: can also render (keys are a subset of ``fuser.pending``).
        self.cpend: dict = {}
        self.lines: list[str] = []
        self._ind = 0
        self._n = 0
        #: Value -> generated local name.
        self.names: dict[Value, str] = {}
        #: Value -> True (lane-varying) / False (uniform) / None (only
        #: decidable at runtime; cost falls back to rt._width).
        self.vary: dict[Value, Optional[bool]] = {}
        #: Value -> monotonicity class of lane-varying values (see
        #: repro.interp.fusion): +1 / -1 monotone, None unknown.
        self.mono: dict[Value, Optional[int]] = {}
        #: Objects the generated code references by global name.
        self.consts: dict[str, object] = {}
        self._const_ids: dict[int, str] = {}
        #: Static vectorization depth (0 = scalar context).
        self.depth = 0
        #: Statically inside a masked (vectorized-if) branch: memory
        #: helpers must consult rt.mask.  Outside, rt.mask is None by
        #: the caller guards in compile._cu / CompiledBackend.
        self.masked = False
        #: Expression for the current per-lane width ("1" when scalar).
        self.wexpr = "1"
        #: Loop-nesting depth (any flavor).  Inside loops, statically
        #: scalar memory accesses are open-coded instead of calling the
        #: ``_ld``/``_st`` helpers: the call overhead itself dominates
        #: element-by-element adjoint sweeps.
        self.loops = 0
        #: Pending straight-line cost: class -> [uniform, varying] counts.
        self._seg: dict[str, list[int]] = {}
        #: Trace fusion state (pending single-use expressions).
        self.fuser = ExprFuser(self)
        self.uses = count_uses(fn) if fusion else {}

    # -- source emission helpers ---------------------------------------
    def emit(self, line: str = "") -> None:
        self.lines.append("    " * self._ind + line if line else "")

    def fresh(self, prefix: str = "_t") -> str:
        self._n += 1
        return f"{prefix}{self._n}"

    def konst(self, obj) -> str:
        name = self._const_ids.get(id(obj))
        if name is None:
            name = f"_k{len(self.consts)}"
            self.consts[name] = obj
            self._const_ids[id(obj)] = name
        return name

    def ref(self, v: Value) -> str:
        """Expression for ``v`` — a pending fused expression (consumed)
        or its local name.  Use only where the result appears exactly
        once in the emitted text."""
        if type(v) is Constant:
            return _literal(v)
        ent = self.fuser.take(v)
        if ent is not None:
            return ent[0]
        try:
            return self.names[v]
        except KeyError:
            raise LoweringError(f"use of value {v!r} before definition")

    def ref_local(self, v: Value) -> str:
        """Like :meth:`ref` but guarantees a local name (materializes a
        pending expression), for templates that repeat the operand."""
        if type(v) is Constant:
            return _literal(v)
        name = self.fuser.materialize(v)
        if name is not None:
            return name
        try:
            return self.names[v]
        except KeyError:
            raise LoweringError(f"use of value {v!r} before definition")

    def bind(self, v: Value, varying: Optional[bool],
             mono: Optional[int] = None) -> str:
        name = self.fresh("v")
        self.names[v] = name
        self.vary[v] = varying
        if mono is not None:
            self.mono[v] = mono
        return name

    def vary_of(self, v: Value) -> Optional[bool]:
        if type(v) is Constant:
            return False
        return self.vary.get(v, False)

    def mono_of(self, v: Value) -> Optional[int]:
        """Monotonicity class of ``v``: 0 for uniform values, +1/-1 for
        monotone index vectors, None when unknown."""
        vr = self.vary_of(v)
        if vr is False:
            return 0
        if vr is None:
            return None
        return self.mono.get(v)

    def _join_vary(self, operands) -> Optional[bool]:
        out: Optional[bool] = False
        for v in operands:
            x = self.vary_of(v)
            if x is True:
                return True
            if x is None:
                out = None
        return out

    # -- cost segments -------------------------------------------------
    def seg_add(self, cost_class: str, varying: bool) -> None:
        if cost_class == "free":
            return
        cell = self._seg.setdefault(cost_class, [0, 0])
        cell[1 if varying else 0] += 1

    def flush_seg(self) -> None:
        if not self._seg:
            return
        args = []
        for cls in _ACC_CLASSES:
            u, vr = self._seg.get(cls, (0, 0))
            if vr and self.wexpr != "1":
                args.append(f"{u} + {vr}*{self.wexpr}" if u else
                            f"{vr}*{self.wexpr}")
            else:
                args.append(str(u + vr))
        self._seg.clear()
        if any(a != "0" for a in args):
            self.emit(f"_acc(rt, {', '.join(args)})")

    def flush_all(self) -> None:
        """Materialize pending fused expressions and flush the cost
        segment — called at every control-flow boundary."""
        self.fuser.flush()
        self.flush_seg()

    # -- native kernel claims ------------------------------------------
    def _emit_native_assign(self, res: str, cexp, pyexpr: str) -> None:
        """Bind ``res`` through a native kernel call, keeping the exact
        generated-NumPy expression as the runtime fallback (the wrapper
        returns None when a buffer does not match its static claim)."""
        gname, args = self.native.kernel_for(cexp)
        call_args = "".join(", " + a for a in args)
        self.emit(f"{res} = {gname}({self.wexpr}{call_args})")
        self.emit(f"if {res} is None: {res} = {pyexpr}")

    def native_materialize(self, value, expr: str) -> Optional[str]:
        """Claim hook for :meth:`ExprFuser.materialize`: when the
        pending value also carries a worthwhile CExpr, bind it through
        the native kernel call instead of a plain assignment.  Returns
        the bound name, or None to use the plain path."""
        cexp = self.cpend.pop(value, None)
        if (cexp is None or self.native is None
                or not self.native.worthwhile(cexp)):
            return None
        name = self.fresh("v")
        self.names[value] = name
        self._emit_native_assign(name, cexp, expr)
        return name

    def native_try_claim(self, v) -> None:
        """Force a pending value through the claim path when worthwhile
        — used where the consumer would otherwise inline the fused
        python chain into a memory-helper call."""
        if self.native is None:
            return
        cexp = self.cpend.get(v)
        if cexp is not None and self.native.worthwhile(cexp):
            self.fuser.materialize(v)

    # ------------------------------------------------------------------
    def build(self) -> tuple[str, dict, "FusionStats"]:
        """Return ``(source, consts, fusion_stats)`` for this function."""
        fn = self.fn
        arg_names = [self.bind(a, False) for a in fn.args]
        head = f"def _compiled(rt{''.join(', ' + a for a in arg_names)}):"
        self.emit(head)
        self._ind += 1
        self.emit("if False:")
        self.emit("    yield")
        body_start = len(self.lines)
        self.lower_block(fn.body, top_level=True)
        self.flush_all()
        if len(self.lines) == body_start:
            self.emit("pass")
        stats = self.fuser.stats
        stats.fused_ops = max(0, stats.ops - stats.kernels)
        return "\n".join(self.lines) + "\n", self.consts, stats

    # ------------------------------------------------------------------
    def lower_block(self, block, top_level: bool = False) -> None:
        # Invariant: entered with no pending fused expressions (every
        # region lowerer calls flush_all before emitting its header).
        start = len(self.lines)
        for op in block.ops:
            if op.opcode == "return":
                if top_level:
                    val = self.ref(op.operands[0]) if op.operands else "None"
                    self.fuser.pending.clear()  # dead beyond the return
                    self.cpend.clear()
                    self.flush_seg()
                    self.emit(f"return {val}")
                else:
                    self.fuser.pending.clear()
                    self.cpend.clear()
                    self.flush_seg()
                    if len(self.lines) == start:
                        self.emit("pass")
                # A nested return just ends this block in the
                # interpreter (region executors discard the signal), so
                # the remaining ops of the block are dead either way.
                return
            self.lower_op(op)
        self.flush_all()
        if len(self.lines) == start:
            self.emit("pass")

    def lower_op(self, op) -> None:
        oc = op.opcode
        info = OP_INFO.get(oc)
        if info is not None:
            self.lower_compute(op, info)
        elif oc == "load":
            self.lower_load(op)
        elif oc == "store":
            self.lower_store(op)
        elif oc == "atomic":
            via_red = op.attrs.get("via") == "reduction"
            proven = self._bounds_proven(op)
            if self.masked:
                self.emit(f"_atk(rt, {op.attrs['kind']!r}, {via_red!r}, "
                          f"{self.ref(op.operands[0])}, "
                          f"{self.ref(op.operands[1])}, "
                          f"{self.ref(op.operands[2])})")
            else:
                self.fuser.stats.fast_atomics += 1
                val_v, ptr_v, idx_v = op.operands
                if (self.vary_of(ptr_v) is False
                        and self.vary_of(idx_v) is False
                        and self.vary_of(val_v) is True):
                    # Scalar target accumulating a lane vector (the
                    # adjoint of a broadcast read): open-code the
                    # ordered ``accumulate`` fold from ``_at``.
                    uf = {"add": "np.add", "min": "np.minimum",
                          "max": "np.maximum"}[op.attrs["kind"]]
                    v = self.ref_local(val_v)
                    p = self.ref_local(ptr_v)
                    i = self.ref_local(idx_v)
                    b, x, dd, w = (self.fresh("_b"), self.fresh("_x"),
                                   self.fresh("_d"), self.fresh("_w"))
                    self.emit(f"if type({v}) is np.ndarray "
                              f"and {v}.ndim == 1:")
                    self._ind += 1
                    self.emit(f"{b} = {p}.buffer")
                    self.emit(f"if {b}.freed: {b}.check_alive()")
                    self.emit(f"{x} = {p}.offset + {i}")
                    self.emit(f"{dd} = {b}.data")
                    if proven:
                        self.fuser.stats.checks_elided += 1
                    else:
                        self.emit(f"if {x} < 0 or {x} >= {dd}.size: "
                                  f"Memory._check_bounds({b}, {x})")
                    fold = (f"{uf}.accumulate(np.concatenate("
                            f"(({dd}[{x}:{x} + 1]), {v})))[-1]")
                    if self.native is not None:
                        # Ordered sequential fold in C; the helper
                        # returns None when the buffers do not match
                        # its static claim and the accumulate runs.
                        fname = self.native.fold_name(op.attrs["kind"],
                                                      proven)
                        r = self.fresh("_r")
                        self.emit(f"{r} = {fname}({dd}, {x}, {v})")
                        self.emit(f"if {r} is None: {dd}[{x}] = {fold}")
                        self.emit(f"else: {dd}[{x}] = {r}")
                    else:
                        self.emit(f"{dd}[{x}] = {fold}")
                    self.emit(f"{w} = {v}.size if {v}.size > 1 else 1")
                    if via_red:
                        self.emit(f"rt.cost.reduction_ops += {w}")
                        self.emit(f"rt.cost.store_bytes += {w} * 8")
                    else:
                        self.emit(f"rt.cost.atomic_ops += {w}")
                        self.emit(f"rt.cost.store_bytes += {w} * 8")
                        self.emit(f"rt.cost.load_bytes += {w} * 8")
                    self._ind -= 1
                    self.emit(f"else: _at(rt, {op.attrs['kind']!r}, "
                              f"{via_red!r}, {v}, {p}, {i}, 0)")
                    return
                d = mono_add(self.mono_of(ptr_v), self.mono_of(idx_v))
                self.emit(f"_at(rt, {op.attrs['kind']!r}, {via_red!r}, "
                          f"{self.ref(val_v)}, "
                          f"{self.ref(ptr_v)}, "
                          f"{self.ref(idx_v)}, {d or 0})")
        elif oc == "alloc":
            vec = self.depth > 0
            res = self.bind(op.result, vec, 1 if vec else 0)
            self.emit(f"{res} = _al(rt, {self.konst(op)}, "
                      f"{self.ref(op.operands[0])})")
        elif oc == "ptradd":
            base, idx = op.operands
            res = self.bind(op.result, self._join_vary(op.operands),
                            mono_add(self.mono_of(base), self.mono_of(idx)))
            self.emit(f"{res} = {self.ref(base)}"
                      f".added({self.ref(idx)})")
            self.seg_add("int", False)
        elif oc == "memset":
            self.emit(f"_ms(rt, {self.ref(op.operands[0])}, "
                      f"{self.ref(op.operands[1])}, "
                      f"{self.ref(op.operands[2])})")
        elif oc == "memcpy":
            self.emit(f"_mc(rt, {self.ref(op.operands[0])}, "
                      f"{self.ref(op.operands[1])}, "
                      f"{self.ref(op.operands[2])})")
        elif oc == "free":
            self.emit(f"rt.memory.free({self.ref(op.operands[0])})")
        elif oc == "cache_create":
            self.emit(f"{self.bind(op.result, False)} = DynCache()")
        elif oc == "cache_push":
            self.emit(f"{self.ref(op.operands[0])}.push("
                      f"{self.ref(op.operands[1])})")
            self.emit("rt.cost.add_store(8)")
        elif oc == "cache_pop":
            self.emit(f"{self.bind(op.result, None)} = "
                      f"{self.ref(op.operands[0])}.pop()")
            self.emit("rt.cost.add_load(8)")
        elif oc == "for":
            self.lower_for(op)
        elif oc == "parallel_for":
            self.lower_parallel_for(op)
        elif oc == "if":
            self.lower_if(op)
        elif oc == "while":
            self.lower_while(op)
        elif oc == "fork":
            self.lower_fork(op)
        elif oc == "call":
            self.lower_call(op)
        elif oc == "barrier":
            self.flush_all()
            self.emit("if rt._fork_depth == 0:")
            self.emit("    raise InterpreterError("
                      "'barrier outside an executing fork region')")
            self.emit("yield BarrierEvent()")
        elif oc == "condition":
            c = self.ref_local(op.operands[0])
            self.emit(f"if isinstance({c}, np.ndarray) and {c}.size > 1:")
            self.emit("    raise InterpreterError('data-dependent while "
                      "inside a vectorized region')")
            self.emit(f"rt._while_flag = bool({c})")
        elif oc == "spawn":
            self.lower_bridge(op)
        else:
            raise LoweringError(f"no lowering for opcode {oc!r}")

    # ------------------------------------------------------------------
    def _operand(self, v: Value) -> tuple[str, int]:
        """(expression, fused-op count) for one compute operand,
        inlining a pending fused expression when ``v`` carries one."""
        if type(v) is Constant:
            return _literal(v), 0
        ent = self.fuser.take(v)
        if ent is not None:
            return ent
        try:
            return self.names[v], 0
        except KeyError:
            raise LoweringError(f"use of value {v!r} before definition")

    def _result_mono(self, oc, op, operand_monos) -> Optional[int]:
        """Monotonicity of a compute result (index-arithmetic algebra)."""
        if oc in _MONO_ADD_OPS:
            m = mono_add(operand_monos[0], operand_monos[1])
        elif oc in _MONO_SUB_OPS:
            m = mono_add(operand_monos[0], mono_neg(operand_monos[1]))
        elif oc in _MONO_NEG_OPS:
            m = mono_neg(operand_monos[0])
        elif oc in _MONO_KEEP_OPS:
            m = operand_monos[0]
        elif oc in _MONO_MUL_OPS:
            a, b = op.operands
            sa, sb = _const_sign(a), _const_sign(b)
            if sa is not None:
                m = mono_scale(operand_monos[1], sa)
            elif sb is not None:
                m = mono_scale(operand_monos[0], sb)
            else:
                m = None
        elif oc in _MONO_CLAMP_OPS:
            # min/max against a uniform bound preserves direction but
            # plateaus at the bound (never strict).
            ma, mb = operand_monos
            if ma == 0:
                m = mb
            elif mb == 0:
                m = ma
            else:
                m = ma if ma == mb else None
        else:
            return None
        return m if oc in _MONO_STRICT_OPS else mono_relax(m)

    def lower_compute(self, op, info) -> None:
        oc = op.opcode
        varying = self._join_vary(op.operands)
        cexp = None
        if (self.native is not None and varying is True
                and self.depth > 0 and not self.masked):
            # Compose a C rendering in parallel with the python one.
            # Composition consumes the operands' pending CExprs; the
            # python pending entries are untouched, so a failed compose
            # only breaks the *claim* chain, never the fused lowering.
            cexp = self.native.compose(op, self)
        nops = 1
        if oc == "cmp":
            a, na = self._operand(op.operands[0])
            b, nb = self._operand(op.operands[1])
            nops += na + nb
            pyop = _CMP_TEMPLATES[op.attrs["pred"]]
            expr = f"({a} {pyop} {b})"
        elif oc == "select":
            cv = self.vary_of(op.operands[0])
            if cv is True:
                refs, counts = zip(*(self._operand(v) for v in op.operands))
                nops += sum(counts)
                expr = f"np.where({refs[0]}, {refs[1]}, {refs[2]})"
            elif cv is False:
                refs, counts = zip(*(self._operand(v) for v in op.operands))
                nops += sum(counts)
                expr = f"({refs[1]} if {refs[0]} else {refs[2]})"
            else:
                # The runtime-dispatch template repeats every operand,
                # so they must be materialized locals.
                refs = [self.ref_local(v) for v in op.operands]
                where = f"np.where({refs[0]}, {refs[1]}, {refs[2]})"
                pick = f"({refs[1]} if {refs[0]} else {refs[2]})"
                expr = (f"({where} if isinstance({refs[0]}, np.ndarray) "
                        f"else {pick})")
            # A select between a varying and a uniform arm under a
            # uniform condition has runtime-dependent width.
            if varying is not True and cv is not True and \
                    self._join_vary(op.operands[1:]) is not False:
                varying = None
        elif oc in _OPERATOR_TEMPLATES:
            parts = [self._operand(v) for v in op.operands]
            nops += sum(n for _, n in parts)
            refs = [e for e, _ in parts]
            expr = _OPERATOR_TEMPLATES[oc].format(
                a=refs[0],
                b=refs[1] if len(refs) > 1 else "",
                c=refs[2] if len(refs) > 2 else "")
        else:
            # Everything else calls the interpreter's own evaluate
            # function (NumPy ufunc or array-aware lambda) — identical
            # numerics by construction.
            parts = [self._operand(v) for v in op.operands]
            nops += sum(n for _, n in parts)
            refs = [e for e, _ in parts]
            expr = f"{self.konst(info.evaluate)}({', '.join(refs)})"
        mono = (self._result_mono(oc, op, [self.mono_of(v)
                                           for v in op.operands])
                if varying is True else None)
        stats = self.fuser.stats
        stats.ops += 1
        if varying is None:
            res = self.bind(op.result, varying, mono)
            self.emit(f"{res} = {expr}")
            stats.kernels += 1
            self.flush_seg()
            self.emit(f"_aw(rt, {info.cost!r}, {res})")
            return
        self.seg_add(info.cost, varying)
        if (self.fusion and self.uses.get(op.result, 0) == 1
                and nops <= FUSE_OP_CAP and len(expr) <= FUSE_CHAR_CAP):
            # Single consumer: defer as a pending fused expression.
            self.vary[op.result] = varying
            if mono is not None:
                self.mono[op.result] = mono
            if cexp is not None:
                self.cpend[op.result] = cexp
            self.fuser.defer(op.result, expr, nops)
            return
        res = self.bind(op.result, varying, mono)
        if cexp is not None and self.native.worthwhile(cexp):
            self._emit_native_assign(res, cexp, expr)
        else:
            self.emit(f"{res} = {expr}")
        stats.kernels += 1

    # ------------------------------------------------------------------
    def _bounds_proven(self, op) -> bool:
        """Classify one memory-access op against the static bounds
        facts (when available), keeping the proven/unproven tallies,
        and return whether its runtime bounds check may be elided."""
        facts = self.bounds
        if facts is None:
            return False
        stats = self.fuser.stats
        if facts.proven(op):
            stats.bounds_proven += 1
            return True
        stats.bounds_unproven += 1
        return False

    def _emit_scalar_access(self, ptr_v, idx_v, proven: bool = False
                            ) -> tuple:
        """Open-code the shared prefix of a statically-scalar memory
        access (buffer resolve, liveness, address, bounds), mirroring
        the scalar fast path of ``compile._ld``/``_st`` statement by
        statement.  Returns ``(buf, addr, data)`` local names.

        ``proven`` sites (statically certified in-bounds) skip the
        bounds check entirely — the check could never fire there."""
        p = self.ref_local(ptr_v)
        i = self.ref(idx_v)
        b, x, dd = self.fresh("_b"), self.fresh("_x"), self.fresh("_d")
        self.emit(f"{b} = {p}.buffer")
        self.emit(f"if {b}.freed: {b}.check_alive()")
        self.emit(f"{x} = {p}.offset + {i}")
        self.emit(f"{dd} = {b}.data")
        if proven:
            self.fuser.stats.checks_elided += 1
        else:
            self.emit(f"if {x} < 0 or {x} >= {dd}.size: "
                      f"Memory._check_bounds({b}, {x})")
        return b, x, dd

    def lower_load(self, op) -> None:
        ptr_v, idx_v = op.operands
        varying = self._join_vary(op.operands)
        proven = self._bounds_proven(op)
        scal = (self.vary_of(ptr_v) is False
                and self.vary_of(idx_v) is False)
        if scal and self.loops and not self.masked:
            # Statically scalar inside a loop: open-code the access
            # (element-by-element adjoint sweeps are bound on the
            # per-access call overhead, not the numerics).
            b, x, dd = self._emit_scalar_access(ptr_v, idx_v, proven)
            res = self.bind(op.result, False)
            self.emit(f"{res} = {dd}[{x}]")
            self.emit(f"if {b}.stream: rt.cost.stream_bytes += 8")
            self.emit("else: rt.cost.load_bytes += 8")
            return
        vec = (self.vary_of(ptr_v) is True or self.vary_of(idx_v) is True)
        d = mono_add(self.mono_of(ptr_v), self.mono_of(idx_v))
        if not self.masked and vec and (d == 2 or d == -2):
            # Strictly-monotone vector gather, open-coded (the call
            # overhead of ``_ldm`` rivals the slice copy itself at
            # typical chunk widths).  Same observable effects as the
            # helper, statement by statement.
            self.fuser.stats.mono_loads += 1
            p = self.ref_local(ptr_v)
            i = self.ref_local(idx_v)
            res = self.bind(op.result, varying)
            o, b, x, dd = (self.fresh("_o"), self.fresh("_b"),
                           self.fresh("_x"), self.fresh("_d"))
            n, lo, hi, w = (self.fresh("_n"), self.fresh("_lo"),
                            self.fresh("_hi"), self.fresh("_w"))
            self.emit(f"{o} = {p}.offset")
            self.emit(f"{x} = {i} if type({o}) is int and not {o} "
                      f"else {o} + {i}")
            self.emit(f"if type({x}) is np.ndarray and {x}.ndim == 1 "
                      f"and {x}.size:")
            self._ind += 1
            self.emit(f"{b} = {p}.buffer")
            self.emit(f"if {b}.freed: {b}.check_alive()")
            self.emit(f"{dd} = {b}.data")
            self.emit(f"{n} = {x}.size")
            if d > 0:
                self.emit(f"{lo} = int({x}[0]); {hi} = int({x}[{n} - 1])")
            else:
                self.emit(f"{lo} = int({x}[{n} - 1]); {hi} = int({x}[0])")
            if proven:
                self.fuser.stats.checks_elided += 1
            else:
                self.emit(f"if {lo} < 0 or {hi} >= {dd}.size: "
                          f"Memory._check_bounds({b}, {x})")
            self.emit(f"if {hi} - {lo} == {n} - 1:")
            if d > 0:
                self.emit(f"    {res} = {dd}[{lo}:{hi} + 1].copy()")
            else:
                self.emit(f"    {res} = {dd}[{lo}:{hi} + 1][::-1].copy()")
            if self.native is not None:
                # Non-contiguous monotone span: C gather beats NumPy
                # fancy indexing; bounds were checked above via the
                # endpoint lanes (monotone extremes are endpoints) or
                # statically certified by the interval analysis.
                self.emit("else:")
                self._ind += 1
                self.emit(f"{res} = {self.native.gather_name(proven)}"
                          f"({dd}, {x})")
                self.emit(f"if {res} is None: {res} = {dd}[{x}]")
                self._ind -= 1
            else:
                self.emit(f"else: {res} = {dd}[{x}]")
            self.emit(f"{w} = {n} if {n} > 1 else 1")
            self.emit(f"if {b}.stream: rt.cost.stream_bytes += {w} * 8")
            self.emit(f"else: rt.cost.load_bytes += {w} * 8")
            self._ind -= 1
            self.emit(f"else: {res} = _ld(rt, {p}, {i})")
            return
        res = self.bind(op.result, varying)
        if not self.masked and vec and d:
            self.fuser.stats.mono_loads += 1
            helper = "_ldm"
            if proven:
                helper = "_ldmu"
                self.fuser.stats.checks_elided += 1
            self.emit(f"{res} = {helper}(rt, {self.ref(ptr_v)}, "
                      f"{self.ref(idx_v)}, {d})")
        else:
            helper = "_ldk" if self.masked else "_ld"
            self.emit(f"{res} = {helper}(rt, {self.ref(ptr_v)}, "
                      f"{self.ref(idx_v)})")

    def lower_store(self, op) -> None:
        val_v, ptr_v, idx_v = op.operands
        proven = self._bounds_proven(op)
        scal = (self.vary_of(val_v) is False
                and self.vary_of(ptr_v) is False
                and self.vary_of(idx_v) is False)
        # A worthwhile pending chain claims through the native kernel
        # here; otherwise ref() inlines it into the store as before.
        self.native_try_claim(val_v)
        val = self.ref(val_v)  # may inline a whole fused chain
        if scal and self.loops and not self.masked:
            b, x, dd = self._emit_scalar_access(ptr_v, idx_v, proven)
            self.emit(f"{dd}[{x}] = {val}")
            self.emit(f"if {b}.stream: rt.cost.stream_bytes += 8")
            self.emit("else: rt.cost.store_bytes += 8")
            return
        vec = (self.vary_of(ptr_v) is True or self.vary_of(idx_v) is True)
        d = mono_add(self.mono_of(ptr_v), self.mono_of(idx_v))
        if not self.masked and vec and (d == 2 or d == -2):
            # Strictly-monotone vector scatter, open-coded (see the
            # matching load path); preserves NumPy last-wins fancy
            # semantics exactly like ``_stm``.
            self.fuser.stats.mono_stores += 1
            v = self.fresh("_v")
            self.emit(f"{v} = {val}")
            p = self.ref_local(ptr_v)
            i = self.ref_local(idx_v)
            o, b, x, dd = (self.fresh("_o"), self.fresh("_b"),
                           self.fresh("_x"), self.fresh("_d"))
            n, lo, hi, w = (self.fresh("_n"), self.fresh("_lo"),
                            self.fresh("_hi"), self.fresh("_w"))
            wi = self.fresh("_wi")
            self.emit(f"{o} = {p}.offset")
            self.emit(f"{x} = {i} if type({o}) is int and not {o} "
                      f"else {o} + {i}")
            self.emit(f"if type({x}) is np.ndarray and {x}.ndim == 1 "
                      f"and {x}.size:")
            self._ind += 1
            self.emit(f"{b} = {p}.buffer")
            self.emit(f"if {b}.freed: {b}.check_alive()")
            self.emit(f"{dd} = {b}.data")
            self.emit(f"{n} = {x}.size")
            if d > 0:
                self.emit(f"{lo} = int({x}[0]); {hi} = int({x}[{n} - 1])")
            else:
                self.emit(f"{lo} = int({x}[{n} - 1]); {hi} = int({x}[0])")
            if proven:
                self.fuser.stats.checks_elided += 1
            else:
                self.emit(f"if {lo} < 0 or {hi} >= {dd}.size: "
                          f"Memory._check_bounds({b}, {x})")
            self.emit(f"if {hi} - {lo} == {n} - 1 and "
                      f"(type({v}) is not np.ndarray or ({v}.ndim == 1 "
                      f"and ({v}.size == {n} or {v}.size == 1))):")
            self._ind += 1
            if d > 0:
                self.emit(f"{dd}[{lo}:{hi} + 1] = {v}")
            else:
                self.emit(f"if type({v}) is np.ndarray and "
                          f"{v}.size == {n} and {n} > 1:")
                self.emit(f"    {dd}[{lo}:{hi} + 1] = {v}[::-1]")
                self.emit(f"else: {dd}[{lo}:{hi} + 1] = {v}")
            self._ind -= 1
            if self.native is not None:
                # Strictly monotone => duplicate-free, so NumPy's
                # last-wins fancy-scatter order is unobservable and
                # the C loop is exact.
                self.emit("else:")
                self._ind += 1
                self.emit(f"if {self.native.scatter_name(proven)}"
                          f"({dd}, {x}, {v}) is None: {dd}[{x}] = {v}")
                self._ind -= 1
            else:
                self.emit(f"else: {dd}[{x}] = {v}")
            self.emit(f"{w} = {v}.size if type({v}) is np.ndarray "
                      f"and {v}.size > 1 else 1")
            self.emit(f"{wi} = {i}.size if type({i}) is np.ndarray "
                      f"and {i}.size > 1 else 1")
            self.emit(f"if {wi} > {w}: {w} = {wi}")
            self.emit(f"if {b}.stream: rt.cost.stream_bytes += {w} * 8")
            self.emit(f"else: rt.cost.store_bytes += {w} * 8")
            self._ind -= 1
            self.emit(f"else: _st(rt, {v}, {p}, {i})")
            return
        if not self.masked and vec and d:
            self.fuser.stats.mono_stores += 1
            helper = "_stm"
            if proven:
                helper = "_stmu"
                self.fuser.stats.checks_elided += 1
            self.emit(f"{helper}(rt, {val}, {self.ref(ptr_v)}, "
                      f"{self.ref(idx_v)}, {d})")
        else:
            helper = "_stk" if self.masked else "_st"
            self.emit(f"{helper}(rt, {val}, {self.ref(ptr_v)}, "
                      f"{self.ref(idx_v)})")

    # ------------------------------------------------------------------
    def _lower_vector_body(self, body, ivar_name: str) -> None:
        """Emit the simd_depth/simd_width bookkeeping + vectorized body.

        The caller has already emitted the ``np.arange`` assignment for
        the induction vector; indentation is inside the enclosing
        ``if trips:`` guard.
        """
        w = self.fresh("_W")
        sw = self.fresh("_sw")
        self.emit(f"{w} = {ivar_name}.size")
        self.emit("rt.simd_depth += 1")
        self.emit(f"{sw} = rt.simd_width")
        self.emit(f"rt.simd_width = {w}")
        self.emit("try:")
        self.emit("    with np.errstate(all='ignore'):")
        saved_depth, saved_w = self.depth, self.wexpr
        self.depth, self.wexpr = self.depth + 1, w
        self._ind += 2
        self.loops += 1
        self.lower_block(body)
        self.loops -= 1
        self._ind -= 2
        self.depth, self.wexpr = saved_depth, saved_w
        self.emit("finally:")
        self.emit("    rt.simd_depth -= 1")
        self.emit(f"    rt.simd_width = {sw}")

    def lower_for(self, op) -> None:
        self.flush_all()
        lb, ub, st = (self.fresh("_lb"), self.fresh("_ub"), self.fresh("_st"))
        self.emit(f"{lb} = int({self.ref(op.operands[0])})")
        self.emit(f"{ub} = int({self.ref(op.operands[1])})")
        self.emit(f"{st} = int({self.ref(op.operands[2])})")
        self.emit(f"if {st} <= 0:")
        self.emit("    raise InterpreterError('for step must be positive')")
        body = op.regions[0]
        ivar = body.args[0]
        simd = bool(op.attrs.get("simd")) and self.depth == 0
        backwards = bool(op.attrs.get("reverse_order"))

        if op.attrs.get("workshare"):
            lo, hi = self.fresh("_lo"), self.fresh("_hi")
            self.emit("if rt.current_thread is None:")
            self.emit("    raise InterpreterError("
                      "'workshare loop outside fork region')")
            self.emit(f"{lo}, {hi} = chunk_bounds({lb}, {ub}, {st}, "
                      f"rt.current_thread, rt._fork_width)")
            if simd:
                vi = self.bind(ivar, True, -2 if backwards else 2)
                self.emit(f"if {hi} > {lo}:")
                self._ind += 1
                arange = f"np.arange({lo}, {hi}, {st}, dtype=np.int64)"
                self.emit(f"{vi} = {arange}[::-1]" if backwards
                          else f"{vi} = {arange}")
                self._lower_vector_body(body, vi)
                self._ind -= 1
            else:
                vi = self.bind(ivar, False)
                rng = f"range({lo}, {hi}, {st})"
                if backwards:
                    rng = f"reversed({rng})"
                self.emit(f"for {vi} in {rng}:")
                self._ind += 1
                self.loops += 1
                self.lower_block(body)
                self.loops -= 1
                self._ind -= 1
            if not op.attrs.get("nowait"):
                self.emit("yield BarrierEvent()")
        elif simd:
            # reverse_order is only honored on workshare loops (matching
            # the interpreter) — plain simd induction is non-decreasing.
            vi = self.bind(ivar, True, 2)
            self.emit(f"if {ub} > {lb}:")
            self._ind += 1
            self.emit(f"{vi} = np.arange({lb}, {ub}, {st}, dtype=np.int64)")
            self._lower_vector_body(body, vi)
            self._ind -= 1
        else:
            # Serial loop: uniform induction variable at any depth.
            vi = self.bind(ivar, False)
            self.emit(f"for {vi} in range({lb}, {ub}, {st}):")
            self._ind += 1
            self.loops += 1
            self.lower_block(body)
            self.loops -= 1
            self._ind -= 1

    def lower_parallel_for(self, op) -> None:
        if self.depth > 0:
            self.lower_bridge(op)
            return
        self.flush_all()
        lb, ub = self.fresh("_lb"), self.fresh("_ub")
        self.emit(f"{lb} = int({self.ref(op.operands[0])})")
        self.emit(f"{ub} = int({self.ref(op.operands[1])})")
        nt = self.fresh("_nt")
        self.emit(f"{nt} = rt.config.num_threads")
        self.emit("rt.flush_serial()")
        sc, sth = self.fresh("_sc"), self.fresh("_sth")
        sm, smc = self.fresh("_sm"), self.fresh("_smc")
        tcs, t, c = self.fresh("_tcs"), self.fresh("_pt"), self.fresh("_pc")
        lo, hi = self.fresh("_lo"), self.fresh("_hi")
        self.emit(f"{sc} = rt.cost")
        self.emit(f"{sth} = rt.current_thread")
        self.emit(f"{sm}, {smc} = rt.mask, rt.mask_count")
        self.emit("rt.mask, rt.mask_count = None, 0")
        self.emit("rt._noyield += 1")
        self.emit(f"{tcs} = []")
        self.emit("try:")
        self._ind += 1
        self.emit(f"for {t} in range({nt}):")
        self._ind += 1
        self.emit(f"{lo}, {hi} = chunk_bounds({lb}, {ub}, 1, {t}, {nt})")
        self.emit(f"{c} = CostVector()")
        self.emit(f"rt.cost = {c}")
        self.emit(f"rt.current_thread = {t}")
        body = op.regions[0]
        vi = self.bind(body.args[0], True, 2)
        self.emit(f"if {hi} > {lo}:")
        self._ind += 1
        self.emit(f"{vi} = np.arange({lo}, {hi}, dtype=np.int64)")
        self._lower_vector_body(body, vi)
        self._ind -= 1
        self.emit(f"{tcs}.append({c})")
        self.emit(f"rt.raw_total.merge({c})")
        self._ind -= 2
        self.emit("finally:")
        self._ind += 1
        self.emit("rt._noyield -= 1")
        self.emit(f"rt.cost = {sc}")
        self.emit(f"rt.current_thread = {sth}")
        self.emit(f"rt.mask, rt.mask_count = {sm}, {smc}")
        self._ind -= 1
        self.emit(f"rt.clock += rt.machine.parallel_region_time("
                  f"{tcs}, {nt}, rt.procs_on_node)")

    def lower_if(self, op) -> None:
        cv = self.vary_of(op.operands[0])
        if cv is None:
            self.lower_bridge(op)
            return
        self.flush_all()
        then_body, else_body = op.regions
        if cv is False:
            c = self.ref(op.operands[0])
            self.emit(f"if {c}:")
            self._ind += 1
            if then_body.ops:
                self.lower_block(then_body)
            else:
                self.emit("pass")
            self._ind -= 1
            if else_body.ops:
                self.emit("else:")
                self._ind += 1
                self.lower_block(else_body)
                self._ind -= 1
            return
        # Masked (vectorized) if — mirrors Interpreter._exec_if,
        # publishing the live mask to rt so loads/stores/bridges see it.
        # The condition is referenced by both mask expressions, so it
        # must be a materialized local.
        c = self.ref_local(op.operands[0])
        om, omc = self.fresh("_om"), self.fresh("_omc")
        self.emit(f"{om}, {omc} = rt.mask, rt.mask_count")
        self.emit("try:")
        self._ind += 1
        saved_w = self.wexpr
        saved_masked = self.masked
        self.masked = True
        if then_body.ops:
            mt = self.fresh("_mt")
            self.emit(f"{mt} = {c} if {om} is None else ({om} & {c})")
            self.emit(f"if {mt}.any():")
            self._ind += 1
            wd = self.fresh("_wd")
            self.emit(f"rt.mask = {mt}")
            self.emit(f"{wd} = int({mt}.sum())")
            self.emit(f"rt.mask_count = {wd}")
            self.wexpr = wd
            self.lower_block(then_body)
            self.wexpr = saved_w
            self._ind -= 1
        if else_body.ops:
            me = self.fresh("_me")
            self.emit(f"{me} = ~{c} if {om} is None else ({om} & ~{c})")
            self.emit(f"if {me}.any():")
            self._ind += 1
            wd = self.fresh("_wd")
            self.emit(f"rt.mask = {me}")
            self.emit(f"{wd} = int({me}.sum())")
            self.emit(f"rt.mask_count = {wd}")
            self.wexpr = wd
            self.lower_block(else_body)
            self.wexpr = saved_w
            self._ind -= 1
        self.masked = saved_masked
        if not then_body.ops and not else_body.ops:
            self.emit("pass")
        self._ind -= 1
        self.emit("finally:")
        self.emit(f"    rt.mask, rt.mask_count = {om}, {omc}")

    def lower_while(self, op) -> None:
        self.flush_all()
        body = op.regions[0]
        cnt, lim = self.fresh("_cnt"), self.fresh("_lim")
        vi = self.bind(body.args[0], False)
        self.emit(f"{cnt} = 0")
        self.emit(f"{lim} = rt.config.max_while_iters")
        self.emit("while True:")
        self._ind += 1
        self.emit(f"{vi} = {cnt}")
        self.loops += 1
        self.lower_block(body)
        self.loops -= 1
        self.emit(f"{cnt} += 1")
        self.emit(f"if {cnt} > {lim}:")
        self.emit(f"    raise InterpreterError('while loop exceeded ' + "
                  f"str({lim}) + ' iterations')")
        self.emit("if not rt._while_flag:")
        self.emit("    break")
        self._ind -= 1

    def lower_fork(self, op) -> None:
        if self.depth > 0:
            self.lower_bridge(op)
            return
        self.flush_all()
        want, nt = self.fresh("_want"), self.fresh("_fnt")
        self.emit(f"{want} = int({self.ref(op.operands[0])})")
        self.emit(f"{nt} = {want} if {want} > 0 else rt.config.num_threads")
        body = op.regions[0]
        tid = self.bind(body.args[0], False)
        nth = self.bind(body.args[1], False)
        fb = self.fresh("_fb")
        self.emit(f"def {fb}({tid}, {nth}):")
        self._ind += 1
        self.emit("if False:")
        self.emit("    yield")
        self.lower_block(body)
        self.emit("return")
        self._ind -= 1
        self.emit(f"yield from _rf(rt, {nt}, {fb})")

    def lower_call(self, op) -> None:
        self.flush_all()
        args = ", ".join(self.ref(v) for v in op.operands)
        args = f"[{args}]"
        call = f"yield from _ca(rt, {self.konst(op)}, {args})"
        if op.result is not None:
            res = self.bind(op.result, None if self.depth > 0 else False)
            self.emit(f"{res} = {call}")
        else:
            self.emit(call)

    # ------------------------------------------------------------------
    def lower_bridge(self, op) -> None:
        """Hand one op (with regions) to the interpreter, op-by-op.

        Free SSA values become an interpreter ``env``; the op executes
        through ``rt._gen_dispatch`` against the same runtime state, so
        results, costs and clock are bit-identical.
        """
        self.flush_all()
        env = self.fresh("_env")
        items = ", ".join(
            f"{self.konst(v)}: {self.ref(v)}" for v in free_values(op))
        self.emit(f"{env} = {{{items}}}")
        self.emit(f"yield from _bg(rt, {self.konst(op)}, {env})")
        if op.result is not None:
            res = self.bind(op.result, None)
            self.emit(f"{res} = {env}[{self.konst(op.result)}]")


def lower_function(fn, fusion: bool = True, native=None,
                   bounds=None) -> tuple:
    """Lower ``fn``; returns ``(python_source, const_globals, stats)``.

    ``bounds`` is an optional :class:`repro.passes.intervals.
    IntervalAnalysis` over ``fn``: accesses it certified in-bounds are
    lowered without their runtime bounds checks."""
    return Lowerer(fn, fusion=fusion, native=native, bounds=bounds).build()
