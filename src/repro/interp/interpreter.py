"""The repro IR interpreter.

Executes IR functions with real numerics while accounting abstract
instruction costs that the machine model turns into simulated time.

Execution modes
---------------
* **Serial** — ops evaluate on Python/NumPy scalars.
* **Vectorized (SIMD)** — the body of a ``parallel_for`` (or a loop
  marked ``simd``) executes once per simulated-thread chunk with the
  induction variable bound to an index vector; element-wise ops become
  NumPy vector ops, loads become gathers, stores/atomics become
  (masked) scatters.  This is sound because parallel-loop iterations
  are independent up to atomics — the same contract the paper's
  differentiation model relies on (§IV-A).
* **Fork regions** — run thread-by-thread between barriers, so manual
  patterns like LULESH's per-thread min reduction (paper Fig. 7) behave
  exactly as with real threads.

Cooperative events
------------------
Functions execute as generators.  MPI intrinsics yield
:class:`~repro.interp.events.MPIEvent` to the SimMPI engine; barriers
inside fork regions yield :class:`BarrierEvent` to the fork driver.
Serial programs never observe a yield.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

import numpy as np

from ..ir.function import Function, Module
from ..ir.opinfo import OP_INFO
from ..ir.ops import Op
from ..ir.types import F64, I64, PointerType
from ..ir.values import Constant, Value
from ..perf.cost import CostVector
from ..perf.machine import MachineModel, c6i_metal
from .events import BarrierEvent, MPIEvent
from .memory import (
    DynCache,
    InterpreterError,
    Memory,
    PtrVal,
    TaskVal,
    TokenVal,
)

_CMP = OP_INFO["cmp"].attrs["preds"]


def _decode_operands(operands):
    """Decode an operand list once into ``(value_or_None, const)`` pairs.

    Constants are pre-extracted so the hot path never re-tests
    ``type(v) is Constant``; the tuple is cached on ``Op._interp``.
    """
    return tuple((None, v.value) if type(v) is Constant else (v, None)
                 for v in operands)


@dataclass
class ExecConfig:
    """Knobs for one interpreter instance (one simulated rank)."""

    num_threads: int = 1
    gc_stress: bool = False
    machine: Optional[MachineModel] = None
    mpi_impl: str = "openmpi"
    max_while_iters: int = 10_000_000
    max_call_depth: int = 64
    #: Enable the dynamic race sanitizer (vector-clock happens-before
    #: checking of every memory access).  Off by default: the hot paths
    #: then only test one attribute per structured construct.
    sanitize: bool = False
    #: When sanitizing, raise RaceReport at the first race (else collect
    #: all reports on the checker).
    sanitize_raise: bool = True
    #: Execution backend: ``"interp"`` walks the IR op by op;
    #: ``"compiled"`` lowers each function to a generated NumPy closure
    #: (see :mod:`repro.interp.compile`) and falls back to the
    #: interpreter for constructs the lowering cannot handle;
    #: ``"native"`` additionally compiles the fused kernels to C via the
    #: system compiler (see :mod:`repro.interp.native`), degrading
    #: per kernel — or wholesale, when no compiler exists — to the
    #: compiled path with bit-identical results.  Sanitizer runs always
    #: pin ``"interp"`` — the race checker needs to observe every
    #: individual access.
    backend: str = "interp"
    #: Trace fusion in the compiled backend: collapse chains of
    #: single-use elementwise ops into one generated kernel and use the
    #: monotone-index memory fast paths (see :mod:`repro.interp.fusion`).
    #: Execution is bit-identical either way; off is for A/B testing.
    fusion: bool = True
    #: Disk-persistent compile cache directory for the compiled
    #: backend.  ``None`` defers to the ``REPRO_CACHE_DIR`` environment
    #: variable (cache disabled when that is unset too); ``"off"``
    #: force-disables; any other string is the cache directory.
    compile_cache: Optional[str] = None
    #: C compiler command for the native backend.  ``None`` defers to
    #: the ``CC`` environment variable, then the conventional candidates
    #: (cc, gcc, clang); when nothing usable is found the native backend
    #: falls back to the compiled path and records the reason.
    cc: Optional[str] = None


def chunk_bounds(lb: int, ub: int, step: int, tid: int, nthreads: int
                 ) -> tuple[int, int]:
    """Contiguous static chunk of a loop's trip space for one thread."""
    ntrips = max(0, -(-(ub - lb) // step)) if step > 0 else 0
    per = -(-ntrips // nthreads)  # ceil
    first = min(tid * per, ntrips)
    last = min(first + per, ntrips)
    return lb + first * step, lb + last * step


class TaskScheduler:
    """Greedy online list scheduler for spawned tasks (simulated time)."""

    def __init__(self, nworkers: int, machine: MachineModel,
                 procs_on_node: int = 1) -> None:
        self.nworkers = max(1, nworkers)
        self.machine = machine
        self.procs_on_node = procs_on_node
        self.worker_free = [0.0] * self.nworkers

    def schedule(self, task: TaskVal) -> None:
        m = self.machine
        busy = self.nworkers * max(1, self.procs_on_node)
        t_exec = (max(m.compute_time(task.cost),
                      m.memory_time(task.cost, busy))
                  + m.atomic_time(task.cost, self.nworkers)
                  + m.tape_time(task.cost))
        w = min(range(self.nworkers), key=lambda i: self.worker_free[i])
        start = max(task.spawn_clock, self.worker_free[w])
        finish = start + m.task_overhead + t_exec
        self.worker_free[w] = finish
        task.finish_clock = finish


class Interpreter:
    """Executes one module on one simulated rank."""

    def __init__(self, module: Module, config: Optional[ExecConfig] = None
                 ) -> None:
        self.module = module
        self.config = config or ExecConfig()
        self.machine = self.config.machine or c6i_metal()
        self.memory = Memory(gc_stress=self.config.gc_stress)

        # MPI identity — overwritten by the SimMPI engine.
        self.rank = 0
        self.nprocs = 1
        self.procs_on_node = 1

        # Simulated clock (seconds) and cost accounting.
        self.clock = 0.0
        self.cost = CostVector()        # current sink (serial by default)
        self.raw_total = CostVector()   # everything ever executed

        # Execution context.
        self.mask: Optional[np.ndarray] = None
        self.mask_count = 0
        self.simd_depth = 0
        self.simd_width = 0
        self._fork_depth = 0
        self.current_thread: Optional[int] = None
        self._while_flag = False
        self._noyield = 0
        self._call_depth = 0
        self._task_ids = 0

        self.tasks = TaskScheduler(self.config.num_threads, self.machine)

        #: Optional tape plugin (operator-overloading baseline).
        self.tape = None

        #: Dynamic race sanitizer (None when off — every hook below is
        #: guarded by a single attribute test so the default path pays
        #: no per-access cost).  SimMPI replaces these so all ranks
        #: share one checker.
        self.racecheck = None
        self._rc_tid = -1
        if self.config.sanitize:
            from ..sanitize.racecheck import RaceChecker
            self.racecheck = RaceChecker(
                raise_on_race=self.config.sanitize_raise)
            self._rc_tid = self.racecheck.new_thread("main")

        self.intrinsics_simple: dict[str, Callable] = dict(_SIMPLE_INTRINSICS)
        self.intrinsics_gen: dict[str, Callable] = dict(_GEN_INTRINSICS)

        #: Optional compiled backend (set by the Executor when
        #: ``config.backend == "compiled"``); when present,
        #: :meth:`call_generator` routes through it.
        self.backend = None

        # Precomputed opcode dispatch tables (one closure per opcode,
        # bound to this instance) — avoids the long string-comparison
        # chain on every op.
        self._simple_dispatch, self._gen_dispatch = self._build_dispatch()

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------
    def run(self, fn_name: str, args: list) -> Any:
        """Execute to completion; raises if MPI events are produced."""
        gen = self.call_generator(fn_name, args)
        try:
            ev = next(gen)
        except StopIteration as stop:
            self.flush_serial()
            return stop.value
        raise InterpreterError(
            f"unserviced event {ev!r}: the function communicates via MPI "
            f"but no SimMPI engine is attached (use repro.parallel.mpi)")

    def call_generator(self, fn_name: str, args: list):
        if self.backend is not None:
            return self.backend.call_generator(fn_name, args)
        return self._call_generator_interp(fn_name, args)

    def _call_generator_interp(self, fn_name: str, args: list):
        fn = self.module.functions[fn_name]
        if len(args) != len(fn.args):
            raise InterpreterError(
                f"{fn_name} expects {len(fn.args)} args, got {len(args)}")
        env: dict[Value, Any] = dict(zip(fn.args, args))
        result = yield from self._exec_block(fn.body, env)
        if isinstance(result, tuple) and result and result[0] == "ret":
            return result[1]
        return None

    # ------------------------------------------------------------------
    # Clock / cost plumbing
    # ------------------------------------------------------------------
    def flush_serial(self) -> None:
        """Convert pending serial cost into simulated clock time."""
        c = self.cost
        if not c.is_zero():
            self.clock += self.machine.serial_time(c, self.procs_on_node)
            self.raw_total.merge(c)
            self.cost = CostVector()

    # ------------------------------------------------------------------
    # Core evaluation
    # ------------------------------------------------------------------
    def _get(self, v: Value, env: dict) -> Any:
        if type(v) is Constant:
            return v.value
        try:
            return env[v]
        except KeyError:
            raise InterpreterError(f"undefined value {v!r}") from None

    def _width(self, x) -> int:
        if isinstance(x, np.ndarray) and x.size > 1:
            return self.mask_count if self.mask is not None else x.size
        return 1

    def _exec_block(self, block, env):
        simple = self._simple_dispatch
        gen = self._gen_dispatch
        for op in block.ops:
            oc = op.opcode
            h = simple.get(oc)
            if h is not None:
                h(op, env)
                continue
            g = gen.get(oc)
            if g is not None:
                yield from g(op, env)
                continue
            if oc == "return":
                val = (self._get(op.operands[0], env)
                       if op.operands else None)
                return ("ret", val)
            if oc == "condition":
                val = self._get(op.operands[0], env)
                if isinstance(val, np.ndarray) and val.size > 1:
                    raise InterpreterError(
                        "data-dependent while inside a vectorized region")
                self._while_flag = bool(val)
            elif oc == "barrier":
                if self._fork_depth == 0:
                    raise InterpreterError(
                        "barrier outside an executing fork region")
                yield BarrierEvent()
            else:
                raise InterpreterError(f"unhandled opcode {oc!r}")
        return None

    # ------------------------------------------------------------------
    # Dispatch tables
    # ------------------------------------------------------------------
    def _build_dispatch(self):
        """Build the per-instance opcode -> handler tables.

        *Simple* handlers run to completion without yielding (compute,
        memory, cache ops); *generator* handlers may yield events
        (structured control flow, calls).  Compute opcodes get one
        closure each, specialized on arity with the ``OpInfo`` lookup
        hoisted out of the hot loop.
        """
        simple: dict[str, Callable] = {}
        for oc, info in OP_INFO.items():
            if oc == "cmp":
                simple[oc] = self._make_cmp()
            elif oc == "select":
                simple[oc] = self._make_select(info)
            elif info.arity == 1:
                simple[oc] = self._make_compute1(info)
            elif info.arity == 2:
                simple[oc] = self._make_compute2(info)
            else:
                simple[oc] = self._make_computeN(info)
        simple.update({
            "load": self._exec_load,
            "store": self._exec_store,
            "atomic": self._exec_atomic,
            "alloc": self._exec_alloc,
            "ptradd": self._exec_ptradd,
            "memset": self._exec_memset,
            "memcpy": self._exec_memcpy,
            "free": self._exec_free,
            "cache_create": self._exec_cache_create,
            "cache_push": self._exec_cache_push,
            "cache_pop": self._exec_cache_pop,
        })
        gen: dict[str, Callable] = {
            "for": self._exec_for,
            "parallel_for": self._exec_parallel_for,
            "if": self._exec_if,
            "while": self._exec_while,
            "fork": self._exec_fork,
            "spawn": self._exec_spawn,
            "call": self._exec_call,
        }
        return simple, gen

    def _finish_compute(self, op, env, res, cost_class) -> None:
        env[op.result] = res
        if isinstance(res, np.ndarray) and res.size > 1:
            w = self.mask_count if self.mask is not None else res.size
        else:
            w = 1
        self.cost.add_class(cost_class, w)
        if self.tape is not None:
            self.tape.on_compute(op, env, res, w)

    def _make_compute1(self, info):
        ev, cost, finish = info.evaluate, info.cost, self._finish_compute

        def h(op, env):
            dec = op._interp
            if dec is None:
                dec = op._interp = _decode_operands(op.operands)
            k, c = dec[0]
            try:
                a = c if k is None else env[k]
            except KeyError:
                raise InterpreterError(f"undefined value {k!r}") from None
            finish(op, env, ev(a), cost)
        return h

    def _make_compute2(self, info):
        ev, cost, finish = info.evaluate, info.cost, self._finish_compute

        def h(op, env):
            dec = op._interp
            if dec is None:
                dec = op._interp = _decode_operands(op.operands)
            k0, c0 = dec[0]
            k1, c1 = dec[1]
            try:
                a = c0 if k0 is None else env[k0]
                b = c1 if k1 is None else env[k1]
            except KeyError as e:
                raise InterpreterError(
                    f"undefined value {e.args[0]!r}") from None
            finish(op, env, ev(a, b), cost)
        return h

    def _make_computeN(self, info):
        ev, cost, finish = info.evaluate, info.cost, self._finish_compute

        def h(op, env):
            dec = op._interp
            if dec is None:
                dec = op._interp = _decode_operands(op.operands)
            try:
                vals = [c if k is None else env[k] for k, c in dec]
            except KeyError as e:
                raise InterpreterError(
                    f"undefined value {e.args[0]!r}") from None
            finish(op, env, ev(*vals), cost)
        return h

    def _make_cmp(self):
        finish = self._finish_compute
        cost = OP_INFO["cmp"].cost

        def h(op, env):
            st = op._interp
            if st is None:
                st = op._interp = (_CMP[op.attrs["pred"]],
                                   _decode_operands(op.operands))
            fn, dec = st
            k0, c0 = dec[0]
            k1, c1 = dec[1]
            try:
                a = c0 if k0 is None else env[k0]
                b = c1 if k1 is None else env[k1]
            except KeyError as e:
                raise InterpreterError(
                    f"undefined value {e.args[0]!r}") from None
            finish(op, env, fn(a, b), cost)
        return h

    def _make_select(self, info):
        finish = self._finish_compute
        cost = info.cost

        def h(op, env):
            dec = op._interp
            if dec is None:
                dec = op._interp = _decode_operands(op.operands)
            kc, cc = dec[0]
            ka, ca = dec[1]
            kb, cb = dec[2]
            try:
                c = cc if kc is None else env[kc]
                a = ca if ka is None else env[ka]
                b = cb if kb is None else env[kb]
            except KeyError as e:
                raise InterpreterError(
                    f"undefined value {e.args[0]!r}") from None
            if isinstance(c, np.ndarray):
                res = np.where(c, a, b)
            else:
                res = a if c else b
            finish(op, env, res, cost)
        return h

    # ------------------------------------------------------------------
    def _eval_compute(self, op: Op, info, env: dict) -> None:
        operands = op.operands
        get = self._get
        if op.opcode == "cmp":
            res = _CMP[op.attrs["pred"]](get(operands[0], env),
                                         get(operands[1], env))
        elif op.opcode == "select":
            c = get(operands[0], env)
            a = get(operands[1], env)
            b = get(operands[2], env)
            if isinstance(c, np.ndarray):
                res = np.where(c, a, b)
            else:
                res = a if c else b
        else:
            n = info.arity
            if n == 2:
                res = info.evaluate(get(operands[0], env),
                                    get(operands[1], env))
            elif n == 1:
                res = info.evaluate(get(operands[0], env))
            else:
                res = info.evaluate(*[get(v, env) for v in operands])
        env[op.result] = res
        w = self._width(res)
        self.cost.add_class(info.cost, w)
        if self.tape is not None:
            self.tape.on_compute(op, env, res, w)

    def _exec_load(self, op: Op, env: dict) -> None:
        ptr: PtrVal = self._get(op.operands[0], env)
        idx = self._get(op.operands[1], env)
        if self.racecheck is not None:
            self.racecheck.on_read(self._rc_tid, ptr, idx, op, self.mask)
        if self.mask is not None and isinstance(idx, np.ndarray):
            # Masked-out lanes may carry garbage indices; neutralize them.
            idx = np.where(self.mask, idx, 0)
        val = self.memory.load(ptr, idx)
        env[op.result] = val
        w = self._width(val) if isinstance(val, np.ndarray) else 1
        if ptr.buffer.stream:
            self.cost.add_stream(w * 8)
        else:
            self.cost.add_load(w * 8)
        if self.tape is not None and ptr.buffer.elem is F64:
            self.tape.on_load(op, ptr, idx, val, w, self.mask)

    def _exec_store(self, op: Op, env: dict) -> None:
        val = self._get(op.operands[0], env)
        ptr: PtrVal = self._get(op.operands[1], env)
        idx = self._get(op.operands[2], env)
        mask = self.mask
        if self.racecheck is not None:
            self.racecheck.on_write(self._rc_tid, ptr, idx, op, mask)
        if mask is not None and isinstance(idx, np.ndarray):
            idx = np.where(mask, idx, 0)
            # keep mask for the scatter itself
        w = max(self._width(val), self._width(idx))
        if self.tape is not None and ptr.buffer.elem is F64:
            self.tape.on_store(op, ptr, idx, val, w, mask)
        self.memory.store(ptr, idx, val, mask=mask)
        if ptr.buffer.stream:
            self.cost.add_stream(w * 8)
        else:
            self.cost.add_store(w * 8)

    def _exec_atomic(self, op: Op, env: dict) -> None:
        val = self._get(op.operands[0], env)
        ptr: PtrVal = self._get(op.operands[1], env)
        idx = self._get(op.operands[2], env)
        mask = self.mask
        if self.racecheck is not None:
            self.racecheck.on_write(self._rc_tid, ptr, idx, op, mask,
                                    atomic=True)
        if mask is not None and isinstance(idx, np.ndarray):
            idx = np.where(mask, idx, 0)
        w = max(self._width(val), self._width(idx))
        self.memory.atomic(op.attrs["kind"], ptr, idx, val, mask=mask)
        if op.attrs.get("via") == "reduction":
            self.cost.add_reduction(w)
            self.cost.add_store(w * 8)
        else:
            self.cost.add_atomic(w, w * 8)
        if self.tape is not None and ptr.buffer.elem is F64:
            self.tape.on_atomic(op, ptr, idx, val, w, mask)

    def _exec_alloc(self, op: Op, env: dict) -> None:
        count_val = self._get(op.operands[0], env)
        if isinstance(count_val, np.ndarray) and count_val.size > 1:
            raise InterpreterError(
                "allocation size must be uniform inside vectorized regions")
        count = int(count_val)
        space = op.attrs["space"]
        # NOTE: allocations are *not* GC safepoints in this model; under
        # GC stress, collection happens at explicit jl.safepoint calls
        # and at foreign (MPI) call boundaries — the §VI-C2 hazard the
        # gc_preserve machinery exists for.
        stream = bool(op.attrs.get("stream"))
        if self.simd_depth > 0 and self.simd_width >= 1:
            # Privatize in any vectorized context (even width 1: lane
            # values are arrays, so the cell must accept vector stores).
            # Privatize: each vector lane gets its own copy (the scalar
            # replacement a vectorizer performs for loop-local storage).
            w = self.simd_width
            ptr = self.memory.alloc(count * w, op.result.type.elem, space,
                                    name=op.result.name,
                                    thread_local_of=self.current_thread)
            ptr = PtrVal(ptr.buffer,
                         np.arange(w, dtype=np.int64) * count)
            ptr.buffer.stream = stream
            if op.attrs.get("adcache"):
                self.memory.note_adcache(ptr.buffer)
            self.cost.alloc_bytes += count * w * \
                op.result.type.elem.size_bytes
        else:
            ptr = self.memory.alloc(count, op.result.type.elem, space,
                                    name=op.result.name,
                                    thread_local_of=self.current_thread)
            ptr.buffer.stream = stream
            if op.attrs.get("adcache"):
                self.memory.note_adcache(ptr.buffer)
            self.cost.alloc_bytes += count * op.result.type.elem.size_bytes
            if space == "gc":
                # Julia GC allocations are zero-filled: pay the fill
                # traffic (C++ mallocs return uninitialized memory).
                self.cost.add_stream(count * op.result.type.elem.size_bytes)
        env[op.result] = ptr
        if self.tape is not None:
            self.tape.on_alloc(op, ptr)

    def _exec_ptradd(self, op: Op, env: dict) -> None:
        ptr = self._get(op.operands[0], env)
        env[op.result] = ptr.added(self._get(op.operands[1], env))
        self.cost.int_ops += 1

    def _exec_memset(self, op: Op, env: dict) -> None:
        ptr = self._get(op.operands[0], env)
        val = self._get(op.operands[1], env)
        count = int(self._get(op.operands[2], env))
        if self.racecheck is not None:
            self.racecheck.on_write(
                self._rc_tid, ptr, np.arange(count, dtype=np.int64), op)
        self.memory.memset(ptr, val, count)
        self.cost.add_store(count * 8)
        if self.tape is not None:
            self.tape.on_memset(ptr, val, count)

    def _exec_memcpy(self, op: Op, env: dict) -> None:
        dst = self._get(op.operands[0], env)
        src = self._get(op.operands[1], env)
        count = int(self._get(op.operands[2], env))
        if self.racecheck is not None:
            span = np.arange(count, dtype=np.int64)
            self.racecheck.on_read(self._rc_tid, src, span, op)
            self.racecheck.on_write(self._rc_tid, dst, span, op)
        self.memory.memcpy(dst, src, count)
        self.cost.add_load(count * 8)
        self.cost.add_store(count * 8)
        if self.tape is not None:
            self.tape.on_memcpy(dst, src, count)

    def _exec_free(self, op: Op, env: dict) -> None:
        self.memory.free(self._get(op.operands[0], env))

    def _exec_cache_create(self, op: Op, env: dict) -> None:
        env[op.result] = DynCache()

    def _exec_cache_push(self, op: Op, env: dict) -> None:
        self._get(op.operands[0], env).push(self._get(op.operands[1], env))
        self.cost.add_store(8)

    def _exec_cache_pop(self, op: Op, env: dict) -> None:
        env[op.result] = self._get(op.operands[0], env).pop()
        self.cost.add_load(8)

    # ------------------------------------------------------------------
    # Structured control flow
    # ------------------------------------------------------------------
    def _exec_for(self, op: Op, env: dict):
        lb = int(self._get(op.operands[0], env))
        ub = int(self._get(op.operands[1], env))
        step = int(self._get(op.operands[2], env))
        if step <= 0:
            raise InterpreterError("for step must be positive")
        body = op.regions[0]
        ivar = body.args[0]

        if op.attrs.get("workshare"):
            if self.current_thread is None:
                raise InterpreterError("workshare loop outside fork region")
            lo, hi = chunk_bounds(lb, ub, step, self.current_thread,
                                  self._fork_width)
            # Reverse-pass worksharing loops iterate each thread's chunk
            # in reverse order — the per-thread reversal OpenMP itself
            # cannot express but the compiler can (paper §VI-A2).
            backwards = op.attrs.get("reverse_order", False)
            if op.attrs.get("simd") and self.simd_depth == 0:
                if hi > lo:
                    idx = np.arange(lo, hi, step, dtype=np.int64)
                    env[ivar] = idx[::-1] if backwards else idx
                    self.simd_depth += 1
                    saved_w, self.simd_width = self.simd_width, idx.size
                    try:
                        with np.errstate(all="ignore"):
                            yield from self._exec_block(body, env)
                    finally:
                        self.simd_depth -= 1
                        self.simd_width = saved_w
            else:
                trips = range(lo, hi, step)
                if backwards:
                    trips = reversed(trips)
                for i in trips:
                    env[ivar] = i
                    yield from self._exec_block(body, env)
            if not op.attrs.get("nowait"):
                yield BarrierEvent()
        elif op.attrs.get("simd") and self.simd_depth == 0:
            if ub > lb:
                idx = np.arange(lb, ub, step, dtype=np.int64)
                env[ivar] = idx
                self.simd_depth += 1
                saved_w, self.simd_width = self.simd_width, idx.size
                try:
                    with np.errstate(all="ignore"):
                        yield from self._exec_block(body, env)
                finally:
                    self.simd_depth -= 1
                    self.simd_width = saved_w
        else:
            for i in range(lb, ub, step):
                env[ivar] = i
                yield from self._exec_block(body, env)

    def _exec_parallel_for(self, op: Op, env: dict):
        lb = int(self._get(op.operands[0], env))
        ub = int(self._get(op.operands[1], env))
        nthreads = self.config.num_threads
        body = op.regions[0]
        ivar = body.args[0]

        self.flush_serial()
        saved_cost = self.cost
        saved_thread = self.current_thread
        saved_mask, saved_count = self.mask, self.mask_count
        self.mask, self.mask_count = None, 0
        self._noyield += 1
        rc = self.racecheck
        rc_parent = self._rc_tid
        rc_children = (rc.region_begin(rc_parent, nthreads, "pfor")
                       if rc is not None else None)
        thread_costs: list[CostVector] = []
        try:
            for t in range(nthreads):
                lo, hi = chunk_bounds(lb, ub, 1, t, nthreads)
                c = CostVector()
                self.cost = c
                self.current_thread = t
                if rc_children is not None:
                    self._rc_tid = rc_children[t]
                if hi > lo:
                    idx = np.arange(lo, hi, dtype=np.int64)
                    env[ivar] = idx
                    self.simd_depth += 1
                    saved_w, self.simd_width = self.simd_width, idx.size
                    try:
                        with np.errstate(all="ignore"):
                            yield from self._exec_block(body, env)
                    finally:
                        self.simd_depth -= 1
                        self.simd_width = saved_w
                thread_costs.append(c)
                self.raw_total.merge(c)
        finally:
            self._noyield -= 1
            self.cost = saved_cost
            self.current_thread = saved_thread
            self.mask, self.mask_count = saved_mask, saved_count
            if rc_children is not None:
                self._rc_tid = rc_parent
                rc.region_end(rc_parent, rc_children)
        self.clock += self.machine.parallel_region_time(
            thread_costs, nthreads, self.procs_on_node)
        if self.tape is not None:
            self.tape.on_parallel_region(nthreads)

    _fork_width = 1

    def _exec_fork(self, op: Op, env: dict):
        # Generator protocol: fork consumes its threads' barrier events
        # internally and never yields upward.
        if False:  # pragma: no cover - makes this a generator function
            yield None
        want = int(self._get(op.operands[0], env))
        nthreads = want if want > 0 else self.config.num_threads
        body = op.regions[0]
        self.flush_serial()

        envs = []
        gens = []
        for t in range(nthreads):
            env_t = dict(env)
            env_t[body.args[0]] = t
            env_t[body.args[1]] = nthreads
            envs.append(env_t)
            gens.append(self._exec_block(body, env_t))

        saved_cost = self.cost
        saved_thread = self.current_thread
        saved_width = self._fork_width
        self._fork_width = nthreads
        self._noyield += 1
        self._fork_depth += 1
        rc = self.racecheck
        rc_parent = self._rc_tid
        rc_children = (rc.region_begin(rc_parent, nthreads, "fork")
                       if rc is not None else None)
        region_seconds = self.machine.fork_overhead(nthreads)
        pending = dict(enumerate(gens))
        try:
            while pending:
                phase_costs = []
                finished, at_barrier = [], []
                for t in sorted(pending):
                    c = CostVector()
                    self.cost = c
                    self.current_thread = t
                    if rc_children is not None:
                        self._rc_tid = rc_children[t]
                    try:
                        ev = next(pending[t])
                        if not isinstance(ev, BarrierEvent):
                            raise InterpreterError(
                                f"unsupported event {ev!r} inside fork region")
                        at_barrier.append(t)
                    except StopIteration:
                        finished.append(t)
                    phase_costs.append(c)
                    self.raw_total.merge(c)
                for t in finished:
                    del pending[t]
                if at_barrier and finished:
                    raise InterpreterError(
                        "barrier deadlock: some threads finished while "
                        "others wait at a barrier")
                if at_barrier and rc_children is not None:
                    rc.barrier([rc_children[t] for t in at_barrier])
                region_seconds += self.machine.phase_time(
                    phase_costs, nthreads, self.procs_on_node)
        finally:
            self._noyield -= 1
            self._fork_depth -= 1
            self.cost = saved_cost
            self.current_thread = saved_thread
            self._fork_width = saved_width
            if rc_children is not None:
                self._rc_tid = rc_parent
                rc.region_end(rc_parent, rc_children)
        self.clock += region_seconds
        if self.tape is not None:
            self.tape.on_parallel_region(nthreads)

    def _exec_if(self, op: Op, env: dict):
        cond = self._get(op.operands[0], env)
        then_body, else_body = op.regions
        if isinstance(cond, np.ndarray) and cond.size > 1:
            old_mask, old_count = self.mask, self.mask_count
            m_then = cond if old_mask is None else (old_mask & cond)
            try:
                if then_body.ops and m_then.any():
                    self.mask = m_then
                    self.mask_count = int(m_then.sum())
                    yield from self._exec_block(then_body, env)
                if else_body.ops:
                    m_else = (~cond if old_mask is None
                              else (old_mask & ~cond))
                    if m_else.any():
                        self.mask = m_else
                        self.mask_count = int(m_else.sum())
                        yield from self._exec_block(else_body, env)
            finally:
                self.mask, self.mask_count = old_mask, old_count
        else:
            if cond:
                yield from self._exec_block(then_body, env)
            elif else_body.ops:
                yield from self._exec_block(else_body, env)

    def _exec_while(self, op: Op, env: dict):
        body = op.regions[0]
        ivar = body.args[0]
        count = 0
        limit = self.config.max_while_iters
        while True:
            env[ivar] = count
            yield from self._exec_block(body, env)
            count += 1
            if count > limit:
                raise InterpreterError(
                    f"while loop exceeded {limit} iterations")
            if not self._while_flag:
                break

    def _exec_spawn(self, op: Op, env: dict):
        self.flush_serial()
        saved_cost = self.cost
        saved_thread = self.current_thread
        self._task_ids += 1
        self.current_thread = 10_000 + self._task_ids  # unique "thread" id
        c = CostVector()
        self.cost = c
        self._noyield += 1
        rc = self.racecheck
        rc_parent = self._rc_tid
        rc_task = -1
        if rc is not None:
            rc_task = rc.task_begin(rc_parent, f"task#{self._task_ids}")
            self._rc_tid = rc_task
        try:
            yield from self._exec_block(op.regions[0], env)
        finally:
            self._noyield -= 1
            self.cost = saved_cost
            self.current_thread = saved_thread
            self._rc_tid = rc_parent
        self.raw_total.merge(c)
        task = TaskVal(c, self.clock)
        task.rc_tid = rc_task
        self.tasks.procs_on_node = self.procs_on_node
        self.tasks.schedule(task)
        env[op.result] = task
        if self.tape is not None:
            self.tape.on_parallel_region(self.config.num_threads)

    # ------------------------------------------------------------------
    def _exec_call(self, op: Op, env: dict):
        callee = op.attrs["callee"]
        args = [self._get(v, env) for v in op.operands]
        if callee in self.module.functions:
            fn = self.module.functions[callee]
            self.cost.calls += 1
            self._call_depth += 1
            if self._call_depth > self.config.max_call_depth:
                raise InterpreterError("call depth exceeded (recursion?)")
            try:
                new_env = dict(zip(fn.args, args))
                result = yield from self._exec_block(fn.body, new_env)
            finally:
                self._call_depth -= 1
            ret = result[1] if isinstance(result, tuple) else None
        else:
            simple = self.intrinsics_simple.get(callee)
            if simple is not None:
                ret = simple(self, op, args)
            else:
                gen = self.intrinsics_gen.get(callee)
                if gen is None:
                    raise InterpreterError(f"no handler for callee {callee!r}")
                ret = yield from gen(self, op, args)
        if op.result is not None:
            env[op.result] = ret


# ---------------------------------------------------------------------------
# Intrinsic handlers
# ---------------------------------------------------------------------------

def _h_comm_rank(interp, op, args):
    return interp.rank


def _h_comm_size(interp, op, args):
    return interp.nprocs


def _h_num_threads(interp, op, args):
    return interp.config.num_threads


def _h_assert_ge(interp, op, args):
    if args[0] < args[1]:
        raise InterpreterError(f"rt.assert_ge failed: {args[0]} < {args[1]}")
    return None


def _h_arrayptr(interp, op, args):
    p: PtrVal = args[0]
    interp.cost.int_ops += 1
    return PtrVal(p.buffer, p.offset, raw=True)


def _h_buflen(interp, op, args):
    p: PtrVal = args[0]
    off = int(np.min(np.asarray(p.offset)))
    return p.buffer.count - off


def _h_preserve_begin(interp, op, args):
    return interp.memory.preserve_begin(list(args))


def _h_preserve_end(interp, op, args):
    interp.memory.preserve_end(args[0])
    return None


def _h_safepoint(interp, op, args):
    interp.memory.safepoint()
    return None


def _h_cache_create(interp, op, args):
    return DynCache()


def _h_cache_push(interp, op, args):
    cache: DynCache = args[0]
    for v in args[1:]:
        cache.push(v)
    interp.cost.add_store(8 * (len(args) - 1))
    return None


def _h_cache_pop(interp, op, args):
    interp.cost.add_load(8)
    return args[0].pop()


def _h_cache_destroy(interp, op, args):
    args[0].items.clear()
    return None


def _h_task_wait(interp, op, args):
    task: TaskVal = args[0]
    if not isinstance(task, TaskVal):
        raise InterpreterError(f"task.wait on non-task {task!r}")
    interp.flush_serial()
    interp.clock = max(interp.clock, task.finish_clock)
    if interp.racecheck is not None and task.rc_tid >= 0:
        interp.racecheck.task_join(interp._rc_tid, task.rc_tid)
    return None


_SIMPLE_INTRINSICS = {
    "mpi.comm_rank": _h_comm_rank,
    "mpi.comm_size": _h_comm_size,
    "rt.num_threads": _h_num_threads,
    "rt.buflen": _h_buflen,
    "rt.assert_ge": _h_assert_ge,
    "jl.arrayptr": _h_arrayptr,
    "jl.gc_preserve_begin": _h_preserve_begin,
    "jl.gc_preserve_end": _h_preserve_end,
    "jl.safepoint": _h_safepoint,
    "cache.create": _h_cache_create,
    "cache.push": _h_cache_push,
    "cache.pop": _h_cache_pop,
    "cache.destroy": _h_cache_destroy,
    "task.wait": _h_task_wait,
}


def _mpi_event(interp, kind, **kw):
    if interp._noyield:
        raise InterpreterError(
            f"MPI call ({kind}) inside a parallel region / task body")
    interp.flush_serial()
    if interp.config.gc_stress:
        interp.memory.safepoint()


def _g_send(interp, op, args):
    buf, count, dest, tag = args
    _mpi_event(interp, "send")
    if interp.tape is not None:
        interp.tape.on_mpi("send", buf=buf, count=int(count),
                           peer=int(dest), tag=int(tag))
    reply = yield MPIEvent("send", buf=buf, count=int(count),
                           peer=int(dest), tag=int(tag))
    return reply


def _g_recv(interp, op, args):
    buf, count, src, tag = args
    _mpi_event(interp, "recv")
    reply = yield MPIEvent("recv", buf=buf, count=int(count),
                           peer=int(src), tag=int(tag))
    if interp.tape is not None:
        interp.tape.on_mpi("recv", buf=buf, count=int(count),
                           peer=int(src), tag=int(tag))
    return reply


def _g_isend(interp, op, args):
    buf, count, dest, tag = args
    _mpi_event(interp, "isend")
    if interp.tape is not None:
        interp.tape.on_mpi("isend", buf=buf, count=int(count),
                           peer=int(dest), tag=int(tag))
    req = yield MPIEvent("isend", buf=buf, count=int(count),
                         peer=int(dest), tag=int(tag))
    return req


def _g_irecv(interp, op, args):
    buf, count, src, tag = args
    _mpi_event(interp, "irecv")
    req = yield MPIEvent("irecv", buf=buf, count=int(count),
                         peer=int(src), tag=int(tag))
    if interp.tape is not None:
        interp.tape.on_mpi("irecv", buf=buf, count=int(count),
                           peer=int(src), tag=int(tag), request=req)
    return req


def _g_wait(interp, op, args):
    req = args[0]
    _mpi_event(interp, "wait")
    reply = yield MPIEvent("wait", request=req)
    if interp.tape is not None:
        interp.tape.on_mpi("wait", request=req)
    return reply


def _g_allreduce(interp, op, args):
    sendbuf, recvbuf, count = args
    _mpi_event(interp, "allreduce")
    mpi_op = op.attrs.get("op", "sum")
    if interp.tape is not None:
        interp.tape.on_mpi("allreduce_pre", buf=sendbuf, recvbuf=recvbuf,
                           count=int(count), op=mpi_op)
    reply = yield MPIEvent("allreduce", buf=sendbuf, recvbuf=recvbuf,
                           count=int(count), op=mpi_op)
    if interp.tape is not None:
        interp.tape.on_mpi("allreduce_post", buf=sendbuf, recvbuf=recvbuf,
                           count=int(count), op=mpi_op, request=reply)
    return None


def _g_reduce(interp, op, args):
    sendbuf, recvbuf, count, root = args
    _mpi_event(interp, "reduce")
    reply = yield MPIEvent("reduce", buf=sendbuf, recvbuf=recvbuf,
                           count=int(count), op=op.attrs.get("op", "sum"),
                           root=int(root))
    return None


def _g_bcast(interp, op, args):
    buf, count, root = args
    _mpi_event(interp, "bcast")
    reply = yield MPIEvent("bcast", buf=buf, count=int(count), root=int(root))
    return None


def _g_barrier(interp, op, args):
    _mpi_event(interp, "barrier")
    yield MPIEvent("barrier")
    return None


_GEN_INTRINSICS = {
    "mpi.send": _g_send,
    "mpi.recv": _g_recv,
    "mpi.isend": _g_isend,
    "mpi.irecv": _g_irecv,
    "mpi.wait": _g_wait,
    "mpi.allreduce": _g_allreduce,
    "mpi.reduce": _g_reduce,
    "mpi.bcast": _g_bcast,
    "mpi.barrier": _g_barrier,
}
