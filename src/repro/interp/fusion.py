"""Trace fusion for the compiled backend.

The PR-2 lowering emitted exactly one generated statement per IR op:
every elementwise operation became its own NumPy kernel dispatch with
its own materialized temporary, and every load/store paid a generic
helper that re-derived masking, bounds, and width information that the
lowering already knew statically.  This module holds the pieces that
let :class:`repro.interp.lowering.Lowerer` fuse those per-op kernels
(Dr.Jit-style) into larger generated kernels:

* :class:`ExprFuser` — defers single-use pure compute values as
  *pending expressions* instead of emitting an assignment, so a chain
  ``t = a * b; u = t + c; store(u)`` lowers to the single fused
  statement ``_stm(rt, ((a * b) + c), ...)`` with no intermediate
  locals and no per-op Python dispatch.  Pending expressions are pure
  (they only reference SSA locals and constants), so they may float
  past loads, stores and atomics inside a straight-line segment; they
  are materialized at every control-flow boundary (the same points
  where cost segments flush) so evaluation never moves into or out of
  a region, a mask window, or an ``np.errstate`` block.

* :func:`count_uses` — static SSA use counts; a value is fusable only
  if it has exactly one textual use.

* monotonicity algebra (:func:`mono_add`, :func:`mono_scale`) — a tiny
  static analysis the lowering uses to classify index expressions.  A
  value's *mono* is ``0`` (uniform in the vector context), ``+1`` /
  ``-1`` (non-strictly monotone non-decreasing / non-increasing lanes),
  ``+2`` / ``-2`` (*strictly* monotone: induction ``np.arange`` vectors
  and integer affine combinations thereof), or ``None`` (unknown).
  Loads/stores whose resolved index is monotone use the fused-kernel
  memory helpers (``_ldm`` / ``_stm``): bounds come from the two
  endpoint lanes instead of an ``O(width)`` min/max reduction, and
  strictly-monotone index vectors that turn out contiguous at runtime
  (endpoint span == lane count - 1, which for strict integer sequences
  implies consecutiveness) turn gather/scatter into slice copies.
  Strictness survives only exact integer arithmetic (``iadd``/``isub``/
  ``ineg``/``imul`` by a signed constant and ``ptradd``); float ops,
  ``ftoi`` rounding and min/max clamps demote to non-strict, which
  still permits endpoint bounds but never slicing.  The analysis is
  sound up to int64 overflow of the index arithmetic — the same point
  where the interpreter's own gather would already be wrapping.

Fusion only changes *how many* generated statements there are, never
the arithmetic performed: the fused expression text is exactly the
per-op expressions composed, so IEEE results are bit-identical and the
cost segments (accounted statically at each op) are unchanged.
"""

from __future__ import annotations

from typing import Optional

#: Bump when fused codegen changes in a way that invalidates persisted
#: compiled artifacts (see :mod:`repro.interp.diskcache`).
LOWERING_VERSION = 3

#: Caps keeping one fused statement's source manageable: compute ops
#: folded into a single expression and total expression characters.
FUSE_OP_CAP = 48
FUSE_CHAR_CAP = 2000


def count_uses(fn) -> dict:
    """Number of operand occurrences of every SSA value in ``fn``."""
    uses: dict = {}
    for op in fn.body.walk():
        for v in op.operands:
            uses[v] = uses.get(v, 0) + 1
    return uses


# ---------------------------------------------------------------------------
# Monotonicity algebra
# ---------------------------------------------------------------------------

def mono_add(a: Optional[int], b: Optional[int]) -> Optional[int]:
    """Mono class of ``x + y`` given the operands' classes.

    Same-direction sums keep the stronger strictness (strictly
    increasing + non-decreasing is strictly increasing); opposing
    directions are unknown.
    """
    if a is None or b is None:
        return None
    if a == 0:
        return b
    if b == 0:
        return a
    if (a > 0) != (b > 0):
        return None  # opposing directions
    mag = max(abs(a), abs(b))
    return mag if a > 0 else -mag


def mono_neg(a: Optional[int]) -> Optional[int]:
    return None if a is None else -a


def mono_scale(a: Optional[int], scale_sign: Optional[int]) -> Optional[int]:
    """Mono class of ``x * c`` for a constant of known sign (integer
    scaling: any nonzero integer constant has magnitude >= 1, so
    strictness survives)."""
    if a is None or scale_sign is None:
        return None
    if a == 0 or scale_sign == 0:
        return 0
    return a if scale_sign > 0 else -a


def mono_relax(a: Optional[int]) -> Optional[int]:
    """Demote strict monotonicity to non-strict (rounding, clamping and
    float arithmetic can introduce repeated lanes)."""
    if a is None or a == 0:
        return a
    return 1 if a > 0 else -1


class FusionStats:
    """Counters describing what fusion did to one lowered function."""

    __slots__ = ("ops", "kernels", "fused_ops", "mono_loads",
                 "mono_stores", "fast_atomics", "bounds_proven",
                 "bounds_unproven", "checks_elided")

    def __init__(self) -> None:
        #: Pure compute ops seen by the lowering.
        self.ops = 0
        #: Generated statements that evaluate at least one compute op
        #: (each is one fused kernel; unfused, this would equal `ops`).
        self.kernels = 0
        #: Compute ops folded into another statement's expression.
        self.fused_ops = 0
        #: Loads / stores lowered through the monotone fast helpers.
        self.mono_loads = 0
        self.mono_stores = 0
        #: Atomics lowered through the statically-unmasked fast helper.
        self.fast_atomics = 0
        #: Memory accesses classified by the interval analysis
        #: (repro.passes.intervals): statically certified in-bounds vs
        #: not (unproven sites keep their runtime checks).
        self.bounds_proven = 0
        self.bounds_unproven = 0
        #: Open-coded runtime bounds checks actually dropped from the
        #: generated source on certified sites.
        self.checks_elided = 0

    def as_dict(self) -> dict:
        return {s: getattr(self, s) for s in FusionStats.__slots__}

    def __repr__(self) -> str:
        return f"FusionStats({self.as_dict()})"


class ExprFuser:
    """Pending-expression bookkeeping for one :class:`Lowerer`.

    ``defer`` records a value's expression instead of emitting it;
    ``take`` pops the pending expression when its single consumer
    inlines it; ``flush`` materializes everything still pending (in
    definition order) through the lowerer's ``emit``/``bind``.
    """

    __slots__ = ("lowerer", "pending", "stats")

    def __init__(self, lowerer) -> None:
        self.lowerer = lowerer
        #: Value -> (expr, nops) in insertion order.
        self.pending: dict = {}
        self.stats = FusionStats()

    # ------------------------------------------------------------------
    def defer(self, value, expr: str, nops: int) -> None:
        self.pending[value] = (expr, nops)

    def take(self, value) -> Optional[tuple]:
        """Pop and return ``(expr, nops)`` if ``value`` is pending."""
        ent = self.pending.pop(value, None)
        if ent is not None:
            # The python expression is being inlined; the parallel
            # C rendering (if any) can no longer be claimed on its own.
            self.lowerer.cpend.pop(value, None)
        return ent

    def pending_nops(self, value) -> int:
        entry = self.pending.get(value)
        return entry[1] if entry is not None else 0

    # ------------------------------------------------------------------
    def materialize(self, value) -> Optional[str]:
        """Force one pending value into a local; returns its name."""
        entry = self.pending.pop(value, None)
        if entry is None:
            return None
        expr = entry[0]
        lo = self.lowerer
        # The native tier may claim the whole chain as a C kernel call
        # (with `expr` kept inline as the runtime fallback).
        name = lo.native_materialize(value, expr)
        if name is None:
            name = lo.fresh("v")
            lo.names[value] = name
            lo.emit(f"{name} = {expr}")
        self.stats.kernels += 1
        return name

    def flush(self) -> None:
        for value in list(self.pending):
            self.materialize(value)
