"""Events yielded by interpreter generators.

The interpreter executes a function as a generator.  Serial code never
yields; cooperative scheduling points (MPI communication, thread
barriers) surface as events so an external engine — the fork driver or
the SimMPI engine — can coordinate multiple executions and advance
simulated clocks.
"""

from __future__ import annotations

from typing import Optional


class Event:
    __slots__ = ()


class BarrierEvent(Event):
    """A thread reached a barrier inside a fork region."""
    __slots__ = ()


class MPIEvent(Event):
    """An MPI runtime call that must be serviced by the SimMPI engine.

    ``kind`` is one of: "send", "recv", "isend", "irecv", "wait",
    "allreduce", "reduce", "bcast", "barrier".
    The payload attributes depend on the kind; the engine replies with a
    value via ``generator.send(reply)``.
    """

    __slots__ = ("kind", "buf", "count", "peer", "tag", "op", "root",
                 "recvbuf", "request")

    def __init__(self, kind: str, buf=None, count: int = 0, peer: int = -1,
                 tag: int = 0, op: str = "sum", root: int = 0,
                 recvbuf=None, request=None) -> None:
        self.kind = kind
        self.buf = buf
        self.count = count
        self.peer = peer
        self.tag = tag
        self.op = op
        self.root = root
        self.recvbuf = recvbuf
        self.request = request

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<MPIEvent {self.kind} peer={self.peer} tag={self.tag} "
                f"count={self.count}>")
