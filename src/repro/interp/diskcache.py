"""Disk-persistent compile cache for the compiled backend.

Lowering an IR function is cheap (it also deterministically rebuilds
the constant-globals table the generated code closes over), but running
CPython's ``compile()`` over the generated source dominates cold-start
time for large adjoint functions.  This cache persists the *marshaled
code object* keyed by everything that determines it:

* the lowered Python source (which transitively encodes the IR body —
  and therefore any ADConfig that shaped a gradient function);
* an ExecConfig fingerprint (see :func:`config_fingerprint`);
* the cache :data:`FORMAT_VERSION`, the lowering generation
  (:data:`repro.interp.fusion.LOWERING_VERSION`), the CPython
  version (``marshal`` payloads are interpreter-specific) and the
  NumPy version.

A warm process therefore still lowers (rebuilding ``consts``), hashes
the source, and unmarshals the stored code object instead of compiling.

Layout: ``<root>/<key[:2]>/<key>.json`` where ``key`` is the SHA-256
hex digest of the components above.  Entries are JSON with the marshal
blob base64-encoded, written atomically (temp file + ``os.replace``) so
concurrent processes never observe torn entries.  Any unreadable,
truncated, version-skewed or otherwise corrupt entry is treated as a
miss, unlinked best-effort, and recompiled — the cache can never turn
a working program into a crash.

The directory is resolved per :class:`~repro.interp.interpreter.
ExecConfig`: ``compile_cache`` names it directly, ``"off"`` disables,
and ``None`` defers to the ``REPRO_CACHE_DIR`` environment variable
(no caching when unset).
"""

from __future__ import annotations

import base64
import hashlib
import json
import marshal
import os
import sys
import tempfile
import types
from dataclasses import fields as dataclass_fields
from typing import Optional

import numpy as np

from .fusion import LOWERING_VERSION

#: Bump when the on-disk entry layout changes.
FORMAT_VERSION = 1

#: Bump when the native .so entry layout changes.
NATIVE_FORMAT_VERSION = 1

#: Subdirectory under the user-chosen root, so a shared cache dir can
#: hold unrelated artifact families without collisions.
_SUBDIR = "compiled-ir"

#: Sibling subdirectory holding compiled native kernel libraries.
_NATIVE_SUBDIR = "native-so"


def _py_tag() -> str:
    v = sys.version_info
    return f"cpython-{v.major}.{v.minor}"


def config_fingerprint(config) -> str:
    """Stable value-fingerprint of an ExecConfig.

    Every dataclass field participates (conservative: some fields do
    not affect codegen today, but correctness never depends on keeping
    this list in sync with the lowering).  The machine model is folded
    in by class name + public numeric attributes.
    """
    parts = []
    for f in dataclass_fields(config):
        v = getattr(config, f.name)
        if f.name == "machine":
            if v is None:
                parts.append("machine=None")
            else:
                knobs = ",".join(
                    f"{k}={getattr(v, k)!r}" for k in sorted(vars(v))
                    if not k.startswith("_"))
                parts.append(f"machine={type(v).__name__}({knobs})")
        else:
            parts.append(f"{f.name}={v!r}")
    return ";".join(parts)


def resolve_cache_dir(config) -> Optional[str]:
    """Cache directory for ``config``, or None when caching is off."""
    v = getattr(config, "compile_cache", None)
    if v == "off":
        return None
    if v:
        return v
    return os.environ.get("REPRO_CACHE_DIR") or None


def open_cache(config) -> Optional["CompileCache"]:
    root = resolve_cache_dir(config)
    return CompileCache(root) if root else None


class CompileCache:
    """One process's view of a persistent compiled-code store."""

    def __init__(self, root: str) -> None:
        self.root = os.path.join(root, _SUBDIR)
        self.native_root = os.path.join(root, _NATIVE_SUBDIR)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: Corrupt/unreadable entries dropped (subset of misses).
        self.errors = 0

    # ------------------------------------------------------------------
    def key(self, source: str, fingerprint: str) -> str:
        h = hashlib.sha256()
        h.update(f"format={FORMAT_VERSION};lowering={LOWERING_VERSION};"
                 f"py={_py_tag()};numpy={np.__version__}\n".encode())
        h.update(fingerprint.encode())
        h.update(b"\n")
        h.update(source.encode())
        return h.hexdigest()

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".json")

    # ------------------------------------------------------------------
    def load(self, source: str, fingerprint: str):
        """Stored code object for (source, fingerprint), or None."""
        path = self._path(self.key(source, fingerprint))
        try:
            with open(path, "rb") as f:
                entry = json.load(f)
            if (entry.get("format") != FORMAT_VERSION
                    or entry.get("lowering") != LOWERING_VERSION
                    or entry.get("py") != _py_tag()):
                raise ValueError("version skew")
            code = marshal.loads(base64.b64decode(entry["code"]))
            if not isinstance(code, types.CodeType):
                raise ValueError("entry payload is not a code object")
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:  # noqa: BLE001 - corrupt entry => miss
            self.misses += 1
            self.errors += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        self.hits += 1
        return code

    def store(self, source: str, fingerprint: str, code) -> None:
        """Persist ``code`` (best effort: IO errors never propagate)."""
        path = self._path(self.key(source, fingerprint))
        entry = {
            "format": FORMAT_VERSION,
            "lowering": LOWERING_VERSION,
            "py": _py_tag(),
            "numpy": np.__version__,
            "code": base64.b64encode(marshal.dumps(code)).decode("ascii"),
        }
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                       suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="ascii") as f:
                    json.dump(entry, f)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return
        self.stores += 1

    # -- native kernel libraries ---------------------------------------
    # Compiled .so blobs for the native backend live beside the marshal
    # entries under ``native-so/``, keyed by the emitted C source + the
    # probed compiler identity (compiler + version + flags): a compiler
    # upgrade changes every key, so stale machine code is never served.
    # Each entry is ``<key>.so`` plus ``<key>.json`` metadata carrying
    # the blob's digest; a blob that does not match its metadata (torn
    # write, manual tampering) is treated as a miss and both files are
    # dropped.  Counters are shared with the marshal entries.

    def native_key(self, c_source: str, cc_identity: str) -> str:
        h = hashlib.sha256()
        h.update(f"native-format={NATIVE_FORMAT_VERSION};"
                 f"lowering={LOWERING_VERSION}\n".encode())
        h.update(cc_identity.encode())
        h.update(b"\n")
        h.update(c_source.encode())
        return h.hexdigest()

    def _native_paths(self, key: str) -> tuple:
        base = os.path.join(self.native_root, key[:2], key)
        return base + ".so", base + ".json"

    def load_native(self, c_source: str, cc_identity: str) -> Optional[str]:
        """Path of a verified cached .so for (C source, compiler), or
        None on miss/corruption (corrupt entries are unlinked)."""
        so_path, meta_path = self._native_paths(
            self.native_key(c_source, cc_identity))
        try:
            with open(meta_path, "rb") as f:
                meta = json.load(f)
            if (meta.get("format") != NATIVE_FORMAT_VERSION
                    or meta.get("cc") != cc_identity):
                raise ValueError("version skew")
            with open(so_path, "rb") as f:
                blob = f.read()
            if hashlib.sha256(blob).hexdigest() != meta.get("sha256"):
                raise ValueError("library digest mismatch")
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:  # noqa: BLE001 - corrupt entry => miss
            self.misses += 1
            self.errors += 1
            for p in (so_path, meta_path):
                try:
                    os.unlink(p)
                except OSError:
                    pass
            return None
        self.hits += 1
        return so_path

    def store_native(self, c_source: str, cc_identity: str,
                     blob: bytes) -> Optional[str]:
        """Persist a compiled .so; returns its path, or None when the
        cache directory is unwritable (best effort, like store)."""
        so_path, meta_path = self._native_paths(
            self.native_key(c_source, cc_identity))
        meta = {
            "format": NATIVE_FORMAT_VERSION,
            "cc": cc_identity,
            "sha256": hashlib.sha256(blob).hexdigest(),
        }
        try:
            d = os.path.dirname(so_path)
            os.makedirs(d, exist_ok=True)
            for path, data, mode in ((so_path, blob, "wb"),
                                     (meta_path, None, "w")):
                fd, tmp = tempfile.mkstemp(dir=d, suffix=".tmp")
                try:
                    with os.fdopen(fd, mode) as f:
                        if data is None:
                            json.dump(meta, f)
                        else:
                            f.write(data)
                    os.replace(tmp, path)
                except BaseException:
                    try:
                        os.unlink(tmp)
                    except OSError:
                        pass
                    raise
        except OSError:
            return None
        self.stores += 1
        return so_path

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores, "errors": self.errors}
