"""Native codegen tier: C kernels behind ``ExecConfig(backend="native")``.

The compiled backend (:mod:`repro.interp.compile`) already isolates the
hot kernels statically: trace fusion collapses single-use elementwise
chains into one generated NumPy expression, monotone loads/stores are
open-coded gather/scatter fast paths, and scalar-target reductions are
open-coded ordered folds.  This module adds a third tier that emits C
source for exactly those kernels, compiles it with the system C
compiler into one shared object per function, and calls the machine
code in place of the NumPy expression — operating in-place on the same
NumPy buffers, with the same simulated clock and cost accounting (cost
is aggregated statically by the lowering, so *how* a value is computed
never changes what is charged).

Claim/fallback contract (bit-identity is non-negotiable):

* the emitter only *claims* an expression when every operation in it
  has a C rendering that is IEEE-754 identical to the NumPy kernel the
  compiled backend would run: ``+ - * /``, ``fma`` as ``a*b+c`` (built
  with ``-ffp-contract=off``), ``abs``/``neg``, ``sqrt``/``floor``
  (correctly rounded by both), ``min``/``max`` via NumPy's exact
  NaN/ordering formulation, float comparisons, boolean logic, and
  ``select`` as a ternary.  Transcendentals, ``pow``, integer
  arithmetic and casts are never claimed — NumPy's SIMD routines make
  no bit-exactness promise against libm there.
* every claimed call site keeps its generated-NumPy expression as an
  inline guard: the kernel wrapper re-checks dtype/shape/contiguity at
  runtime and returns ``None`` when the buffers do not match the static
  expectation, in which case the original expression runs instead.
* a function with no claimable kernels, a C compile failure, a missing
  toolchain, or a missing FFI module all degrade to the plain compiled
  backend — per function or for the whole tier — with the reason
  recorded in ``compile_stats()["native"]``.

Compiled shared objects are cached two ways: an in-process memo keyed
by (compiler identity, C source digest), and — when a disk cache is
configured — ``.so`` blobs stored by :class:`~repro.interp.diskcache.
CompileCache` next to the marshal entries, keyed by emitted C +
compiler identity so a compiler upgrade can never serve stale code.
"""

from __future__ import annotations

import functools
import hashlib
import os
import re
import subprocess
import tempfile
import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..ir.types import F64, I1
from ..ir.values import Constant
from .memory import Memory
from .compile import (
    CompiledBackend,
    compile_function,
    _at as _py_at,
    _ld as _py_ld,
    _st as _py_st,
)

try:  # pragma: no cover - exercised via the ctypes fallback tests
    import cffi
except ImportError:  # pragma: no cover
    cffi = None

#: Minimum fused compute ops before a claim pays for the FFI call.
#: A single C pass replaces one NumPy temporary + dispatch per fused
#: op, and with the direct ``from_buffer`` bindings the call overhead
#: sits below two NumPy ops at every chunk width the apps run
#: (measured: 2-op claims are a wash-to-win at width 8 and win
#: outright from width 64 up; 1-op claims lose to the single ufunc).
NATIVE_MIN_OPS = 2

#: Cap on one kernel expression's C text.
NATIVE_CHAR_CAP = 4000

#: Runtime width floor for the gather/scatter helpers.  NumPy's fancy
#: indexing is already near the memory floor, so exporting three
#: buffers through the FFI only wins once the span is wide (measured
#: crossover ~2k elements); below it the wrapper declines the claim
#: and the generated ``dd[x]`` path runs.  Folds and fused expression
#: kernels win at every width and carry no such floor.
NATIVE_MIN_GATHER = 2048

#: Compile flags: position-independent shared object, optimization ON,
#: but every value-changing shortcut OFF — no fast-math, no FMA
#: contraction — so the machine code performs exactly the roundings the
#: NumPy expression performs.
CFLAGS = ("-O2", "-fPIC", "-shared", "-fno-fast-math", "-ffp-contract=off")

_DEFAULT_CANDIDATES = ("cc", "gcc", "clang")

_F8 = np.dtype(np.float64)
_B1 = np.dtype(np.bool_)
_I8 = np.dtype(np.int64)


class NativeBuildError(Exception):
    """C toolchain failed on emitter-generated source (a codegen bug or
    a broken compiler — either way the caller falls back to the
    generated-NumPy path unless strict)."""


# ---------------------------------------------------------------------------
# Toolchain probe
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Toolchain:
    """One usable C compiler (probed by actually building a .so)."""

    cc: str
    version: str
    flags: tuple = CFLAGS

    @property
    def identity(self) -> str:
        """Cache-key component: compiler + version + flags.  A compiler
        upgrade changes this string and therefore every .so cache key."""
        return f"{self.cc} {self.version} [{' '.join(self.flags)}]"


_PROBE_MEMO: dict = {}

_PROBE_SRC = "double repro_probe(double x) { return x + 1.0; }\n"


def _try_cc(cand: str) -> Optional[Toolchain]:
    with tempfile.TemporaryDirectory(prefix="repro-ccprobe-") as td:
        src = os.path.join(td, "probe.c")
        out = os.path.join(td, "probe.so")
        with open(src, "w") as f:
            f.write(_PROBE_SRC)
        try:
            r = subprocess.run([cand, *CFLAGS, src, "-o", out, "-lm"],
                               capture_output=True, timeout=120)
        except (OSError, subprocess.TimeoutExpired, ValueError):
            return None
        if r.returncode != 0 or not os.path.exists(out):
            return None
        version = "unknown"
        try:
            v = subprocess.run([cand, "--version"], capture_output=True,
                               timeout=60, text=True)
            first = (v.stdout or v.stderr or "").splitlines()
            if v.returncode == 0 and first:
                version = first[0].strip()
        except (OSError, subprocess.TimeoutExpired, ValueError):
            pass
    return Toolchain(cand, version)


def probe_toolchain(cc: Optional[str] = None) -> Optional[Toolchain]:
    """Find a working C compiler, or None.

    An explicit request (``cc`` argument, else the ``CC`` environment
    variable) probes *only* that command — so ``CC=/nonexistent`` is a
    deterministic way to force the no-compiler fallback.  Otherwise the
    conventional candidates are tried in order.  Results (including
    failures) are memoized per process.
    """
    want = cc or os.environ.get("CC") or ""
    if want in _PROBE_MEMO:
        return _PROBE_MEMO[want]
    tc = None
    for cand in ((want,) if want else _DEFAULT_CANDIDATES):
        tc = _try_cc(cand)
        if tc is not None:
            break
    _PROBE_MEMO[want] = tc
    return tc


# ---------------------------------------------------------------------------
# C expressions
# ---------------------------------------------------------------------------

class CExpr:
    """A claimable C rendering of one fused SSA subtree.

    ``text`` is the C expression with the *Python local names* still
    embedded as identifiers (they are all ``v<N>``, valid in C);
    ``leaves`` maps each embedded name to its parameter kind:
    ``"vd"`` varying f64 array, ``"ud"`` uniform f64 scalar, ``"vb"``
    varying bool array, ``"ub"`` uniform bool scalar.  ``ctype`` is the
    expression's own type (``"d"`` double / ``"b"`` boolean) and
    ``nops`` counts the compute ops folded in.
    """

    __slots__ = ("text", "leaves", "ctype", "nops")

    def __init__(self, text: str, leaves: dict, ctype: str,
                 nops: int) -> None:
        self.text = text
        self.leaves = leaves
        self.ctype = ctype
        self.nops = nops

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CExpr({self.text!r}, {self.leaves}, {self.ctype}, {self.nops})"


#: f64-valued opcodes -> C template.  min/max use NumPy's exact loop
#: formulation ``(a < b || a != a) ? a : b`` (propagates NaN from
#: either side, returns *b* on equality — including signed zeros).
_C_FLOAT_TEMPLATES = {
    "add": "({a} + {b})",
    "sub": "({a} - {b})",
    "mul": "({a} * {b})",
    "div": "({a} / {b})",
    "fma": "({a} * {b} + {c})",
    "min": "_rmin({a}, {b})",
    "max": "_rmax({a}, {b})",
    "neg": "(-{a})",
    "abs": "fabs({a})",
    "sqrt": "sqrt({a})",
    "floor": "floor({a})",
}

#: bool-valued opcodes over bool operands.  C's short-circuit is
#: unobservable here: operand *values* are already fully computed.
_C_BOOL_TEMPLATES = {
    "and": "({a} && {b})",
    "or": "({a} || {b})",
    "xor": "({a} != {b})",
    "not": "(!{a})",
}

_C_CMP = {"lt": "<", "le": "<=", "gt": ">", "ge": ">=",
          "eq": "==", "ne": "!="}

#: The fixed runtime kernels every generated library carries, plus the
#:  min/max helpers (kept bit-exact to np.minimum/np.maximum).
_C_PRELUDE = """\
#include <math.h>

static double _rmin(double a, double b) {
    return (a < b || a != a) ? a : b;
}
static double _rmax(double a, double b) {
    return (a > b || a != a) ? a : b;
}

double repro_fold_add(double cur, const double* v, long long n) {
    long long i;
    for (i = 0; i < n; i++) cur = cur + v[i];
    return cur;
}
double repro_fold_min(double cur, const double* v, long long n) {
    long long i;
    for (i = 0; i < n; i++) cur = _rmin(cur, v[i]);
    return cur;
}
double repro_fold_max(double cur, const double* v, long long n) {
    long long i;
    for (i = 0; i < n; i++) cur = _rmax(cur, v[i]);
    return cur;
}
void repro_gather(const double* d, const long long* x, double* out,
                  long long n) {
    long long i;
    for (i = 0; i < n; i++) out[i] = d[x[i]];
}
void repro_scatter(double* d, const long long* x, const double* v,
                   long long n) {
    long long i;
    for (i = 0; i < n; i++) d[x[i]] = v[i];
}

/* Bounds-checked runtime helpers backing the generic _ld/_st/_at
 * paths.  Each returns the first out-of-bounds lane (so the caller
 * can fall back to the Python path, which raises the interpreter's
 * exact error) or -1 on success; the check pass runs to completion
 * BEFORE any mutation so a failed claim leaves no partial writes. */
static long long _rchk(long long off, const long long* x, long long n,
                       long long dlen) {
    long long i, j;
    for (i = 0; i < n; i++) {
        j = off + x[i];
        if (j < 0 || j >= dlen) return i;
    }
    return -1;
}
long long repro_gather_bc(const double* d, long long dlen, long long off,
                          const long long* x, double* out, long long n) {
    long long i, bad = _rchk(off, x, n, dlen);
    if (bad >= 0) return bad;
    for (i = 0; i < n; i++) out[i] = d[off + x[i]];
    return -1;
}
long long repro_scatter_bc(double* d, long long dlen, long long off,
                           const long long* x, const double* v,
                           long long n) {
    long long i, bad = _rchk(off, x, n, dlen);
    if (bad >= 0) return bad;
    for (i = 0; i < n; i++) d[off + x[i]] = v[i];  /* in order: last wins */
    return -1;
}
long long repro_scatter_fill(double* d, long long dlen, long long off,
                             const long long* x, double v, long long n) {
    long long i, bad = _rchk(off, x, n, dlen);
    if (bad >= 0) return bad;
    for (i = 0; i < n; i++) d[off + x[i]] = v;
    return -1;
}
/* Sequential read-modify-write folds: lane order matches ufunc.at's
 * unbuffered in-order application, so duplicate indices accumulate
 * with bit-identical rounding. */
long long repro_scatter_fold_add(double* d, long long dlen, long long off,
                                 const long long* x, const double* v,
                                 long long n) {
    long long i, j, bad = _rchk(off, x, n, dlen);
    if (bad >= 0) return bad;
    for (i = 0; i < n; i++) { j = off + x[i]; d[j] = d[j] + v[i]; }
    return -1;
}
long long repro_scatter_fold_min(double* d, long long dlen, long long off,
                                 const long long* x, const double* v,
                                 long long n) {
    long long i, j, bad = _rchk(off, x, n, dlen);
    if (bad >= 0) return bad;
    for (i = 0; i < n; i++) { j = off + x[i]; d[j] = _rmin(d[j], v[i]); }
    return -1;
}
long long repro_scatter_fold_max(double* d, long long dlen, long long off,
                                 const long long* x, const double* v,
                                 long long n) {
    long long i, j, bad = _rchk(off, x, n, dlen);
    if (bad >= 0) return bad;
    for (i = 0; i < n; i++) { j = off + x[i]; d[j] = _rmax(d[j], v[i]); }
    return -1;
}
"""

#: Generated-code global names for the fixed runtime kernels.
_FOLD_NAMES = {"add": "_nfadd", "min": "_nfmin", "max": "_nfmax"}
_FOLD_SYMS = {"_nfadd": "repro_fold_add", "_nfmin": "repro_fold_min",
              "_nfmax": "repro_fold_max"}
_GATHER_NAME = "_ngat"
_SCATTER_NAME = "_nsca"

#: Bounds-checked helper symbols (back the _ld/_st/_at overrides; not
#: referenced by generated source, so they have no global name).
_HELPER_SYMS = {
    "gather_bc": "repro_gather_bc",
    "scatter_bc": "repro_scatter_bc",
    "scatter_fill": "repro_scatter_fill",
    "sfold_add": "repro_scatter_fold_add",
    "sfold_min": "repro_scatter_fold_min",
    "sfold_max": "repro_scatter_fold_max",
}


class NativeStats:
    """Counters describing one function's native lowering (summed
    across functions in ``compile_stats()``)."""

    __slots__ = ("kernels", "claimed", "claimed_ops", "folds", "gathers",
                 "scatters", "claims_proven", "claims_unproven",
                 "compile_seconds", "so_cached")

    def __init__(self) -> None:
        #: Distinct C kernels emitted for this function.
        self.kernels = 0
        #: Claimed call sites (several sites may share one kernel).
        self.claimed = 0
        #: Compute ops covered by claimed sites.
        self.claimed_ops = 0
        #: Reduction-fold / gather / scatter sites routed natively.
        self.folds = 0
        self.gathers = 0
        self.scatters = 0
        #: Gather/scatter/fold claims split by the interval analysis:
        #: bounds-certified sites reach the C helper with no bounds
        #: check on any layer; unproven sites keep the generated-Python
        #: endpoint check in front of the same helper.
        self.claims_proven = 0
        self.claims_unproven = 0
        #: Seconds spent in the C compiler (0.0 when cache-served).
        self.compile_seconds = 0.0
        self.so_cached = False

    @property
    def used(self) -> bool:
        return bool(self.claimed or self.folds or self.gathers
                    or self.scatters)

    def merge(self, other: "NativeStats") -> None:
        self.kernels += other.kernels
        self.claimed += other.claimed
        self.claimed_ops += other.claimed_ops
        self.folds += other.folds
        self.gathers += other.gathers
        self.scatters += other.scatters
        self.claims_proven += other.claims_proven
        self.claims_unproven += other.claims_unproven
        self.compile_seconds += other.compile_seconds
        self.so_cached = self.so_cached or other.so_cached

    def as_dict(self) -> dict:
        out = {s: getattr(self, s) for s in NativeStats.__slots__}
        out["compile_seconds"] = round(out["compile_seconds"], 4)
        return out


# ---------------------------------------------------------------------------
# Emitter
# ---------------------------------------------------------------------------

class NativeEmitter:
    """Collects claimable kernels during one function's lowering, then
    builds the shared object and the generated-code bindings."""

    def __init__(self, toolchain: Toolchain,
                 min_ops: Optional[int] = None) -> None:
        self.toolchain = toolchain
        self.min_ops = NATIVE_MIN_OPS if min_ops is None else min_ops
        #: (normalized C text, kinds tuple) -> (global name, arg kinds).
        self._kernels: dict = {}
        self.stats = NativeStats()

    # -- expression composition ----------------------------------------
    def const_cexpr(self, c: Constant) -> Optional[CExpr]:
        v = c.value
        if isinstance(v, bool):
            return CExpr("1" if v else "0", {}, "b", 0)
        if isinstance(v, (int, float)):
            try:
                f = float(v)
            except OverflowError:
                return None
            if v != f or not np.isfinite(f):
                return None
            r = repr(f)
            # C has no negative literals; parenthesize so a unary-minus
            # template never forms the `--` token.
            return CExpr(f"({r})" if f < 0 else r, {}, "d", 0)
        return None

    def _leaf(self, lo, v) -> Optional[CExpr]:
        """CExpr for one operand: a constant literal, the operand's own
        pending CExpr (consumed), or a leaf on its materialized local."""
        if type(v) is Constant:
            return self.const_cexpr(v)
        c = lo.cpend.pop(v, None)
        if c is not None:
            return c
        name = lo.names.get(v)
        if name is None:
            return None  # pending python-only chain: not claimable
        t = getattr(v, "type", None)
        vr = lo.vary_of(v)
        if t is F64:
            kind = "vd" if vr is True else ("ud" if vr is False else None)
            ctype = "d"
        elif t is I1:
            kind = "vb" if vr is True else ("ub" if vr is False else None)
            ctype = "b"
        else:
            return None
        if kind is None:
            return None
        return CExpr(name, {name: kind}, ctype, 0)

    def _merge(self, ctype: str, text: str, parts) -> Optional[CExpr]:
        leaves: dict = {}
        nops = 1
        for p in parts:
            nops += p.nops
            leaves.update(p.leaves)
        if nops > NATIVE_CHAR_CAP or len(text) > NATIVE_CHAR_CAP:
            return None
        return CExpr(text, leaves, ctype, nops)

    def compose(self, op, lo) -> Optional[CExpr]:
        """CExpr for ``op`` applied to its operands, or None when any
        part has no bit-identical C rendering.  Bails *before* touching
        operand state when the opcode itself is unsupported."""
        oc = op.opcode
        if oc == "cmp":
            a = self._leaf(lo, op.operands[0])
            if a is None or a.ctype != "d":
                return None
            b = self._leaf(lo, op.operands[1])
            if b is None or b.ctype != "d":
                return None
            text = f"({a.text} {_C_CMP[op.attrs['pred']]} {b.text})"
            return self._merge("b", text, (a, b))
        if oc == "select":
            # Only the varying-condition form (np.where) is claimed;
            # uniform conditions lower to a Python conditional whose
            # untaken arm is never evaluated.
            if lo.vary_of(op.operands[0]) is not True:
                return None
            c = self._leaf(lo, op.operands[0])
            if c is None or c.ctype != "b":
                return None
            a = self._leaf(lo, op.operands[1])
            if a is None or a.ctype != "d":
                return None
            b = self._leaf(lo, op.operands[2])
            if b is None or b.ctype != "d":
                return None
            text = f"({c.text} ? {a.text} : {b.text})"
            return self._merge("d", text, (c, a, b))
        tmpl = _C_FLOAT_TEMPLATES.get(oc)
        want = "d"
        if tmpl is None:
            tmpl = _C_BOOL_TEMPLATES.get(oc)
            want = "b"
            if tmpl is None:
                return None
        parts = []
        for v in op.operands:
            p = self._leaf(lo, v)
            if p is None or p.ctype != want:
                return None
            parts.append(p)
        text = tmpl.format(a=parts[0].text,
                           b=parts[1].text if len(parts) > 1 else "",
                           c=parts[2].text if len(parts) > 2 else "")
        return self._merge(want, text, parts)

    def worthwhile(self, c: Optional[CExpr]) -> bool:
        """Claim only f64 results big enough to amortize the FFI call,
        with at least one varying leaf (else it is scalar math)."""
        return (c is not None and c.ctype == "d"
                and c.nops >= self.min_ops
                and any(k in ("vd", "vb") for k in c.leaves.values()))

    # -- kernel registry -----------------------------------------------
    def kernel_for(self, c: CExpr) -> tuple[str, list[str]]:
        """(generated-code global name, argument locals) for ``c``,
        deduplicating kernels by leaf-normalized C text."""
        leaves = list(c.leaves.items())
        text = c.text
        for i, (nm, kind) in enumerate(leaves):
            acc = f"p{i}[i]" if kind in ("vd", "vb") else f"p{i}"
            text = re.sub(rf"\b{nm}\b", acc, text)
        kinds = tuple(kind for _, kind in leaves)
        key = (text, kinds)
        gname = self._kernels.get(key)
        if gname is None:
            gname = f"_nk{len(self._kernels)}"
            self._kernels[key] = gname
            self.stats.kernels += 1
        self.stats.claimed += 1
        self.stats.claimed_ops += c.nops
        return gname, [nm for nm, _ in leaves]

    def _classify_claim(self, proven: bool) -> None:
        if proven:
            self.stats.claims_proven += 1
        else:
            self.stats.claims_unproven += 1

    def fold_name(self, kind: str, proven: bool = False) -> str:
        self.stats.folds += 1
        self._classify_claim(proven)
        return _FOLD_NAMES[kind]

    def gather_name(self, proven: bool = False) -> str:
        self.stats.gathers += 1
        self._classify_claim(proven)
        return _GATHER_NAME

    def scatter_name(self, proven: bool = False) -> str:
        self.stats.scatters += 1
        self._classify_claim(proven)
        return _SCATTER_NAME

    # -- C source ------------------------------------------------------
    def c_source(self) -> str:
        parts = [_C_PRELUDE]
        decls = {"vd": "const double* p{i}", "ud": "double p{i}",
                 "vb": "const unsigned char* p{i}", "ub": "int p{i}"}
        for (text, kinds), gname in self._kernels.items():
            params = "".join(
                ", " + decls[k].format(i=i) for i, k in enumerate(kinds))
            parts.append(
                f"void repro{gname}(long long n, double* out{params}) {{\n"
                f"    long long i;\n"
                f"    for (i = 0; i < n; i++) out[i] = {text};\n"
                f"}}\n")
        return "\n".join(parts)

    # -- build ---------------------------------------------------------
    def build(self, cache=None) -> dict:
        """Compile (or cache-load) the kernels; returns the globals the
        generated Python source references plus the ``_ld``/``_st``/
        ``_at`` helper overrides (claimed dynamically at run time, so
        they ship even when no expression kernel was claimed — every
        kernel-free function shares one prelude-only library through
        the memo).  Raises :class:`NativeBuildError` on compiler
        failure."""
        source = self.c_source()
        kernels = [(gname, kinds)
                   for (text, kinds), gname in self._kernels.items()]
        bindings, cached = _load_bindings(source, kernels, self.toolchain,
                                          cache, self.stats)
        self.stats.so_cached = cached
        return bindings


# ---------------------------------------------------------------------------
# Library build + FFI loading
# ---------------------------------------------------------------------------

#: (toolchain identity, source digest) -> bindings dict.  Keeps the
#: loaded libraries (referenced by the wrappers) alive for the process.
_LIB_MEMO: dict = {}

#: Library handles (and their FFI instances).  The raw cdata function
#: pointers held by the wrappers do NOT keep the shared object mapped;
#: without this anchor the GC would dlclose it and later calls through
#: the memoized pointers would fault.  Entries live for the process,
#: matching ``_LIB_MEMO`` (which never evicts either).
_LIB_KEEPALIVE: list = []


def _compile_so(source: str, toolchain: Toolchain, stats) -> bytes:
    """Run the C compiler over ``source``; returns the .so bytes."""
    with tempfile.TemporaryDirectory(prefix="repro-native-") as td:
        src = os.path.join(td, "kernels.c")
        out = os.path.join(td, "kernels.so")
        with open(src, "w") as f:
            f.write(source)
        t0 = time.perf_counter()
        try:
            r = subprocess.run(
                [toolchain.cc, *toolchain.flags, src, "-o", out, "-lm"],
                capture_output=True, timeout=300, text=True)
        except (OSError, subprocess.TimeoutExpired) as e:
            raise NativeBuildError(f"{toolchain.cc} failed: {e}") from e
        stats.compile_seconds += time.perf_counter() - t0
        if r.returncode != 0 or not os.path.exists(out):
            tail = (r.stderr or "").strip().splitlines()[-3:]
            raise NativeBuildError(
                f"{toolchain.cc} exited {r.returncode}: "
                f"{' | '.join(tail) or 'no diagnostics'}")
        with open(out, "rb") as f:
            return f.read()


def _load_bindings(source: str, kernels, toolchain: Toolchain, cache,
                   stats) -> tuple[dict, bool]:
    """Bindings for ``source``, via (in order) the in-process memo, the
    disk cache, or a fresh compile.  Returns ``(bindings, cached)``."""
    digest = hashlib.sha256(source.encode()).hexdigest()
    memo_key = (toolchain.identity, digest)
    hit = _LIB_MEMO.get(memo_key)
    if hit is not None:
        return hit, True
    path = None
    if cache is not None:
        path = cache.load_native(source, toolchain.identity)
    if path is not None:
        bindings = _dlopen_bindings(path, kernels)
        _LIB_MEMO[memo_key] = bindings
        return bindings, True
    blob = _compile_so(source, toolchain, stats)
    if cache is not None:
        path = cache.store_native(source, toolchain.identity, blob)
    if path is None:
        # No (writable) disk cache: load from a scratch file.  Deleting
        # the file after dlopen is fine on every platform we target.
        with tempfile.TemporaryDirectory(prefix="repro-native-") as td:
            path = os.path.join(td, "kernels.so")
            with open(path, "wb") as f:
                f.write(blob)
            bindings = _dlopen_bindings(path, kernels)
    else:
        bindings = _dlopen_bindings(path, kernels)
    _LIB_MEMO[memo_key] = bindings
    return bindings, False


def _dlopen_bindings(path: str, kernels) -> dict:
    """Load the shared object and wrap every kernel for generated code.

    Prefers cffi (ABI mode: ~3x lower call overhead); falls back to
    ctypes, which is always available.  Both paths share the wrapper
    codegen below through a common ``(raw fn, buffer-address fn)``
    surface.
    """
    if cffi is not None:
        ffi = cffi.FFI()
        decls = ["double repro_fold_add(double, void*, long long);",
                 "double repro_fold_min(double, void*, long long);",
                 "double repro_fold_max(double, void*, long long);",
                 "void repro_gather(void*, void*, void*, long long);",
                 "void repro_scatter(void*, void*, void*, long long);",
                 "long long repro_gather_bc(void*, long long, long long,"
                 " void*, void*, long long);",
                 "long long repro_scatter_bc(void*, long long, long long,"
                 " void*, void*, long long);",
                 "long long repro_scatter_fill(void*, long long, long long,"
                 " void*, double, long long);",
                 "long long repro_scatter_fold_add(void*, long long,"
                 " long long, void*, void*, long long);",
                 "long long repro_scatter_fold_min(void*, long long,"
                 " long long, void*, void*, long long);",
                 "long long repro_scatter_fold_max(void*, long long,"
                 " long long, void*, void*, long long);"]
        for gname, kinds in kernels:
            params = "".join(
                ", " + ("void*" if k in ("vd", "vb") else
                        "double" if k == "ud" else "int")
                for k in kinds)
            decls.append(f"void repro{gname}(long long, void*{params});")
        ffi.cdef("\n".join(decls))
        lib = ffi.dlopen(path)
        # ``ffi.from_buffer`` goes through a Python-level api wrapper;
        # binding the backend builtin with a cached char[] ctype skips
        # it.  Buffer exports dominate small-kernel call cost, so the
        # saving is per C call, not per compile.
        try:
            import _cffi_backend
            _bt = ffi.typeof("char[]")
            fb = functools.partial(_cffi_backend.from_buffer, _bt)

            def fb_w(a, _fb=_cffi_backend.from_buffer, _t=_bt):
                return _fb(_t, a, True)  # require_writable
        except (ImportError, AttributeError):  # pragma: no cover
            fb = ffi.from_buffer

            def fb_w(a, _fb=ffi.from_buffer):
                return _fb(a, require_writable=True)
        raw = {name: getattr(lib, sym) for name, sym in _FOLD_SYMS.items()}
        raw[_GATHER_NAME] = lib.repro_gather
        raw[_SCATTER_NAME] = lib.repro_scatter
        for name, sym in _HELPER_SYMS.items():
            raw[name] = getattr(lib, sym)
        for gname, _ in kernels:
            raw[gname] = getattr(lib, "repro" + gname)
        _LIB_KEEPALIVE.append((ffi, lib))
    else:  # pragma: no cover - environments without cffi
        import ctypes
        lib = ctypes.CDLL(path)
        c_ll, c_d, c_i, c_p = (ctypes.c_longlong, ctypes.c_double,
                               ctypes.c_int, ctypes.c_void_p)
        raw = {}
        for name, sym in _FOLD_SYMS.items():
            fn = getattr(lib, sym)
            fn.restype = c_d
            fn.argtypes = [c_d, c_p, c_ll]
            raw[name] = fn
        for name, sym in ((_GATHER_NAME, "repro_gather"),
                          (_SCATTER_NAME, "repro_scatter")):
            fn = getattr(lib, sym)
            fn.restype = None
            fn.argtypes = [c_p, c_p, c_p, c_ll]
            raw[name] = fn
        for name, sym in _HELPER_SYMS.items():
            fn = getattr(lib, sym)
            fn.restype = c_ll
            fn.argtypes = [c_p, c_ll, c_ll, c_p,
                           c_d if name == "scatter_fill" else c_p, c_ll]
            raw[name] = fn
        for gname, kinds in kernels:
            fn = getattr(lib, "repro" + gname)
            fn.restype = None
            fn.argtypes = [c_ll, c_p] + [
                c_p if k in ("vd", "vb") else c_d if k == "ud" else c_i
                for k in kinds]
            raw[gname] = fn

        def fb(a, _c=ctypes.c_void_p):
            if not a.flags.c_contiguous:
                raise BufferError("not C-contiguous")
            return _c(a.ctypes.data)

        def fb_w(a, _c=ctypes.c_void_p):
            f = a.flags
            if not f.c_contiguous or not f.writeable:
                raise BufferError("not writable C-contiguous")
            return _c(a.ctypes.data)

        _LIB_KEEPALIVE.append((lib,))

    bindings = {}
    for gname, kinds in kernels:
        bindings[gname] = _make_expr_wrapper(gname, kinds, raw[gname], fb)
    for name in _FOLD_SYMS:
        bindings[name] = _FoldKernel(raw[name], fb)
    bindings[_GATHER_NAME] = _GatherKernel(raw[_GATHER_NAME], fb)
    bindings[_SCATTER_NAME] = _ScatterKernel(raw[_SCATTER_NAME], fb, fb_w)
    bindings.update(_make_helper_overrides(raw, fb, fb_w))
    return bindings


#: Exceptions that mean "buffer does not match the static claim": the
#: wrapper returns None and the generated NumPy fallback runs.
_CLAIM_ERRORS = (BufferError, ValueError, TypeError)


def _make_expr_wrapper(gname: str, kinds, fn, fb):
    """Build the per-kernel claim wrapper with a generated (specialized)
    argument check — no per-call loop over kinds."""
    params = [f"a{i}" for i in range(len(kinds))]
    lines = [f"def {gname}(n, {', '.join(params)}):"
             if params else f"def {gname}(n):"]
    for p, k in zip(params, kinds):
        if k == "vd":
            lines.append(f"    if type({p}) is not _nd or {p}.dtype is not "
                         f"_F8 or {p}.size != n: return None")
        elif k == "vb":
            lines.append(f"    if type({p}) is not _nd or {p}.dtype is not "
                         f"_B1 or {p}.size != n: return None")
        else:
            lines.append(f"    if type({p}) is _nd: return None")
    args = "".join(
        ", " + (f"_fb({p})" if k in ("vd", "vb") else p)
        for p, k in zip(params, kinds))
    lines += ["    out = _empty(n)",
              f"    try: _fn(n, _fb(out){args})",
              "    except _ERRS: return None",
              "    return out"]
    globs = {"_nd": np.ndarray, "_F8": _F8, "_B1": _B1,
             "_empty": np.empty, "_fb": fb, "_fn": fn,
             "_ERRS": _CLAIM_ERRORS}
    exec("\n".join(lines), globs)  # noqa: S102 - own codegen
    return globs[gname]


class _FoldKernel:
    """Ordered sequential fold ``data[x] op= v`` (identical to the
    ``ufunc.accumulate`` the compiled backend open-codes)."""

    __slots__ = ("fn", "fb")

    def __init__(self, fn, fb) -> None:
        self.fn = fn
        self.fb = fb

    def __call__(self, data, x, v):
        if data.dtype is not _F8 or v.dtype is not _F8:
            return None
        try:
            return self.fn(float(data[x]), self.fb(v), v.size)
        except _CLAIM_ERRORS:
            return None


class _GatherKernel:
    """Fancy gather ``data[x]`` for an in-bounds index vector (bounds
    were already checked by the generated code's endpoint test)."""

    __slots__ = ("fn", "fb")

    def __init__(self, fn, fb) -> None:
        self.fn = fn
        self.fb = fb

    def __call__(self, data, x):
        if (data.dtype is not _F8 or type(x) is not np.ndarray
                or x.dtype is not _I8):
            return None
        n = x.size
        if n < NATIVE_MIN_GATHER:
            return None
        out = np.empty(n)
        try:
            self.fn(self.fb(data), self.fb(x), self.fb(out), n)
        except _CLAIM_ERRORS:
            return None
        return out


class _ScatterKernel:
    """Fancy scatter ``data[x] = v`` for a *strictly monotone* (hence
    duplicate-free) in-bounds index vector; duplicate-free means NumPy's
    last-wins semantics cannot be observed, so element order is free."""

    __slots__ = ("fn", "fb", "fbw")

    def __init__(self, fn, fb, fbw) -> None:
        self.fn = fn
        self.fb = fb
        self.fbw = fbw

    def __call__(self, data, x, v):
        if (data.dtype is not _F8 or type(x) is not np.ndarray
                or x.dtype is not _I8 or type(v) is not np.ndarray
                or v.dtype is not _F8 or v.size != x.size
                or x.size < NATIVE_MIN_GATHER):
            return None
        try:
            self.fn(self.fbw(data), self.fb(x), self.fb(v), x.size)
        except _CLAIM_ERRORS:
            return None
        return True


def _make_helper_overrides(raw, fb, fb_w) -> dict:
    """Native-accelerated replacements for the generic ``_ld``/``_st``/
    ``_at`` runtime helpers (the generated code's global names — the
    bindings dict shadows :mod:`.compile`'s versions at exec time).

    Each override claims the hot vector shapes — float64 data, 1-D
    int64 index, integer pointer offset — with the bounds check folded
    into the same C call that moves the data, and delegates every other
    shape (and every failed claim, including out-of-bounds, which the
    Python path re-detects and raises exactly) to the original helper.
    Cost accounting matches the originals line for line.
    """
    gbc = raw["gather_bc"]
    sbc = raw["scatter_bc"]
    sfill = raw["scatter_fill"]
    sfold = {"add": raw["sfold_add"], "min": raw["sfold_min"],
             "max": raw["sfold_max"]}
    fold = {kind: raw[name] for kind, name in _FOLD_NAMES.items()}
    _nda = np.ndarray
    _empty = np.empty

    def _ld(rt, ptr, idx):
        if type(idx) is not _nda:
            # Scalar fast path, inlined from compile._ld (an extra
            # delegating frame here costs ~0.2us on the adjoint
            # sweeps' hottest call).
            off = ptr.offset
            if type(off) is _nda:
                return _py_ld(rt, ptr, idx)
            buf = ptr.buffer
            if buf.freed:
                buf.check_alive()
            at = off + idx
            data = buf.data
            if at < 0 or at >= len(data):
                Memory._check_bounds(buf, at)
            c = rt.cost
            if buf.stream:
                c.stream_bytes += 8
            else:
                c.load_bytes += 8
            return data[at]
        buf = ptr.buffer
        off = ptr.offset
        data = buf.data
        n = idx.size
        if (buf.freed or type(off) is not int or idx.dtype is not _I8
                or idx.ndim != 1 or data.dtype is not _F8 or n == 0):
            return _py_ld(rt, ptr, idx)
        out = _empty(n)
        try:
            bad = gbc(fb(data), data.size, off, fb(idx), fb_w(out), n)
        except _CLAIM_ERRORS:
            return _py_ld(rt, ptr, idx)
        if bad >= 0:
            return _py_ld(rt, ptr, idx)
        c = rt.cost
        if buf.stream:
            c.stream_bytes += n * 8
        else:
            c.load_bytes += n * 8
        return out

    def _st(rt, val, ptr, idx):
        if type(idx) is not _nda:
            if type(val) is _nda or type(ptr.offset) is _nda:
                return _py_st(rt, val, ptr, idx)
            # Scalar fast path, inlined from compile._st.
            buf = ptr.buffer
            if buf.freed:
                buf.check_alive()
            at = ptr.offset + idx
            data = buf.data
            if at < 0 or at >= len(data):
                Memory._check_bounds(buf, at)
            data[at] = val
            c = rt.cost
            if buf.stream:
                c.stream_bytes += 8
            else:
                c.store_bytes += 8
            return
        buf = ptr.buffer
        off = ptr.offset
        data = buf.data
        n = idx.size
        if (buf.freed or type(off) is not int or idx.dtype is not _I8
                or idx.ndim != 1 or data.dtype is not _F8 or n == 0):
            return _py_st(rt, val, ptr, idx)
        try:
            if type(val) is _nda:
                if val.dtype is not _F8 or val.shape != idx.shape:
                    return _py_st(rt, val, ptr, idx)
                bad = sbc(fb_w(data), data.size, off, fb(idx), fb(val), n)
            else:
                bad = sfill(fb_w(data), data.size, off, fb(idx),
                            float(val), n)
        except _CLAIM_ERRORS:
            return _py_st(rt, val, ptr, idx)
        if bad >= 0:
            return _py_st(rt, val, ptr, idx)
        w = n if n > 1 else 1
        c = rt.cost
        if buf.stream:
            c.stream_bytes += w * 8
        else:
            c.store_bytes += w * 8

    def _at(rt, kind, via_reduction, val, ptr, idx, d=0):
        buf = ptr.buffer
        off = ptr.offset
        data = buf.data
        if type(idx) is not _nda:
            # Scalar target folding a lane vector: the adjoint of a
            # broadcast read, and the hottest _at shape by far.
            if (type(off) is not int or buf.freed
                    or type(val) is not _nda or val.ndim != 1
                    or val.dtype is not _F8 or data.dtype is not _F8
                    or val.size == 0):
                return _py_at(rt, kind, via_reduction, val, ptr, idx, d)
            at = off + idx
            if at < 0 or at >= data.size:
                return _py_at(rt, kind, via_reduction, val, ptr, idx, d)
            try:
                data[at] = fold[kind](float(data[at]), fb(val), val.size)
            except _CLAIM_ERRORS:
                return _py_at(rt, kind, via_reduction, val, ptr, idx, d)
            w = val.size if val.size > 1 else 1
        else:
            n = idx.size
            if (buf.freed or type(off) is not int or idx.dtype is not _I8
                    or idx.ndim != 1 or data.dtype is not _F8
                    or type(val) is not _nda or val.shape != idx.shape
                    or val.dtype is not _F8 or n == 0):
                return _py_at(rt, kind, via_reduction, val, ptr, idx, d)
            try:
                bad = sfold[kind](fb_w(data), data.size, off, fb(idx),
                                  fb(val), n)
            except _CLAIM_ERRORS:
                return _py_at(rt, kind, via_reduction, val, ptr, idx, d)
            if bad >= 0:
                return _py_at(rt, kind, via_reduction, val, ptr, idx, d)
            w = n if n > 1 else 1
        c = rt.cost
        if via_reduction:
            c.reduction_ops += w
            c.store_bytes += w * 8
        else:
            c.atomic_ops += w
            c.store_bytes += w * 8
            c.load_bytes += w * 8

    return {"_ld": _ld, "_st": _st, "_at": _at}


# ---------------------------------------------------------------------------
# Backend
# ---------------------------------------------------------------------------

class NativeBackend(CompiledBackend):
    """The compiled backend with the native kernel tier layered on.

    Construction probes the toolchain once; when none is usable the
    backend *is* the compiled backend (identical code, identical
    results) with ``fallback_reason`` set.  Per-function build errors
    and claim-free functions degrade individually, recorded in
    ``function_fallbacks``.
    """

    def __init__(self, interp, strict: bool = False) -> None:
        super().__init__(interp, strict)
        cfg = interp.config
        cc = getattr(cfg, "cc", None)
        self.toolchain = probe_toolchain(cc)
        if self.toolchain is None:
            want = cc or os.environ.get("CC")
            tried = want if want else ", ".join(_DEFAULT_CANDIDATES)
            self.fallback_reason = (
                f"no usable C compiler (tried: {tried}); running the "
                f"generated-NumPy path")
        else:
            self.fallback_reason = None
            # The native lowering emits different source (kernel-call
            # sites), so its artifacts must never share the plain
            # compiled backend's per-function memo or cache entries.
            self.fingerprint = (
                f"{self.fingerprint}|native={self.toolchain.identity}")
        #: fn name -> NativeStats of its most recent compile.
        self.native_stats: dict[str, NativeStats] = {}
        #: fn name -> reason this function runs without native kernels.
        self.function_fallbacks: dict[str, str] = {}

    # ------------------------------------------------------------------
    def _compile(self, fn, fingerprint: str):
        if self.toolchain is None:
            return super()._compile(fn, fingerprint)
        emitter = NativeEmitter(self.toolchain)
        try:
            return compile_function(fn, fusion=self.fusion,
                                    cache=self.cache,
                                    fingerprint=fingerprint,
                                    native=emitter,
                                    module=self.rt.module)
        except NativeBuildError as e:
            if self.strict:
                raise
            self.function_fallbacks[fn.name] = str(e)
            return super()._compile(fn, fingerprint)

    def get_compiled(self, fn):
        code = super().get_compiled(fn)
        if code is not None:
            ns = getattr(code, "__native_stats__", None)
            if ns is not None:
                self.native_stats[fn.name] = ns
                if not ns.used and fn.name not in self.function_fallbacks:
                    self.function_fallbacks[fn.name] = (
                        "no claimable kernels (dynamic native helpers "
                        "still active)")
            elif fn.name not in self.function_fallbacks:
                # Compiled without an emitter (build error earlier, or
                # the memo holds a plain-compiled artifact).
                self.function_fallbacks[fn.name] = (
                    self.fallback_reason or "compiled without native kernels")
        return code

    # ------------------------------------------------------------------
    def compile_stats(self) -> dict:
        out = super().compile_stats()
        agg = NativeStats()
        for st in self.native_stats.values():
            agg.merge(st)
        out["native"] = {
            "enabled": self.toolchain is not None,
            "cc": self.toolchain.identity if self.toolchain else None,
            "ffi": "cffi" if cffi is not None else "ctypes",
            "fallback_reason": self.fallback_reason,
            "function_fallbacks": dict(self.function_fallbacks),
            **agg.as_dict(),
        }
        return out
