"""Runtime memory model of the interpreter.

A buffer is a typed, bounds-checked slab; a pointer is a (buffer,
offset) pair.  Offsets may be NumPy index vectors during vectorized
execution of parallel loop bodies.  Buffers live in one of three
spaces:

* ``stack`` — function-local, freed implicitly;
* ``heap``  — explicit ``free``;
* ``gc``    — garbage collected (Julia frontend).  Collection happens
  only at ``jl.safepoint`` calls when GC stress mode is enabled, with a
  root set of (a) buffers covered by active ``gc_preserve`` tokens,
  (b) buffers reachable from function-argument buffers, and (c) buffers
  reachable from other roots through stored pointers.  Raw pointers
  extracted with ``jl.arrayptr`` do *not* root their buffer — that is
  precisely the hazard ``gc_preserve`` exists for (paper §VI-C2).
"""

from __future__ import annotations

import itertools
from typing import Optional, Union

import numpy as np

from ..ir.types import F64, I1, I64, PointerType, Type

_buffer_ids = itertools.count(1)

Index = Union[int, np.ndarray]


class InterpreterError(Exception):
    pass


def _np_dtype(elem: Type):
    if elem is F64:
        return np.float64
    if elem is I64:
        return np.int64
    if elem is I1:
        return np.bool_
    return object  # pointers, handles


class CellClocks:
    """Per-cell happens-before metadata for the race sanitizer.

    One instance shadows one :class:`Buffer` when the dynamic race
    checker (:mod:`repro.sanitize.racecheck`) is enabled.  Each cell
    remembers its last-writer and last-reader *epochs* — ``(thread,
    clock-at-access)`` pairs in FastTrack style — plus the op that
    performed the access, so a :class:`~repro.sanitize.racecheck.
    RaceReport` can name both conflicting operations.  Cells observed
    by several concurrent readers escalate into the sparse ``shared``
    read map.

    Allocation happens lazily on first sanitized access; when the
    sanitizer is off (the default) a buffer carries only a ``None``
    slot and the interpreter hot paths never touch this class.
    """

    __slots__ = ("w_tid", "w_clk", "w_atomic", "w_op",
                 "r_tid", "r_clk", "r_atomic", "r_op", "shared")

    def __init__(self, count: int) -> None:
        self.w_tid = np.full(count, -1, dtype=np.int64)
        self.w_clk = np.zeros(count, dtype=np.int64)
        self.w_atomic = np.zeros(count, dtype=bool)
        self.w_op = np.empty(count, dtype=object)
        self.r_tid = np.full(count, -1, dtype=np.int64)
        self.r_clk = np.zeros(count, dtype=np.int64)
        self.r_atomic = np.zeros(count, dtype=bool)
        self.r_op = np.empty(count, dtype=object)
        #: Escalated read cells: index -> {tid: (clock, op)}.
        self.shared: dict[int, dict] = {}


class Buffer:
    """A contiguous allocation of ``count`` slots of one element type."""

    __slots__ = ("bid", "elem", "data", "space", "freed", "name",
                 "thread_local_of", "stream", "adcache", "shadow_meta")

    def __init__(self, count: int, elem: Type, space: str = "stack",
                 name: str = "", data: Optional[np.ndarray] = None) -> None:
        self.bid = next(_buffer_ids)
        self.elem = elem
        if data is not None:
            self.data = data
        else:
            dt = _np_dtype(elem)
            if dt is object:
                self.data = np.empty(int(count), dtype=object)
            else:
                self.data = np.zeros(int(count), dtype=dt)
        self.space = space
        self.freed = False
        self.name = name
        #: Streaming buffer (AD value cache): accesses bypass the cache
        #: hierarchy in the performance model.
        self.stream = False
        #: AD primal-state storage (value caches / checkpoint snapshots);
        #: tracked by Memory.adcache_bytes for peak-memory reporting.
        self.adcache = False
        #: Thread id if this buffer was allocated inside a parallel
        #: region (then it is thread-local by construction).
        self.thread_local_of: Optional[int] = None
        #: Per-cell vector-clock metadata (:class:`CellClocks`), created
        #: lazily by the race sanitizer; always None when sanitizing is
        #: off so the default hot paths pay nothing.
        self.shadow_meta: Optional[CellClocks] = None

    @property
    def count(self) -> int:
        return len(self.data)

    def check_alive(self) -> None:
        if self.freed:
            raise InterpreterError(
                f"use of freed/collected buffer {self.name or self.bid} "
                f"(space={self.space})")

    def __repr__(self) -> str:
        return (f"<Buffer #{self.bid} {self.name or ''} {self.count} x "
                f"{self.elem} {self.space}{' FREED' if self.freed else ''}>")


class PtrVal:
    """Runtime pointer: buffer + element offset.

    ``raw=True`` marks a pointer obtained through ``jl.arrayptr`` (or
    derived from one): it does not keep its GC buffer alive.
    """

    __slots__ = ("buffer", "offset", "raw")

    def __init__(self, buffer: Buffer, offset: Index = 0,
                 raw: bool = False) -> None:
        self.buffer = buffer
        self.offset = offset
        self.raw = raw

    def added(self, idx: Index) -> "PtrVal":
        return PtrVal(self.buffer, self.offset + idx, self.raw)

    def resolve(self, idx: Index) -> Index:
        return self.offset + idx

    def __repr__(self) -> str:
        return f"<ptr {self.buffer!r} +{self.offset}{' raw' if self.raw else ''}>"


class TokenVal:
    """GC-preserve token: roots a set of buffers until ended."""

    __slots__ = ("buffers", "active")

    def __init__(self, buffers: list[Buffer]) -> None:
        self.buffers = buffers
        self.active = True


class TaskVal:
    """A completed-eagerly task handle with its simulated schedule."""

    __slots__ = ("cost", "spawn_clock", "finish_clock", "tid", "rc_tid")
    _ids = itertools.count()

    def __init__(self, cost, spawn_clock: float) -> None:
        self.cost = cost
        self.spawn_clock = spawn_clock
        self.finish_clock = spawn_clock
        self.tid = next(TaskVal._ids)
        #: Race-checker logical thread of the task body (-1 when off).
        self.rc_tid = -1


class DynCache:
    """Growable LIFO cache — Enzyme allocation strategy 3 (§IV-C)."""

    __slots__ = ("items",)

    def __init__(self) -> None:
        self.items: list = []

    def push(self, v) -> None:
        self.items.append(v)

    def pop(self):
        if not self.items:
            raise InterpreterError("cache.pop from empty dynamic cache")
        return self.items.pop()

    def __len__(self) -> int:
        return len(self.items)


class Memory:
    """All buffers of one interpreter instance (one MPI rank)."""

    def __init__(self, gc_stress: bool = False) -> None:
        self.buffers: dict[int, Buffer] = {}
        self.gc_stress = gc_stress
        self._preserve_tokens: list[TokenVal] = []
        self._arg_roots: set[int] = set()
        self.gc_collections = 0
        self.gc_freed = 0
        #: Live / peak bytes of AD primal-state storage (buffers whose
        #: alloc op carries the ``adcache`` attribute).
        self.adcache_bytes = 0
        self.adcache_peak = 0

    def note_adcache(self, buf: Buffer) -> None:
        """Mark ``buf`` as AD cache storage and update the peak."""
        buf.adcache = True
        self.adcache_bytes += buf.count * buf.elem.size_bytes
        if self.adcache_bytes > self.adcache_peak:
            self.adcache_peak = self.adcache_bytes

    # ------------------------------------------------------------------
    def alloc(self, count: int, elem: Type, space: str, name: str = "",
              thread_local_of: Optional[int] = None) -> PtrVal:
        if count < 0:
            raise InterpreterError(f"negative allocation size {count}")
        buf = Buffer(count, elem, space, name)
        buf.thread_local_of = thread_local_of
        self.buffers[buf.bid] = buf
        return PtrVal(buf, 0)

    def wrap_external(self, array: np.ndarray, elem: Type,
                      name: str = "") -> PtrVal:
        """Wrap a caller-owned NumPy array (no copy) as an argument buffer."""
        buf = Buffer(len(array), elem, space="heap", name=name, data=array)
        self.buffers[buf.bid] = buf
        self._arg_roots.add(buf.bid)
        return PtrVal(buf, 0)

    def free(self, ptr: PtrVal) -> None:
        buf = ptr.buffer
        if buf.freed:
            raise InterpreterError(f"double free of {buf!r}")
        if (np.ndim(ptr.offset) == 0 and int(np.asarray(ptr.offset)) != 0):
            raise InterpreterError("free of interior pointer")
        buf.freed = True
        if buf.adcache:
            self.adcache_bytes -= buf.count * buf.elem.size_bytes

    # ------------------------------------------------------------------
    # GC (Julia frontend model)
    # ------------------------------------------------------------------
    def preserve_begin(self, ptrs: list[PtrVal]) -> TokenVal:
        token = TokenVal([p.buffer for p in ptrs])
        self._preserve_tokens.append(token)
        return token

    def preserve_end(self, token: TokenVal) -> None:
        token.active = False

    def safepoint(self) -> None:
        """Collect unreachable GC buffers (only under GC stress)."""
        if not self.gc_stress:
            return
        self.gc_collections += 1
        roots: set[int] = set(self._arg_roots)
        for token in self._preserve_tokens:
            if token.active:
                roots.update(b.bid for b in token.buffers)
        # Transitive reachability through stored (non-raw) pointers.
        work = list(roots)
        reachable = set(roots)
        while work:
            bid = work.pop()
            buf = self.buffers.get(bid)
            if buf is None or buf.data.dtype != object:
                continue
            for cell in buf.data:
                if isinstance(cell, PtrVal) and not cell.raw:
                    cbid = cell.buffer.bid
                    if cbid not in reachable:
                        reachable.add(cbid)
                        work.append(cbid)
        for buf in self.buffers.values():
            if buf.space == "gc" and not buf.freed and buf.bid not in reachable:
                buf.freed = True
                self.gc_freed += 1
                if buf.adcache:
                    self.adcache_bytes -= buf.count * buf.elem.size_bytes

    # ------------------------------------------------------------------
    # Access helpers (bounds-checked)
    # ------------------------------------------------------------------
    @staticmethod
    def _check_bounds(buf: Buffer, idx: Index) -> None:
        if isinstance(idx, np.ndarray):
            if idx.size and (idx.min() < 0 or idx.max() >= buf.count):
                bad_lo, bad_hi = int(idx.min()), int(idx.max())
                raise InterpreterError(
                    f"index out of bounds [{bad_lo}, {bad_hi}] for {buf!r}")
        else:
            if idx < 0 or idx >= buf.count:
                raise InterpreterError(
                    f"index {idx} out of bounds for {buf!r}")

    def load(self, ptr: PtrVal, idx: Index):
        buf = ptr.buffer
        buf.check_alive()
        at = ptr.resolve(idx)
        self._check_bounds(buf, at)
        # Fancy indexing copies; scalar indexing returns a scalar. Either
        # way the result does not alias the buffer.
        return buf.data[at]

    def store(self, ptr: PtrVal, idx: Index, value,
              mask: Optional[np.ndarray] = None) -> None:
        buf = ptr.buffer
        buf.check_alive()
        at = ptr.resolve(idx)
        self._check_bounds(buf, at)
        if mask is None:
            buf.data[at] = value
        else:
            at_arr = np.broadcast_to(np.asarray(at), mask.shape)
            val_arr = np.broadcast_to(np.asarray(value), mask.shape)
            buf.data[at_arr[mask]] = val_arr[mask]

    def atomic(self, kind: str, ptr: PtrVal, idx: Index, value,
               mask: Optional[np.ndarray] = None) -> None:
        buf = ptr.buffer
        buf.check_alive()
        at = ptr.resolve(idx)
        self._check_bounds(buf, at)
        at_arr = np.asarray(at)
        val_arr = np.asarray(value)
        if mask is not None:
            shape = np.broadcast_shapes(at_arr.shape, val_arr.shape, mask.shape)
            at_arr = np.broadcast_to(at_arr, shape)[mask]
            val_arr = np.broadcast_to(val_arr, shape)[mask]
        ufunc = {"add": np.add, "min": np.minimum, "max": np.maximum}[kind]
        if at_arr.ndim == 0 and val_arr.ndim == 0:
            cur = buf.data[int(at_arr)]
            buf.data[int(at_arr)] = ufunc(cur, val_arr)
        else:
            shape = np.broadcast_shapes(at_arr.shape, val_arr.shape)
            ufunc.at(buf.data, np.broadcast_to(at_arr, shape).ravel(),
                     np.broadcast_to(val_arr, shape).ravel())

    def memset(self, ptr: PtrVal, value, count: int) -> None:
        buf = ptr.buffer
        buf.check_alive()
        start = int(ptr.offset)
        if start < 0 or start + count > buf.count:
            raise InterpreterError(f"memset out of bounds on {buf!r}")
        buf.data[start:start + count] = value

    def memcpy(self, dst: PtrVal, src: PtrVal, count: int) -> None:
        dst.buffer.check_alive()
        src.buffer.check_alive()
        ds, ss = int(dst.offset), int(src.offset)
        if ds + count > dst.buffer.count or ss + count > src.buffer.count:
            raise InterpreterError("memcpy out of bounds")
        dst.buffer.data[ds:ds + count] = src.buffer.data[ss:ss + count]
