"""High-level execution helper.

Wraps NumPy arrays / Python scalars into interpreter runtime values
according to the target function's signature, runs the function, and
exposes the simulated clock and cost counters.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from ..ir.function import Module
from ..ir.types import F64, I1, I64, PointerType
from .interpreter import ExecConfig, Interpreter
from .memory import InterpreterError, PtrVal


def _np_elem_dtype(elem):
    if elem is F64:
        return np.float64
    if elem is I64:
        return np.int64
    if elem is I1:
        return np.bool_
    raise InterpreterError(
        f"no NumPy dtype for element type {elem!r}: external buffers must "
        f"hold f64, i64 or i1 elements (pointer/handle buffers cannot be "
        f"passed from the outside)")


class Executor:
    """Run functions of a module with NumPy in/out buffers."""

    def __init__(self, module: Module,
                 config: Optional[ExecConfig] = None) -> None:
        self.module = module
        self.interp = Interpreter(module, config)
        cfg = self.interp.config
        if cfg.backend in ("compiled", "native"):
            # Sanitizer runs pin the interpreter: the race checker must
            # observe every individual access, which fused NumPy kernels
            # by construction do not surface.
            if not cfg.sanitize:
                if cfg.backend == "native":
                    from .native import NativeBackend
                    self.interp.backend = NativeBackend(self.interp)
                else:
                    from .compile import CompiledBackend
                    self.interp.backend = CompiledBackend(self.interp)
        elif cfg.backend != "interp":
            raise InterpreterError(
                f"unknown backend {cfg.backend!r} (want 'interp', "
                f"'compiled' or 'native')")

    @property
    def clock(self) -> float:
        return self.interp.clock

    @property
    def cost(self):
        return self.interp.raw_total

    @property
    def racecheck(self):
        """The dynamic race checker (None unless ExecConfig.sanitize)."""
        return self.interp.racecheck

    @property
    def races(self) -> list:
        """RaceReports collected so far (empty when sanitizing is off)."""
        rc = self.interp.racecheck
        return list(rc.reports) if rc is not None else []

    def compile_stats(self) -> Optional[dict]:
        """Fusion + compile-cache counters for the compiled backend.

        None when running under the plain interpreter (or when the
        sanitizer pinned it).
        """
        be = self.interp.backend
        return be.compile_stats() if be is not None else None

    def adjoint_stats(self) -> dict:
        """Peak / live bytes of AD primal-state storage (value caches,
        checkpoint snapshots) observed by this executor's memory."""
        mem = self.interp.memory
        return {"peak_cached_bytes": mem.adcache_peak,
                "cached_bytes": mem.adcache_bytes}

    def reset_clock(self) -> None:
        self.interp.clock = 0.0
        from ..perf.cost import CostVector
        self.interp.raw_total = CostVector()
        self.interp.cost = CostVector()

    def wrap_args(self, fn_name: str, args: tuple) -> list:
        fn = self.module.functions[fn_name]
        if len(args) != len(fn.args):
            raise TypeError(
                f"{fn_name} expects {len(fn.args)} arguments, got {len(args)}")
        wrapped: list[Any] = []
        for formal, actual in zip(fn.args, args):
            t = formal.type
            if isinstance(t, PointerType):
                if isinstance(actual, PtrVal):
                    wrapped.append(actual)
                    continue
                arr = np.asarray(actual)
                if t.elem is F64 or t.elem is I64 or t.elem is I1:
                    want = _np_elem_dtype(t.elem)
                    if arr.dtype != want:
                        raise TypeError(
                            f"argument {formal.name!r} of {fn_name} needs "
                            f"dtype {np.dtype(want)}, got {arr.dtype} (pass "
                            f"the right dtype; implicit copies would break "
                            f"aliasing)")
                elif arr.dtype != object:
                    # Handle buffers (tasks, tokens, pointers) have no
                    # numeric dtype; they must come in as object arrays.
                    raise TypeError(
                        f"argument {formal.name!r} of {fn_name} holds "
                        f"{t.elem} handles; pass a dtype=object array")
                if arr.ndim != 1:
                    raise TypeError(
                        f"argument {formal.name!r}: buffers must be 1-D")
                extent = formal.attrs.get("extent")
                if isinstance(extent, int) and arr.size < extent:
                    # The declared extent is what bounds certification
                    # proved accesses against; a shorter buffer would
                    # reach certified-but-unchecked accesses.
                    raise TypeError(
                        f"argument {formal.name!r} of {fn_name} declares "
                        f"extent {extent} but the buffer has only "
                        f"{arr.size} elements")
                wrapped.append(self.interp.memory.wrap_external(
                    arr, t.elem, name=formal.name))
            elif t is F64:
                wrapped.append(float(actual))
            elif t is I64:
                wrapped.append(int(actual))
            elif t is I1:
                wrapped.append(bool(actual))
            else:
                wrapped.append(actual)
        return wrapped

    def run(self, fn_name: str, *args) -> Any:
        return self.interp.run(fn_name, self.wrap_args(fn_name, args))

    def call_generator(self, fn_name: str, *args):
        return self.interp.call_generator(fn_name,
                                          self.wrap_args(fn_name, args))


def run_function(module: Module, fn_name: str, *args,
                 config: Optional[ExecConfig] = None) -> Any:
    """One-shot convenience: build an Executor and run."""
    return Executor(module, config).run(fn_name, *args)
