"""repro.interp — execution engine for the repro IR.

Executes IR with real numerics (scalar or vectorized over parallel-loop
chunks), accounts abstract instruction costs, and yields cooperative
events for MPI and thread barriers so the simulated runtimes in
:mod:`repro.parallel` can coordinate ranks and threads.
"""

from .compile import CompiledBackend, compile_function
from .diskcache import CompileCache, config_fingerprint, resolve_cache_dir
from .events import BarrierEvent, Event, MPIEvent
from .executor import Executor, run_function
from .fusion import FusionStats
from .interpreter import ExecConfig, Interpreter, TaskScheduler, chunk_bounds
from .lowering import Lowerer, LoweringError, lower_function
from .native import (
    NativeBackend,
    NativeBuildError,
    NativeStats,
    Toolchain,
    probe_toolchain,
)
from .memory import (
    Buffer,
    DynCache,
    InterpreterError,
    Memory,
    PtrVal,
    TaskVal,
    TokenVal,
)

__all__ = [
    "BarrierEvent", "Event", "MPIEvent",
    "Executor", "run_function",
    "ExecConfig", "Interpreter", "TaskScheduler", "chunk_bounds",
    "CompiledBackend", "compile_function",
    "CompileCache", "config_fingerprint", "resolve_cache_dir",
    "FusionStats",
    "Lowerer", "LoweringError", "lower_function",
    "NativeBackend", "NativeBuildError", "NativeStats", "Toolchain",
    "probe_toolchain",
    "Buffer", "DynCache", "InterpreterError", "Memory", "PtrVal",
    "TaskVal", "TokenVal",
]
