"""Task DAGs: the abstraction §IV-A differentiates.

Fork-join programs induce a directed acyclic graph of permissible
orderings: a node with multiple children is a spawn, a node with
multiple predecessors is a sync.  Reverse-mode AD reverses that DAG —
spawns become syncs and syncs become spawns — and the adjoint program's
parallelism is the transpose of the primal's.

This module gives the standalone DAG machinery: construction,
reversal, topological execution, and greedy list scheduling (used to
check that the reversed DAG preserves the primal's critical path /
parallel slackness, which is the theoretical backbone of the paper's
"the gradient scales like the primal" result).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Hashable, Optional

import networkx as nx


class TaskDAG:
    """A DAG of tasks with execution costs."""

    def __init__(self) -> None:
        self.g = nx.DiGraph()

    def add_task(self, tid: Hashable, cost: float = 1.0) -> Hashable:
        self.g.add_node(tid, cost=float(cost))
        return tid

    def add_dep(self, before: Hashable, after: Hashable) -> None:
        """``after`` may only run once ``before`` completed."""
        self.g.add_edge(before, after)
        if not nx.is_directed_acyclic_graph(self.g):
            self.g.remove_edge(before, after)
            raise ValueError(f"dependency {before} -> {after} creates a "
                             f"cycle")

    # ------------------------------------------------------------------
    def reverse(self) -> "TaskDAG":
        """The adjoint DAG: every edge flipped (§IV-A).

        A primal spawn (out-degree > 1) becomes an adjoint sync
        (in-degree > 1) and vice versa.
        """
        out = TaskDAG()
        for n, data in self.g.nodes(data=True):
            out.add_task(n, data["cost"])
        out.g.add_edges_from((b, a) for a, b in self.g.edges())
        return out

    # ------------------------------------------------------------------
    def spawns(self) -> set:
        return {n for n in self.g if self.g.out_degree(n) > 1}

    def syncs(self) -> set:
        return {n for n in self.g if self.g.in_degree(n) > 1}

    def work(self) -> float:
        """T_1: total work."""
        return sum(d["cost"] for _, d in self.g.nodes(data=True))

    def span(self) -> float:
        """T_inf: critical-path length."""
        if not self.g:
            return 0.0
        longest: dict = {}
        for n in nx.topological_sort(self.g):
            c = self.g.nodes[n]["cost"]
            longest[n] = c + max(
                (longest[p] for p in self.g.predecessors(n)), default=0.0)
        return max(longest.values())

    def topo_order(self) -> list:
        return list(nx.topological_sort(self.g))

    def execute(self, run: Callable[[Hashable], None]) -> list:
        """Run every task once in a dependency-respecting order."""
        order = self.topo_order()
        for t in order:
            run(t)
        return order


def list_schedule(dag: TaskDAG, nworkers: int) -> float:
    """Greedy list-scheduling makespan on ``nworkers`` workers.

    Guaranteed within 2x of optimal (Graham's bound); used to predict
    the parallel runtime of both the primal DAG and its reversal.
    """
    if nworkers <= 0:
        raise ValueError("nworkers must be positive")
    g = dag.g
    indeg = {n: g.in_degree(n) for n in g}
    ready = [(0.0, n) for n in g if indeg[n] == 0]
    heapq.heapify(ready)
    workers = [0.0] * nworkers
    finish: dict = {}
    heapq.heapify(ready)
    done = 0
    while ready:
        avail_at, n = heapq.heappop(ready)
        w = min(range(nworkers), key=lambda i: workers[i])
        start = max(workers[w], avail_at)
        end = start + g.nodes[n]["cost"]
        workers[w] = end
        finish[n] = end
        done += 1
        for succ in g.successors(n):
            indeg[succ] -= 1
            if indeg[succ] == 0:
                avail = max(finish[p] for p in g.predecessors(succ))
                heapq.heappush(ready, (avail, succ))
    if done != g.number_of_nodes():
        raise ValueError("DAG has unreachable tasks (cycle?)")
    return max(finish.values()) if finish else 0.0
