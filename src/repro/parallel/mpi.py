"""SimMPI: a simulated MPI runtime over interpreter coroutines.

Each rank is an :class:`~repro.interp.interpreter.Interpreter` whose
execution generator yields :class:`~repro.interp.events.MPIEvent`
objects at communication calls.  The engine matches point-to-point
messages, executes collectives when all ranks arrive, and advances
per-rank simulated clocks using the machine model's (α, β) network
constants — per MPI implementation, so the C++ (OpenMPI) and Julia
(MPICH) variants see different communication costs, as in the paper's
setup (§VII-e).

Semantics notes:

* blocking sends default to *eager/buffered* (they never block the
  sender) — this keeps symmetric exchange patterns deadlock-free in
  both the primal and the adjoint, where every send/recv pair is
  mirrored.  Pass ``rendezvous_sends=True`` (or set a byte
  ``eager_limit`` on the :class:`~repro.perf.machine.MachineModel`) to
  make sends block until the receiver has posted a matching receive,
  as real MPI does above its eager threshold — head-to-head ``Send``/
  ``Send`` exchanges then deadlock here exactly as they would in
  production, and are flagged statically by
  :mod:`repro.sanitize.commcheck`;
* nonblocking receives are posted and matched in order per
  (source, tag) channel;
* collectives are SPMD-matched by arrival order and must agree in kind
  and count across ranks;
* all ranks run on one node (the paper evaluates MPI scaling on a
  single dual-socket c6i.metal box), so ``procs_on_node`` equals the
  communicator size and memory contention grows with it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from ..interp.events import MPIEvent
from ..interp.executor import Executor
from ..interp.interpreter import ExecConfig, Interpreter
from ..interp.memory import InterpreterError, PtrVal
from ..ir.function import Module
from ..perf.cost import CostVector
from ..perf.machine import MachineModel, c6i_metal

_req_ids = itertools.count(1)


class EngineRequest:
    """Engine-side nonblocking-operation handle."""

    __slots__ = ("rid", "kind", "rank", "peer", "tag", "count", "buf",
                 "complete_at", "matched", "message", "rc_tid",
                 "post_clock")

    def __init__(self, kind: str, rank: int, peer: int, tag: int,
                 count: int, buf) -> None:
        self.rid = next(_req_ids)
        self.kind = kind            # "send" | "recv"
        self.rank = rank
        self.peer = peer
        self.tag = tag
        self.count = count
        self.buf = buf
        self.complete_at: Optional[float] = None
        self.matched = False
        self.message = None
        #: Race-checker thread of the in-flight delivery (-1 when off).
        self.rc_tid = -1
        #: Receiver's vector-clock snapshot at posting time: delivery
        #: happens-after the receive was posted, so pre-post accesses to
        #: the buffer by the receiver itself are ordered, not racy.
        self.post_clock = None


class _Message:
    __slots__ = ("src", "dst", "tag", "data", "arrival", "clock",
                 "send_req")

    def __init__(self, src: int, dst: int, tag: int, data: np.ndarray,
                 arrival: float, clock=None) -> None:
        self.src = src
        self.dst = dst
        self.tag = tag
        self.data = data
        self.arrival = arrival
        #: Sender's vector-clock snapshot (race sanitizer), or None.
        self.clock = clock
        #: Rendezvous-mode send request completed at match time, or
        #: None for eager sends.
        self.send_req: Optional[EngineRequest] = None


def _buf_slice(ptr: PtrVal, count: int) -> np.ndarray:
    ptr.buffer.check_alive()
    off = int(ptr.offset)
    if off < 0 or off + count > ptr.buffer.count:
        raise InterpreterError("MPI buffer out of bounds")
    return ptr.buffer.data[off:off + count]


@dataclass
class MPIRunResult:
    results: list
    time: float
    clocks: list[float]
    costs: list[CostVector]

    @property
    def total_cost(self) -> CostVector:
        c = CostVector()
        for x in self.costs:
            c.merge(x)
        return c


class _RankState:
    __slots__ = ("gen", "interp", "executor", "blocked_on", "done",
                 "result", "pending_reply")

    def __init__(self, gen, interp, executor) -> None:
        self.gen = gen
        self.interp = interp
        self.executor = executor
        self.blocked_on = None      # None | ("recv", ev) | ("wait", req)
        self.done = False
        self.result = None
        self.pending_reply = None


class SimMPI:
    """Run one SPMD function over ``nprocs`` simulated ranks."""

    def __init__(self, module: Module, nprocs: int,
                 config: Optional[ExecConfig] = None,
                 machine: Optional[MachineModel] = None,
                 rendezvous_sends: bool = False) -> None:
        self.module = module
        self.nprocs = nprocs
        self.base_config = config or ExecConfig()
        self.machine = machine or self.base_config.machine or c6i_metal()
        self.network = self.machine.network(self.base_config.mpi_impl)
        #: Blocking/nonblocking sends complete only once matched when
        #: True; ``machine.eager_limit`` applies the same per-message
        #: above that many bytes.
        self.rendezvous_sends = rendezvous_sends
        self.eager_limit = getattr(self.machine, "eager_limit", None)

        self.ranks: list[_RankState] = []
        # (dst, src, tag) -> FIFO of messages
        self._mailbox: dict[tuple, list[_Message]] = {}
        # (dst, src, tag) -> FIFO of posted receive requests
        self._posted: dict[tuple, list[EngineRequest]] = {}
        self._collective: list = [None] * nprocs
        #: Shared race checker across all ranks (None when off) — so
        #: message edges order cross-rank shadow-buffer accesses.
        self.checker = None
        if self.base_config.sanitize:
            from ..sanitize.racecheck import RaceChecker
            self.checker = RaceChecker(
                raise_on_race=self.base_config.sanitize_raise)

    @property
    def races(self) -> list:
        """RaceReports collected so far (empty when sanitizing is off)."""
        ck = self.checker
        return list(ck.reports) if ck is not None else []

    # ------------------------------------------------------------------
    def run(self, fn_name: str, rank_args: Callable[[int], tuple] | list,
            ) -> MPIRunResult:
        def make_gen(r: int, ex: Executor):
            args = rank_args(r) if callable(rank_args) else rank_args[r]
            return ex.call_generator(fn_name, *args)
        return self.run_custom(make_gen)

    def run_custom(self, make_gen: Callable) -> MPIRunResult:
        """Run arbitrary per-rank generators (e.g. primal-then-reverse
        tape drivers).  ``make_gen(rank, executor)`` returns the rank's
        event generator."""
        import copy
        for r in range(self.nprocs):
            cfg = copy.copy(self.base_config)
            cfg.machine = self.machine
            ex = Executor(self.module, cfg)
            interp = ex.interp
            interp.rank = r
            interp.nprocs = self.nprocs
            interp.procs_on_node = self.nprocs
            if self.checker is not None:
                # Replace the per-rank checker with the shared one.
                interp.racecheck = self.checker
                interp._rc_tid = self.checker.new_thread(f"rank{r}")
            gen = make_gen(r, ex)
            self.ranks.append(_RankState(gen, interp, ex))

        sweeps = 0
        while not all(st.done for st in self.ranks):
            progress = False
            for r, st in enumerate(self.ranks):
                if st.done or st.blocked_on is not None:
                    continue
                self._step_rank(r, st)
                progress = True
            sweeps += 1
            if not progress:
                self._deadlock()
            if sweeps > 10_000_000:
                raise InterpreterError("SimMPI sweep limit exceeded")

        results = [st.result for st in self.ranks]
        clocks = [st.interp.clock for st in self.ranks]
        costs = [st.interp.raw_total for st in self.ranks]
        return MPIRunResult(results, max(clocks) if clocks else 0.0,
                            clocks, costs)

    # ------------------------------------------------------------------
    def _step_rank(self, r: int, st: _RankState) -> None:
        """Run rank ``r`` until it blocks or finishes."""
        while True:
            try:
                reply, st.pending_reply = st.pending_reply, None
                ev = st.gen.send(reply)
            except StopIteration as stop:
                st.interp.flush_serial()
                st.done = True
                st.result = stop.value
                return
            if not isinstance(ev, MPIEvent):
                raise InterpreterError(f"rank {r}: unexpected event {ev!r}")
            if self._service(r, st, ev):
                continue  # event completed synchronously; resume rank
            return        # rank blocked

    def _service(self, r: int, st: _RankState, ev: MPIEvent) -> bool:
        """Handle one event.  Returns True if the rank may continue."""
        kind = ev.kind
        interp = st.interp
        if kind == "send" or kind == "isend":
            data = np.array(_buf_slice(ev.buf, ev.count))
            interp.clock += self.network.alpha
            arrival = interp.clock + self.network.ptp_time(8 * ev.count)
            clock = None
            ck = self.checker
            if ck is not None:
                ck.on_read(interp._rc_tid, ev.buf,
                           np.arange(ev.count, dtype=np.int64),
                           f"mpi.{kind} rank{r}->rank{ev.peer} "
                           f"tag={ev.tag}")
                clock = ck.snapshot(interp._rc_tid)
            msg = _Message(r, ev.peer, ev.tag, data, arrival, clock)
            rendezvous = self.rendezvous_sends or (
                self.eager_limit is not None
                and 8 * ev.count > self.eager_limit)
            req = EngineRequest("send", r, ev.peer, ev.tag, ev.count, ev.buf)
            if rendezvous:
                msg.send_req = req
            else:
                req.matched = True
                req.complete_at = interp.clock
            self._deliver(msg)
            if kind == "send":
                if req.matched:
                    interp.clock = max(interp.clock, req.complete_at)
                    st.pending_reply = None
                    return True
                st.blocked_on = ("req", req)
                return False
            st.pending_reply = req
            return True
        if kind == "irecv":
            req = EngineRequest("recv", r, ev.peer, ev.tag, ev.count, ev.buf)
            if self.checker is not None:
                req.post_clock = self.checker.snapshot(interp._rc_tid)
            self._posted.setdefault((r, ev.peer, ev.tag), []).append(req)
            self._match(r, ev.peer, ev.tag)
            st.pending_reply = req
            return True
        if kind == "recv":
            req = EngineRequest("recv", r, ev.peer, ev.tag, ev.count, ev.buf)
            if self.checker is not None:
                req.post_clock = self.checker.snapshot(interp._rc_tid)
            self._posted.setdefault((r, ev.peer, ev.tag), []).append(req)
            self._match(r, ev.peer, ev.tag)
            if req.matched:
                interp.clock = max(interp.clock, req.complete_at)
                self._rc_observe(interp, req)
                st.pending_reply = None
                return True
            st.blocked_on = ("req", req)
            return False
        if kind == "wait":
            req: EngineRequest = ev.request
            if not isinstance(req, EngineRequest):
                raise InterpreterError(f"rank {r}: wait on {req!r}")
            if req.kind == "send":
                if req.matched:
                    interp.clock = max(interp.clock, req.complete_at)
                    st.pending_reply = None
                    return True
                st.blocked_on = ("req", req)
                return False
            if req.matched:
                interp.clock = max(interp.clock, req.complete_at)
                self._rc_observe(interp, req)
                st.pending_reply = None
                return True
            st.blocked_on = ("req", req)
            return False
        if kind in ("allreduce", "reduce", "bcast", "barrier",
                    "winner_mask"):
            self._collective[r] = (st, ev)
            if all(c is not None for c in self._collective):
                self._run_collective()
                return True
            st.blocked_on = ("collective",)
            return False
        raise InterpreterError(f"rank {r}: unknown MPI event kind {kind!r}")

    # ------------------------------------------------------------------
    def _deliver(self, msg: _Message) -> None:
        chan = (msg.dst, msg.src, msg.tag)
        posted = self._posted.get(chan)
        if posted:
            req = posted.pop(0)
            self._complete_recv(req, msg)
        else:
            self._mailbox.setdefault(chan, []).append(msg)

    def _match(self, dst: int, src: int, tag: int) -> None:
        chan = (dst, src, tag)
        inbox = self._mailbox.get(chan)
        posted = self._posted.get(chan)
        while inbox and posted:
            msg = inbox.pop(0)
            req = posted.pop(0)
            self._complete_recv(req, msg)

    def _complete_recv(self, req: EngineRequest, msg: _Message) -> None:
        if len(msg.data) != req.count:
            raise InterpreterError(
                f"message size mismatch: sent {len(msg.data)}, "
                f"receiving {req.count} (src={msg.src} dst={msg.dst} "
                f"tag={msg.tag})")
        ck = self.checker
        if ck is not None:
            # The in-flight delivery is its own logical thread: it is
            # ordered after the send (clock snapshot) but concurrent
            # with the receiver until the receiver observes completion
            # — so touching an irecv buffer before mpi.wait races.
            net = ck.new_thread(
                f"msg rank{msg.src}->rank{msg.dst} tag={msg.tag}",
                snapshot=msg.clock)
            if req.post_clock is not None:
                ck.join_snapshot(net, req.post_clock)
            ck.on_write(net, req.buf,
                        np.arange(req.count, dtype=np.int64),
                        f"mpi delivery rank{msg.src}->rank{msg.dst} "
                        f"tag={msg.tag}")
            req.rc_tid = net
        _buf_slice(req.buf, req.count)[:] = msg.data
        req.matched = True
        req.message = msg
        req.complete_at = msg.arrival
        st = self.ranks[req.rank]
        if st.blocked_on and st.blocked_on[0] == "req" and \
                st.blocked_on[1] is req:
            st.blocked_on = None
            st.interp.clock = max(st.interp.clock, req.complete_at)
            self._rc_observe(st.interp, req)
            st.pending_reply = None
        sreq = msg.send_req
        if sreq is not None:
            # Rendezvous: the send completes only now that a matching
            # receive exists.
            sreq.matched = True
            sreq.complete_at = msg.arrival
            sst = self.ranks[sreq.rank]
            if sst.blocked_on and sst.blocked_on[0] == "req" and \
                    sst.blocked_on[1] is sreq:
                sst.blocked_on = None
                sst.interp.clock = max(sst.interp.clock, sreq.complete_at)
                sst.pending_reply = None

    def _rc_observe(self, interp: Interpreter, req: EngineRequest) -> None:
        """Receiver observes a completed receive: acquire the delivery
        thread's clock (and transitively the sender's)."""
        ck = self.checker
        if ck is not None and req.rc_tid >= 0:
            ck.task_join(interp._rc_tid, req.rc_tid)

    # ------------------------------------------------------------------
    def _run_collective(self) -> None:
        entries = self._collective
        kinds = {ev.kind for _, ev in entries}
        if len(kinds) != 1:
            raise InterpreterError(
                f"mismatched collectives across ranks: {kinds}")
        kind = kinds.pop()
        t0 = max(st.interp.clock for st, _ in entries)
        P = self.nprocs

        ck = self.checker
        if ck is not None:
            count = getattr(entries[0][1], "count", 0) or 0
            span = np.arange(count, dtype=np.int64)
            root = getattr(entries[0][1], "root", None)
            # Send buffers are read before the exchange...
            if kind in ("allreduce", "reduce", "winner_mask"):
                for q, (st, ev) in enumerate(entries):
                    ck.on_read(st.interp._rc_tid, ev.buf, span,
                               f"mpi.{kind} sendbuf rank{q}")
            elif kind == "bcast":
                st_r, ev_r = entries[root]
                ck.on_read(st_r.interp._rc_tid, ev_r.buf, span,
                           f"mpi.bcast root rank{root}")
            # ...the collective synchronizes all participants...
            ck.barrier([st.interp._rc_tid for st, _ in entries])
            # ...and result buffers are written after it.
            if kind == "allreduce":
                for q, (st, ev) in enumerate(entries):
                    ck.on_write(st.interp._rc_tid, ev.recvbuf, span,
                                f"mpi.allreduce recvbuf rank{q}")
            elif kind == "reduce":
                st_r, ev_r = entries[root]
                ck.on_write(st_r.interp._rc_tid, ev_r.recvbuf, span,
                            f"mpi.reduce recvbuf rank{root}")
            elif kind == "bcast":
                for q, (st, ev) in enumerate(entries):
                    if q != root:
                        ck.on_write(st.interp._rc_tid, ev.buf, span,
                                    f"mpi.bcast recv rank{q}")

        if kind == "barrier":
            done = t0 + self.network.allreduce_time(8, P)
            for st, _ in entries:
                st.interp.clock = done
                st.pending_reply = None
        elif kind == "allreduce":
            count = entries[0][1].count
            sends = [np.array(_buf_slice(ev.buf, count))
                     for _, ev in entries]
            op = entries[0][1].op
            out = _combine(sends, op)
            done = t0 + self.network.allreduce_time(8 * count, P)
            for st, ev in entries:
                _buf_slice(ev.recvbuf, count)[:] = out
                st.interp.clock = done
                st.pending_reply = None
        elif kind == "reduce":
            count = entries[0][1].count
            root = entries[0][1].root
            sends = [np.array(_buf_slice(ev.buf, count))
                     for _, ev in entries]
            out = _combine(sends, entries[0][1].op)
            done = t0 + self.network.bcast_time(8 * count, P)
            for q, (st, ev) in enumerate(entries):
                if q == root:
                    _buf_slice(ev.recvbuf, count)[:] = out
                st.interp.clock = done
                st.pending_reply = None
        elif kind == "bcast":
            count = entries[0][1].count
            root = entries[0][1].root
            data = np.array(_buf_slice(entries[root][1].buf, count))
            done = t0 + self.network.bcast_time(8 * count, P)
            for q, (st, ev) in enumerate(entries):
                if q != root:
                    _buf_slice(ev.buf, count)[:] = data
                st.interp.clock = done
                st.pending_reply = None
        elif kind == "winner_mask":
            count = entries[0][1].count
            op = entries[0][1].op
            sends = np.stack([np.array(_buf_slice(ev.buf, count))
                              for _, ev in entries])
            best = sends.min(axis=0) if op == "min" else sends.max(axis=0)
            at_best = sends == best[None, :]
            first = np.argmax(at_best, axis=0)
            done = t0 + self.network.allreduce_time(16 * count, P)
            for q, (st, ev) in enumerate(entries):
                st.interp.clock = done
                st.pending_reply = (first == q)
        else:  # pragma: no cover
            raise InterpreterError(f"collective {kind!r} not implemented")

        for st, _ in entries:
            st.blocked_on = None
        self._collective = [None] * self.nprocs

    def _deadlock(self) -> None:
        lines = []
        for q, st in enumerate(self.ranks):
            lines.append(f"rank {q}: done={st.done} blocked={st.blocked_on}")
        raise InterpreterError("MPI deadlock:\n" + "\n".join(lines))


def _combine(arrays: list[np.ndarray], op: str) -> np.ndarray:
    stack = np.stack(arrays)
    if op == "sum":
        return stack.sum(axis=0)
    if op == "min":
        return stack.min(axis=0)
    if op == "max":
        return stack.max(axis=0)
    raise InterpreterError(f"unknown reduction op {op!r}")


def mpi_run(module: Module, fn_name: str, nprocs: int, rank_args,
            config: Optional[ExecConfig] = None,
            machine: Optional[MachineModel] = None) -> MPIRunResult:
    """One-shot convenience wrapper around :class:`SimMPI`."""
    return SimMPI(module, nprocs, config, machine).run(fn_name, rank_args)
