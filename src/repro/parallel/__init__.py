"""repro.parallel — simulated parallel runtimes.

* Shared-memory threading is built into the interpreter
  (``parallel_for`` vectorized chunks, ``fork`` regions with barriers,
  ``spawn``/``wait`` tasks with an online list scheduler).
* :mod:`repro.parallel.mpi` provides SimMPI: cooperative rank
  scheduling with eager point-to-point messaging, collectives, and an
  (α, β) network model per MPI implementation.
* :mod:`repro.parallel.dag` gives the DAG view of task parallelism the
  paper's differentiation model is stated in terms of (§IV-A),
  including DAG reversal and makespan scheduling used in tests.
"""

from .dag import TaskDAG, list_schedule
from .mpi import MPIRunResult, SimMPI, mpi_run

__all__ = ["TaskDAG", "list_schedule", "MPIRunResult", "SimMPI", "mpi_run"]
