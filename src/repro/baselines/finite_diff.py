"""Finite-difference gradient verification (paper §VII).

For realistic applications it is infeasible to test the full Jacobian,
so the paper verifies a *projection*: seed every reverse-mode shadow
with 1 and sum the resulting input shadows; compare against the central
finite difference obtained by perturbing **all** inputs by the same ε
and summing **all** outputs.  Both equal Σ_ij ∂y_i/∂x_j up to round-off
and truncation error (the "fast mode" gradient check of PyTorch, as the
paper notes).
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence

import numpy as np

from ..interp.executor import Executor
from ..interp.interpreter import ExecConfig
from ..ir.function import Module


def fd_projection(module: Module, fn_name: str,
                  make_args: Callable[[], tuple],
                  input_indices: Sequence[int],
                  output_indices: Sequence[int],
                  eps: float = 1e-6,
                  config: Optional[ExecConfig] = None,
                  runner: Optional[Callable] = None) -> float:
    """Central-difference estimate of Σ_ij ∂y_i/∂x_j.

    ``make_args()`` must return a *fresh* argument tuple each call (the
    function may mutate its buffers).  ``input_indices`` select the
    perturbed array arguments, ``output_indices`` the summed outputs.
    ``runner`` overrides how the function is executed (e.g. under
    SimMPI); default is a serial Executor.
    """
    def run(args: tuple) -> float:
        if runner is not None:
            runner(args)
        else:
            Executor(module, config).run(fn_name, *args)
        return float(sum(np.sum(args[i]) for i in output_indices))

    args_p = make_args()
    for i in input_indices:
        args_p[i][...] += eps
    f_plus = run(args_p)

    args_m = make_args()
    for i in input_indices:
        args_m[i][...] -= eps
    f_minus = run(args_m)

    return (f_plus - f_minus) / (2.0 * eps)


def reverse_projection(module: Module, grad_name: str,
                       make_args: Callable[[], tuple],
                       shadow_in_indices: Sequence[int],
                       shadow_out_indices: Sequence[int],
                       config: Optional[ExecConfig] = None,
                       runner: Optional[Callable] = None) -> float:
    """Run a generated gradient with all output shadows seeded to 1 and
    return the sum of the input shadows — the reverse-mode side of the
    §VII projection check.

    ``make_args()`` returns the gradient function's full argument tuple
    with shadow arrays already in place; this helper seeds/zeros them.
    """
    args = make_args()
    for i in shadow_out_indices:
        args[i][...] = 1.0
    for i in shadow_in_indices:
        args[i][...] = 0.0
    if runner is not None:
        runner(args)
    else:
        Executor(module, config).run(grad_name, *args)
    return float(sum(np.sum(args[i]) for i in shadow_in_indices))


def check_gradient(module: Module, fn_name: str, grad_name: str,
                   primal_args: Callable[[], tuple],
                   grad_args: Callable[[], tuple],
                   input_indices: Sequence[int],
                   output_indices: Sequence[int],
                   shadow_in_indices: Sequence[int],
                   shadow_out_indices: Sequence[int],
                   eps: float = 1e-6, rtol: float = 1e-4,
                   config: Optional[ExecConfig] = None) -> tuple[float, float]:
    """Full §VII check; returns (reverse value, fd value) and asserts
    agreement within ``rtol`` (scaled by magnitude)."""
    fd = fd_projection(module, fn_name, primal_args, input_indices,
                       output_indices, eps, config)
    rev = reverse_projection(module, grad_name, grad_args,
                             shadow_in_indices, shadow_out_indices, config)
    scale = max(1.0, abs(fd), abs(rev))
    if abs(fd - rev) > rtol * scale:
        raise AssertionError(
            f"gradient mismatch: reverse={rev!r} fd={fd!r} "
            f"(rel err {abs(fd - rev) / scale:.3e})")
    return rev, fd
