"""CoDiPack-model baseline: operator-overloading Jacobian taping.

The paper benchmarks Enzyme against CoDiPack [23] + an adjoint-MPI
extension [56] on LULESH.  This module reproduces that baseline's
*mechanism*: a run-time tape that records, for every floating-point
statement, the identifiers of its arguments and the numerical partial
derivatives (CoDiPack's default ``RealReverse`` Jacobian taping), plus
communication entries that reverse into mirrored communication
(adjoint MPI).  Characteristics reproduced:

* a large per-statement overhead on *serial* code — every flop also
  pays tape bookkeeping (`tape_op_time` in the machine model), which is
  why CoDiPack's 1-rank gradient is the slowest and why its apparent
  scaling advantage is an artifact (§VIII);
* no shared-memory support: taping is a serial data structure, so
  attempting to tape a threaded run raises, matching "CoDiPack cannot
  differentiate OpenMP LULESH";
* the application must be *rewritten* to use AD types — modelled here
  by the tape attaching to the whole interpreter (every f64 becomes an
  active type), in contrast to Enzyme operating on unmodified code.

Gradients produced are exact, so the baseline doubles as an
independent check of the Enzyme-path gradients.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..interp.events import MPIEvent
from ..interp.executor import Executor
from ..interp.interpreter import ExecConfig
from ..interp.memory import InterpreterError, PtrVal
from ..ir.function import Module
from ..ir.opinfo import OP_INFO

_CMP = OP_INFO["cmp"].attrs["preds"]


class TapeError(Exception):
    pass


def _partials(op, vals, res):
    """Numerical partials of one statement w.r.t. its f64 operands.

    Returns a list aligned with operands; None marks a passive slot.
    """
    oc = op.opcode
    if oc == "add":
        return [1.0, 1.0]
    if oc == "sub":
        return [1.0, -1.0]
    if oc == "mul":
        return [vals[1], vals[0]]
    if oc == "div":
        return [1.0 / vals[1], -vals[0] / (vals[1] * vals[1])]
    if oc == "neg":
        return [-1.0]
    if oc == "abs":
        return [np.where(np.asarray(vals[0]) >= 0, 1.0, -1.0)]
    if oc == "sqrt":
        return [0.5 / res]
    if oc == "cbrt":
        return [res / (3.0 * vals[0])]
    if oc == "sin":
        return [np.cos(vals[0])]
    if oc == "cos":
        return [-np.sin(vals[0])]
    if oc == "tan":
        return [1.0 + res * res]
    if oc == "exp":
        return [res]
    if oc == "log":
        return [1.0 / vals[0]]
    if oc == "pow":
        return [vals[1] * np.power(vals[0], vals[1] - 1.0),
                res * np.log(np.where(np.asarray(vals[0]) > 0, vals[0], 1.0))]
    if oc == "min":
        take0 = np.asarray(vals[0]) <= np.asarray(vals[1])
        return [np.where(take0, 1.0, 0.0), np.where(take0, 0.0, 1.0)]
    if oc == "max":
        take0 = np.asarray(vals[0]) >= np.asarray(vals[1])
        return [np.where(take0, 1.0, 0.0), np.where(take0, 0.0, 1.0)]
    if oc == "fma":
        return [vals[1], vals[0], 1.0]
    if oc == "select":
        c = np.asarray(vals[0])
        return [None, np.where(c, 1.0, 0.0), np.where(c, 0.0, 1.0)]
    if oc == "copysign":
        sx = np.sign(np.asarray(vals[0])) * np.sign(np.asarray(vals[1]))
        return [np.where(sx == 0, 1.0, sx), None]
    if oc in ("itof", "floor"):
        return [None]
    return None  # not differentiable / passive


class CoDiPackTape:
    """Attach as ``interp.tape`` before running the primal."""

    def __init__(self, interp) -> None:
        self.interp = interp
        self.next_id = 1  # id 0 is the passive sink
        self.entries: list = []
        #: buffer id -> int64 identifier array per cell
        self.slot_ids: dict[int, np.ndarray] = {}
        #: SSA value -> identifier (int or int64 array); absent = passive
        self.ids: dict = {}
        self._pending_recv: dict = {}

    # ------------------------------------------------------------------
    def _new_ids(self, width: int):
        if width == 1:
            out = self.next_id
            self.next_id += 1
            return out
        out = np.arange(self.next_id, self.next_id + width, dtype=np.int64)
        self.next_id += width
        return out

    def _ids_of(self, v, env):
        from ..ir.values import Constant
        if isinstance(v, Constant):
            return 0
        return self.ids.get(v, 0)

    def _slots(self, buf) -> np.ndarray:
        arr = self.slot_ids.get(buf.bid)
        if arr is None:
            arr = np.zeros(buf.count, dtype=np.int64)
            self.slot_ids[buf.bid] = arr
        return arr

    # ------------------------------------------------------------------
    # Interpreter hooks
    # ------------------------------------------------------------------
    def on_compute(self, op, env, res, width) -> None:
        from ..ir.types import F64
        if op.result is None or op.result.type is not F64:
            return
        vals = [env[v] if not _is_const(v) else v.value
                for v in op.operands]
        arg_ids = [self._ids_of(v, env) for v in op.operands]
        if all(_passive(i) for i in arg_ids):
            return
        parts = _partials(op, vals, res)
        if parts is None:
            return
        w = res.size if isinstance(res, np.ndarray) and res.size > 1 else 1
        rid = self._new_ids(w)
        deps = []
        n_args = 0
        for aid, part in zip(arg_ids, parts):
            if part is None or _passive(aid):
                continue
            deps.append((aid, np.asarray(part, dtype=np.float64)))
            n_args += 1
        self.entries.append(("stmt", rid, deps))
        self.ids[op.result] = rid
        w = rid.size if isinstance(rid, np.ndarray) else 1
        self.interp.cost.add_tape(w * (1 + n_args), w * (8 + 16 * n_args))

    def on_load(self, op, ptr, idx, val, width, mask) -> None:
        slots = self._slots(ptr.buffer)
        at = ptr.resolve(idx)
        self.ids[op.result] = slots[at]
        self.interp.cost.add_tape(0, 0)

    def on_store(self, op, ptr, idx, val, width, mask) -> None:
        slots = self._slots(ptr.buffer)
        at = ptr.resolve(idx)
        vid = self._ids_of(op.operands[0], None)
        if mask is None:
            slots[at] = vid
        else:
            at_arr = np.broadcast_to(np.asarray(at), mask.shape)
            vid_arr = np.broadcast_to(np.asarray(vid), mask.shape)
            slots[at_arr[mask]] = vid_arr[mask]

    def on_atomic(self, op, ptr, idx, val, width, mask) -> None:
        if op.attrs["kind"] != "add":
            raise TapeError("taped atomic min/max is not supported")
        slots = self._slots(ptr.buffer)
        at = ptr.resolve(idx)
        old = np.array(slots[at])
        vid = self._ids_of(op.operands[0], None)
        w = max(np.size(at), np.size(val))
        rid = self._new_ids(w)
        deps = [(old, np.ones(1)), (vid, np.ones(1))]
        self.entries.append(("stmt", rid, deps))
        slots[at] = rid
        self.interp.cost.add_tape(w * 3, w * 40)

    def on_memset(self, ptr, val, count) -> None:
        slots = self._slots(ptr.buffer)
        off = int(ptr.offset)
        slots[off:off + count] = 0

    def on_memcpy(self, dst, src, count) -> None:
        ds = self._slots(dst.buffer)
        ss = self._slots(src.buffer)
        ds[int(dst.offset):int(dst.offset) + count] = \
            ss[int(src.offset):int(src.offset) + count]

    def on_alloc(self, op, ptr) -> None:
        pass  # slot arrays are created lazily

    def on_parallel_region(self, nthreads: int) -> None:
        if nthreads > 1:
            raise TapeError(
                "the CoDiPack-model tape is a serial data structure and "
                "cannot record shared-memory parallel regions (the paper "
                "notes CoDiPack cannot differentiate OpenMP LULESH)")

    # --- adjoint-MPI recording -----------------------------------------
    def on_mpi(self, kind: str, buf=None, count: int = 0, peer: int = -1,
               tag: int = 0, request=None, recvbuf=None, op: str = "sum",
               ) -> None:
        if kind in ("send", "isend"):
            slots = self._slots(buf.buffer)
            off = int(buf.offset)
            ids = np.array(slots[off:off + count])
            self.entries.append(("send", ids, peer, tag))
        elif kind == "recv":
            self._assign_recv(buf, count, peer, tag)
        elif kind == "irecv":
            self._pending_recv[id(request)] = (buf, count, peer, tag)
        elif kind == "wait":
            pend = self._pending_recv.pop(id(request), None)
            if pend is not None:
                self._assign_recv(*pend)
        elif kind == "allreduce_pre":
            slots = self._slots(buf.buffer)
            off = int(buf.offset)
            self._ar_pre = (np.array(slots[off:off + count]),
                            np.array(buf.buffer.data[off:off + count]))
        elif kind == "allreduce_post":
            send_ids, send_vals = self._ar_pre
            rids = self._new_ids(count)
            slots = self._slots(recvbuf.buffer)
            off = int(recvbuf.offset)
            slots[off:off + count] = rids
            self.entries.append(("allreduce", op, send_ids, send_vals,
                                 np.atleast_1d(rids),
                                 np.array(recvbuf.buffer.data[off:off + count])))
        self.interp.cost.add_tape(count, 16 * count)

    def _assign_recv(self, buf, count, peer, tag) -> None:
        rids = np.atleast_1d(self._new_ids(count))
        slots = self._slots(buf.buffer)
        off = int(buf.offset)
        slots[off:off + count] = rids
        self.entries.append(("recv", rids, peer, tag))

    # ------------------------------------------------------------------
    # Input registration (CoDiPack's ``registerInput``)
    # ------------------------------------------------------------------
    def register_input(self, ptr_or_array) -> None:
        """Give every cell of a buffer a leaf identifier; gradients are
        later read back against these (the "rewrite your application to
        use AD types" step the paper contrasts Enzyme with)."""
        buf = self._buffer_of(ptr_or_array)
        slots = self._slots(buf)
        ids = np.atleast_1d(self._new_ids(buf.count))
        slots[:] = ids
        if not hasattr(self, "registered"):
            self.registered = {}
        self.registered[buf.bid] = ids

    # ------------------------------------------------------------------
    # Reverse interpretation of the tape
    # ------------------------------------------------------------------
    def seed_buffer(self, ptr_or_array, value: float = 1.0) -> None:
        """Seed the adjoints of a buffer's current identifiers."""
        buf = self._buffer_of(ptr_or_array)
        self._ensure_adj()
        ids = self.slot_ids.get(buf.bid)
        if ids is not None:
            self.adj[ids] = value
            self.adj[0] = 0.0

    def gradient_of(self, ptr_or_array) -> np.ndarray:
        buf = self._buffer_of(ptr_or_array)
        ids = getattr(self, "registered", {}).get(buf.bid)
        if ids is None:
            ids = self.slot_ids.get(buf.bid)
        if ids is None:
            return np.zeros(buf.count)
        self._ensure_adj()
        out = self.adj[ids]
        out[ids == 0] = 0.0
        return out

    def _buffer_of(self, x):
        if isinstance(x, PtrVal):
            return x.buffer
        for buf in self.interp.memory.buffers.values():
            if buf.data is x:
                return buf
        raise TapeError("array is not a known interpreter buffer")

    def _ensure_adj(self) -> None:
        if not hasattr(self, "adj") or len(self.adj) < self.next_id:
            new = np.zeros(self.next_id, dtype=np.float64)
            if hasattr(self, "adj"):
                new[:len(self.adj)] = self.adj
            self.adj = new

    def reverse_generator(self):
        """Play the tape backwards.  Yields MPIEvents for communication
        entries (run it under SimMPI for distributed tapes)."""
        self._ensure_adj()
        adj = self.adj
        interp = self.interp
        mem = interp.memory
        for entry in reversed(self.entries):
            kind = entry[0]
            if kind == "stmt":
                _, rid, deps = entry
                a = adj[rid]
                adj[rid] = 0.0
                n = rid.size if isinstance(rid, np.ndarray) else 1
                for aid, part in deps:
                    contrib = part * a
                    if np.ndim(aid) == 0 and np.ndim(contrib) > 0:
                        # uniform operand consumed by a vector statement
                        adj[aid] += contrib.sum()
                    else:
                        np.add.at(adj, aid, contrib)
                    adj[0] = 0.0
                interp.cost.add_tape(n * (1 + len(deps)),
                                     n * (8 + 16 * len(deps)))
            elif kind == "send":
                _, ids, peer, tag = entry
                count = len(ids)
                tmp = mem.alloc(count, _f64(), "heap", name="codi_tmp")
                interp.flush_serial()
                yield MPIEvent("recv", buf=tmp, count=count, peer=peer,
                               tag=tag)
                np.add.at(adj, ids, tmp.buffer.data[:count])
                adj[0] = 0.0
                mem.free(tmp)
                interp.cost.add_tape(count, 16 * count)
            elif kind == "recv":
                _, ids, peer, tag = entry
                count = len(ids)
                tmp = mem.alloc(count, _f64(), "heap", name="codi_tmp")
                tmp.buffer.data[:count] = adj[ids]
                adj[ids] = 0.0
                interp.flush_serial()
                yield MPIEvent("send", buf=tmp, count=count, peer=peer,
                               tag=tag)
                mem.free(tmp)
                interp.cost.add_tape(count, 16 * count)
            elif kind == "allreduce":
                _, op, send_ids, send_vals, rids, result_vals = entry
                count = len(rids)
                dy = mem.alloc(count, _f64(), "heap", name="codi_ar")
                dy.buffer.data[:count] = adj[rids]
                adj[rids] = 0.0
                tot = mem.alloc(count, _f64(), "heap", name="codi_art")
                interp.flush_serial()
                yield MPIEvent("allreduce", buf=dy, recvbuf=tot, count=count,
                               op="sum")
                t = tot.buffer.data[:count]
                if op in ("min", "max"):
                    src = mem.alloc(count, _f64(), "heap", name="codi_w")
                    src.buffer.data[:count] = send_vals
                    winner = yield MPIEvent("winner_mask", buf=src,
                                            count=count, op=op)
                    mem.free(src)
                    t = np.where(winner, t, 0.0)
                np.add.at(adj, send_ids, t)
                adj[0] = 0.0
                mem.free(dy)
                mem.free(tot)
                interp.cost.add_tape(3 * count, 48 * count)
        interp.flush_serial()


def _is_const(v) -> bool:
    from ..ir.values import Constant
    return isinstance(v, Constant)


def _passive(i) -> bool:
    if isinstance(i, np.ndarray):
        return not i.any()
    return i == 0


def _f64():
    from ..ir.types import F64
    return F64


def codipack_mpi_gradient(module: Module, fn_name: str, nprocs: int,
                          rank_args: Callable[[int], tuple],
                          seed_indices: list[int], wrt_indices: list[int],
                          config: Optional[ExecConfig] = None,
                          machine=None):
    """Distributed tape driver: each rank runs the taped primal, seeds
    its local output shadows, then plays its tape backwards under the
    same engine (adjoint MPI).

    Returns (per-rank gradients aligned with ``wrt_indices``, run
    result).  ``seed_indices``/``wrt_indices`` index into the rank's
    argument tuple.
    """
    from ..parallel.mpi import SimMPI

    per_rank_args = [rank_args(r) for r in range(nprocs)]
    grads: list = [None] * nprocs

    def make_gen(r: int, ex: Executor):
        tape = CoDiPackTape(ex.interp)
        ex.interp.tape = tape
        args = per_rank_args[r]
        wrapped = ex.wrap_args(fn_name, args)
        for i in wrt_indices:
            tape.register_input(args[i])

        def gen():
            yield from ex.interp.call_generator(fn_name, wrapped)
            for i in seed_indices:
                tape.seed_buffer(args[i])
            yield from tape.reverse_generator()
            grads[r] = [tape.gradient_of(args[i]) for i in wrt_indices]
        return gen()

    engine = SimMPI(module, nprocs, config, machine)
    result = engine.run_custom(make_gen)
    return grads, result


def codipack_gradient(module: Module, fn_name: str, args: tuple,
                      seed_arrays: list, wrt_arrays: list,
                      config: Optional[ExecConfig] = None
                      ) -> tuple[list[np.ndarray], Executor]:
    """Serial convenience driver: run the primal under taping, seed the
    given output arrays with 1, reverse, and return d/d(wrt_arrays)."""
    ex = Executor(module, config)
    tape = CoDiPackTape(ex.interp)
    ex.interp.tape = tape
    wrapped = ex.wrap_args(fn_name, args)
    for arr in wrt_arrays:
        tape.register_input(arr)
    ex.interp.run(fn_name, wrapped)
    for arr in seed_arrays:
        tape.seed_buffer(arr)
    for _ in tape.reverse_generator():
        raise TapeError("tape contains MPI entries; run under SimMPI")
    return [tape.gradient_of(a) for a in wrt_arrays], ex
