"""repro.baselines — comparison & verification baselines.

* :mod:`repro.baselines.codipack` — CoDiPack-model operator-overloading
  Jacobian tape with an adjoint-MPI extension (the paper's performance
  baseline, §VII-A-d).
* :mod:`repro.baselines.finite_diff` — the §VII finite-difference
  projection check used to verify every gradient in the evaluation.
"""

from .codipack import (
    CoDiPackTape,
    TapeError,
    codipack_gradient,
    codipack_mpi_gradient,
)
from .finite_diff import check_gradient, fd_projection, reverse_projection

__all__ = [
    "CoDiPackTape", "TapeError", "codipack_gradient",
    "codipack_mpi_gradient",
    "check_gradient", "fd_projection", "reverse_projection",
]
