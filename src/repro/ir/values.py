"""SSA values of the repro IR.

Every value is defined exactly once: as a function argument, a block
argument (loop induction variables, thread ids), a constant, or the
result of an operation.  Uses must be lexically dominated by the
definition — the verifier enforces this.

Values carry operator overloads that emit instructions through the
*current* :class:`~repro.ir.builder.IRBuilder` (a thread-local stack),
so IR can be written as ordinary Python expressions::

    with b.parallel_for(0, n) as i:
        v = b.load(data, i)
        b.store(v * v, data, i)
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Optional

from .types import F64, I1, I64, Type

if TYPE_CHECKING:  # pragma: no cover
    from .ops import Op


_tls = threading.local()


def _builder_stack() -> list:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = []
        _tls.stack = stack
    return stack


def push_builder(b) -> None:
    _builder_stack().append(b)


def pop_builder(b) -> None:
    stack = _builder_stack()
    assert stack and stack[-1] is b, "unbalanced builder push/pop"
    stack.pop()


def current_builder():
    stack = _builder_stack()
    if not stack:
        raise RuntimeError(
            "no active IRBuilder; value operators can only be used inside "
            "a `with builder.function(...)` body"
        )
    return stack[-1]


class Value:
    """Base class for all SSA values."""

    __slots__ = ("type", "name")

    def __init__(self, type: Type, name: str = "") -> None:
        self.type = type
        self.name = name

    # ------------------------------------------------------------------
    # Operator sugar (emits through the current builder)
    # ------------------------------------------------------------------
    def _emit(self, method: str, *args):
        return getattr(current_builder(), method)(self, *args)

    def __add__(self, other):
        return self._emit("add", other)

    def __radd__(self, other):
        return current_builder().add(other, self)

    def __sub__(self, other):
        return self._emit("sub", other)

    def __rsub__(self, other):
        return current_builder().sub(other, self)

    def __mul__(self, other):
        return self._emit("mul", other)

    def __rmul__(self, other):
        return current_builder().mul(other, self)

    def __truediv__(self, other):
        return self._emit("div", other)

    def __rtruediv__(self, other):
        return current_builder().div(other, self)

    def __pow__(self, other):
        return self._emit("pow", other)

    def __neg__(self):
        return current_builder().neg(self)

    def __mod__(self, other):
        return self._emit("imod", other)

    def __floordiv__(self, other):
        return self._emit("idiv", other)

    # Comparisons intentionally return IR values, not Python booleans.
    def __lt__(self, other):
        return current_builder().cmp("lt", self, other)

    def __le__(self, other):
        return current_builder().cmp("le", self, other)

    def __gt__(self, other):
        return current_builder().cmp("gt", self, other)

    def __ge__(self, other):
        return current_builder().cmp("ge", self, other)

    # NOTE: __eq__/__ne__ keep identity semantics so values can live in
    # dicts and sets; use builder.cmp("eq", a, b) for IR equality.

    def __hash__(self) -> int:  # identity hashing
        return id(self)

    def __repr__(self) -> str:
        label = self.name or f"@{id(self):x}"
        return f"<{type(self).__name__} {label}: {self.type}>"


class Constant(Value):
    """A literal constant (f64, i64, or i1)."""

    __slots__ = ("value",)

    def __init__(self, value, type: Optional[Type] = None) -> None:
        if type is None:
            if isinstance(value, bool):
                type = I1
            elif isinstance(value, int):
                type = I64
            elif isinstance(value, float):
                type = F64
            else:
                raise TypeError(f"cannot infer IR type for constant {value!r}")
        if type is F64:
            value = float(value)
        elif type is I64:
            if isinstance(value, float) and not value.is_integer():
                raise TypeError(
                    f"cannot use non-integral constant {value!r} as i64")
            value = int(value)
        elif type is I1:
            value = bool(value)
        super().__init__(type, name=repr(value))
        self.value = value

    def __repr__(self) -> str:
        return f"const({self.value!r}:{self.type})"


class Argument(Value):
    """A function argument."""

    __slots__ = ("index", "attrs")

    def __init__(self, type: Type, name: str, index: int, attrs=None) -> None:
        super().__init__(type, name)
        self.index = index
        #: e.g. {"noalias": True, "readonly": True}
        self.attrs = dict(attrs or {})


class BlockArg(Value):
    """A block argument: loop induction variable, thread id, etc."""

    __slots__ = ("owner", "index")

    def __init__(self, type: Type, name: str, owner: "Op", index: int) -> None:
        super().__init__(type, name)
        #: The region-bearing op (ForOp, ForkOp, ...) that binds this arg.
        self.owner = owner
        self.index = index


class Result(Value):
    """The (single) result of an operation."""

    __slots__ = ("op",)

    def __init__(self, type: Type, op: "Op", name: str = "") -> None:
        super().__init__(type, name)
        self.op = op


def as_value(x, type: Optional[Type] = None) -> Value:
    """Coerce a Python number (or Value) into an IR value."""
    if isinstance(x, Value):
        return x
    if isinstance(x, (bool, int, float)):
        return Constant(x, type)
    raise TypeError(f"cannot convert {x!r} to an IR value")
