"""Opcode metadata tables.

Each *computational* opcode (arithmetic, comparisons, casts) is described
by an :class:`OpInfo` record holding its arity, result-type rule, NumPy
evaluation function, and cost class for the performance model.  The
interpreter, the verifier, and the AD engine all dispatch off these
tables, so adding an opcode means adding one row here plus (if it is
differentiable) one adjoint rule in :mod:`repro.ad.rules`.

Memory and structured-control-flow opcodes are *not* listed here — they
have dedicated op classes in :mod:`repro.ir.ops`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from .types import F64, I1, I64, Type, common_numeric

# Cost classes understood by repro.perf.machine.MachineModel.
COST_FLOP = "flop"          # add/sub/mul/fma/min/max/abs/neg/cmp/select
COST_DIV = "div"            # division, sqrt
COST_SPECIAL = "special"    # transcendental functions, pow, cbrt
COST_INT = "int"            # integer ALU / casts / boolean logic
COST_FREE = "free"          # no runtime cost (analysis-only)


@dataclass(frozen=True)
class OpInfo:
    opcode: str
    arity: int
    result_type: Callable[[list[Type]], Type]
    evaluate: Optional[Callable]
    cost: str
    pure: bool = True
    commutative: bool = False
    # fold(*const_operands) -> python value, or None to reuse `evaluate`.
    attrs: dict = field(default_factory=dict)


def _same_float(ts: list[Type]) -> Type:
    for t in ts:
        if t is not F64:
            raise TypeError(f"expected f64 operands, got {[str(x) for x in ts]}")
    return F64


def _same_int(ts: list[Type]) -> Type:
    for t in ts:
        if t is not I64:
            raise TypeError(f"expected i64 operands, got {[str(x) for x in ts]}")
    return I64


def _numeric(ts: list[Type]) -> Type:
    return common_numeric(*ts) if len(ts) == 2 else ts[0]


def _bool(ts: list[Type]) -> Type:
    return I1


def _bool_ops(ts: list[Type]) -> Type:
    for t in ts:
        if t is not I1:
            raise TypeError("expected i1 operands")
    return I1


OP_INFO: dict[str, OpInfo] = {}


def _register(info: OpInfo) -> None:
    assert info.opcode not in OP_INFO, f"duplicate opcode {info.opcode}"
    OP_INFO[info.opcode] = info


def _binf(opcode, fn, cost=COST_FLOP, commutative=False):
    _register(OpInfo(opcode, 2, _same_float, fn, cost, commutative=commutative))


def _unf(opcode, fn, cost=COST_FLOP):
    _register(OpInfo(opcode, 1, _same_float, fn, cost))


def _bini(opcode, fn, commutative=False):
    _register(OpInfo(opcode, 2, _same_int, fn, COST_INT, commutative=commutative))


# --- floating point -----------------------------------------------------
_binf("add", np.add, commutative=True)
_binf("sub", np.subtract)
_binf("mul", np.multiply, commutative=True)
_binf("div", np.divide, cost=COST_DIV)
_binf("pow", np.power, cost=COST_SPECIAL)
_binf("min", np.minimum, commutative=True)
_binf("max", np.maximum, commutative=True)
_binf("copysign", np.copysign)
_register(OpInfo("fma", 3, _same_float,
                 lambda a, b, c: a * b + c, COST_FLOP))

_unf("neg", np.negative)
_unf("abs", np.abs)
_unf("sqrt", np.sqrt, cost=COST_DIV)
_unf("cbrt", np.cbrt, cost=COST_SPECIAL)
_unf("sin", np.sin, cost=COST_SPECIAL)
_unf("cos", np.cos, cost=COST_SPECIAL)
_unf("tan", np.tan, cost=COST_SPECIAL)
_unf("exp", np.exp, cost=COST_SPECIAL)
_unf("log", np.log, cost=COST_SPECIAL)
_unf("floor", np.floor)

# --- integers -----------------------------------------------------------
_bini("iadd", np.add, commutative=True)
_bini("isub", np.subtract)
_bini("imul", np.multiply, commutative=True)
_bini("idiv", lambda a, b: np.floor_divide(a, b))
_bini("imod", lambda a, b: np.mod(a, b))
_bini("imin", np.minimum, commutative=True)
_bini("imax", np.maximum, commutative=True)
_register(OpInfo("ineg", 1, _same_int, np.negative, COST_INT))

# --- casts --------------------------------------------------------------
_register(OpInfo("itof", 1, lambda ts: F64,
                 lambda a: np.asarray(a, dtype=np.float64) if isinstance(a, np.ndarray) else float(a),
                 COST_INT))
_register(OpInfo("ftoi", 1, lambda ts: I64,
                 lambda a: np.asarray(np.trunc(a), dtype=np.int64) if isinstance(a, np.ndarray) else int(a),
                 COST_INT))

# --- comparisons & logic ------------------------------------------------
_CMP_FNS = {
    "lt": np.less,
    "le": np.less_equal,
    "gt": np.greater,
    "ge": np.greater_equal,
    "eq": np.equal,
    "ne": np.not_equal,
}
_register(OpInfo("cmp", 2, _bool, None, COST_FLOP, attrs={"preds": _CMP_FNS}))

_register(OpInfo("and", 2, _bool_ops, np.logical_and, COST_INT, commutative=True))
_register(OpInfo("or", 2, _bool_ops, np.logical_or, COST_INT, commutative=True))
_register(OpInfo("xor", 2, _bool_ops, np.logical_xor, COST_INT, commutative=True))
_register(OpInfo("not", 1, _bool_ops, np.logical_not, COST_INT))

# select(cond, a, b): result type is the common type of a and b.
_register(OpInfo(
    "select", 3,
    lambda ts: _select_type(ts),
    lambda c, a, b: np.where(c, a, b),
    COST_FLOP,
))


def _select_type(ts: list[Type]) -> Type:
    if ts[0] is not I1:
        raise TypeError("select condition must be i1")
    if ts[1] is not ts[2]:
        raise TypeError(f"select arms differ: {ts[1]} vs {ts[2]}")
    return ts[1]


#: Opcodes whose adjoint needs no primal values (linear ops).
LINEAR_OPS = frozenset({"add", "sub", "neg", "fma_none"})

#: All computational opcodes.
COMPUTE_OPS = frozenset(OP_INFO)

FLOAT_BINOPS = frozenset(
    op for op, info in OP_INFO.items()
    if info.arity == 2 and info.result_type is _same_float
)
INT_OPS = frozenset(
    op for op, info in OP_INFO.items() if info.cost == COST_INT
)
