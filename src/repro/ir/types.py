"""Type system for the repro IR.

The IR models a small, LLVM-flavoured SSA type system.  Scalar types are
singletons; pointer types are interned per element type so that ``Ptr(F64)
is Ptr(F64)`` holds and types can be compared with ``is``/``==`` freely.

Handle types (``Task``, ``Request``, ``Token``) are opaque runtime objects
used by the parallel runtimes: task handles from ``spawn``, MPI request
handles, and GC-preserve tokens.  They can be stored in memory buffers of
the corresponding pointer type, which is how programs keep arrays of MPI
requests, exactly like ``MPI_Request reqs[26]`` in LULESH.
"""

from __future__ import annotations


class Type:
    """Base class for all IR types."""

    #: Short printable name, overridden per instance.
    name: str = "type"

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return self.name

    def __str__(self) -> str:
        return self.name

    @property
    def is_float(self) -> bool:
        return self is F64

    @property
    def is_int(self) -> bool:
        return self is I64

    @property
    def is_bool(self) -> bool:
        return self is I1

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_handle(self) -> bool:
        return self in (Task, Request, Token)

    @property
    def size_bytes(self) -> int:
        """Byte size used by the performance model for memory traffic."""
        if self is F64 or self is I64:
            return 8
        if self is I1:
            return 1
        if self.is_pointer or self.is_handle:
            return 8
        return 8


class _Scalar(Type):
    def __init__(self, name: str) -> None:
        self.name = name


#: 64-bit IEEE-754 floating point — the only differentiable scalar type.
F64 = _Scalar("f64")
#: 64-bit signed integer (indices, sizes, ranks, tags).
I64 = _Scalar("i64")
#: 1-bit boolean (comparison results, masks).
I1 = _Scalar("i1")
#: No value (functions without a return value).
Void = _Scalar("void")
#: Opaque task handle produced by ``spawn``.
Task = _Scalar("task")
#: Opaque MPI request handle.
Request = _Scalar("request")
#: Opaque GC-preserve token (``jl.gc_preserve_begin``).
Token = _Scalar("token")


class PointerType(Type):
    """A pointer into a buffer of ``elem`` typed slots.

    Pointers in the IR are (buffer, offset) pairs at run time; arithmetic
    on them goes through the ``ptradd`` instruction.  There is no
    bit-level aliasing between element types: a buffer is allocated with
    one element type and keeps it for its lifetime.
    """

    _interned: dict[Type, "PointerType"] = {}

    def __new__(cls, elem: Type) -> "PointerType":
        cached = cls._interned.get(elem)
        if cached is not None:
            return cached
        inst = super().__new__(cls)
        inst.elem = elem
        inst.name = f"ptr<{elem.name}>"
        cls._interned[elem] = inst
        return inst

    def __init__(self, elem: Type) -> None:  # noqa: D107 - interned
        # All state is set in __new__; __init__ may run again on the
        # interned instance, which is harmless.
        self.elem = elem


def Ptr(elem: Type = F64) -> PointerType:
    """Convenience constructor for pointer types (defaults to ``f64*``)."""
    return PointerType(elem)


def common_numeric(a: Type, b: Type) -> Type:
    """Resulting type of mixing two numeric scalar types."""
    if a is F64 or b is F64:
        return F64
    if a is I64 and b is I64:
        return I64
    raise TypeError(f"no common numeric type for {a} and {b}")
