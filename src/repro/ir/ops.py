"""Operation and region classes of the repro IR.

The IR is a structured-control-flow SSA IR in the spirit of MLIR's SCF
dialect sitting on an LLVM-style memory model:

* straight-line computational ops (tables in :mod:`repro.ir.opinfo`),
* explicit memory ops (``alloc``/``load``/``store``/``atomic``/...),
* region-bearing structured ops (``for``, ``if``, ``while``,
  ``parallel_for``, ``fork``, ``spawn``),
* calls to user functions and runtime intrinsics (``mpi.*``, ``jl.*``).

Regions carry *no* results; values flow out of regions through memory,
just like un-promoted LLVM IR.  This matches how Enzyme sees real
programs (closures capture state through memory) and keeps the adjoint
generation rules uniform.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Optional

from .opinfo import OP_INFO
from .types import (
    F64,
    I1,
    I64,
    PointerType,
    Ptr,
    Task,
    Token,
    Type,
    Void,
)
from .values import BlockArg, Constant, Result, Value

_op_counter = itertools.count()


class Block:
    """A region: an ordered list of operations plus block arguments."""

    __slots__ = ("ops", "args", "parent_op", "parent_function")

    def __init__(self, arg_types: Optional[list[tuple[Type, str]]] = None,
                 parent_op: Optional["Op"] = None) -> None:
        self.ops: list[Op] = []
        self.args: list[BlockArg] = []
        self.parent_op = parent_op
        self.parent_function = None
        for i, (t, name) in enumerate(arg_types or []):
            self.args.append(BlockArg(t, name, parent_op, i))

    def append(self, op: "Op") -> "Op":
        op.parent = self
        self.ops.append(op)
        return op

    def insert(self, index: int, op: "Op") -> "Op":
        op.parent = self
        self.ops.insert(index, op)
        return op

    def remove(self, op: "Op") -> None:
        self.ops.remove(op)
        op.parent = None

    def walk(self) -> Iterator["Op"]:
        """Pre-order walk over all ops in this block, recursively."""
        for op in list(self.ops):
            yield op
            for region in op.regions:
                yield from region.walk()

    def __iter__(self) -> Iterator["Op"]:
        return iter(self.ops)

    def __len__(self) -> int:
        return len(self.ops)


class Op:
    """Base class for all operations.

    Subclasses with regions must keep ``self.regions`` in sync; the
    generic :meth:`clone` handles operands, attributes, regions and
    block arguments.
    """

    __slots__ = ("opcode", "operands", "attrs", "regions", "result",
                 "parent", "uid", "_interp")

    def __init__(self, opcode: str, operands: list[Value],
                 result_type: Optional[Type] = None,
                 attrs: Optional[dict] = None,
                 regions: Optional[list[Block]] = None,
                 name: str = "") -> None:
        self.opcode = opcode
        self.operands = list(operands)
        self.attrs = dict(attrs or {})
        self.regions = regions or []
        for r in self.regions:
            r.parent_op = self
        self.parent: Optional[Block] = None
        self.uid = next(_op_counter)
        #: Interpreter scratch: decoded operand accessors, filled lazily
        #: by the dispatch fast path (never part of IR semantics).
        self._interp = None
        if result_type is not None and result_type is not Void:
            self.result = Result(result_type, self, name or f"%{self.uid}")
        else:
            self.result = None

    # ------------------------------------------------------------------
    @property
    def has_regions(self) -> bool:
        return bool(self.regions)

    @property
    def is_pure(self) -> bool:
        info = OP_INFO.get(self.opcode)
        return bool(info and info.pure)

    def operand(self, i: int) -> Value:
        return self.operands[i]

    def replace_operand(self, old: Value, new: Value) -> None:
        self.operands = [new if v is old else v for v in self.operands]

    def walk(self) -> Iterator["Op"]:
        yield self
        for region in self.regions:
            yield from region.walk()

    # ------------------------------------------------------------------
    def clone(self, value_map: dict[Value, Value]) -> "Op":
        """Deep-clone this op, remapping operands through ``value_map``.

        Block arguments of cloned regions are recreated and recorded in
        ``value_map`` so nested uses remap correctly.  Results are also
        recorded, so cloning a block keeps SSA def-use intact.
        """
        new_operands = [value_map.get(v, v) for v in self.operands]
        cls = type(self)
        new = cls.__new__(cls)
        Op.__init__(
            new, self.opcode, new_operands,
            result_type=self.result.type if self.result else None,
            attrs=dict(self.attrs),
        )
        # Copy subclass slots that are not part of Op's core state.
        for slot in getattr(cls, "__slots__", ()):
            if slot not in Op.__slots__:
                setattr(new, slot, getattr(self, slot))
        new.regions = []
        for region in self.regions:
            new_region = Block(parent_op=new)
            for arg in region.args:
                new_arg = BlockArg(arg.type, arg.name, new, arg.index)
                new_region.args.append(new_arg)
                value_map[arg] = new_arg
            for op in region.ops:
                new_region.append(op.clone(value_map))
            new.regions.append(new_region)
        if self.result is not None:
            value_map[self.result] = new.result
        return new

    def __repr__(self) -> str:
        res = f"{self.result.name} = " if self.result else ""
        return f"<{res}{self.opcode} #{self.uid}>"


# ---------------------------------------------------------------------------
# Computational ops
# ---------------------------------------------------------------------------

class ComputeOp(Op):
    """An op from the :data:`repro.ir.opinfo.OP_INFO` table."""

    __slots__ = ()

    def __init__(self, opcode: str, operands: list[Value],
                 attrs: Optional[dict] = None) -> None:
        info = OP_INFO[opcode]
        if len(operands) != info.arity:
            raise TypeError(
                f"{opcode} expects {info.arity} operands, got {len(operands)}")
        rt = info.result_type([v.type for v in operands])
        super().__init__(opcode, operands, result_type=rt, attrs=attrs)


# ---------------------------------------------------------------------------
# Memory ops
# ---------------------------------------------------------------------------

#: Memory spaces.  "stack": function-local; "heap": explicit malloc/free;
#: "gc": garbage collected (Julia frontend).
MEM_SPACES = ("stack", "heap", "gc")


class AllocOp(Op):
    """Allocate ``count`` slots of ``elem`` type; result is a pointer."""

    __slots__ = ()

    def __init__(self, count: Value, elem: Type = F64,
                 space: str = "stack", name: str = "") -> None:
        assert space in MEM_SPACES, space
        super().__init__("alloc", [count], result_type=Ptr(elem),
                         attrs={"space": space, "zero": True}, name=name)


class FreeOp(Op):
    __slots__ = ()

    def __init__(self, ptr: Value) -> None:
        super().__init__("free", [ptr])


class LoadOp(Op):
    """``result = ptr[idx]``."""

    __slots__ = ()

    def __init__(self, ptr: Value, idx: Value) -> None:
        if not isinstance(ptr.type, PointerType):
            raise TypeError(f"load from non-pointer {ptr.type}")
        super().__init__("load", [ptr, idx], result_type=ptr.type.elem)

    @property
    def ptr(self) -> Value:
        return self.operands[0]

    @property
    def index(self) -> Value:
        return self.operands[1]


class StoreOp(Op):
    """``ptr[idx] = value``."""

    __slots__ = ()

    def __init__(self, value: Value, ptr: Value, idx: Value) -> None:
        if not isinstance(ptr.type, PointerType):
            raise TypeError(f"store to non-pointer {ptr.type}")
        super().__init__("store", [value, ptr, idx])

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def ptr(self) -> Value:
        return self.operands[1]

    @property
    def index(self) -> Value:
        return self.operands[2]


ATOMIC_KINDS = ("add", "min", "max")


class AtomicRMWOp(Op):
    """``ptr[idx] <kind>= value`` performed atomically."""

    __slots__ = ()

    def __init__(self, kind: str, value: Value, ptr: Value, idx: Value) -> None:
        assert kind in ATOMIC_KINDS, kind
        super().__init__("atomic", [value, ptr, idx], attrs={"kind": kind})

    @property
    def kind(self) -> str:
        return self.attrs["kind"]

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def ptr(self) -> Value:
        return self.operands[1]

    @property
    def index(self) -> Value:
        return self.operands[2]


class PtrAddOp(Op):
    """``result = ptr + idx`` (element-granular pointer arithmetic)."""

    __slots__ = ()

    def __init__(self, ptr: Value, idx: Value) -> None:
        super().__init__("ptradd", [ptr, idx], result_type=ptr.type)


class MemsetOp(Op):
    """Set ``count`` elements starting at ``ptr`` to ``value``."""

    __slots__ = ()

    def __init__(self, ptr: Value, value: Value, count: Value) -> None:
        super().__init__("memset", [ptr, value, count])


class MemcpyOp(Op):
    """Copy ``count`` elements from ``src`` to ``dst``."""

    __slots__ = ()

    def __init__(self, dst: Value, src: Value, count: Value) -> None:
        super().__init__("memcpy", [dst, src, count])


# ---------------------------------------------------------------------------
# Calls / returns
# ---------------------------------------------------------------------------

class CallOp(Op):
    """Call a user function or a runtime intrinsic by symbol name.

    Parallel runtimes are *identified by callee name*, mirroring how
    Enzyme recognizes ``__kmpc_fork_call`` or ``MPI_Isend`` in LLVM IR
    (paper §V-A).
    """

    __slots__ = ()

    def __init__(self, callee: str, args: list[Value],
                 result_type: Type = Void,
                 attrs: Optional[dict] = None) -> None:
        a = dict(attrs or {})
        a["callee"] = callee
        super().__init__("call", args, result_type=result_type, attrs=a)

    @property
    def callee(self) -> str:
        return self.attrs["callee"]


class ReturnOp(Op):
    __slots__ = ()

    def __init__(self, values: Optional[list[Value]] = None) -> None:
        super().__init__("return", list(values or []))


# ---------------------------------------------------------------------------
# Structured control flow
# ---------------------------------------------------------------------------

class ForOp(Op):
    """A counted serial loop ``for i in range(lb, ub, step)``.

    ``workshare=True`` marks an OpenMP-style worksharing loop: it must
    appear inside a :class:`ForkOp` region, splits its iteration space
    among the region's threads, and carries an implicit trailing
    barrier (unless ``nowait``).

    ``simd=True`` asserts iterations are independent (up to atomics),
    allowing the interpreter to execute the body vectorized.
    """

    __slots__ = ()

    def __init__(self, lb: Value, ub: Value, step: Value,
                 workshare: bool = False, simd: bool = False,
                 nowait: bool = False, ivar_name: str = "i") -> None:
        super().__init__("for", [lb, ub, step],
                         attrs={"workshare": workshare, "simd": simd,
                                "nowait": nowait})
        body = Block(arg_types=[(I64, ivar_name)], parent_op=self)
        self.regions = [body]

    @property
    def lb(self) -> Value:
        return self.operands[0]

    @property
    def ub(self) -> Value:
        return self.operands[1]

    @property
    def step(self) -> Value:
        return self.operands[2]

    @property
    def body(self) -> Block:
        return self.regions[0]

    @property
    def ivar(self) -> BlockArg:
        return self.body.args[0]


class ParallelForOp(Op):
    """A parallel loop over ``[lb, ub)`` with independent iterations.

    This is the high-level worksharing construct (``#pragma omp parallel
    for`` after fusion of the fork and the workshare loop).  The
    ``framework`` attribute records which frontend produced it ("openmp",
    "raja", "julia", ...) — used for reporting and runtime selection,
    never for differentiation (§V-D: lowered constructs need no special
    AD support).
    """

    __slots__ = ()

    def __init__(self, lb: Value, ub: Value, framework: str = "openmp",
                 ivar_name: str = "i", schedule: str = "static") -> None:
        super().__init__("parallel_for", [lb, ub],
                         attrs={"framework": framework, "schedule": schedule})
        body = Block(arg_types=[(I64, ivar_name)], parent_op=self)
        self.regions = [body]

    @property
    def lb(self) -> Value:
        return self.operands[0]

    @property
    def ub(self) -> Value:
        return self.operands[1]

    @property
    def body(self) -> Block:
        return self.regions[0]

    @property
    def ivar(self) -> BlockArg:
        return self.body.args[0]


class ForkOp(Op):
    """An explicit parallel region (``__kmpc_fork``-style).

    The body runs once per thread with block args ``(tid, nthreads)``.
    ``num_threads`` of 0 means "use the runtime's thread count".
    """

    __slots__ = ()

    def __init__(self, num_threads: Value, framework: str = "openmp") -> None:
        super().__init__("fork", [num_threads], attrs={"framework": framework})
        body = Block(arg_types=[(I64, "tid"), (I64, "nthreads")],
                     parent_op=self)
        self.regions = [body]

    @property
    def num_threads(self) -> Value:
        return self.operands[0]

    @property
    def body(self) -> Block:
        return self.regions[0]

    @property
    def tid(self) -> BlockArg:
        return self.body.args[0]

    @property
    def nthreads(self) -> BlockArg:
        return self.body.args[1]


class BarrierOp(Op):
    """Thread barrier inside a fork region."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("barrier", [])


class IfOp(Op):
    """``if cond: then_region else: else_region`` (no results)."""

    __slots__ = ()

    def __init__(self, cond: Value) -> None:
        if cond.type is not I1:
            raise TypeError("if condition must be i1")
        super().__init__("if", [cond])
        self.regions = [Block(parent_op=self), Block(parent_op=self)]

    @property
    def cond(self) -> Value:
        return self.operands[0]

    @property
    def then_body(self) -> Block:
        return self.regions[0]

    @property
    def else_body(self) -> Block:
        return self.regions[1]


class WhileOp(Op):
    """A do-while loop.

    The body executes, then its terminating :class:`ConditionOp` decides
    whether to run another iteration.  The block arg is the iteration
    counter (useful for trip-count caching in the adjoint).
    """

    __slots__ = ()

    def __init__(self, ivar_name: str = "it") -> None:
        super().__init__("while", [])
        body = Block(arg_types=[(I64, ivar_name)], parent_op=self)
        self.regions = [body]

    @property
    def body(self) -> Block:
        return self.regions[0]

    @property
    def ivar(self) -> BlockArg:
        return self.body.args[0]


class ConditionOp(Op):
    """Terminator of a while body: continue when the operand is true."""

    __slots__ = ()

    def __init__(self, cond: Value) -> None:
        if cond.type is not I1:
            raise TypeError("while condition must be i1")
        super().__init__("condition", [cond])

    @property
    def cond(self) -> Value:
        return self.operands[0]


class SpawnOp(Op):
    """Spawn the body as an asynchronous task; result is a task handle.

    This models ``Base.Threads.@spawn`` / ``Base.enq_work`` (paper §V-B):
    the adjoint of a spawn is a wait on the corresponding shadow task,
    and the adjoint of a wait is a spawn of the adjoint task.
    """

    __slots__ = ()

    def __init__(self, framework: str = "julia") -> None:
        super().__init__("spawn", [], result_type=Task,
                         attrs={"framework": framework})
        self.regions = [Block(parent_op=self)]

    @property
    def body(self) -> Block:
        return self.regions[0]


class CacheCreateOp(Op):
    """Create a growable LIFO cache (AD allocation strategy 3, §IV-C)."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("cache_create", [], result_type=Token)


class CachePushOp(Op):
    """Push a value (usually a per-iteration cache array pointer)."""

    __slots__ = ()

    def __init__(self, handle: Value, value: Value) -> None:
        super().__init__("cache_push", [handle, value])


class CachePopOp(Op):
    """Pop the most recent value; the result type is chosen by the
    AD transform to match what was pushed."""

    __slots__ = ()

    def __init__(self, handle: Value, result_type: Type) -> None:
        super().__init__("cache_pop", [handle], result_type=result_type)


STRUCTURED_OPS = frozenset({
    "for", "parallel_for", "fork", "if", "while", "spawn",
})

#: Ops which may not be reordered freely (memory or control effects).
EFFECTFUL_OPS = frozenset({
    "store", "atomic", "memset", "memcpy", "free", "call", "return",
    "barrier", "condition",
}) | STRUCTURED_OPS
